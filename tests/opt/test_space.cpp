#include <gtest/gtest.h>

#include "opt/search_space.hpp"
#include "util/rng.hpp"

namespace stellar::opt {
namespace {

TEST(SearchSpace, ThirteenDimensions) {
  const SearchSpace space{pfs::BoundsContext{}};
  EXPECT_EQ(space.dims(), 13u);
}

TEST(SearchSpace, EveryDecodedPointIsValid) {
  const pfs::BoundsContext ctx;
  const SearchSpace space{ctx};
  util::Rng rng{3};
  for (int i = 0; i < 500; ++i) {
    std::vector<double> x(space.dims());
    for (double& v : x) {
      v = rng.uniform();
    }
    const pfs::PfsConfig cfg = space.decode(x);
    EXPECT_TRUE(pfs::validateConfig(cfg, ctx).empty());
  }
}

TEST(SearchSpace, CornersDecodeToExtremes) {
  const SearchSpace space{pfs::BoundsContext{}};
  const pfs::PfsConfig lo = space.decode(std::vector<double>(space.dims(), 0.0));
  const pfs::PfsConfig hi = space.decode(std::vector<double>(space.dims(), 1.0));
  EXPECT_EQ(lo.stripe_count, -1);  // bucket 0 is "all OSTs"
  EXPECT_EQ(lo.osc_max_rpcs_in_flight, 1);
  EXPECT_EQ(hi.osc_max_rpcs_in_flight, 256);
  EXPECT_EQ(hi.osc_max_pages_per_rpc, 4096);
  EXPECT_EQ(hi.stripe_count, 5);
}

TEST(SearchSpace, EncodeDecodeRoundTripsApproximately) {
  const SearchSpace space{pfs::BoundsContext{}};
  pfs::PfsConfig cfg;
  cfg.stripe_count = -1;
  cfg.stripe_size = 16 << 20;
  cfg.osc_max_rpcs_in_flight = 64;
  cfg.osc_max_dirty_mb = 512;
  cfg.llite_statahead_max = 1024;
  const pfs::PfsConfig back = space.decode(space.encode(cfg));
  EXPECT_EQ(back.stripe_count, cfg.stripe_count);
  // Log-scale quantization: within 2x of the original.
  EXPECT_GT(back.osc_max_rpcs_in_flight, 32);
  EXPECT_LT(back.osc_max_rpcs_in_flight, 129);
  EXPECT_GT(back.osc_max_dirty_mb, 256);
  EXPECT_LT(back.osc_max_dirty_mb, 1025);
}

TEST(SearchSpace, DecodeValidatesDimension) {
  const SearchSpace space{pfs::BoundsContext{}};
  EXPECT_THROW((void)space.decode(std::vector<double>(2, 0.5)),
               std::invalid_argument);
}

TEST(SearchSpace, ZeroCapableDomainsReachZero) {
  const SearchSpace space{pfs::BoundsContext{}};
  std::vector<double> x(space.dims(), 0.5);
  // statahead dimension index:
  const auto& names = space.names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == "llite.statahead_max" || names[i] == "ldlm.lru_size") {
      x[i] = 0.01;  // bottom band maps to the minimum (0)
    }
  }
  const pfs::PfsConfig cfg = space.decode(x);
  EXPECT_EQ(cfg.llite_statahead_max, 0);
  EXPECT_EQ(cfg.ldlm_lru_size, 0);
}

}  // namespace
}  // namespace stellar::opt

#include <gtest/gtest.h>

#include "opt/linalg.hpp"

namespace stellar::opt {
namespace {

Matrix spd3() {
  // A = [[4,2,1],[2,5,3],[1,3,6]] (symmetric positive definite).
  Matrix a(3, 3);
  const double values[3][3] = {{4, 2, 1}, {2, 5, 3}, {1, 3, 6}};
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a.at(i, j) = values[i][j];
    }
  }
  return a;
}

TEST(Linalg, CholeskyReconstructsMatrix) {
  const Matrix a = spd3();
  const Matrix l = cholesky(a);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      double llT = 0.0;
      for (std::size_t k = 0; k < 3; ++k) {
        llT += l.at(i, k) * l.at(j, k);
      }
      EXPECT_NEAR(llT, a.at(i, j), 1e-12);
    }
    // Upper triangle of L is zero.
    for (std::size_t j = i + 1; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(l.at(i, j), 0.0);
    }
  }
}

TEST(Linalg, CholeskySolveSolvesSystem) {
  const Matrix a = spd3();
  const Matrix l = cholesky(a);
  const std::vector<double> b = {7.0, 13.0, 17.0};
  const std::vector<double> x = choleskySolve(l, b);
  for (std::size_t i = 0; i < 3; ++i) {
    double ax = 0.0;
    for (std::size_t j = 0; j < 3; ++j) {
      ax += a.at(i, j) * x[j];
    }
    EXPECT_NEAR(ax, b[i], 1e-10);
  }
}

TEST(Linalg, ForwardBackwardAreInverses) {
  const Matrix l = cholesky(spd3());
  const std::vector<double> b = {1.0, 2.0, 3.0};
  const auto y = forwardSolve(l, b);
  // L y = b
  for (std::size_t i = 0; i < 3; ++i) {
    double ly = 0.0;
    for (std::size_t k = 0; k <= i; ++k) {
      ly += l.at(i, k) * y[k];
    }
    EXPECT_NEAR(ly, b[i], 1e-12);
  }
}

TEST(Linalg, RejectsNonSpdAndBadShapes) {
  Matrix notSpd(2, 2);
  notSpd.at(0, 0) = 1;
  notSpd.at(0, 1) = 5;
  notSpd.at(1, 0) = 5;
  notSpd.at(1, 1) = 1;  // eigenvalues 6, -4
  EXPECT_THROW((void)cholesky(notSpd), std::runtime_error);

  Matrix rect(2, 3);
  EXPECT_THROW((void)cholesky(rect), std::runtime_error);

  const Matrix l = cholesky(spd3());
  EXPECT_THROW((void)forwardSolve(l, {1.0}), std::runtime_error);
  EXPECT_THROW((void)backwardSolve(l, {1.0}), std::runtime_error);
}

}  // namespace
}  // namespace stellar::opt

// Black-box optimizers on synthetic objectives: convergence sanity and
// history bookkeeping.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/optimizers.hpp"

namespace stellar::opt {
namespace {

// A smooth objective over the normalized point: distance to a known
// optimum inside [0,1]^13, mapped through decode/encode to keep everything
// in config space. Lower is better; best possible value is 1.0.
Objective syntheticObjective(const SearchSpace& space) {
  return [&space](const pfs::PfsConfig& cfg) {
    const std::vector<double> x = space.encode(cfg);
    double d2 = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double target = 0.3 + 0.04 * static_cast<double>(i);
      d2 += (x[i] - target) * (x[i] - target);
    }
    return 1.0 + d2;
  };
}

class OptimizerTest : public ::testing::Test {
 protected:
  SearchSpace space_{pfs::BoundsContext{}};
};

TEST_F(OptimizerTest, HistoryIsBestSoFarAndMonotone) {
  OptOptions options;
  options.maxEvaluations = 40;
  const OptResult result = randomSearch(space_, syntheticObjective(space_), options);
  EXPECT_EQ(result.history.size(), 40u);
  for (std::size_t i = 1; i < result.history.size(); ++i) {
    EXPECT_LE(result.history[i], result.history[i - 1]);
  }
  EXPECT_DOUBLE_EQ(result.history.back(), result.bestSeconds);
}

TEST_F(OptimizerTest, AllMethodsImproveOnTheSyntheticObjective) {
  const Objective objective = syntheticObjective(space_);
  OptOptions options;
  options.maxEvaluations = 60;
  const double defaultCost = objective(pfs::PfsConfig{});

  for (const auto& [name, result] :
       {std::pair{"random", randomSearch(space_, objective, options)},
        std::pair{"anneal", simulatedAnnealing(space_, objective, options)},
        std::pair{"bo", bayesianOptimize(space_, objective, options)},
        std::pair{"heuristic", heuristicController(space_, objective, options)}}) {
    EXPECT_LT(result.bestSeconds, defaultCost) << name;
    EXPECT_LE(result.history.size(), 61u) << name;
  }
}

TEST_F(OptimizerTest, BayesianOptBeatsRandomOnSmoothObjective) {
  const Objective objective = syntheticObjective(space_);
  OptOptions options;
  options.maxEvaluations = 50;
  double randomTotal = 0.0;
  double boTotal = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    options.seed = seed;
    randomTotal += randomSearch(space_, objective, options).bestSeconds;
    boTotal += bayesianOptimize(space_, objective, options).bestSeconds;
  }
  // BO should be competitive on a smooth objective; a hard dominance
  // requirement would be flaky at this budget.
  EXPECT_LT(boTotal, randomTotal * 1.15);
}

TEST_F(OptimizerTest, DeterministicPerSeed) {
  const Objective objective = syntheticObjective(space_);
  OptOptions options;
  options.maxEvaluations = 30;
  options.seed = 9;
  const OptResult a = simulatedAnnealing(space_, objective, options);
  const OptResult b = simulatedAnnealing(space_, objective, options);
  EXPECT_EQ(a.history, b.history);
  EXPECT_EQ(a.bestConfig, b.bestConfig);
}

TEST_F(OptimizerTest, EvaluationsToReachFindsFirstIndex) {
  OptResult result;
  result.history = {10.0, 8.0, 8.0, 5.0, 5.0};
  EXPECT_EQ(result.evaluationsToReach(8.0, 1.0), 2u);
  EXPECT_EQ(result.evaluationsToReach(5.0, 1.0), 4u);
  EXPECT_EQ(result.evaluationsToReach(1.0, 1.0), 0u);  // never reached
  EXPECT_EQ(result.evaluationsToReach(9.0, 1.2), 1u);
}

}  // namespace
}  // namespace stellar::opt

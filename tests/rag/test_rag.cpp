// RAG stack: tokenizer, chunker, embedder, vector index retrieval quality.
#include <gtest/gtest.h>

#include "manual/manual_text.hpp"
#include "rag/chunker.hpp"
#include "rag/embedder.hpp"
#include "rag/tokenizer.hpp"
#include "rag/vector_index.hpp"

namespace stellar::rag {
namespace {

TEST(Tokenizer, LowercasesAndKeepsParameterNamesWhole) {
  const auto tokens = tokenizeWords("Set OSC.max_rpcs_in_flight to 8.");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0], "set");
  EXPECT_EQ(tokens[1], "osc.max_rpcs_in_flight");
  EXPECT_EQ(tokens[3], "8");
}

TEST(Tokenizer, TrailingSentenceDotsStripped) {
  const auto tokens = tokenizeWords("bandwidth. latency...");
  EXPECT_EQ(tokens, (std::vector<std::string>{"bandwidth", "latency"}));
}

TEST(Tokenizer, ApproxTokenCountScalesWithText) {
  EXPECT_EQ(approxTokenCount(""), 0u);
  const std::size_t small = approxTokenCount("one two three");
  const std::size_t larger = approxTokenCount(
      "a considerably longer sentence with many more words than the first one");
  EXPECT_GT(larger, small);
  // Long words cost extra tokens (BPE-style).
  EXPECT_GT(approxTokenCount("supercalifragilisticexpialidocious"), 1u);
}

TEST(Chunker, ChunksCoverDocumentWithOverlap) {
  std::string doc;
  for (int i = 0; i < 5000; ++i) {
    doc += "word" + std::to_string(i) + " ";
  }
  ChunkerOptions opts;
  opts.chunkTokens = 1024;
  opts.overlapTokens = 20;
  const auto chunks = chunkDocument(doc, opts);
  ASSERT_GE(chunks.size(), 4u);
  // Consecutive chunks overlap by exactly `overlap` words.
  EXPECT_EQ(chunks[1].firstToken, 1024u - 20u);
  // First and last words present.
  EXPECT_NE(chunks.front().text.find("word0 "), std::string::npos);
  EXPECT_NE(chunks.back().text.find("word4999"), std::string::npos);
}

TEST(Chunker, ShortDocumentIsOneChunk) {
  const auto chunks = chunkDocument("just a few words here");
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0].text, "just a few words here");
}

TEST(Chunker, EmptyDocumentYieldsNoChunks) {
  EXPECT_TRUE(chunkDocument("").empty());
  EXPECT_TRUE(chunkDocument("   \n\t ").empty());
}

TEST(Chunker, RejectsOverlapNotSmallerThanChunk) {
  ChunkerOptions opts;
  opts.chunkTokens = 10;
  opts.overlapTokens = 10;
  EXPECT_THROW((void)chunkDocument("a b c", opts), std::invalid_argument);
}

TEST(Embedder, VectorsAreNormalizedAndDeterministic) {
  HashedTfIdfEmbedder embedder{256};
  const auto v1 = embedder.embed("stripe count controls file layout");
  const auto v2 = embedder.embed("stripe count controls file layout");
  EXPECT_EQ(v1, v2);
  double norm = 0.0;
  for (const float x : v1) {
    norm += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(Embedder, SimilarTextScoresHigherThanUnrelated) {
  HashedTfIdfEmbedder embedder{512};
  embedder.fit({"the stripe count distributes data across storage targets",
                "lock cancellation policies during recovery",
                "quota enforcement for user groups"});
  const auto query = embedder.embed("how many targets does stripe count use");
  const auto related =
      embedder.embed("the stripe count distributes data across storage targets");
  const auto unrelated = embedder.embed("quota enforcement for user groups");
  EXPECT_GT(HashedTfIdfEmbedder::cosine(query, related),
            HashedTfIdfEmbedder::cosine(query, unrelated));
}

TEST(VectorIndex, RetrievesTheRightManualSection) {
  VectorIndex index;
  index.buildFromDocument(manual::fullManualText());
  ASSERT_GT(index.size(), 3u);

  // For every documented parameter, the top-8 retrieved chunks must
  // include one containing its section marker — the property the offline
  // extractor (which retrieves top-20) depends on.
  for (const char* param :
       {"osc.max_dirty_mb", "llite.statahead_max", "ldlm.lru_size",
        "lov.stripe_count"}) {
    const auto hits =
        index.query("How do I use the parameter " + std::string{param} + "?", 8);
    bool found = false;
    for (const auto& hit : hits) {
      if (hit.chunk->text.find(manual::parameterSectionMarker(param)) !=
          std::string::npos) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << param;
  }
}

TEST(VectorIndex, ScoresDescendAndKClamps) {
  VectorIndex index;
  index.buildFromDocument(manual::fullManualText());
  const auto hits = index.query("readahead budget", 1000);
  EXPECT_EQ(hits.size(), index.size());  // clamped
  for (std::size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
}

TEST(VectorIndex, RebuildReplacesContent) {
  VectorIndex index;
  index.buildFromDocument("alpha beta gamma");
  EXPECT_EQ(index.size(), 1u);
  index.buildFromDocument("delta epsilon");
  EXPECT_EQ(index.size(), 1u);
  EXPECT_NE(index.chunks()[0].text.find("delta"), std::string::npos);
}

TEST(VectorIndex, EmptyDocumentYieldsEmptyIndexAndEmptyResults) {
  VectorIndex index;
  index.buildFromDocument("");
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.query("anything at all", 5).empty());
}

TEST(VectorIndex, TopKZeroReturnsNothing) {
  VectorIndex index;
  index.buildFromDocument(manual::fullManualText());
  ASSERT_GT(index.size(), 0u);
  EXPECT_TRUE(index.query("stripe count bandwidth", 0).empty());
}

TEST(VectorIndex, QueryAfterRebuildRetrievesOnlyTheNewContent) {
  VectorIndex index;
  index.buildFromDocument("lustre stripe size controls striping granularity");
  index.buildFromDocument("metadata statahead pipeline depth for readdir scans");
  const auto hits = index.query("statahead", 3);
  ASSERT_FALSE(hits.empty());
  // Every retrieved chunk must come from the replacement document, with a
  // chunk pointer into the current chunks() storage (no stale survivors).
  for (const auto& hit : hits) {
    EXPECT_EQ(hit.chunk, &index.chunks()[hit.chunk->index]);
    EXPECT_EQ(hit.chunk->text.find("stripe"), std::string::npos);
  }
  EXPECT_NE(hits[0].chunk->text.find("statahead"), std::string::npos);
}

TEST(VectorIndex, ExactScoreTiesBreakByChunkIndexDeterministically) {
  // Two pairs of identical chunks => identical embeddings => exact score
  // ties; ordering must fall back to ascending chunk index, stably across
  // repeated queries.
  std::string doc;
  ChunkerOptions opts;
  opts.chunkTokens = 4;
  opts.overlapTokens = 0;
  doc = "alpha beta gamma delta alpha beta gamma delta "
        "alpha beta gamma delta alpha beta gamma delta";
  VectorIndex index;
  index.buildFromDocument(doc, opts);
  ASSERT_GE(index.size(), 3u);
  const auto first = index.query("alpha beta", index.size());
  ASSERT_EQ(first.size(), index.size());
  for (std::size_t i = 1; i < first.size(); ++i) {
    if (first[i - 1].score == first[i].score) {
      EXPECT_LT(first[i - 1].chunk->index, first[i].chunk->index);
    }
  }
  const auto again = index.query("alpha beta", index.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].chunk->index, again[i].chunk->index);
    EXPECT_EQ(first[i].score, again[i].score);
  }
}

}  // namespace
}  // namespace stellar::rag

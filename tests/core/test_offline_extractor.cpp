// The offline RAG extraction pipeline (§4.2).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/offline_extractor.hpp"

namespace stellar::core {
namespace {

const ExtractionResult& extraction() {
  static const ExtractionResult result = [] {
    manual::SystemFacts facts;
    return OfflineExtractor{}.run(facts);
  }();
  return result;
}

TEST(OfflineExtractor, RecoversAllThirteenTunables) {
  EXPECT_DOUBLE_EQ(extraction().precision(), 1.0);
  EXPECT_DOUBLE_EQ(extraction().recall(), 1.0);
  EXPECT_EQ(extraction().tunables.size(), 13u);
}

TEST(OfflineExtractor, FiltersEachDecoyIntoTheRightBucket) {
  const ExtractionResult& r = extraction();
  const auto has = [](const std::vector<std::string>& v, const char* name) {
    return std::find(v.begin(), v.end(), name) != v.end();
  };
  EXPECT_TRUE(has(r.filteredNotWritable, "mgs.mount_block_size"));
  EXPECT_TRUE(has(r.filteredInsufficientDocs, "osc.experimental_prefetch_mode"));
  EXPECT_TRUE(has(r.filteredBinary, "osc.checksums"));
  EXPECT_TRUE(has(r.filteredLowImpact, "ost.nrs_delay_min"));
  EXPECT_TRUE(has(r.filteredLowImpact, "llite.debug_level"));
}

TEST(OfflineExtractor, EveryCandidateLandsExactlyOnce) {
  const ExtractionResult& r = extraction();
  const std::size_t total = r.tunables.size() + r.filteredNotWritable.size() +
                            r.filteredInsufficientDocs.size() +
                            r.filteredBinary.size() + r.filteredLowImpact.size();
  EXPECT_EQ(total, manual::allParamFacts().size());
}

TEST(OfflineExtractor, ExtractedRangesMatchGroundTruth) {
  manual::SystemFacts facts;
  for (const ExtractedParam& p : extraction().tunables) {
    const manual::ParamFact* fact = manual::findParamFact(p.name);
    ASSERT_NE(fact, nullptr) << p.name;
    const llm::ResolvedRange truth = llm::resolveRange(*fact, facts);
    EXPECT_EQ(p.knowledge.minValue, truth.min) << p.name;
    EXPECT_EQ(p.knowledge.maxValue, truth.max) << p.name;
    EXPECT_EQ(p.knowledge.defaultValue, fact->defaultValue) << p.name;
  }
}

TEST(OfflineExtractor, DependentRangesStayAsExpressions) {
  const ExtractedParam* perFile =
      extraction().find("llite.max_read_ahead_per_file_mb");
  ASSERT_NE(perFile, nullptr);
  EXPECT_EQ(perFile->maxExpr, "llite.max_read_ahead_mb / 2");
  const ExtractedParam* mod = extraction().find("mdc.max_mod_rpcs_in_flight");
  ASSERT_NE(mod, nullptr);
  EXPECT_EQ(mod->maxExpr, "mdc.max_rpcs_in_flight - 1");
}

TEST(OfflineExtractor, DescriptionsComeFromTheManualProse) {
  const ExtractedParam* stripe = extraction().find("lov.stripe_count");
  ASSERT_NE(stripe, nullptr);
  EXPECT_NE(stripe->knowledge.description.find("Object Storage Targets"),
            std::string::npos);
  EXPECT_EQ(stripe->knowledge.source, llm::KnowledgeSource::RagExtraction);
  EXPECT_EQ(stripe->knowledge.corruption, llm::CorruptionKind::None);
}

TEST(OfflineExtractor, SystemFactsChangeResolvedBounds) {
  manual::SystemFacts small;
  small.clientRamMb = 8192;
  const ExtractionResult result = OfflineExtractor{}.run(small);
  const ExtractedParam* ra = result.find("llite.max_read_ahead_mb");
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(ra->knowledge.maxValue, 4096);
}

TEST(OfflineExtractor, MeterRecordsExtractionCalls) {
  manual::SystemFacts facts;
  llm::TokenMeter meter;
  (void)OfflineExtractor{}.run(facts, &meter);
  const llm::UsageTotals usage = meter.totals("extraction");
  // One call per writable candidate.
  std::size_t writable = 0;
  for (const auto& fact : manual::allParamFacts()) {
    writable += fact.writable ? 1 : 0;
  }
  EXPECT_EQ(usage.calls, writable);
  EXPECT_GT(usage.inputTokens, 10000u);  // top-K chunks per query
}

TEST(OfflineExtractor, FindReturnsNullForUnknown) {
  EXPECT_EQ(extraction().find("nope"), nullptr);
}

}  // namespace
}  // namespace stellar::core

// StellarEngine orchestration: complete tuning runs, rule accumulation,
// transcript structure, determinism.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/harness.hpp"
#include "workloads/workloads.hpp"

namespace stellar::core {
namespace {

workloads::WorkloadOptions smallOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = 0.03;
  return opt;
}

StellarOptions defaultOptions(std::uint64_t seed = 5) {
  StellarOptions options;
  options.seed = seed;
  options.agent.seed = seed;
  return options;
}

TEST(StellarEngine, CompletesWithinFiveAttempts) {
  pfs::PfsSimulator sim;
  StellarEngine engine{sim, defaultOptions()};
  const TuningRunResult run =
      engine.tune(workloads::byName("IOR_16M", smallOpts()));
  EXPECT_LE(run.attempts.size(), 5u);
  EXPECT_GT(run.attempts.size(), 0u);
  EXPECT_FALSE(run.endReason.empty());
  EXPECT_EQ(run.iterationSeconds.size(), run.attempts.size() + 1);
}

TEST(StellarEngine, ImprovesOverDefaultOnEveryBenchmark) {
  pfs::PfsSimulator sim;
  for (const std::string& name : workloads::benchmarkNames()) {
    StellarEngine engine{sim, defaultOptions()};
    const TuningRunResult run = engine.tune(workloads::byName(name, smallOpts()));
    EXPECT_GT(run.bestSpeedup(), 1.15) << name;
  }
}

TEST(StellarEngine, DeterministicForSameSeed) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IOR_64K", smallOpts());
  StellarEngine a{sim, defaultOptions(9)};
  StellarEngine b{sim, defaultOptions(9)};
  const TuningRunResult ra = a.tune(job);
  const TuningRunResult rb = b.tune(job);
  EXPECT_EQ(ra.bestConfig, rb.bestConfig);
  EXPECT_DOUBLE_EQ(ra.bestSeconds, rb.bestSeconds);
  EXPECT_EQ(ra.attempts.size(), rb.attempts.size());
}

TEST(StellarEngine, TranscriptTellsTheWholeStory) {
  pfs::PfsSimulator sim;
  StellarEngine engine{sim, defaultOptions()};
  const TuningRunResult run =
      engine.tune(workloads::byName("MDWorkbench_8K", smallOpts()));
  const std::string text = run.transcript.render();
  EXPECT_NE(text.find("initial run"), std::string::npos);
  EXPECT_NE(text.find("I/O report"), std::string::npos);
  EXPECT_NE(text.find("attempt 1"), std::string::npos);
  EXPECT_NE(text.find("run result"), std::string::npos);
  EXPECT_NE(text.find("Reflect & Summarize"), std::string::npos);
}

TEST(StellarEngine, RulesAccumulateAndMerge) {
  pfs::PfsSimulator sim;
  rules::RuleSet global;
  StellarEngine e1{sim, defaultOptions(1)};
  (void)e1.tune(workloads::byName("IOR_16M", smallOpts()), &global);
  const std::size_t afterFirst = global.size();
  EXPECT_GT(afterFirst, 0u);
  StellarEngine e2{sim, defaultOptions(2)};
  (void)e2.tune(workloads::byName("MDWorkbench_8K", smallOpts()), &global);
  EXPECT_GT(global.size(), afterFirst);
}

TEST(StellarEngine, RuleSetImprovesOrMatchesFirstGuess) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("MDWorkbench_8K", smallOpts());

  rules::RuleSet global;
  StellarEngine learner{sim, defaultOptions(3)};
  (void)learner.tune(job, &global);
  ASSERT_FALSE(global.empty());

  StellarEngine cold{sim, defaultOptions(4)};
  const TuningRunResult coldRun = cold.tune(job);
  StellarEngine warm{sim, defaultOptions(4)};
  rules::RuleSet copy = global;
  const TuningRunResult warmRun = warm.tune(job, &copy);

  ASSERT_GT(warmRun.iterationSeconds.size(), 1u);
  ASSERT_GT(coldRun.iterationSeconds.size(), 1u);
  const double firstWarm = warmRun.defaultSeconds / warmRun.iterationSeconds[1];
  const double firstCold = coldRun.defaultSeconds / coldRun.iterationSeconds[1];
  EXPECT_GE(firstWarm, firstCold * 0.95);
  EXPECT_LE(warmRun.attempts.size(), coldRun.attempts.size() + 1);
}

TEST(StellarEngine, NoAnalysisAblationDegradesMetadataTuning) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("MDWorkbench_8K", smallOpts());
  StellarEngine full{sim, defaultOptions(6)};
  const double fullSpeedup = full.tune(job).bestSpeedup();

  StellarOptions ablated = defaultOptions(6);
  ablated.agent.useAnalysis = false;
  StellarEngine noAnalysis{sim, ablated};
  const double ablatedSpeedup = noAnalysis.tune(job).bestSpeedup();

  EXPECT_GT(fullSpeedup, ablatedSpeedup * 1.1);
  EXPECT_LT(ablatedSpeedup, 1.1);  // near default, per Fig. 8
}

TEST(StellarEngine, NoDescriptionsAblationDegradesMetadataTuning) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("MDWorkbench_8K", smallOpts());
  StellarEngine full{sim, defaultOptions(5)};
  const double fullSpeedup = full.tune(job).bestSpeedup();

  StellarOptions ablated = defaultOptions(5);
  ablated.agent.useDescriptions = false;
  StellarEngine noDesc{sim, ablated};
  const double ablatedSpeedup = noDesc.tune(job).bestSpeedup();
  EXPECT_GT(fullSpeedup, ablatedSpeedup * 1.1);
}

TEST(StellarEngine, MeterCoversBothAgents) {
  pfs::PfsSimulator sim;
  StellarEngine engine{sim, defaultOptions()};
  const TuningRunResult run =
      engine.tune(workloads::byName("IOR_16M", smallOpts()));
  EXPECT_GT(run.meter.totals("tuning-agent").calls, 0u);
  EXPECT_GT(run.meter.totals("analysis-agent").calls, 0u);
  // Iterative context re-use produces cache hits.
  EXPECT_GT(run.meter.totals("tuning-agent").cacheHitRate(), 0.3);
}

TEST(Harness, MeasureConfigProducesStableSummary) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IOR_16M", smallOpts());
  const RepeatedMeasure m = measureConfig(sim, job, pfs::PfsConfig{}, {.repeats = 8, .seedBase = 77});
  EXPECT_EQ(m.samples.size(), 8u);
  EXPECT_GT(m.summary.mean, 0.0);
  EXPECT_GT(m.summary.ci90, 0.0);
  EXPECT_LT(m.summary.ci90, m.summary.mean * 0.2);  // noise is a few percent
}

TEST(Harness, EvaluationAggregatesRuns) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IOR_16M", smallOpts());
  const TuningEvaluation eval = evaluateTuning(sim, defaultOptions(), job, {.repeats = 3});
  EXPECT_EQ(eval.runs.size(), 3u);
  EXPECT_GT(eval.meanAttempts(), 0.0);
  const auto speedups = eval.meanIterationSpeedups();
  ASSERT_GT(speedups.size(), 1u);
  EXPECT_NEAR(speedups[0], 1.0, 1e-9);  // iteration 0 is the default run
  // Best-so-far speedups are monotone non-decreasing.
  for (std::size_t i = 1; i < speedups.size(); ++i) {
    EXPECT_GE(speedups[i] + 1e-9, speedups[i - 1]);
  }
}

}  // namespace
}  // namespace stellar::core

// SessionJournal: append/load round-trips, header binding, torn-line
// recovery, and the exact-bits wall-time encoding (ISSUE 7).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "agents/transcript.hpp"
#include "core/session_journal.hpp"
#include "util/file.hpp"
#include "util/json.hpp"

namespace stellar::core {
namespace {

std::string journalPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "session_" + name + ".jsonl";
  (void)std::remove(path.c_str());
  return path;
}

util::Json makeHeader(const std::string& workload) {
  util::Json header = util::Json::makeObject();
  header.set("type", "header");
  header.set("workload", workload);
  header.set("seed", static_cast<std::int64_t>(42));
  return header;
}

TEST(SessionJournal, FreshJournalIsEmpty) {
  SessionJournal journal{journalPath("fresh")};
  EXPECT_FALSE(journal.bound());
  EXPECT_FALSE(journal.complete());
  EXPECT_EQ(journal.measurementCount(), 0u);
  EXPECT_EQ(journal.replay(0), std::nullopt);
}

TEST(SessionJournal, MeasurementsRoundTripAcrossReload) {
  const std::string path = journalPath("roundtrip");
  {
    SessionJournal journal{path};
    journal.bind(makeHeader("IOR_16M"));
    journal.recordMeasurement(0, {29.1234, "ok", ""});
    journal.recordMeasurement(1, {5.678, "failed", "config rejected"});
  }
  SessionJournal reloaded{path};
  EXPECT_TRUE(reloaded.bound());
  EXPECT_EQ(reloaded.measurementCount(), 2u);
  const auto m0 = reloaded.replay(0);
  ASSERT_TRUE(m0.has_value());
  EXPECT_EQ(m0->wallSeconds, 29.1234);
  EXPECT_EQ(m0->outcome, "ok");
  const auto m1 = reloaded.replay(1);
  ASSERT_TRUE(m1.has_value());
  EXPECT_EQ(m1->outcome, "failed");
  EXPECT_EQ(m1->failureReason, "config rejected");
  EXPECT_EQ(reloaded.replay(2), std::nullopt);
}

TEST(SessionJournal, WallSecondsRoundTripExactBits) {
  // JSON numbers print through %.12g — lossy for doubles. The journal must
  // restore the exact IEEE-754 bits or resumed comparisons could flip.
  const std::string path = journalPath("bits");
  const double gnarly = 29.123456789012345678;  // does not survive %.12g
  {
    SessionJournal journal{path};
    journal.bind(makeHeader("IOR_16M"));
    journal.recordMeasurement(0, {gnarly, "ok", ""});
  }
  SessionJournal reloaded{path};
  const auto m = reloaded.replay(0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->wallSeconds, gnarly);  // exact equality, not near
}

TEST(SessionJournal, BindVerifiesSessionIdentity) {
  const std::string path = journalPath("identity");
  {
    SessionJournal journal{path};
    journal.bind(makeHeader("IOR_16M"));
  }
  // Same header: resumes quietly.
  {
    SessionJournal journal{path};
    EXPECT_NO_THROW(journal.bind(makeHeader("IOR_16M")));
  }
  // Different session: replaying its measurements would be corruption.
  SessionJournal journal{path};
  EXPECT_THROW(journal.bind(makeHeader("MDWorkbench_2K")), std::runtime_error);
}

TEST(SessionJournal, TornTailLineIsSkippedNotFatal) {
  const std::string path = journalPath("torn");
  {
    SessionJournal journal{path};
    journal.bind(makeHeader("IOR_16M"));
    journal.recordMeasurement(0, {1.5, "ok", ""});
  }
  // A SIGKILL mid-write leaves a truncated JSON line at the tail.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"type\":\"measurement\",\"index\":1,\"wall_se";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);
  }
  SessionJournal reloaded{path};
  EXPECT_EQ(reloaded.corruptLinesSkipped(), 1u);
  EXPECT_EQ(reloaded.measurementCount(), 1u);  // the torn index 1 is gone
  EXPECT_EQ(reloaded.replay(1), std::nullopt);
  // The journal stays writable: the resumed run re-measures index 1.
  reloaded.bind(makeHeader("IOR_16M"));
  reloaded.recordMeasurement(1, {2.5, "ok", ""});
  SessionJournal again{path};
  EXPECT_EQ(again.measurementCount(), 2u);
}

TEST(SessionJournal, TranscriptSyncWritesOnlyTheTail) {
  const std::string path = journalPath("transcript");
  agents::Transcript transcript;
  transcript.add("engine", "start", "first event");
  transcript.add("agent", "decision", "second event");
  {
    SessionJournal journal{path};
    journal.bind(makeHeader("IOR_16M"));
    journal.syncTranscript(transcript);
    EXPECT_EQ(journal.transcriptEventsJournaled(), 2u);
    // Syncing again with no new events appends nothing.
    journal.syncTranscript(transcript);
    EXPECT_EQ(journal.transcriptEventsJournaled(), 2u);
  }
  const std::string before = util::readFile(path);
  // A resumed run regenerates the same events, then adds one more: only
  // the new tail is appended.
  SessionJournal resumed{path};
  EXPECT_EQ(resumed.transcriptEventsJournaled(), 2u);
  transcript.add("agent", "decision", "third event");
  resumed.syncTranscript(transcript);
  const std::string after = util::readFile(path);
  EXPECT_EQ(after.substr(0, before.size()), before);
  EXPECT_NE(after.find("third event"), std::string::npos);
  EXPECT_EQ(after.find("second event"), after.rfind("second event"));  // once
}

TEST(SessionJournal, MarkCompleteIsSticky) {
  const std::string path = journalPath("complete");
  {
    SessionJournal journal{path};
    journal.bind(makeHeader("IOR_16M"));
    util::Json summary = util::Json::makeObject();
    summary.set("best_seconds", 5.5);
    journal.markComplete(summary);
    journal.markComplete(summary);  // idempotent
  }
  SessionJournal reloaded{path};
  EXPECT_TRUE(reloaded.complete());
}

TEST(SessionJournal, EmptyPathIsMemoryOnly) {
  SessionJournal journal{""};
  journal.bind(makeHeader("IOR_16M"));
  journal.recordMeasurement(0, {1.0, "ok", ""});
  EXPECT_EQ(journal.measurementCount(), 1u);
  ASSERT_TRUE(journal.replay(0).has_value());
}

}  // namespace
}  // namespace stellar::core

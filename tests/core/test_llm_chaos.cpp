// Agent-layer chaos (ISSUE 7): the resilience ladder under the canned LLM
// fault scenarios, clean-path bit-identity of the chaos machinery, and the
// KILL-RESUME metamorphic law — an interrupted-and-resumed journaled
// session must land on a bit-identical final transcript and configuration.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/engine.hpp"
#include "core/session_journal.hpp"
#include "faults/fault_plan.hpp"
#include "obs/counters.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar::core {
namespace {

workloads::WorkloadOptions benchLikeOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = 0.05;
  return opt;
}

StellarOptions chaosOptions() {
  StellarOptions options;
  options.seed = 42;
  options.agent.seed = 42;
  options.sanitizer = agents::SanitizerMode::Enforce;
  return options;
}

TuningRunResult tuneUnderScenario(const std::string& scenario,
                                  obs::CounterRegistry* registry,
                                  StellarOptions options = chaosOptions()) {
  const faults::FaultPlan plan = faults::scenarioByName(scenario);
  pfs::PfsSimulator simulator{{.counters = registry, .faults = &plan}};
  StellarEngine engine{simulator, options};
  return engine.tune(workloads::byName("IOR_16M", benchLikeOpts()));
}

std::string journalPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + "chaos_" + name + ".jsonl";
  (void)std::remove(path.c_str());
  return path;
}

// ---- Ladder rungs per scenario ------------------------------------------

TEST(LlmChaos, FlakyLlmStaysOnPrimaryRung) {
  obs::CounterRegistry registry;
  const TuningRunResult run = tuneUnderScenario("flaky-llm", &registry);

  // Retries absorb the transient faults: the ladder never escalates.
  EXPECT_EQ(run.resilienceRung, "primary");
  EXPECT_GT(run.resilience.llmWastedAttempts, 0u);
  EXPECT_LT(run.bestSeconds, run.defaultSeconds);
  // The content faults fired and the Enforce sanitizer contained them:
  // nothing invalid ever reached the simulator.
  EXPECT_GT(run.resilience.sanitizerIssues, 0u);
  EXPECT_EQ(registry.counter("pfs.sim.config_rejected").value(), 0.0);
}

TEST(LlmChaos, DegradingLlmFallsBackToSecondaryModel) {
  obs::CounterRegistry registry;
  const TuningRunResult run = tuneUnderScenario("degrading-llm", &registry);

  // The primary (claude) model hard-fails from call 2 on: its breaker trips
  // and the ladder swaps in the fallback model, which finishes the session.
  EXPECT_EQ(run.resilienceRung, "fallback-model");
  EXPECT_GE(run.resilience.breakerTrips, 1u);
  EXPECT_GT(run.resilience.llmFailedCalls, 0u);
  EXPECT_LT(run.bestSeconds, run.defaultSeconds);  // still tunes
  EXPECT_FALSE(run.attempts.empty());
}

TEST(LlmChaos, TotalOutageReachesRuleBaseline) {
  obs::CounterRegistry registry;
  const TuningRunResult run = tuneUnderScenario("llm-outage", &registry);

  // Every model is down: the agent is abandoned and the rule-derived
  // baseline still improves on the default configuration.
  EXPECT_EQ(run.resilienceRung, "rule-baseline");
  EXPECT_NE(run.endReason.find("abandoned"), std::string::npos);
  EXPECT_GT(run.resilience.breakerTrips, 0u);
  EXPECT_LT(run.bestSeconds, run.defaultSeconds);
  EXPECT_TRUE(pfs::validateConfig(run.bestConfig, pfs::BoundsContext{}).empty());
  EXPECT_EQ(registry.counter("pfs.sim.config_rejected").value(), 0.0);
}

// ---- Clean-path bit-identity --------------------------------------------

TEST(LlmChaos, ChaosMachineryNeverPerturbsCleanRuns) {
  // Baseline: the engine exactly as every pre-chaos test runs it.
  pfs::PfsSimulator plain;
  StellarOptions vanilla;
  vanilla.seed = 42;
  vanilla.agent.seed = 42;
  StellarEngine plainEngine{plain, vanilla};
  const TuningRunResult before =
      plainEngine.tune(workloads::byName("IOR_16M", benchLikeOpts()));

  // Same session with every chaos feature armed — Enforce sanitizer,
  // explicit fallback model, a live journal — but no faults injected.
  pfs::PfsSimulator sim;
  SessionJournal journal{journalPath("clean_identity")};
  StellarOptions armed = chaosOptions();
  armed.journal = &journal;
  StellarEngine engine{sim, armed};
  const TuningRunResult after =
      engine.tune(workloads::byName("IOR_16M", benchLikeOpts()));

  EXPECT_EQ(before.toJson().dump(), after.toJson().dump());
  EXPECT_EQ(after.resilienceRung, "primary");
  EXPECT_EQ(after.resilience.llmWastedAttempts, 0u);
  EXPECT_EQ(after.resilience.sanitizerIssues, 0u);
  EXPECT_TRUE(journal.complete());
}

// ---- KILL-RESUME metamorphic law ----------------------------------------

/// Runs one journaled session to completion, interrupting it after every
/// `cap` fresh measurements (the deterministic SIGKILL stand-in) and
/// resuming from the journal until it completes. A short session journals
/// only a couple of measurements, so the cap must stay tiny for the
/// interrupt to fire at all. Returns the final result.
TuningRunResult runWithInterruptions(const std::string& path,
                                     const std::string& scenario,
                                     std::size_t cap, int* incarnations) {
  faults::FaultPlan plan;
  if (!scenario.empty()) {
    plan = faults::scenarioByName(scenario);
  }
  for (int attempt = 0; attempt < 50; ++attempt) {
    ++*incarnations;
    pfs::PfsSimulator simulator{{.faults = &plan}};
    SessionJournal journal{path};  // reloads what prior incarnations wrote
    StellarOptions options = chaosOptions();
    options.journal = &journal;
    options.maxMeasurements = cap;
    StellarEngine engine{simulator, options};
    try {
      return engine.tune(workloads::byName("IOR_16M", benchLikeOpts()));
    } catch (const SessionInterrupted&) {
      continue;  // next incarnation resumes from the journal
    }
  }
  throw std::runtime_error("session did not converge within 50 incarnations");
}

TuningRunResult runUninterrupted(const std::string& scenario) {
  faults::FaultPlan plan;
  if (!scenario.empty()) {
    plan = faults::scenarioByName(scenario);
  }
  pfs::PfsSimulator simulator{{.faults = &plan}};
  StellarEngine engine{simulator, chaosOptions()};
  return engine.tune(workloads::byName("IOR_16M", benchLikeOpts()));
}

TEST(LlmChaos, KillResumeIsBitIdentical) {
  const TuningRunResult whole = runUninterrupted("");

  int incarnations = 0;
  const TuningRunResult pieced =
      runWithInterruptions(journalPath("kill_resume"), "", 1, &incarnations);

  EXPECT_GT(incarnations, 1);  // the cap really did interrupt the session
  EXPECT_GT(pieced.resilience.journalReplayedMeasurements, 0u);
  EXPECT_EQ(whole.toJson().dump(), pieced.toJson().dump());
  EXPECT_EQ(whole.bestConfig, pieced.bestConfig);
  ASSERT_EQ(whole.transcript.events().size(), pieced.transcript.events().size());
  for (std::size_t i = 0; i < whole.transcript.events().size(); ++i) {
    EXPECT_EQ(whole.transcript.events()[i].body, pieced.transcript.events()[i].body);
  }
}

TEST(LlmChaos, KillResumeHoldsUnderInjectedLlmFaults) {
  // Satellite 3: the replay law must survive agent-layer chaos too — the
  // fault draws are pure functions of (model, call index, attempt), so a
  // resumed session re-samples the exact same weather.
  const TuningRunResult whole = runUninterrupted("flaky-llm");

  int incarnations = 0;
  const TuningRunResult pieced = runWithInterruptions(
      journalPath("kill_resume_flaky"), "flaky-llm", 1, &incarnations);

  EXPECT_GT(incarnations, 1);
  EXPECT_EQ(whole.toJson().dump(), pieced.toJson().dump());
  EXPECT_GT(pieced.resilience.llmWastedAttempts, 0u);  // faults really fired
}

TEST(LlmChaos, JournalRefusesAForeignSession) {
  const std::string path = journalPath("foreign");
  {
    pfs::PfsSimulator simulator;
    SessionJournal journal{path};
    StellarOptions options = chaosOptions();
    options.journal = &journal;
    StellarEngine engine{simulator, options};
    (void)engine.tune(workloads::byName("IOR_16M", benchLikeOpts()));
  }
  // Same journal, different workload: binding must fail loudly instead of
  // replaying another session's measurements.
  pfs::PfsSimulator simulator;
  SessionJournal journal{path};
  StellarOptions options = chaosOptions();
  options.journal = &journal;
  StellarEngine engine{simulator, options};
  EXPECT_THROW((void)engine.tune(workloads::byName("IOR_64K", benchLikeOpts())),
               std::runtime_error);
}

}  // namespace
}  // namespace stellar::core

// §5.6 user-accessible tuning scope.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "workloads/workloads.hpp"

namespace stellar::core {
namespace {

workloads::WorkloadOptions smallOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = 0.03;
  return opt;
}

StellarOptions userScopeOptions(std::uint64_t seed = 5) {
  StellarOptions options;
  options.seed = seed;
  options.agent.seed = seed;
  options.scope = TuningScope::UserAccessible;
  return options;
}

TEST(TuningScope, OnlyLayoutParamsAreUserAccessible) {
  std::vector<std::string> userParams;
  for (const manual::ParamFact& fact : manual::allParamFacts()) {
    if (fact.userAccessible) {
      userParams.push_back(fact.name);
    }
  }
  EXPECT_EQ(userParams,
            (std::vector<std::string>{"lov.stripe_count", "lov.stripe_size"}));
}

TEST(TuningScope, UserScopeNeverTouchesRootOnlyKnobs) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IOR_16M", smallOpts());
  StellarEngine engine{sim, userScopeOptions()};
  const TuningRunResult run = engine.tune(job);
  const pfs::PfsConfig defaults;
  for (const agents::Attempt& attempt : run.attempts) {
    for (const std::string& name : pfs::PfsConfig::tunableNames()) {
      if (name == "lov.stripe_count" || name == "lov.stripe_size") {
        continue;
      }
      EXPECT_EQ(attempt.config.get(name), defaults.get(name))
          << name << " changed in user scope";
    }
  }
}

TEST(TuningScope, UserScopeStillHelpsBandwidthWorkloads) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IOR_16M", smallOpts());
  StellarEngine engine{sim, userScopeOptions()};
  const TuningRunResult run = engine.tune(job);
  EXPECT_GT(run.bestSpeedup(), 1.5);  // striping alone carries much of the win
}

TEST(TuningScope, SystemScopeDominatesUserScope) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("MDWorkbench_8K", smallOpts());

  StellarOptions systemWide = userScopeOptions(7);
  systemWide.scope = TuningScope::SystemWide;
  StellarEngine fullEngine{sim, systemWide};
  const double fullSpeedup = fullEngine.tune(job).bestSpeedup();

  StellarEngine userEngine{sim, userScopeOptions(7)};
  const double userSpeedup = userEngine.tune(job).bestSpeedup();

  // Metadata workloads need the root-only knobs; layout-only tuning cannot
  // reach the system-wide result (§5.6's hybrid-deployment argument).
  EXPECT_GT(fullSpeedup, userSpeedup * 1.1);
  // And user scope never makes things worse than the default.
  EXPECT_GE(userSpeedup, 0.999);
}

}  // namespace
}  // namespace stellar::core

// End-to-end quality gates: the paper's headline claims, as assertions.
// These use small scales and generous bands; the bench harnesses produce
// the full-fidelity numbers.
#include <gtest/gtest.h>

#include "baselines/expert.hpp"
#include "baselines/oracle.hpp"
#include "core/harness.hpp"
#include "workloads/workloads.hpp"

namespace stellar::core {
namespace {

workloads::WorkloadOptions smallOpts(double scale = 0.03) {
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = scale;
  return opt;
}

TEST(Integration, StellarIsNearExpertOnBenchmarks) {
  pfs::PfsSimulator sim;
  for (const std::string& name : workloads::benchmarkNames()) {
    const pfs::JobSpec job = workloads::byName(name, smallOpts());
    StellarOptions options;
    options.seed = 42;
    const TuningEvaluation eval = evaluateTuning(sim, options, job, {.repeats = 4});
    const RepeatedMeasure expert =
        measureConfig(sim, job, baselines::expertConfig(name), {.repeats = 4, .seedBase = 900});
    // "comparable to, or even surpasses, what human experts can achieve":
    // within 25% of the expert on every benchmark.
    EXPECT_LT(eval.bestSummary().mean, expert.summary.mean * 1.25) << name;
  }
}

TEST(Integration, FiveAttemptBudgetAlwaysHolds) {
  pfs::PfsSimulator sim;
  for (const std::string& name : workloads::benchmarkNames()) {
    StellarOptions options;
    options.seed = 17;
    const TuningEvaluation eval =
        evaluateTuning(sim, options, workloads::byName(name, smallOpts()), {.repeats = 3});
    for (const TuningRunResult& run : eval.runs) {
      EXPECT_LE(run.attempts.size(), 5u) << name;
    }
  }
}

TEST(Integration, StellarReachesOracleBandOnHeadlineWorkloads) {
  pfs::PfsSimulator sim;
  for (const std::string& name : {std::string{"IOR_16M"}, std::string{"IOR_64K"}}) {
    const pfs::JobSpec job = workloads::byName(name, smallOpts());
    baselines::OracleOptions oracleOpts;
    oracleOpts.maxSweeps = 1;
    oracleOpts.candidatesPerParam = 4;
    const baselines::OracleResult oracle = baselines::oracleSearch(sim, job, oracleOpts);

    StellarOptions options;
    options.seed = 42;
    const TuningEvaluation eval = evaluateTuning(sim, options, job, {.repeats = 4});
    // Near-optimal: within 20% of a >60-evaluation coordinate descent,
    // reached with a single-digit number of executions.
    EXPECT_LT(eval.bestSummary().mean, oracle.seconds * 1.20) << name;
    EXPECT_GT(oracle.evaluations, 40u);
  }
}

TEST(Integration, RealApplicationsAlsoImprove) {
  pfs::PfsSimulator sim;
  for (const std::string& name : workloads::realAppNames()) {
    StellarOptions options;
    options.seed = 23;
    const TuningEvaluation eval =
        evaluateTuning(sim, options, workloads::byName(name, smallOpts(0.05)), {.repeats = 3});
    double best = 0.0;
    for (const TuningRunResult& run : eval.runs) {
      best = std::max(best, run.bestSpeedup());
    }
    EXPECT_GT(best, 1.05) << name;
    // Tuning never ends up worse than the default configuration.
    for (const TuningRunResult& run : eval.runs) {
      EXPECT_LE(run.bestSeconds, run.defaultSeconds * 1.001) << name;
    }
  }
}

TEST(Integration, RuleSetNeverHurtsFinalPerformance) {
  pfs::PfsSimulator sim;
  rules::RuleSet global;
  for (const std::string& name : workloads::benchmarkNames()) {
    StellarOptions options;
    options.seed = 7;
    options.agent.seed = 7;
    StellarEngine engine{sim, options};
    (void)engine.tune(workloads::byName(name, smallOpts()), &global);
  }
  for (const std::string& name : workloads::benchmarkNames()) {
    const pfs::JobSpec job = workloads::byName(name, smallOpts());
    StellarOptions options;
    options.seed = 99;
    const TuningEvaluation cold = evaluateTuning(sim, options, job, {.repeats = 3});
    const TuningEvaluation warm = evaluateTuning(sim, options, job, {.repeats = 3, .globalRules = &global});
    EXPECT_LT(warm.bestSummary().mean, cold.bestSummary().mean * 1.1) << name;
  }
}

}  // namespace
}  // namespace stellar::core

// Measurement resilience: outlier-robust aggregation, the repeat-level
// watchdog and failure accounting in measureConfig, and the engine's
// handling of measurements that cannot be trusted.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/engine.hpp"
#include "core/harness.hpp"
#include "faults/fault_plan.hpp"
#include "workloads/workloads.hpp"

namespace stellar::core {
namespace {

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

StellarOptions defaultOptions(std::uint64_t seed = 5) {
  StellarOptions options;
  options.seed = seed;
  options.agent.seed = seed;
  return options;
}

TEST(RobustAggregate, PlantedOutlierMovesMeanButNotMedianOrTrimmedMean) {
  const std::vector<double> samples = {9.9, 9.95, 9.98, 10.0, 10.02, 10.05, 10.1, 100.0};
  const RobustAggregate agg = robustAggregate(samples, 0.125, 0.25);
  EXPECT_GT(agg.summary.mean, 20.0);  // mean wrecked by the outlier
  EXPECT_NEAR(agg.medianSeconds, 10.01, 0.02);
  EXPECT_NEAR(agg.trimmedMeanSeconds, 10.0, 0.1);  // 12.5% trim drops it
  EXPECT_TRUE(agg.unstable);  // spread this wide must be flagged
}

TEST(RobustAggregate, TightSamplesAreStable) {
  const std::vector<double> samples = {10.0, 10.01, 9.99, 10.0, 10.02, 9.98};
  const RobustAggregate agg = robustAggregate(samples, 0.125, 0.25);
  EXPECT_FALSE(agg.unstable);
  EXPECT_NEAR(agg.medianSeconds, 10.0, 0.01);
  EXPECT_NEAR(agg.trimmedMeanSeconds, agg.summary.mean, 0.05);
}

TEST(RobustAggregate, ZeroThresholdDisablesTheUnstableFlag) {
  const std::vector<double> wild = {1.0, 100.0, 1.0, 100.0};
  EXPECT_FALSE(robustAggregate(wild, 0.0, 0.0).unstable);
  EXPECT_TRUE(robustAggregate(wild, 0.0, 0.25).unstable);
}

TEST(MeasureConfig, HealthyRepeatsAreClean) {
  const pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::ior16m(tinyOpts());
  const RepeatedMeasure m = measureConfig(sim, job, pfs::PfsConfig{}, {.repeats = 4});
  EXPECT_TRUE(m.clean());
  EXPECT_EQ(m.samples.size(), 4u);
  EXPECT_EQ(m.failedRuns, 0u);
  EXPECT_GT(m.medianSeconds, 0.0);
  EXPECT_GT(m.trimmedMeanSeconds, 0.0);
  EXPECT_EQ(m.summary.n, 4u);
}

TEST(MeasureConfig, FailedRepeatsAreCountedNotMixedIn) {
  const faults::FaultPlan plan = faults::parseFaultSpec("ost:*:outage@0-1e7");
  const pfs::PfsSimulator sim{{.faults = &plan}};
  const pfs::JobSpec job = workloads::ior16m(tinyOpts());
  const RepeatedMeasure m = measureConfig(sim, job, pfs::PfsConfig{}, {.repeats = 3});
  EXPECT_FALSE(m.clean());
  EXPECT_EQ(m.failedRuns, 3u);
  EXPECT_TRUE(m.samples.empty());
  EXPECT_EQ(m.summary.n, 0u);
  EXPECT_DOUBLE_EQ(m.medianSeconds, 0.0);
}

TEST(MeasureConfig, WatchdogCountsTimedOutRepeats) {
  // Every delivery stalls +1000 s: no repeat can finish under a 5 s cap.
  const faults::FaultPlan plan = faults::parseFaultSpec("rpc:stall:1000@0-1e7");
  const pfs::PfsSimulator sim{{.faults = &plan}};
  const pfs::JobSpec job = workloads::ior16m(tinyOpts());
  const RepeatedMeasure m = measureConfig(
      sim, job, pfs::PfsConfig{}, {.repeats = 2, .simTimeCapSeconds = 5.0});
  EXPECT_EQ(m.failedRuns, 2u);
  EXPECT_TRUE(m.samples.empty());
}

TEST(StellarEngine, AbortsCleanlyWhenBaselineCannotBeMeasured) {
  const faults::FaultPlan plan = faults::parseFaultSpec("ost:*:outage@0-1e7");
  pfs::PfsSimulator sim{{.faults = &plan}};
  StellarEngine engine{sim, defaultOptions()};
  const TuningRunResult run = engine.tune(workloads::ior16m(tinyOpts()));

  EXPECT_NE(run.endReason.find("initial measurement failed"), std::string::npos);
  EXPECT_TRUE(run.attempts.empty());
  EXPECT_TRUE(run.iterationSeconds.empty());
  EXPECT_DOUBLE_EQ(run.bestSeconds, 0.0);  // never pretended to have a best
  EXPECT_EQ(run.bestConfig, pfs::PfsConfig{});
}

TEST(StellarEngine, FailedMeasurementsNeverBecomeBest) {
  // Heavy random drop: individual measurement runs fail or succeed
  // deterministically per seed, mixing both outcomes across the tune.
  const faults::FaultPlan plan = faults::parseFaultSpec("rpc:drop:0.5@0-1e7,seed:4");
  pfs::PfsSimulator sim{{.faults = &plan}};
  StellarEngine engine{sim, defaultOptions(11)};
  const TuningRunResult run = engine.tune(workloads::ior16m(tinyOpts()));

  if (run.iterationSeconds.empty()) {
    // Even the re-measured baseline failed; the abort path already ran.
    EXPECT_NE(run.endReason.find("initial measurement failed"), std::string::npos);
    return;
  }
  // Invariant: bestSeconds is either the default baseline or the wall time
  // of a successfully measured, valid attempt — never a failed one.
  std::vector<double> candidates = {run.defaultSeconds};
  for (const agents::Attempt& attempt : run.attempts) {
    if (attempt.valid && !attempt.measurementFailed) {
      candidates.push_back(attempt.seconds);
    }
    if (attempt.measurementFailed) {
      EXPECT_FALSE(attempt.error.empty());
    }
  }
  EXPECT_NE(std::find(candidates.begin(), candidates.end(), run.bestSeconds),
            candidates.end());
  EXPECT_LE(run.bestSeconds, run.defaultSeconds);
  // A skipped attempt repeats the previous iteration's wall time, so the
  // iteration axis stays aligned with the attempt list.
  EXPECT_EQ(run.iterationSeconds.size(), run.attempts.size() + 1);
}

TEST(StellarEngine, WatchdogOptionCapsEveryMeasurement) {
  const faults::FaultPlan plan = faults::parseFaultSpec("rpc:stall:1000@0-1e7");
  pfs::PfsSimulator sim{{.faults = &plan}};
  StellarOptions options = defaultOptions();
  options.maxSimSecondsPerRun = 5.0;
  StellarEngine engine{sim, options};
  const TuningRunResult run = engine.tune(workloads::ior16m(tinyOpts()));
  EXPECT_NE(run.endReason.find("initial measurement failed"), std::string::npos);
  EXPECT_NE(run.endReason.find("cap"), std::string::npos);
}

// --------------------------------------- robustAggregate edge cases ------

TEST(RobustAggregate, AllFailedRepeatsYieldAnEmptyButSaneAggregate) {
  // Every repeat failed: measureConfig hands robustAggregate an empty
  // sample set and the aggregate must stay inert, not NaN or throw.
  const RobustAggregate agg = robustAggregate({}, 0.125, 0.25);
  EXPECT_EQ(agg.summary.n, 0u);
  EXPECT_DOUBLE_EQ(agg.medianSeconds, 0.0);
  EXPECT_DOUBLE_EQ(agg.trimmedMeanSeconds, 0.0);
  EXPECT_DOUBLE_EQ(agg.cv, 0.0);
  EXPECT_FALSE(agg.unstable);
}

TEST(RobustAggregate, SingleSampleIsItsOwnAggregate) {
  const std::vector<double> one = {12.5};
  const RobustAggregate agg = robustAggregate(one, 0.125, 0.25);
  EXPECT_DOUBLE_EQ(agg.medianSeconds, 12.5);
  EXPECT_DOUBLE_EQ(agg.trimmedMeanSeconds, 12.5);
  EXPECT_DOUBLE_EQ(agg.summary.mean, 12.5);
  EXPECT_FALSE(agg.unstable);  // no spread to judge from one sample
}

TEST(RobustAggregate, NanSampleCannotPoisonTheTrimmedMean) {
  const std::vector<double> samples = {10.0, std::nan(""), 10.2, 9.8};
  const RobustAggregate agg = robustAggregate(samples, 0.0, 0.0);
  EXPECT_FALSE(std::isnan(agg.trimmedMeanSeconds));
  EXPECT_NEAR(agg.trimmedMeanSeconds, 10.0, 1e-9);
}

// ------------------------------- warm start under fault + RunLimits ------

/// Provider that always recalls a valid but throttled configuration, so
/// warm start engages without needing a pre-populated experience store.
class ThrottledRecall final : public WarmStartProvider {
 public:
  [[nodiscard]] std::optional<WarmStartHint> warmStart(
      const agents::IoReport&) const override {
    WarmStartHint hint;
    EXPECT_TRUE(hint.config.set("osc.max_rpcs_in_flight", 2));
    EXPECT_TRUE(hint.config.set("osc.max_pages_per_rpc", 128));
    hint.sourceIds = {"recalled"};
    hint.similarity = 0.99;
    hint.provenance = "test";
    return hint;
  }
  void observeWarmStartOutcome(const std::vector<std::string>&, bool,
                               bool) override {}
};

TEST(StellarEngine, WarmStartedRunUnderFaultStillHonorsRunLimits) {
  // A degraded OST slows everything; the watchdog cap must still bound
  // every measurement of the warm-started trajectory, and a capped repeat
  // must surface as a failed measurement, never as a best config.
  const faults::FaultPlan plan = faults::parseFaultSpec("ost:*:degrade:0.4@0-1e7");
  pfs::PfsSimulator sim{{.faults = &plan}};
  ThrottledRecall provider;
  StellarOptions options = defaultOptions(17);
  options.maxSimSecondsPerRun = 120.0;  // generous: the baseline completes
  options.warmStart = &provider;
  StellarEngine engine{sim, options};
  const TuningRunResult run = engine.tune(workloads::ior16m(tinyOpts()));

  ASSERT_TRUE(run.warmStarted);
  ASSERT_FALSE(run.attempts.empty());
  EXPECT_TRUE(run.attempts[0].warmStart);
  // Every successfully measured wall time respected the simulated cap.
  EXPECT_LT(run.defaultSeconds, options.maxSimSecondsPerRun);
  for (const agents::Attempt& attempt : run.attempts) {
    if (attempt.valid && !attempt.measurementFailed) {
      EXPECT_LT(attempt.seconds, options.maxSimSecondsPerRun);
    }
  }
  EXPECT_LE(run.bestSeconds, run.defaultSeconds);

  // Same fault, same warm start, but a cap tighter than the baseline: the
  // run must abort through the watchdog path instead of hanging or
  // returning a fabricated best.
  StellarOptions tight = defaultOptions(17);
  tight.maxSimSecondsPerRun = 0.05;
  tight.warmStart = &provider;
  StellarEngine cappedEngine{sim, tight};
  const TuningRunResult capped = cappedEngine.tune(workloads::ior16m(tinyOpts()));
  EXPECT_NE(capped.endReason.find("initial measurement failed"), std::string::npos);
  EXPECT_TRUE(capped.attempts.empty());
  EXPECT_DOUBLE_EQ(capped.bestSeconds, 0.0);
}

}  // namespace
}  // namespace stellar::core

// Darshan characterization: counters, shared-record reduction,
// serialization round trips.
#include <gtest/gtest.h>

#include "darshan/recorder.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar::darshan {
namespace {

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

DarshanLog logFor(const char* workload) {
  pfs::PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName(workload, tinyOpts());
  const pfs::RunResult run = sim.run(job, pfs::PfsConfig{}, 4);
  return characterize(job, run, 99);
}

TEST(Darshan, HeaderCarriesJobFacts) {
  const DarshanLog log = logFor("IOR_16M");
  EXPECT_EQ(log.header.exe, "IOR_16M");
  EXPECT_EQ(log.header.nprocs, 10u);
  EXPECT_GT(log.header.runTime, 0.0);
  EXPECT_EQ(log.header.jobId, 99u);
}

TEST(Darshan, SharedFileReducesToRankMinusOne) {
  const DarshanLog log = logFor("IOR_16M");
  ASSERT_EQ(log.records.size(), 1u);  // one shared file
  EXPECT_EQ(log.records[0].rank, -1);
  EXPECT_EQ(log.records[0].counter("POSIX_FILE_SHARED_RANKS"), 10);
}

TEST(Darshan, PrivateFilesKeepTheirRank) {
  const DarshanLog log = logFor("MACSio_512K");
  for (const Record& rec : log.records) {
    EXPECT_GE(rec.rank, 0) << rec.fileName;
  }
}

TEST(Darshan, CountersMatchWorkloadStructure) {
  const DarshanLog log = logFor("MDWorkbench_8K");
  for (const Record& rec : log.records) {
    // 3 rounds of create/write/stat/open/read/close/unlink per file.
    EXPECT_EQ(rec.counter("POSIX_OPENS_CREATE"), 3) << rec.fileName;
    EXPECT_EQ(rec.counter("POSIX_UNLINKS"), 3) << rec.fileName;
    EXPECT_EQ(rec.counter("POSIX_STATS"), 3) << rec.fileName;
    EXPECT_EQ(rec.counter("POSIX_WRITES"), 3) << rec.fileName;
    EXPECT_EQ(rec.counter("POSIX_BYTES_WRITTEN"), 3 * 8 * 1024) << rec.fileName;
  }
}

TEST(Darshan, AccessHistogramIsFrequencyOrdered) {
  const DarshanLog log = logFor("IOR_64K");
  const Record& rec = log.records[0];
  EXPECT_EQ(rec.counter("POSIX_ACCESS1_ACCESS"), 64 * 1024);
  EXPECT_GE(*rec.counter("POSIX_ACCESS1_COUNT"), *rec.counter("POSIX_ACCESS2_COUNT"));
}

TEST(Darshan, UntouchedFilesAreSkipped) {
  pfs::PfsSimulator sim;
  pfs::JobSpec job;
  job.name = "partial";
  job.ranks.resize(2);
  const auto used = job.addFile("/used");
  (void)job.addFile("/never-touched");
  job.ranks[0].push_back(pfs::IoOp::create(used));
  job.ranks[0].push_back(pfs::IoOp::write(used, 0, 4096));
  job.ranks[0].push_back(pfs::IoOp::close(used));
  job.ranks[1].push_back(pfs::IoOp::compute(0.001));
  const auto run = sim.run(job, pfs::PfsConfig{}, 1);
  const DarshanLog log = characterize(job, run);
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0].fileName, "/used");
}

TEST(Darshan, SerializationRoundTrips) {
  const DarshanLog log = logFor("IO500");
  const std::string text = log.serialize();
  const DarshanLog parsed = DarshanLog::parse(text);
  EXPECT_EQ(parsed.header.exe, log.header.exe);
  EXPECT_EQ(parsed.header.nprocs, log.header.nprocs);
  ASSERT_EQ(parsed.records.size(), log.records.size());
  for (std::size_t i = 0; i < log.records.size(); ++i) {
    EXPECT_EQ(parsed.records[i].fileName, log.records[i].fileName);
    EXPECT_EQ(parsed.records[i].rank, log.records[i].rank);
    EXPECT_EQ(parsed.records[i].counters, log.records[i].counters);
  }
}

TEST(Darshan, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)DarshanLog::parse("C\tPOSIX_READS\t1\n"), std::runtime_error);
  EXPECT_THROW((void)DarshanLog::parse("FILE\tonly-two-fields\n"), std::runtime_error);
  EXPECT_THROW((void)DarshanLog::parse("WAT\ta\tb\n"), std::runtime_error);
}

TEST(Darshan, CounterLookupReturnsNulloptForUnknown) {
  const DarshanLog log = logFor("IOR_16M");
  EXPECT_EQ(log.records[0].counter("NOT_A_COUNTER"), std::nullopt);
  EXPECT_EQ(log.records[0].fcounter("NOT_A_COUNTER"), std::nullopt);
}

TEST(Darshan, EveryCounterHasADescription) {
  for (const std::string& name : counterNames()) {
    EXPECT_NE(counterDescription(name), "undocumented counter") << name;
  }
  for (const std::string& name : fcounterNames()) {
    EXPECT_NE(counterDescription(name), "undocumented counter") << name;
  }
}

}  // namespace
}  // namespace stellar::darshan

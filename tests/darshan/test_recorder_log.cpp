// Recorder-style trace source: per-op capture, serialization, and the
// aggregation back into Darshan-equivalent records (§4.3.1 generality).
#include <gtest/gtest.h>

#include "darshan/recorder.hpp"
#include "darshan/recorder_log.hpp"
#include "dataframe/from_darshan.hpp"
#include "workloads/workloads.hpp"

namespace stellar::darshan {
namespace {

struct Traced {
  pfs::JobSpec job;
  RecorderLog recorder;
  DarshanLog viaDarshan;

  explicit Traced(const char* workload) {
    pfs::PfsSimulator sim;
    workloads::WorkloadOptions opt;
    opt.ranks = 10;
    opt.scale = 0.02;
    job = workloads::byName(workload, opt);
    const pfs::RunResult run = sim.run(job, pfs::PfsConfig{}, 4);
    recorder = recorderTrace(job, run);
    viaDarshan = characterize(job, run);
  }
};

TEST(RecorderLog, CapturesEveryIoOperation) {
  const Traced t{"IOR_64K"};
  std::size_t expected = 0;
  for (const auto& program : t.job.ranks) {
    for (const auto& op : program) {
      expected += op.kind != pfs::OpKind::Barrier && op.kind != pfs::OpKind::Compute
                      ? 1
                      : 0;
    }
  }
  EXPECT_EQ(t.recorder.events.size(), expected);
  EXPECT_EQ(t.recorder.nprocs, 10u);
  EXPECT_GT(t.recorder.runTime, 0.0);
}

TEST(RecorderLog, TimestampsAreMonotonePerRank) {
  const Traced t{"MDWorkbench_8K"};
  std::map<std::int32_t, double> last;
  for (const RecorderEvent& e : t.recorder.events) {
    const auto it = last.find(e.rank);
    if (it != last.end()) {
      EXPECT_GE(e.startTime, it->second);
    }
    last[e.rank] = e.startTime;
  }
}

TEST(RecorderLog, SerializationRoundTrips) {
  const Traced t{"MACSio_512K"};
  const RecorderLog parsed = RecorderLog::parse(t.recorder.serialize());
  ASSERT_EQ(parsed.events.size(), t.recorder.events.size());
  EXPECT_EQ(parsed.nprocs, t.recorder.nprocs);
  for (std::size_t i = 0; i < parsed.events.size(); i += 97) {
    EXPECT_EQ(parsed.events[i].function, t.recorder.events[i].function);
    EXPECT_EQ(parsed.events[i].offset, t.recorder.events[i].offset);
    EXPECT_EQ(parsed.events[i].fileName, t.recorder.events[i].fileName);
  }
  EXPECT_THROW((void)RecorderLog::parse("1\tonly\tthree\n"), std::runtime_error);
}

TEST(RecorderLog, AggregationMatchesDarshanCounters) {
  // The op-stream aggregation must agree with the simulator-recorded
  // Darshan counters on everything derivable from the op stream.
  for (const char* workload : {"IOR_64K", "MDWorkbench_8K", "IO500"}) {
    const Traced t{workload};
    const DarshanLog viaRecorder = aggregateRecorder(t.recorder);
    ASSERT_EQ(viaRecorder.records.size(), t.viaDarshan.records.size()) << workload;

    // Index darshan records by file name.
    std::map<std::string, const Record*> byName;
    for (const Record& rec : t.viaDarshan.records) {
      byName[rec.fileName] = &rec;
    }
    for (const Record& rec : viaRecorder.records) {
      const Record* ref = byName.at(rec.fileName);
      for (const char* counter :
           {"POSIX_READS", "POSIX_WRITES", "POSIX_BYTES_READ", "POSIX_BYTES_WRITTEN",
            "POSIX_STATS", "POSIX_UNLINKS", "POSIX_OPENS_CREATE",
            "POSIX_FILE_SHARED_RANKS", "POSIX_MAX_BYTE_WRITTEN"}) {
        EXPECT_EQ(rec.counter(counter), ref->counter(counter))
            << workload << " " << rec.fileName << " " << counter;
      }
      EXPECT_EQ(rec.rank, ref->rank) << rec.fileName;
    }
  }
}

TEST(RecorderLog, AggregatedTablesFeedTheSamePipeline) {
  const Traced t{"MDWorkbench_8K"};
  const df::DarshanTables tables = df::tablesFromLog(aggregateRecorder(t.recorder));
  EXPECT_EQ(tables.posix.rowCount(), t.viaDarshan.records.size());
  EXPECT_TRUE(tables.posix.hasColumn("POSIX_ACCESS1_ACCESS"));
}

}  // namespace
}  // namespace stellar::darshan

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace obs = stellar::obs;
using stellar::util::Json;

namespace {

const obs::TraceRecord* findByName(const std::vector<obs::TraceRecord>& records,
                                   const std::string& name) {
  for (const obs::TraceRecord& r : records) {
    if (r.name == name) {
      return &r;
    }
  }
  return nullptr;
}

}  // namespace

TEST(Trace, SpanRecordsOnEnd) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span span = tracer.span("sim", "drain");
    span.arg("events", Json(static_cast<std::int64_t>(42)));
    EXPECT_EQ(tracer.recorded(), 0u);  // in-flight spans are not committed
  }
  EXPECT_EQ(tracer.recorded(), 1u);
  const std::vector<obs::TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].phase, obs::TraceRecord::Phase::Span);
  EXPECT_EQ(records[0].category, "sim");
  EXPECT_EQ(records[0].name, "drain");
  EXPECT_GE(records[0].durUs, 0.0);
  ASSERT_EQ(records[0].args.size(), 1u);
  EXPECT_EQ(records[0].args[0].key, "events");
  EXPECT_EQ(records[0].args[0].value.asInt(), 42);
}

TEST(Trace, EndIsIdempotent) {
  obs::Tracer tracer;
  obs::Tracer::Span span = tracer.span("sim", "once");
  span.end();
  span.end();
  EXPECT_EQ(tracer.recorded(), 1u);
  // Args after end() are dropped silently.
  span.arg("late", Json(1.0));
  EXPECT_TRUE(tracer.snapshot()[0].args.empty());
}

TEST(Trace, NestedSpansTrackDepth) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span outer = tracer.span("tuning", "outer");
    {
      obs::Tracer::Span inner = tracer.span("tuning", "inner");
      obs::Tracer::Span innermost = tracer.span("tuning", "innermost");
    }
  }
  const std::vector<obs::TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(findByName(records, "outer")->depth, 0u);
  EXPECT_EQ(findByName(records, "inner")->depth, 1u);
  EXPECT_EQ(findByName(records, "innermost")->depth, 2u);
  // All on the same thread, and the outer span encloses the inner ones.
  EXPECT_EQ(findByName(records, "inner")->tid, findByName(records, "outer")->tid);
  EXPECT_LE(findByName(records, "outer")->startUs, findByName(records, "inner")->startUs);
}

TEST(Trace, MovedFromSpanIsInert) {
  obs::Tracer tracer;
  obs::Tracer::Span a = tracer.span("sim", "moved");
  obs::Tracer::Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): inert by contract
  EXPECT_TRUE(b.active());
  a.end();
  EXPECT_EQ(tracer.recorded(), 0u);
  b.end();
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer{{.enabled = false}};
  {
    obs::Tracer::Span span = tracer.span("sim", "ghost");
    span.arg("x", Json(1.0));
    tracer.instant("rpc", "ghost-instant");
  }
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());

  // The null-safe helpers share the contract, including for nullptr.
  obs::beginSpan(nullptr, "sim", "null").end();
  obs::instant(nullptr, "sim", "null");
  obs::beginSpan(&tracer, "sim", "off").end();
  obs::instant(&tracer, "sim", "off");
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Trace, InstantRecordsImmediately) {
  obs::Tracer tracer;
  tracer.instant("rpc", "write", {{"bytes", Json(static_cast<std::int64_t>(4096))}});
  const std::vector<obs::TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].phase, obs::TraceRecord::Phase::Instant);
  EXPECT_DOUBLE_EQ(records[0].durUs, 0.0);
  ASSERT_EQ(records[0].args.size(), 1u);
  EXPECT_EQ(records[0].args[0].value.asInt(), 4096);
}

TEST(Trace, RingDropsOldestBeyondCapacity) {
  obs::Tracer tracer{{.enabled = true, .capacity = 4}};
  for (int i = 0; i < 10; ++i) {
    tracer.instant("sim", "e" + std::to_string(i));
  }
  EXPECT_EQ(tracer.recorded(), 10u);
  EXPECT_EQ(tracer.dropped(), 6u);
  const std::vector<obs::TraceRecord> records = tracer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Chronological order, oldest surviving first.
  EXPECT_EQ(records[0].name, "e6");
  EXPECT_EQ(records[3].name, "e9");
}

TEST(Trace, ClearEmptiesRing) {
  obs::Tracer tracer;
  tracer.instant("sim", "x");
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(Trace, ConcurrentCommitsAreSafeAndTagged) {
  obs::Tracer tracer{{.enabled = true, .capacity = 1 << 12}};
  constexpr int kThreads = 4;
  constexpr int kEach = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer] {
      for (int i = 0; i < kEach; ++i) {
        obs::Tracer::Span span = tracer.span("harness", "work");
        span.arg("i", Json(static_cast<std::int64_t>(i)));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_EQ(tracer.recorded(), static_cast<std::uint64_t>(kThreads * kEach));
  std::vector<std::uint32_t> tids;
  for (const obs::TraceRecord& r : tracer.snapshot()) {
    if (std::find(tids.begin(), tids.end(), r.tid) == tids.end()) {
      tids.push_back(r.tid);
    }
  }
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

#include "obs/counters.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>
#include <vector>

namespace obs = stellar::obs;

TEST(Counters, CounterAddsAndResets) {
  obs::CounterRegistry registry;
  obs::Counter& c = registry.counter("pfs.rpc.data");
  c.add();
  c.add(4.5);
  EXPECT_DOUBLE_EQ(c.value(), 5.5);
  registry.reset();
  EXPECT_DOUBLE_EQ(c.value(), 0.0);
  // Registration survives a reset.
  EXPECT_EQ(registry.size(), 1u);
}

TEST(Counters, FindOrCreateReturnsSameCell) {
  obs::CounterRegistry registry;
  obs::Counter& a = registry.counter("x");
  obs::Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  a.add(2.0);
  EXPECT_DOUBLE_EQ(b.value(), 2.0);
}

TEST(Counters, LabelsDistinguishInstancesAndOrderDoesNot) {
  obs::CounterRegistry registry;
  registry.counter("pfs.ost.seeks", {{"ost", "0"}}).add(3.0);
  registry.counter("pfs.ost.seeks", {{"ost", "1"}}).add(7.0);
  // Same labels in a different order resolve to the same cell.
  registry.counter("m", {{"a", "1"}, {"b", "2"}}).add(1.0);
  registry.counter("m", {{"b", "2"}, {"a", "1"}}).add(1.0);

  EXPECT_EQ(registry.size(), 3u);
  EXPECT_DOUBLE_EQ(registry.counter("pfs.ost.seeks", {{"ost", "0"}}).value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.counter("pfs.ost.seeks", {{"ost", "1"}}).value(), 7.0);
  EXPECT_DOUBLE_EQ(registry.counter("m", {{"a", "1"}, {"b", "2"}}).value(), 2.0);
}

TEST(Counters, KindMismatchThrows) {
  obs::CounterRegistry registry;
  (void)registry.counter("metric");
  EXPECT_THROW((void)registry.gauge("metric"), std::logic_error);
  EXPECT_THROW((void)registry.histogram("metric"), std::logic_error);
}

TEST(Counters, GaugeSetAndSetMax) {
  obs::CounterRegistry registry;
  obs::Gauge& g = registry.gauge("queue_depth");
  g.set(5.0);
  g.setMax(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.setMax(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
}

TEST(Counters, HistogramObserveAggregates) {
  obs::CounterRegistry registry;
  obs::Histogram& h = registry.histogram("latency", {}, {1.0, 10.0, 100.0});
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const obs::HistogramData data = h.data();
  EXPECT_EQ(data.count, 4u);
  EXPECT_DOUBLE_EQ(data.sum, 555.5);
  EXPECT_DOUBLE_EQ(data.minValue, 0.5);
  EXPECT_DOUBLE_EQ(data.maxValue, 500.0);
  ASSERT_EQ(data.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(data.buckets[0], 1u);
  EXPECT_EQ(data.buckets[1], 1u);
  EXPECT_EQ(data.buckets[2], 1u);
  EXPECT_EQ(data.buckets[3], 1u);
}

TEST(Counters, MergeAddsCountersKeepsGaugeMaxAndMergesHistograms) {
  obs::CounterRegistry a;
  obs::CounterRegistry b;
  a.counter("events").add(10.0);
  b.counter("events").add(5.0);
  a.gauge("peak").set(3.0);
  b.gauge("peak").set(8.0);
  a.histogram("lat", {}, {1.0, 10.0}).observe(0.5);
  b.histogram("lat", {}, {1.0, 10.0}).observe(5.0);
  b.counter("only_in_b").add(2.0);

  a.merge(b);

  EXPECT_DOUBLE_EQ(a.counter("events").value(), 15.0);
  EXPECT_DOUBLE_EQ(a.gauge("peak").value(), 8.0);
  EXPECT_DOUBLE_EQ(a.counter("only_in_b").value(), 2.0);
  const obs::HistogramData merged = a.histogram("lat", {}, {1.0, 10.0}).data();
  EXPECT_EQ(merged.count, 2u);
  EXPECT_DOUBLE_EQ(merged.sum, 5.5);
  EXPECT_EQ(merged.buckets[0], 1u);
  EXPECT_EQ(merged.buckets[1], 1u);
}

TEST(Counters, SnapshotIsRegistrationOrdered) {
  obs::CounterRegistry registry;
  registry.counter("b.second").add(1.0);
  registry.gauge("a.first").set(2.0);
  registry.counter("c.third", {{"k", "v"}}).add(3.0);

  const std::vector<obs::MetricSample> snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].key.name, "b.second");
  EXPECT_EQ(snap[0].kind, obs::MetricSample::Kind::Counter);
  EXPECT_DOUBLE_EQ(snap[0].value, 1.0);
  EXPECT_EQ(snap[1].key.name, "a.first");
  EXPECT_EQ(snap[1].kind, obs::MetricSample::Kind::Gauge);
  EXPECT_EQ(snap[2].key.name, "c.third");
  ASSERT_EQ(snap[2].key.labels.size(), 1u);
  EXPECT_EQ(snap[2].key.labels[0].first, "k");
}

TEST(Counters, ConcurrentFindOrCreateAndAdd) {
  obs::CounterRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kAdds = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kAdds; ++i) {
        registry.counter("shared").add();
        registry.counter("labelled", {{"i", std::to_string(i % 4)}}).add();
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  EXPECT_DOUBLE_EQ(registry.counter("shared").value(), kThreads * kAdds);
  double labelled = 0.0;
  for (int i = 0; i < 4; ++i) {
    labelled += registry.counter("labelled", {{"i", std::to_string(i)}}).value();
  }
  EXPECT_DOUBLE_EQ(labelled, kThreads * kAdds);
}

TEST(Counters, ToJsonShape) {
  obs::CounterRegistry registry;
  registry.counter("hits", {{"kind", "read"}}).add(4.0);
  registry.histogram("lat", {}, {1.0}).observe(0.5);
  const stellar::util::Json doc = registry.toJson();
  ASSERT_TRUE(doc.contains("metrics"));
  const auto& metrics = doc.at("metrics").asArray();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0].getString("name"), "hits");
  EXPECT_EQ(metrics[0].getString("kind"), "counter");
  EXPECT_DOUBLE_EQ(metrics[0].getNumber("value"), 4.0);
  EXPECT_EQ(metrics[1].getString("kind"), "histogram");
  ASSERT_TRUE(metrics[1].contains("histogram"));
  EXPECT_DOUBLE_EQ(metrics[1].at("histogram").getNumber("count"), 1.0);
}

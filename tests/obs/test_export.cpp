#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/json.hpp"

namespace obs = stellar::obs;
using stellar::util::Json;

namespace {

std::vector<obs::TraceRecord> sampleRecords() {
  obs::Tracer tracer;
  {
    obs::Tracer::Span outer = tracer.span("tuning", "tune:IOR_64K");
    obs::Tracer::Span inner = tracer.span("sim", "event-loop");
    tracer.instant("rpc", "write",
                   {{"ost", Json(static_cast<std::int64_t>(2))},
                    {"bytes", Json(65536.0)}});
  }
  return tracer.snapshot();
}

}  // namespace

TEST(Export, JsonlRoundTripsLosslessly) {
  const std::vector<obs::TraceRecord> records = sampleRecords();
  const std::string jsonl = toJsonl(records);
  // One line per record.
  std::size_t lines = 0;
  for (char c : jsonl) {
    lines += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(lines, records.size());

  const std::vector<obs::TraceRecord> parsed = obs::fromJsonl(jsonl);
  ASSERT_EQ(parsed.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(parsed[i].phase, records[i].phase);
    EXPECT_EQ(parsed[i].category, records[i].category);
    EXPECT_EQ(parsed[i].name, records[i].name);
    // Timestamps survive to the JSON writer's precision (sub-nanosecond
    // at microsecond scale), not bit-exactly.
    EXPECT_NEAR(parsed[i].startUs, records[i].startUs, 1e-6);
    EXPECT_NEAR(parsed[i].durUs, records[i].durUs, 1e-6);
    EXPECT_EQ(parsed[i].tid, records[i].tid);
    EXPECT_EQ(parsed[i].depth, records[i].depth);
    ASSERT_EQ(parsed[i].args.size(), records[i].args.size());
    for (std::size_t j = 0; j < records[i].args.size(); ++j) {
      EXPECT_EQ(parsed[i].args[j].key, records[i].args[j].key);
      EXPECT_TRUE(parsed[i].args[j].value == records[i].args[j].value);
    }
  }
}

TEST(Export, FromJsonlSkipsBlankLinesAndThrowsOnGarbage) {
  EXPECT_TRUE(obs::fromJsonl("\n\n").empty());
  EXPECT_THROW((void)obs::fromJsonl("not json\n"), stellar::util::JsonError);
}

TEST(Export, ChromeTraceShape) {
  const Json doc = obs::toChromeTrace(sampleRecords());
  ASSERT_TRUE(doc.contains("traceEvents"));
  EXPECT_EQ(doc.getString("displayTimeUnit"), "ms");
  const auto& events = doc.at("traceEvents").asArray();
  ASSERT_EQ(events.size(), 3u);

  bool sawSpan = false;
  bool sawInstant = false;
  for (const Json& event : events) {
    EXPECT_FALSE(event.getString("name").empty());
    EXPECT_FALSE(event.getString("cat").empty());
    EXPECT_EQ(event.getNumber("pid"), 1.0);
    const std::string ph = event.getString("ph");
    if (ph == "X") {
      sawSpan = true;
      EXPECT_TRUE(event.contains("dur"));
    } else {
      ASSERT_EQ(ph, "i");
      sawInstant = true;
      EXPECT_EQ(event.getString("s"), "t");
      EXPECT_FALSE(event.contains("dur"));
    }
  }
  EXPECT_TRUE(sawSpan);
  EXPECT_TRUE(sawInstant);

  // Instant args survive export.
  const Json& instant = events[0];  // chronological: instant committed first
  ASSERT_TRUE(instant.contains("args"));
  EXPECT_EQ(instant.at("args").getNumber("ost"), 2.0);
  EXPECT_EQ(instant.at("args").getNumber("bytes"), 65536.0);
}

TEST(Export, ChromeTraceDumpParsesBack) {
  // The CLI writes dump(1); make sure that text is valid JSON with the
  // structure chrome://tracing expects at the top level.
  const std::string text = obs::toChromeTrace(sampleRecords()).dump(1);
  const Json parsed = Json::parse(text);
  ASSERT_TRUE(parsed.contains("traceEvents"));
  EXPECT_TRUE(parsed.at("traceEvents").isArray());
}

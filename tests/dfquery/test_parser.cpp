#include <gtest/gtest.h>

#include "dfquery/ast.hpp"
#include "dfquery/lexer.hpp"

namespace stellar::dfq {
namespace {

TEST(Parser, MinimalSelectStar) {
  const Query q = parseQuery("select * from posix");
  EXPECT_TRUE(q.select.empty());
  EXPECT_EQ(q.table, "posix");
  EXPECT_EQ(q.where, nullptr);
  EXPECT_FALSE(q.groupBy.has_value());
}

TEST(Parser, SelectListWithAggregates) {
  const Query q = parseQuery("select file, sum(bytes), count(*), avg(x) from t");
  ASSERT_EQ(q.select.size(), 4u);
  EXPECT_FALSE(q.select[0].agg.has_value());
  EXPECT_EQ(q.select[1].agg, df::DataFrame::Agg::Sum);
  EXPECT_EQ(q.select[2].agg, df::DataFrame::Agg::Count);
  EXPECT_EQ(q.select[2].column, "*");
  EXPECT_EQ(q.select[3].agg, df::DataFrame::Agg::Mean);
}

TEST(Parser, FullClauseSet) {
  const Query q = parseQuery(
      "select rank, sum(bytes) from posix where bytes > 0 and rank >= 2 "
      "group by rank order by sum_bytes desc limit 7");
  EXPECT_NE(q.where, nullptr);
  EXPECT_EQ(q.groupBy, "rank");
  EXPECT_EQ(q.orderBy, "sum_bytes");
  EXPECT_TRUE(q.orderDescending);
  EXPECT_EQ(q.limit, 7u);
}

TEST(Parser, WherePrecedenceOrOverAnd) {
  const Query q = parseQuery("select * from t where a == 1 or b == 2 and c == 3");
  // Top node must be OR (AND binds tighter).
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind, ExprKind::Binary);
  EXPECT_EQ(q.where->text, "or");
  EXPECT_EQ(q.where->args[1]->text, "and");
}

TEST(Parser, ArithmeticInsideComparisons) {
  const Query q = parseQuery("select * from t where a + b * 2 < c / 4");
  EXPECT_EQ(q.where->text, "<");
  EXPECT_EQ(q.where->args[0]->text, "+");
  EXPECT_EQ(q.where->args[0]->args[1]->text, "*");
}

TEST(Parser, EqualsNormalizedToDoubleEquals) {
  const Query q = parseQuery("select * from t where a = 5");
  EXPECT_EQ(q.where->text, "==");
}

TEST(Parser, NotAndUnaryMinus) {
  const Query q = parseQuery("select * from t where not a == -1");
  EXPECT_EQ(q.where->text, "not");
  EXPECT_EQ(q.where->args[0]->text, "==");
  EXPECT_EQ(q.where->args[0]->args[1]->text, "-");
}

TEST(Parser, FunctionCallsInExpressions) {
  const Query q = parseQuery("select * from t where contains(file, 'mdt')");
  EXPECT_EQ(q.where->kind, ExprKind::Call);
  EXPECT_EQ(q.where->text, "contains");
  EXPECT_EQ(q.where->args.size(), 2u);
}

TEST(Parser, RejectsMalformedQueries) {
  EXPECT_THROW((void)parseQuery("selekt * from t"), QueryError);
  EXPECT_THROW((void)parseQuery("select from t"), QueryError);
  EXPECT_THROW((void)parseQuery("select * from"), QueryError);
  EXPECT_THROW((void)parseQuery("select * from t where"), QueryError);
  EXPECT_THROW((void)parseQuery("select * from t limit -2"), QueryError);
  EXPECT_THROW((void)parseQuery("select * from t garbage"), QueryError);
  EXPECT_THROW((void)parseQuery("select bogus(x) from t"), QueryError);
  EXPECT_THROW((void)parseQuery("select sum(*) from t"), QueryError);
  EXPECT_THROW((void)parseQuery("select sum(x from t"), QueryError);
}

}  // namespace
}  // namespace stellar::dfq

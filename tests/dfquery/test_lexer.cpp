#include <gtest/gtest.h>

#include "dfquery/lexer.hpp"

namespace stellar::dfq {
namespace {

TEST(Lexer, TokenizesIdentifiersNumbersStringsSymbols) {
  const auto tokens = tokenize("select sum(bytes) from posix where x >= 1.5e2");
  ASSERT_GE(tokens.size(), 11u);
  EXPECT_TRUE(tokens[0].isKeyword("SELECT"));  // case-insensitive
  EXPECT_TRUE(tokens[1].isKeyword("sum"));
  EXPECT_TRUE(tokens[2].isSymbol("("));
  EXPECT_EQ(tokens[3].text, "bytes");
  EXPECT_TRUE(tokens[4].isSymbol(")"));
  const Token& number = tokens[10];
  EXPECT_EQ(number.kind, TokenKind::Number);
  EXPECT_DOUBLE_EQ(number.number, 150.0);
  EXPECT_EQ(tokens.back().kind, TokenKind::End);
}

TEST(Lexer, DottedIdentifiersStayWhole) {
  const auto tokens = tokenize("osc.max_rpcs_in_flight");
  EXPECT_EQ(tokens[0].text, "osc.max_rpcs_in_flight");
}

TEST(Lexer, StringLiteralsBothQuoteStyles) {
  const auto a = tokenize("'hello world'");
  EXPECT_EQ(a[0].kind, TokenKind::String);
  EXPECT_EQ(a[0].text, "hello world");
  const auto b = tokenize("\"with, punctuation!\"");
  EXPECT_EQ(b[0].text, "with, punctuation!");
}

TEST(Lexer, TwoCharOperators) {
  const auto tokens = tokenize("a >= b <= c != d == e");
  EXPECT_TRUE(tokens[1].isSymbol(">="));
  EXPECT_TRUE(tokens[3].isSymbol("<="));
  EXPECT_TRUE(tokens[5].isSymbol("!="));
  EXPECT_TRUE(tokens[7].isSymbol("=="));
}

TEST(Lexer, ErrorsOnBadInput) {
  EXPECT_THROW((void)tokenize("select @ from t"), QueryError);
  EXPECT_THROW((void)tokenize("'unterminated"), QueryError);
}

TEST(Lexer, OffsetsTrackPositions) {
  const auto tokens = tokenize("ab  cd");
  EXPECT_EQ(tokens[0].offset, 0u);
  EXPECT_EQ(tokens[1].offset, 4u);
}

}  // namespace
}  // namespace stellar::dfq

#include <gtest/gtest.h>

#include "dfquery/eval.hpp"
#include "dfquery/lexer.hpp"

namespace stellar::dfq {
namespace {

df::DataFrame sample() {
  df::DataFrame frame;
  frame.addColumn("file", df::ColumnType::String);
  frame.addColumn("rank", df::ColumnType::Int64);
  frame.addColumn("bytes", df::ColumnType::Int64);
  frame.appendRow({std::string{"/ior/a"}, std::int64_t{0}, std::int64_t{100}});
  frame.appendRow({std::string{"/ior/b"}, std::int64_t{1}, std::int64_t{200}});
  frame.appendRow({std::string{"/mdt/c"}, std::int64_t{0}, std::int64_t{300}});
  frame.appendRow({std::string{"/mdt/d"}, std::int64_t{2}, std::int64_t{400}});
  return frame;
}

class EvalTest : public ::testing::Test {
 protected:
  df::DataFrame frame_ = sample();
  TableSet tables_{{"posix", &frame_}};
};

TEST_F(EvalTest, SelectStarReturnsEverything) {
  const auto result = runQuery("select * from posix", tables_);
  EXPECT_EQ(result.rowCount(), 4u);
  EXPECT_EQ(result.columnCount(), 3u);
}

TEST_F(EvalTest, WhereFiltersRows) {
  const auto result = runQuery("select file from posix where bytes > 150", tables_);
  EXPECT_EQ(result.rowCount(), 3u);
  const auto strict = runQuery(
      "select file from posix where bytes > 150 and rank == 0", tables_);
  EXPECT_EQ(strict.rowCount(), 1u);
  EXPECT_EQ(df::toString(strict.at("file", 0)), "/mdt/c");
}

TEST_F(EvalTest, StringEqualityAndContains) {
  const auto byName = runQuery("select * from posix where file == '/ior/a'", tables_);
  EXPECT_EQ(byName.rowCount(), 1u);
  const auto byPrefix = runQuery(
      "select count(*) from posix where contains(file, 'mdt')", tables_);
  EXPECT_DOUBLE_EQ(*df::asNumber(byPrefix.at("count_rows", 0)), 2.0);
}

TEST_F(EvalTest, GlobalAggregatesCollapseToOneRow) {
  const auto result = runQuery(
      "select sum(bytes), mean(bytes), min(bytes), max(bytes), count(*) from posix",
      tables_);
  EXPECT_EQ(result.rowCount(), 1u);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("sum_bytes", 0)), 1000.0);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("mean_bytes", 0)), 250.0);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("min_bytes", 0)), 100.0);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("max_bytes", 0)), 400.0);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("count_rows", 0)), 4.0);
}

TEST_F(EvalTest, GroupByWithKeyInSelect) {
  const auto result = runQuery(
      "select rank, sum(bytes) from posix group by rank order by rank", tables_);
  EXPECT_EQ(result.rowCount(), 3u);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("sum_bytes", 0)), 400.0);  // rank 0
}

TEST_F(EvalTest, OrderByAndLimit) {
  const auto result = runQuery(
      "select file, bytes from posix order by bytes desc limit 2", tables_);
  EXPECT_EQ(result.rowCount(), 2u);
  EXPECT_EQ(df::toString(result.at("file", 0)), "/mdt/d");
}

TEST_F(EvalTest, ArithmeticInWhere) {
  const auto result = runQuery(
      "select file from posix where bytes / 100 - rank >= 3", tables_);
  // /mdt/c: 300/100 - 0 = 3; /mdt/d: 400/100 - 2 = 2.
  EXPECT_EQ(result.rowCount(), 1u);
  EXPECT_EQ(df::toString(result.at("file", 0)), "/mdt/c");
}

TEST_F(EvalTest, NotOperator) {
  const auto result = runQuery(
      "select count(*) from posix where not contains(file, 'ior')", tables_);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("count_rows", 0)), 2.0);
}

TEST_F(EvalTest, ErrorsOnUnknownTableOrColumn) {
  EXPECT_THROW((void)runQuery("select * from nope", tables_), QueryError);
  EXPECT_THROW((void)runQuery("select missing from posix", tables_),
               df::DataFrameError);
  EXPECT_THROW((void)runQuery("select * from posix where missing > 1", tables_),
               df::DataFrameError);
}

TEST_F(EvalTest, ErrorsOnTypeMisuse) {
  EXPECT_THROW((void)runQuery("select * from posix where file + 1 > 0", tables_),
               QueryError);
  EXPECT_THROW((void)runQuery("select * from posix where file > 3", tables_),
               QueryError);
  EXPECT_THROW((void)runQuery("select * from posix where bytes / 0 > 1", tables_),
               QueryError);
  EXPECT_THROW((void)runQuery("select * from posix where contains(bytes, 'x')", tables_),
               QueryError);
}

TEST_F(EvalTest, MixedAggregateAndPlainColumnRequiresGroupBy) {
  EXPECT_THROW((void)runQuery("select file, sum(bytes) from posix", tables_),
               QueryError);
  EXPECT_THROW(
      (void)runQuery("select file, sum(bytes) from posix group by rank", tables_),
      QueryError);
}

TEST_F(EvalTest, EmptyFilterResultAggregatesToZero) {
  const auto result = runQuery(
      "select sum(bytes), count(*) from posix where bytes > 100000", tables_);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("sum_bytes", 0)), 0.0);
  EXPECT_DOUBLE_EQ(*df::asNumber(result.at("count_rows", 0)), 0.0);
}

}  // namespace
}  // namespace stellar::dfq

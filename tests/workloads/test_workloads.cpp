// Structural properties of the workload generators.
#include <gtest/gtest.h>

#include "util/units.hpp"
#include "workloads/workloads.hpp"

namespace stellar::workloads {
namespace {

using pfs::IoOp;
using pfs::JobSpec;
using pfs::OpKind;

WorkloadOptions opts(std::uint32_t ranks = 10, double scale = 0.02) {
  WorkloadOptions o;
  o.ranks = ranks;
  o.scale = scale;
  return o;
}

std::uint32_t barrierCount(const std::vector<IoOp>& prog) {
  std::uint32_t n = 0;
  for (const auto& op : prog) {
    n += op.kind == OpKind::Barrier ? 1 : 0;
  }
  return n;
}

TEST(Workloads, AllGeneratorsProduceValidJobs) {
  for (const auto& name : benchmarkNames()) {
    const JobSpec job = byName(name, opts());
    EXPECT_TRUE(job.validate().empty()) << name;
    EXPECT_EQ(job.rankCount(), 10u) << name;
  }
  for (const auto& name : realAppNames()) {
    const JobSpec job = byName(name, opts());
    EXPECT_TRUE(job.validate().empty()) << name;
  }
}

TEST(Workloads, BarrierCountsMatchAcrossRanks) {
  for (const auto& name : {"IOR_64K", "IOR_16M", "MDWorkbench_8K", "IO500", "AMReX",
                           "MACSio_512K"}) {
    const JobSpec job = byName(name, opts());
    const std::uint32_t expected = barrierCount(job.ranks[0]);
    for (const auto& prog : job.ranks) {
      EXPECT_EQ(barrierCount(prog), expected) << name;
    }
  }
}

TEST(Workloads, Ior64kUsesRandom64KTransfersToSharedFile) {
  const JobSpec job = ior64k(opts());
  ASSERT_EQ(job.files.size(), 1u);
  bool sawNonSequential = false;
  std::uint64_t lastEnd = 0;
  for (const auto& op : job.ranks[3]) {
    if (op.kind == OpKind::Write) {
      EXPECT_EQ(op.size, 64 * util::kKiB);
      if (lastEnd != 0 && op.offset != lastEnd) {
        sawNonSequential = true;
      }
      lastEnd = op.offset + op.size;
    }
  }
  EXPECT_TRUE(sawNonSequential);
}

TEST(Workloads, Ior16mIsSequentialPerSegment) {
  const JobSpec job = ior16m(opts(10, 0.5));
  std::uint64_t lastEnd = 0;
  std::uint32_t discontinuities = 0;
  std::uint32_t writes = 0;
  for (const auto& op : job.ranks[2]) {
    if (op.kind == OpKind::Write) {
      EXPECT_EQ(op.size, 16 * util::kMiB);
      if (lastEnd != 0 && op.offset != lastEnd) {
        ++discontinuities;
      }
      lastEnd = op.offset + op.size;
      ++writes;
    }
  }
  EXPECT_GT(writes, 0u);
  // Only segment boundaries break sequentiality (3 segments -> 2 breaks).
  EXPECT_LE(discontinuities, 2u);
}

TEST(Workloads, IorWritesThenReadsSameVolume) {
  const JobSpec job = ior64k(opts());
  std::uint64_t written = 0;
  std::uint64_t read = 0;
  for (const auto& prog : job.ranks) {
    for (const auto& op : prog) {
      if (op.kind == OpKind::Write) {
        written += op.size;
      }
      if (op.kind == OpKind::Read) {
        read += op.size;
      }
    }
  }
  EXPECT_EQ(written, read);
  EXPECT_GT(written, 0u);
}

TEST(Workloads, IorReadPhaseShiftsRanks) {
  const JobSpec job = ior16m(opts());
  // Rank 0's first read offset must differ from its first write offset
  // (reads target another rank's block).
  std::uint64_t firstWrite = ~0ULL;
  std::uint64_t firstRead = ~0ULL;
  for (const auto& op : job.ranks[0]) {
    if (op.kind == OpKind::Write && firstWrite == ~0ULL) {
      firstWrite = op.offset;
    }
    if (op.kind == OpKind::Read && firstRead == ~0ULL) {
      firstRead = op.offset;
    }
  }
  EXPECT_NE(firstWrite, firstRead);
}

TEST(Workloads, MdWorkbenchStructure) {
  const JobSpec job = mdworkbench(8 * util::kKiB, opts(4, 0.02));
  // 4 ranks x 10 dirs x filesPerDir files.
  EXPECT_EQ(job.dirs.size(), 1u + 4 * 10);
  const std::size_t files = job.files.size();
  EXPECT_EQ(files % (4 * 10), 0u);
  // Each file: 3 rounds of create/write/close/stat/open/read/close/unlink.
  std::uint64_t creates = 0;
  std::uint64_t unlinks = 0;
  std::uint64_t stats = 0;
  for (const auto& prog : job.ranks) {
    for (const auto& op : prog) {
      creates += op.kind == OpKind::Create ? 1 : 0;
      unlinks += op.kind == OpKind::Unlink ? 1 : 0;
      stats += op.kind == OpKind::Stat ? 1 : 0;
    }
  }
  EXPECT_EQ(creates, files * 3);
  EXPECT_EQ(unlinks, files * 3);
  EXPECT_EQ(stats, files * 3);
}

TEST(Workloads, MdWorkbenchNames) {
  EXPECT_EQ(mdworkbench(2 * util::kKiB, opts()).name, "MDWorkbench_2K");
  EXPECT_EQ(mdworkbench(8 * util::kKiB, opts()).name, "MDWorkbench_8K");
}

TEST(Workloads, Io500HasAllPhaseFileFamilies) {
  const JobSpec job = io500(opts());
  bool sawEasy = false;
  bool sawHard = false;
  bool sawMdtEasy = false;
  bool sawMdtHard = false;
  for (const auto& f : job.files) {
    sawEasy |= f.name.find("ior-easy") != std::string::npos;
    sawHard |= f.name.find("ior-hard") != std::string::npos;
    sawMdtEasy |= f.name.find("mdt-easy") != std::string::npos;
    sawMdtHard |= f.name.find("mdt-hard") != std::string::npos;
  }
  EXPECT_TRUE(sawEasy);
  EXPECT_TRUE(sawHard);
  EXPECT_TRUE(sawMdtEasy);
  EXPECT_TRUE(sawMdtHard);
}

TEST(Workloads, AmrexInterleavesComputeAndSharedWrites) {
  const JobSpec job = amrex(opts());
  bool sawCompute = false;
  for (const auto& op : job.ranks[1]) {
    sawCompute |= op.kind == OpKind::Compute;
  }
  EXPECT_TRUE(sawCompute);
  // Level files are shared: fewer data files than ranks x levels.
  EXPECT_LT(job.files.size(), std::size_t{10} * 3 * 3 + 3);
}

TEST(Workloads, MacsioIsFilePerProcess) {
  const JobSpec job = macsio(512 * util::kKiB, opts());
  // 2 dumps x 10 ranks files.
  EXPECT_EQ(job.files.size(), 20u);
  EXPECT_EQ(job.name, "MACSio_512K");
  EXPECT_EQ(macsio(16 * util::kMiB, opts()).name, "MACSio_16M");
}

TEST(Workloads, MacsioObjectSizesJitterAroundNominal) {
  const JobSpec job = macsio(512 * util::kKiB, opts(4, 0.2));
  std::uint64_t minSize = ~0ULL;
  std::uint64_t maxSize = 0;
  for (const auto& op : job.ranks[0]) {
    if (op.kind == OpKind::Write) {
      minSize = std::min(minSize, op.size);
      maxSize = std::max(maxSize, op.size);
    }
  }
  EXPECT_GE(minSize, 512 * util::kKiB * 3 / 4 - util::kPageSize);
  EXPECT_LE(maxSize, 512 * util::kKiB * 5 / 4 + util::kPageSize);
  EXPECT_NE(minSize, maxSize);
}

TEST(Workloads, ByNameRejectsUnknown) {
  EXPECT_THROW((void)byName("NotAWorkload", opts()), std::invalid_argument);
}

TEST(Workloads, OptionValidation) {
  WorkloadOptions bad;
  bad.ranks = 0;
  EXPECT_THROW((void)ior64k(bad), std::invalid_argument);
  bad.ranks = 10;
  bad.scale = 0.0;
  EXPECT_THROW((void)ior64k(bad), std::invalid_argument);
  bad.scale = 1.5;
  EXPECT_THROW((void)ior64k(bad), std::invalid_argument);
}

TEST(Workloads, ScaleShrinksVolume) {
  const JobSpec small = ior16m(opts(10, 0.05));
  const JobSpec large = ior16m(opts(10, 1.0));
  EXPECT_LT(small.totalOps(), large.totalOps());
}

}  // namespace
}  // namespace stellar::workloads

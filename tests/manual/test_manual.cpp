// Ground-truth parameter DB and the synthetic manual.
#include <gtest/gtest.h>

#include "manual/manual_text.hpp"
#include "manual/param_facts.hpp"
#include "util/expr.hpp"

namespace stellar::manual {
namespace {

TEST(ParamFacts, ThirteenGroundTruthTunables) {
  EXPECT_EQ(groundTruthTunables().size(), 13u);
}

TEST(ParamFacts, EveryCategoryRepresented) {
  int counts[5] = {0, 0, 0, 0, 0};
  for (const ParamFact& fact : allParamFacts()) {
    ++counts[static_cast<int>(fact.category)];
  }
  for (const int c : counts) {
    EXPECT_GT(c, 0);
  }
}

TEST(ParamFacts, LookupByName) {
  const ParamFact* fact = findParamFact("osc.max_dirty_mb");
  ASSERT_NE(fact, nullptr);
  EXPECT_EQ(fact->defaultValue, 32);
  EXPECT_EQ(findParamFact("no.such_param"), nullptr);
}

TEST(ParamFacts, NamesAreUnique) {
  std::set<std::string> seen;
  for (const ParamFact& fact : allParamFacts()) {
    EXPECT_TRUE(seen.insert(fact.name).second) << fact.name;
  }
}

TEST(ParamFacts, RangeExpressionsParseAndResolve) {
  SystemFacts facts;
  const auto resolver = [&facts](std::string_view name) -> std::optional<double> {
    if (const auto v = facts.resolve(name)) {
      return v;
    }
    if (const ParamFact* other = findParamFact(name)) {
      return static_cast<double>(other->defaultValue);
    }
    return std::nullopt;
  };
  for (const ParamFact& fact : allParamFacts()) {
    if (!fact.minExpr.empty()) {
      EXPECT_NO_THROW((void)util::evaluateExpression(fact.minExpr, resolver))
          << fact.name;
    }
    if (!fact.maxExpr.empty()) {
      const double maxV = util::evaluateExpression(fact.maxExpr, resolver);
      const double minV = fact.minExpr.empty()
                              ? maxV
                              : util::evaluateExpression(fact.minExpr, resolver);
      EXPECT_LE(minV, maxV) << fact.name;
    }
  }
}

TEST(ParamFacts, DefaultsWithinRanges) {
  SystemFacts facts;
  const auto resolver = [&facts](std::string_view name) -> std::optional<double> {
    if (const auto v = facts.resolve(name)) {
      return v;
    }
    if (const ParamFact* other = findParamFact(name)) {
      return static_cast<double>(other->defaultValue);
    }
    return std::nullopt;
  };
  for (const ParamFact& fact : allParamFacts()) {
    if (fact.minExpr.empty() || fact.maxExpr.empty()) {
      continue;
    }
    const double lo = util::evaluateExpression(fact.minExpr, resolver);
    const double hi = util::evaluateExpression(fact.maxExpr, resolver);
    EXPECT_GE(static_cast<double>(fact.defaultValue), lo) << fact.name;
    EXPECT_LE(static_cast<double>(fact.defaultValue), hi) << fact.name;
  }
}

TEST(ParamFacts, SystemFactsResolver) {
  SystemFacts facts;
  facts.clientRamMb = 1234;
  EXPECT_EQ(facts.resolve("client_ram_mb"), 1234.0);
  EXPECT_EQ(facts.resolve("ost_count"), 5.0);
  EXPECT_EQ(facts.resolve("unknown_fact"), std::nullopt);
}

TEST(ManualText, EveryDocumentedParamHasExactlyOneSection) {
  const std::string& text = fullManualText();
  for (const ParamFact& fact : allParamFacts()) {
    const std::string marker = parameterSectionMarker(fact.name);
    const auto first = text.find(marker);
    if (fact.category == ParamCategory::Undocumented) {
      EXPECT_EQ(first, std::string::npos) << fact.name;
      continue;
    }
    ASSERT_NE(first, std::string::npos) << fact.name;
    EXPECT_EQ(text.find(marker, first + 1), std::string::npos)
        << fact.name << " has duplicate sections";
  }
}

TEST(ManualText, SectionsCarryRangeLines) {
  const std::string& text = fullManualText();
  for (const ParamFact& fact : allParamFacts()) {
    if (fact.category == ParamCategory::Undocumented) {
      continue;
    }
    const auto at = text.find(parameterSectionMarker(fact.name));
    const std::string window = text.substr(at, 1500);
    EXPECT_NE(window.find("Default: "), std::string::npos) << fact.name;
    EXPECT_NE(window.find("Maximum: " + fact.maxExpr), std::string::npos) << fact.name;
  }
}

TEST(ManualText, IsLargeEnoughToNeedRetrieval) {
  // The manual must exceed any realistic single-context window by chunking
  // standards used in the pipeline (>> one 1024-token chunk).
  EXPECT_GT(fullManualText().size(), 50000u);
  EXPECT_GT(manualSections().size(), 10u);
}

TEST(ManualText, DeterministicAcrossCalls) {
  EXPECT_EQ(&fullManualText(), &fullManualText());
  EXPECT_EQ(fullManualText(), fullManualText());
}

}  // namespace
}  // namespace stellar::manual

// Tests for stellar-lint (tools/stellar_lint). Fixture files under
// fixtures/ mirror the repo layout so path-based rule scoping applies;
// they are data, not compiled code. The suite ends with a self-test that
// holds the shipped src/ tree to zero unsuppressed findings.

#include <algorithm>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hpp"
#include "util/json.hpp"

namespace stellar::lint {
namespace {

Report runOn(std::vector<std::string> paths) {
  Options options;
  options.repoRoot = STELLAR_LINT_FIXTURES;
  options.paths = std::move(paths);
  return run(options);
}

/// (rule, line) pairs of every finding, for exact-location assertions.
std::multiset<std::pair<std::string, int>> locations(const Report& report,
                                                     bool suppressed) {
  std::multiset<std::pair<std::string, int>> out;
  for (const Finding& f : report.findings) {
    if (f.suppressed == suppressed) {
      out.emplace(f.rule, f.line);
    }
  }
  return out;
}

// ---- lexer -----------------------------------------------------------------

TEST(Lexer, TokenizesIdentifiersNumbersAndStrings) {
  const SourceFile file = lex("x.cpp", "foo(42, \"bar\", 'c');\n");
  ASSERT_EQ(file.tokens.size(), 9U);
  EXPECT_EQ(file.tokens[0].kind, Token::Kind::Identifier);
  EXPECT_EQ(file.tokens[0].text, "foo");
  EXPECT_EQ(file.tokens[2].kind, Token::Kind::Number);
  EXPECT_EQ(file.tokens[2].text, "42");
  EXPECT_EQ(file.tokens[4].kind, Token::Kind::String);
  EXPECT_EQ(file.tokens[4].text, "bar");
  EXPECT_EQ(file.tokens[6].kind, Token::Kind::CharLit);
}

TEST(Lexer, SkipsPreprocessorLinesAndCollectsComments) {
  const SourceFile file =
      lex("x.cpp", "#include <random>\n// note\nint x; /* block */\n");
  for (const Token& t : file.tokens) {
    EXPECT_NE(t.text, "random") << "include payload leaked into tokens";
  }
  ASSERT_EQ(file.comments.size(), 2U);
  EXPECT_EQ(file.comments[0].line, 2);
  EXPECT_EQ(file.comments[0].text, " note");
}

TEST(Lexer, TracksLinesThroughRawStringsAndBlockComments) {
  const SourceFile file =
      lex("x.cpp", "auto s = R\"(line1\nline2)\";\n/* a\nb */\nint y;\n");
  ASSERT_GE(file.tokens.size(), 2U);
  const Token& y = file.tokens[file.tokens.size() - 2];
  EXPECT_EQ(y.text, "y");
  EXPECT_EQ(y.line, 5);
}

TEST(Lexer, KeepsScopeResolutionAtomic) {
  const SourceFile file = lex("x.cpp", "std::hash<int> h;\n");
  ASSERT_GE(file.tokens.size(), 3U);
  EXPECT_EQ(file.tokens[1].kind, Token::Kind::Punct);
  EXPECT_EQ(file.tokens[1].text, "::");
}

// ---- determinism rules -----------------------------------------------------

TEST(Rules, DetRandomFlagsEnginesAndCallsOnly) {
  const Report report = runOn({"src/sim/det_random.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {
      {"DET-RANDOM", 5}, {"DET-RANDOM", 5}, {"DET-RANDOM", 6}, {"DET-RANDOM", 7}};
  EXPECT_EQ(got, want);  // `strand`/`rng.fork()` must not match
}

TEST(Rules, DetClockFlagsWallClocksNotSimTime) {
  const Report report = runOn({"src/sim/det_clock.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {
      {"DET-CLOCK", 6}, {"DET-CLOCK", 7}, {"DET-CLOCK", 8}, {"DET-CLOCK", 9}};
  EXPECT_EQ(got, want);  // engine.now() / event.time() / .time field stay legal
}

TEST(Rules, DetHashFlagsStdHashOnly) {
  const Report report = runOn({"src/sim/det_hash.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {{"DET-HASH", 5}};
  EXPECT_EQ(got, want);  // util::hash64 and my::hash stay legal
}

TEST(Rules, DetSeedLiteralFlagsCallsNotOptionDefaults) {
  const Report report = runOn({"src/sim/det_seed.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {{"DET-SEED-LITERAL", 9},
                                                           {"DET-SEED-LITERAL", 10}};
  EXPECT_EQ(got, want);  // `seed = 42` default and opts.seed plumbing stay legal
}

TEST(Rules, DetUnorderedIterAndFloatAccum) {
  const Report report = runOn({"src/sim/det_unordered.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {
      {"DET-UNORDERED-ITER", 10},  // bad(): unmarked loop
      {"DET-FLOAT-ACCUM", 18},     // badFloat(): marker cannot waive FP accum
  };
  EXPECT_EQ(got, want);  // waived() integer count and std::map loop stay legal
}

TEST(Rules, DetUnorderedIterSeesPairedHeaderDeclarations) {
  const Report report = runOn({"src/sim/paired.cpp", "src/sim/paired.hpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {{"DET-UNORDERED-ITER", 7}};
  EXPECT_EQ(got, want);
}

TEST(Rules, DeterminismRulesScopeToSimCriticalDirs) {
  const Report report = runOn({"src/util/noncritical.cpp"});
  EXPECT_TRUE(report.findings.empty())
      << toText(report, /*includeSuppressed=*/true);
}

// ---- resilience rules ------------------------------------------------------

TEST(Rules, ServiceDirIsSimCritical) {
  // The stellard dispatch path (src/service) joined the sim-critical set:
  // wall clocks there would break the 1-vs-8-worker byte-compare law.
  const Report report = runOn({"src/service/clocked_dispatch.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {
      {"DET-CLOCK", 8}, {"RES-COUNTER-NAME", 9}};
  EXPECT_EQ(got, want);  // injected clock + catalogued service.* name stay legal
}

TEST(Rules, ResJsonAtRequiresGuardOrParseScope) {
  const Report report = runOn({"src/core/res_json.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {{"RES-JSON-AT", 5}};
  EXPECT_EQ(got, want);  // contains()/try/fromJson/two-arg forms stay legal
}

TEST(Rules, ResCounterNameChecksTheCatalogue) {
  const Report report = runOn({"src/core/res_counter.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {{"RES-COUNTER-NAME", 5}};
  EXPECT_EQ(got, want);  // catalogue names, ternaries, non-literals stay legal
}

TEST(Rules, ResThrowTaskFlagsNakedThrowInSubmittedTask) {
  const Report report = runOn({"src/core/res_throw.cpp"});
  const auto got = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> want = {{"RES-THROW-TASK", 7}};
  EXPECT_EQ(got, want);  // try-wrapped and outside-submit throws stay legal
}

// ---- suppressions ----------------------------------------------------------

TEST(Suppressions, RoundTripWithJustifications) {
  const Report report = runOn({"src/sim/suppressed.cpp"});

  const auto suppressed = locations(report, /*suppressed=*/true);
  const std::multiset<std::pair<std::string, int>> wantSuppressed = {
      {"DET-CLOCK", 7},   // next-line suppression
      {"DET-CLOCK", 8},   // same-line suppression
      {"DET-HASH", 12},   // lint-file suppression
      {"DET-HASH", 13},
  };
  EXPECT_EQ(suppressed, wantSuppressed);

  for (const Finding& f : report.findings) {
    if (f.suppressed) {
      EXPECT_FALSE(f.justification.empty()) << f.rule << ":" << f.line;
    }
  }

  // Malformed directives are LINT-SUPPRESS findings, never suppressible.
  const auto unsuppressed = locations(report, /*suppressed=*/false);
  const std::multiset<std::pair<std::string, int>> wantUnsuppressed = {
      {"DET-CLOCK", 17},      // stillCaught(): no directive covers it
      {"LINT-SUPPRESS", 20},  // unknown rule
      {"LINT-SUPPRESS", 21},  // missing justification
      {"LINT-SUPPRESS", 22},  // order-insensitive without justification
      {"LINT-SUPPRESS", 23},  // unrecognised directive
      {"LINT-SUPPRESS", 24},  // attempt to suppress LINT-SUPPRESS
  };
  EXPECT_EQ(unsuppressed, wantUnsuppressed);
}

TEST(Suppressions, CatalogueListsEveryRuleExactlyOnce) {
  std::set<std::string> ids;
  for (const RuleInfo& rule : ruleCatalogue()) {
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate rule id " << rule.id;
    EXPECT_TRUE(isKnownRule(rule.id));
  }
  EXPECT_EQ(ids.size(), 10U);
  EXPECT_FALSE(isKnownRule("NO-SUCH-RULE"));
}

// ---- report output ---------------------------------------------------------

TEST(Output, JsonReportMatchesSchemaVersion1) {
  const Report report = runOn({"src/sim/suppressed.cpp"});
  const util::Json doc = util::Json::parse(toJson(report));

  EXPECT_EQ(doc.getNumber("schema"), 1.0);
  EXPECT_EQ(doc.getNumber("files_scanned"), 1.0);

  const util::Json& summary = doc.at("summary");
  EXPECT_EQ(static_cast<std::size_t>(summary.getNumber("total")),
            report.findings.size());
  EXPECT_EQ(static_cast<std::size_t>(summary.getNumber("suppressed")),
            report.suppressedCount());
  EXPECT_EQ(static_cast<std::size_t>(summary.getNumber("unsuppressed")),
            report.unsuppressedCount());

  const auto& findings = doc.at("findings").asArray();
  ASSERT_EQ(findings.size(), report.findings.size());
  for (const util::Json& f : findings) {
    EXPECT_TRUE(f.contains("file"));
    EXPECT_TRUE(f.contains("line"));
    EXPECT_TRUE(f.contains("rule"));
    EXPECT_TRUE(f.contains("message"));
    EXPECT_TRUE(f.contains("snippet"));
    EXPECT_TRUE(f.contains("suppressed"));
    EXPECT_TRUE(f.contains("justification"));
    EXPECT_TRUE(isKnownRule(f.at("rule").asString()));
  }
}

TEST(Output, TextReportHidesSuppressedByDefault) {
  const Report report = runOn({"src/sim/suppressed.cpp"});
  const std::string quiet = toText(report, /*includeSuppressed=*/false);
  const std::string loud = toText(report, /*includeSuppressed=*/true);
  EXPECT_EQ(quiet.find("(suppressed)"), std::string::npos);
  EXPECT_NE(loud.find("(suppressed)"), std::string::npos);
  EXPECT_NE(loud.find("lint-file"), std::string::npos);
}

TEST(Output, FindingsAreSortedByPathThenLine) {
  Options options;
  options.repoRoot = STELLAR_LINT_FIXTURES;
  const Report report = run(options);  // default: the whole fixture src/
  EXPECT_TRUE(std::is_sorted(report.findings.begin(), report.findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return std::tie(a.file, a.line) <
                                      std::tie(b.file, b.line);
                             }));
  EXPECT_GE(report.filesScanned, 12U);
}

// ---- self-test -------------------------------------------------------------

// The shipped tree must hold its own invariants: every rule passes over
// src/ with zero unsuppressed findings. A new violation fails this test
// locally before CI sees it.
TEST(SelfTest, ShippedSourceTreeIsLintClean) {
  Options options;
  options.repoRoot = STELLAR_LINT_REPO_ROOT;
  options.paths = {"src"};
  const Report report = run(options);
  EXPECT_GT(report.filesScanned, 100U);
  EXPECT_EQ(report.unsuppressedCount(), 0U)
      << toText(report, /*includeSuppressed=*/false);
}

}  // namespace
}  // namespace stellar::lint

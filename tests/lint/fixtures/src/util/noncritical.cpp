// Fixture: determinism rules must NOT fire outside sim-critical dirs
// (src/util is support code; wall clocks are allowed in e.g. tracing).
#include <unordered_map>
namespace fixture {

std::unordered_map<int, int> table;

void allowedHere() {
  auto wall = std::chrono::system_clock::now();
  auto h = std::hash<int>{}(3);
  std::mt19937 gen(std::random_device{}());
  for (const auto& [k, v] : table) {
    use(k, v);
  }
}

}  // namespace fixture

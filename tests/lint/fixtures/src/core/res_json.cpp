// Fixture: RES-JSON-AT (never compiled; consumed by test_lint).
namespace fixture {

void bad(const util::Json& cfg) {
  auto v = cfg.at("mode");  // finding: unguarded, not a parse scope
}

void guarded(const util::Json& cfg) {
  if (cfg.contains("mode")) {
    auto v = cfg.at("mode");  // contains() guard in scope: legal
  }
}

void tryScoped(const util::Json& cfg) {
  try {
    auto v = cfg.at("mode");  // try scope: legal
  } catch (const util::JsonError&) {
  }
}

Thing fromJson(const util::Json& cfg) {
  return Thing{cfg.at("mode")};  // parse-shaped function name: legal
}

void dataframe(const df::DataFrame& frame) {
  auto cell = frame.at("column", 3);  // two args: not a Json lookup
}

}  // namespace fixture

// Fixture: RES-COUNTER-NAME (never compiled; consumed by test_lint).
namespace fixture {

void bad(obs::CounterRegistry& registry) {
  registry.counter("core.not.registered").add();  // finding: not in catalogue
}

void ok(obs::CounterRegistry& registry, bool hit) {
  registry.counter("core.registered.name").add();  // in catalogue: legal
  registry.counter(hit ? "core.registered.name" : "sim.other.name").add();
  registry.counter(kDynamicName).add();       // non-literal: out of scope
  transcript.add("tuning-agent", "attempt");  // hyphenated: not metric-shaped
}

}  // namespace fixture

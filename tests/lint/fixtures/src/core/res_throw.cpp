// Fixture: RES-THROW-TASK (never compiled; consumed by test_lint).
namespace fixture {

void bad(util::ThreadPool& pool) {
  pool.submit([] {
    if (failed()) {
      throw std::runtime_error("boom");  // finding: escapes onto the worker
    }
    return 0;
  });
}

void ok(util::ThreadPool& pool) {
  pool.submit([] {
    try {
      risky();
      throw std::runtime_error("caught below");  // legal: caught in-task
    } catch (const std::exception& e) {
      return Result::error(e.what());
    }
    return Result::ok();
  });
  if (outside) {
    throw std::runtime_error("not in a task");  // outside submit(): out of scope
  }
}

}  // namespace fixture

// Fixture: src/service is sim-critical (never compiled; consumed by
// test_lint). The service determinism law forbids wall clocks in dispatch
// decisions — latency stamps come from the injected ServiceOptions clock —
// and every service.* metric literal must be in the catalogue.
namespace fixture {

void bad(obs::CounterRegistry& registry) {
  auto wall = std::chrono::steady_clock::now();          // finding: DET-CLOCK
  registry.counter("service.not.registered").add();      // finding: RES-COUNTER-NAME
}

void ok(obs::CounterRegistry& registry, const Options& options) {
  auto stamp = options.clock();                          // injected clock: legal
  registry.counter("service.sessions.submitted").add();  // in catalogue: legal
}

}  // namespace fixture

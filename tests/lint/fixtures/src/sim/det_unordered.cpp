// Fixture: DET-UNORDERED-ITER / DET-FLOAT-ACCUM (never compiled).
#include <unordered_map>
namespace fixture {

std::unordered_map<int, double> table;
std::map<int, double> orderedTable;
double total = 0.0;

void bad() {
  for (const auto& [k, v] : table) {  // DET-UNORDERED-ITER finding
    use(k, v);
  }
}

void badFloat() {
  // lint: order-insensitive -- counts commute (claim is WRONG for floats)
  for (const auto& [k, v] : table) {  // waived by the marker...
    total += v;                       // ...but DET-FLOAT-ACCUM still fires
  }
}

void waived() {
  long count = 0;
  // lint: order-insensitive -- integer count is commutative
  for (const auto& [k, v] : table) {
    ++count;
  }
}

void ok() {
  for (const auto& [k, v] : orderedTable) {  // std::map: deterministic
    use(k, v);
  }
}

}  // namespace fixture

// Fixture: DET-SEED-LITERAL violations (never compiled; consumed by test_lint).
namespace fixture {

struct Options {
  unsigned long seed = 42;  // the sanctioned single source of defaults: legal
};

void bad(util::Rng& rng) {
  rng.seed(12345);    // finding
  reseed(0xBEEF);     // finding
}

void ok(util::Rng& rng, const Options& opts) {
  rng.seed(opts.seed);          // threaded from options: legal
  rng.seed(derive(opts.seed));  // derived: legal
}

}  // namespace fixture

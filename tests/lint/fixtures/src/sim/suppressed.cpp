// Fixture: suppression grammar round-trip (never compiled).
// lint-file: suppress(DET-HASH) -- fixture exercises file-wide suppression
namespace fixture {

void lineSuppressed() {
  // lint: suppress(DET-CLOCK) -- fixture exercises next-line suppression
  auto wall = std::chrono::system_clock::now();
  auto mono = std::chrono::steady_clock::now();  // lint: suppress(DET-CLOCK) -- same-line form
}

void fileSuppressed() {
  auto a = std::hash<int>{}(1);  // covered by the lint-file directive
  auto b = std::hash<int>{}(2);  // covered by the lint-file directive
}

void stillCaught() {
  auto wall = std::chrono::system_clock::now();  // unsuppressed finding
}

// lint: suppress(NO-SUCH-RULE) -- unknown rule id
// lint: suppress(DET-CLOCK)
// lint: order-insensitive
// lint: gibberish directive
// lint: suppress(LINT-SUPPRESS) -- nice try

}  // namespace fixture

// Fixture: iterating a member whose unordered declaration lives in the
// same-stem header (never compiled; consumed by test_lint).
#include "paired.hpp"
namespace fixture {

void Tracker::drain() {
  for (const int id : pendingIds_) {  // DET-UNORDERED-ITER via paired header
    handle(id);
  }
}

}  // namespace fixture

// Fixture: DET-RANDOM violations (never compiled; consumed by test_lint).
namespace fixture {

void bad() {
  std::mt19937 gen(std::random_device{}());  // two findings on this line
  int r = rand();                            // one finding
  srand(42);                                 // one finding
}

void ok() {
  util::Rng rng{opts.seed};  // sanctioned source of randomness
  auto strand = rng.fork();  // `strand` must not match the `rand` rule
}

}  // namespace fixture

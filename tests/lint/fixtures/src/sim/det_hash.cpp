// Fixture: DET-HASH violations (never compiled; consumed by test_lint).
namespace fixture {

void bad() {
  auto h = std::hash<std::string>{}("key");  // finding
}

void ok() {
  auto h = util::hash64("key");  // FNV-1a: deterministic across platforms
  auto mine = my::hash(3);       // non-std hash is fine
}

}  // namespace fixture

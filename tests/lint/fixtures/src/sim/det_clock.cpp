// Fixture: DET-CLOCK violations (never compiled; consumed by test_lint).
#include <chrono>  // the include itself must NOT be a finding
namespace fixture {

void bad() {
  auto wall = std::chrono::system_clock::now();    // finding
  auto mono = std::chrono::steady_clock::now();    // finding
  auto unixSeconds = std::time(nullptr);           // finding
  auto alsoBad = time(0);                          // finding
}

void ok(sim::Engine& engine) {
  auto now = engine.now();        // simulated time is fine
  auto t = event.time();          // member named `time` with args is fine
  record.time = now;              // field access is fine
}

}  // namespace fixture

// Fixture: header half of the paired-declaration case (never compiled).
#pragma once
#include <unordered_set>
namespace fixture {

class Tracker {
 public:
  void drain();

 private:
  std::unordered_set<int> pendingIds_;
};

}  // namespace fixture

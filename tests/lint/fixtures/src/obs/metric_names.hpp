// Fixture catalogue mirroring src/obs/metric_names.hpp (never compiled).
#pragma once
namespace fixture {
inline constexpr const char* kMetricNames[] = {
    "core.registered.name",
    "service.sessions.submitted",
    "sim.other.name",
};
}  // namespace fixture

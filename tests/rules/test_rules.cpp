// Rule Set mechanics (§4.4): context similarity, matching, JSON structure,
// and the conflict-resolving merge.
#include <gtest/gtest.h>

#include "rules/rules.hpp"

namespace stellar::rules {
namespace {

WorkloadContext metadataContext() {
  WorkloadContext ctx;
  ctx.metaOpShare = 0.8;
  ctx.readShare = 0.5;
  ctx.sequentialShare = 0.2;
  ctx.sharedFileShare = 0.0;
  ctx.smallFileShare = 1.0;
  ctx.dominantAccessSize = 8 * 1024;
  ctx.fileCount = 200000;
  ctx.totalBytes = 3ULL << 30;
  return ctx;
}

WorkloadContext streamingContext() {
  WorkloadContext ctx;
  ctx.metaOpShare = 0.02;
  ctx.readShare = 0.5;
  ctx.sequentialShare = 0.95;
  ctx.sharedFileShare = 1.0;
  ctx.smallFileShare = 0.0;
  ctx.dominantAccessSize = 16 << 20;
  ctx.fileCount = 1;
  ctx.totalBytes = 20ULL << 30;
  return ctx;
}

Rule mkRule(const std::string& param, Direction dir, const WorkloadContext& ctx,
            std::int64_t value = 0) {
  Rule rule;
  rule.parameter = param;
  rule.description = "guidance for " + param;
  rule.context = ctx;
  rule.direction = dir;
  rule.value = value;
  return rule;
}

TEST(WorkloadContext, SelfSimilarityIsOne) {
  const WorkloadContext ctx = metadataContext();
  EXPECT_NEAR(ctx.similarity(ctx), 1.0, 1e-12);
}

TEST(WorkloadContext, DissimilarWorkloadsScoreLow) {
  const double sim = metadataContext().similarity(streamingContext());
  EXPECT_LT(sim, 0.6);
}

TEST(WorkloadContext, AccessPatternSeparatesRandomFromSequentialStreams) {
  // A random 64 KiB scan and a sequential 16 MiB stream over the same kind
  // of shared file must stay below the 0.7 rule-match threshold: stripe /
  // RPC-size / readahead guidance learned on the stream actively hurts the
  // random reader, so those rules must not transfer. Contexts mirror the
  // IOR_64K / IOR_16M benchmark reports.
  WorkloadContext randomSmall;
  randomSmall.metaOpShare = 0.016;
  randomSmall.readShare = 0.5;
  randomSmall.sequentialShare = 0.017;
  randomSmall.sharedFileShare = 1.0;
  randomSmall.smallFileShare = 0.0;
  randomSmall.dominantAccessSize = 64 * 1024;
  randomSmall.fileCount = 1;
  randomSmall.totalBytes = 400ULL << 20;

  WorkloadContext seqLarge;
  seqLarge.metaOpShare = 0.077;
  seqLarge.readShare = 0.5;
  seqLarge.sequentialShare = 0.751;
  seqLarge.sharedFileShare = 1.0;
  seqLarge.smallFileShare = 0.0;
  seqLarge.dominantAccessSize = 16 << 20;
  seqLarge.fileCount = 1;
  seqLarge.totalBytes = 20ULL << 30;

  EXPECT_LT(randomSmall.similarity(seqLarge), 0.7);
}

TEST(WorkloadContext, SimilarityIsSymmetric) {
  const WorkloadContext a = metadataContext();
  const WorkloadContext b = streamingContext();
  EXPECT_DOUBLE_EQ(a.similarity(b), b.similarity(a));
}

TEST(WorkloadContext, SmallPerturbationStaysSimilar) {
  WorkloadContext a = metadataContext();
  WorkloadContext b = a;
  b.metaOpShare = 0.75;
  b.fileCount = 150000;
  EXPECT_GT(a.similarity(b), 0.9);
}

TEST(WorkloadContext, JsonRoundTrip) {
  const WorkloadContext ctx = streamingContext();
  const WorkloadContext back = WorkloadContext::fromJson(ctx.toJson());
  EXPECT_NEAR(ctx.similarity(back), 1.0, 1e-9);
  EXPECT_EQ(back.dominantAccessSize, ctx.dominantAccessSize);
}

TEST(Rule, JsonUsesThePaperEnforcedKeys) {
  const Rule rule = mkRule("lov.stripe_count", Direction::SetValue, metadataContext(), 1);
  const util::Json json = rule.toJson();
  EXPECT_TRUE(json.contains("Parameter"));
  EXPECT_TRUE(json.contains("Rule Description"));
  EXPECT_TRUE(json.contains("Tuning Context"));
  const Rule back = Rule::fromJson(json);
  EXPECT_EQ(back.parameter, rule.parameter);
  EXPECT_EQ(back.direction, rule.direction);
  EXPECT_EQ(back.value, rule.value);
}

TEST(Rule, ContradictionDetection) {
  const auto ctx = metadataContext();
  EXPECT_TRUE(mkRule("p", Direction::Increase, ctx)
                  .contradicts(mkRule("p", Direction::Decrease, ctx)));
  EXPECT_TRUE(mkRule("p", Direction::SetMax, ctx)
                  .contradicts(mkRule("p", Direction::SetMin, ctx)));
  EXPECT_FALSE(mkRule("p", Direction::Increase, ctx)
                   .contradicts(mkRule("q", Direction::Decrease, ctx)));
  // SetValue rules contradict only when far apart.
  EXPECT_TRUE(mkRule("p", Direction::SetValue, ctx, 10)
                  .contradicts(mkRule("p", Direction::SetValue, ctx, 100)));
  EXPECT_FALSE(mkRule("p", Direction::SetValue, ctx, 10)
                   .contradicts(mkRule("p", Direction::SetValue, ctx, 20)));
}

TEST(RuleSet, MatchFiltersByContextAndParameter) {
  RuleSet set;
  set.add(mkRule("ldlm.lru_size", Direction::Increase, metadataContext()));
  set.add(mkRule("lov.stripe_count", Direction::SetMax, streamingContext()));

  const auto forMeta = set.match(metadataContext(), 0.7);
  ASSERT_EQ(forMeta.size(), 1u);
  EXPECT_EQ(forMeta[0]->parameter, "ldlm.lru_size");

  const auto byParam = set.match(streamingContext(), 0.7, "lov.stripe_count");
  ASSERT_EQ(byParam.size(), 1u);
}

TEST(RuleSet, MatchOrdersBySimilarity) {
  RuleSet set;
  WorkloadContext close = metadataContext();
  close.metaOpShare = 0.78;
  WorkloadContext farther = metadataContext();
  farther.metaOpShare = 0.55;
  farther.sequentialShare = 0.5;
  set.add(mkRule("a", Direction::Increase, farther));
  set.add(mkRule("b", Direction::Increase, close));
  const auto matched = set.match(metadataContext(), 0.5);
  ASSERT_EQ(matched.size(), 2u);
  EXPECT_EQ(matched[0]->parameter, "b");
}

TEST(RuleSet, MergeRemovesDirectContradictions) {
  RuleSet set;
  set.add(mkRule("p", Direction::Increase, metadataContext()));
  const std::string report =
      set.merge({mkRule("p", Direction::Decrease, metadataContext())});
  EXPECT_EQ(set.size(), 0u);  // both removed (§4.4.2)
  EXPECT_NE(report.find("contradiction"), std::string::npos);
}

TEST(RuleSet, MergeReinforcesIdenticalGuidance) {
  RuleSet set;
  set.add(mkRule("p", Direction::SetValue, metadataContext(), 64));
  set.merge({mkRule("p", Direction::SetValue, metadataContext(), 64)});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.rules()[0].confirmations, 2);
}

TEST(RuleSet, MergeKeepsSlightVariantsAsAlternatives) {
  RuleSet set;
  set.add(mkRule("p", Direction::SetValue, metadataContext(), 64));
  set.merge({mkRule("p", Direction::SetValue, metadataContext(), 96)});
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.rules()[0].alternative);
  EXPECT_TRUE(set.rules()[1].alternative);
}

TEST(RuleSet, MergeKeepsDifferentContextsApart) {
  RuleSet set;
  set.add(mkRule("p", Direction::Increase, metadataContext()));
  set.merge({mkRule("p", Direction::Decrease, streamingContext())});
  // Different contexts: no contradiction, both survive.
  EXPECT_EQ(set.size(), 2u);
}

TEST(RuleSet, DropNegativePrunesFailedAlternatives) {
  RuleSet set;
  set.add(mkRule("p", Direction::Increase, metadataContext()));
  set.add(mkRule("q", Direction::Increase, metadataContext()));
  const std::size_t dropped =
      set.dropNegative("p", metadataContext(), Direction::Increase);
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.rules()[0].parameter, "q");
}

TEST(RuleSet, JsonRoundTripWholeSet) {
  RuleSet set;
  set.add(mkRule("a", Direction::SetMax, metadataContext()));
  set.add(mkRule("b", Direction::SetValue, streamingContext(), 42));
  const RuleSet back = RuleSet::fromJson(set.toJson());
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.rules()[1].value, 42);
  EXPECT_EQ(back.rules()[0].direction, Direction::SetMax);
}

TEST(RuleSet, FilePersistenceRoundTrips) {
  RuleSet set;
  set.add(mkRule("a", Direction::SetMax, metadataContext()));
  set.add(mkRule("b", Direction::SetValue, streamingContext(), 64));
  const std::string path = ::testing::TempDir() + "/stellar_rules_test.json";
  set.saveFile(path);
  const RuleSet loaded = RuleSet::loadFile(path);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded.rules()[0].parameter, "a");
  EXPECT_EQ(loaded.rules()[1].value, 64);
  EXPECT_THROW((void)RuleSet::loadFile("/nonexistent/rules.json"),
               std::runtime_error);
}

TEST(RuleSet, DirectionNamesRoundTrip) {
  for (const Direction d : {Direction::Increase, Direction::Decrease,
                            Direction::SetValue, Direction::SetMax, Direction::SetMin}) {
    EXPECT_EQ(directionFromName(directionName(d)), d);
  }
  EXPECT_EQ(directionFromName("sideways"), std::nullopt);
}

}  // namespace
}  // namespace stellar::rules

// Model profiles, hallucination-prone knowledge recall, token accounting.
#include <gtest/gtest.h>

#include "llm/knowledge.hpp"
#include "llm/model_profile.hpp"
#include "llm/token_meter.hpp"

namespace stellar::llm {
namespace {

TEST(ModelProfile, LookupByNameAndUnknownThrows) {
  EXPECT_EQ(profileByName("gpt-4o").name, "gpt-4o");
  EXPECT_EQ(profileByName("claude-3.7-sonnet").reasoningQuality, 0.95);
  EXPECT_THROW((void)profileByName("gpt-1"), std::invalid_argument);
}

TEST(ModelProfile, SmallerModelHallucinatesMore) {
  EXPECT_GT(llama31_70b().hallucinationRate, claude37Sonnet().hallucinationRate);
  EXPECT_LT(llama31_70b().reasoningQuality, claude37Sonnet().reasoningQuality);
}

TEST(Knowledge, GroundedKnowledgeMatchesFacts) {
  manual::SystemFacts facts;
  const manual::ParamFact* fact = manual::findParamFact("llite.max_read_ahead_mb");
  const ParamKnowledge k = groundedKnowledge(*fact, facts);
  EXPECT_EQ(k.source, KnowledgeSource::RagExtraction);
  EXPECT_EQ(k.corruption, CorruptionKind::None);
  EXPECT_EQ(k.minValue, 0);
  EXPECT_EQ(k.maxValue, facts.clientRamMb / 2);
  EXPECT_TRUE(k.semanticallyAccurate());
  EXPECT_TRUE(k.rangeAccurate());
}

TEST(Knowledge, DependentRangeResolvesAgainstDefaults) {
  manual::SystemFacts facts;
  const manual::ParamFact* fact =
      manual::findParamFact("llite.max_read_ahead_per_file_mb");
  const ResolvedRange range = resolveRange(*fact, facts);
  // Depends on llite.max_read_ahead_mb's default (64) / 2.
  EXPECT_EQ(range.max, 32);
}

TEST(Knowledge, RecallIsDeterministicPerModelParamSalt) {
  manual::SystemFacts facts;
  const manual::ParamFact* fact = manual::findParamFact("llite.statahead_max");
  const ModelProfile model = gpt4o();
  const ParamKnowledge a = recallFromMemory(*fact, model, facts, 3);
  const ParamKnowledge b = recallFromMemory(*fact, model, facts, 3);
  EXPECT_EQ(a.corruption, b.corruption);
  EXPECT_EQ(a.maxValue, b.maxValue);
  EXPECT_EQ(a.description, b.description);
}

TEST(Knowledge, HallucinationRateControlsCorruptionFrequency) {
  manual::SystemFacts facts;
  ModelProfile never = gpt4o();
  never.hallucinationRate = 0.0;
  ModelProfile always = gpt4o();
  always.hallucinationRate = 1.0;

  int corruptNever = 0;
  int corruptAlways = 0;
  for (const std::string& name : manual::groundTruthTunables()) {
    const manual::ParamFact* fact = manual::findParamFact(name);
    for (std::uint64_t salt = 0; salt < 4; ++salt) {
      corruptNever += recallFromMemory(*fact, never, facts, salt).corruption !=
                              CorruptionKind::None
                          ? 1
                          : 0;
      corruptAlways += recallFromMemory(*fact, always, facts, salt).corruption !=
                               CorruptionKind::None
                           ? 1
                           : 0;
    }
  }
  EXPECT_EQ(corruptNever, 0);
  EXPECT_EQ(corruptAlways, 13 * 4);
}

TEST(Knowledge, CorruptionKindsHaveExpectedProperties) {
  manual::SystemFacts facts;
  ModelProfile always = llama31_70b();
  always.hallucinationRate = 1.0;
  bool sawWrongRange = false;
  bool sawWrongDef = false;
  bool sawFlipped = false;
  for (const std::string& name : manual::groundTruthTunables()) {
    const manual::ParamFact* fact = manual::findParamFact(name);
    for (std::uint64_t salt = 0; salt < 16; ++salt) {
      const ParamKnowledge k = recallFromMemory(*fact, always, facts, salt);
      const ParamKnowledge truth = groundedKnowledge(*fact, facts);
      switch (k.corruption) {
        case CorruptionKind::WrongRange:
          sawWrongRange = true;
          EXPECT_NE(k.maxValue, truth.maxValue);
          EXPECT_FALSE(k.rangeAccurate());
          EXPECT_TRUE(k.semanticallyAccurate());
          break;
        case CorruptionKind::WrongDefinition:
          sawWrongDef = true;
          EXPECT_NE(k.description, truth.description);
          EXPECT_FALSE(k.semanticallyAccurate());
          break;
        case CorruptionKind::FlippedDirection:
          sawFlipped = true;
          EXPECT_FALSE(k.semanticallyAccurate());
          break;
        case CorruptionKind::None:
          ADD_FAILURE() << "hallucinationRate=1 must always corrupt";
          break;
      }
    }
  }
  EXPECT_TRUE(sawWrongRange);
  EXPECT_TRUE(sawWrongDef);
  EXPECT_TRUE(sawFlipped);
}

TEST(TokenMeter, CountsAndAggregates) {
  TokenMeter meter;
  meter.recordCall("agent-a", "one two three four", "out tokens");
  meter.recordCall("agent-b", "other conversation", "x");
  const UsageTotals a = meter.totals("agent-a");
  EXPECT_EQ(a.calls, 1u);
  EXPECT_GT(a.inputTokens, 0u);
  EXPECT_EQ(meter.totals().calls, 2u);
}

TEST(TokenMeter, PrefixCacheAcrossConversationTurns) {
  TokenMeter meter;
  const std::string prefix(4000, 'a');
  meter.recordCall("tuning", prefix + " turn one", "r1");
  const CallRecord second = meter.recordCall("tuning", prefix + " turn one turn two", "r2");
  EXPECT_GT(second.cachedTokens, 0u);
  EXPECT_GT(meter.totals("tuning").cacheHitRate(), 0.3);
  // A different conversation does not share the cache.
  const CallRecord other = meter.recordCall("analysis", prefix, "r3");
  EXPECT_EQ(other.cachedTokens, 0u);
}

TEST(TokenMeter, CostAndLatencyEstimates) {
  TokenMeter meter;
  meter.recordCall("t", std::string(40000, 'x'), std::string(4000, 'y'));
  const ModelProfile model = claude37Sonnet();
  EXPECT_GT(meter.estimateCostUsd(model), 0.0);
  EXPECT_DOUBLE_EQ(meter.estimateLatencySeconds(model), model.latencyPerCall);
  meter.reset();
  EXPECT_EQ(meter.totals().calls, 0u);
}

}  // namespace
}  // namespace stellar::llm

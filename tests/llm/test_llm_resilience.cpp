// LlmFaultModel determinism and windows, LlmClient retry/breaker
// machinery, and TokenMeter wasted-call accounting (ISSUE 7).
#include <gtest/gtest.h>

#include <string>

#include "faults/fault_plan.hpp"
#include "llm/llm_client.hpp"
#include "llm/llm_fault_model.hpp"
#include "llm/model_profile.hpp"
#include "llm/token_meter.hpp"
#include "obs/counters.hpp"

namespace stellar::llm {
namespace {

TEST(LlmFaultModel, InertWithoutLlmEvents) {
  const LlmFaultModel none;
  EXPECT_TRUE(none.empty());
  EXPECT_FALSE(none.sample("claude-3.7-sonnet", 0, 0).corrupted());
  EXPECT_EQ(none.sample("claude-3.7-sonnet", 0, 0).transport, CallFault::None);

  // A plan with only simulator-side kinds is just as inert.
  const LlmFaultModel simOnly{faults::parseFaultSpec("ost:1:degrade:0.5@0-10")};
  EXPECT_TRUE(simOnly.empty());
}

TEST(LlmFaultModel, SamplingIsDeterministic) {
  const faults::FaultPlan plan =
      faults::parseFaultSpec("llm:timeout:0.5@0-100,llm:bad-knob:0.5@0-100,seed:9");
  const LlmFaultModel a{plan};
  const LlmFaultModel b{plan};
  for (std::uint64_t call = 0; call < 64; ++call) {
    for (std::uint32_t attempt = 0; attempt < 4; ++attempt) {
      const CallDirectives da = a.sample("gpt-4o", call, attempt);
      const CallDirectives db = b.sample("gpt-4o", call, attempt);
      EXPECT_EQ(da.transport, db.transport);
      EXPECT_EQ(da.hallucinatedKnob, db.hallucinatedKnob);
    }
  }
  // The plan seed decorrelates the draws: same events, different seed,
  // different weather.
  faults::FaultPlan reseeded = plan;
  reseeded.seed = 10;
  const LlmFaultModel c{reseeded};
  bool anyDifferent = false;
  for (std::uint64_t call = 0; call < 64 && !anyDifferent; ++call) {
    anyDifferent = a.sample("gpt-4o", call, 0).transport !=
                   c.sample("gpt-4o", call, 0).transport;
  }
  EXPECT_TRUE(anyDifferent);
}

TEST(LlmFaultModel, WindowsCountCallIndices) {
  const LlmFaultModel model{faults::parseFaultSpec("llm:timeout:1@2-4")};
  EXPECT_EQ(model.sample("m", 0, 0).transport, CallFault::None);
  EXPECT_EQ(model.sample("m", 1, 0).transport, CallFault::None);
  EXPECT_EQ(model.sample("m", 2, 0).transport, CallFault::Timeout);
  EXPECT_EQ(model.sample("m", 3, 0).transport, CallFault::Timeout);
  EXPECT_EQ(model.sample("m", 4, 0).transport, CallFault::None);  // [begin, end)
  // p=1 windows fail every retry attempt too.
  EXPECT_EQ(model.sample("m", 3, 3).transport, CallFault::Timeout);
}

TEST(LlmFaultModel, ModelFilterIsSubstringMatch) {
  const LlmFaultModel model{faults::parseFaultSpec("llm:timeout:1:claude@0-99")};
  EXPECT_EQ(model.sample("claude-3.7-sonnet", 0, 0).transport, CallFault::Timeout);
  EXPECT_EQ(model.sample("gpt-4o", 0, 0).transport, CallFault::None);
  EXPECT_EQ(model.sample("llama-3.1-70b-instruct", 0, 0).transport, CallFault::None);
}

TEST(LlmFaultModel, ContentFaultsLeaveTransportClean) {
  const LlmFaultModel model{
      faults::parseFaultSpec("llm:bad-knob:1@0-9,llm:bad-value:1@0-9,llm:stale:1@0-9")};
  const CallDirectives d = model.sample("m", 1, 0);
  EXPECT_EQ(d.transport, CallFault::None);
  EXPECT_TRUE(d.delivered());
  EXPECT_TRUE(d.hallucinatedKnob);
  EXPECT_TRUE(d.outOfRange);
  EXPECT_TRUE(d.staleAnalysis);
  EXPECT_TRUE(d.corrupted());
}

// ---- LlmClient ----------------------------------------------------------

TEST(LlmClient, CleanPathMatchesBareMeter) {
  TokenMeter bare;
  TokenMeter viaClient;
  LlmClient client{nullptr, viaClient, nullptr};

  const ModelProfile model = claude37Sonnet();
  for (int i = 0; i < 3; ++i) {
    const std::string prompt = "shared prefix + turn " + std::to_string(i);
    (void)bare.recordCall("conv", prompt, "output");
    const CallOutcome outcome = client.call(model, "conv", prompt, "output");
    EXPECT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.retries, 0);
  }
  const UsageTotals a = bare.totals();
  const UsageTotals b = viaClient.totals();
  EXPECT_EQ(a.calls, b.calls);
  EXPECT_EQ(a.inputTokens, b.inputTokens);
  EXPECT_EQ(a.cachedTokens, b.cachedTokens);
  EXPECT_EQ(a.outputTokens, b.outputTokens);
  EXPECT_EQ(b.wastedCalls, 0u);
}

TEST(LlmClient, RetriesFlakyCallAndBillsWaste) {
  // Call 0 sits in a p=1 timeout window: every retry attempt fails, the
  // logical call is abandoned after maxRetries, and each attempt is billed.
  const faults::FaultPlan plan = faults::parseFaultSpec("llm:timeout:1@0-1");
  const LlmFaultModel faults{plan};
  TokenMeter meter;
  obs::CounterRegistry registry;
  LlmClient client{&faults, meter, &registry, {.maxRetries = 3}};

  const ModelProfile model = claude37Sonnet();
  // Call 0: inside the p=1 window — all 4 attempts fail.
  const CallOutcome failed = client.call(model, "conv", "prompt", "output");
  EXPECT_FALSE(failed.ok);
  EXPECT_EQ(failed.lastFault, CallFault::Timeout);
  EXPECT_EQ(failed.retries, 3);
  EXPECT_GT(failed.backoffSeconds, 0.0);

  const UsageTotals t = meter.totals();
  EXPECT_EQ(t.calls, 0u);
  EXPECT_EQ(t.wastedCalls, 4u);       // every attempt billed
  EXPECT_GT(t.wastedInputTokens, 0u);
  // Timeouts produce no output, so nothing lands in wasted output.
  EXPECT_EQ(t.wastedOutputTokens, 0u);
  EXPECT_EQ(client.failedCalls(), 1u);
  EXPECT_EQ(client.wastedAttempts(), 4u);
}

TEST(LlmClient, TruncatedAttemptsBillPartialOutput) {
  const LlmFaultModel faults{faults::parseFaultSpec("llm:truncate:1@0-1")};
  TokenMeter meter;
  LlmClient client{&faults, meter, nullptr, {.maxRetries = 0}};
  (void)client.call(claude37Sonnet(), "conv", "prompt", "a long output payload");
  EXPECT_GT(meter.totals().wastedOutputTokens, 0u);
}

TEST(LlmClient, BreakerLifecycle) {
  // Calls 0-4 time out hard; later calls are clean.
  const LlmFaultModel faults{faults::parseFaultSpec("llm:timeout:1@0-5")};
  TokenMeter meter;
  LlmClient client{&faults, meter, nullptr,
                   {.maxRetries = 0, .breakerThreshold = 2, .breakerCooldownCalls = 2}};
  const ModelProfile model = claude37Sonnet();

  EXPECT_EQ(client.breakerState(model.name), BreakerState::Closed);
  EXPECT_FALSE(client.call(model, "c", "p", "o").ok);  // call 0: failure 1
  EXPECT_EQ(client.breakerState(model.name), BreakerState::Closed);
  EXPECT_FALSE(client.call(model, "c", "p", "o").ok);  // call 1: failure 2 -> trips
  EXPECT_EQ(client.breakerState(model.name), BreakerState::Open);
  EXPECT_EQ(client.breakerTrips(), 1u);

  // Call 2, cooling down: short-circuits without sending anything.
  const std::size_t wastedBefore = meter.totals().wastedCalls;
  const CallOutcome shorted = client.call(model, "c", "p", "o");
  EXPECT_FALSE(shorted.ok);
  EXPECT_TRUE(shorted.breakerOpen);
  EXPECT_EQ(meter.totals().wastedCalls, wastedBefore);

  // Call 3, half-open probe: single attempt, still inside the fault
  // window, so it fails and re-opens the breaker.
  const CallOutcome probe = client.call(model, "c", "p", "o");
  EXPECT_FALSE(probe.ok);
  EXPECT_FALSE(probe.breakerOpen);  // the probe really was attempted
  EXPECT_EQ(probe.retries, 0);      // half-open grants exactly one attempt
  EXPECT_EQ(client.breakerState(model.name), BreakerState::Open);
  EXPECT_EQ(client.breakerTrips(), 2u);

  // Call 4 cools down again; the call-5 probe is past the window, so it
  // succeeds and the breaker closes.
  EXPECT_TRUE(client.call(model, "c", "p", "o").breakerOpen);
  EXPECT_TRUE(client.call(model, "c", "p", "o").ok);
  EXPECT_EQ(client.breakerState(model.name), BreakerState::Closed);
}

TEST(LlmClient, BreakersArePerModel) {
  const LlmFaultModel faults{faults::parseFaultSpec("llm:timeout:1:claude@0-99")};
  TokenMeter meter;
  LlmClient client{&faults, meter, nullptr, {.maxRetries = 0, .breakerThreshold = 2}};

  (void)client.call(claude37Sonnet(), "c", "p", "o");
  (void)client.call(claude37Sonnet(), "c", "p", "o");
  EXPECT_EQ(client.breakerState("claude-3.7-sonnet"), BreakerState::Open);
  // The fallback model is untouched by claude's open breaker.
  EXPECT_EQ(client.breakerState("llama-3.1-70b-instruct"), BreakerState::Closed);
  EXPECT_TRUE(client.call(llama31_70b(), "c", "p", "o").ok);
}

// ---- TokenMeter wasted accounting ---------------------------------------

TEST(TokenMeter, WastedCallsTalliedSeparately) {
  TokenMeter meter;
  (void)meter.recordCall("conv", "prompt one", "ok output");
  (void)meter.recordWastedCall("conv", "prompt two", "partial");
  const UsageTotals t = meter.totals();
  EXPECT_EQ(t.calls, 1u);
  EXPECT_EQ(t.wastedCalls, 1u);
  EXPECT_GT(t.wastedInputTokens, 0u);
  EXPECT_GT(t.wastedOutputTokens, 0u);
  // Useful tallies are unaffected by the wasted call.
  TokenMeter cleanOnly;
  (void)cleanOnly.recordCall("conv", "prompt one", "ok output");
  EXPECT_EQ(t.inputTokens, cleanOnly.totals().inputTokens);
  EXPECT_EQ(t.outputTokens, cleanOnly.totals().outputTokens);
}

TEST(TokenMeter, WastedCallWarmsThePromptCache) {
  // A failed attempt still pushes the prompt into the provider-side cache,
  // so the immediate retry of the same prompt resolves from cache.
  TokenMeter meter;
  const std::string prompt(400, 'x');
  const CallRecord first = meter.recordWastedCall("conv", prompt, "");
  const CallRecord retry = meter.recordCall("conv", prompt, "out");
  EXPECT_EQ(first.cachedTokens, 0u);
  EXPECT_GT(retry.cachedTokens, 0u);
  EXPECT_EQ(retry.cachedTokens, retry.inputTokens);
}

}  // namespace
}  // namespace stellar::llm

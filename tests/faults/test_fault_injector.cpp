// FaultInjector: window edges through the engine queue, O(1) state
// queries, composition, and the determinism/independence contracts.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "faults/fault_injector.hpp"
#include "faults/fault_plan.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace stellar::faults {
namespace {

TEST(FaultInjector, DegradeWindowOpensAndCloses) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("ost:1:degrade:0.25@10-20");
  FaultInjector injector{engine, plan, 4, 99};
  injector.arm();

  std::vector<double> slowdowns;
  for (const double t : {5.0, 15.0, 25.0}) {
    engine.scheduleAt(t, [&] { slowdowns.push_back(injector.ostSlowdown(1)); });
  }
  engine.run();

  ASSERT_EQ(slowdowns.size(), 3u);
  EXPECT_DOUBLE_EQ(slowdowns[0], 1.0);
  EXPECT_DOUBLE_EQ(slowdowns[1], 1.0 / 0.25);  // capacity 0.25 => 4x slower
  EXPECT_DOUBLE_EQ(slowdowns[2], 1.0);
  // Untargeted OST never degrades.
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(0), 1.0);
  EXPECT_EQ(injector.windowsOpened(), 1u);
}

TEST(FaultInjector, OverlappingOutagesNestByDepth) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("ost:0:outage@5-15,ost:*:outage@10-20");
  FaultInjector injector{engine, plan, 2, 1};
  injector.arm();

  std::vector<bool> down;
  for (const double t : {12.0, 17.0, 25.0}) {
    engine.scheduleAt(t, [&] { down.push_back(injector.ostDown(0)); });
  }
  engine.run();

  ASSERT_EQ(down.size(), 3u);
  EXPECT_TRUE(down[0]);   // both windows open
  EXPECT_TRUE(down[1]);   // wildcard still open after the targeted one closed
  EXPECT_FALSE(down[2]);  // all closed
}

TEST(FaultInjector, DropProbabilitiesComposeAsSurvival) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("rpc:drop:0.5@0-10,rpc:drop:0.5@0-10");
  FaultInjector injector{engine, plan, 1, 1};
  injector.arm();

  double prob = -1.0;
  engine.scheduleAt(5.0, [&] { prob = injector.rpcDropProbability(); });
  engine.run();
  EXPECT_DOUBLE_EQ(prob, 0.75);  // 1 - (1-0.5)(1-0.5)
  EXPECT_DOUBLE_EQ(injector.rpcDropProbability(), 0.0);  // windows closed
}

TEST(FaultInjector, StallAndMdsQueriesTrackWindows) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("rpc:stall:0.5@2-4,mds:overload:3@2-4");
  FaultInjector injector{engine, plan, 1, 1};
  injector.arm();

  double stall = -1.0;
  double mds = -1.0;
  engine.scheduleAt(3.0, [&] {
    stall = injector.rpcStallSeconds();
    mds = injector.mdsSlowdown();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(stall, 0.5);
  EXPECT_DOUBLE_EQ(mds, 3.0);
  EXPECT_DOUBLE_EQ(injector.rpcStallSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(injector.mdsSlowdown(), 1.0);
}

TEST(FaultInjector, NoiseMultiplierIsOverlapWeighted) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("noise:spike:3@0-45");
  FaultInjector injector{engine, plan, 1, 1};
  // Window covers half of a 90 s run: 1 + (3-1) * 45/90 = 2.
  EXPECT_DOUBLE_EQ(injector.noiseMultiplierOver(90.0), 2.0);
  // Window covers the whole of a 45 s run.
  EXPECT_DOUBLE_EQ(injector.noiseMultiplierOver(45.0), 3.0);
  // Zero-length run degrades to no scaling.
  EXPECT_DOUBLE_EQ(injector.noiseMultiplierOver(0.0), 1.0);
}

TEST(FaultInjector, DropSamplingIsDeterministicPerRunSeed) {
  const FaultPlan plan = parseFaultSpec("rpc:drop:0.4@0-100,seed:11");
  const auto sampleSequence = [&](std::uint64_t runSeed) {
    sim::SimEngine engine;  // default EngineOptions: seed 1
    FaultInjector injector{engine, plan, 1, runSeed};
    injector.arm();
    std::vector<bool> draws;
    engine.scheduleAt(1.0, [&] {
      for (int i = 0; i < 64; ++i) {
        draws.push_back(injector.sampleRpcDrop());
      }
    });
    engine.run();
    return draws;
  };
  EXPECT_EQ(sampleSequence(7), sampleSequence(7));
  EXPECT_NE(sampleSequence(7), sampleSequence(8));
}

TEST(FaultInjector, ArmDoesNotPerturbEngineRngStream) {
  const FaultPlan plan = parseFaultSpec("rpc:drop:0.4@0-100");
  const auto engineDraws = [&](bool withInjector) {
    sim::SimEngine engine{sim::EngineOptions{.seed = 42}};
    std::optional<FaultInjector> injector;
    if (withInjector) {
      injector.emplace(engine, plan, 1, 5);
      injector->arm();
    }
    std::vector<std::uint64_t> draws;
    engine.scheduleAt(1.0, [&] {
      for (int i = 0; i < 16; ++i) {
        draws.push_back(engine.rng().next());
      }
    });
    engine.run();
    return draws;
  };
  EXPECT_EQ(engineDraws(false), engineDraws(true));
}

TEST(FaultInjector, CancelOpenWindowsResetsStateAfterCappedRun) {
  // A capped runUntil can strand a window's close edge beyond the cap;
  // cancelOpenWindows retires it so the injector reads neutral again (the
  // simulator's TimedOut path relies on this between measurements).
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("ost:0:degrade:0.5@1-100,rpc:drop:0.25@1-100");
  FaultInjector injector{engine, plan, 2, 3};
  injector.arm();

  engine.runUntil(10.0);  // inside both windows
  EXPECT_GT(engine.openWindows(), 0u);
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(0), 2.0);
  EXPECT_DOUBLE_EQ(injector.rpcDropProbability(), 0.25);

  engine.cancelOpenWindows();
  EXPECT_EQ(engine.openWindows(), 0u);
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(injector.rpcDropProbability(), 0.0);
  // Idempotent: the stranded close edges firing later must not double-close.
  engine.run();
  EXPECT_EQ(engine.openWindows(), 0u);
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(0), 1.0);
}

TEST(FaultInjector, EventsBeyondOstCountAreIgnored) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec("ost:9:degrade:0.5@0-10");
  FaultInjector injector{engine, plan, 2, 1};
  injector.arm();
  engine.run();
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(0), 1.0);
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(1), 1.0);
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(9), 1.0);  // out-of-range query
}

// Agent-layer faults live at the inference boundary, not in the simulator:
// an llm-only plan must schedule zero windows and leave every hot-path
// query at its neutral value (ISSUE 7 — the ML-FAULTFREE law depends on it).
TEST(FaultInjector, LlmKindsAreInvisibleToTheSimulator) {
  sim::SimEngine engine;  // default EngineOptions: seed 1
  const FaultPlan plan = parseFaultSpec(
      "llm:timeout:1@0-999,llm:bad-knob:1@0-999,llm:stale:1:claude@0-999");
  FaultInjector injector{engine, plan, 4, 99};
  injector.arm();
  EXPECT_TRUE(engine.empty());  // no window edges were scheduled at all
  engine.run();
  EXPECT_EQ(injector.windowsOpened(), 0u);
  EXPECT_DOUBLE_EQ(injector.ostSlowdown(0), 1.0);
  EXPECT_FALSE(injector.ostDown(0));
  EXPECT_DOUBLE_EQ(injector.rpcDropProbability(), 0.0);
  EXPECT_DOUBLE_EQ(injector.mdsSlowdown(), 1.0);
  EXPECT_DOUBLE_EQ(injector.noiseMultiplierOver(100.0), 1.0);
}

}  // namespace
}  // namespace stellar::faults

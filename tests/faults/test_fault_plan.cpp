// FaultPlan: spec grammar, validation, scenarios, serialization.
#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"

namespace stellar::faults {
namespace {

TEST(FaultPlan, ParsesEveryEventKind) {
  const FaultPlan plan = parseFaultSpec(
      "ost:2:degrade:0.3@10-40, ost:*:outage@5-6, mds:overload:4@0-20,"
      "rpc:drop:0.1@0-60, rpc:stall:0.25@30-35, noise:spike:2.5@0-90, seed:7");
  ASSERT_EQ(plan.events.size(), 6u);
  EXPECT_EQ(plan.seed, 7u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::OstDegrade);
  EXPECT_EQ(plan.events[0].target, 2);
  EXPECT_DOUBLE_EQ(plan.events[0].begin, 10.0);
  EXPECT_DOUBLE_EQ(plan.events[0].end, 40.0);
  EXPECT_DOUBLE_EQ(plan.events[0].magnitude, 0.3);

  EXPECT_EQ(plan.events[1].kind, FaultKind::OstOutage);
  EXPECT_EQ(plan.events[1].target, kAllTargets);

  EXPECT_EQ(plan.events[2].kind, FaultKind::MdsOverload);
  EXPECT_DOUBLE_EQ(plan.events[2].magnitude, 4.0);

  EXPECT_EQ(plan.events[3].kind, FaultKind::RpcDrop);
  EXPECT_DOUBLE_EQ(plan.events[3].magnitude, 0.1);

  EXPECT_EQ(plan.events[4].kind, FaultKind::RpcStall);
  EXPECT_DOUBLE_EQ(plan.events[4].magnitude, 0.25);

  EXPECT_EQ(plan.events[5].kind, FaultKind::NoiseSpike);
  EXPECT_DOUBLE_EQ(plan.events[5].magnitude, 2.5);
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  EXPECT_TRUE(parseFaultSpec("").empty());
  EXPECT_TRUE(parseFaultSpec("   ").empty());
}

TEST(FaultPlan, ScenarioNamesResolve) {
  for (const std::string& name : scenarioNames()) {
    const FaultPlan plan = parseFaultSpec(name);
    EXPECT_FALSE(plan.empty()) << name;
    EXPECT_NO_THROW(plan.validate()) << name;
    EXPECT_EQ(plan, scenarioByName(name)) << name;
  }
  EXPECT_THROW((void)scenarioByName("no-such-scenario"), FaultSpecError);
}

TEST(FaultPlan, MalformedSpecsQuoteTheElement) {
  try {
    (void)parseFaultSpec("ost:1:degrade:0.5@10-40,rpc:bogus:1@0-1");
    FAIL() << "expected FaultSpecError";
  } catch (const FaultSpecError& e) {
    EXPECT_NE(std::string{e.what()}.find("rpc:bogus:1@0-1"), std::string::npos);
  }
  EXPECT_THROW((void)parseFaultSpec("ost:1:degrade:0.5"), FaultSpecError);  // no window
  EXPECT_THROW((void)parseFaultSpec("ost:x:outage@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("ost:-3:outage@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("rpc:drop:abc@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("noise:spike:2@5"), FaultSpecError);  // no '-'
}

TEST(FaultPlan, ValidationRejectsOutOfRangeMagnitudes) {
  EXPECT_THROW((void)parseFaultSpec("ost:0:degrade:0@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("ost:0:degrade:1.5@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("mds:overload:0.5@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("rpc:drop:1.0@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("rpc:stall:-1@0-1"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("noise:spike:0.9@0-1"), FaultSpecError);
  // Inverted or negative windows.
  EXPECT_THROW((void)parseFaultSpec("rpc:drop:0.1@5-5"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("rpc:drop:0.1@9-5"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("rpc:drop:0.1@-1-5"), FaultSpecError);
}

TEST(FaultPlan, DescribeAndJsonCoverEvents) {
  const FaultPlan plan = parseFaultSpec("ost:1:degrade:0.3@1-60,rpc:drop:0.2@2-12");
  const std::string text = plan.describe();
  EXPECT_NE(text.find("ost-degrade"), std::string::npos);
  EXPECT_NE(text.find("rpc-drop"), std::string::npos);

  const util::Json json = plan.toJson();
  ASSERT_EQ(json.at("events").asArray().size(), 2u);
  EXPECT_EQ(json.at("events").asArray()[0].getString("kind"), "ost-degrade");
  EXPECT_TRUE(FaultPlan{}.describe() == "(no faults)");
}

// ---- Agent-layer (llm:*) grammar, ISSUE 7 -------------------------------

TEST(FaultPlan, ParsesEveryLlmKind) {
  const FaultPlan plan = parseFaultSpec(
      "llm:timeout:0.5@0-10, llm:ratelimit:0.2@1-4, llm:truncate:1@2-3,"
      "llm:malformed:0.1@0-99, llm:bad-knob:0.3@5-9, llm:bad-value:0.25@5-9,"
      "llm:stale:0.4@3-8, seed:11");
  ASSERT_EQ(plan.events.size(), 7u);
  EXPECT_EQ(plan.seed, 11u);
  EXPECT_EQ(plan.events[0].kind, FaultKind::LlmTimeout);
  EXPECT_EQ(plan.events[1].kind, FaultKind::LlmRateLimit);
  EXPECT_EQ(plan.events[2].kind, FaultKind::LlmTruncated);
  EXPECT_EQ(plan.events[3].kind, FaultKind::LlmMalformed);
  EXPECT_EQ(plan.events[4].kind, FaultKind::LlmHallucinatedKnob);
  EXPECT_EQ(plan.events[5].kind, FaultKind::LlmOutOfRange);
  EXPECT_EQ(plan.events[6].kind, FaultKind::LlmStaleAnalysis);
  for (const FaultEvent& event : plan.events) {
    EXPECT_TRUE(isLlmFault(event.kind));
    EXPECT_TRUE(event.model.empty());  // no filter: matches every model
  }
  // The simulator-side kinds are not LLM faults.
  EXPECT_FALSE(isLlmFault(FaultKind::OstDegrade));
  EXPECT_FALSE(isLlmFault(FaultKind::NoiseSpike));
}

TEST(FaultPlan, LlmModelFilterParses) {
  const FaultPlan plan =
      parseFaultSpec("llm:timeout:1:claude@0-5,llm:truncate:0.5:*@0-5");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_EQ(plan.events[0].model, "claude");
  EXPECT_TRUE(plan.events[1].model.empty());  // '*' is the explicit wildcard
}

TEST(FaultPlan, LlmSpecErrorsQuoteTheElement) {
  EXPECT_THROW((void)parseFaultSpec("llm:teleport:0.5@0-5"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("llm:timeout@0-5"), FaultSpecError);  // no prob
  EXPECT_THROW((void)parseFaultSpec("llm:timeout:1.5@0-5"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("llm:timeout:-0.1@0-5"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("llm:timeout:0.5:@0-5"), FaultSpecError);
  EXPECT_THROW((void)parseFaultSpec("llm:timeout:0.5"), FaultSpecError);  // no window
  EXPECT_THROW((void)parseFaultSpec("llm:timeout:0.5:a:b@0-5"), FaultSpecError);
  // Model filters are meaningless on simulator-side kinds.
  FaultPlan plan = parseFaultSpec("rpc:drop:0.1@0-5");
  plan.events[0].model = "claude";
  EXPECT_THROW(plan.validate(), FaultSpecError);
}

TEST(FaultPlan, LlmScenariosResolveAndDescribe) {
  for (const char* name : {"flaky-llm", "degrading-llm", "llm-outage"}) {
    const FaultPlan plan = scenarioByName(name);
    EXPECT_FALSE(plan.empty()) << name;
    EXPECT_NO_THROW(plan.validate()) << name;
    for (const FaultEvent& event : plan.events) {
      EXPECT_TRUE(isLlmFault(event.kind)) << name;
    }
  }
  // degrading-llm targets only the primary (claude) model so the ladder's
  // fallback rung stays usable.
  const FaultPlan degrading = scenarioByName("degrading-llm");
  for (const FaultEvent& event : degrading.events) {
    EXPECT_EQ(event.model, "claude");
  }
  const std::string text = scenarioByName("flaky-llm").describe();
  EXPECT_NE(text.find("llm-timeout"), std::string::npos);
  EXPECT_NE(text.find("@calls"), std::string::npos);  // windows are call indices
}

TEST(FaultPlan, LlmJsonCarriesModelFilter) {
  const util::Json json = parseFaultSpec("llm:timeout:1:claude@0-5").toJson();
  ASSERT_EQ(json.at("events").asArray().size(), 1u);
  EXPECT_EQ(json.at("events").asArray()[0].getString("kind"), "llm-timeout");
  EXPECT_EQ(json.at("events").asArray()[0].getString("model"), "claude");
}

}  // namespace
}  // namespace stellar::faults

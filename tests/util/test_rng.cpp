#include <gtest/gtest.h>

#include <span>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stellar::util {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a{7};
  Rng b{7};
  Rng c{8};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformStaysInRange) {
  Rng rng{1};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{2};
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    sawLo |= v == 3;
    sawHi |= v == 7;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, NormalHasExpectedMoments) {
  Rng rng{3};
  std::vector<double> xs(20000);
  for (double& x : xs) {
    x = rng.normal(10.0, 2.0);
  }
  EXPECT_NEAR(mean(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev(xs), 2.0, 0.1);
}

TEST(Rng, LognormalNoiseHasUnitMean) {
  Rng rng{4};
  std::vector<double> xs(40000);
  for (double& x : xs) {
    x = rng.lognormalNoise(0.05);
  }
  EXPECT_NEAR(mean(xs), 1.0, 0.01);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng{5};
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.25, 0.03);
}

TEST(Rng, ShufflePermutes) {
  Rng rng{6};
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) {
    v[static_cast<std::size_t>(i)] = i;
  }
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent{7};
  Rng child = parent.fork();
  EXPECT_NE(parent.next(), child.next());
}

TEST(Rng, Mix64IsStable) {
  EXPECT_EQ(mix64(1, 2), mix64(1, 2));
  EXPECT_NE(mix64(1, 2), mix64(2, 1));
}

}  // namespace
}  // namespace stellar::util

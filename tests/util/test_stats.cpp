#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace stellar::util {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 4.571428, 1e-5);
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);
}

TEST(Stats, EmptyAndSingletonInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(confidenceInterval90(one), 0.0);
}

TEST(Stats, MedianHandlesOddAndEven) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, ConfidenceInterval90MatchesTTable) {
  // n=8 (the paper's repeat count): t(7, 0.95) = 1.895.
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  const double se = stddev(xs) / std::sqrt(8.0);
  EXPECT_NEAR(confidenceInterval90(xs), 1.895 * se, 1e-9);
}

TEST(Stats, SummarizeBundlesEverything) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_GT(s.ci90, 0.0);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Stats, PearsonRejectsSizeMismatch) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_THROW((void)pearson(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace stellar::util

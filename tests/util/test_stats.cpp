#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace stellar::util {
namespace {

TEST(Stats, MeanAndVariance) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 4.571428, 1e-5);
  EXPECT_NEAR(stddev(xs), 2.13809, 1e-4);
}

TEST(Stats, EmptyAndSingletonInputs) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one = {3.0};
  EXPECT_DOUBLE_EQ(mean(one), 3.0);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(confidenceInterval90(one), 0.0);
}

TEST(Stats, MedianHandlesOddAndEven) {
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Stats, ConfidenceInterval90MatchesTTable) {
  // n=8 (the paper's repeat count): t(7, 0.95) = 1.895.
  const std::vector<double> xs = {1, 2, 3, 4, 5, 6, 7, 8};
  const double se = stddev(xs) / std::sqrt(8.0);
  EXPECT_NEAR(confidenceInterval90(xs), 1.895 * se, 1e-9);
}

TEST(Stats, SummarizeBundlesEverything) {
  const std::vector<double> xs = {1.0, 2.0, 3.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_EQ(s.n, 3u);
  EXPECT_GT(s.ci90, 0.0);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(xs, down), -1.0, 1e-12);
  const std::vector<double> flat = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(xs, flat), 0.0);
}

TEST(Stats, TrimmedMeanDropsTailsSymmetrically) {
  // 10 samples, 10% trim: drop the single min and max.
  const std::vector<double> xs = {100.0, 2, 3, 4, 5, 6, 7, 8, 9, -100.0};
  EXPECT_DOUBLE_EQ(trimmedMean(xs, 0.1), 5.5);
  // Planted outlier barely moves the trimmed mean but wrecks the mean.
  EXPECT_NE(mean(xs), 5.5);
}

TEST(Stats, TrimmedMeanEdgeCases) {
  EXPECT_DOUBLE_EQ(trimmedMean({}, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(trimmedMean({7.0}, 0.25), 7.0);
  // Zero trim degrades to the plain mean.
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(trimmedMean(xs, 0.0), 2.5);
  // A fraction >= 0.5 is clamped so at least one sample survives.
  EXPECT_DOUBLE_EQ(trimmedMean({1.0, 100.0}, 0.9), 50.5);
  const std::vector<double> odd = {1.0, 2.0, 300.0};
  EXPECT_DOUBLE_EQ(trimmedMean(odd, 0.9), 2.0);
  // A negative fraction degrades to the plain mean rather than widening.
  EXPECT_DOUBLE_EQ(trimmedMean(xs, -0.3), 2.5);
}

TEST(Stats, TrimmedMeanGuardsAgainstNan) {
  // NaN would break std::sort's ordering contract and poison the sum; the
  // guard drops it so one failed measurement cannot corrupt the aggregate.
  const double nan = std::nan("");
  EXPECT_NEAR(trimmedMean({10.0, nan, 10.2}, 0.0), 10.1, 1e-12);
  EXPECT_DOUBLE_EQ(trimmedMean({nan, nan}, 0.1), 0.0);   // nothing survives
  EXPECT_DOUBLE_EQ(trimmedMean({nan, 5.0}, 0.25), 5.0);  // single survivor
  EXPECT_FALSE(std::isnan(trimmedMean({1.0, nan, 2.0, 3.0, nan}, 0.2)));
}

TEST(Stats, CoefficientOfVariationScalesFreely) {
  const std::vector<double> xs = {9.0, 10.0, 11.0};
  const std::vector<double> scaled = {90.0, 100.0, 110.0};
  EXPECT_NEAR(coefficientOfVariation(xs), coefficientOfVariation(scaled), 1e-12);
  EXPECT_NEAR(coefficientOfVariation(xs), stddev(xs) / 10.0, 1e-12);
  EXPECT_DOUBLE_EQ(coefficientOfVariation({}), 0.0);
  const std::vector<double> one = {5.0};
  EXPECT_DOUBLE_EQ(coefficientOfVariation(one), 0.0);
  const std::vector<double> zeros = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(coefficientOfVariation(zeros), 0.0);  // zero mean guard
}

TEST(Stats, PearsonRejectsSizeMismatch) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1, 2, 3};
  EXPECT_THROW((void)pearson(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace stellar::util

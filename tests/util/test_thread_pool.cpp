// ThreadPool: exception propagation and completion guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace stellar::util {
namespace {

TEST(ThreadPool, SubmitFutureRethrowsTaskException) {
  ThreadPool pool{2};
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  pool.parallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ParallelForRethrowsAfterAllTasksComplete) {
  // Regression: an early rethrow would let still-running tasks touch the
  // caller's dead stack frame. Every task must finish before the first
  // exception surfaces.
  ThreadPool pool{4};
  std::atomic<int> completed{0};
  try {
    pool.parallelFor(16, [&](std::size_t i) {
      if (i == 0) {
        throw std::runtime_error("task 0 failed");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++completed;
    });
    FAIL() << "expected the task exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 0 failed");
  }
  // All 15 non-throwing tasks ran to completion before the rethrow.
  EXPECT_EQ(completed.load(), 15);
}

TEST(ThreadPool, ParallelForSurfacesTheFirstOfManyExceptions) {
  ThreadPool pool{2};
  std::atomic<int> threw{0};
  try {
    pool.parallelFor(8, [&](std::size_t) {
      ++threw;
      throw std::logic_error("each task throws");
    });
    FAIL() << "expected an exception";
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(threw.load(), 8);  // no task was skipped or abandoned
}

}  // namespace
}  // namespace stellar::util

// Units, tables, thread pool, logging.
#include <gtest/gtest.h>

#include <atomic>

#include "util/file.hpp"
#include "util/log.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace stellar::util {
namespace {

TEST(Units, FormatBytesPicksSuffix) {
  EXPECT_EQ(formatBytes(512), "512.0 B");
  EXPECT_EQ(formatBytes(64 * kKiB), "64.0 KiB");
  EXPECT_EQ(formatBytes(3 * kMiB / 2), "1.5 MiB");
  EXPECT_EQ(formatBytes(2 * kGiB), "2.0 GiB");
  EXPECT_EQ(formatBytes(3 * kTiB), "3.0 TiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(formatSeconds(12.345), "12.35 s");
  EXPECT_EQ(formatSeconds(0.012), "12.00 ms");
  EXPECT_EQ(formatSeconds(3.2e-5), "32.0 us");
}

TEST(Table, RendersAlignedColumns) {
  Table t{{"workload", "speedup"}};
  t.addRow({"IOR_16M", "4.91"});
  t.addRow({"MDWorkbench_8K", "1.58"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| workload       | speedup |"), std::string::npos);
  EXPECT_NE(out.find("| IOR_16M        | 4.91    |"), std::string::npos);
  EXPECT_EQ(t.rowCount(), 2u);
}

TEST(Table, PadsShortRows) {
  Table t{{"a", "b", "c"}};
  t.addRow({"1"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| 1 |   |   |"), std::string::npos);
}

TEST(Table, CsvQuotesSpecials) {
  Table t{{"name", "note"}};
  t.addRow({"x", "has, comma"});
  t.addRow({"y", "has \"quote\""});
  const std::string csv = t.renderCsv();
  EXPECT_NE(csv.find("\"has, comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has \"\"quote\"\"\""), std::string::npos);
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool{4};
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(100);
  pool.parallelFor(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool{2};
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW((void)f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroSelectsHardwareConcurrency) {
  ThreadPool pool{0};
  EXPECT_GE(pool.threadCount(), 1u);
}

TEST(File, RoundTripAndErrors) {
  const std::string path = ::testing::TempDir() + "/stellar_file_test.txt";
  writeFile(path, "hello\nworld\n");
  EXPECT_TRUE(fileExists(path));
  EXPECT_EQ(readFile(path), "hello\nworld\n");
  writeFile(path, "shorter");  // truncates
  EXPECT_EQ(readFile(path), "shorter");
  EXPECT_FALSE(fileExists("/no/such/dir/file.txt"));
  EXPECT_THROW((void)readFile("/no/such/dir/file.txt"), std::runtime_error);
  EXPECT_THROW(writeFile("/no/such/dir/file.txt", "x"), std::runtime_error);
}

TEST(File, EnsureParentDirCreatesMissingAncestors) {
  const std::string base = ::testing::TempDir() + "/stellar_parent_test";
  const std::string nested = base + "/a/b/store.jsonl";
  ensureParentDir(nested);
  writeFile(nested, "x");  // parent chain now exists
  EXPECT_EQ(readFile(nested), "x");
  ensureParentDir(nested);        // idempotent
  ensureParentDir("plain.name");  // no directory part: no-op
}

TEST(Log, LevelFilterWorks) {
  const LogLevel before = logLevel();
  setLogLevel(LogLevel::Error);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  logLine(LogLevel::Debug, "test", "suppressed");  // must not crash
  setLogLevel(before);
}

}  // namespace
}  // namespace stellar::util

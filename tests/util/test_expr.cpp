// The dependent-range expression language (§4.2.2 of the paper).
#include <gtest/gtest.h>

#include "util/expr.hpp"

namespace stellar::util {
namespace {

SymbolResolver table(std::initializer_list<std::pair<std::string, double>> entries) {
  auto map = std::make_shared<std::vector<std::pair<std::string, double>>>(entries);
  return [map](std::string_view name) -> std::optional<double> {
    for (const auto& [k, v] : *map) {
      if (k == name) {
        return v;
      }
    }
    return std::nullopt;
  };
}

TEST(Expr, ArithmeticPrecedence) {
  EXPECT_DOUBLE_EQ(Expr::parse("2 + 3 * 4").evaluateConstant(), 14.0);
  EXPECT_DOUBLE_EQ(Expr::parse("(2 + 3) * 4").evaluateConstant(), 20.0);
  EXPECT_DOUBLE_EQ(Expr::parse("10 - 4 - 3").evaluateConstant(), 3.0);
  EXPECT_DOUBLE_EQ(Expr::parse("16 / 4 / 2").evaluateConstant(), 2.0);
  EXPECT_DOUBLE_EQ(Expr::parse("-3 + 5").evaluateConstant(), 2.0);
  EXPECT_DOUBLE_EQ(Expr::parse("2 * -3").evaluateConstant(), -6.0);
}

TEST(Expr, VariablesResolveThroughSymbolTable) {
  const Expr e = Expr::parse("llite.max_read_ahead_mb / 2");
  EXPECT_DOUBLE_EQ(e.evaluate(table({{"llite.max_read_ahead_mb", 256.0}})), 128.0);
  EXPECT_EQ(e.variables(), std::vector<std::string>{"llite.max_read_ahead_mb"});
}

TEST(Expr, ThePaperCanonicalDependentBound) {
  // max_read_ahead_per_file_mb <= max_read_ahead_mb / 2,
  // max_read_ahead_mb <= client_ram_mb / 2 (paper §4.2.2 example).
  const Expr e = Expr::parse("min(client_ram_mb / 2, requested) / 2");
  const double v = e.evaluate(table({{"client_ram_mb", 200704.0}, {"requested", 512.0}}));
  EXPECT_DOUBLE_EQ(v, 256.0);
}

TEST(Expr, BuiltinFunctions) {
  EXPECT_DOUBLE_EQ(Expr::parse("min(3, 7)").evaluateConstant(), 3.0);
  EXPECT_DOUBLE_EQ(Expr::parse("max(3, 7)").evaluateConstant(), 7.0);
  EXPECT_DOUBLE_EQ(Expr::parse("floor(3.9)").evaluateConstant(), 3.0);
  EXPECT_DOUBLE_EQ(Expr::parse("ceil(3.1)").evaluateConstant(), 4.0);
  EXPECT_DOUBLE_EQ(Expr::parse("log2(1024)").evaluateConstant(), 10.0);
  EXPECT_DOUBLE_EQ(Expr::parse("max(min(5, 3), 2 + 2)").evaluateConstant(), 4.0);
}

TEST(Expr, UnresolvedVariableThrows) {
  const Expr e = Expr::parse("x + 1");
  EXPECT_THROW((void)e.evaluateConstant(), ExprError);
  EXPECT_THROW((void)e.evaluate(table({{"y", 1.0}})), ExprError);
}

TEST(Expr, SyntaxErrorsThrow) {
  EXPECT_THROW((void)Expr::parse(""), ExprError);
  EXPECT_THROW((void)Expr::parse("1 +"), ExprError);
  EXPECT_THROW((void)Expr::parse("(1"), ExprError);
  EXPECT_THROW((void)Expr::parse("1 2"), ExprError);
  EXPECT_THROW((void)Expr::parse("min(1)"), ExprError);
  EXPECT_THROW((void)Expr::parse("unknownfn(1)"), ExprError);
  EXPECT_THROW((void)Expr::parse("@"), ExprError);
}

TEST(Expr, RuntimeErrorsThrow) {
  EXPECT_THROW((void)Expr::parse("1 / 0").evaluateConstant(), ExprError);
  EXPECT_THROW((void)Expr::parse("log2(0)").evaluateConstant(), ExprError);
}

TEST(Expr, DottedIdentifiersAndDedup) {
  const Expr e = Expr::parse("a.b + a.b * c");
  EXPECT_EQ(e.variables().size(), 2u);
  EXPECT_DOUBLE_EQ(e.evaluate(table({{"a.b", 2.0}, {"c", 3.0}})), 8.0);
}

TEST(Expr, OneShotHelper) {
  EXPECT_DOUBLE_EQ(evaluateExpression("2 * k", table({{"k", 21.0}})), 42.0);
}

TEST(Expr, ScientificNotation) {
  EXPECT_DOUBLE_EQ(Expr::parse("1.5e2").evaluateConstant(), 150.0);
  EXPECT_DOUBLE_EQ(Expr::parse("2e-2").evaluateConstant(), 0.02);
}

}  // namespace
}  // namespace stellar::util

#include <gtest/gtest.h>

#include "util/json.hpp"

namespace stellar::util {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").isNull());
  EXPECT_EQ(Json::parse("true").asBool(), true);
  EXPECT_EQ(Json::parse("false").asBool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("3.25").asNumber(), 3.25);
  EXPECT_DOUBLE_EQ(Json::parse("-17").asNumber(), -17.0);
  EXPECT_DOUBLE_EQ(Json::parse("1e3").asNumber(), 1000.0);
  EXPECT_EQ(Json::parse("\"hi\"").asString(), "hi");
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(R"({"rules": [{"Parameter": "lov.stripe_count",
      "Rule Description": "keep 1 for small files", "n": 2}], "v": true})");
  EXPECT_TRUE(doc.isObject());
  const auto& rules = doc.at("rules").asArray();
  ASSERT_EQ(rules.size(), 1u);
  EXPECT_EQ(rules[0].at("Parameter").asString(), "lov.stripe_count");
  EXPECT_EQ(rules[0].at("n").asInt(), 2);
  EXPECT_TRUE(doc.at("v").asBool());
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::makeObject();
  obj.set("z", Json{1});
  obj.set("a", Json{2});
  obj.set("m", Json{3});
  const auto& members = obj.asObject();
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, SetReplacesExistingKey) {
  Json obj = Json::makeObject();
  obj.set("k", Json{1});
  obj.set("k", Json{2});
  EXPECT_EQ(obj.asObject().size(), 1u);
  EXPECT_EQ(obj.at("k").asInt(), 2);
}

TEST(Json, EscapesRoundTrip) {
  Json obj = Json::makeObject();
  obj.set("s", Json{"line1\nline2\t\"quoted\" \\slash"});
  const Json back = Json::parse(obj.dump());
  EXPECT_EQ(back.at("s").asString(), "line1\nline2\t\"quoted\" \\slash");
}

TEST(Json, UnicodeEscapes) {
  EXPECT_EQ(Json::parse(R"("A")").asString(), "A");
  EXPECT_EQ(Json::parse(R"("é")").asString(), "\xc3\xa9");  // é in UTF-8
}

TEST(Json, DumpCompactAndPretty) {
  Json arr = Json::makeArray();
  arr.push(Json{1});
  arr.push(Json{"two"});
  EXPECT_EQ(arr.dump(), "[1,\"two\"]");
  const std::string pretty = arr.dump(2);
  EXPECT_NE(pretty.find("\n  1"), std::string::npos);
}

TEST(Json, IntegersDumpWithoutDecimalPoint) {
  EXPECT_EQ(Json{42}.dump(), "42");
  EXPECT_EQ(Json{-3}.dump(), "-3");
  EXPECT_EQ(Json{2.5}.dump(), "2.5");
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)Json::parse("tru"), JsonError);
  EXPECT_THROW((void)Json::parse("1 2"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
}

TEST(Json, WrongTypeAccessThrows) {
  const Json n = Json::parse("5");
  EXPECT_THROW((void)n.asString(), JsonError);
  EXPECT_THROW((void)n.asArray(), JsonError);
  EXPECT_THROW((void)n.at("x"), JsonError);
}

TEST(Json, GettersWithFallbacks) {
  const Json doc = Json::parse(R"({"s": "v", "n": 2})");
  EXPECT_EQ(doc.getString("s"), "v");
  EXPECT_EQ(doc.getString("missing", "d"), "d");
  EXPECT_DOUBLE_EQ(doc.getNumber("n"), 2.0);
  EXPECT_DOUBLE_EQ(doc.getNumber("s", 9.0), 9.0);  // wrong type -> fallback
  EXPECT_TRUE(doc.getBool("missing", true));
}

TEST(Json, EqualityIsDeep) {
  const Json a = Json::parse(R"({"x": [1, {"y": 2}]})");
  const Json b = Json::parse(R"({"x": [1, {"y": 2}]})");
  const Json c = Json::parse(R"({"x": [1, {"y": 3}]})");
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
}

TEST(Json, RoundTripComplexDocument) {
  const std::string text =
      R"({"a":[1,2.5,null,true,"s"],"b":{"c":[],"d":{}},"e":-1e-3})";
  const Json doc = Json::parse(text);
  EXPECT_EQ(Json::parse(doc.dump()), doc);
  EXPECT_EQ(Json::parse(doc.dump(4)), doc);
}

}  // namespace
}  // namespace stellar::util

#include <gtest/gtest.h>

#include "util/strings.hpp"

namespace stellar::util {
namespace {

TEST(Strings, ToLower) {
  EXPECT_EQ(toLower("Lustre OST"), "lustre ost");
  EXPECT_EQ(toLower(""), "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim("abc"), "abc");
}

TEST(Strings, StartsEndsWith) {
  EXPECT_TRUE(startsWith("osc.max_dirty_mb", "osc."));
  EXPECT_FALSE(startsWith("osc", "osc."));
  EXPECT_TRUE(endsWith("file.json", ".json"));
  EXPECT_FALSE(endsWith("file.json", ".yaml"));
}

TEST(Strings, ContainsIgnoreCase) {
  EXPECT_TRUE(containsIgnoreCase("Stripe Count controls layout", "stripe count"));
  EXPECT_FALSE(containsIgnoreCase("stripe", "stripes"));
  EXPECT_TRUE(containsIgnoreCase("anything", ""));
}

TEST(Strings, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("x,", ','), (std::vector<std::string>{"x", ""}));
}

TEST(Strings, SplitWhitespaceSkipsRuns) {
  EXPECT_EQ(splitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(Strings, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"a", "b", "c"};
  EXPECT_EQ(join(parts, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Strings, ReplaceAll) {
  EXPECT_EQ(replaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replaceAll("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replaceAll("x", "", "y"), "x");
}

TEST(Strings, FormatDouble) {
  EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(formatDouble(2.0, 0), "2");
}

}  // namespace
}  // namespace stellar::util

// ShardedEngine: parallel drive of independent engines, lockstep windows,
// and aggregate accounting.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sim/sharded_engine.hpp"

namespace stellar::sim {
namespace {

// Schedules a deterministic self-extending chain on each shard; returns
// the expected per-shard event count.
std::uint64_t plantChains(ShardedEngine& engines, int links) {
  for (std::size_t s = 0; s < engines.shardCount(); ++s) {
    SimEngine& shard = engines.shard(s);
    auto* remaining = new int{links};  // owned by the final link
    struct Chain {
      static void schedule(SimEngine& engine, int* left, double delay) {
        engine.scheduleAfter(delay, [&engine, left, delay] {
          if (--*left > 0) {
            schedule(engine, left, delay);
          } else {
            delete left;
          }
        });
      }
    };
    Chain::schedule(shard, remaining, 0.5 * static_cast<double>(s + 1));
  }
  return static_cast<std::uint64_t>(links);
}

TEST(ShardedEngine, FreeRunDrainsEveryShard) {
  ShardedEngine engines{EngineOptions{.seed = 9, .shards = 4}};
  ASSERT_EQ(engines.shardCount(), 4u);
  const std::uint64_t perShard = plantChains(engines, 50);
  const SimTime end = engines.run();
  EXPECT_TRUE(engines.empty());
  EXPECT_EQ(engines.eventsProcessed(), perShard * 4);
  // Shard s ticks every 0.5*(s+1): the slowest shard defines the end.
  EXPECT_DOUBLE_EQ(end, 0.5 * 4.0 * 50.0);
  EXPECT_DOUBLE_EQ(engines.now(), end);
}

TEST(ShardedEngine, RunUntilRespectsLimit) {
  ShardedEngine engines{EngineOptions{.seed = 9, .shards = 2}};
  plantChains(engines, 1000);
  engines.runUntil(10.0);
  EXPECT_FALSE(engines.empty());
  EXPECT_DOUBLE_EQ(engines.now(), 10.0);
  const std::uint64_t atLimit = engines.eventsProcessed();
  engines.run();
  EXPECT_GT(engines.eventsProcessed(), atLimit);
}

TEST(ShardedEngine, LockstepWindowsMatchFreeRun) {
  // Shared-nothing shards must produce identical per-shard traces whether
  // they free-run or advance in conservative windows.
  std::vector<std::uint64_t> freeCounts;
  std::vector<SimTime> freeClocks;
  {
    ShardedEngine engines{EngineOptions{.seed = 5, .shards = 3}};
    plantChains(engines, 200);
    engines.run();
    for (std::size_t s = 0; s < engines.shardCount(); ++s) {
      freeCounts.push_back(engines.shard(s).eventsProcessed());
      freeClocks.push_back(engines.shard(s).now());
    }
  }
  ShardedEngine engines{
      EngineOptions{.seed = 5, .shards = 3, .syncWindowSeconds = 2.0}};
  plantChains(engines, 200);
  engines.run();
  for (std::size_t s = 0; s < engines.shardCount(); ++s) {
    EXPECT_EQ(engines.shard(s).eventsProcessed(), freeCounts[s]) << "shard " << s;
    EXPECT_DOUBLE_EQ(engines.shard(s).now(), freeClocks[s]) << "shard " << s;
  }
}

TEST(ShardedEngine, CancelOpenWindowsSweepsAllShards) {
  ShardedEngine engines{EngineOptions{.seed = 1, .shards = 2}};
  std::atomic<int> closed{0};
  for (std::size_t s = 0; s < engines.shardCount(); ++s) {
    engines.shard(s).scheduleWindow(1.0, 100.0, [] {}, [&closed] { ++closed; });
  }
  engines.runUntil(5.0);
  EXPECT_EQ(engines.openWindows(), 2u);
  engines.cancelOpenWindows();
  EXPECT_EQ(engines.openWindows(), 0u);
  EXPECT_EQ(closed.load(), 2);
}

}  // namespace
}  // namespace stellar::sim

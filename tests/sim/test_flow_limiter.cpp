// Counting-semaphore semantics of the in-flight RPC caps.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/flow_limiter.hpp"

namespace stellar::sim {
namespace {

TEST(FlowLimiter, AdmitsUpToLimitImmediately) {
  SimEngine engine;
  FlowLimiter limiter{engine, 3};
  int admitted = 0;
  for (int i = 0; i < 5; ++i) {
    limiter.acquire([&] { ++admitted; });
  }
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(limiter.inFlight(), 3u);
  EXPECT_EQ(limiter.waiters(), 2u);
}

TEST(FlowLimiter, ReleaseAdmitsWaitersFifo) {
  SimEngine engine;
  FlowLimiter limiter{engine, 1};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    limiter.acquire([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(order, (std::vector<int>{0}));
  limiter.release();
  limiter.release();  // second release is a no-op floor at 0? no: releases slot for waiter 2
  engine.run();       // queued admissions run as events
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(FlowLimiter, RaisingLimitAdmitsWaiters) {
  SimEngine engine;
  FlowLimiter limiter{engine, 1};
  int admitted = 0;
  for (int i = 0; i < 4; ++i) {
    limiter.acquire([&] { ++admitted; });
  }
  EXPECT_EQ(admitted, 1);
  limiter.setLimit(3);
  engine.run();
  EXPECT_EQ(admitted, 3);
}

TEST(FlowLimiter, TracksPeakInFlight) {
  SimEngine engine;
  FlowLimiter limiter{engine, 8};
  for (int i = 0; i < 5; ++i) {
    limiter.acquire([] {});
  }
  EXPECT_EQ(limiter.peakInFlight(), 5u);
}

TEST(FlowLimiter, LimitFloorsAtOne) {
  SimEngine engine;
  FlowLimiter limiter{engine, 0};
  EXPECT_EQ(limiter.limit(), 1u);
  bool ran = false;
  limiter.acquire([&] { ran = true; });
  EXPECT_TRUE(ran);
}

// -------------------------------------------------------- FlowLimiterBank

TEST(FlowLimiterBank, LanesAreIndependentSemaphores) {
  SimEngine engine;
  FlowLimiterBank bank{engine, /*lanes=*/4, /*limit=*/2};
  int admitted = 0;
  for (int i = 0; i < 3; ++i) {
    bank.acquire(0, [&] { ++admitted; });
    bank.acquire(3, [&] { ++admitted; });
  }
  // Each lane caps at 2 independently; lane 3's backlog never blocks lane 0.
  EXPECT_EQ(admitted, 4);
  EXPECT_EQ(bank.inFlight(0), 2u);
  EXPECT_EQ(bank.inFlight(3), 2u);
  EXPECT_EQ(bank.waiters(0), 1u);
  EXPECT_EQ(bank.waiters(2), 0u);
  EXPECT_EQ(bank.laneCount(), 4u);
}

TEST(FlowLimiterBank, ReleaseAdmitsWaitersFifoPerLane) {
  SimEngine engine;
  FlowLimiterBank bank{engine, 2, 1};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    bank.acquire(1, [&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(order, (std::vector<int>{0}));
  bank.release(1);
  bank.release(1);
  engine.run();  // queued admissions run as events
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(bank.waiters(1), 0u);
}

TEST(FlowLimiterBank, SetLimitAppliesToEveryBackloggedLane) {
  SimEngine engine;
  FlowLimiterBank bank{engine, 3, 1};
  int admitted = 0;
  for (std::size_t lane = 0; lane < 3; ++lane) {
    for (int i = 0; i < 3; ++i) {
      bank.acquire(lane, [&] { ++admitted; });
    }
  }
  EXPECT_EQ(admitted, 3);  // one per lane
  bank.setLimit(3);
  engine.run();
  EXPECT_EQ(admitted, 9);
  EXPECT_EQ(bank.limit(), 3u);
}

TEST(FlowLimiterBank, MatchesScalarLimiterOnOneLane) {
  // Differential check: a 1-lane bank is behaviorally identical to the
  // scalar FlowLimiter under an interleaved acquire/release trace.
  SimEngine engineA;
  SimEngine engineB;
  FlowLimiter scalar{engineA, 2};
  FlowLimiterBank bank{engineB, 1, 2};
  std::vector<int> scalarOrder;
  std::vector<int> bankOrder;
  for (int i = 0; i < 6; ++i) {
    scalar.acquire([&scalarOrder, i] { scalarOrder.push_back(i); });
    bank.acquire(0, [&bankOrder, i] { bankOrder.push_back(i); });
    if (i % 2 == 1) {
      scalar.release();
      bank.release(0);
    }
  }
  engineA.run();
  engineB.run();
  EXPECT_EQ(scalarOrder, bankOrder);
  EXPECT_EQ(scalar.inFlight(), bank.inFlight(0));
  EXPECT_EQ(scalar.waiters(), bank.waiters(0));
}

}  // namespace
}  // namespace stellar::sim

// Counting-semaphore semantics of the in-flight RPC caps.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/flow_limiter.hpp"

namespace stellar::sim {
namespace {

TEST(FlowLimiter, AdmitsUpToLimitImmediately) {
  SimEngine engine;
  FlowLimiter limiter{engine, 3};
  int admitted = 0;
  for (int i = 0; i < 5; ++i) {
    limiter.acquire([&] { ++admitted; });
  }
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(limiter.inFlight(), 3u);
  EXPECT_EQ(limiter.waiters(), 2u);
}

TEST(FlowLimiter, ReleaseAdmitsWaitersFifo) {
  SimEngine engine;
  FlowLimiter limiter{engine, 1};
  std::vector<int> order;
  for (int i = 0; i < 3; ++i) {
    limiter.acquire([&order, i] { order.push_back(i); });
  }
  EXPECT_EQ(order, (std::vector<int>{0}));
  limiter.release();
  limiter.release();  // second release is a no-op floor at 0? no: releases slot for waiter 2
  engine.run();       // queued admissions run as events
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(FlowLimiter, RaisingLimitAdmitsWaiters) {
  SimEngine engine;
  FlowLimiter limiter{engine, 1};
  int admitted = 0;
  for (int i = 0; i < 4; ++i) {
    limiter.acquire([&] { ++admitted; });
  }
  EXPECT_EQ(admitted, 1);
  limiter.setLimit(3);
  engine.run();
  EXPECT_EQ(admitted, 3);
}

TEST(FlowLimiter, TracksPeakInFlight) {
  SimEngine engine;
  FlowLimiter limiter{engine, 8};
  for (int i = 0; i < 5; ++i) {
    limiter.acquire([] {});
  }
  EXPECT_EQ(limiter.peakInFlight(), 5u);
}

TEST(FlowLimiter, LimitFloorsAtOne) {
  SimEngine engine;
  FlowLimiter limiter{engine, 0};
  EXPECT_EQ(limiter.limit(), 1u);
  bool ran = false;
  limiter.acquire([&] { ran = true; });
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace stellar::sim

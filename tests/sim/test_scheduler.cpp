// Scheduler equivalence and calendar-queue internals.
//
// The determinism contract says both backends dispatch in strict
// (timestamp, insertion-seq) order. The property test drives randomized
// push/pop workloads through both and demands identical pop sequences;
// failures shrink to a minimal timestamp list before reporting.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <vector>

#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace stellar::sim {
namespace {

// Pops every event and returns the (at, seq) sequence.
template <typename Scheduler>
std::vector<std::pair<SimTime, std::uint64_t>> drain(Scheduler& scheduler) {
  std::vector<std::pair<SimTime, std::uint64_t>> order;
  while (!scheduler.empty()) {
    const Event event = scheduler.pop();
    order.emplace_back(event.at, event.seq);
  }
  return order;
}

// Builds both schedulers from the same timestamp list (seq = index) and
// returns whether their pop order matches AND obeys the strict
// (at, seq) order. Used directly by the property test and as the failing
// predicate for the shrinker.
bool popOrdersAgree(const std::vector<SimTime>& times) {
  HeapScheduler heap;
  CalendarScheduler calendar;
  for (std::size_t i = 0; i < times.size(); ++i) {
    heap.push(Event{times[i], i, {}});
    calendar.push(Event{times[i], i, {}});
  }
  const auto heapOrder = drain(heap);
  const auto calendarOrder = drain(calendar);
  if (heapOrder != calendarOrder) {
    return false;
  }
  for (std::size_t i = 1; i < heapOrder.size(); ++i) {
    const auto& [prevAt, prevSeq] = heapOrder[i - 1];
    const auto& [at, seq] = heapOrder[i];
    if (at < prevAt || (at == prevAt && prevSeq >= seq)) {
      return false;
    }
  }
  return true;
}

// Greedy delta-debugging shrinker: repeatedly drop elements while the
// predicate keeps failing. Returns the minimal failing list.
std::vector<SimTime> shrinkTimes(std::vector<SimTime> times,
                                 const std::function<bool(const std::vector<SimTime>&)>& fails) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < times.size(); ++i) {
      std::vector<SimTime> candidate = times;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (fails(candidate)) {
        times = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return times;
}

std::string formatTimes(const std::vector<SimTime>& times) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < times.size(); ++i) {
    out << (i == 0 ? "" : ", ") << times[i];
  }
  out << "]";
  return out.str();
}

TEST(SchedulerProperty, SameTimestampFifoMatchesAcrossBackends) {
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    util::Rng rng{util::mix64(0xF1F0, trial)};
    // Draw timestamps from a tiny value set so same-timestamp collisions
    // dominate — FIFO tie-breaking is exactly what this law targets.
    const auto count = static_cast<std::size_t>(rng.uniformInt(1, 64));
    std::vector<SimTime> times;
    times.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      times.push_back(0.5 * static_cast<double>(rng.uniformInt(0, 4)));
    }
    if (!popOrdersAgree(times)) {
      const std::vector<SimTime> minimal = shrinkTimes(
          times, [](const std::vector<SimTime>& t) { return !popOrdersAgree(t); });
      FAIL() << "trial " << trial << ": pop order diverged; minimal failing input "
             << formatTimes(minimal);
    }
  }
}

TEST(SchedulerProperty, ShrinkerFindsMinimalCounterexample) {
  // Sanity-check the shrinker itself against a synthetic predicate, so a
  // real law failure reports a genuinely minimal input.
  const std::vector<SimTime> noisy{3.0, 1.0, 1.0, 2.5, 1.0, 0.0, 4.0};
  const auto atLeastThreeOnes = [](const std::vector<SimTime>& t) {
    std::size_t ones = 0;
    for (const SimTime v : t) {
      ones += v == 1.0 ? 1 : 0;
    }
    return ones >= 3;
  };
  const std::vector<SimTime> minimal = shrinkTimes(noisy, atLeastThreeOnes);
  EXPECT_EQ(minimal, (std::vector<SimTime>{1.0, 1.0, 1.0}));
}

TEST(SchedulerProperty, InterleavedPushPopAgrees) {
  // Push/pop interleavings with monotone lower bound (the engine never
  // schedules into the past): exercises the calendar's floor tracking.
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    util::Rng rng{util::mix64(0xBEEF, trial)};
    HeapScheduler heap;
    CalendarScheduler calendar;
    std::uint64_t seq = 0;
    SimTime now = 0.0;
    std::vector<std::pair<SimTime, std::uint64_t>> heapOrder;
    std::vector<std::pair<SimTime, std::uint64_t>> calendarOrder;
    for (int step = 0; step < 400; ++step) {
      const bool push = heap.empty() || rng.chance(0.6);
      if (push) {
        const SimTime at = now + 0.25 * static_cast<double>(rng.uniformInt(0, 7));
        heap.push(Event{at, seq, {}});
        calendar.push(Event{at, seq, {}});
        ++seq;
      } else {
        const Event a = heap.pop();
        const Event b = calendar.pop();
        heapOrder.emplace_back(a.at, a.seq);
        calendarOrder.emplace_back(b.at, b.seq);
        now = a.at;
      }
    }
    ASSERT_EQ(heapOrder, calendarOrder) << "trial " << trial;
  }
}

TEST(CalendarScheduler, HandlesSparseOverflowDays) {
  CalendarScheduler calendar;
  calendar.push(Event{0.0001, 0, {}});
  calendar.push(Event{5.0e6, 1, {}});
  calendar.push(Event{9.0e8, 2, {}});
  calendar.push(Event{9.0e8, 3, {}});
  const auto order = drain(calendar);
  const std::vector<std::pair<SimTime, std::uint64_t>> expected{
      {0.0001, 0}, {5.0e6, 1}, {9.0e8, 2}, {9.0e8, 3}};
  EXPECT_EQ(order, expected);
  EXPECT_GT(calendar.overflowScans(), 0u);
}

TEST(CalendarScheduler, ResizesWithOccupancy) {
  CalendarScheduler calendar;
  util::Rng rng{7};
  const std::size_t initial = calendar.bucketCount();
  for (std::uint64_t i = 0; i < 4096; ++i) {
    calendar.push(Event{rng.uniform(0.0, 1.0), i, {}});
  }
  EXPECT_GT(calendar.bucketCount(), initial);
  SimTime last = -1.0;
  while (!calendar.empty()) {
    const Event event = calendar.pop();
    ASSERT_GE(event.at, last);
    last = event.at;
  }
  EXPECT_EQ(calendar.bucketCount(), initial);
}

}  // namespace
}  // namespace stellar::sim

// Multi-server FIFO queueing semantics.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/service_center.hpp"

namespace stellar::sim {
namespace {

TEST(ServiceCenter, SingleServerSerializes) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 1};
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    center.submit(1.0, [&] { completions.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 2.0);
  EXPECT_DOUBLE_EQ(completions[2], 3.0);
}

TEST(ServiceCenter, MultiServerRunsInParallel) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 3};
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    center.submit(1.0, [&] { completions.push_back(engine.now()); });
  }
  engine.run();
  for (const double t : completions) {
    EXPECT_DOUBLE_EQ(t, 1.0);
  }
}

TEST(ServiceCenter, QueueDrainsFifo) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 2};
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    center.submit(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(ServiceCenter, LateArrivalsQueueBehindBusyServers) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 1};
  double secondDone = 0.0;
  center.submit(5.0, [] {});
  engine.scheduleAt(1.0, [&] {
    center.submit(1.0, [&] { secondDone = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(secondDone, 6.0);  // waits for the 5s job
}

TEST(ServiceCenter, TracksBusyTimeAndPeakQueue) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 1};
  for (int i = 0; i < 4; ++i) {
    center.submit(2.0, [] {});
  }
  EXPECT_EQ(center.peakQueue(), 3u);
  engine.run();
  EXPECT_DOUBLE_EQ(center.busyTime(), 8.0);
  EXPECT_EQ(center.totalSubmitted(), 4u);
}

TEST(ServiceCenter, NegativeServiceTimeTreatedAsZero) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 1};
  bool done = false;
  center.submit(-1.0, [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
}

TEST(ServiceCenter, MinimumOneServer) {
  SimEngine engine;
  ServiceCenter center{engine, "disk", 0};
  bool done = false;
  center.submit(1.0, [&] { done = true; });
  engine.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace stellar::sim

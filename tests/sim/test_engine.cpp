// Discrete-event engine semantics: ordering, determinism, clamping.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace stellar::sim {
namespace {

TEST(SimEngine, RunsEventsInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.scheduleAt(3.0, [&] { order.push_back(3); });
  engine.scheduleAt(1.0, [&] { order.push_back(1); });
  engine.scheduleAt(2.0, [&] { order.push_back(2); });
  const double end = engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
}

TEST(SimEngine, SimultaneousEventsAreFifo) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.scheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimEngine, EventsCanScheduleMoreEvents) {
  SimEngine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      engine.scheduleAfter(0.5, chain);
    }
  };
  engine.scheduleAt(0.0, chain);
  const double end = engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(end, 49.5);
}

TEST(SimEngine, PastTimesClampToNow) {
  SimEngine engine;
  double observed = -1.0;
  engine.scheduleAt(5.0, [&] {
    engine.scheduleAt(1.0, [&] { observed = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST(SimEngine, NegativeDelayClampsToZero) {
  SimEngine engine;
  double observed = -1.0;
  engine.scheduleAfter(-3.0, [&] { observed = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(observed, 0.0);
}

TEST(SimEngine, RunUntilStopsAtLimit) {
  SimEngine engine;
  int fired = 0;
  engine.scheduleAt(1.0, [&] { ++fired; });
  engine.scheduleAt(2.0, [&] { ++fired; });
  engine.scheduleAt(10.0, [&] { ++fired; });
  engine.runUntil(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.empty());
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST(SimEngine, CountsProcessedEvents) {
  SimEngine engine;
  for (int i = 0; i < 7; ++i) {
    engine.scheduleAt(i, [] {});
  }
  engine.run();
  EXPECT_EQ(engine.eventsProcessed(), 7u);
}

TEST(SimEngine, RngIsSeedDeterministic) {
  SimEngine a{42};
  SimEngine b{42};
  SimEngine c{43};
  EXPECT_EQ(a.rng().next(), b.rng().next());
  EXPECT_NE(a.rng().next(), c.rng().next());
}

}  // namespace
}  // namespace stellar::sim

// Discrete-event engine semantics: ordering, determinism, clamping — for
// both scheduler backends, which must be behaviourally indistinguishable.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace stellar::sim {
namespace {

class SimEngineBothSchedulers : public ::testing::TestWithParam<SchedulerKind> {
 protected:
  [[nodiscard]] SimEngine makeEngine(std::uint64_t seed = 1) const {
    return SimEngine{EngineOptions{.seed = seed, .scheduler = GetParam()}};
  }
};

TEST_P(SimEngineBothSchedulers, RunsEventsInTimeOrder) {
  SimEngine engine = makeEngine();
  std::vector<int> order;
  engine.scheduleAt(3.0, [&] { order.push_back(3); });
  engine.scheduleAt(1.0, [&] { order.push_back(1); });
  engine.scheduleAt(2.0, [&] { order.push_back(2); });
  const double end = engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
}

TEST_P(SimEngineBothSchedulers, SimultaneousEventsAreFifo) {
  SimEngine engine = makeEngine();
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.scheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST_P(SimEngineBothSchedulers, EventsCanScheduleMoreEvents) {
  SimEngine engine = makeEngine();
  int depth = 0;
  // Self-scheduling closure: own the shared chain via std::function, but
  // hand the engine a plain lambda so the modern overload is exercised.
  std::function<void()> chain = [&] {
    if (++depth < 100) {
      engine.scheduleAfter(0.5, [&] { chain(); });
    }
  };
  engine.scheduleAt(0.0, [&] { chain(); });
  const double end = engine.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(end, 49.5);
}

TEST_P(SimEngineBothSchedulers, PastTimesClampToNow) {
  SimEngine engine = makeEngine();
  double observed = -1.0;
  engine.scheduleAt(5.0, [&] {
    engine.scheduleAt(1.0, [&] { observed = engine.now(); });
  });
  engine.run();
  EXPECT_DOUBLE_EQ(observed, 5.0);
}

TEST_P(SimEngineBothSchedulers, NegativeDelayClampsToZero) {
  SimEngine engine = makeEngine();
  double observed = -1.0;
  engine.scheduleAfter(-3.0, [&] { observed = engine.now(); });
  engine.run();
  EXPECT_DOUBLE_EQ(observed, 0.0);
}

TEST_P(SimEngineBothSchedulers, RunUntilStopsAtLimit) {
  SimEngine engine = makeEngine();
  int fired = 0;
  engine.scheduleAt(1.0, [&] { ++fired; });
  engine.scheduleAt(2.0, [&] { ++fired; });
  engine.scheduleAt(10.0, [&] { ++fired; });
  engine.runUntil(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(engine.empty());
  engine.run();
  EXPECT_EQ(fired, 3);
}

TEST_P(SimEngineBothSchedulers, DrainUntilDoesNotAdvancePastLastEvent) {
  SimEngine engine = makeEngine();
  int fired = 0;
  engine.scheduleAt(1.0, [&] { ++fired; });
  engine.scheduleAt(10.0, [&] { ++fired; });
  EXPECT_DOUBLE_EQ(engine.drainUntil(5.0), 1.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
  // runUntil on an undrained queue leaves the clock at the last event too.
  EXPECT_DOUBLE_EQ(engine.runUntil(5.0), 1.0);
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST_P(SimEngineBothSchedulers, CountsProcessedEvents) {
  SimEngine engine = makeEngine();
  for (int i = 0; i < 7; ++i) {
    engine.scheduleAt(i, [] {});
  }
  engine.run();
  EXPECT_EQ(engine.eventsProcessed(), 7u);
}

TEST_P(SimEngineBothSchedulers, NextEventTimePeeksWithoutDispatch) {
  SimEngine engine = makeEngine();
  EXPECT_FALSE(engine.nextEventTime().has_value());
  engine.scheduleAt(4.0, [] {});
  engine.scheduleAt(2.0, [] {});
  ASSERT_TRUE(engine.nextEventTime().has_value());
  EXPECT_DOUBLE_EQ(*engine.nextEventTime(), 2.0);
  EXPECT_EQ(engine.eventsProcessed(), 0u);
  EXPECT_EQ(engine.queueDepth(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Schedulers, SimEngineBothSchedulers,
                         ::testing::Values(SchedulerKind::Heap,
                                           SchedulerKind::Calendar),
                         [](const ::testing::TestParamInfo<SchedulerKind>& info) {
                           return schedulerKindName(info.param);
                         });

TEST(SimEngine, RngIsSeedDeterministic) {
  SimEngine a{EngineOptions{.seed = 42}};
  SimEngine b{EngineOptions{.seed = 42}};
  SimEngine c{EngineOptions{.seed = 43}};
  EXPECT_EQ(a.rng().next(), b.rng().next());
  EXPECT_NE(a.rng().next(), c.rng().next());
}

TEST(SimEngine, DeprecatedStdFunctionOverloadStillWorks) {
  // The one-release compatibility shim: std::function callers keep working
  // (with a deprecation warning) until the overload is removed.
  SimEngine engine{EngineOptions{}};
  int fired = 0;
  std::function<void()> fn = [&] { ++fired; };
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
  engine.scheduleAt(1.0, fn);
  engine.scheduleAfter(2.0, fn);
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif
  engine.run();
  EXPECT_EQ(fired, 2);
}

TEST(SimEngine, CancelOpenWindowsFiresOutstandingCloseHandlers) {
  SimEngine engine{EngineOptions{}};
  std::vector<int> closed;
  engine.scheduleWindow(1.0, 10.0, [] {}, [&] { closed.push_back(1); });
  engine.scheduleWindow(2.0, 20.0, [] {}, [&] { closed.push_back(2); });
  engine.scheduleWindow(8.0, 9.0, [] {}, [&] { closed.push_back(3); });
  engine.runUntil(5.0);
  EXPECT_EQ(engine.openWindows(), 2u);
  engine.cancelOpenWindows();
  EXPECT_EQ(engine.openWindows(), 0u);
  // Creation order, and the never-opened window (begin 8.0) is untouched.
  EXPECT_EQ(closed, (std::vector<int>{1, 2}));
  // Resuming the run must not double-fire the cancelled close edges.
  engine.run();
  EXPECT_EQ(closed, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.openWindows(), 0u);
}

}  // namespace
}  // namespace stellar::sim

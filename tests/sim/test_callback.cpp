// sim::Callback storage semantics: inline small-buffer, arena spill, heap
// fallback, move-only ownership, and arena recycling.
#include <gtest/gtest.h>

#include <array>
#include <memory>

#include "sim/callback.hpp"

namespace stellar::sim {
namespace {

TEST(Callback, SmallClosuresStayInline) {
  EventArena arena;
  const std::uint64_t before = arena.allocations();
  int hits = 0;
  Callback cb{arena, [&hits] { ++hits; }};
  EXPECT_FALSE(cb.spilled());
  EXPECT_EQ(arena.allocations(), before);
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(Callback, LargeClosuresSpillToArena) {
  EventArena arena;
  std::array<double, 16> payload{};
  payload[7] = 42.0;
  double seen = 0.0;
  Callback cb{arena, [payload, &seen] { seen = payload[7]; }};
  EXPECT_TRUE(cb.spilled());
  EXPECT_EQ(arena.allocations(), 1u);
  cb();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(Callback, LargeClosuresWithoutArenaUseHeap) {
  std::array<double, 16> payload{};
  payload[0] = 7.0;
  double seen = 0.0;
  Callback cb{[payload, &seen] { seen = payload[0]; }};
  EXPECT_TRUE(cb.spilled());
  cb();
  EXPECT_DOUBLE_EQ(seen, 7.0);
}

TEST(Callback, MoveTransfersOwnership) {
  int hits = 0;
  Callback a{[&hits] { ++hits; }};
  Callback b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(Callback, DestructionReleasesCapturedState) {
  auto token = std::make_shared<int>(5);
  {
    Callback cb{[token] { (void)*token; }};
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(Callback, ArenaSpilledDestructionReleasesCapturedState) {
  EventArena arena;
  auto token = std::make_shared<int>(5);
  std::array<double, 16> padding{};
  {
    Callback cb{arena, [token, padding] { (void)*token; (void)padding; }};
    EXPECT_TRUE(cb.spilled());
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(EventArena, RecyclesFreedStorageThroughFreeLists) {
  EventArena arena{1024};
  void* first = arena.allocate(100);
  arena.deallocate(first, 100);
  void* second = arena.allocate(100);
  EXPECT_EQ(first, second);  // same size class reuses the freed node
  arena.deallocate(second, 100);
}

TEST(EventArena, SteadyStateChurnDoesNotGrowReservation) {
  EventArena arena{1024};
  const std::size_t baseline = arena.bytesReserved();
  for (int i = 0; i < 100000; ++i) {
    void* mem = arena.allocate(96);
    arena.deallocate(mem, 96);
  }
  EXPECT_EQ(arena.bytesReserved(), baseline);
}

TEST(EventArena, OversizedRequestsFallBackToHeap) {
  EventArena arena{1024};
  const std::size_t reservedBefore = arena.bytesReserved();
  void* big = arena.allocate(4096);
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.oversizedAllocations(), 1u);
  EXPECT_EQ(arena.bytesReserved(), reservedBefore);
  arena.deallocate(big, 4096);
}

TEST(EventArena, ResetReturnsToFirstBlock) {
  EventArena arena{1024};
  for (int i = 0; i < 64; ++i) {
    (void)arena.allocate(512);  // force extra blocks
  }
  EXPECT_GT(arena.bytesReserved(), 1024u);
  arena.reset();
  EXPECT_EQ(arena.bytesReserved(), 1024u);
  // Post-reset allocations come from the recycled first block.
  void* mem = arena.allocate(64);
  ASSERT_NE(mem, nullptr);
  arena.deallocate(mem, 64);
}

}  // namespace
}  // namespace stellar::sim

// Crash safety: a service killed with half its queue drained resumes from
// the manifest and produces byte-identical per-session documents — the
// service-level analogue of the engine's KILL-RESUME law.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "service/service.hpp"
#include "util/file.hpp"

namespace stellar::service {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / ("service_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<SubmitOptions> schedule() {
  std::vector<SubmitOptions> out;
  const auto add = [&](const std::string& tenant, const std::string& workload,
                       std::uint64_t seed) {
    SubmitOptions request;
    request.tenant = tenant;
    request.workload = workload;
    request.seed = seed;
    request.scale = 0.05;
    request.warmStart = false;
    out.push_back(request);
  };
  add("alice", "IOR_64K", 7);
  add("bob", "MDWorkbench_8K", 7);
  add("alice", "IOR_64K", 8);
  add("bob", "IOR_64K", 7);  // duplicate of #1: coalesces
  return out;
}

std::string runSchedule(const std::string& storePath, std::size_t workers,
                        std::size_t maxFresh) {
  ServiceOptions options;
  options.storePath = storePath;
  options.workers = workers;
  options.maxFreshSessions = maxFresh;
  TuningService service{options};
  for (const SubmitOptions& request : schedule()) {
    const SubmitResult submitted = service.submit(request);
    EXPECT_TRUE(submitted.accepted());
  }
  std::string all;
  for (const SessionResult& result : service.drainAll()) {
    all += result.toJson().dump() + "\n";
  }
  return all;
}

TEST(Resume, KilledServiceResumesByteIdentically) {
  const fs::path killed = freshDir("killed");
  const fs::path reference = freshDir("reference");

  // Uninterrupted reference run.
  const std::string expected =
      runSchedule((reference / "store.jsonl").string(), 2, 0);
  ASSERT_NE(expected.find("\"state\":\"completed\""), std::string::npos);

  // Run 1: the fresh-cell cap interrupts the service after 2 of 3 cells.
  const std::string partial =
      runSchedule((killed / "store.jsonl").string(), 2, 2);
  EXPECT_NE(partial.find("interrupted"), std::string::npos);
  EXPECT_NE(partial, expected);

  // Run 2: same schedule, no cap — completed cells replay from the
  // manifest, interrupted ones run fresh; the documents match the
  // uninterrupted run byte for byte.
  const std::string resumed =
      runSchedule((killed / "store.jsonl").string(), 2, 0);
  EXPECT_EQ(resumed, expected);
}

TEST(Resume, ResumeIsIdenticalAcrossWorkerCounts) {
  const fs::path a = freshDir("w1");
  const fs::path b = freshDir("w8");
  (void)runSchedule((a / "store.jsonl").string(), 1, 2);
  (void)runSchedule((b / "store.jsonl").string(), 8, 2);
  const std::string resumedA = runSchedule((a / "store.jsonl").string(), 1, 0);
  const std::string resumedB = runSchedule((b / "store.jsonl").string(), 8, 0);
  EXPECT_EQ(resumedA, resumedB);
  // The fresh-cell cap counts in submission order, so even the PARTIAL
  // runs interrupt the same cells at 1 and 8 workers.
  const std::string partialA =
      util::readFile((a / "store.jsonl.manifest").string());
  const std::string partialB =
      util::readFile((b / "store.jsonl.manifest").string());
  EXPECT_EQ(partialA.empty(), partialB.empty());
}

TEST(Resume, ReplayedSessionsAreCountedAndSkipEngineRuns) {
  const fs::path dir = freshDir("counts");
  const std::string store = (dir / "store.jsonl").string();
  (void)runSchedule(store, 2, 0);

  ServiceOptions options;
  options.storePath = store;
  TuningService service{options};
  for (const SubmitOptions& request : schedule()) {
    ASSERT_TRUE(service.submit(request).accepted());
  }
  (void)service.drainAll();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.freshRuns, 0U);  // everything came from the manifest
  EXPECT_EQ(stats.replayed, 4U);   // every member session, fan-out included
  EXPECT_EQ(stats.completed, 4U);
}

TEST(Resume, CorruptManifestLinesAreSkippedNotFatal) {
  const fs::path dir = freshDir("corrupt");
  const std::string store = (dir / "store.jsonl").string();
  const std::string expected = runSchedule(store, 2, 0);

  // Tear the manifest: garbage line plus a truncated JSON tail.
  const std::string manifest = store + ".manifest";
  util::writeFile(manifest, util::readFile(manifest) +
                                "not json at all\n{\"cell\":\"IOR_64K|7");

  const std::string resumed = runSchedule(store, 2, 0);
  EXPECT_EQ(resumed, expected);  // intact lines still replay
}

TEST(Resume, SessionJournalsLandUnderTheStoreLayout) {
  const fs::path dir = freshDir("journals");
  const std::string store = (dir / "store.jsonl").string();
  (void)runSchedule(store, 2, 0);
  // Per-cell session journals live in `<store>.sessions/` so the CLI and
  // stellard share one layout.
  EXPECT_TRUE(fs::exists(dir / "store.jsonl.sessions"));
  std::size_t journals = 0;
  for (const auto& entry : fs::directory_iterator(dir / "store.jsonl.sessions")) {
    journals += entry.is_regular_file() ? 1 : 0;
  }
  EXPECT_EQ(journals, 3U);  // one per distinct cell, none for the coalesce
}

}  // namespace
}  // namespace stellar::service

// Coalescing correctness: duplicate-cell submissions share one engine run
// and every fan-out member receives a byte-identical result document.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/service.hpp"

namespace stellar::service {
namespace {

SubmitOptions request(const std::string& tenant, std::uint64_t seed = 7) {
  SubmitOptions r;
  r.tenant = tenant;
  r.workload = "IOR_64K";
  r.seed = seed;
  r.scale = 0.05;
  r.warmStart = false;
  return r;
}

TEST(Coalescing, DuplicateCellsShareOneRunAcrossTenants) {
  ServiceOptions options;
  options.workers = 4;
  TuningService service{options};

  // Same cell from three tenants plus one distinct cell.
  const SubmitResult a = service.submit(request("alice"));
  const SubmitResult b = service.submit(request("bob"));
  const SubmitResult c = service.submit(request("carol"));
  const SubmitResult d = service.submit(request("alice", 8));
  ASSERT_TRUE(a.accepted() && b.accepted() && c.accepted() && d.accepted());

  const SessionResult ra = service.wait(*a.id);
  const SessionResult rb = service.wait(*b.id);
  const SessionResult rc = service.wait(*c.id);
  const SessionResult rd = service.wait(*d.id);

  EXPECT_FALSE(ra.coalesced);  // first submission of the key owns the run
  EXPECT_TRUE(rb.coalesced);
  EXPECT_TRUE(rc.coalesced);
  EXPECT_FALSE(rd.coalesced);  // different seed = different cell

  ASSERT_FALSE(ra.cellDoc.isNull());
  EXPECT_EQ(ra.cellDoc.dump(), rb.cellDoc.dump());  // fan-out: same bytes
  EXPECT_EQ(ra.cellDoc.dump(), rc.cellDoc.dump());
  EXPECT_NE(ra.cellDoc.dump(), rd.cellDoc.dump());
  EXPECT_EQ(ra.key, rb.key);
  EXPECT_EQ(rb.tenant, "bob");  // tenancy is per session, not per cell

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 4U);
  EXPECT_EQ(stats.coalesced, 2U);
  EXPECT_EQ(stats.freshRuns, 2U);  // one run per distinct cell
  EXPECT_EQ(stats.completed, 4U);  // every member completed
}

TEST(Coalescing, LateDuplicateJoinsASettledCellWithoutRerunning) {
  TuningService service{ServiceOptions{}};
  const SubmitResult first = service.submit(request("alice"));
  ASSERT_TRUE(first.accepted());
  const SessionResult early = service.wait(*first.id);

  // The cell is terminal by now; a late duplicate completes immediately.
  const SubmitResult late = service.submit(request("bob"));
  ASSERT_TRUE(late.accepted());
  EXPECT_EQ(service.poll(*late.id), SessionState::Completed);
  const SessionResult result = service.wait(*late.id);
  EXPECT_TRUE(result.coalesced);
  EXPECT_EQ(result.cellDoc.dump(), early.cellDoc.dump());
  EXPECT_EQ(service.stats().freshRuns, 1U);
}

TEST(Coalescing, ResultsAreByteIdenticalAcrossWorkerCounts) {
  // The service determinism law at test scale: the same submission
  // schedule yields the same per-session documents at 1 and 4 workers.
  const auto runSchedule = [](std::size_t workers) {
    ServiceOptions options;
    options.workers = workers;
    TuningService service{options};
    for (const auto& [tenant, seed] :
         std::vector<std::pair<std::string, std::uint64_t>>{
             {"alice", 7}, {"bob", 7}, {"alice", 8}, {"carol", 9}}) {
      const SubmitResult submitted = service.submit(request(tenant, seed));
      EXPECT_TRUE(submitted.accepted());
    }
    std::string all;
    for (const SessionResult& result : service.drainAll()) {
      all += result.toJson().dump() + "\n";
    }
    return all;
  };
  EXPECT_EQ(runSchedule(1), runSchedule(4));
}

}  // namespace
}  // namespace stellar::service

// Admission control: typed rejections for malformed requests, global
// overload, per-tenant quotas, and a stopped service — and slot recycling
// once sessions are retired via wait().
#include <gtest/gtest.h>

#include <string>

#include "service/service.hpp"

namespace stellar::service {
namespace {

// Unknown workloads fail fast inside the worker (no engine run), which
// keeps admission tests quick while still exercising the full queue path.
SubmitOptions fastRequest(const std::string& tenant, std::uint64_t seed = 1) {
  SubmitOptions request;
  request.tenant = tenant;
  request.workload = "no-such-workload";
  request.seed = seed;
  request.warmStart = false;
  return request;
}

TEST(Admission, BadRequestsAreTypedNotThrown) {
  TuningService service{ServiceOptions{}};
  SubmitOptions empty;
  empty.workload = "";
  const SubmitResult noWorkload = service.submit(empty);
  ASSERT_FALSE(noWorkload.accepted());
  EXPECT_EQ(noWorkload.rejection->reason, RejectReason::BadRequest);

  const SubmitResult badTenant = service.submit(fastRequest("Not/A/Tenant"));
  ASSERT_FALSE(badTenant.accepted());
  EXPECT_EQ(badTenant.rejection->reason, RejectReason::BadRequest);
  EXPECT_NE(badTenant.rejection->detail.find("tenant"), std::string::npos);
  EXPECT_EQ(service.stats().rejected, 2U);
  EXPECT_EQ(service.stats().submitted, 0U);
}

TEST(Admission, GlobalBoundRejectsAndWaitRecyclesTheSlot) {
  ServiceOptions options;
  options.maxOutstanding = 2;
  TuningService service{options};

  const SubmitResult a = service.submit(fastRequest("t", 1));
  const SubmitResult b = service.submit(fastRequest("t", 2));
  ASSERT_TRUE(a.accepted() && b.accepted());
  const SubmitResult c = service.submit(fastRequest("t", 3));
  ASSERT_FALSE(c.accepted());
  EXPECT_EQ(c.rejection->reason, RejectReason::QueueFull);

  // Retiring a session frees its admission slot deterministically.
  (void)service.wait(*a.id);
  const SubmitResult d = service.submit(fastRequest("t", 4));
  EXPECT_TRUE(d.accepted());
  EXPECT_EQ(service.stats().rejected, 1U);
}

TEST(Admission, PerTenantQuotaIsIndependentOfOtherTenants) {
  ServiceOptions options;
  options.defaultPolicy.maxOutstanding = 1;
  TuningService service{options};

  const SubmitResult a1 = service.submit(fastRequest("alice", 1));
  ASSERT_TRUE(a1.accepted());
  const SubmitResult a2 = service.submit(fastRequest("alice", 2));
  ASSERT_FALSE(a2.accepted());
  EXPECT_EQ(a2.rejection->reason, RejectReason::TenantQuota);
  EXPECT_NE(a2.rejection->detail.find("alice"), std::string::npos);

  // Another tenant is not affected by alice's quota.
  const SubmitResult b1 = service.submit(fastRequest("bob", 1));
  EXPECT_TRUE(b1.accepted());
}

TEST(Admission, ExplicitTenantPolicyOverridesTheDefault) {
  ServiceOptions options;
  options.defaultPolicy.maxOutstanding = 1;
  TenantPolicy vip;
  vip.maxOutstanding = 3;
  options.tenants["vip"] = vip;
  TuningService service{options};

  ASSERT_TRUE(service.submit(fastRequest("vip", 1)).accepted());
  ASSERT_TRUE(service.submit(fastRequest("vip", 2)).accepted());
  ASSERT_TRUE(service.submit(fastRequest("vip", 3)).accepted());
  const SubmitResult fourth = service.submit(fastRequest("vip", 4));
  ASSERT_FALSE(fourth.accepted());
  EXPECT_EQ(fourth.rejection->reason, RejectReason::TenantQuota);
}

TEST(Admission, StoppedServiceRejectsAndInterruptsQueued) {
  ServiceOptions options;
  options.workers = 1;
  TuningService service{options};
  // Queue more fast-failing cells than one worker can have started.
  std::vector<SessionId> ids;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const SubmitResult submitted = service.submit(fastRequest("t", seed));
    ASSERT_TRUE(submitted.accepted());
    ids.push_back(*submitted.id);
  }
  service.stop();
  const SubmitResult late = service.submit(fastRequest("t", 99));
  ASSERT_FALSE(late.accepted());
  EXPECT_EQ(late.rejection->reason, RejectReason::Stopped);

  // Every accepted session still reaches a terminal state: dispatched
  // cells finish (here: fail fast), undispatched ones are interrupted.
  std::size_t terminal = 0;
  for (const SessionId id : ids) {
    const SessionResult result = service.wait(id);
    EXPECT_TRUE(result.state == SessionState::Failed ||
                result.state == SessionState::Interrupted);
    ++terminal;
  }
  EXPECT_EQ(terminal, ids.size());
  EXPECT_GT(service.stats().interrupted, 0U);
}

TEST(Admission, CoalescedDuplicatesStillCountAgainstQuotas) {
  ServiceOptions options;
  options.maxOutstanding = 2;
  TuningService service{options};
  // Two submissions of the SAME cell occupy two outstanding slots: the
  // bound is on sessions (client-visible work), not on engine runs.
  ASSERT_TRUE(service.submit(fastRequest("t", 1)).accepted());
  ASSERT_TRUE(service.submit(fastRequest("t", 1)).accepted());
  const SubmitResult third = service.submit(fastRequest("t", 1));
  ASSERT_FALSE(third.accepted());
  EXPECT_EQ(third.rejection->reason, RejectReason::QueueFull);
}

}  // namespace
}  // namespace stellar::service

// FleetStore: concurrent-writer shard appends, the immutable recall
// snapshot, commit-time absorption (including shards that appear behind the
// service's back), and memory-only mode.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "exp/experience_store.hpp"
#include "service/fleet_store.hpp"
#include "util/file.hpp"

namespace stellar::service {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / ("fleet_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

exp::ExperienceRecord makeRecord(const std::string& id,
                                 const std::string& workload,
                                 double readShare) {
  rules::WorkloadContext ctx;
  ctx.metaOpShare = 0.1;
  ctx.readShare = readShare;
  ctx.sequentialShare = 0.8;
  ctx.sharedFileShare = 0.5;
  ctx.smallFileShare = 0.2;
  ctx.dominantAccessSize = 1 << 16;
  ctx.fileCount = 100;
  ctx.totalBytes = 1 << 30;

  exp::ExperienceRecord rec;
  rec.id = id;
  rec.workload = workload;
  rec.fingerprint = exp::fingerprintOf(ctx);
  EXPECT_TRUE(rec.bestConfig.set("lov.stripe_count", 4));
  rec.defaultSeconds = 2.0;
  rec.bestSeconds = 1.0;
  rec.attempts = 3;
  rec.endReason = "low expected gain";
  rec.model = "claude-3.7-sonnet";
  rec.seed = 7;
  return rec;
}

TEST(FleetStore, ShardAppendsAreInvisibleUntilCommit) {
  const fs::path dir = freshDir("shards");
  FleetStore fleet{(dir / "store.jsonl").string()};

  fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));
  fleet.appendRecord("bob", makeRecord("cell-b", "IOR_16M", 0.6));

  // Durable immediately in the per-tenant shard journals...
  EXPECT_TRUE(util::fileExists(fleet.tenantShardPath("alice")));
  EXPECT_TRUE(util::fileExists(fleet.tenantShardPath("bob")));
  // ...but not yet visible to the base generation or the recall snapshot.
  EXPECT_EQ(fleet.baseSize(), 0U);
  EXPECT_EQ(fleet.snapshot()->size(), 0U);

  EXPECT_EQ(fleet.commit(), 2U);
  EXPECT_EQ(fleet.baseSize(), 2U);
  EXPECT_EQ(fleet.snapshot()->size(), 2U);
  // Absorbed shards are consumed, not re-absorbed on the next commit.
  EXPECT_FALSE(util::fileExists(fleet.tenantShardPath("alice")));
  EXPECT_EQ(fleet.commit(), 0U);
}

TEST(FleetStore, OldSnapshotsStayImmutableAcrossCommits) {
  const fs::path dir = freshDir("immutable");
  FleetStore fleet{(dir / "store.jsonl").string()};
  const std::shared_ptr<const exp::ExperienceStore> pinned = fleet.snapshot();
  ASSERT_EQ(pinned->size(), 0U);

  fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));
  (void)fleet.commit();

  // A run that pinned the old generation keeps reading it unchanged while
  // new runs see the new one — the lock-free swap never mutates in place.
  EXPECT_EQ(pinned->size(), 0U);
  EXPECT_EQ(fleet.snapshot()->size(), 1U);
  EXPECT_NE(pinned.get(), fleet.snapshot().get());
}

TEST(FleetStore, CommitAbsorbsShardsThatAppearedMidScan) {
  const fs::path dir = freshDir("midscan");
  const std::string base = (dir / "store.jsonl").string();
  FleetStore fleet{base};
  fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));

  // A shard journal the FleetStore never heard of (e.g. written by a
  // stellar_cli --tenant run sharing the layout, finishing between "decide
  // to commit" and "scan the directory"): the commit re-lists the directory
  // under the base-store lock, so the shard is absorbed, not skipped.
  exp::ExperienceStore foreign{base + ".tenant-ghost", {}};
  exp::ExperienceRecord rec = makeRecord("cell-g", "IO500", 0.4);
  rec.tenant = "ghost";
  (void)foreign.append(rec);

  EXPECT_EQ(fleet.commit(), 2U);
  EXPECT_EQ(fleet.baseSize(), 2U);

  bool sawGhost = false;
  for (const exp::ExperienceRecord& record : fleet.snapshot()->records()) {
    sawGhost = sawGhost || record.tenant == "ghost";
  }
  EXPECT_TRUE(sawGhost);
}

TEST(FleetStore, MemoryOnlyModeCommitsTenantSortedThenIdSorted) {
  FleetStore fleet{""};
  fleet.appendRecord("zed", makeRecord("cell-z2", "IOR_64K", 0.5));
  fleet.appendRecord("ann", makeRecord("cell-a", "IOR_16M", 0.6));
  fleet.appendRecord("zed", makeRecord("cell-z1", "IO500", 0.4));
  EXPECT_EQ(fleet.snapshot()->size(), 0U);

  EXPECT_EQ(fleet.commit(), 3U);
  const std::vector<exp::ExperienceRecord> records =
      fleet.snapshot()->records();
  ASSERT_EQ(records.size(), 3U);
  EXPECT_EQ(records[0].id, "cell-a");   // ann first (tenant-sorted)
  EXPECT_EQ(records[1].id, "cell-z1");  // then zed's, id-sorted
  EXPECT_EQ(records[2].id, "cell-z2");
}

TEST(FleetStore, TenantProvenanceSurvivesTheJournalRoundTrip) {
  const fs::path dir = freshDir("roundtrip");
  const std::string base = (dir / "store.jsonl").string();
  {
    FleetStore fleet{base};
    fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));
    (void)fleet.commit();
  }
  // Reopen from disk: the tenant field persisted through shard journal,
  // absorption, and compaction.
  FleetStore reopened{base};
  const std::vector<exp::ExperienceRecord> records =
      reopened.snapshot()->records();
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].tenant, "alice");
  EXPECT_EQ(records[0].id, "cell-a");
}

TEST(FleetStore, RepeatedCellCommitsDedupLastWins) {
  FleetStore fleet{""};
  exp::ExperienceRecord first = makeRecord("cell-a", "IOR_64K", 0.5);
  first.bestSeconds = 1.5;
  fleet.appendRecord("alice", first);
  (void)fleet.commit();

  // A re-run of the same cell (same id = cell key) replaces the old record
  // instead of growing the store without bound.
  exp::ExperienceRecord rerun = makeRecord("cell-a", "IOR_64K", 0.5);
  rerun.bestSeconds = 0.9;
  fleet.appendRecord("bob", rerun);
  (void)fleet.commit();

  const std::vector<exp::ExperienceRecord> records =
      fleet.snapshot()->records();
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].bestSeconds, 0.9);
  EXPECT_EQ(records[0].tenant, "bob");
}

TEST(FleetStore, ConcurrentWritersLoseNoRecordsUnderIdleCommits) {
  // Property test for the journaling path (ISSUE 10, satellite 2): N writer
  // threads append disjoint record ids for their own tenants while another
  // thread runs idle-cycle commits the whole time. Afterwards one final
  // commit must make every record visible exactly once, in the canonical
  // tenant-sorted-then-id-sorted order. Runs under the targeted TSan job,
  // which would flag any unsynchronized access even if the counts match.
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 32;

  FleetStore fleet{""};  // memory mode: pending map + snapshot swap only
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> committed{0};

  std::thread committer{[&fleet, &stop, &committed] {
    while (!stop.load(std::memory_order_acquire)) {
      committed.fetch_add(fleet.commit(), std::memory_order_relaxed);
      std::this_thread::yield();
    }
  }};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&fleet, w] {
      const std::string tenant = "tenant-" + std::to_string(w);
      for (int i = 0; i < kRecordsPerWriter; ++i) {
        // Two-digit suffix keeps lexicographic id order == insertion order.
        const std::string id = "cell-" + std::to_string(w) +
                               (i < 10 ? "-0" : "-") + std::to_string(i);
        fleet.appendRecord(tenant, makeRecord(id, "IOR_64K", 0.5));
      }
    });
  }
  for (std::thread& t : writers) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  committer.join();
  committed.fetch_add(fleet.commit(), std::memory_order_relaxed);

  // No record lost by a racing idle commit, none absorbed twice.
  EXPECT_EQ(committed.load(), kWriters * kRecordsPerWriter);
  const std::vector<exp::ExperienceRecord> records =
      fleet.snapshot()->records();
  ASSERT_EQ(records.size(),
            static_cast<std::size_t>(kWriters) * kRecordsPerWriter);

  std::set<std::string> ids;
  for (const exp::ExperienceRecord& rec : records) {
    EXPECT_TRUE(ids.insert(rec.id).second) << "duplicate id " << rec.id;
  }
  // Canonical order regardless of commit interleaving: tenants ascending,
  // ids ascending within each tenant.
  for (std::size_t i = 1; i < records.size(); ++i) {
    const bool ordered =
        records[i - 1].tenant < records[i].tenant ||
        (records[i - 1].tenant == records[i].tenant &&
         records[i - 1].id < records[i].id);
    EXPECT_TRUE(ordered) << "records " << i - 1 << "/" << i << " out of order: ("
                         << records[i - 1].tenant << ", " << records[i - 1].id
                         << ") then (" << records[i].tenant << ", "
                         << records[i].id << ")";
  }
}

TEST(FleetStore, ConcurrentJournalWritersSurviveTheDiskPath) {
  // Same race, disk mode: shard journal appends go through the filesystem
  // under the store mutex. The reopened store must see every record.
  const fs::path dir = freshDir("concurrent");
  const std::string base = (dir / "store.jsonl").string();
  constexpr int kWriters = 4;
  constexpr int kRecordsPerWriter = 16;
  {
    FleetStore fleet{base};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
      writers.emplace_back([&fleet, w] {
        const std::string tenant = "tenant-" + std::to_string(w);
        for (int i = 0; i < kRecordsPerWriter; ++i) {
          const std::string id = "cell-" + std::to_string(w) +
                                 (i < 10 ? "-0" : "-") + std::to_string(i);
          fleet.appendRecord(tenant, makeRecord(id, "IOR_16M", 0.6));
        }
      });
    }
    for (std::thread& t : writers) {
      t.join();
    }
    EXPECT_EQ(fleet.commit(), kWriters * kRecordsPerWriter);
  }
  FleetStore reopened{base};
  EXPECT_EQ(reopened.snapshot()->size(),
            static_cast<std::size_t>(kWriters) * kRecordsPerWriter);
}

}  // namespace
}  // namespace stellar::service

// FleetStore: concurrent-writer shard appends, the immutable recall
// snapshot, commit-time absorption (including shards that appear behind the
// service's back), and memory-only mode.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "exp/experience_store.hpp"
#include "service/fleet_store.hpp"
#include "util/file.hpp"

namespace stellar::service {
namespace {

namespace fs = std::filesystem;

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / ("fleet_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

exp::ExperienceRecord makeRecord(const std::string& id,
                                 const std::string& workload,
                                 double readShare) {
  rules::WorkloadContext ctx;
  ctx.metaOpShare = 0.1;
  ctx.readShare = readShare;
  ctx.sequentialShare = 0.8;
  ctx.sharedFileShare = 0.5;
  ctx.smallFileShare = 0.2;
  ctx.dominantAccessSize = 1 << 16;
  ctx.fileCount = 100;
  ctx.totalBytes = 1 << 30;

  exp::ExperienceRecord rec;
  rec.id = id;
  rec.workload = workload;
  rec.fingerprint = exp::fingerprintOf(ctx);
  EXPECT_TRUE(rec.bestConfig.set("lov.stripe_count", 4));
  rec.defaultSeconds = 2.0;
  rec.bestSeconds = 1.0;
  rec.attempts = 3;
  rec.endReason = "low expected gain";
  rec.model = "claude-3.7-sonnet";
  rec.seed = 7;
  return rec;
}

TEST(FleetStore, ShardAppendsAreInvisibleUntilCommit) {
  const fs::path dir = freshDir("shards");
  FleetStore fleet{(dir / "store.jsonl").string()};

  fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));
  fleet.appendRecord("bob", makeRecord("cell-b", "IOR_16M", 0.6));

  // Durable immediately in the per-tenant shard journals...
  EXPECT_TRUE(util::fileExists(fleet.tenantShardPath("alice")));
  EXPECT_TRUE(util::fileExists(fleet.tenantShardPath("bob")));
  // ...but not yet visible to the base generation or the recall snapshot.
  EXPECT_EQ(fleet.baseSize(), 0U);
  EXPECT_EQ(fleet.snapshot()->size(), 0U);

  EXPECT_EQ(fleet.commit(), 2U);
  EXPECT_EQ(fleet.baseSize(), 2U);
  EXPECT_EQ(fleet.snapshot()->size(), 2U);
  // Absorbed shards are consumed, not re-absorbed on the next commit.
  EXPECT_FALSE(util::fileExists(fleet.tenantShardPath("alice")));
  EXPECT_EQ(fleet.commit(), 0U);
}

TEST(FleetStore, OldSnapshotsStayImmutableAcrossCommits) {
  const fs::path dir = freshDir("immutable");
  FleetStore fleet{(dir / "store.jsonl").string()};
  const std::shared_ptr<const exp::ExperienceStore> pinned = fleet.snapshot();
  ASSERT_EQ(pinned->size(), 0U);

  fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));
  (void)fleet.commit();

  // A run that pinned the old generation keeps reading it unchanged while
  // new runs see the new one — the lock-free swap never mutates in place.
  EXPECT_EQ(pinned->size(), 0U);
  EXPECT_EQ(fleet.snapshot()->size(), 1U);
  EXPECT_NE(pinned.get(), fleet.snapshot().get());
}

TEST(FleetStore, CommitAbsorbsShardsThatAppearedMidScan) {
  const fs::path dir = freshDir("midscan");
  const std::string base = (dir / "store.jsonl").string();
  FleetStore fleet{base};
  fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));

  // A shard journal the FleetStore never heard of (e.g. written by a
  // stellar_cli --tenant run sharing the layout, finishing between "decide
  // to commit" and "scan the directory"): the commit re-lists the directory
  // under the base-store lock, so the shard is absorbed, not skipped.
  exp::ExperienceStore foreign{base + ".tenant-ghost", {}};
  exp::ExperienceRecord rec = makeRecord("cell-g", "IO500", 0.4);
  rec.tenant = "ghost";
  (void)foreign.append(rec);

  EXPECT_EQ(fleet.commit(), 2U);
  EXPECT_EQ(fleet.baseSize(), 2U);

  bool sawGhost = false;
  for (const exp::ExperienceRecord& record : fleet.snapshot()->records()) {
    sawGhost = sawGhost || record.tenant == "ghost";
  }
  EXPECT_TRUE(sawGhost);
}

TEST(FleetStore, MemoryOnlyModeCommitsTenantSortedThenIdSorted) {
  FleetStore fleet{""};
  fleet.appendRecord("zed", makeRecord("cell-z2", "IOR_64K", 0.5));
  fleet.appendRecord("ann", makeRecord("cell-a", "IOR_16M", 0.6));
  fleet.appendRecord("zed", makeRecord("cell-z1", "IO500", 0.4));
  EXPECT_EQ(fleet.snapshot()->size(), 0U);

  EXPECT_EQ(fleet.commit(), 3U);
  const std::vector<exp::ExperienceRecord> records =
      fleet.snapshot()->records();
  ASSERT_EQ(records.size(), 3U);
  EXPECT_EQ(records[0].id, "cell-a");   // ann first (tenant-sorted)
  EXPECT_EQ(records[1].id, "cell-z1");  // then zed's, id-sorted
  EXPECT_EQ(records[2].id, "cell-z2");
}

TEST(FleetStore, TenantProvenanceSurvivesTheJournalRoundTrip) {
  const fs::path dir = freshDir("roundtrip");
  const std::string base = (dir / "store.jsonl").string();
  {
    FleetStore fleet{base};
    fleet.appendRecord("alice", makeRecord("cell-a", "IOR_64K", 0.5));
    (void)fleet.commit();
  }
  // Reopen from disk: the tenant field persisted through shard journal,
  // absorption, and compaction.
  FleetStore reopened{base};
  const std::vector<exp::ExperienceRecord> records =
      reopened.snapshot()->records();
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].tenant, "alice");
  EXPECT_EQ(records[0].id, "cell-a");
}

TEST(FleetStore, RepeatedCellCommitsDedupLastWins) {
  FleetStore fleet{""};
  exp::ExperienceRecord first = makeRecord("cell-a", "IOR_64K", 0.5);
  first.bestSeconds = 1.5;
  fleet.appendRecord("alice", first);
  (void)fleet.commit();

  // A re-run of the same cell (same id = cell key) replaces the old record
  // instead of growing the store without bound.
  exp::ExperienceRecord rerun = makeRecord("cell-a", "IOR_64K", 0.5);
  rerun.bestSeconds = 0.9;
  fleet.appendRecord("bob", rerun);
  (void)fleet.commit();

  const std::vector<exp::ExperienceRecord> records =
      fleet.snapshot()->records();
  ASSERT_EQ(records.size(), 1U);
  EXPECT_EQ(records[0].bestSeconds, 0.9);
  EXPECT_EQ(records[0].tenant, "bob");
}

}  // namespace
}  // namespace stellar::service

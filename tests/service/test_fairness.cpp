// Deficit-round-robin scheduler: weighted drain rates, the starved-tenant
// bound under a greedy tenant, and per-tenant running caps.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "service/fairness.hpp"

namespace stellar::service {
namespace {

TenantPolicy policy(double weight, std::size_t maxRunning = 1000) {
  TenantPolicy p;
  p.weight = weight;
  p.maxRunning = maxRunning;
  return p;
}

TEST(DrrScheduler, WeightsSetTheDrainRatio) {
  DrrScheduler drr;
  drr.setPolicy("heavy", policy(2.0));
  drr.setPolicy("light", policy(1.0));
  SessionId id = 1;
  std::map<SessionId, std::string> owner;
  for (int i = 0; i < 30; ++i) {
    owner[id] = "heavy";
    drr.push("heavy", id++);
    owner[id] = "light";
    drr.push("light", id++);
  }
  std::map<std::string, int> served;
  for (int i = 0; i < 30; ++i) {
    const auto primary = drr.next();
    ASSERT_TRUE(primary.has_value());
    const std::string tenant = owner.at(*primary);
    ++served[tenant];
    drr.release(tenant);  // completion frees the slot immediately
  }
  // Weight 2 drains twice as fast as weight 1 (±1 for round boundaries).
  EXPECT_NEAR(served["heavy"], 20, 1);
  EXPECT_NEAR(served["light"], 10, 1);
}

TEST(DrrScheduler, GreedyTenantCannotStarveALateArrival) {
  DrrScheduler drr;
  drr.setPolicy("greedy", policy(1.0));
  drr.setPolicy("meek", policy(1.0));
  for (SessionId id = 1; id <= 100; ++id) {
    drr.push("greedy", id);
  }
  // Serve a few greedy cells, then the meek tenant shows up with one.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(drr.next().has_value());
    drr.release("greedy");
  }
  drr.push("meek", 999);
  // Starvation bound: the meek session is served within one full round —
  // at most one pick per other tenant — not after the greedy backlog.
  std::vector<SessionId> nextTwo;
  for (int i = 0; i < 2; ++i) {
    const auto primary = drr.next();
    ASSERT_TRUE(primary.has_value());
    nextTwo.push_back(*primary);
    drr.release(*primary == 999 ? "meek" : "greedy");
  }
  EXPECT_TRUE(nextTwo[0] == 999 || nextTwo[1] == 999)
      << "meek session waited longer than one round";
}

TEST(DrrScheduler, PerTenantRunningCapHoldsSlots) {
  DrrScheduler drr;
  drr.setPolicy("a", policy(1.0, /*maxRunning=*/1));
  drr.push("a", 1);
  drr.push("a", 2);
  ASSERT_TRUE(drr.next().has_value());
  EXPECT_EQ(drr.runningFor("a"), 1U);
  // Second cell must wait for the running slot, not for deficit.
  EXPECT_FALSE(drr.next().has_value());
  drr.release("a");
  const auto second = drr.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2U);
}

TEST(DrrScheduler, LowWeightTenantStillProgressesWhenAlone) {
  DrrScheduler drr;
  drr.setPolicy("slow", policy(0.05));
  drr.push("slow", 1);
  // next() must accumulate deficit across rounds instead of giving up.
  const auto primary = drr.next();
  ASSERT_TRUE(primary.has_value());
  EXPECT_EQ(*primary, 1U);
}

TEST(DrrScheduler, ServesFifoWithinATenantAndCountsQueues) {
  DrrScheduler drr;
  for (SessionId id = 1; id <= 3; ++id) {
    drr.push("t", id);
  }
  EXPECT_EQ(drr.queued(), 3U);
  EXPECT_EQ(drr.queuedFor("t"), 3U);
  for (SessionId expect = 1; expect <= 3; ++expect) {
    const auto primary = drr.next();
    ASSERT_TRUE(primary.has_value());
    EXPECT_EQ(*primary, expect);
    drr.release("t");
  }
  EXPECT_EQ(drr.queued(), 0U);
}

TEST(DrrScheduler, DrainEmptiesEveryLaneTenantSorted) {
  DrrScheduler drr;
  drr.push("b", 10);
  drr.push("a", 20);
  drr.push("b", 11);
  const std::vector<SessionId> drained = drr.drain();
  EXPECT_EQ(drained, (std::vector<SessionId>{20, 10, 11}));
  EXPECT_EQ(drr.queued(), 0U);
  EXPECT_FALSE(drr.next().has_value());
}

TEST(DrrScheduler, IdleTenantsDoNotBankDeficit) {
  DrrScheduler drr;
  drr.setPolicy("idle", policy(5.0));
  drr.setPolicy("busy", policy(1.0));
  // idle has no work for many rounds while busy drains.
  for (SessionId id = 1; id <= 10; ++id) {
    drr.push("busy", id);
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(drr.next().has_value());
    drr.release("busy");
  }
  // When idle finally queues, it gets its weight share, not a burst of
  // banked credit — one serve per visit is indistinguishable here, but the
  // deficit must start from zero (<= one quantum * weight).
  drr.push("idle", 100);
  drr.push("busy", 101);
  const auto first = drr.next();
  ASSERT_TRUE(first.has_value());
  // Both orders are fair; the point is no crash and both eventually serve.
  const auto second = drr.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*first, *second);
}

}  // namespace
}  // namespace stellar::service

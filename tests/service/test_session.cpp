// Session surface: request JSON, cell identity, and the basic async
// submit -> poll -> wait lifecycle of the in-process service.
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "service/service.hpp"
#include "util/json.hpp"

namespace stellar::service {
namespace {

SubmitOptions quickRequest(const std::string& tenant = "default",
                           std::uint64_t seed = 7) {
  SubmitOptions request;
  request.tenant = tenant;
  request.workload = "IOR_64K";
  request.seed = seed;
  request.scale = 0.05;
  request.warmStart = false;
  return request;
}

TEST(SubmitOptions, JsonRoundTripAndDefaults) {
  SubmitOptions opts = quickRequest("alice", 11);
  opts.faults = "degraded-ost";
  opts.ranks = 32;
  const SubmitOptions back =
      SubmitOptions::fromJson(util::Json::parse(opts.toJson().dump()));
  EXPECT_EQ(back.tenant, "alice");
  EXPECT_EQ(back.workload, "IOR_64K");
  EXPECT_EQ(back.seed, 11U);
  EXPECT_EQ(back.faults, "degraded-ost");
  EXPECT_EQ(back.ranks, 32U);
  EXPECT_FALSE(back.warmStart);

  // Absent fields keep the struct defaults instead of throwing.
  const SubmitOptions sparse =
      SubmitOptions::fromJson(util::Json::parse(R"({"workload":"x"})"));
  EXPECT_EQ(sparse.tenant, "default");
  EXPECT_EQ(sparse.seed, 1U);
  EXPECT_TRUE(sparse.warmStart);
}

TEST(CellKey, CoversTheCellAndExcludesTenancy) {
  const SubmitOptions a = quickRequest("alice");
  SubmitOptions b = quickRequest("bob");
  EXPECT_EQ(cellKey(a), cellKey(b));  // tenant is not part of the cell

  b.warmStart = true;  // warm start changes how a run starts, not the cell
  EXPECT_EQ(cellKey(a), cellKey(b));

  for (const auto& mutate : {
           +[](SubmitOptions& r) { r.workload = "MDWorkbench_8K"; },
           +[](SubmitOptions& r) { r.seed = 8; },
           +[](SubmitOptions& r) { r.model = "gpt-4o"; },
           +[](SubmitOptions& r) { r.faults = "degraded-ost"; },
           +[](SubmitOptions& r) { r.scale = 0.1; },
           +[](SubmitOptions& r) { r.ranks = 16; },
       }) {
    SubmitOptions changed = quickRequest();
    mutate(changed);
    EXPECT_NE(cellKey(quickRequest()), cellKey(changed));
  }
}

TEST(CellKey, FileStemIsFilesystemSafeAndInjective) {
  const std::string stem = cellFileStem("IOR_64K|7|claude-3.7-sonnet|none|x");
  for (const char c : stem) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                c == '-')
        << "unsafe char in stem: " << stem;
  }
  EXPECT_NE(cellFileStem("a|b"), cellFileStem("a_b"));  // hash disambiguates
}

TEST(TenantId, Validation) {
  EXPECT_TRUE(validTenantId("alice"));
  EXPECT_TRUE(validTenantId("team-a_42"));
  EXPECT_FALSE(validTenantId(""));
  EXPECT_FALSE(validTenantId("Alice"));
  EXPECT_FALSE(validTenantId("a/b"));
  EXPECT_FALSE(validTenantId("a b"));
}

TEST(Names, StateAndRejectionNames) {
  EXPECT_STREQ(sessionStateName(SessionState::Queued), "queued");
  EXPECT_STREQ(sessionStateName(SessionState::Completed), "completed");
  EXPECT_STREQ(sessionStateName(SessionState::Interrupted), "interrupted");
  EXPECT_STREQ(rejectReasonName(RejectReason::QueueFull), "queue_full");
  EXPECT_STREQ(rejectReasonName(RejectReason::TenantQuota), "tenant_quota");
}

TEST(TuningServiceSession, SubmitWaitLifecycle) {
  ServiceOptions options;  // memory-only
  options.workers = 2;
  TuningService service{options};

  const SubmitResult submitted = service.submit(quickRequest());
  ASSERT_TRUE(submitted.accepted());
  const SessionId id = *submitted.id;
  EXPECT_GE(id, 1U);

  const SessionResult result = service.wait(id);
  EXPECT_EQ(result.state, SessionState::Completed);
  EXPECT_EQ(result.id, id);
  EXPECT_EQ(result.tenant, "default");
  EXPECT_FALSE(result.coalesced);
  EXPECT_FALSE(result.replayedFromManifest);
  ASSERT_FALSE(result.cellDoc.isNull());
  EXPECT_EQ(result.cellDoc.getString("workload"), "IOR_64K");
  EXPECT_EQ(service.poll(id), SessionState::Completed);

  // wait() is idempotent: same document, no double-retire underflow.
  const SessionResult again = service.wait(id);
  EXPECT_EQ(again.toJson().dump(), result.toJson().dump());

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1U);
  EXPECT_EQ(stats.completed, 1U);
  EXPECT_EQ(stats.freshRuns, 1U);
  EXPECT_EQ(stats.failed, 0U);
  EXPECT_EQ(stats.peakOutstanding, 1U);
}

TEST(TuningServiceSession, ResultDocExcludesTimingAndReplayProvenance) {
  SessionResult result;
  result.id = 3;
  result.tenant = "alice";
  result.key = "k";
  result.state = SessionState::Completed;
  result.submitNanos = 123;
  result.completeNanos = 456;
  result.replayedFromManifest = true;
  const std::string doc = result.toJson().dump();
  EXPECT_EQ(doc.find("nanos"), std::string::npos);
  EXPECT_EQ(doc.find("replay"), std::string::npos);
  EXPECT_EQ(doc.find("123"), std::string::npos);
}

TEST(TuningServiceSession, PollAndWaitRejectUnknownIds) {
  TuningService service{ServiceOptions{}};
  EXPECT_THROW((void)service.poll(99), std::invalid_argument);
  EXPECT_THROW((void)service.wait(99), std::invalid_argument);
}

TEST(TuningServiceSession, UnknownWorkloadFailsTheSessionNotTheService) {
  TuningService service{ServiceOptions{}};
  SubmitOptions request = quickRequest();
  request.workload = "no-such-workload";
  const SubmitResult submitted = service.submit(request);
  ASSERT_TRUE(submitted.accepted());
  const SessionResult result = service.wait(*submitted.id);
  EXPECT_EQ(result.state, SessionState::Failed);
  EXPECT_FALSE(result.error.empty());
  EXPECT_TRUE(result.cellDoc.isNull());
  EXPECT_EQ(service.stats().failed, 1U);

  // The service is still healthy for the next session.
  const SubmitResult ok = service.submit(quickRequest());
  ASSERT_TRUE(ok.accepted());
  EXPECT_EQ(service.wait(*ok.id).state, SessionState::Completed);
}

TEST(TuningServiceSession, InjectedClockStampsLatency) {
  static std::uint64_t tick;
  tick = 0;
  ServiceOptions options;
  options.clock = +[] { return tick += 1000; };
  TuningService service{options};
  const SubmitResult submitted = service.submit(quickRequest());
  ASSERT_TRUE(submitted.accepted());
  const SessionResult result = service.wait(*submitted.id);
  EXPECT_GT(result.submitNanos, 0U);
  EXPECT_GT(result.completeNanos, result.submitNanos);
}

}  // namespace
}  // namespace stellar::service

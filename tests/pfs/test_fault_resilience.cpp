// End-to-end fault resilience at the simulator surface: deterministic
// replay (with and without faults, across fresh simulator instances),
// the RPC timeout/retry/backoff path, retry-budget exhaustion, and the
// measurement watchdog.
#include <gtest/gtest.h>

#include "faults/fault_plan.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar {
namespace {

using pfs::JobSpec;
using pfs::PfsConfig;
using pfs::PfsSimulator;
using pfs::RunOutcome;
using pfs::RunResult;

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

void expectIdenticalRuns(const RunResult& a, const RunResult& b,
                         bool includeEventCount = true) {
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.failureReason, b.failureReason);
  // Bit-identical, not approximately equal: the determinism contract.
  EXPECT_EQ(a.wallSeconds, b.wallSeconds);
  EXPECT_EQ(a.rawWallSeconds, b.rawWallSeconds);
  EXPECT_EQ(a.counters.dataRpcs, b.counters.dataRpcs);
  EXPECT_EQ(a.counters.metaRpcs, b.counters.metaRpcs);
  if (includeEventCount) {
    EXPECT_EQ(a.counters.events, b.counters.events);
  }
  EXPECT_EQ(a.counters.rpcTimeouts, b.counters.rpcTimeouts);
  EXPECT_EQ(a.counters.rpcRetries, b.counters.rpcRetries);
  EXPECT_EQ(a.counters.rpcGaveUp, b.counters.rpcGaveUp);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    EXPECT_EQ(a.ranks[i].finishTime, b.ranks[i].finishTime);
    EXPECT_EQ(a.ranks[i].bytesWritten, b.ranks[i].bytesWritten);
    EXPECT_EQ(a.ranks[i].bytesRead, b.ranks[i].bytesRead);
  }
}

TEST(FaultResilience, DeterministicReplayAcrossFreshSimulators) {
  const JobSpec job = workloads::ior16m(tinyOpts());
  const faults::FaultPlan plan =
      faults::parseFaultSpec("ost:1:degrade:0.4@1-30,rpc:drop:0.15@0-20,seed:3");

  // Two fresh simulator instances, identical (job, config, seed, plan).
  const PfsSimulator simA{{.faults = &plan}};
  const PfsSimulator simB{{.faults = &plan}};
  const RunResult a = simA.run(job, PfsConfig{}, 17);
  const RunResult b = simB.run(job, PfsConfig{}, 17);
  expectIdenticalRuns(a, b);
  EXPECT_GT(a.counters.rpcTimeouts, 0u);  // the plan actually bit

  // And the fault-free contract: no plan vs empty plan, bit-identical.
  const faults::FaultPlan empty;
  const PfsSimulator bare;
  const PfsSimulator withEmpty{{.faults = &empty}};
  expectIdenticalRuns(bare.run(job, PfsConfig{}, 17), withEmpty.run(job, PfsConfig{}, 17));
}

TEST(FaultResilience, FaultFreeRunsMatchNoFaultLayer) {
  // A plan whose windows never overlap the run must not change behaviour:
  // queries stay at identity values and the RNG streams are untouched.
  // (The window edges themselves are two extra engine events, so only the
  // event count may differ.)
  const JobSpec job = workloads::ior64k(tinyOpts());
  const faults::FaultPlan farFuture = faults::parseFaultSpec("ost:0:outage@1e8-2e8");
  const PfsSimulator bare;
  const PfsSimulator planned{{.faults = &farFuture}};
  expectIdenticalRuns(bare.run(job, PfsConfig{}, 5), planned.run(job, PfsConfig{}, 5),
                      /*includeEventCount=*/false);
}

TEST(FaultResilience, TransientOutageRetriesThenSucceeds) {
  const JobSpec job = workloads::ior16m(tinyOpts());
  // A short outage at the start of the run: the first deliveries time out,
  // back off, and succeed once the window closes.
  const faults::FaultPlan plan = faults::parseFaultSpec("ost:*:outage@0-2");
  const PfsSimulator faulty{{.faults = &plan}};
  const RunResult run = faulty.run(job, PfsConfig{}, 9);

  EXPECT_EQ(run.outcome, RunOutcome::Ok);
  EXPECT_GT(run.counters.rpcTimeouts, 0u);
  EXPECT_GT(run.counters.rpcRetries, 0u);
  EXPECT_EQ(run.counters.rpcGaveUp, 0u);

  // Retries cost time: slower than the fault-free run of the same seed.
  const PfsSimulator bare;
  EXPECT_GT(run.rawWallSeconds, bare.run(job, PfsConfig{}, 9).rawWallSeconds);
}

TEST(FaultResilience, PermanentOutageExhaustsBudgetAndFails) {
  const JobSpec job = workloads::ior16m(tinyOpts());
  const faults::FaultPlan plan = faults::parseFaultSpec("ost:*:outage@0-1e7");
  const PfsSimulator faulty{{.faults = &plan}};
  const RunResult run = faulty.run(job, PfsConfig{}, 9);

  EXPECT_EQ(run.outcome, RunOutcome::Failed);
  EXPECT_FALSE(run.ok());
  EXPECT_GT(run.counters.rpcGaveUp, 0u);
  EXPECT_NE(run.failureReason.find("gave up"), std::string::npos);
}

TEST(FaultResilience, WatchdogCapsRunsThatCannotFinish) {
  const JobSpec job = workloads::ior16m(tinyOpts());
  // Massive stall: every delivery takes +1000 s, so no rank can finish
  // within the 5-simulated-second cap.
  const faults::FaultPlan plan = faults::parseFaultSpec("rpc:stall:1000@0-1e7");
  const PfsSimulator faulty{{.faults = &plan}};
  const RunResult run = faulty.run(job, PfsConfig{}, 9, pfs::RunLimits{5.0});

  EXPECT_EQ(run.outcome, RunOutcome::TimedOut);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.wallSeconds, 5.0);
  EXPECT_NE(run.failureReason.find("cap"), std::string::npos);
}

TEST(FaultResilience, WatchdogLeavesHealthyRunsAlone) {
  const JobSpec job = workloads::ior64k(tinyOpts());
  const PfsSimulator sim;
  const RunResult uncapped = sim.run(job, PfsConfig{}, 3);
  const RunResult capped =
      sim.run(job, PfsConfig{}, 3, pfs::RunLimits{uncapped.rawWallSeconds * 10.0});
  EXPECT_EQ(capped.outcome, RunOutcome::Ok);
  EXPECT_EQ(capped.wallSeconds, uncapped.wallSeconds);
  EXPECT_EQ(capped.counters.events, uncapped.counters.events);
}

TEST(FaultResilience, NoiseSpikeWidensOnlyTheNoise) {
  const JobSpec job = workloads::ior64k(tinyOpts());
  const faults::FaultPlan plan = faults::parseFaultSpec("noise:spike:5@0-1e7");
  const PfsSimulator bare;
  const PfsSimulator noisy{{.faults = &plan}};
  const RunResult a = bare.run(job, PfsConfig{}, 21);
  const RunResult b = noisy.run(job, PfsConfig{}, 21);
  // The simulated execution is untouched; only the measurement noise grows.
  EXPECT_EQ(a.rawWallSeconds, b.rawWallSeconds);
  EXPECT_EQ(a.counters.dataRpcs, b.counters.dataRpcs);
  EXPECT_NE(a.wallSeconds, b.wallSeconds);
}

}  // namespace
}  // namespace stellar

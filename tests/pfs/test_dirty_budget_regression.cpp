// Regression tests for a write-back deadlock found by the property-based
// validation kit (src/testkit): when osc_max_dirty_mb is smaller than the
// RPC coalescing size, a rank admitted from the dirty-budget wait queue
// parked its segment in the pending list below the flush threshold. Its
// program then ended (close never flushes), so the segment never went out
// and the remaining waiters starved — the event queue drained with ranks
// still blocked.
//
// Both cases below are shrunk counterexamples; re-derive them any time with
//   testkit_explore --case-seed=0x9f2423839c74e897   (ThreeRanks...)
//   testkit_explore --case-seed=0x55e3666f7f7caec    (TwoRanks...)
#include <gtest/gtest.h>

#include "pfs/simulator.hpp"

namespace stellar::pfs {
namespace {

RunResult runPrivateWriters(std::uint32_t ranks, std::uint32_t chunksPerRank,
                            std::int64_t maxPagesPerRpc) {
  ClusterSpec cluster = defaultCluster();
  cluster.clientNodes = 1;
  cluster.ranksPerNode = 4;
  cluster.ossNodes = 1;
  cluster.ostsPerOss = 1;

  PfsConfig config;
  EXPECT_TRUE(config.set("osc.max_pages_per_rpc", maxPagesPerRpc));
  EXPECT_TRUE(config.set("osc.max_dirty_mb", 1));  // budget (1 MiB) < RPC size

  constexpr std::uint64_t kChunk = 1024 * 1024;  // one chunk fills the budget
  JobSpec job;
  job.name = "dirty_budget_regression";
  job.ranks.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const FileId file = job.addFile("/regress/r" + std::to_string(r));
    job.ranks[r].push_back(IoOp::create(file));
    for (std::uint32_t c = 0; c < chunksPerRank; ++c) {
      job.ranks[r].push_back(IoOp::write(file, std::uint64_t{c} * kChunk, kChunk));
    }
    job.ranks[r].push_back(IoOp::close(file));
  }

  SimulatorOptions options;
  options.cluster = cluster;
  const PfsSimulator sim{options};
  return sim.run(job, config, /*seed=*/0x9f2423839c74e897ULL);
}

TEST(DirtyBudgetRegression, ThreeRanksOneChunkEachDoesNotDeadlock) {
  // Rank 1 fills the budget; ranks 2 and 3 queue. Once rank 2 is admitted,
  // its segment must flush immediately (waiters present) or rank 3 starves.
  RunResult result;
  ASSERT_NO_THROW(result = runPrivateWriters(3, 1, 512));
  EXPECT_EQ(result.outcome, RunOutcome::Ok);
  EXPECT_EQ(result.counters.writeRpcBytes, 3u * 1024 * 1024);
}

TEST(DirtyBudgetRegression, TwoRanksTwoChunksDoesNotDeadlock) {
  // Same starvation through the self-wait path: rank 1's second chunk and
  // rank 2 both wait on the budget; huge RPC size keeps the threshold
  // unreachable.
  RunResult result;
  ASSERT_NO_THROW(result = runPrivateWriters(2, 2, 3412));
  EXPECT_EQ(result.outcome, RunOutcome::Ok);
  EXPECT_EQ(result.counters.writeRpcBytes, 4u * 1024 * 1024);
}

}  // namespace
}  // namespace stellar::pfs

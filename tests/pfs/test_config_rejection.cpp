// Simulator-boundary knob-range validation (ISSUE 7, satellite 1): every
// one of the 13 tunables, pushed past either documented bound, must be
// rejected before the simulation starts — and every rejection counted, so
// the chaos bench can prove nothing slipped past the agent-side sanitizer.
#include <gtest/gtest.h>

#include <string>

#include "obs/counters.hpp"
#include "pfs/params.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar::pfs {
namespace {

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

TEST(ConfigRejection, EveryTunablePastItsMaxIsRejectedAndCounted) {
  obs::CounterRegistry registry;
  const PfsSimulator sim{{.counters = &registry}};
  const JobSpec job = workloads::ior16m(tinyOpts());
  const BoundsContext ctx = sim.boundsContext();

  double expectedRejections = 0.0;
  for (const std::string& name : PfsConfig::tunableNames()) {
    PfsConfig cfg;
    const auto bounds = paramBounds(name, cfg, ctx);
    ASSERT_TRUE(bounds.has_value()) << name;
    ASSERT_TRUE(cfg.set(name, bounds->max + 1)) << name;
    EXPECT_THROW((void)sim.run(job, cfg, 1), std::invalid_argument) << name;
    ++expectedRejections;
    EXPECT_EQ(registry.counter("pfs.sim.config_rejected").value(),
              expectedRejections)
        << name;
  }
}

TEST(ConfigRejection, EveryTunableBelowItsMinIsRejected) {
  obs::CounterRegistry registry;
  const PfsSimulator sim{{.counters = &registry}};
  const JobSpec job = workloads::ior16m(tinyOpts());
  const BoundsContext ctx = sim.boundsContext();

  for (const std::string& name : PfsConfig::tunableNames()) {
    PfsConfig cfg;
    const auto bounds = paramBounds(name, cfg, ctx);
    ASSERT_TRUE(bounds.has_value()) << name;
    ASSERT_TRUE(cfg.set(name, bounds->min - 1)) << name;
    EXPECT_THROW((void)sim.run(job, cfg, 1), std::invalid_argument) << name;
  }
  EXPECT_EQ(registry.counter("pfs.sim.config_rejected").value(),
            static_cast<double>(PfsConfig::tunableNames().size()));
}

TEST(ConfigRejection, ValidConfigIsNotCounted) {
  obs::CounterRegistry registry;
  const PfsSimulator sim{{.counters = &registry}};
  const JobSpec job = workloads::ior16m(tinyOpts());
  (void)sim.run(job, PfsConfig{}, 1);
  EXPECT_EQ(registry.counter("pfs.sim.config_rejected").value(), 0.0);
}

TEST(ConfigRejection, ClampConfigRepairsEveryViolation) {
  // The Enforce sanitizer's final pass relies on clampConfig producing a
  // simulator-acceptable config from arbitrary emitted values.
  const PfsSimulator sim;
  const BoundsContext ctx = sim.boundsContext();
  PfsConfig wild;
  for (const std::string& name : PfsConfig::tunableNames()) {
    const auto bounds = paramBounds(name, wild, ctx);
    ASSERT_TRUE(bounds.has_value()) << name;
    ASSERT_TRUE(wild.set(name, bounds->max * 8 + 7)) << name;
  }
  EXPECT_FALSE(validateConfig(wild, ctx).empty());
  const PfsConfig repaired = clampConfig(wild, ctx);
  EXPECT_TRUE(validateConfig(repaired, ctx).empty());
  const JobSpec job = workloads::ior16m(tinyOpts());
  EXPECT_NO_THROW((void)sim.run(job, repaired, 1));
}

}  // namespace
}  // namespace stellar::pfs

// Client-runtime semantics at the op level: write-back/fsync, unlink
// discard, page-cache/lock coupling, statahead pipelining, barriers.
#include <gtest/gtest.h>

#include "pfs/simulator.hpp"
#include "util/units.hpp"

namespace stellar::pfs {
namespace {

/// One-rank-per-node cluster keeps interactions minimal.
ClusterSpec soloCluster() {
  ClusterSpec cluster;
  cluster.ranksPerNode = 1;
  return cluster;
}

RunResult runJob(const JobSpec& job, const PfsConfig& cfg = PfsConfig{},
                 ClusterSpec cluster = defaultCluster()) {
  PfsSimulator sim{{.cluster = std::move(cluster)}};
  return sim.run(job, cfg, 21);
}

TEST(ClientSemantics, UnsyncedWritesDoNotCountTowardWallTime) {
  // Two identical writers; one fsyncs, one exits dirty. The fsyncing job
  // must take visibly longer (the flush is on its critical path).
  const auto makeJob = [](bool withFsync) {
    JobSpec job;
    job.name = withFsync ? "sync" : "nosync";
    job.ranks.resize(1);
    const auto f = job.addFile("/f");
    auto& prog = job.ranks[0];
    prog.push_back(IoOp::create(f));
    for (std::uint64_t off = 0; off < 64 * util::kMiB; off += util::kMiB) {
      prog.push_back(IoOp::write(f, off, util::kMiB));
    }
    if (withFsync) {
      prog.push_back(IoOp::fsync(f));
    }
    prog.push_back(IoOp::close(f));
    return job;
  };
  PfsConfig roomy;
  roomy.osc_max_dirty_mb = 1024;  // everything fits in cache
  const double dirtyExit = runJob(makeJob(false), roomy, soloCluster()).rawWallSeconds;
  const double syncedExit = runJob(makeJob(true), roomy, soloCluster()).rawWallSeconds;
  EXPECT_GT(syncedExit, dirtyExit * 2.0);
}

TEST(ClientSemantics, FsyncCountsAndBlocks) {
  JobSpec job;
  job.name = "fsync";
  job.ranks.resize(1);
  const auto f = job.addFile("/f");
  job.ranks[0] = {IoOp::create(f), IoOp::write(f, 0, 8 * util::kMiB), IoOp::fsync(f),
                  IoOp::close(f)};
  const RunResult result = runJob(job);
  EXPECT_EQ(result.files[0].fsyncs, 1u);
  EXPECT_GT(result.ranks[0].writeTime, 0.0);  // the fsync wait is write time
}

TEST(ClientSemantics, UnlinkDiscardsPendingDirtyData) {
  // create -> write small -> close -> unlink: with no fsync the data never
  // needs to reach the OSTs; the discarding job issues fewer data RPCs.
  const auto makeJob = [](bool unlink) {
    JobSpec job;
    job.name = "u";
    job.ranks.resize(1);
    auto& prog = job.ranks[0];
    for (int i = 0; i < 50; ++i) {
      const auto f = job.addFile("/d/f" + std::to_string(i));
      prog.push_back(IoOp::create(f));
      prog.push_back(IoOp::write(f, 0, 8 * util::kKiB));
      prog.push_back(IoOp::close(f));
      if (unlink) {
        prog.push_back(IoOp::unlink(f));
      }
    }
    return job;
  };
  const RunResult kept = runJob(makeJob(false));
  const RunResult discarded = runJob(makeJob(true));
  EXPECT_LT(discarded.counters.dataRpcs, kept.counters.dataRpcs);
}

TEST(ClientSemantics, PageCacheHitsRequireTheLockToSurvive) {
  // Write then read back on the same node. With a big lock LRU the read is
  // a page-cache hit; flooding the LRU with other files in between evicts
  // the lock and forces the read to the OSTs.
  const auto makeJob = [](int floodFiles) {
    JobSpec job;
    job.name = "pc";
    job.ranks.resize(1);
    const auto target = job.addFile("/target");
    auto& prog = job.ranks[0];
    prog.push_back(IoOp::create(target));
    prog.push_back(IoOp::write(target, 0, 256 * util::kKiB));
    prog.push_back(IoOp::close(target));
    for (int i = 0; i < floodFiles; ++i) {
      const auto f = job.addFile("/flood/f" + std::to_string(i));
      prog.push_back(IoOp::create(f));
      prog.push_back(IoOp::close(f));
    }
    prog.push_back(IoOp::open(target));
    prog.push_back(IoOp::read(target, 0, 256 * util::kKiB));
    prog.push_back(IoOp::close(target));
    return job;
  };
  PfsConfig smallLru;
  smallLru.ldlm_lru_size = 64;
  const RunResult hit = runJob(makeJob(0), smallLru);
  const RunResult evicted = runJob(makeJob(200), smallLru);
  EXPECT_EQ(hit.counters.pageCacheHitBytes, 256 * util::kKiB);
  EXPECT_EQ(evicted.counters.pageCacheHitBytes, 0u);
}

TEST(ClientSemantics, SharedFilesNeverHitThePageCache) {
  // Writer on node 0, reader on node 1 (ranksPerNode=1): reads must go to
  // the OSTs even though a lock may be cached.
  JobSpec job;
  job.name = "cross";
  job.ranks.resize(2);
  const auto f = job.addFile("/x");
  job.ranks[0] = {IoOp::create(f), IoOp::write(f, 0, util::kMiB), IoOp::fsync(f),
                  IoOp::close(f), IoOp::barrier()};
  job.ranks[1] = {IoOp::barrier(), IoOp::open(f), IoOp::read(f, 0, util::kMiB),
                  IoOp::close(f)};
  const RunResult result = runJob(job, PfsConfig{}, soloCluster());
  EXPECT_EQ(result.counters.pageCacheHitBytes, 0u);
  EXPECT_GT(result.files[0].bytesRead, 0u);
}

TEST(ClientSemantics, StataheadServesPipelinedStats) {
  JobSpec job;
  job.name = "scan";
  job.ranks.resize(1);
  const auto dir = job.addDir("/scan");
  auto& prog = job.ranks[0];
  prog.push_back(IoOp::mkdir(dir));
  std::vector<FileId> files;
  for (int i = 0; i < 100; ++i) {
    files.push_back(job.addFile("/scan/f" + std::to_string(i), dir));
    prog.push_back(IoOp::create(files.back()));
    prog.push_back(IoOp::close(files.back()));
  }
  prog.push_back(IoOp::barrier());
  for (const FileId f : files) {
    prog.push_back(IoOp::stat(f));
  }

  PfsConfig saOn;
  saOn.ldlm_lru_size = 8;  // force stat misses
  saOn.llite_statahead_max = 64;
  saOn.mdc_max_rpcs_in_flight = 64;
  saOn.mdc_max_mod_rpcs_in_flight = 63;
  const RunResult result = runJob(job, saOn, soloCluster());
  EXPECT_GT(result.counters.stataheadServed, 50u);

  PfsConfig saOff = saOn;
  saOff.llite_statahead_max = 0;
  const RunResult off = runJob(job, saOff, soloCluster());
  EXPECT_EQ(off.counters.stataheadServed, 0u);
  EXPECT_GT(off.rawWallSeconds, result.rawWallSeconds);
}

TEST(ClientSemantics, BarriersSynchronizeRanks) {
  JobSpec job;
  job.name = "barrier";
  job.ranks.resize(2);
  const auto f = job.addFile("/f");
  // Rank 0 computes 1s then arrives; rank 1 arrives immediately. Both
  // finish after the barrier, so both finish at >= 1s.
  job.ranks[0] = {IoOp::create(f), IoOp::compute(1.0), IoOp::barrier()};
  job.ranks[1] = {IoOp::compute(0.001), IoOp::barrier()};
  const RunResult result = runJob(job, PfsConfig{}, soloCluster());
  EXPECT_GE(result.ranks[1].finishTime, 1.0);
}

TEST(ClientSemantics, ExtentConflictsOnlyOnCrossNodeSharedWrites) {
  const auto makeJob = [](std::uint32_t ranks) {
    JobSpec job;
    job.name = "conflict";
    job.ranks.resize(ranks);
    const auto f = job.addFile("/shared");
    util::Rng rng{5};
    for (std::uint32_t r = 0; r < ranks; ++r) {
      auto& prog = job.ranks[r];
      if (r == 0) {
        prog.push_back(IoOp::create(f));
      }
      prog.push_back(IoOp::barrier());
      if (r != 0) {
        prog.push_back(IoOp::open(f));
      }
      for (int i = 0; i < 64; ++i) {
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(rng.uniformInt(0, 1023))) * 64 * util::kKiB;
        prog.push_back(IoOp::write(f, offset, 64 * util::kKiB));
      }
      prog.push_back(IoOp::close(f));
    }
    return job;
  };
  // Single node (1 rank): no conflicts possible.
  const RunResult solo = runJob(makeJob(1), PfsConfig{}, soloCluster());
  EXPECT_EQ(solo.counters.extentConflicts, 0u);
  // Five nodes writing the same file: conflicts appear.
  const RunResult shared = runJob(makeJob(5), PfsConfig{}, soloCluster());
  EXPECT_GT(shared.counters.extentConflicts, 0u);
}

TEST(ClientSemantics, ChecksumsChargeCpuTimePerByte) {
  // Buffered writes with an ample dirty budget and no fsync: the wall time
  // is pure client-side CPU, so the checksum cost is fully exposed. (With
  // a flush on the critical path the checksum CPU overlaps the I/O — also
  // covered, by ResponseSurface.ChecksumsCostThroughput.)
  JobSpec job;
  job.name = "ck";
  job.ranks.resize(1);
  const auto f = job.addFile("/f");
  job.ranks[0] = {IoOp::create(f), IoOp::write(f, 0, 64 * util::kMiB),
                  IoOp::close(f)};
  PfsConfig off;
  off.osc_max_dirty_mb = 2048;
  PfsConfig on = off;
  on.osc_checksums = true;
  const double tOff = runJob(job, off).rawWallSeconds;
  const double tOn = runJob(job, on).rawWallSeconds;
  EXPECT_GT(tOn, tOff * 1.5);
}

}  // namespace
}  // namespace stellar::pfs

// Knob-boundary regressions for the sliding-window readahead engine
// (ISSUE 10, satellite 4): the per-file cap must be rejected the moment it
// exceeds half the client-wide budget, whole-file mode must cut over at
// exactly llite_max_read_ahead_whole_mb, and the PR 4 dirty-budget
// counterexamples must stay green now that write-back runs through the
// WritebackBank instead of the old per-lane pending vectors.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pfs/params.hpp"
#include "pfs/simulator.hpp"

namespace stellar::pfs {
namespace {

constexpr std::uint64_t kChunk = 256 * 1024;
constexpr std::uint64_t kRpc = 256 * 4096;  // osc_max_pages_per_rpc pages

// ------------------------------------------------- per-file cap boundary

BoundsContext defaultContext() {
  const PfsSimulator sim;
  return sim.boundsContext();
}

TEST(ReadaheadRegression, PerFileCapAtHalfBudgetIsAccepted) {
  PfsConfig cfg;
  cfg.llite_max_read_ahead_mb = 64;
  cfg.llite_max_read_ahead_per_file_mb = 32;  // exactly half: legal
  EXPECT_TRUE(validateConfig(cfg, defaultContext()).empty());
}

TEST(ReadaheadRegression, PerFileCapOverHalfBudgetIsRejected) {
  PfsConfig cfg;
  cfg.llite_max_read_ahead_mb = 64;
  cfg.llite_max_read_ahead_per_file_mb = 33;  // one MiB over: illegal
  const std::vector<std::string> violations =
      validateConfig(cfg, defaultContext());
  ASSERT_FALSE(violations.empty());
  bool mentionsPerFile = false;
  for (const std::string& v : violations) {
    mentionsPerFile =
        mentionsPerFile ||
        v.find("llite.max_read_ahead_per_file_mb") != std::string::npos;
  }
  EXPECT_TRUE(mentionsPerFile);
}

TEST(ReadaheadRegression, WholeFileCutoverOverPerFileCapIsRejected) {
  PfsConfig cfg;
  cfg.llite_max_read_ahead_mb = 64;
  cfg.llite_max_read_ahead_per_file_mb = 4;
  cfg.llite_max_read_ahead_whole_mb = 5;  // cutover above the window cap
  EXPECT_FALSE(validateConfig(cfg, defaultContext()).empty());
  cfg.llite_max_read_ahead_whole_mb = 4;
  EXPECT_TRUE(validateConfig(cfg, defaultContext()).empty());
}

// --------------------------------------------------- whole-file cutover

/// Writer on node 0 publishes `fileBytes`; reader on node 1 (cold cache)
/// reads just the first chunk and closes. Whole-file mode prefetches the
/// entire file on that first read; the windowed ramp fetches only the
/// RPC-aligned initial window.
RunResult runFirstChunkReader(std::uint64_t fileBytes) {
  ClusterSpec cluster = defaultCluster();
  cluster.clientNodes = 2;
  cluster.ranksPerNode = 1;
  cluster.ossNodes = 1;
  cluster.ostsPerOss = 1;

  PfsConfig cfg;
  cfg.stripe_count = 1;
  cfg.osc_max_rpcs_in_flight = 1;
  cfg.osc_max_pages_per_rpc = 256;
  cfg.osc_max_dirty_mb = 64;
  cfg.llite_max_read_ahead_mb = 64;
  cfg.llite_max_read_ahead_per_file_mb = 32;
  cfg.llite_max_read_ahead_whole_mb = 2;

  JobSpec job;
  job.name = "reada_cutover";
  job.ranks.resize(2);
  const FileId f = job.addFile("/regress/cutover");
  job.ranks[0].push_back(IoOp::create(f));
  for (std::uint64_t off = 0; off < fileBytes; off += kRpc) {
    job.ranks[0].push_back(IoOp::write(f, off, std::min(kRpc, fileBytes - off)));
  }
  job.ranks[0].push_back(IoOp::fsync(f));
  job.ranks[0].push_back(IoOp::barrier());
  job.ranks[0].push_back(IoOp::close(f));
  job.ranks[1].push_back(IoOp::barrier());
  job.ranks[1].push_back(IoOp::open(f));
  job.ranks[1].push_back(IoOp::read(f, 0, kChunk));
  job.ranks[1].push_back(IoOp::close(f));

  const PfsSimulator sim{SimulatorOptions{.cluster = cluster}};
  return sim.run(job, cfg, /*seed=*/42);
}

TEST(ReadaheadRegression, WholeFileModeFiresAtExactlyTheCutover) {
  constexpr std::uint64_t kFileBytes = 2 * 1024 * 1024;  // == whole_mb
  const RunResult result = runFirstChunkReader(kFileBytes);
  ASSERT_EQ(result.outcome, RunOutcome::Ok);
  // One whole-file shot: the entire file, no RPC rounding, no ramp.
  EXPECT_EQ(result.audit.readaPrefetchedBytes, kFileBytes);
  EXPECT_EQ(result.audit.readaWindowsOpened, 1u);
  EXPECT_EQ(result.audit.readaWindowsGrown, 0u);  // parked, never grows
  // Only the first chunk was consumed; close discards the rest.
  EXPECT_EQ(result.audit.readaConsumedBytes, kChunk);
  EXPECT_EQ(result.audit.readaDiscardedBytes, kFileBytes - kChunk);
}

TEST(ReadaheadRegression, OneChunkPastTheCutoverUsesTheWindowedRamp) {
  constexpr std::uint64_t kFileBytes = 2 * 1024 * 1024 + kChunk;
  const RunResult result = runFirstChunkReader(kFileBytes);
  ASSERT_EQ(result.outcome, RunOutcome::Ok);
  // Windowed open: readEnd (256 KiB) + initial window (256 KiB), aligned up
  // to the 1 MiB RPC edge — nowhere near the whole file.
  EXPECT_EQ(result.audit.readaPrefetchedBytes, kRpc);
  EXPECT_LT(result.audit.readaPrefetchedBytes, kFileBytes);
  EXPECT_EQ(result.audit.readaWindowsOpened, 1u);
}

// -------------------------------------- PR 4 dirty-budget counterexamples
//
// Shrunk counterexamples from tests/pfs/test_dirty_budget_regression.cpp,
// replayed here against the WritebackBank-backed flush path with readahead
// enabled, plus an unlink variant that exercises WritebackBank::discardFile
// while a waiter is queued on the dirty budget.

RunResult runBudgetStarvers(std::uint32_t ranks, std::uint32_t chunksPerRank,
                            std::int64_t maxPagesPerRpc) {
  ClusterSpec cluster = defaultCluster();
  cluster.clientNodes = 1;
  cluster.ranksPerNode = 4;
  cluster.ossNodes = 1;
  cluster.ostsPerOss = 1;

  PfsConfig config;
  EXPECT_TRUE(config.set("osc.max_pages_per_rpc", maxPagesPerRpc));
  EXPECT_TRUE(config.set("osc.max_dirty_mb", 1));  // budget (1 MiB) < RPC size
  EXPECT_TRUE(config.set("llite.max_read_ahead_mb", 64));

  constexpr std::uint64_t kBudgetChunk = 1024 * 1024;
  JobSpec job;
  job.name = "reada_budget_regression";
  job.ranks.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const FileId file = job.addFile("/regress/r" + std::to_string(r));
    job.ranks[r].push_back(IoOp::create(file));
    for (std::uint32_t c = 0; c < chunksPerRank; ++c) {
      job.ranks[r].push_back(
          IoOp::write(file, std::uint64_t{c} * kBudgetChunk, kBudgetChunk));
    }
    job.ranks[r].push_back(IoOp::close(file));
  }

  const PfsSimulator sim{SimulatorOptions{.cluster = cluster}};
  return sim.run(job, config, /*seed=*/0x9f2423839c74e897ULL);
}

TEST(ReadaheadRegression, ThreeRankCounterexampleDoesNotDeadlockBank) {
  RunResult result;
  ASSERT_NO_THROW(result = runBudgetStarvers(3, 1, 512));
  EXPECT_EQ(result.outcome, RunOutcome::Ok);
  EXPECT_EQ(result.counters.writeRpcBytes, 3u * 1024 * 1024);
}

TEST(ReadaheadRegression, TwoRankCounterexampleDoesNotDeadlockBank) {
  RunResult result;
  ASSERT_NO_THROW(result = runBudgetStarvers(2, 2, 3412));
  EXPECT_EQ(result.outcome, RunOutcome::Ok);
  EXPECT_EQ(result.counters.writeRpcBytes, 4u * 1024 * 1024);
}

TEST(ReadaheadRegression, UnlinkDiscardsParkedSegmentsFromTheBank) {
  // A lone writer parks a sub-threshold segment in the write-back bank
  // (1 MiB pending < 2 MiB RPC size, no budget contention to force it out)
  // and then unlinks: the bank must discard the segment — nothing reaches
  // the OST — and return the bytes to the dirty budget.
  ClusterSpec cluster = defaultCluster();
  cluster.clientNodes = 1;
  cluster.ranksPerNode = 1;
  cluster.ossNodes = 1;
  cluster.ostsPerOss = 1;

  PfsConfig config;
  EXPECT_TRUE(config.set("osc.max_pages_per_rpc", 512));  // 2 MiB RPCs
  EXPECT_TRUE(config.set("osc.max_dirty_mb", 64));

  JobSpec job;
  job.name = "reada_unlink_discard";
  job.ranks.resize(1);
  const FileId f = job.addFile("/regress/doomed");
  job.ranks[0].push_back(IoOp::create(f));
  job.ranks[0].push_back(IoOp::write(f, 0, 1024 * 1024));
  job.ranks[0].push_back(IoOp::unlink(f));

  const PfsSimulator sim{SimulatorOptions{.cluster = cluster}};
  const RunResult result = sim.run(job, config, /*seed=*/42);
  EXPECT_EQ(result.outcome, RunOutcome::Ok);
  EXPECT_EQ(result.counters.writeRpcBytes, 0u);
  EXPECT_EQ(result.counters.dirtyDiscardedBytes, 1024u * 1024);
}

}  // namespace
}  // namespace stellar::pfs

// Direct unit tests of the server models: the OST bank's three-stage
// nic/positioning/transfer structure and the MDS cost model.
#include <gtest/gtest.h>

#include "pfs/mds.hpp"
#include "pfs/ost.hpp"

namespace stellar::pfs {
namespace {

struct OstFixture {
  ClusterSpec cluster;
  sim::SimEngine engine;  // default EngineOptions: seed 1
  OstBank ost{engine, cluster, /*count=*/1};

  double drain() { return engine.run(); }
};

TEST(OstBank, SequentialAccessAvoidsSeeks) {
  OstFixture fx;
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    fx.ost.submitBulk(0, /*objectKey=*/7, static_cast<std::uint64_t>(i) * 1048576,
                      1048576, true, [&done] { ++done; });
  }
  fx.drain();
  EXPECT_EQ(done, 8);
  EXPECT_EQ(fx.ost.seeks(0), 1u);  // only the first access positions
  EXPECT_EQ(fx.ost.rpcsServed(0), 8u);
  EXPECT_EQ(fx.ost.bytesServed(0), 8u * 1048576);
}

TEST(OstBank, RandomAccessSeeksEveryTime) {
  OstFixture fx;
  for (int i = 0; i < 8; ++i) {
    // Non-contiguous offsets (stride leaves gaps).
    fx.ost.submitBulk(0, 7, static_cast<std::uint64_t>(i) * 4194304, 1048576, true,
                      [] {});
  }
  fx.drain();
  EXPECT_EQ(fx.ost.seeks(0), 8u);
}

TEST(OstBank, ContiguityIsTrackedPerObject) {
  OstFixture fx;
  // Interleaved sequential streams on two objects: each stream stays
  // contiguous from the object's perspective.
  for (int i = 0; i < 4; ++i) {
    fx.ost.submitBulk(0, 1, static_cast<std::uint64_t>(i) * 65536, 65536, false, [] {});
    fx.ost.submitBulk(0, 2, static_cast<std::uint64_t>(i) * 65536, 65536, false, [] {});
  }
  fx.drain();
  EXPECT_EQ(fx.ost.seeks(0), 2u);  // one initial seek per object
}

TEST(OstBank, AggregateBandwidthCapsAtTheMedia) {
  // 64 MiB of large sequential RPCs from "many clients": total service
  // time must be at least bytes/sequentialBandwidth — the serialized
  // transfer stage — regardless of positioning parallelism.
  OstFixture fx;
  const std::uint64_t rpc = 4 * 1048576;
  for (int i = 0; i < 16; ++i) {
    fx.ost.submitBulk(0, static_cast<std::uint64_t>(i), 0, rpc, true, [] {});
  }
  const double wall = fx.drain();
  const double mediaTime =
      16.0 * static_cast<double>(rpc) / fx.cluster.disk.sequentialBandwidth;
  EXPECT_GT(wall, mediaTime * 0.9);
  EXPECT_LT(wall, mediaTime * 2.0);  // parallel positioning keeps overhead low
}

TEST(OstBank, SmallRandomRpcsAreSeekBoundNotBandwidthBound) {
  // 64 KiB random RPCs: with queueDepth-way positioning, throughput is far
  // below the sequential media rate but far above fully serialized seeks.
  OstFixture fx;
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    fx.ost.submitBulk(0, static_cast<std::uint64_t>(i), 0, 65536, false, [] {});
  }
  const double wall = fx.drain();
  const double serializedSeeks = n * fx.cluster.disk.seekPenalty;
  EXPECT_LT(wall, serializedSeeks);  // positioning overlaps
  const double pureBandwidth = n * 65536.0 / fx.cluster.disk.sequentialBandwidth;
  EXPECT_GT(wall, pureBandwidth * 2.0);  // but seeks dominate transfers
}

TEST(OstBank, ResetClearsContiguityAndStats) {
  OstFixture fx;
  fx.ost.submitBulk(0, 7, 0, 65536, true, [] {});
  fx.drain();
  fx.ost.reset();
  EXPECT_EQ(fx.ost.rpcsServed(0), 0u);
  EXPECT_EQ(fx.ost.seeks(0), 0u);
}

TEST(OstBank, StatsAreTrackedPerOst) {
  // Two OSTs in one bank: submissions to one never leak into the other's
  // counters, and the global index maps through the bank's offset.
  ClusterSpec cluster;
  sim::SimEngine engine;
  OstBank bank{engine, cluster, /*count=*/2, /*globalOffset=*/6};
  bank.submitBulk(0, 1, 0, 65536, true, [] {});
  bank.submitBulk(1, 1, 0, 65536, true, [] {});
  bank.submitBulk(1, 1, 65536, 65536, true, [] {});
  engine.run();
  EXPECT_EQ(bank.rpcsServed(0), 1u);
  EXPECT_EQ(bank.rpcsServed(1), 2u);
  EXPECT_EQ(bank.bytesServed(1), 2u * 65536);
  EXPECT_EQ(bank.globalIndex(1), 7u);
}

struct MdsFixture {
  ClusterSpec cluster;
  sim::SimEngine engine;  // default EngineOptions: seed 1
  MdsModel mds{engine, cluster, /*seed=*/1};
};

TEST(MdsModel, StripeCountScalesCreateAndUnlinkCost) {
  const auto busyFor = [](MetaOpKind kind, std::uint32_t stripes) {
    MdsFixture fx;
    for (int i = 0; i < 200; ++i) {
      fx.mds.submit(kind, stripes, [] {});
    }
    fx.engine.run();
    return fx.mds.busyTime();
  };
  EXPECT_GT(busyFor(MetaOpKind::Create, 5), busyFor(MetaOpKind::Create, 1) * 2.0);
  EXPECT_GT(busyFor(MetaOpKind::Unlink, 5), busyFor(MetaOpKind::Unlink, 1) * 1.5);
  // Stat cost is stripe-independent.
  EXPECT_NEAR(busyFor(MetaOpKind::Stat, 5) / busyFor(MetaOpKind::Stat, 1), 1.0, 0.01);
}

TEST(MdsModel, OpKindsHaveDistinctCosts) {
  const auto busyFor = [](MetaOpKind kind) {
    MdsFixture fx;
    for (int i = 0; i < 500; ++i) {
      fx.mds.submit(kind, 1, [] {});
    }
    fx.engine.run();
    return fx.mds.busyTime();
  };
  EXPECT_GT(busyFor(MetaOpKind::Create), busyFor(MetaOpKind::Stat));
  EXPECT_GT(busyFor(MetaOpKind::Unlink), busyFor(MetaOpKind::Open));
  EXPECT_GT(busyFor(MetaOpKind::Mkdir), busyFor(MetaOpKind::Lock));
}

TEST(MdsModel, ThroughputSaturatesUnderDeepBacklogs) {
  // 10x the backlog must not take more than ~12x the time (bounded
  // congestion contribution, no collapse).
  const auto wallFor = [](int n) {
    MdsFixture fx;
    for (int i = 0; i < n; ++i) {
      fx.mds.submit(MetaOpKind::Stat, 1, [] {});
    }
    return fx.engine.run();
  };
  const double small = wallFor(200);
  const double large = wallFor(2000);
  EXPECT_LT(large / small, 12.0);
  EXPECT_GT(large / small, 6.0);
}

TEST(MdsModel, CountsServedOps) {
  MdsFixture fx;
  for (int i = 0; i < 17; ++i) {
    fx.mds.submit(MetaOpKind::Open, 1, [] {});
  }
  fx.engine.run();
  EXPECT_EQ(fx.mds.opsServed(), 17u);
  EXPECT_STREQ(metaOpName(MetaOpKind::Unlink), "unlink");
}

}  // namespace
}  // namespace stellar::pfs

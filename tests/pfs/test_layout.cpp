// Striping math: exact RAID-0 mapping properties.
#include <gtest/gtest.h>

#include "pfs/layout.hpp"

namespace stellar::pfs {
namespace {

TEST(Layout, SingleStripeMapsIdentically) {
  FileLayout layout{.stripeCount = 1, .stripeSize = 1 << 20, .firstOst = 2,
                    .totalOsts = 5};
  const auto pieces = mapExtent(layout, 12345, 777);
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0].ost, 2u);
  EXPECT_EQ(pieces[0].objectOffset, 12345u);
  EXPECT_EQ(pieces[0].length, 777u);
  EXPECT_EQ(pieces[0].fileOffset, 12345u);
}

TEST(Layout, SplitsAtStripeBoundaries) {
  FileLayout layout{.stripeCount = 4, .stripeSize = 1024, .firstOst = 0, .totalOsts = 5};
  // [1000, 3100) crosses boundaries at 1024, 2048, 3072.
  const auto pieces = mapExtent(layout, 1000, 2100);
  ASSERT_EQ(pieces.size(), 4u);
  EXPECT_EQ(pieces[0].length, 24u);
  EXPECT_EQ(pieces[1].length, 1024u);
  EXPECT_EQ(pieces[2].length, 1024u);
  EXPECT_EQ(pieces[3].length, 28u);
  // OSTs rotate round-robin.
  EXPECT_EQ(pieces[0].ost, 0u);
  EXPECT_EQ(pieces[1].ost, 1u);
  EXPECT_EQ(pieces[2].ost, 2u);
  EXPECT_EQ(pieces[3].ost, 3u);
}

TEST(Layout, CoversExtentExactly) {
  FileLayout layout{.stripeCount = 3, .stripeSize = 4096, .firstOst = 1, .totalOsts = 5};
  const std::uint64_t offset = 777;
  const std::uint64_t length = 50000;
  const auto pieces = mapExtent(layout, offset, length);
  std::uint64_t covered = 0;
  std::uint64_t cursor = offset;
  for (const auto& p : pieces) {
    EXPECT_EQ(p.fileOffset, cursor);
    covered += p.length;
    cursor += p.length;
  }
  EXPECT_EQ(covered, length);
}

TEST(Layout, ObjectOffsetsPackStripesBackToBack) {
  FileLayout layout{.stripeCount = 2, .stripeSize = 1000, .firstOst = 0, .totalOsts = 2};
  // Stripe 0 -> ost0 obj [0,1000); stripe 1 -> ost1 obj [0,1000);
  // stripe 2 -> ost0 obj [1000,2000) ...
  EXPECT_EQ(objectOffsetFor(layout, 0), 0u);
  EXPECT_EQ(objectOffsetFor(layout, 1500), 500u);
  EXPECT_EQ(objectOffsetFor(layout, 2000), 1000u);
  EXPECT_EQ(objectOffsetFor(layout, 3999), 1999u);
}

TEST(Layout, EmptyExtentYieldsNoPieces) {
  FileLayout layout;
  EXPECT_TRUE(mapExtent(layout, 100, 0).empty());
}

TEST(Layout, OstForStripeWrapsOverTotalOsts) {
  FileLayout layout{.stripeCount = 5, .stripeSize = 64, .firstOst = 3, .totalOsts = 5};
  EXPECT_EQ(layout.ostForStripe(0), 3u);
  EXPECT_EQ(layout.ostForStripe(1), 4u);
  EXPECT_EQ(layout.ostForStripe(2), 0u);
  EXPECT_EQ(layout.ostForStripe(7), 0u);  // 3 + (7 % 5) = 5 -> 0
}

class LayoutCoverageSweep
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint64_t>> {};

TEST_P(LayoutCoverageSweep, PiecesTileArbitraryExtents) {
  const auto [stripeCount, stripeSize] = GetParam();
  FileLayout layout{.stripeCount = stripeCount, .stripeSize = stripeSize,
                    .firstOst = 1, .totalOsts = 5};
  for (std::uint64_t offset : {std::uint64_t{0}, stripeSize - 1, 3 * stripeSize + 17}) {
    for (std::uint64_t length : {std::uint64_t{1}, stripeSize, 7 * stripeSize + 3}) {
      const auto pieces = mapExtent(layout, offset, length);
      std::uint64_t cursor = offset;
      for (const auto& p : pieces) {
        EXPECT_EQ(p.fileOffset, cursor);
        EXPECT_LE(p.length, stripeSize);
        EXPECT_LT(p.ost, 5u);
        cursor += p.length;
      }
      EXPECT_EQ(cursor, offset + length);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LayoutCoverageSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 5u),
                       ::testing::Values(std::uint64_t{65536}, std::uint64_t{1} << 20,
                                         std::uint64_t{16} << 20)));

}  // namespace
}  // namespace stellar::pfs

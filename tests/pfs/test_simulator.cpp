// End-to-end simulator behaviour: determinism, conservation, noise model,
// validation errors, and basic stats plumbing.
#include <gtest/gtest.h>

#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar {
namespace {

using pfs::IoOp;
using pfs::JobSpec;
using pfs::PfsConfig;
using pfs::PfsSimulator;

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

TEST(Simulator, DeterministicForSameSeed) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  const auto a = sim.run(job, PfsConfig{}, 7);
  const auto b = sim.run(job, PfsConfig{}, 7);
  EXPECT_DOUBLE_EQ(a.wallSeconds, b.wallSeconds);
  EXPECT_DOUBLE_EQ(a.rawWallSeconds, b.rawWallSeconds);
  EXPECT_EQ(a.counters.dataRpcs, b.counters.dataRpcs);
  EXPECT_EQ(a.counters.metaRpcs, b.counters.metaRpcs);
  EXPECT_EQ(a.counters.events, b.counters.events);
}

TEST(Simulator, SeedChangesOnlyPerturbTiming) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  const auto a = sim.run(job, PfsConfig{}, 1);
  const auto b = sim.run(job, PfsConfig{}, 2);
  EXPECT_NE(a.wallSeconds, b.wallSeconds);
  // Work is conserved regardless of seed.
  EXPECT_EQ(a.totalBytesWritten(), b.totalBytesWritten());
  EXPECT_EQ(a.totalBytesRead(), b.totalBytesRead());
  // Timing varies by only a few percent.
  EXPECT_NEAR(a.rawWallSeconds / b.rawWallSeconds, 1.0, 0.25);
}

TEST(Simulator, ConservesByteCounts) {
  PfsSimulator sim;
  auto opt = tinyOpts();
  const JobSpec job = workloads::ior64k(opt);
  const auto result = sim.run(job, PfsConfig{}, 3);

  // IOR writes then reads the same volume.
  EXPECT_GT(result.totalBytesWritten(), 0.0);
  EXPECT_DOUBLE_EQ(result.totalBytesWritten(), result.totalBytesRead());

  // Per-file stats agree with per-rank stats.
  double fileWritten = 0.0;
  for (const auto& f : result.files) {
    fileWritten += static_cast<double>(f.bytesWritten);
  }
  EXPECT_DOUBLE_EQ(fileWritten, result.totalBytesWritten());
}

TEST(Simulator, SharedFileMarksAllRanks) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  const auto result = sim.run(job, PfsConfig{}, 3);
  ASSERT_EQ(result.files.size(), 1u);
  // All 10 ranks touched the single shared file.
  EXPECT_EQ(__builtin_popcountll(result.files[0].rankMask), 10);
}

TEST(Simulator, RejectsInvalidConfig) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  PfsConfig bad;
  bad.osc_max_rpcs_in_flight = 100000;
  EXPECT_THROW((void)sim.run(job, bad, 1), std::invalid_argument);

  PfsConfig badDependent;
  badDependent.llite_max_read_ahead_mb = 64;
  badDependent.llite_max_read_ahead_per_file_mb = 64;  // must be <= half
  EXPECT_THROW((void)sim.run(job, badDependent, 1), std::invalid_argument);
}

TEST(Simulator, RejectsJobWithTooManyRanks) {
  PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 51;  // cluster has 50 slots
  opt.scale = 0.02;
  const JobSpec job = workloads::ior16m(opt);
  EXPECT_THROW((void)sim.run(job, PfsConfig{}, 1), std::invalid_argument);
}

TEST(Simulator, MetadataWorkloadProducesMetaRpcs) {
  PfsSimulator sim;
  auto opt = tinyOpts();
  const JobSpec job = workloads::mdworkbench(8 * util::kKiB, opt);
  const auto result = sim.run(job, PfsConfig{}, 3);
  EXPECT_GT(result.counters.metaRpcs, 100u);
  // Each file is created/stated/opened/unlinked 3 rounds.
  for (const auto& f : result.files) {
    EXPECT_EQ(f.creates, 3u);
    EXPECT_EQ(f.unlinks, 3u);
    EXPECT_EQ(f.stats, 3u);
  }
}

TEST(Simulator, NoiseHasUnitMean) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  double noisy = 0.0;
  double raw = 0.0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const auto r = sim.run(job, PfsConfig{}, seed);
    noisy += r.wallSeconds;
    raw += r.rawWallSeconds;
  }
  EXPECT_NEAR(noisy / raw, 1.0, 0.05);
}

TEST(Simulator, BarrierTimesExposePhaseStructure) {
  PfsSimulator sim;
  const JobSpec job = workloads::mdworkbench(8 * util::kKiB, tinyOpts());
  const auto result = sim.run(job, PfsConfig{}, 3);
  // MDWorkbench: 4 barriers per round x 3 rounds.
  ASSERT_EQ(result.barrierTimes.size(), 12u);
  for (std::size_t i = 1; i < result.barrierTimes.size(); ++i) {
    EXPECT_GE(result.barrierTimes[i], result.barrierTimes[i - 1]);
  }
  EXPECT_LE(result.barrierTimes.back(), result.rawWallSeconds + 1e-9);
}

TEST(Simulator, ComputeOpsAddWallTime) {
  PfsSimulator sim;
  JobSpec job;
  job.name = "compute-only";
  job.ranks.resize(2);
  const auto f = job.addFile("/x");
  for (auto& prog : job.ranks) {
    prog.push_back(IoOp::compute(1.0));
    prog.push_back(IoOp::barrier());
  }
  job.ranks[0].insert(job.ranks[0].begin(), IoOp::create(f));
  const auto result = sim.run(job, PfsConfig{}, 1);
  EXPECT_GE(result.rawWallSeconds, 1.0);
  EXPECT_LT(result.rawWallSeconds, 1.5);
  EXPECT_DOUBLE_EQ(result.ranks[0].computeTime, 1.0);
}

}  // namespace
}  // namespace stellar

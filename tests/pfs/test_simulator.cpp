// End-to-end simulator behaviour: determinism, conservation, noise model,
// validation errors, and basic stats plumbing.
#include <gtest/gtest.h>

#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar {
namespace {

using pfs::IoOp;
using pfs::JobSpec;
using pfs::PfsConfig;
using pfs::PfsSimulator;

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

TEST(Simulator, DeterministicForSameSeed) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  const auto a = sim.run(job, PfsConfig{}, 7);
  const auto b = sim.run(job, PfsConfig{}, 7);
  EXPECT_DOUBLE_EQ(a.wallSeconds, b.wallSeconds);
  EXPECT_DOUBLE_EQ(a.rawWallSeconds, b.rawWallSeconds);
  EXPECT_EQ(a.counters.dataRpcs, b.counters.dataRpcs);
  EXPECT_EQ(a.counters.metaRpcs, b.counters.metaRpcs);
  EXPECT_EQ(a.counters.events, b.counters.events);
}

TEST(Simulator, SeedChangesOnlyPerturbTiming) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  const auto a = sim.run(job, PfsConfig{}, 1);
  const auto b = sim.run(job, PfsConfig{}, 2);
  EXPECT_NE(a.wallSeconds, b.wallSeconds);
  // Work is conserved regardless of seed.
  EXPECT_EQ(a.totalBytesWritten(), b.totalBytesWritten());
  EXPECT_EQ(a.totalBytesRead(), b.totalBytesRead());
  // Timing varies by only a few percent.
  EXPECT_NEAR(a.rawWallSeconds / b.rawWallSeconds, 1.0, 0.25);
}

TEST(Simulator, ConservesByteCounts) {
  PfsSimulator sim;
  auto opt = tinyOpts();
  const JobSpec job = workloads::ior64k(opt);
  const auto result = sim.run(job, PfsConfig{}, 3);

  // IOR writes then reads the same volume.
  EXPECT_GT(result.totalBytesWritten(), 0.0);
  EXPECT_DOUBLE_EQ(result.totalBytesWritten(), result.totalBytesRead());

  // Per-file stats agree with per-rank stats.
  double fileWritten = 0.0;
  for (const auto& f : result.files) {
    fileWritten += static_cast<double>(f.bytesWritten);
  }
  EXPECT_DOUBLE_EQ(fileWritten, result.totalBytesWritten());
}

TEST(Simulator, SharedFileMarksAllRanks) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  const auto result = sim.run(job, PfsConfig{}, 3);
  ASSERT_EQ(result.files.size(), 1u);
  // All 10 ranks touched the single shared file.
  EXPECT_EQ(__builtin_popcountll(result.files[0].rankMask), 10);
}

TEST(Simulator, RejectsInvalidConfig) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  PfsConfig bad;
  bad.osc_max_rpcs_in_flight = 100000;
  EXPECT_THROW((void)sim.run(job, bad, 1), std::invalid_argument);

  PfsConfig badDependent;
  badDependent.llite_max_read_ahead_mb = 64;
  badDependent.llite_max_read_ahead_per_file_mb = 64;  // must be <= half
  EXPECT_THROW((void)sim.run(job, badDependent, 1), std::invalid_argument);
}

TEST(Simulator, RejectsJobWithTooManyRanks) {
  PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 51;  // cluster has 50 slots
  opt.scale = 0.02;
  const JobSpec job = workloads::ior16m(opt);
  EXPECT_THROW((void)sim.run(job, PfsConfig{}, 1), std::invalid_argument);
}

TEST(Simulator, MetadataWorkloadProducesMetaRpcs) {
  PfsSimulator sim;
  auto opt = tinyOpts();
  const JobSpec job = workloads::mdworkbench(8 * util::kKiB, opt);
  const auto result = sim.run(job, PfsConfig{}, 3);
  EXPECT_GT(result.counters.metaRpcs, 100u);
  // Each file is created/stated/opened/unlinked 3 rounds.
  for (const auto& f : result.files) {
    EXPECT_EQ(f.creates, 3u);
    EXPECT_EQ(f.unlinks, 3u);
    EXPECT_EQ(f.stats, 3u);
  }
}

TEST(Simulator, NoiseHasUnitMean) {
  PfsSimulator sim;
  const JobSpec job = workloads::ior16m(tinyOpts());
  double noisy = 0.0;
  double raw = 0.0;
  for (std::uint64_t seed = 0; seed < 24; ++seed) {
    const auto r = sim.run(job, PfsConfig{}, seed);
    noisy += r.wallSeconds;
    raw += r.rawWallSeconds;
  }
  EXPECT_NEAR(noisy / raw, 1.0, 0.05);
}

TEST(Simulator, BarrierTimesExposePhaseStructure) {
  PfsSimulator sim;
  const JobSpec job = workloads::mdworkbench(8 * util::kKiB, tinyOpts());
  const auto result = sim.run(job, PfsConfig{}, 3);
  // MDWorkbench: 4 barriers per round x 3 rounds.
  ASSERT_EQ(result.barrierTimes.size(), 12u);
  for (std::size_t i = 1; i < result.barrierTimes.size(); ++i) {
    EXPECT_GE(result.barrierTimes[i], result.barrierTimes[i - 1]);
  }
  EXPECT_LE(result.barrierTimes.back(), result.rawWallSeconds + 1e-9);
}

// ------------------------------------------------------------- federated

pfs::ClusterSpec tinyFederatedCluster(std::uint32_t cells) {
  pfs::ClusterSpec cl;
  cl.name = "tiny-federated";
  cl.clientNodes = cells;  // one client node per cell
  cl.ranksPerNode = 2;
  cl.ossNodes = cells;  // one OSS (one OST) per cell
  cl.cells = cells;
  return cl;
}

// File-per-process job: each rank owns its file, so the partition into
// cells is clean (no file crosses a cell boundary).
JobSpec fppJob(std::uint32_t ranks) {
  JobSpec job;
  job.name = "fpp-federated";
  job.ranks.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto f = job.addFile("/fpp/rank" + std::to_string(r));
    auto& prog = job.ranks[r];
    prog.push_back(IoOp::create(f));
    for (int i = 0; i < 4; ++i) {
      prog.push_back(IoOp::write(f, static_cast<std::uint64_t>(i) * util::kMiB,
                                 util::kMiB));
    }
    prog.push_back(IoOp::fsync(f));
    prog.push_back(IoOp::barrier());
    for (int i = 0; i < 4; ++i) {
      prog.push_back(IoOp::read(f, static_cast<std::uint64_t>(i) * util::kMiB,
                                util::kMiB));
    }
    prog.push_back(IoOp::close(f));
  }
  return job;
}

void expectIdenticalResults(const pfs::RunResult& a, const pfs::RunResult& b) {
  EXPECT_DOUBLE_EQ(a.wallSeconds, b.wallSeconds);
  EXPECT_DOUBLE_EQ(a.rawWallSeconds, b.rawWallSeconds);
  EXPECT_DOUBLE_EQ(a.simEndSeconds, b.simEndSeconds);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.counters.dataRpcs, b.counters.dataRpcs);
  EXPECT_EQ(a.counters.metaRpcs, b.counters.metaRpcs);
  EXPECT_EQ(a.counters.writeRpcBytes, b.counters.writeRpcBytes);
  EXPECT_EQ(a.counters.readRpcBytes, b.counters.readRpcBytes);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.ranks[i].finishTime, b.ranks[i].finishTime) << "rank " << i;
    EXPECT_EQ(a.ranks[i].bytesWritten, b.ranks[i].bytesWritten) << "rank " << i;
  }
  EXPECT_EQ(a.barrierTimes, b.barrierTimes);
  ASSERT_EQ(a.audit.osts.size(), b.audit.osts.size());
  for (std::size_t i = 0; i < a.audit.osts.size(); ++i) {
    EXPECT_EQ(a.audit.osts[i].bytesWritten, b.audit.osts[i].bytesWritten) << "ost " << i;
    EXPECT_EQ(a.audit.osts[i].rpcsServed, b.audit.osts[i].rpcsServed) << "ost " << i;
  }
}

TEST(SimulatorFederated, BitIdenticalAcrossSchedulersAndShardCounts) {
  const JobSpec job = fppJob(8);
  const auto runWith = [&](sim::SchedulerKind scheduler, std::uint32_t shards) {
    PfsSimulator sim{{.cluster = tinyFederatedCluster(4),
                      .engine = {.scheduler = scheduler, .shards = shards}}};
    return sim.run(job, PfsConfig{}, 11);
  };
  const auto reference = runWith(sim::SchedulerKind::Calendar, 1);
  EXPECT_EQ(reference.outcome, pfs::RunOutcome::Ok);
  expectIdenticalResults(reference, runWith(sim::SchedulerKind::Heap, 1));
  expectIdenticalResults(reference, runWith(sim::SchedulerKind::Calendar, 2));
  expectIdenticalResults(reference, runWith(sim::SchedulerKind::Calendar, 4));
}

TEST(SimulatorFederated, ScattersStatsBackToGlobalIds) {
  const JobSpec job = fppJob(8);
  PfsSimulator sim{{.cluster = tinyFederatedCluster(4)}};
  const auto result = sim.run(job, PfsConfig{}, 5);
  ASSERT_EQ(result.outcome, pfs::RunOutcome::Ok);
  ASSERT_EQ(result.ranks.size(), 8u);
  ASSERT_EQ(result.files.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(result.ranks[i].bytesWritten, 4u * util::kMiB) << "rank " << i;
    EXPECT_EQ(result.files[i].bytesWritten, 4u * util::kMiB) << "file " << i;
    EXPECT_GT(result.ranks[i].finishTime, 0.0);
  }
  // Every cell's OST served its share (fsync before the barrier forces
  // writeout, so server bytes are nonzero in every cell).
  ASSERT_EQ(result.audit.osts.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(result.audit.osts[i].bytesWritten, 0u) << "ost " << i;
  }
  EXPECT_EQ(result.barrierTimes.size(), 1u);
}

TEST(SimulatorFederated, RejectsFileSharedAcrossCells) {
  // One shared file touched by every rank cannot be partitioned into
  // shared-nothing cells.
  workloads::WorkloadOptions opt;
  opt.ranks = 4;
  opt.scale = 0.02;
  const JobSpec job = workloads::ior16m(opt);
  PfsSimulator sim{{.cluster = tinyFederatedCluster(2)}};
  EXPECT_THROW((void)sim.run(job, PfsConfig{}, 1), std::invalid_argument);
}

TEST(SimulatorFederated, CappedRunTimesOutCleanlyAndLeavesNoResidue) {
  const JobSpec job = fppJob(4);
  const faults::FaultPlan plan = faults::parseFaultSpec("ost:*:degrade:0.5@0-1000000");
  PfsSimulator sim{{.cluster = tinyFederatedCluster(2), .faults = &plan}};
  // Cap mid-run while the degrade window is still open.
  const auto capped = sim.run(job, PfsConfig{}, 9, pfs::RunLimits{.maxSimSeconds = 1e-3});
  EXPECT_EQ(capped.outcome, pfs::RunOutcome::TimedOut);
  EXPECT_DOUBLE_EQ(capped.wallSeconds, 1e-3);
  // The abandoned measurement leaves nothing behind: a following uncapped
  // run is bit-identical to the same run on a fresh simulator.
  const auto after = sim.run(job, PfsConfig{}, 9);
  PfsSimulator fresh{{.cluster = tinyFederatedCluster(2), .faults = &plan}};
  const auto clean = fresh.run(job, PfsConfig{}, 9);
  EXPECT_EQ(after.outcome, pfs::RunOutcome::Ok);
  expectIdenticalResults(after, clean);
}

TEST(Simulator, ComputeOpsAddWallTime) {
  PfsSimulator sim;
  JobSpec job;
  job.name = "compute-only";
  job.ranks.resize(2);
  const auto f = job.addFile("/x");
  for (auto& prog : job.ranks) {
    prog.push_back(IoOp::compute(1.0));
    prog.push_back(IoOp::barrier());
  }
  job.ranks[0].insert(job.ranks[0].begin(), IoOp::create(f));
  const auto result = sim.run(job, PfsConfig{}, 1);
  EXPECT_GE(result.rawWallSeconds, 1.0);
  EXPECT_LT(result.rawWallSeconds, 1.5);
  EXPECT_DOUBLE_EQ(result.ranks[0].computeTime, 1.0);
}

}  // namespace
}  // namespace stellar

// PfsConfig: name-based access, JSON round-trip, bounds (including the
// dependent ranges the paper's expression mechanism exists for).
#include <gtest/gtest.h>

#include "pfs/params.hpp"

namespace stellar::pfs {
namespace {

TEST(Params, ThirteenTunableNames) {
  EXPECT_EQ(PfsConfig::tunableNames().size(), 13u);
}

TEST(Params, GetSetByName) {
  PfsConfig cfg;
  EXPECT_TRUE(cfg.set("osc.max_rpcs_in_flight", 64));
  EXPECT_EQ(cfg.osc_max_rpcs_in_flight, 64);
  EXPECT_EQ(cfg.get("osc.max_rpcs_in_flight"), 64);
  EXPECT_FALSE(cfg.set("bogus.parameter", 1));
  EXPECT_EQ(cfg.get("bogus.parameter"), std::nullopt);
}

TEST(Params, EveryTunableNameRoundTrips) {
  PfsConfig cfg;
  std::int64_t v = 2;
  for (const auto& name : PfsConfig::tunableNames()) {
    ASSERT_TRUE(cfg.set(name, v)) << name;
    EXPECT_EQ(cfg.get(name), v) << name;
    ++v;
  }
}

TEST(Params, JsonRoundTrip) {
  PfsConfig cfg;
  cfg.stripe_count = -1;
  cfg.stripe_size = 16 << 20;
  cfg.osc_checksums = true;
  const auto json = cfg.toJson();
  const PfsConfig back = PfsConfig::fromJson(json);
  EXPECT_EQ(back, cfg);
}

TEST(Params, FromJsonRejectsUnknownKeys) {
  auto json = util::Json::makeObject();
  json.set("not.a.param", util::Json{1});
  EXPECT_THROW((void)PfsConfig::fromJson(json), util::JsonError);
}

TEST(Params, DependentBoundsFollowOtherValues) {
  BoundsContext ctx;
  PfsConfig cfg;
  cfg.llite_max_read_ahead_mb = 100;
  auto bounds = paramBounds("llite.max_read_ahead_per_file_mb", cfg, ctx);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->max, 50);

  cfg.mdc_max_rpcs_in_flight = 10;
  bounds = paramBounds("mdc.max_mod_rpcs_in_flight", cfg, ctx);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->max, 9);
}

TEST(Params, ReadAheadBoundDependsOnClientRam) {
  PfsConfig cfg;
  BoundsContext ctx;
  ctx.clientRamMb = 1024;
  const auto bounds = paramBounds("llite.max_read_ahead_mb", cfg, ctx);
  ASSERT_TRUE(bounds.has_value());
  EXPECT_EQ(bounds->max, 512);
}

TEST(Params, ValidateFlagsViolations) {
  BoundsContext ctx;
  PfsConfig cfg;
  cfg.osc_max_rpcs_in_flight = 0;
  cfg.llite_max_read_ahead_per_file_mb = 1024;  // > half of 64
  const auto violations = validateConfig(cfg, ctx);
  EXPECT_EQ(violations.size(), 2u);
}

TEST(Params, ValidateRejectsStripeCountZero) {
  BoundsContext ctx;
  PfsConfig cfg;
  cfg.stripe_count = 0;
  EXPECT_FALSE(validateConfig(cfg, ctx).empty());
}

TEST(Params, ClampRepairsOutOfRangeValues) {
  BoundsContext ctx;
  PfsConfig cfg;
  cfg.stripe_count = 99;
  cfg.osc_max_pages_per_rpc = 1;
  cfg.llite_max_read_ahead_mb = 64;
  cfg.llite_max_read_ahead_per_file_mb = 512;
  const PfsConfig fixed = clampConfig(cfg, ctx);
  EXPECT_TRUE(validateConfig(fixed, ctx).empty());
  EXPECT_EQ(fixed.stripe_count, ctx.ostCount);
  EXPECT_EQ(fixed.osc_max_pages_per_rpc, 16);
  EXPECT_EQ(fixed.llite_max_read_ahead_per_file_mb, 32);
}

TEST(Params, DefaultConfigIsValid) {
  EXPECT_TRUE(validateConfig(PfsConfig{}, BoundsContext{}).empty());
}

TEST(Params, DiffAgainstReportsChanges) {
  PfsConfig base;
  PfsConfig changed = base;
  changed.stripe_count = -1;
  changed.osc_max_dirty_mb = 256;
  const std::string diff = changed.diffAgainst(base);
  EXPECT_NE(diff.find("lov.stripe_count: 1 -> -1"), std::string::npos);
  EXPECT_NE(diff.find("osc.max_dirty_mb: 32 -> 256"), std::string::npos);
  EXPECT_TRUE(base.diffAgainst(base).empty());
}

}  // namespace
}  // namespace stellar::pfs

// Calibration tests: the *shape* of the simulator's response surface is
// what makes the reproduction meaningful. Each test pins an ordering the
// Lustre manual (and the paper's tuning narratives) documents:
//
//  - striping across all OSTs speeds up large shared-file I/O a lot
//  - bigger RPCs help large sequential transfers
//  - stripe_count=1 beats wide striping for small-file metadata workloads
//  - a large lock LRU speeds up MDWorkbench-style re-access phases
//  - statahead accelerates stat scans
//  - readahead accelerates latency-bound sequential reads, not random ones
//  - dirty budget removes write round-trip stalls
//
// Configs are compared on noise-free rawWallSeconds averaged over several
// seeds (changing the config reorders RNG draws, which acts like a seed
// change); thresholds are orderings with margin, not absolute values.
#include <gtest/gtest.h>

#include <numeric>

#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar {
namespace {

using pfs::IoOp;
using pfs::JobSpec;
using pfs::PfsConfig;
using pfs::PfsSimulator;
using workloads::WorkloadOptions;

double runAvg(const pfs::JobSpec& job, const PfsConfig& cfg,
              const pfs::ClusterSpec& cluster = pfs::defaultCluster()) {
  PfsSimulator sim{{.cluster = cluster}};
  double total = 0.0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    total += sim.run(job, cfg, seed).rawWallSeconds;
  }
  return total / 3.0;
}

WorkloadOptions smallOpts(double scale = 0.05) {
  WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = scale;
  return opt;
}

TEST(ResponseSurface, WideStripingSpeedsUpLargeSharedWrites) {
  const auto job = workloads::ior16m(smallOpts());
  PfsConfig narrow;  // default stripe_count = 1
  PfsConfig wide = narrow;
  wide.stripe_count = -1;
  wide.stripe_size = 16 << 20;
  const double tNarrow = runAvg(job, narrow);
  const double tWide = runAvg(job, wide);
  EXPECT_GT(tNarrow / tWide, 2.0) << "narrow=" << tNarrow << " wide=" << tWide;
}

TEST(ResponseSurface, LargerRpcsHelpLargeSequentialTransfers) {
  const auto job = workloads::ior16m(smallOpts());
  PfsConfig small;
  small.stripe_count = -1;
  small.osc_max_pages_per_rpc = 64;  // 256 KiB
  PfsConfig large = small;
  large.osc_max_pages_per_rpc = 4096;  // 16 MiB
  const double tSmall = runAvg(job, small);
  const double tLarge = runAvg(job, large);
  EXPECT_GT(tSmall / tLarge, 1.15) << "small=" << tSmall << " large=" << tLarge;
}

TEST(ResponseSurface, WideStripingHurtsSmallFileCreates) {
  const auto job = workloads::mdworkbench(8 * util::kKiB, smallOpts(0.05));
  PfsConfig narrow;  // stripe_count = 1
  PfsConfig wide = narrow;
  wide.stripe_count = -1;
  const double tNarrow = runAvg(job, narrow);
  const double tWide = runAvg(job, wide);
  EXPECT_GT(tWide / tNarrow, 1.03) << "narrow=" << tNarrow << " wide=" << tWide;
}

TEST(ResponseSurface, LargeLockLruSpeedsUpMdWorkbench) {
  // At scale 0.1 each node touches ~4000 files, overflowing the dynamic
  // (~2000-entry) lock LRU; an explicit large lru_size keeps re-access
  // phases local.
  const auto job = workloads::mdworkbench(8 * util::kKiB, smallOpts(0.1));
  PfsConfig dynamic;  // lru_size = 0 -> dynamic
  dynamic.llite_statahead_max = 0;  // isolate the lock effect
  PfsConfig big = dynamic;
  big.ldlm_lru_size = 200000;
  const double tDynamic = runAvg(job, dynamic);
  const double tBig = runAvg(job, big);
  EXPECT_GT(tDynamic / tBig, 1.08) << "dynamic=" << tDynamic << " big=" << tBig;
}

// A directory stat scan over more files than the dynamic lock LRU holds:
// every stat misses and needs an MDS round trip; statahead (together with
// a raised mdc concurrency cap — statahead RPCs count against it) pipelines
// them, the `ls -l` acceleration the manual documents.
JobSpec statScanJob() {
  JobSpec job;
  job.name = "stat-scan";
  const std::uint32_t ranks = 50;
  job.ranks.resize(ranks);
  const std::uint32_t filesPerRank = 400;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto dir = job.addDir("/scan/rank" + std::to_string(r));
    auto& prog = job.ranks[r];
    prog.push_back(IoOp::mkdir(dir));
    std::vector<pfs::FileId> files;
    for (std::uint32_t f = 0; f < filesPerRank; ++f) {
      files.push_back(job.addFile(
          "/scan/rank" + std::to_string(r) + "/f" + std::to_string(f), dir));
    }
    for (const auto f : files) {
      prog.push_back(IoOp::create(f));
      prog.push_back(IoOp::close(f));
    }
    prog.push_back(IoOp::barrier());
    for (const auto f : files) {
      prog.push_back(IoOp::stat(f));
    }
  }
  return job;
}

TEST(ResponseSurface, StataheadSpeedsUpStatScans) {
  const auto job = statScanJob();
  PfsConfig off;
  off.llite_statahead_max = 0;
  PfsConfig on = off;
  on.llite_statahead_max = 512;
  on.mdc_max_rpcs_in_flight = 64;
  on.mdc_max_mod_rpcs_in_flight = 63;
  const double tOff = runAvg(job, off);
  const double tOn = runAvg(job, on);
  EXPECT_GT(tOff / tOn, 1.20) << "off=" << tOff << " on=" << tOn;
}

// A latency-bound sequential-read job: one rank per client node, each
// reading another node's file in small sequential chunks, one file per
// OST. This is where readahead pipelining pays off.
JobSpec crossReadJob(std::uint64_t chunk, bool randomize) {
  JobSpec job;
  job.name = "cross-read";
  const std::uint32_t ranks = 5;
  job.ranks.resize(ranks);
  const std::uint64_t fileBytes = 48 * util::kMiB;
  std::vector<pfs::FileId> files;
  for (std::uint32_t r = 0; r < ranks; ++r) {
    files.push_back(job.addFile("/cross/f" + std::to_string(r)));
  }
  util::Rng rng{99};
  for (std::uint32_t r = 0; r < ranks; ++r) {
    auto& prog = job.ranks[r];
    prog.push_back(IoOp::create(files[r]));
    for (std::uint64_t off = 0; off < fileBytes; off += 4 * util::kMiB) {
      prog.push_back(IoOp::write(files[r], off, 4 * util::kMiB));
    }
    prog.push_back(IoOp::fsync(files[r]));
    prog.push_back(IoOp::close(files[r]));
    prog.push_back(IoOp::barrier());
    const pfs::FileId other = files[(r + 1) % ranks];
    prog.push_back(IoOp::open(other));
    std::vector<std::uint64_t> order(fileBytes / chunk);
    std::iota(order.begin(), order.end(), 0);
    if (randomize) {
      util::Rng perRank{util::mix64(rng.next(), r)};
      perRank.shuffle(order);
    }
    for (const std::uint64_t i : order) {
      prog.push_back(IoOp::read(other, i * chunk, chunk));
    }
    prog.push_back(IoOp::close(other));
  }
  return job;
}

pfs::ClusterSpec oneRankPerNode() {
  pfs::ClusterSpec cluster;
  cluster.ranksPerNode = 1;
  return cluster;
}

TEST(ResponseSurface, ReadaheadSpeedsUpSequentialReads) {
  const auto job = crossReadJob(256 * util::kKiB, /*randomize=*/false);
  PfsConfig off;
  off.llite_max_read_ahead_mb = 0;
  off.llite_max_read_ahead_per_file_mb = 0;
  off.llite_max_read_ahead_whole_mb = 0;
  PfsConfig on;
  on.llite_max_read_ahead_mb = 512;
  on.llite_max_read_ahead_per_file_mb = 256;
  const double tOff = runAvg(job, off, oneRankPerNode());
  const double tOn = runAvg(job, on, oneRankPerNode());
  EXPECT_GT(tOff / tOn, 1.25) << "off=" << tOff << " on=" << tOn;
}

TEST(ResponseSurface, ReadaheadDoesNotHelpRandomReads) {
  const auto job = crossReadJob(256 * util::kKiB, /*randomize=*/true);
  PfsConfig off;
  off.llite_max_read_ahead_mb = 0;
  off.llite_max_read_ahead_per_file_mb = 0;
  off.llite_max_read_ahead_whole_mb = 0;
  PfsConfig on;
  on.llite_max_read_ahead_mb = 512;
  on.llite_max_read_ahead_per_file_mb = 256;
  const double tOff = runAvg(job, off, oneRankPerNode());
  const double tOn = runAvg(job, on, oneRankPerNode());
  EXPECT_NEAR(tOn / tOff, 1.0, 0.12) << "off=" << tOff << " on=" << tOn;
}

TEST(ResponseSurface, WideStripingSpeedsUpRandomSharedWrites) {
  const auto job = workloads::ior64k(smallOpts());
  PfsConfig narrow;
  PfsConfig wide = narrow;
  wide.stripe_count = -1;
  const double tNarrow = runAvg(job, narrow);
  const double tWide = runAvg(job, wide);
  EXPECT_GT(tNarrow / tWide, 1.8) << "narrow=" << tNarrow << " wide=" << tWide;
}

// One writer per node, one file per OST: with a tiny dirty budget every
// RPC-sized chunk stalls on a round trip; an ample budget pipelines.
JobSpec soloWriteJob() {
  JobSpec job;
  job.name = "solo-write";
  const std::uint32_t ranks = 5;
  job.ranks.resize(ranks);
  for (std::uint32_t r = 0; r < ranks; ++r) {
    const auto f = job.addFile("/solo/f" + std::to_string(r));
    auto& prog = job.ranks[r];
    prog.push_back(IoOp::create(f));
    for (std::uint64_t off = 0; off < 64 * util::kMiB; off += util::kMiB) {
      prog.push_back(IoOp::write(f, off, util::kMiB));
    }
    prog.push_back(IoOp::fsync(f));
    prog.push_back(IoOp::close(f));
  }
  return job;
}

TEST(ResponseSurface, DirtyCacheBudgetMatters) {
  const auto job = soloWriteJob();
  PfsConfig tiny;
  tiny.osc_max_dirty_mb = 1;
  PfsConfig ample = tiny;
  ample.osc_max_dirty_mb = 512;
  const double tTiny = runAvg(job, tiny, oneRankPerNode());
  const double tAmple = runAvg(job, ample, oneRankPerNode());
  EXPECT_GT(tTiny / tAmple, 1.10) << "tiny=" << tTiny << " ample=" << tAmple;
}

TEST(ResponseSurface, ChecksumsCostThroughput) {
  const auto job = workloads::ior16m(smallOpts());
  PfsConfig off;
  off.stripe_count = -1;
  PfsConfig on = off;
  on.osc_checksums = true;
  const double tOff = runAvg(job, off);
  const double tOn = runAvg(job, on);
  EXPECT_GT(tOn, tOff) << "off=" << tOff << " on=" << tOn;
}

TEST(ResponseSurface, MoreRpcsInFlightHelpRandomSmallIo) {
  const auto job = workloads::ior64k(smallOpts());
  PfsConfig low;
  low.stripe_count = -1;
  low.osc_max_rpcs_in_flight = 1;
  PfsConfig high = low;
  high.osc_max_rpcs_in_flight = 64;
  const double tLow = runAvg(job, low);
  const double tHigh = runAvg(job, high);
  EXPECT_GT(tLow / tHigh, 1.10) << "low=" << tLow << " high=" << tHigh;
}

TEST(ResponseSurface, ExpertConfigBeatsDefaultEverywhere) {
  // A generically sensible tuned config should beat Lustre defaults on all
  // benchmark workloads — the premise of the whole paper.
  PfsConfig iorTuned;
  iorTuned.stripe_count = -1;
  iorTuned.stripe_size = 16 << 20;
  iorTuned.osc_max_pages_per_rpc = 4096;
  iorTuned.osc_max_rpcs_in_flight = 32;
  iorTuned.osc_max_dirty_mb = 512;
  iorTuned.llite_max_read_ahead_mb = 1024;
  iorTuned.llite_max_read_ahead_per_file_mb = 512;

  PfsConfig mdwTuned;
  mdwTuned.ldlm_lru_size = 200000;
  mdwTuned.llite_statahead_max = 1024;
  mdwTuned.mdc_max_rpcs_in_flight = 64;
  mdwTuned.mdc_max_mod_rpcs_in_flight = 63;

  const std::vector<std::pair<const char*, PfsConfig>> cases = {
      {"IOR_64K", iorTuned},
      {"IOR_16M", iorTuned},
      {"MDWorkbench_2K", mdwTuned},
      {"MDWorkbench_8K", mdwTuned},
  };
  for (const auto& [name, tuned] : cases) {
    const auto job = workloads::byName(name, smallOpts(0.08));
    const double tDefault = runAvg(job, PfsConfig{});
    const double tTuned = runAvg(job, tuned);
    EXPECT_GT(tDefault / tTuned, 1.10) << name << " default=" << tDefault
                                       << " tuned=" << tTuned;
  }
}

}  // namespace
}  // namespace stellar

// Unit tests for the client-side cache state machines.
#include <gtest/gtest.h>

#include "pfs/client_cache.hpp"
#include "pfs/readahead.hpp"

namespace stellar::pfs {
namespace {

// ----------------------------------------------------------- DirtyTracker

TEST(DirtyTracker, ReservesWithinBudget) {
  DirtyTracker d{100};
  EXPECT_TRUE(d.tryReserve(60));
  EXPECT_EQ(d.dirtyBytes(), 60u);
  EXPECT_FALSE(d.tryReserve(60));
  EXPECT_TRUE(d.tryReserve(40));
  EXPECT_EQ(d.freeBytes(), 0u);
}

TEST(DirtyTracker, ReleaseWakesWaitersFifo) {
  DirtyTracker d{100};
  ASSERT_TRUE(d.tryReserve(100));
  std::vector<int> fired;
  d.waitForSpace(50, [&] { fired.push_back(1); });
  d.waitForSpace(50, [&] { fired.push_back(2); });
  d.release(40);  // only 40 free: nobody admitted
  EXPECT_TRUE(fired.empty());
  d.release(60);  // 100 free: both admitted in order
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(d.dirtyBytes(), 100u);  // both reservations charged
}

TEST(DirtyTracker, OversizedWriteAdmittedWhenEmpty) {
  DirtyTracker d{10};
  EXPECT_TRUE(d.tryReserve(50));  // empty tracker: oversized allowed
  EXPECT_FALSE(d.tryReserve(1));
  bool fired = false;
  d.waitForSpace(50, [&] { fired = true; });
  d.release(50);
  EXPECT_TRUE(fired);  // oversized waiter admitted once drained
}

TEST(DirtyTracker, NewRequestsQueueBehindWaiters) {
  DirtyTracker d{100};
  ASSERT_TRUE(d.tryReserve(90));
  bool fired = false;
  d.waitForSpace(20, [&] { fired = true; });
  // 10 bytes are free, but FIFO fairness blocks late arrivals.
  EXPECT_FALSE(d.tryReserve(5));
  d.release(90);
  EXPECT_TRUE(fired);
}

// -------------------------------------------------------------- DirtyBank

TEST(DirtyBank, LanesShareBudgetScalarButNotState) {
  DirtyBank bank;
  bank.configure(/*lanes=*/3, /*budgetBytes=*/100);
  EXPECT_TRUE(bank.tryReserve(0, 100));
  // Lane 0 full; lane 2 untouched.
  EXPECT_FALSE(bank.tryReserve(0, 1));
  EXPECT_TRUE(bank.tryReserve(2, 100));
  EXPECT_EQ(bank.dirtyBytes(0), 100u);
  EXPECT_EQ(bank.dirtyBytes(1), 0u);
  EXPECT_EQ(bank.dirtyBytes(2), 100u);
  bank.release(0, 100);
  EXPECT_EQ(bank.dirtyBytes(0), 0u);
  EXPECT_EQ(bank.peakDirtyBytes(0), 100u);
  EXPECT_EQ(bank.maxReservationBytes(2), 100u);
}

TEST(DirtyBank, ReleaseOnOneLaneNeverWakesAnother) {
  DirtyBank bank;
  bank.configure(2, 100);
  ASSERT_TRUE(bank.tryReserve(0, 100));
  ASSERT_TRUE(bank.tryReserve(1, 100));
  bool laneOneWoke = false;
  bank.waitForSpace(1, 50, [&] { laneOneWoke = true; });
  bank.release(0, 100);
  EXPECT_FALSE(laneOneWoke);
  EXPECT_EQ(bank.waiterCount(1), 1u);
  bank.release(1, 100);
  EXPECT_TRUE(laneOneWoke);
  EXPECT_EQ(bank.waiterCount(1), 0u);
}

TEST(DirtyBank, AdmissionSurvivesCrossLaneReentrancy) {
  // A woken waiter immediately queues on a *different* lane — the map of
  // waiter queues grows mid-admission. Both admissions must still land.
  DirtyBank bank;
  bank.configure(4, 100);
  ASSERT_TRUE(bank.tryReserve(0, 100));
  ASSERT_TRUE(bank.tryReserve(3, 100));
  std::vector<int> fired;
  bank.waitForSpace(0, 60, [&] {
    fired.push_back(0);
    bank.waitForSpace(3, 60, [&] { fired.push_back(3); });
  });
  bank.release(0, 100);
  EXPECT_EQ(fired, (std::vector<int>{0}));
  bank.release(3, 100);
  EXPECT_EQ(fired, (std::vector<int>{0, 3}));
  EXPECT_EQ(bank.dirtyBytes(0), 60u);
  EXPECT_EQ(bank.dirtyBytes(3), 60u);
}

TEST(DirtyBank, DifferentialAgainstScalarTrackerOnEveryLane) {
  // The bank is the SoA form of N independent DirtyTrackers. Replay one
  // deterministic pseudo-random op trace against both representations and
  // require identical admissions, wake order, and accounting per lane.
  constexpr std::size_t kLanes = 3;
  constexpr std::uint64_t kBudget = 128;
  DirtyBank bank;
  bank.configure(kLanes, kBudget);
  std::vector<DirtyTracker> scalars;
  for (std::size_t i = 0; i < kLanes; ++i) {
    scalars.emplace_back(kBudget);
  }
  std::vector<std::vector<int>> bankWakes(kLanes);
  std::vector<std::vector<int>> scalarWakes(kLanes);
  std::vector<std::vector<std::uint64_t>> outstanding(kLanes);  // for releases

  std::uint64_t x = 0x9E3779B97F4A7C15ULL;  // fixed-seed xorshift trace
  const auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  for (int step = 0; step < 400; ++step) {
    const std::size_t lane = next() % kLanes;
    const std::uint64_t bytes = 1 + next() % 160;  // sometimes oversized
    switch (next() % 3) {
      case 0: {
        const bool a = bank.tryReserve(lane, bytes);
        const bool b = scalars[lane].tryReserve(bytes);
        ASSERT_EQ(a, b) << "step " << step;
        if (a) {
          outstanding[lane].push_back(bytes);
        }
        break;
      }
      case 1: {
        bank.waitForSpace(lane, bytes, [&bankWakes, &outstanding, lane, bytes, step] {
          bankWakes[lane].push_back(step);
          outstanding[lane].push_back(bytes);
        });
        scalars[lane].waitForSpace(
            bytes, [&scalarWakes, lane, step] { scalarWakes[lane].push_back(step); });
        break;
      }
      default: {
        if (!outstanding[lane].empty()) {
          const std::uint64_t freed = outstanding[lane].back();
          outstanding[lane].pop_back();
          bank.release(lane, freed);
          scalars[lane].release(freed);
        }
        break;
      }
    }
    ASSERT_EQ(bank.dirtyBytes(lane), scalars[lane].dirtyBytes()) << "step " << step;
    ASSERT_EQ(bank.waiterCount(lane), scalars[lane].waiterCount()) << "step " << step;
  }
  for (std::size_t lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(bankWakes[lane], scalarWakes[lane]) << "lane " << lane;
    EXPECT_EQ(bank.peakDirtyBytes(lane), scalars[lane].peakDirtyBytes());
    EXPECT_EQ(bank.maxReservationBytes(lane), scalars[lane].maxReservationBytes());
  }
}

// --------------------------------------------------------- ReadAheadCache

TEST(ReadAheadCache, QueryReportsMissingRanges) {
  ReadAheadCache ra{1 << 20};
  auto cov = ra.query(1, 0, 1000);
  ASSERT_EQ(cov.missing.size(), 1u);
  EXPECT_EQ(cov.missing[0], (std::pair<std::uint64_t, std::uint64_t>{0, 1000}));
  EXPECT_TRUE(cov.pending.empty());
}

TEST(ReadAheadCache, PendingChunksReportedUntilReady) {
  ReadAheadCache ra{1 << 20};
  CacheChunk* chunk = ra.insertPending(1, 0, 512);
  auto cov = ra.query(1, 0, 512);
  EXPECT_TRUE(cov.missing.empty());
  ASSERT_EQ(cov.pending.size(), 1u);
  ra.markReady(chunk);
  cov = ra.query(1, 0, 512);
  EXPECT_TRUE(cov.fullyReady());
}

TEST(ReadAheadCache, PartialCoverageSplitsMissing) {
  ReadAheadCache ra{1 << 20};
  ra.markReady(ra.insertPending(7, 100, 200));
  ra.markReady(ra.insertPending(7, 300, 400));
  const auto cov = ra.query(7, 0, 500);
  ASSERT_EQ(cov.missing.size(), 3u);
  EXPECT_EQ(cov.missing[0], (std::pair<std::uint64_t, std::uint64_t>{0, 100}));
  EXPECT_EQ(cov.missing[1], (std::pair<std::uint64_t, std::uint64_t>{200, 300}));
  EXPECT_EQ(cov.missing[2], (std::pair<std::uint64_t, std::uint64_t>{400, 500}));
}

TEST(ReadAheadCache, ConsumeRefundsBudgetAndErasesChunks) {
  ReadAheadCache ra{1000};
  CacheChunk* chunk = ra.insertPending(1, 0, 600);
  EXPECT_EQ(ra.outstanding(), 600u);
  EXPECT_EQ(ra.freeBudget(), 400u);
  ra.markReady(chunk);
  ra.consume(1, 0, 300);
  EXPECT_EQ(ra.outstanding(), 300u);
  EXPECT_EQ(ra.chunkCount(1), 1u);  // partially consumed, still present
  ra.consume(1, 300, 600);
  EXPECT_EQ(ra.outstanding(), 0u);
  EXPECT_EQ(ra.chunkCount(1), 0u);
}

TEST(ReadAheadCache, DropFileRefundsAndReturnsOrphans) {
  ReadAheadCache ra{1000};
  CacheChunk* chunk = ra.insertPending(1, 0, 500);
  bool waiterCalled = false;
  chunk->waiters.push_back([&] { waiterCalled = true; });
  auto orphans = ra.dropFile(1);
  EXPECT_EQ(ra.outstanding(), 0u);
  ASSERT_EQ(orphans.size(), 1u);
  EXPECT_FALSE(waiterCalled);
  orphans[0]();
  EXPECT_TRUE(waiterCalled);
  EXPECT_EQ(ra.find(1, 0), nullptr);
}

TEST(ReadAheadCache, FindLocatesChunkByBegin) {
  ReadAheadCache ra{1000};
  ra.insertPending(3, 128, 256);
  EXPECT_NE(ra.find(3, 128), nullptr);
  EXPECT_EQ(ra.find(3, 0), nullptr);
  EXPECT_EQ(ra.find(4, 128), nullptr);
}

// ----------------------------------------------------------------- LockLru

TEST(LockLru, HitRefreshesMissInsertsNothing) {
  LockLru lru{4, 100.0};
  EXPECT_FALSE(lru.touch(1, 0.0));
  lru.insert(1, 0.0);
  EXPECT_TRUE(lru.touch(1, 1.0));
  EXPECT_EQ(lru.hits(), 1u);
  EXPECT_EQ(lru.misses(), 1u);
}

TEST(LockLru, EvictsLeastRecentlyUsed) {
  LockLru lru{2, 1000.0};
  lru.insert(1, 0.0);
  lru.insert(2, 0.0);
  EXPECT_TRUE(lru.touch(1, 1.0));  // 1 becomes MRU
  lru.insert(3, 2.0);              // evicts 2
  EXPECT_TRUE(lru.touch(1, 3.0));
  EXPECT_FALSE(lru.touch(2, 3.0));
  EXPECT_TRUE(lru.touch(3, 3.0));
}

TEST(LockLru, TtlExpiresEntries) {
  LockLru lru{10, 50.0};
  lru.insert(1, 0.0);
  EXPECT_TRUE(lru.touch(1, 49.0));   // refreshed at 49
  EXPECT_TRUE(lru.touch(1, 98.0));   // within 50 of refresh
  EXPECT_FALSE(lru.touch(1, 200.0)); // expired
  EXPECT_EQ(lru.size(), 0u);
}

TEST(LockLru, ZeroCapacitySelectsDynamicSizing) {
  LockLru lru{0, 1000.0};
  EXPECT_EQ(lru.effectiveCapacity(), LockLru::kDynamicCapacity);
  for (FileId f = 0; f < LockLru::kDynamicCapacity + 100; ++f) {
    lru.insert(f, 0.0);
  }
  EXPECT_EQ(lru.size(), LockLru::kDynamicCapacity);
}

TEST(LockLru, EraseRemovesLock) {
  LockLru lru{4, 100.0};
  lru.insert(9, 0.0);
  lru.erase(9);
  EXPECT_FALSE(lru.touch(9, 1.0));
  lru.erase(9);  // idempotent
}

TEST(LockLru, ReconfigureShrinksToCapacity) {
  LockLru lru{8, 100.0};
  for (FileId f = 0; f < 8; ++f) {
    lru.insert(f, 0.0);
  }
  lru.configure(3, 100.0);
  EXPECT_EQ(lru.size(), 3u);
}

// ------------------------------------------------------------ ReadaWindow

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

ReadaheadKnobs defaultKnobs() {
  ReadaheadKnobs k;
  k.clientBudgetBytes = 64 * kMiB;
  k.perFileBytes = 32 * kMiB;
  k.wholeFileBytes = 2 * kMiB;
  k.alignBytes = kMiB;
  return k;
}

}  // namespace

TEST(ReadaWindow, OpensAtInitialSizeWithAlignedEdge) {
  ReadaWindow w;
  const ReadaheadKnobs k = defaultKnobs();
  // First read of 256 KiB at offset 0 on a 16 MiB file.
  const ReadaDecision d = advanceWindow(w, k, /*sequential=*/false,
                                        /*firstRead=*/true,
                                        /*sizeKnownLocally=*/true, 0,
                                        256 * kKiB, 16 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::Opened);
  EXPECT_EQ(w.length, ReadaWindow::kInitialBytes);
  EXPECT_FALSE(w.wholeMode);
  EXPECT_EQ(d.prefetchBegin, 0u);
  // readEnd + window = 512 KiB, rounded up to the 1 MiB RPC edge.
  EXPECT_EQ(d.prefetchEnd, kMiB);
}

TEST(ReadaWindow, DoublesOnSequentialHitsUpToPerFileCap) {
  ReadaWindow w;
  ReadaheadKnobs k = defaultKnobs();
  k.perFileBytes = kMiB;
  (void)advanceWindow(w, k, false, true, true, 0, 256 * kKiB, 16 * kMiB);
  std::uint64_t readEnd = 512 * kKiB;
  ReadaDecision d =
      advanceWindow(w, k, true, false, true, 256 * kKiB, readEnd, 16 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::Grown);
  EXPECT_EQ(w.length, 512 * kKiB);
  d = advanceWindow(w, k, true, false, true, readEnd, readEnd + 256 * kKiB,
                    16 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::Grown);
  EXPECT_EQ(w.length, kMiB);  // saturated at the per-file cap
  // Saturated growth is no longer a Grown event, but still prefetches.
  d = advanceWindow(w, k, true, false, true, readEnd + 256 * kKiB,
                    readEnd + 512 * kKiB, 16 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::None);
  EXPECT_EQ(w.length, kMiB);
  EXPECT_TRUE(d.wantsPrefetch());
}

TEST(ReadaWindow, MissResetsWindowAndSkipsPrefetch) {
  ReadaWindow w;
  const ReadaheadKnobs k = defaultKnobs();
  (void)advanceWindow(w, k, false, true, true, 0, 256 * kKiB, 16 * kMiB);
  (void)advanceWindow(w, k, true, false, true, 256 * kKiB, 512 * kKiB,
                      16 * kMiB);
  ASSERT_GT(w.length, ReadaWindow::kInitialBytes);
  const ReadaDecision d =
      advanceWindow(w, k, false, false, true, 8 * kMiB, 8 * kMiB + 256 * kKiB,
                    16 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::Reset);
  EXPECT_EQ(w.length, ReadaWindow::kInitialBytes);
  EXPECT_FALSE(d.wantsPrefetch());
}

TEST(ReadaWindow, WholeFileModeTriggersAtCutoverAndParks) {
  ReadaWindow w;
  const ReadaheadKnobs k = defaultKnobs();
  // Exactly at the cutover: whole-file shot covering the file, no rounding.
  ReadaDecision d =
      advanceWindow(w, k, false, true, true, 0, 256 * kKiB, 2 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::Opened);
  EXPECT_TRUE(w.wholeMode);
  EXPECT_EQ(d.prefetchEnd, 2 * kMiB);
  // Parked: later sequential reads neither grow nor prefetch.
  d = advanceWindow(w, k, true, false, true, 256 * kKiB, 512 * kKiB, 2 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::None);
  EXPECT_FALSE(d.wantsPrefetch());
}

TEST(ReadaWindow, OneByteOverCutoverStaysWindowed) {
  ReadaWindow w;
  const ReadaheadKnobs k = defaultKnobs();
  const ReadaDecision d =
      advanceWindow(w, k, false, true, true, 0, 256 * kKiB, 2 * kMiB + 1);
  EXPECT_EQ(d.event, ReadaEvent::Opened);
  EXPECT_FALSE(w.wholeMode);
  EXPECT_EQ(d.prefetchEnd, kMiB);  // windowed ramp, not the whole file
}

TEST(ReadaWindow, WholeFileModeRequiresLocallyKnownSize) {
  ReadaWindow w;
  const ReadaheadKnobs k = defaultKnobs();
  // Without a cached lock (statahead/open would prime one) the client
  // cannot trust the size: fall back to the windowed ramp.
  const ReadaDecision d =
      advanceWindow(w, k, false, true, /*sizeKnownLocally=*/false, 0,
                    256 * kKiB, 2 * kMiB);
  EXPECT_FALSE(w.wholeMode);
  EXPECT_EQ(w.length, ReadaWindow::kInitialBytes);
  EXPECT_EQ(d.prefetchEnd, kMiB);
}

TEST(ReadaWindow, SpeculationClampsAtKnownEof) {
  ReadaWindow w;
  const ReadaheadKnobs k = defaultKnobs();
  // First read of the final chunk: nothing beyond EOF to speculate on.
  const ReadaDecision d = advanceWindow(w, k, false, true, true,
                                        16 * kMiB - 256 * kKiB, 16 * kMiB,
                                        16 * kMiB);
  EXPECT_EQ(d.prefetchEnd, 16 * kMiB);
}

TEST(ReadaWindow, DisabledKnobsNeverPrefetch) {
  ReadaWindow w;
  ReadaheadKnobs k = defaultKnobs();
  k.clientBudgetBytes = 0;
  const ReadaDecision d =
      advanceWindow(w, k, false, true, true, 0, 256 * kKiB, 16 * kMiB);
  EXPECT_EQ(d.event, ReadaEvent::None);
  EXPECT_FALSE(d.wantsPrefetch());
  EXPECT_EQ(w.length, 0u);
}

// --------------------------------------------------- ReadAheadCache totals

TEST(ReadAheadCache, LifetimeTotalsObeyConservation) {
  ReadAheadCache ra{10 * kMiB};
  const auto conserved = [&ra] {
    return ra.prefetchedBytes() ==
           ra.consumedBytes() + ra.discardedBytes() + ra.residentBytes();
  };

  CacheChunk* a = ra.insertPending(1, 0, kMiB);
  CacheChunk* b = ra.insertPending(1, kMiB, 2 * kMiB);
  (void)ra.insertPending(2, 0, 512 * kKiB);
  EXPECT_EQ(ra.prefetchedBytes(), 2 * kMiB + 512 * kKiB);
  EXPECT_EQ(ra.residentBytes(), ra.prefetchedBytes());
  EXPECT_TRUE(conserved());

  ra.markReady(a);
  ra.markReady(b);
  ra.consume(1, 0, kMiB + 256 * kKiB);  // all of a, a quarter of b
  EXPECT_EQ(ra.consumedBytes(), kMiB + 256 * kKiB);
  EXPECT_TRUE(conserved());

  // Re-consuming the same range is idempotent (high-water-mark math).
  ra.consume(1, kMiB, kMiB + 256 * kKiB);
  EXPECT_EQ(ra.consumedBytes(), kMiB + 256 * kKiB);
  EXPECT_TRUE(conserved());

  // Dropping file 1 discards b's unconsumed remainder; file 2's pending
  // chunk is untouched and stays resident.
  (void)ra.dropFile(1);
  EXPECT_EQ(ra.discardedBytes(), 768 * kKiB);
  EXPECT_EQ(ra.residentBytes(), 512 * kKiB);
  EXPECT_TRUE(conserved());

  (void)ra.dropFile(2);
  EXPECT_EQ(ra.residentBytes(), 0u);
  EXPECT_TRUE(conserved());
}

// ---------------------------------------------------------- WritebackBank

TEST(WritebackBank, DrainCoalescesContiguousRunsIntoRpcCuts) {
  WritebackBank wb;
  wb.configure(1);
  // Out-of-order contiguous segments of one file plus a stray second file.
  wb.append(0, /*file=*/5, 2 * kMiB, kMiB);
  wb.append(0, 5, 0, kMiB);
  wb.append(0, 5, kMiB, kMiB);
  wb.append(0, 9, 0, 256 * kKiB);
  EXPECT_EQ(wb.pendingBytes(0), 3 * kMiB + 256 * kKiB);

  std::vector<std::tuple<FileId, std::uint64_t, std::uint64_t>> rpcs;
  const std::uint64_t drained =
      wb.drain(0, /*fileOnly=*/false, 0, /*maxRpcBytes=*/2 * kMiB,
               [&rpcs](FileId f, std::uint64_t off, std::uint64_t len) {
                 rpcs.emplace_back(f, off, len);
               });
  EXPECT_EQ(drained, 3 * kMiB + 256 * kKiB);
  EXPECT_EQ(wb.pendingBytes(0), 0u);
  // File 5's three segments coalesce into one 3 MiB run cut at 2 MiB.
  ASSERT_EQ(rpcs.size(), 3u);
  EXPECT_EQ(rpcs[0], std::make_tuple(FileId{5}, std::uint64_t{0}, 2 * kMiB));
  EXPECT_EQ(rpcs[1], std::make_tuple(FileId{5}, 2 * kMiB, kMiB));
  EXPECT_EQ(rpcs[2], std::make_tuple(FileId{9}, std::uint64_t{0}, 256 * kKiB));
}

TEST(WritebackBank, FileOnlyDrainLeavesOtherFilesQueued) {
  WritebackBank wb;
  wb.configure(2);
  wb.append(1, 5, 0, kMiB);
  wb.append(1, 9, 0, 512 * kKiB);
  wb.append(1, 5, kMiB, kMiB);

  std::vector<FileId> drainedFiles;
  const std::uint64_t drained =
      wb.drain(1, /*fileOnly=*/true, 5, 4 * kMiB,
               [&drainedFiles](FileId f, std::uint64_t, std::uint64_t) {
                 drainedFiles.push_back(f);
               });
  EXPECT_EQ(drained, 2 * kMiB);
  EXPECT_EQ(drainedFiles, (std::vector<FileId>{5}));  // one coalesced RPC
  EXPECT_EQ(wb.pendingBytes(1), 512 * kKiB);

  // The stray file is still there and drains later.
  drainedFiles.clear();
  (void)wb.drain(1, false, 0, 4 * kMiB,
                 [&drainedFiles](FileId f, std::uint64_t, std::uint64_t) {
                   drainedFiles.push_back(f);
                 });
  EXPECT_EQ(drainedFiles, (std::vector<FileId>{9}));
}

TEST(WritebackBank, DiscardFileDropsOnlyThatFile) {
  WritebackBank wb;
  wb.configure(1);
  wb.append(0, 5, 0, kMiB);
  wb.append(0, 9, 0, 512 * kKiB);
  EXPECT_EQ(wb.discardFile(0, 5), kMiB);
  EXPECT_EQ(wb.pendingBytes(0), 512 * kKiB);
  EXPECT_EQ(wb.discardFile(0, 5), 0u);
}

}  // namespace
}  // namespace stellar::pfs

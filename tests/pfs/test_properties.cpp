// Property-style sweeps over the whole (workload x configuration) space:
// invariants that must hold for ANY valid configuration on ANY workload.
#include <gtest/gtest.h>

#include "pfs/simulator.hpp"
#include "util/rng.hpp"
#include "workloads/workloads.hpp"

namespace stellar {
namespace {

using pfs::PfsConfig;
using pfs::PfsSimulator;

workloads::WorkloadOptions tinyOpts() {
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  return opt;
}

/// Deterministic "random" valid configuration.
PfsConfig randomValidConfig(util::Rng& rng, const pfs::BoundsContext& ctx) {
  PfsConfig cfg;
  for (const std::string& name : PfsConfig::tunableNames()) {
    const auto bounds = pfs::paramBounds(name, cfg, ctx);
    if (!bounds) {
      continue;
    }
    (void)cfg.set(name, rng.uniformInt(bounds->min, bounds->max));
  }
  cfg = pfs::clampConfig(cfg, ctx);
  if (cfg.stripe_count == 0) {
    cfg.stripe_count = 1;
  }
  return cfg;
}

std::uint64_t expectedBytesWritten(const pfs::JobSpec& job) {
  std::uint64_t total = 0;
  for (const auto& program : job.ranks) {
    for (const auto& op : program) {
      if (op.kind == pfs::OpKind::Write) {
        total += op.size;
      }
    }
  }
  return total;
}

class WorkloadSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSweep, RunsToCompletionUnderRandomValidConfigs) {
  PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName(GetParam(), tinyOpts());
  // util::hash64 (not std::hash): the seed must be identical on every
  // standard library or the sweep explores different configs per platform.
  util::Rng rng{util::mix64(util::hash64(GetParam()), 1)};
  for (int trial = 0; trial < 4; ++trial) {
    const PfsConfig cfg = randomValidConfig(rng, sim.boundsContext());
    const pfs::RunResult result = sim.run(job, cfg, 100 + trial);
    EXPECT_GT(result.rawWallSeconds, 0.0);
    // Work conservation: bytes written match the op stream exactly,
    // independent of configuration.
    EXPECT_DOUBLE_EQ(result.totalBytesWritten(),
                     static_cast<double>(expectedBytesWritten(job)));
  }
}

TEST_P(WorkloadSweep, CountersAreInternallyConsistent) {
  PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName(GetParam(), tinyOpts());
  const pfs::RunResult result = sim.run(job, PfsConfig{}, 9);
  for (const pfs::FileStats& fs : result.files) {
    EXPECT_LE(fs.seqReads, fs.readOps);
    EXPECT_LE(fs.seqWrites, fs.writeOps);
    if (fs.writeOps + fs.readOps > 0) {
      EXPECT_GT(fs.maxAccess, 0u);
      EXPECT_LE(fs.minAccess, fs.maxAccess);
      EXPECT_GT(fs.rankMask, 0u);
      EXPECT_EQ(fs.commonAccessSize() == 0, false);
    }
    EXPECT_GE(fs.readTime, 0.0);
    EXPECT_GE(fs.writeTime, 0.0);
    EXPECT_GE(fs.metaTime, 0.0);
  }
  for (const pfs::RankStats& rs : result.ranks) {
    EXPECT_GE(rs.finishTime, 0.0);
    EXPECT_LE(rs.finishTime, result.rawWallSeconds + 1e-9);
  }
  // Lock traffic implies metadata traffic (not vice versa: a pure
  // create/write workload queries no locks).
  if (result.counters.lockHits + result.counters.lockMisses > 0) {
    EXPECT_GT(result.counters.metaRpcs, 0u);
  }
}

TEST_P(WorkloadSweep, DefaultNeverBeatsTheOrderedTunedConfigBadly) {
  // Sanity floor: a sensibly tuned config is never catastrophically worse
  // than default on any workload (the agent would revert it anyway; the
  // simulator should not reward nonsense).
  PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName(GetParam(), tinyOpts());
  PfsConfig tuned;
  tuned.stripe_count = -1;
  tuned.osc_max_rpcs_in_flight = 32;
  tuned.osc_max_dirty_mb = 256;
  tuned.llite_statahead_max = 1024;
  tuned.mdc_max_rpcs_in_flight = 64;
  tuned.mdc_max_mod_rpcs_in_flight = 63;
  tuned.ldlm_lru_size = 200000;
  const double tDefault = sim.run(job, PfsConfig{}, 3).rawWallSeconds;
  const double tTuned = sim.run(job, tuned, 3).rawWallSeconds;
  EXPECT_LT(tTuned, tDefault * 1.6) << GetParam();
}

TEST_P(WorkloadSweep, SeedPerturbsWithinNoiseBand) {
  PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName(GetParam(), tinyOpts());
  std::vector<double> walls;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    walls.push_back(sim.run(job, PfsConfig{}, seed).rawWallSeconds);
  }
  const double lo = *std::min_element(walls.begin(), walls.end());
  const double hi = *std::max_element(walls.begin(), walls.end());
  EXPECT_LT(hi / lo, 1.35) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSweep,
                         ::testing::Values("IOR_64K", "IOR_16M", "MDWorkbench_2K",
                                           "MDWorkbench_8K", "IO500", "AMReX",
                                           "MACSio_512K", "MACSio_16M"),
                         [](const auto& info) { return info.param; });

// --------- parameter monotonic-sanity sweeps (each knob, extreme values) --

class KnobSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(KnobSweep, ExtremeValuesNeverDeadlockOrExplode) {
  PfsSimulator sim;
  const pfs::JobSpec job = workloads::byName("IO500", tinyOpts());
  const double base = sim.run(job, PfsConfig{}, 5).rawWallSeconds;
  for (const bool high : {false, true}) {
    PfsConfig cfg;
    const auto bounds = pfs::paramBounds(GetParam(), cfg, sim.boundsContext());
    ASSERT_TRUE(bounds.has_value());
    (void)cfg.set(GetParam(), high ? bounds->max : bounds->min);
    cfg = pfs::clampConfig(cfg, sim.boundsContext());
    if (cfg.stripe_count == 0) {
      cfg.stripe_count = 1;
    }
    const double t = sim.run(job, cfg, 5).rawWallSeconds;
    EXPECT_GT(t, 0.0);
    // One knob at an extreme may hurt, but within an order of magnitude.
    EXPECT_LT(t, base * 10.0) << GetParam() << (high ? " max" : " min");
  }
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, KnobSweep,
                         ::testing::ValuesIn(pfs::PfsConfig::tunableNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace stellar

#include <gtest/gtest.h>

#include "dataframe/dataframe.hpp"

namespace stellar::df {
namespace {

DataFrame sample() {
  DataFrame frame;
  frame.addColumn("file", ColumnType::String);
  frame.addColumn("rank", ColumnType::Int64);
  frame.addColumn("bytes", ColumnType::Double);
  frame.appendRow({std::string{"/a"}, std::int64_t{0}, 100.0});
  frame.appendRow({std::string{"/b"}, std::int64_t{1}, 200.0});
  frame.appendRow({std::string{"/c"}, std::int64_t{0}, 300.0});
  frame.appendRow({std::string{"/d"}, std::int64_t{2}, 400.0});
  return frame;
}

TEST(DataFrame, BasicShapeAndAccess) {
  const DataFrame frame = sample();
  EXPECT_EQ(frame.rowCount(), 4u);
  EXPECT_EQ(frame.columnCount(), 3u);
  EXPECT_TRUE(frame.hasColumn("rank"));
  EXPECT_FALSE(frame.hasColumn("nope"));
  EXPECT_EQ(toString(frame.at("file", 1)), "/b");
  EXPECT_EQ(*asNumber(frame.at("bytes", 3)), 400.0);
}

TEST(DataFrame, AppendRowValidatesWidthAndTypes) {
  DataFrame frame = sample();
  EXPECT_THROW(frame.appendRow({std::string{"/x"}}), DataFrameError);
  EXPECT_THROW(frame.appendRow({std::int64_t{1}, std::int64_t{1}, 1.0}), DataFrameError);
}

TEST(DataFrame, IntPromotesToDoubleColumn) {
  DataFrame frame;
  frame.addColumn("v", ColumnType::Double);
  frame.appendRow({std::int64_t{7}});
  EXPECT_DOUBLE_EQ(*asNumber(frame.at("v", 0)), 7.0);
}

TEST(DataFrame, DuplicateColumnRejected) {
  DataFrame frame;
  frame.addColumn("x", ColumnType::Int64);
  EXPECT_THROW(frame.addColumn("x", ColumnType::Double), DataFrameError);
}

TEST(DataFrame, FilterKeepsMatchingRows) {
  const DataFrame frame = sample();
  const DataFrame zeros = frame.filter([](const DataFrame& f, std::size_t r) {
    return *asNumber(f.at("rank", r)) == 0.0;
  });
  EXPECT_EQ(zeros.rowCount(), 2u);
  EXPECT_EQ(toString(zeros.at("file", 0)), "/a");
  EXPECT_EQ(toString(zeros.at("file", 1)), "/c");
}

TEST(DataFrame, SelectSubsetsAndReorders) {
  const DataFrame frame = sample();
  const DataFrame sub = frame.select({"bytes", "file"});
  EXPECT_EQ(sub.columnCount(), 2u);
  EXPECT_EQ(sub.columnNames()[0], "bytes");
  EXPECT_THROW((void)frame.select({"missing"}), DataFrameError);
}

TEST(DataFrame, SortByNumericAndString) {
  const DataFrame frame = sample();
  const DataFrame desc = frame.sortBy("bytes", true);
  EXPECT_DOUBLE_EQ(*asNumber(desc.at("bytes", 0)), 400.0);
  EXPECT_DOUBLE_EQ(*asNumber(desc.at("bytes", 3)), 100.0);
  const DataFrame byName = frame.sortBy("file");
  EXPECT_EQ(toString(byName.at("file", 0)), "/a");
}

TEST(DataFrame, HeadTruncates) {
  const DataFrame frame = sample();
  EXPECT_EQ(frame.head(2).rowCount(), 2u);
  EXPECT_EQ(frame.head(100).rowCount(), 4u);
}

TEST(DataFrame, Aggregations) {
  const DataFrame frame = sample();
  EXPECT_DOUBLE_EQ(frame.sum("bytes"), 1000.0);
  EXPECT_DOUBLE_EQ(frame.mean("bytes"), 250.0);
  EXPECT_DOUBLE_EQ(frame.minValue("bytes"), 100.0);
  EXPECT_DOUBLE_EQ(frame.maxValue("bytes"), 400.0);
  EXPECT_EQ(frame.count("bytes"), 4u);
}

TEST(DataFrame, GroupByAggregates) {
  const DataFrame frame = sample();
  const DataFrame grouped = frame.groupBy(
      "rank", {{DataFrame::Agg::Sum, "bytes"}, {DataFrame::Agg::Count, "bytes"}});
  EXPECT_EQ(grouped.rowCount(), 3u);  // ranks 0, 1, 2
  // std::map ordering: keys "0", "1", "2".
  EXPECT_DOUBLE_EQ(*asNumber(grouped.at("sum_bytes", 0)), 400.0);
  EXPECT_DOUBLE_EQ(*asNumber(grouped.at("count_bytes", 0)), 2.0);
}

TEST(DataFrame, ToTextRendersAndTruncates) {
  const DataFrame frame = sample();
  const std::string text = frame.toText(2);
  EXPECT_NE(text.find("file"), std::string::npos);
  EXPECT_NE(text.find("(2 more rows)"), std::string::npos);
}

TEST(DataFrame, ValueHelpers) {
  EXPECT_TRUE(isNull(Value{}));
  EXPECT_FALSE(isNull(Value{1.0}));
  EXPECT_EQ(toString(Value{}), "null");
  EXPECT_EQ(asNumber(Value{std::string{"x"}}), std::nullopt);
}

TEST(DataFrame, ColumnTypedAccessors) {
  const DataFrame frame = sample();
  EXPECT_EQ(frame.column("rank").ints().size(), 4u);
  EXPECT_THROW((void)frame.column("rank").doubles(), DataFrameError);
  EXPECT_THROW((void)frame.column("file").ints(), DataFrameError);
}

}  // namespace
}  // namespace stellar::df

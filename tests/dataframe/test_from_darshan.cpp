// Preprocessing: Darshan log -> dataframes + column-description sidecar.
#include <gtest/gtest.h>

#include "darshan/recorder.hpp"
#include "dataframe/from_darshan.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar::df {
namespace {

DarshanTables tablesFor(const char* workload) {
  pfs::PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  const pfs::JobSpec job = workloads::byName(workload, opt);
  const pfs::RunResult run = sim.run(job, pfs::PfsConfig{}, 4);
  return tablesFromLog(darshan::characterize(job, run));
}

TEST(FromDarshan, OneRowPerRecordAllCountersAsColumns) {
  const DarshanTables tables = tablesFor("MDWorkbench_8K");
  EXPECT_GT(tables.posix.rowCount(), 100u);
  EXPECT_EQ(tables.posix.columnCount(),
            2 + darshan::counterNames().size() + darshan::fcounterNames().size());
  for (const auto& name : darshan::counterNames()) {
    EXPECT_TRUE(tables.posix.hasColumn(name)) << name;
  }
}

TEST(FromDarshan, HeaderTextAndDescriptionsPopulated) {
  const DarshanTables tables = tablesFor("IOR_16M");
  EXPECT_NE(tables.headerText.find("exe: IOR_16M"), std::string::npos);
  EXPECT_NE(tables.headerText.find("nprocs: 10"), std::string::npos);
  // Every column has a description line.
  for (const std::string& col : tables.posix.columnNames()) {
    EXPECT_NE(tables.columnDescriptions.find(col + ": "), std::string::npos) << col;
  }
}

TEST(FromDarshan, ValuesMatchLogRecords) {
  pfs::PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 10;
  opt.scale = 0.02;
  const pfs::JobSpec job = workloads::byName("IOR_64K", opt);
  const pfs::RunResult run = sim.run(job, pfs::PfsConfig{}, 4);
  const darshan::DarshanLog log = darshan::characterize(job, run);
  const DarshanTables tables = tablesFromLog(log);

  ASSERT_EQ(tables.posix.rowCount(), log.records.size());
  for (std::size_t r = 0; r < log.records.size(); ++r) {
    EXPECT_EQ(toString(tables.posix.at("file", r)), log.records[r].fileName);
    EXPECT_EQ(*asNumber(tables.posix.at("POSIX_BYTES_WRITTEN", r)),
              static_cast<double>(*log.records[r].counter("POSIX_BYTES_WRITTEN")));
  }
}

}  // namespace
}  // namespace stellar::df

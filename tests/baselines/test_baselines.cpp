#include <gtest/gtest.h>

#include "baselines/expert.hpp"
#include "baselines/oracle.hpp"
#include "workloads/workloads.hpp"

namespace stellar::baselines {
namespace {

TEST(Expert, ConfigsExistAndValidateForAllWorkloads) {
  const pfs::BoundsContext ctx;
  for (const std::string& name : workloads::benchmarkNames()) {
    EXPECT_TRUE(pfs::validateConfig(expertConfig(name), ctx).empty()) << name;
    EXPECT_FALSE(expertRationale(name).empty()) << name;
  }
  for (const std::string& name : workloads::realAppNames()) {
    EXPECT_TRUE(pfs::validateConfig(expertConfig(name), ctx).empty()) << name;
  }
  EXPECT_THROW((void)expertConfig("Unknown"), std::invalid_argument);
  EXPECT_THROW((void)expertRationale("Unknown"), std::invalid_argument);
}

TEST(Expert, ConfigsEncodeWorkloadSpecificJudgment) {
  // The expert stripes wide for shared large I/O, keeps one stripe for
  // small-file metadata loads, and sizes lock caches for MDWorkbench.
  EXPECT_EQ(expertConfig("IOR_16M").stripe_count, -1);
  EXPECT_EQ(expertConfig("MDWorkbench_8K").stripe_count, 1);
  EXPECT_GT(expertConfig("MDWorkbench_8K").ldlm_lru_size, 100000);
  EXPECT_EQ(expertConfig("MACSio_512K").stripe_count, 1);
  EXPECT_GT(expertConfig("AMReX").osc_max_dirty_mb, 512);
}

TEST(Oracle, CandidateValuesStayInBoundsAndCoverEndpoints) {
  pfs::PfsSimulator sim;
  const pfs::PfsConfig cfg;
  for (const std::string& name : pfs::PfsConfig::tunableNames()) {
    const auto values = candidateValues(sim, cfg, name, 5);
    ASSERT_FALSE(values.empty()) << name;
    const auto bounds = pfs::paramBounds(name, cfg, sim.boundsContext());
    ASSERT_TRUE(bounds.has_value());
    EXPECT_EQ(values.front(), bounds->min) << name;
    EXPECT_EQ(values.back(), bounds->max) << name;
    for (const auto v : values) {
      EXPECT_GE(v, bounds->min) << name;
      EXPECT_LE(v, bounds->max) << name;
    }
  }
}

TEST(Oracle, StripeCountEnumeratesDiscreteDomainWithoutZero) {
  pfs::PfsSimulator sim;
  const auto values = candidateValues(sim, pfs::PfsConfig{}, "lov.stripe_count", 5);
  EXPECT_EQ(values, (std::vector<std::int64_t>{-1, 1, 2, 3, 4, 5}));
}

TEST(Oracle, SearchImprovesOverDefault) {
  pfs::PfsSimulator sim;
  workloads::WorkloadOptions opt;
  opt.ranks = 50;
  opt.scale = 0.02;
  const pfs::JobSpec job = workloads::ior16m(opt);
  const double def = sim.run(job, pfs::PfsConfig{}, 7).wallSeconds;

  OracleOptions options;
  options.maxSweeps = 1;
  options.candidatesPerParam = 3;
  const OracleResult result = oracleSearch(sim, job, options);
  EXPECT_LT(result.seconds, def * 0.5);
  EXPECT_GT(result.evaluations, 20u);
  EXPECT_TRUE(pfs::validateConfig(result.config, sim.boundsContext()).empty());
}

}  // namespace
}  // namespace stellar::baselines

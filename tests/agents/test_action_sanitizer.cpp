// ActionSanitizer: the schema-validation boundary between tool-call
// payloads and the simulator (ISSUE 7). All four issue kinds, Observe vs
// Enforce semantics, and the counter wiring.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "agents/action_sanitizer.hpp"
#include "agents/tuning_agent.hpp"
#include "obs/counters.hpp"
#include "pfs/params.hpp"

namespace stellar::agents {
namespace {

ActionSanitizer makeSanitizer(SanitizerMode mode, obs::CounterRegistry* counters) {
  return ActionSanitizer{pfs::PfsConfig::tunableNames(), pfs::BoundsContext{}, mode,
                         counters};
}

TuningAgent::Action runConfigAction(std::vector<TuningAgent::RawMove> moves) {
  TuningAgent::Action action;
  action.kind = TuningAgent::ActionKind::RunConfig;
  action.config = pfs::PfsConfig{};
  for (const TuningAgent::RawMove& move : moves) {
    (void)action.config.set(move.param, move.value);
  }
  action.emitted = std::move(moves);
  return action;
}

TEST(ActionSanitizer, ModeNamesRoundTrip) {
  EXPECT_STREQ(sanitizerModeName(SanitizerMode::Observe), "observe");
  EXPECT_STREQ(sanitizerModeName(SanitizerMode::Enforce), "enforce");
  EXPECT_EQ(sanitizerModeByName("observe"), SanitizerMode::Observe);
  EXPECT_EQ(sanitizerModeByName("enforce"), SanitizerMode::Enforce);
  EXPECT_THROW((void)sanitizerModeByName("audit"), std::invalid_argument);
}

TEST(ActionSanitizer, CleanPayloadIsClean) {
  const ActionSanitizer sanitizer = makeSanitizer(SanitizerMode::Enforce, nullptr);
  const TuningAgent::Action action =
      runConfigAction({{"osc.max_rpcs_in_flight", 32}, {"osc.max_dirty_mb", 256}});
  const SanitizeVerdict verdict = sanitizer.sanitize(action, pfs::PfsConfig{});
  EXPECT_TRUE(verdict.clean());
  EXPECT_EQ(verdict.config, action.config);
}

TEST(ActionSanitizer, NonRunConfigActionsAreVacuouslyClean) {
  const ActionSanitizer sanitizer = makeSanitizer(SanitizerMode::Enforce, nullptr);
  TuningAgent::Action action;
  action.kind = TuningAgent::ActionKind::AskAnalysis;
  // Even a corrupt payload is ignored: there is no config to execute.
  action.emitted.push_back({"no.such_knob", 1});
  EXPECT_TRUE(sanitizer.sanitize(action, pfs::PfsConfig{}).clean());
}

TEST(ActionSanitizer, UnknownKnobIsRejectedInBothModes) {
  obs::CounterRegistry registry;
  const TuningAgent::Action action =
      runConfigAction({{"osc.max_rpcs_in_flght", 64}});  // hallucinated spelling

  for (const SanitizerMode mode : {SanitizerMode::Observe, SanitizerMode::Enforce}) {
    const ActionSanitizer sanitizer = makeSanitizer(mode, &registry);
    const SanitizeVerdict verdict = sanitizer.sanitize(action, pfs::PfsConfig{});
    ASSERT_EQ(verdict.issues.size(), 1u);
    EXPECT_EQ(verdict.issues[0].kind, SanitizeIssueKind::UnknownKnob);
    EXPECT_EQ(verdict.issues[0].param, "osc.max_rpcs_in_flght");
    // A phantom knob can't land in PfsConfig, so both modes execute the
    // action's own (unaffected) config.
    EXPECT_EQ(verdict.config, action.config);
  }
  EXPECT_EQ(registry.counter("agent.llm.rejected_actions").value(), 2.0);
}

TEST(ActionSanitizer, OutOfRangeClampedOnlyUnderEnforce) {
  obs::CounterRegistry registry;
  // osc.max_rpcs_in_flight documented max is 256.
  TuningAgent::Action action = runConfigAction({{"osc.max_rpcs_in_flight", 2055}});

  const ActionSanitizer observe = makeSanitizer(SanitizerMode::Observe, &registry);
  const SanitizeVerdict seen = observe.sanitize(action, pfs::PfsConfig{});
  ASSERT_EQ(seen.issues.size(), 1u);
  EXPECT_EQ(seen.issues[0].kind, SanitizeIssueKind::OutOfRange);
  EXPECT_EQ(seen.config.get("osc.max_rpcs_in_flight"), 2055);  // untouched

  const ActionSanitizer enforce = makeSanitizer(SanitizerMode::Enforce, &registry);
  const SanitizeVerdict fixed = enforce.sanitize(action, pfs::PfsConfig{});
  ASSERT_EQ(fixed.issues.size(), 1u);
  EXPECT_EQ(fixed.issues[0].resolved, fixed.config.get("osc.max_rpcs_in_flight"));
  const auto bounds =
      pfs::paramBounds("osc.max_rpcs_in_flight", fixed.config, pfs::BoundsContext{});
  ASSERT_TRUE(bounds.has_value());
  EXPECT_LE(*fixed.config.get("osc.max_rpcs_in_flight"), bounds->max);
  EXPECT_TRUE(
      pfs::validateConfig(fixed.config, pfs::BoundsContext{}).empty());
  EXPECT_EQ(registry.counter("agent.llm.clamped_values").value(), 2.0);
}

TEST(ActionSanitizer, DuplicateMoveIsRecordedButHarmless) {
  const ActionSanitizer sanitizer = makeSanitizer(SanitizerMode::Enforce, nullptr);
  const TuningAgent::Action action = runConfigAction(
      {{"osc.max_dirty_mb", 256}, {"osc.max_dirty_mb", 256}});
  const SanitizeVerdict verdict = sanitizer.sanitize(action, pfs::PfsConfig{});
  ASSERT_EQ(verdict.issues.size(), 1u);
  EXPECT_EQ(verdict.issues[0].kind, SanitizeIssueKind::DuplicateMove);
  EXPECT_EQ(verdict.config.get("osc.max_dirty_mb"), 256);
}

TEST(ActionSanitizer, ContradictionRevertsToIncumbentUnderEnforce) {
  obs::CounterRegistry registry;
  const TuningAgent::Action action = runConfigAction(
      {{"osc.max_dirty_mb", 256}, {"osc.max_dirty_mb", 512}});

  pfs::PfsConfig incumbent;
  incumbent.osc_max_dirty_mb = 128;  // what is actually deployed

  const ActionSanitizer enforce = makeSanitizer(SanitizerMode::Enforce, &registry);
  const SanitizeVerdict verdict = enforce.sanitize(action, incumbent);
  ASSERT_EQ(verdict.issues.size(), 1u);
  EXPECT_EQ(verdict.issues[0].kind, SanitizeIssueKind::Contradictory);
  EXPECT_EQ(verdict.issues[0].resolved, 128);
  EXPECT_EQ(verdict.config.get("osc.max_dirty_mb"), 128);
  EXPECT_EQ(registry.counter("agent.llm.rejected_actions").value(), 1.0);

  // Observe records the same contradiction but executes the raw config.
  const ActionSanitizer observe = makeSanitizer(SanitizerMode::Observe, &registry);
  const SanitizeVerdict seen = observe.sanitize(action, incumbent);
  ASSERT_EQ(seen.issues.size(), 1u);
  EXPECT_EQ(seen.config, action.config);
}

TEST(ActionSanitizer, EnforceRepairsDependentBoundsAfterClamp) {
  // Per-file readahead must stay <= half the client-wide budget: emit both
  // an oversized budget and a per-file value legal only under the oversized
  // budget — after the clamp, the dependent knob must be re-clamped too.
  const ActionSanitizer sanitizer = makeSanitizer(SanitizerMode::Enforce, nullptr);
  const TuningAgent::Action action =
      runConfigAction({{"llite.max_read_ahead_mb", 1'000'000},
                       {"llite.max_read_ahead_per_file_mb", 400'000}});
  const SanitizeVerdict verdict = sanitizer.sanitize(action, pfs::PfsConfig{});
  EXPECT_FALSE(verdict.clean());
  EXPECT_TRUE(pfs::validateConfig(verdict.config, pfs::BoundsContext{}).empty());
  const std::int64_t budget = *verdict.config.get("llite.max_read_ahead_mb");
  EXPECT_LE(*verdict.config.get("llite.max_read_ahead_per_file_mb"), budget / 2);
}

TEST(ActionSanitizer, VerdictDescribeNamesEveryIssue) {
  const ActionSanitizer sanitizer = makeSanitizer(SanitizerMode::Observe, nullptr);
  const TuningAgent::Action action = runConfigAction(
      {{"bogus.knob", 1},
       {"osc.max_rpcs_in_flight", 9999},
       {"osc.max_dirty_mb", 64},
       {"osc.max_dirty_mb", 128}});
  const SanitizeVerdict verdict = sanitizer.sanitize(action, pfs::PfsConfig{});
  ASSERT_EQ(verdict.issues.size(), 3u);
  const std::string text = verdict.describe();
  EXPECT_NE(text.find("unknown-knob"), std::string::npos);
  EXPECT_NE(text.find("out-of-range"), std::string::npos);
  EXPECT_NE(text.find("contradictory"), std::string::npos);
}

}  // namespace
}  // namespace stellar::agents

// Tuning Agent decision mechanics: tool selection, playbooks, feedback
// policy, invalid-config repair, reflection, and ablation behaviour.
#include <gtest/gtest.h>

#include "agents/tuning_agent.hpp"
#include "llm/knowledge.hpp"
#include "manual/param_facts.hpp"
#include "util/units.hpp"

namespace stellar::agents {
namespace {

std::map<std::string, llm::ParamKnowledge> groundedKnowledge() {
  std::map<std::string, llm::ParamKnowledge> knowledge;
  manual::SystemFacts facts;
  for (const std::string& name : manual::groundTruthTunables()) {
    knowledge.emplace(name,
                      llm::groundedKnowledge(*manual::findParamFact(name), facts));
  }
  return knowledge;
}

IoReport metadataReport() {
  IoReport report;
  report.context.metaOpShare = 0.8;
  report.context.readShare = 0.5;
  report.context.sequentialShare = 0.1;
  report.context.sharedFileShare = 0.0;
  report.context.smallFileShare = 1.0;
  report.context.dominantAccessSize = 8 * 1024;
  report.context.fileCount = 100000;
  report.context.totalBytes = 1ULL << 30;
  report.fileCount = 100000;
  report.totalBytes = 1ULL << 30;
  report.text = "metadata-heavy";
  return report;
}

IoReport streamingReport() {
  IoReport report;
  report.context.metaOpShare = 0.01;
  report.context.readShare = 0.5;
  report.context.sequentialShare = 0.95;
  report.context.sharedFileShare = 1.0;
  report.context.smallFileShare = 0.0;
  report.context.dominantAccessSize = 16 << 20;
  report.context.fileCount = 1;
  report.context.totalBytes = 20ULL << 30;
  report.fileCount = 1;
  report.totalBytes = 20ULL << 30;
  report.text = "streaming";
  return report;
}

struct Fixture {
  llm::TokenMeter meter;
  Transcript transcript;
  TuningAgentOptions options;

  Fixture() {
    options.seed = 9;
    options.model.reasoningQuality = 1.0;  // deterministic full steps
  }

  TuningAgent make(const rules::RuleSet* rules = nullptr) {
    return TuningAgent{options, groundedKnowledge(), pfs::BoundsContext{}, rules,
                       meter, transcript};
  }
};

TEST(TuningAgent, AsksFollowUpsForMetadataWorkloadFirst) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = metadataReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  const auto a1 = agent.decide();
  EXPECT_EQ(a1.kind, TuningAgent::ActionKind::AskAnalysis);
  agent.observeAnalysisAnswer(a1.question, "answer");
  const auto a2 = agent.decide();
  EXPECT_EQ(a2.kind, TuningAgent::ActionKind::AskAnalysis);
  const auto a3 = agent.decide();
  EXPECT_EQ(a3.kind, TuningAgent::ActionKind::RunConfig);
}

TEST(TuningAgent, MetadataPlaybookTargetsLockAndStataheadKnobs) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = metadataReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_GE(action.config.ldlm_lru_size, 200000);
  EXPECT_GE(action.config.llite_statahead_max, 1024);
  EXPECT_GE(action.config.mdc_max_rpcs_in_flight, 64);
  EXPECT_EQ(action.config.stripe_count, 1);  // small files keep 1 stripe
  EXPECT_NE(action.rationale.find("lock"), std::string::npos);
}

TEST(TuningAgent, StreamingPlaybookStripesWideWithBigRpcs) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_EQ(action.config.stripe_count, -1);
  EXPECT_EQ(action.config.stripe_size, 16 << 20);
  EXPECT_EQ(action.config.osc_max_pages_per_rpc, 4096);
  EXPECT_GE(action.config.osc_max_dirty_mb, 512);
  // Dependent constraint honored: per-file <= budget / 2.
  EXPECT_LE(action.config.llite_max_read_ahead_per_file_mb,
            action.config.llite_max_read_ahead_mb / 2);
}

TEST(TuningAgent, ImprovementIsKeptRegressionIsReverted) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  const pfs::PfsConfig first = action.config;
  agent.observeRunResult(4.0, true, {});  // big improvement
  EXPECT_EQ(agent.bestConfig(), first);
  EXPECT_DOUBLE_EQ(agent.bestSeconds(), 4.0);

  action = agent.decide();
  if (action.kind == TuningAgent::ActionKind::RunConfig) {
    agent.observeRunResult(6.0, true, {});  // regression
    EXPECT_EQ(agent.bestConfig(), first);   // reverted
    EXPECT_FALSE(agent.negativeFindings().empty());
  }
}

TEST(TuningAgent, MeasurementFailureNeverCorruptsBest) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);

  agent.observeMeasurementFailure("rpc retry budget exhausted");

  // Best stays at the default baseline; nothing was judged.
  EXPECT_EQ(agent.bestConfig(), pfs::PfsConfig{});
  EXPECT_DOUBLE_EQ(agent.bestSeconds(), 10.0);
  // Unlike a regression, a failed measurement yields no negative finding.
  EXPECT_TRUE(agent.negativeFindings().empty());
  ASSERT_FALSE(agent.attempts().empty());
  const Attempt& failed = agent.attempts().back();
  EXPECT_TRUE(failed.measurementFailed);
  EXPECT_FALSE(failed.valid);
  EXPECT_NE(failed.error.find("retry budget"), std::string::npos);

  // The agent keeps going: the next decision moves to a new hypothesis
  // (or ends cleanly) instead of re-trying or repairing the dropped group.
  action = agent.decide();
  if (action.kind == TuningAgent::ActionKind::RunConfig) {
    agent.observeRunResult(4.0, true, {});
    EXPECT_DOUBLE_EQ(agent.bestSeconds(), 4.0);  // later wins still land
  }
}

TEST(TuningAgent, StopsAtDiminishingReturnsWithJustification) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  agent.observeRunResult(4.0, true, {});
  action = agent.decide();
  if (action.kind == TuningAgent::ActionKind::RunConfig) {
    agent.observeRunResult(4.05, true, {});  // no further gain
    action = agent.decide();
  }
  EXPECT_EQ(action.kind, TuningAgent::ActionKind::EndTuning);
  EXPECT_NE(action.rationale.find("diminishing returns"), std::string::npos);
}

TEST(TuningAgent, RespectsAttemptBudget) {
  Fixture fx;
  fx.options.maxAttempts = 1;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  agent.observeRunResult(9.9, true, {});  // tiny improvement, would continue
  action = agent.decide();
  EXPECT_EQ(action.kind, TuningAgent::ActionKind::EndTuning);
}

TEST(TuningAgent, InvalidRunTriggersBackedOffRepair) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  const pfs::PfsConfig rejected = action.config;
  agent.observeRunResult(0.0, false, "out of range");
  const TuningAgent::Action repair = agent.decide();
  ASSERT_EQ(repair.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_NE(repair.config, rejected);
  EXPECT_NE(repair.rationale.find("backed off"), std::string::npos);
}

TEST(TuningAgent, NoAnalysisFallsBackToLargeFileAssumptions) {
  Fixture fx;
  fx.options.useAnalysis = false;
  TuningAgent agent = fx.make();
  agent.observeInitialRun(nullptr, 10.0, pfs::PfsConfig{});
  const TuningAgent::Action action = agent.decide();
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  // The §5.4 failure: readahead and RPC-size parameters raised blindly.
  EXPECT_EQ(action.config.stripe_count, -1);
  EXPECT_EQ(action.config.osc_max_pages_per_rpc, 4096);
  EXPECT_GT(action.config.llite_max_read_ahead_mb, 64);
}

TEST(TuningAgent, RuleSetDrivesFirstConfiguration) {
  Fixture fx;
  rules::RuleSet rules;
  rules::Rule rule;
  rule.parameter = "ldlm.lru_size";
  rule.description = "size the lock LRU above the working set";
  rule.context = metadataReport().context;
  rule.direction = rules::Direction::SetValue;
  rule.value = 123456;
  rules.add(rule);

  TuningAgent agent = fx.make(&rules);
  const IoReport report = metadataReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_EQ(action.config.ldlm_lru_size, 123456);
  EXPECT_NE(action.rationale.find("rule"), std::string::npos);
}

TEST(TuningAgent, PlaybookRetestsFromDefaultsAfterMarginalRuleWin) {
  Fixture fx;

  // Random small-record shape: no analysis follow-ups, small-random playbook.
  IoReport report;
  report.context.metaOpShare = 0.02;
  report.context.readShare = 0.5;
  report.context.sequentialShare = 0.02;
  report.context.sharedFileShare = 1.0;
  report.context.smallFileShare = 0.0;
  report.context.dominantAccessSize = 64 * 1024;
  report.context.fileCount = 1;
  report.context.totalBytes = 1ULL << 30;
  report.fileCount = 1;
  report.totalBytes = 1ULL << 30;
  report.text = "random small records";

  // A matched rule (context identical to the report) seeds attempt 1 with a
  // large stripe — harmful guidance carried over from a merely similar
  // workload.
  rules::RuleSet rules;
  rules::Rule rule;
  rule.parameter = "lov.stripe_size";
  rule.description = "use wide stripes for high aggregate bandwidth";
  rule.context = report.context;
  rule.direction = rules::Direction::SetValue;
  rule.value = static_cast<std::int64_t>(16 * util::kMiB);
  rules.add(rule);

  TuningAgent agent = fx.make(&rules);
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action first = agent.decide();
  while (first.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(first.question, "a");
    first = agent.decide();
  }
  ASSERT_EQ(first.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_EQ(first.config.stripe_size, static_cast<std::int64_t>(16 * util::kMiB));

  // The rule attempt wins by a hair, so it becomes the best config...
  agent.observeRunResult(9.9, true, {});

  TuningAgent::Action second = agent.decide();
  ASSERT_EQ(second.kind, TuningAgent::ActionKind::RunConfig);
  // ...but the playbook hypothesis is still synthesized from the *default*
  // configuration: a marginal rule win must not drag every later attempt
  // through its knob choices (§4.4.2 outcome safety).
  EXPECT_EQ(second.config.stripe_size, pfs::PfsConfig{}.stripe_size);
}

TEST(TuningAgent, ReflectionEmitsRulesOnlyAfterRealGains) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  agent.observeRunResult(9.99, true, {});  // negligible gain
  EXPECT_TRUE(agent.reflectAndSummarize().empty());
}

TEST(TuningAgent, ReflectedRulesAreGeneralAndContextTagged) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  agent.observeRunResult(3.0, true, {});
  const auto learned = agent.reflectAndSummarize();
  ASSERT_FALSE(learned.empty());
  for (const rules::Rule& rule : learned) {
    // §4.4.1: general recommendations, no application names.
    EXPECT_EQ(rule.description.find("IOR"), std::string::npos);
    EXPECT_NEAR(rule.context.similarity(report.context), 1.0, 1e-9);
    EXPECT_FALSE(rule.parameter.empty());
  }
}

TEST(TuningAgent, TokensAccountedPerDecision) {
  Fixture fx;
  TuningAgent agent = fx.make();
  const IoReport report = streamingReport();
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  (void)agent.decide();
  EXPECT_GT(fx.meter.totals("tuning-agent").calls, 0u);
  EXPECT_GT(fx.meter.totals("tuning-agent").inputTokens, 100u);
}

}  // namespace
}  // namespace stellar::agents

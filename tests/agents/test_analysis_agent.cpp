// Analysis Agent: report features, follow-up answers, query logging.
#include <gtest/gtest.h>

#include "agents/analysis_agent.hpp"
#include "darshan/recorder.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar::agents {
namespace {

struct Fixture {
  df::DarshanTables tables;
  llm::TokenMeter meter;
  Transcript transcript;

  explicit Fixture(const char* workload) {
    pfs::PfsSimulator sim;
    workloads::WorkloadOptions opt;
    opt.ranks = 10;
    opt.scale = 0.02;
    const pfs::JobSpec job = workloads::byName(workload, opt);
    const pfs::RunResult run = sim.run(job, pfs::PfsConfig{}, 4);
    tables = df::tablesFromLog(darshan::characterize(job, run));
  }

  AnalysisAgent agent() {
    return AnalysisAgent{tables, llm::gpt4o(), meter, transcript};
  }
};

TEST(AnalysisAgent, ClassifiesMdWorkbenchAsMetadataIntensive) {
  Fixture fx{"MDWorkbench_8K"};
  auto agent = fx.agent();
  const IoReport report = agent.initialReport();
  EXPECT_GT(report.context.metaOpShare, 0.6);
  EXPECT_GT(report.context.smallFileShare, 0.9);
  EXPECT_EQ(report.context.dominantAccessSize, 8 * 1024u);
  EXPECT_NE(report.text.find("metadata-intensive"), std::string::npos);
}

TEST(AnalysisAgent, ClassifiesIor16mAsStreaming) {
  Fixture fx{"IOR_16M"};
  auto agent = fx.agent();
  const IoReport report = agent.initialReport();
  EXPECT_LT(report.context.metaOpShare, 0.2);
  EXPECT_GT(report.context.sequentialShare, 0.6);
  EXPECT_DOUBLE_EQ(report.context.sharedFileShare, 1.0);
  EXPECT_EQ(report.context.dominantAccessSize, 16u << 20);
  EXPECT_NE(report.text.find("large sequential"), std::string::npos);
}

TEST(AnalysisAgent, Ior64kIsRandomSmall) {
  Fixture fx{"IOR_64K"};
  auto agent = fx.agent();
  const IoReport report = agent.initialReport();
  EXPECT_EQ(report.context.dominantAccessSize, 64u * 1024);
  EXPECT_LT(report.context.sequentialShare, 0.5);
}

TEST(AnalysisAgent, ReportRunsRealQueriesAndLogsThem) {
  Fixture fx{"IOR_16M"};
  auto agent = fx.agent();
  (void)agent.initialReport();
  EXPECT_GE(agent.queriesRun().size(), 5u);
  EXPECT_GE(fx.transcript.size(), agent.queriesRun().size());
  // Tokens were accounted against the analysis conversation.
  EXPECT_GT(fx.meter.totals("analysis-agent").inputTokens, 0u);
}

TEST(AnalysisAgent, FollowUpAnswersAreSpecific) {
  Fixture fx{"MDWorkbench_8K"};
  auto agent = fx.agent();
  (void)agent.initialReport();

  const std::string sizes = agent.answerFollowUp(FollowUpQuestion::FileSizeDistribution);
  EXPECT_NE(sizes.find("8.0 KiB"), std::string::npos) << sizes;

  const std::string ratio = agent.answerFollowUp(FollowUpQuestion::MetaToDataRatio);
  EXPECT_NE(ratio.find("ratio"), std::string::npos);

  const std::string sharing = agent.answerFollowUp(FollowUpQuestion::SharingStructure);
  EXPECT_NE(sharing.find("file-per-process"), std::string::npos) << sharing;
}

TEST(AnalysisAgent, SharedFileFollowUpOnIor) {
  Fixture fx{"IOR_16M"};
  auto agent = fx.agent();
  (void)agent.initialReport();
  const std::string sharing = agent.answerFollowUp(FollowUpQuestion::SharingStructure);
  EXPECT_NE(sharing.find("multiple"), std::string::npos) << sharing;
  const std::string balance = agent.answerFollowUp(FollowUpQuestion::RankBalance);
  EXPECT_FALSE(balance.empty());
  const std::string pattern = agent.answerFollowUp(FollowUpQuestion::AccessPattern);
  EXPECT_NE(pattern.find("1677"), std::string::npos) << pattern;  // 16 MiB = 16777216
}

TEST(AnalysisAgent, EveryQuestionHasText) {
  for (const auto q :
       {FollowUpQuestion::FileSizeDistribution, FollowUpQuestion::MetaToDataRatio,
        FollowUpQuestion::AccessPattern, FollowUpQuestion::RankBalance,
        FollowUpQuestion::SharingStructure}) {
    EXPECT_GT(std::string{followUpQuestionText(q)}.size(), 10u);
  }
}

TEST(Transcript, RendersNumberedActorBlocks) {
  Transcript transcript;
  transcript.add("tuning-agent", "attempt 1", "line one\nline two");
  transcript.add("system", "run result", "1.5 s");
  const std::string text = transcript.render();
  EXPECT_NE(text.find("[1] tuning-agent — attempt 1"), std::string::npos);
  EXPECT_NE(text.find("[2] system — run result"), std::string::npos);
  EXPECT_NE(text.find("    line two"), std::string::npos);
}

}  // namespace
}  // namespace stellar::agents

// The ablation failure modes at move granularity: hallucinated semantics
// must produce the specific misguided proposals §5.4 reports, and the
// agent must stay well-behaved (terminate, revert) under ANY corrupted
// knowledge.
#include <gtest/gtest.h>

#include "agents/tuning_agent.hpp"
#include "llm/knowledge.hpp"
#include "manual/param_facts.hpp"

namespace stellar::agents {
namespace {

std::map<std::string, llm::ParamKnowledge> knowledgeWith(
    const std::string& corruptParam, llm::CorruptionKind kind) {
  std::map<std::string, llm::ParamKnowledge> knowledge;
  manual::SystemFacts facts;
  for (const std::string& name : manual::groundTruthTunables()) {
    llm::ParamKnowledge k =
        llm::groundedKnowledge(*manual::findParamFact(name), facts);
    if (name == corruptParam) {
      k.source = llm::KnowledgeSource::ModelMemory;
      k.corruption = kind;
      if (kind == llm::CorruptionKind::WrongRange) {
        k.maxValue *= 8;  // believed max beyond the real one
      }
    }
    knowledge.emplace(name, std::move(k));
  }
  return knowledge;
}

IoReport metadataReport() {
  IoReport report;
  report.context.metaOpShare = 0.8;
  report.context.smallFileShare = 1.0;
  report.context.dominantAccessSize = 8 * 1024;
  report.context.fileCount = 100000;
  report.context.totalBytes = 1ULL << 30;
  report.fileCount = 100000;
  report.totalBytes = 1ULL << 30;
  report.text = "metadata-heavy";
  return report;
}

IoReport streamingReport() {
  IoReport report;
  report.context.metaOpShare = 0.01;
  report.context.readShare = 0.5;
  report.context.sequentialShare = 0.95;
  report.context.sharedFileShare = 1.0;
  report.context.dominantAccessSize = 16 << 20;
  report.context.fileCount = 1;
  report.context.totalBytes = 20ULL << 30;
  report.fileCount = 1;
  report.totalBytes = 20ULL << 30;
  report.text = "streaming";
  return report;
}

struct Fixture {
  llm::TokenMeter meter;
  Transcript transcript;
  TuningAgentOptions options;

  Fixture() {
    options.seed = 3;
    options.model.reasoningQuality = 1.0;
  }
};

TuningAgent::Action firstRunConfig(TuningAgent& agent, const IoReport& report) {
  agent.observeInitialRun(&report, 10.0, pfs::PfsConfig{});
  TuningAgent::Action action = agent.decide();
  while (action.kind == TuningAgent::ActionKind::AskAnalysis) {
    agent.observeAnalysisAnswer(action.question, "a");
    action = agent.decide();
  }
  return action;
}

TEST(MisguidedMoves, WrongLruDefinitionShrinksTheLockCache) {
  Fixture fx;
  TuningAgent agent{fx.options,
                    knowledgeWith("ldlm.lru_size", llm::CorruptionKind::WrongDefinition),
                    pfs::BoundsContext{}, nullptr, fx.meter, fx.transcript};
  const auto action = firstRunConfig(agent, metadataReport());
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  // §5.4-style misconception: the agent *shrinks* the lock cache instead
  // of sizing it over the working set.
  EXPECT_LT(action.config.ldlm_lru_size, 1000);
  EXPECT_NE(action.rationale.find("memory"), std::string::npos);
}

TEST(MisguidedMoves, FlippedStataheadDisablesIt) {
  Fixture fx;
  TuningAgent agent{
      fx.options,
      knowledgeWith("llite.statahead_max", llm::CorruptionKind::FlippedDirection),
      pfs::BoundsContext{}, nullptr, fx.meter, fx.transcript};
  const auto action = firstRunConfig(agent, metadataReport());
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_EQ(action.config.llite_statahead_max, 0);
}

TEST(MisguidedMoves, WrongStripeSemanticsWidenStripesOnMetadataWorkload) {
  // The exact §5.4 case: with flawed stripe_count semantics, the agent
  // sets the maximum stripe count "to distribute the files more evenly".
  // Grounded semantics would keep stripe_count = 1 on this workload.
  // Inject the corrupted parameter into the plan by letting the
  // data-refinement group carry it: use a streaming report where
  // stripe_count IS in the playbook.
  Fixture fx;
  TuningAgent corrupted{
      fx.options, knowledgeWith("lov.stripe_count", llm::CorruptionKind::WrongDefinition),
      pfs::BoundsContext{}, nullptr, fx.meter, fx.transcript};
  const auto action = firstRunConfig(corrupted, streamingReport());
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  // Misguided variant fires (SetMax with the flawed rationale). On the
  // streaming workload that happens to coincide with the right value, but
  // the rationale exposes the flawed reasoning.
  EXPECT_EQ(action.config.stripe_count, -1);
  const bool flawedRationale =
      action.rationale.find("distribute") != std::string::npos ||
      action.rationale.find("always engage") != std::string::npos;
  EXPECT_TRUE(flawedRationale) << action.rationale;
}

TEST(MisguidedMoves, InflatedRangePassesOversizedValuesToValidation) {
  // Believed max 8x the real one: the playbook's SetMax move lands beyond
  // the true bound and must be caught by config validation (the paper's
  // invalid-values failure), after which the agent backs off and recovers.
  Fixture fx;
  TuningAgent agent{
      fx.options,
      knowledgeWith("osc.max_pages_per_rpc", llm::CorruptionKind::WrongRange),
      pfs::BoundsContext{}, nullptr, fx.meter, fx.transcript};
  TuningAgent::Action action = firstRunConfig(agent, streamingReport());
  ASSERT_EQ(action.kind, TuningAgent::ActionKind::RunConfig);
  const auto problems = pfs::validateConfig(action.config, pfs::BoundsContext{});
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("osc.max_pages_per_rpc"), std::string::npos);

  agent.observeRunResult(0.0, false, problems.front());
  const TuningAgent::Action repair = agent.decide();
  ASSERT_EQ(repair.kind, TuningAgent::ActionKind::RunConfig);
  EXPECT_LT(repair.config.osc_max_pages_per_rpc,
            action.config.osc_max_pages_per_rpc);
}

TEST(MisguidedMoves, AgentTerminatesUnderAnyCorruption) {
  // Robustness sweep: every (parameter, corruption kind) pair, on both
  // workload shapes, must reach EndTuning within the tool-call budget.
  for (const std::string& param : manual::groundTruthTunables()) {
    for (const llm::CorruptionKind kind :
         {llm::CorruptionKind::WrongRange, llm::CorruptionKind::WrongDefinition,
          llm::CorruptionKind::FlippedDirection}) {
      for (const bool metadata : {true, false}) {
        Fixture fx;
        TuningAgent agent{fx.options, knowledgeWith(param, kind),
                          pfs::BoundsContext{}, nullptr, fx.meter, fx.transcript};
        const IoReport report = metadata ? metadataReport() : streamingReport();
        TuningAgent::Action action = firstRunConfig(agent, report);
        int guard = 0;
        while (action.kind == TuningAgent::ActionKind::RunConfig && guard++ < 16) {
          const auto problems =
              pfs::validateConfig(action.config, pfs::BoundsContext{});
          if (problems.empty()) {
            agent.observeRunResult(9.0, true, {});
          } else {
            agent.observeRunResult(0.0, false, problems.front());
          }
          action = agent.decide();
        }
        EXPECT_EQ(action.kind, TuningAgent::ActionKind::EndTuning)
            << param << " " << llm::corruptionName(kind);
        EXPECT_LE(agent.attempts().size(),
                  static_cast<std::size_t>(fx.options.maxAttempts))
            << param;
      }
    }
  }
}

}  // namespace
}  // namespace stellar::agents

// Always-run parser fuzz regression: replays the committed corpus (plus a
// small deterministic mutation budget) through every hand-rolled parser.
// Each corpus file is a past crash, hang, or degenerate input; the deep
// nesting bomb in particular stack-overflowed util::Json before the parser
// grew its recursion depth cap.
#include <gtest/gtest.h>

#include <filesystem>

#include "testkit/fuzz.hpp"
#include "util/json.hpp"

namespace stellar::testkit {
namespace {

#ifndef STELLAR_TESTKIT_CORPUS_DIR
#error "CMake must define STELLAR_TESTKIT_CORPUS_DIR"
#endif

TEST(Fuzz, CommittedCorpusProducesNoFindings) {
  const auto findings = fuzzCorpus(STELLAR_TESTKIT_CORPUS_DIR, /*seed=*/42,
                                   /*mutationsPerEntry=*/16);
  ASSERT_GT(lastCorpusFileCount(), 0u) << "corpus directory missing or empty";
  for (const FuzzFinding& f : findings) {
    ADD_FAILURE() << fuzzTargetName(f.target) << ": " << f.problem
                  << "\n  input: " << f.input;
  }
}

TEST(Fuzz, CorpusCoversEveryTarget) {
  // A renamed or emptied subdirectory would silently skip a whole parser.
  for (const char* dir : {"json", "faultspec", "rules", "campaign", "journal"}) {
    FuzzTarget target;
    ASSERT_TRUE(fuzzTargetByName(dir, target)) << dir;
    const std::filesystem::path sub =
        std::filesystem::path(STELLAR_TESTKIT_CORPUS_DIR) / dir;
    ASSERT_TRUE(std::filesystem::is_directory(sub)) << sub;
    bool hasFile = false;
    for (const auto& entry : std::filesystem::directory_iterator(sub)) {
      hasFile |= entry.is_regular_file();
    }
    EXPECT_TRUE(hasFile) << sub << " has no corpus entries";
  }
}

TEST(Fuzz, DeepNestingBombIsRejectedNotFatal) {
  // Regression for the util::Json recursion depth cap: 100k-deep arrays
  // must throw JsonError instead of overflowing the stack.
  const std::string bomb(100000, '[');
  EXPECT_THROW((void)util::Json::parse(bomb), util::JsonError);
  std::vector<FuzzFinding> findings;
  EXPECT_TRUE(fuzzOne(FuzzTarget::Json, bomb, &findings));
  EXPECT_TRUE(findings.empty());
}

TEST(Fuzz, ReasonableDepthStillParses) {
  // The cap must not reject legitimately nested documents.
  std::string nested;
  for (int i = 0; i < 100; ++i) nested += "[";
  nested += "1";
  for (int i = 0; i < 100; ++i) nested += "]";
  EXPECT_NO_THROW((void)util::Json::parse(nested));
}

TEST(Fuzz, UnknownTargetNameIsRejected) {
  FuzzTarget target;
  EXPECT_FALSE(fuzzTargetByName("yaml", target));
  EXPECT_FALSE(fuzzTargetByName("", target));
}

TEST(Fuzz, MissingCorpusDirReportsZeroFiles) {
  const auto findings = fuzzCorpus("/nonexistent/corpus/dir", 42, 1);
  EXPECT_TRUE(findings.empty());
  EXPECT_EQ(lastCorpusFileCount(), 0u);
}

}  // namespace
}  // namespace stellar::testkit

// The invariant checker itself is under test here: clean runs produce no
// violations, every deliberate mutation is caught (the checker's mutation
// test), and the obs-counter cross-check notices drift between the flushed
// pfs.* counters and the RunResult.
#include <gtest/gtest.h>

#include <sstream>

#include "testkit/explore.hpp"
#include "testkit/invariants.hpp"
#include "testkit/run.hpp"

namespace stellar::testkit {
namespace {

TEST(Invariants, CleanCasesHaveNoViolations) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const std::uint64_t seed = util::mix64(42, i);
    const GeneratedCase cse = materialize(generateShape(seed));
    obs::CounterRegistry registry;
    const pfs::RunResult result = runCase(cse, &registry);
    for (const Violation& v : checkRun(cse, result)) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << ": " << v.format();
    }
    for (const Violation& v : checkObsConsistency(registry, result)) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << ": " << v.format();
    }
  }
}

TEST(Invariants, EveryMutationIsCaughtWithin50Cases) {
  // Acceptance criterion from the validation kit's design: a deliberately
  // broken conservation law must be caught within 50 generated cases.
  for (const std::string& mutation : mutationNames()) {
    bool caught = false;
    for (std::uint64_t i = 0; i < 50 && !caught; ++i) {
      caught = !checkOneCase(util::mix64(42, i), mutation,
                             /*checkObs=*/false, /*metamorphic=*/false)
                    .empty();
    }
    EXPECT_TRUE(caught) << "mutation '" << mutation << "' escaped 50 cases";
  }
}

TEST(Invariants, ObsConsistencyCatchesCounterDrift) {
  const GeneratedCase cse = materialize(generateShape(42));
  obs::CounterRegistry registry;
  pfs::RunResult result = runCase(cse, &registry);
  ASSERT_TRUE(checkObsConsistency(registry, result).empty());
  result.counters.dataRpcs += 1;  // drift between flush and snapshot
  EXPECT_FALSE(checkObsConsistency(registry, result).empty());
}

TEST(Invariants, MutationNamesAreStable) {
  // DESIGN.md §6 and the CI mutation job both reference these names.
  const std::vector<std::string> expected = {
      "write-conservation", "read-partition", "rpc-balance",
      "dirty-bound",        "lock-balance",   "disk-bandwidth",
      "reada-conservation"};
  EXPECT_EQ(mutationNames(), expected);
}

TEST(Explore, FixedSeedExplorationPasses) {
  ExploreOptions options;
  options.seed = 42;
  options.cases = 25;
  options.metamorphicEvery = 5;
  std::ostringstream log;
  const ExploreReport report = explore(options, log);
  EXPECT_TRUE(report.allPassed()) << log.str();
  EXPECT_EQ(report.casesRun, 25);
}

TEST(Explore, MutationModeReportsTheCatch) {
  ExploreOptions options;
  options.seed = 42;
  options.cases = 50;
  options.mutation = "write-conservation";
  std::ostringstream log;
  const ExploreReport report = explore(options, log);
  EXPECT_GT(report.casesFailed, 0) << log.str();
  ASSERT_FALSE(report.failures.empty());
  // The repro line must round-trip: the recorded seed re-triggers the
  // violation through the single-case path.
  const CaseFailure& failure = report.failures.front();
  EXPECT_FALSE(checkOneCase(failure.caseSeed, options.mutation,
                            /*checkObs=*/false, /*metamorphic=*/false)
                   .empty());
}

}  // namespace
}  // namespace stellar::testkit

// Metamorphic laws over the simulator: exact determinism, fault-plan
// attachment neutrality, scale monotonicity, and concurrency-relaxation
// monotonicity. All seeds here are fixed — the laws must hold on every
// seed, so any failure is a real defect, not flake.
#include <gtest/gtest.h>

#include "testkit/metamorphic.hpp"
#include "testkit/run.hpp"

namespace stellar::testkit {
namespace {

TEST(Metamorphic, LawsHoldOnFixedSeeds) {
  for (std::uint64_t i = 0; i < 20; ++i) {
    const std::uint64_t seed = util::mix64(0x5EED, i);
    for (const Violation& v : checkMetamorphic(generateShape(seed))) {
      ADD_FAILURE() << "seed 0x" << std::hex << seed << ": " << v.format();
    }
  }
}

TEST(Metamorphic, SameSeedIsBitIdentical) {
  const GeneratedCase cse = materialize(generateShape(0xD37E));
  const pfs::RunResult a = runCase(cse);
  const pfs::RunResult b = runCase(cse);
  const auto difference = describeDifference(a, b);
  EXPECT_FALSE(difference.has_value()) << *difference;
}

TEST(Metamorphic, CellifiedCaseIsBitIdenticalAcrossBackendsAndShards) {
  // The determinism contract across every engine configuration: scheduler
  // backend and shard count are pure performance choices. Compare full
  // RunAudits via describeDifference, not just wall times.
  const GeneratedCase base = materialize(generateShape(0xCE11));
  const GeneratedCase celled = cellify(base, 4);
  const pfs::RunResult reference =
      runCase(celled, sim::EngineOptions{.scheduler = sim::SchedulerKind::Calendar,
                                         .shards = 1});
  const sim::EngineOptions variants[] = {
      {.scheduler = sim::SchedulerKind::Heap, .shards = 1},
      {.scheduler = sim::SchedulerKind::Calendar, .shards = 2},
      {.scheduler = sim::SchedulerKind::Calendar, .shards = 4},
      {.scheduler = sim::SchedulerKind::Heap, .shards = 4},
  };
  for (const sim::EngineOptions& options : variants) {
    const auto difference = describeDifference(reference, runCase(celled, options));
    EXPECT_FALSE(difference.has_value())
        << sim::schedulerKindName(options.scheduler) << "/" << options.shards
        << " shards: " << *difference;
  }
}

TEST(Metamorphic, CellifyPadsRanksToFullCells) {
  const GeneratedCase base = materialize(generateShape(0xCE11));
  const GeneratedCase celled = cellify(base, 3);
  EXPECT_EQ(celled.cluster.cells, 3u);
  EXPECT_EQ(celled.cluster.clientNodes % 3, 0u);
  EXPECT_EQ(celled.cluster.ossNodes, base.cluster.ossNodes * 3);
  EXPECT_EQ(celled.job.rankCount() % 3, 0u);
  EXPECT_EQ(celled.job.rankCount(), celled.cluster.totalRanks());
  EXPECT_EQ(celled.job.files.size(), base.job.files.size() * 3);
}

TEST(Metamorphic, DifferentSeedsDiffer) {
  // Sanity check on describeDifference itself: it must be able to see a
  // difference, or the determinism law above is vacuous.
  CaseShape shape = generateShape(0xD37E);
  const pfs::RunResult a = runCase(materialize(shape));
  shape.seed ^= 1;
  const pfs::RunResult b = runCase(materialize(shape));
  EXPECT_TRUE(describeDifference(a, b).has_value());
}

}  // namespace
}  // namespace stellar::testkit

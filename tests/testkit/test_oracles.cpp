// Differential oracles: the simulator must match closed-form analytic
// models on degenerate scenarios, across several jitter seeds. A failure
// here means the simulator's physics drifted from the ClusterSpec
// constants it claims to implement.
#include <gtest/gtest.h>

#include "testkit/oracles.hpp"

namespace stellar::testkit {
namespace {

TEST(Oracles, AllOraclesPassOnSeveralSeeds) {
  for (std::uint64_t seed : {42ULL, 7ULL, 0xFEEDULL, 123456789ULL}) {
    for (const OracleOutcome& o : runOracles(seed)) {
      EXPECT_TRUE(o.pass())
          << o.id << " seed " << seed << ": expected " << o.expected
          << "s, simulated " << o.actual << "s (tolerance "
          << o.tolerance * 100 << "%)";
    }
  }
}

TEST(Oracles, ComputeOracleIsExact) {
  // The compute-only scenario has zero jitter sources, so it must match to
  // numerical precision — it pins the engine's clock, not a physics model.
  for (const OracleOutcome& o : runOracles(42)) {
    if (o.id == "ORA-COMPUTE") {
      EXPECT_NEAR(o.actual, o.expected, 1e-9 * std::max(1.0, o.expected));
      return;
    }
  }
  FAIL() << "ORA-COMPUTE missing from runOracles";
}

TEST(Oracles, OutcomesCarryAllScenarios) {
  const auto outcomes = runOracles(42);
  ASSERT_EQ(outcomes.size(), 8u);
  EXPECT_EQ(outcomes[0].id, "ORA-COMPUTE");
  EXPECT_EQ(outcomes[1].id, "ORA-META");
  EXPECT_EQ(outcomes[2].id, "ORA-WRITE");
  EXPECT_EQ(outcomes[3].id, "ORA-READ");
  EXPECT_EQ(outcomes[4].id, "ORA-READA-COLD");
  EXPECT_EQ(outcomes[5].id, "ORA-READA-WARM");
  EXPECT_EQ(outcomes[6].id, "ORA-READA-STRIDED");
  EXPECT_EQ(outcomes[7].id, "ORA-READA-RANDOM");
  for (const OracleOutcome& o : outcomes) {
    EXPECT_GT(o.expected, 0.0) << o.id;
    EXPECT_GT(o.actual, 0.0) << o.id;
  }
}

TEST(Oracles, ReadaheadModelsAreExact) {
  // The ORA-READA family models integer byte accounting, not jittered wall
  // time — the simulator must match the closed forms exactly, on any seed.
  for (const std::uint64_t seed : {42ULL, 7ULL, 0xFEEDULL}) {
    for (const OracleOutcome& o : runOracles(seed)) {
      if (o.id.rfind("ORA-READA", 0) != 0) {
        continue;
      }
      EXPECT_DOUBLE_EQ(o.expected, o.actual) << o.id << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace stellar::testkit

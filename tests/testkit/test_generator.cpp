// The generator's contract: same seed ⇒ identical shape and job, every
// shape materializes to a valid JobSpec within the byte cap, and shrinking
// converges to a minimal shape that still satisfies the failure predicate.
#include <gtest/gtest.h>

#include "pfs/params.hpp"
#include "testkit/gen.hpp"

namespace stellar::testkit {
namespace {

TEST(Generator, SameSeedSameShape) {
  for (std::uint64_t seed : {0ULL, 42ULL, 0xDEADBEEFULL}) {
    const CaseShape a = generateShape(seed);
    const CaseShape b = generateShape(seed);
    EXPECT_EQ(a.describe(), b.describe()) << "seed " << seed;
    const GeneratedCase ca = materialize(a);
    const GeneratedCase cb = materialize(b);
    ASSERT_EQ(ca.job.ranks.size(), cb.job.ranks.size());
    for (std::size_t r = 0; r < ca.job.ranks.size(); ++r) {
      EXPECT_EQ(ca.job.ranks[r].size(), cb.job.ranks[r].size());
    }
  }
}

TEST(Generator, ShapesStayWithinBounds) {
  GenOptions opts;
  const pfs::BoundsContext ctx{pfs::ClusterSpec{}.clientRamMb(), 5};
  for (std::uint64_t i = 0; i < 200; ++i) {
    const CaseShape s = generateShape(util::mix64(7, i), opts);
    EXPECT_GE(s.ranks, 1u);
    EXPECT_LE(s.ranks, s.clientNodes * s.ranksPerNode);
    EXPECT_LE(s.ossNodes, 5u);
    // The byte cap must hold (single-chunk shapes may not shrink below it).
    const std::uint64_t files =
        s.sharedFile ? 1 : std::uint64_t{s.ranks} * s.filesPerRank;
    const std::uint64_t writers = s.sharedFile ? s.ranks : 1;
    const std::uint64_t total = files * writers * s.chunksPerFile * s.chunkBytes;
    EXPECT_LE(total, std::max<std::uint64_t>(opts.maxTotalBytes,
                                             writers * files * s.chunkBytes));
    // The sampled config must respect the declared bounds.
    for (const std::string& name : pfs::PfsConfig::tunableNames()) {
      const auto bounds = pfs::paramBounds(name, s.config, ctx);
      const auto value = s.config.get(name);
      if (bounds && value) {
        EXPECT_GE(*value, bounds->min) << name;
        EXPECT_LE(*value, bounds->max) << name;
      }
    }
  }
}

TEST(Generator, EveryRankHasAProgram) {
  for (std::uint64_t i = 0; i < 100; ++i) {
    const GeneratedCase cse = materialize(generateShape(util::mix64(11, i)));
    for (const auto& program : cse.job.ranks) {
      EXPECT_FALSE(program.empty());
    }
  }
}

TEST(Generator, ShrinkReachesMinimalRankCount) {
  CaseShape s = generateShape(0xABCDEF);
  s.ranks = 16;
  s.clientNodes = 3;
  s.ranksPerNode = 8;
  // Predicate independent of everything but rank count: shrinking must
  // drive every other axis to its floor and ranks to the smallest value
  // still satisfying it.
  const CaseShape min = shrink(s, [](const CaseShape& c) { return c.ranks >= 3; });
  EXPECT_EQ(min.ranks, 3u);
  EXPECT_EQ(min.chunksPerFile, 1u);
  EXPECT_EQ(min.chunkBytes, 4096u);
  EXPECT_FALSE(min.doRead);
  EXPECT_FALSE(min.doUnlink);
  EXPECT_TRUE(min.faults.empty());
  EXPECT_TRUE(min.config == pfs::PfsConfig{});
}

TEST(Generator, ShrinkKeepsOriginalWhenPredicateNeedsIt) {
  const CaseShape s = generateShape(0x1234);
  // A predicate nothing simpler can satisfy: shrink returns the original.
  const std::string original = s.describe();
  const CaseShape kept =
      shrink(s, [&](const CaseShape& c) { return c.describe() == original; });
  EXPECT_EQ(kept.describe(), original);
}

}  // namespace
}  // namespace stellar::testkit

#include "exp/campaign.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/file.hpp"
#include "util/json.hpp"

namespace stellar::exp {
namespace {

namespace fs = std::filesystem;

CampaignSpec smallSpec() {
  CampaignSpec spec;
  spec.name = "test-campaign";
  spec.workloads = {"IOR_64K", "MDWorkbench_8K"};
  spec.seeds = {7, 8};
  spec.scale = 0.05;
  return spec;
}

fs::path freshDir(const std::string& name) {
  const fs::path dir = fs::path{::testing::TempDir()} / ("exp_campaign_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(CampaignSpec, CellsAreTheFullDeterministicProduct) {
  CampaignSpec spec = smallSpec();
  spec.models = {"claude-3.7-sonnet", "gpt-4o"};
  spec.faultScenarios = {"", "degraded-ost"};
  const auto cells = spec.cells();
  ASSERT_EQ(cells.size(), 16U);  // 2 workloads x 2 seeds x 2 models x 2 faults
  EXPECT_EQ(cells[0].key(), "IOR_64K|7|claude-3.7-sonnet|none");
  EXPECT_EQ(cells[1].key(), "IOR_64K|7|claude-3.7-sonnet|degraded-ost");
  EXPECT_EQ(cells.back().key(), "MDWorkbench_8K|8|gpt-4o|degraded-ost");
}

TEST(CampaignSpec, JsonRoundTripAndValidation) {
  CampaignSpec spec = smallSpec();
  spec.faultScenarios = {"", "flaky-network"};
  const CampaignSpec back =
      CampaignSpec::fromJson(util::Json::parse(spec.toJson().dump()));
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.workloads, spec.workloads);
  EXPECT_EQ(back.seeds, spec.seeds);
  EXPECT_EQ(back.models, spec.models);
  EXPECT_EQ(back.faultScenarios, spec.faultScenarios);
  EXPECT_EQ(back.warmStart, spec.warmStart);

  util::Json missing = util::Json::makeObject();
  missing.set("name", "broken");
  EXPECT_THROW((void)CampaignSpec::fromJson(missing), util::JsonError);
}

TEST(CampaignRunner, ResumeAfterKillIsByteIdenticalAndSkipsCompletedCells) {
  const CampaignSpec spec = smallSpec();

  // Uninterrupted reference run.
  const fs::path dirA = freshDir("full");
  CampaignOptions optionsA;
  optionsA.storePath = (dirA / "store.jsonl").string();
  const CampaignResult full = CampaignRunner{optionsA}.run(spec);
  ASSERT_TRUE(full.complete);
  EXPECT_EQ(full.cells.size(), 4U);
  EXPECT_EQ(full.executed, 4U);
  EXPECT_EQ(full.skipped, 0U);
  const std::string docFull = full.aggregateJson(spec).dump(2);

  // Killed after 2 cells (maxCells is the deterministic kill), then resumed.
  const fs::path dirB = freshDir("resume");
  CampaignOptions optionsB;
  optionsB.storePath = (dirB / "store.jsonl").string();
  optionsB.maxCells = 2;
  const CampaignResult partial = CampaignRunner{optionsB}.run(spec);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.executed, 2U);
  // No commit yet: the store file holds nothing (shards do).
  EXPECT_EQ((ExperienceStore{optionsB.storePath, {}}).size(), 0U);

  optionsB.maxCells = 0;
  const CampaignResult resumed = CampaignRunner{optionsB}.run(spec);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.executed, 2U);
  EXPECT_EQ(resumed.skipped, 2U);
  EXPECT_EQ(resumed.aggregateJson(spec).dump(2), docFull);

  // Commit happened exactly once, with one record per cell (dedup by key).
  ExperienceStore store{optionsB.storePath, {}};
  EXPECT_EQ(store.size(), 4U);
  // Shard files were absorbed and removed.
  for (const auto& entry : fs::directory_iterator(dirB)) {
    EXPECT_EQ(entry.path().string().find(".shard-"), std::string::npos)
        << entry.path();
  }
}

TEST(CampaignRunner, CorruptManifestLineReExecutesOnlyThatCell) {
  const CampaignSpec spec = smallSpec();
  const fs::path dir = freshDir("corrupt");
  CampaignOptions options;
  options.storePath = (dir / "store.jsonl").string();
  const CampaignResult full = CampaignRunner{options}.run(spec);
  ASSERT_TRUE(full.complete);
  const std::string docFull = full.aggregateJson(spec).dump(2);

  // Damage the second manifest line (torn write).
  const std::string manifestPath = options.storePath + ".manifest";
  ASSERT_TRUE(util::fileExists(manifestPath));
  std::string manifest = util::readFile(manifestPath);
  const std::size_t firstEol = manifest.find('\n');
  ASSERT_NE(firstEol, std::string::npos);
  const std::size_t secondEol = manifest.find('\n', firstEol + 1);
  ASSERT_NE(secondEol, std::string::npos);
  std::string damaged = manifest.substr(0, firstEol + 1) +
                        "{\"torn\":\n" + manifest.substr(secondEol + 1);
  util::writeFile(manifestPath, damaged);

  const CampaignResult rerun = CampaignRunner{options}.run(spec);
  ASSERT_TRUE(rerun.complete);
  EXPECT_EQ(rerun.executed, 1U);  // only the damaged cell re-executes
  EXPECT_EQ(rerun.skipped, 3U);
  EXPECT_EQ(rerun.aggregateJson(spec).dump(2), docFull);
}

TEST(CampaignRunner, MemoryOnlyCampaignRunsWithoutAnyFiles) {
  CampaignSpec spec = smallSpec();
  spec.workloads = {"IOR_64K"};
  spec.seeds = {3};
  CampaignOptions options;  // no storePath: nothing persisted, no resume
  const CampaignResult result = CampaignRunner{options}.run(spec);
  ASSERT_TRUE(result.complete);
  EXPECT_EQ(result.cells.size(), 1U);
  EXPECT_FALSE(result.cells[0].failed);
  EXPECT_GT(result.cells[0].speedup, 1.0);
}

TEST(CampaignRunner, UnknownWorkloadBecomesAFailedCellNotACrash) {
  CampaignSpec spec = smallSpec();
  spec.workloads = {"NoSuchWorkload"};
  spec.seeds = {1};
  CampaignOptions options;
  const CampaignResult result = CampaignRunner{options}.run(spec);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.cells.size(), 1U);
  EXPECT_TRUE(result.cells[0].failed);
  EXPECT_FALSE(result.cells[0].error.empty());
}

}  // namespace
}  // namespace stellar::exp

#include "exp/fingerprint.hpp"

#include <gtest/gtest.h>

#include "rules/rules.hpp"
#include "util/json.hpp"

namespace stellar::exp {
namespace {

rules::WorkloadContext iorLike(double scale) {
  rules::WorkloadContext ctx;
  ctx.metaOpShare = 0.02;
  ctx.readShare = 0.5;
  ctx.sequentialShare = 0.95;
  ctx.sharedFileShare = 0.9;
  ctx.smallFileShare = 0.0;
  ctx.dominantAccessSize = 1 << 16;
  ctx.fileCount = static_cast<std::uint64_t>(50 * scale) + 1;
  ctx.totalBytes = static_cast<std::uint64_t>(3.0e9 * scale) + 1;
  return ctx;
}

rules::WorkloadContext metadataLike() {
  rules::WorkloadContext ctx;
  ctx.metaOpShare = 0.85;
  ctx.readShare = 0.3;
  ctx.sequentialShare = 0.1;
  ctx.sharedFileShare = 0.05;
  ctx.smallFileShare = 1.0;
  ctx.dominantAccessSize = 2048;
  ctx.fileCount = 200000;
  ctx.totalBytes = 400000000;
  return ctx;
}

TEST(Fingerprint, SelfSimilarityIsOne) {
  const Fingerprint fp = fingerprintOf(iorLike(1.0));
  ASSERT_TRUE(fp.valid());
  EXPECT_NEAR(similarity(fp, fp), 1.0, 1e-6);
}

TEST(Fingerprint, IsUnitNorm) {
  const Fingerprint fp = fingerprintOf(metadataLike());
  double norm = 0.0;
  for (const float x : fp.features) {
    norm += static_cast<double>(x) * x;
  }
  EXPECT_NEAR(norm, 1.0, 1e-5);
}

TEST(Fingerprint, SameFamilyAcrossScalesStaysAboveRecallThreshold) {
  // Same I/O character at 20x volume difference: the log-scaled volume
  // coordinates move only mildly, so recall (default 0.95) still matches.
  const double sim =
      similarity(fingerprintOf(iorLike(0.05)), fingerprintOf(iorLike(1.0)));
  EXPECT_GT(sim, 0.95);
}

TEST(Fingerprint, DissimilarCharactersStayBelowRecallThreshold) {
  const double sim =
      similarity(fingerprintOf(iorLike(1.0)), fingerprintOf(metadataLike()));
  EXPECT_LT(sim, 0.95);
}

TEST(Fingerprint, JsonRoundTrip) {
  const Fingerprint fp = fingerprintOf(iorLike(0.3));
  const Fingerprint back =
      Fingerprint::fromJson(util::Json::parse(fp.toJson().dump()));
  ASSERT_TRUE(back.valid());
  EXPECT_NEAR(similarity(fp, back), 1.0, 1e-6);
}

TEST(Fingerprint, WrongArityIsInvalidAndNeverSimilar) {
  util::Json arr = util::Json::makeArray();
  arr.push(0.5);
  arr.push(0.5);
  const Fingerprint bad = Fingerprint::fromJson(arr);
  EXPECT_FALSE(bad.valid());
  EXPECT_EQ(similarity(bad, fingerprintOf(iorLike(1.0))), 0.0);
  EXPECT_EQ(similarity(Fingerprint{}, Fingerprint{}), 0.0);
}

}  // namespace
}  // namespace stellar::exp

#include "exp/experience_store.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "util/file.hpp"
#include "util/json.hpp"

namespace stellar::exp {
namespace {

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + "exp_store_" + name + ".jsonl";
}

rules::WorkloadContext contextWithReadShare(double readShare) {
  rules::WorkloadContext ctx;
  ctx.metaOpShare = 0.1;
  ctx.readShare = readShare;
  ctx.sequentialShare = 0.8;
  ctx.sharedFileShare = 0.5;
  ctx.smallFileShare = 0.2;
  ctx.dominantAccessSize = 1 << 16;
  ctx.fileCount = 100;
  ctx.totalBytes = 1 << 30;
  return ctx;
}

ExperienceRecord makeRecord(const std::string& workload, double readShare,
                            double bestSeconds = 1.0) {
  ExperienceRecord rec;
  rec.workload = workload;
  rec.fingerprint = fingerprintOf(contextWithReadShare(readShare));
  EXPECT_TRUE(rec.bestConfig.set("lov.stripe_count", 4));
  rec.defaultSeconds = 2.0;
  rec.bestSeconds = bestSeconds;
  rec.attempts = 3;
  rec.endReason = "low expected gain";
  rec.model = "claude-3.7-sonnet";
  rec.seed = 7;
  return rec;
}

TEST(ExperienceStore, PersistsAndReloads) {
  const std::string path = tempPath("persist");
  (void)std::remove(path.c_str());
  {
    ExperienceStore store{path, {}};
    EXPECT_EQ(store.size(), 0U);
    const std::string id = store.append(makeRecord("IOR_64K", 0.5));
    EXPECT_EQ(id, "exp-1");
    EXPECT_EQ(store.append(makeRecord("IOR_16M", 0.6)), "exp-2");
  }
  ExperienceStore reloaded{path, {}};
  EXPECT_EQ(reloaded.size(), 2U);
  EXPECT_EQ(reloaded.corruptLinesSkipped(), 0U);
  // Id assignment resumes past the reloaded records.
  EXPECT_EQ(reloaded.append(makeRecord("IO500", 0.4)), "exp-3");
}

TEST(ExperienceStore, AppendWithExistingIdReplacesLastWins) {
  const std::string path = tempPath("lastwins");
  (void)std::remove(path.c_str());
  ExperienceStore store{path, {}};
  ExperienceRecord rec = makeRecord("IOR_64K", 0.5, 1.5);
  rec.id = "cell-a";
  (void)store.append(rec);
  rec.bestSeconds = 0.9;
  (void)store.append(rec);
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(store.records()[0].bestSeconds, 0.9);
  // The duplicate survives reload (journal replay is also last-wins)...
  ExperienceStore reloaded{path, {}};
  ASSERT_EQ(reloaded.size(), 1U);
  EXPECT_EQ(reloaded.records()[0].bestSeconds, 0.9);
}

TEST(ExperienceStore, CorruptLinesAreSkippedWithCountAndStoreStaysUsable) {
  const std::string path = tempPath("corrupt");
  (void)std::remove(path.c_str());
  {
    ExperienceStore store{path, {}};
    (void)store.append(makeRecord("IOR_64K", 0.5));
    (void)store.append(makeRecord("IOR_16M", 0.6));
  }
  // Inject damage: garbage text, a torn (truncated) JSON line, an unknown
  // line type, and a record line missing required fields.
  std::string contents = util::readFile(path);
  contents += "this is not json\n";
  contents += "{\"type\":\"record\",\"id\":\"torn\",\"workl\n";
  contents += "{\"type\":\"mystery\",\"id\":\"x\"}\n";
  contents += "{\"type\":\"record\",\"id\":\"incomplete\"}\n";
  util::writeFile(path, contents);

  ExperienceStore store{path, {}};
  EXPECT_EQ(store.size(), 2U);
  EXPECT_EQ(store.corruptLinesSkipped(), 4U);
  // Still usable: appends and recalls keep working.
  (void)store.append(makeRecord("IO500", 0.4));
  EXPECT_EQ(store.size(), 3U);
  const auto matches =
      store.recall(fingerprintOf(contextWithReadShare(0.5)), 10, 0.9);
  EXPECT_FALSE(matches.empty());
}

TEST(ExperienceStore, JournalReplayRestoresOutcomeLedger) {
  const std::string path = tempPath("journal");
  (void)std::remove(path.c_str());
  {
    ExperienceStore store{path, {}};
    const std::string id = store.append(makeRecord("IOR_64K", 0.5));
    store.confirm(id);
    store.confirm(id);
    store.penalize(id);
    // Journal lines for unknown ids are ignored on replay.
    store.penalize("no-such-id");
  }
  ExperienceStore reloaded{path, {}};
  ASSERT_EQ(reloaded.size(), 1U);
  EXPECT_EQ(reloaded.records()[0].confirmations, 3);
  EXPECT_EQ(reloaded.records()[0].regressions, 1);
}

TEST(ExperienceStore, RecallRanksBySimilarityWithDeterministicTieBreak) {
  ExperienceStore store{"", {}};  // memory-only
  ExperienceRecord close = makeRecord("A", 0.5);
  close.id = "b-close";
  ExperienceRecord tie = makeRecord("B", 0.5);  // identical fingerprint
  tie.id = "a-close";
  ExperienceRecord far = makeRecord("C", 0.9);
  far.id = "c-far";
  (void)store.append(close);
  (void)store.append(tie);
  (void)store.append(far);

  const Fingerprint query = fingerprintOf(contextWithReadShare(0.5));
  const auto top = store.recall(query, 2, 0.0);
  ASSERT_EQ(top.size(), 2U);
  // Exact ties order by id.
  EXPECT_EQ(top[0].record.id, "a-close");
  EXPECT_EQ(top[1].record.id, "b-close");
  // Threshold filters the distant record.
  for (const auto& match : store.recall(query, 10, 0.999)) {
    EXPECT_NE(match.record.id, "c-far");
  }
}

TEST(ExperienceStore, StaleRecordsAreSkippedByRecallAndDroppedByCompaction) {
  const std::string path = tempPath("stale");
  (void)std::remove(path.c_str());
  StoreOptions options;
  options.evictionRegressions = 2;
  ExperienceStore store{path, options};
  const std::string weak = store.append(makeRecord("IOR_64K", 0.5));
  const std::string strong = store.append(makeRecord("IOR_16M", 0.5));

  // Two strikes kill a once-confirmed record...
  store.penalize(weak);
  store.penalize(weak);
  // ...but confirmations buy extra strikes: 3 confirmations tolerate 4.
  store.confirm(strong);
  store.confirm(strong);
  store.penalize(strong);
  store.penalize(strong);
  store.penalize(strong);

  const auto matches =
      store.recall(fingerprintOf(contextWithReadShare(0.5)), 10, 0.0);
  ASSERT_EQ(matches.size(), 1U);
  EXPECT_EQ(matches[0].record.id, strong);

  store.compact();
  EXPECT_EQ(store.size(), 1U);
  ExperienceStore reloaded{path, {}};
  ASSERT_EQ(reloaded.size(), 1U);
  EXPECT_EQ(reloaded.records()[0].id, strong);
  // Compaction folded the journal into the record line.
  EXPECT_EQ(reloaded.records()[0].confirmations, 3);
  EXPECT_EQ(reloaded.records()[0].regressions, 3);
}

TEST(ExperienceStore, CompactionCrashBeforeRenameLeavesOldGenerationReadable) {
  const std::string path = tempPath("crash");
  (void)std::remove(path.c_str());
  (void)std::remove((path + ".compact.tmp").c_str());
  {
    ExperienceStore store{path, {}};
    (void)store.append(makeRecord("IOR_64K", 0.5));
    (void)store.append(makeRecord("IOR_16M", 0.6));
    const std::string doomed = store.append(makeRecord("IO500", 0.7));
    store.penalize(doomed);
    store.penalize(doomed);

    ExperienceStore::CompactionHooks hooks;
    hooks.crashBeforeRename = true;
    store.compact(hooks);  // simulated death: tmp written, store untouched
  }
  // The old generation (records + journal) is fully readable; the orphaned
  // tmp file is ignored.
  EXPECT_TRUE(util::fileExists(path + ".compact.tmp"));
  {
    ExperienceStore reloaded{path, {}};
    EXPECT_EQ(reloaded.size(), 3U);
    EXPECT_EQ(reloaded.corruptLinesSkipped(), 0U);
    // A later compaction completes the generation swap.
    reloaded.compact();
  }
  ExperienceStore after{path, {}};
  EXPECT_EQ(after.size(), 2U);  // the penalized record is gone
  EXPECT_EQ(after.corruptLinesSkipped(), 0U);
}

TEST(ExperienceStore, AbsorbShardsDedupsAndDeletesShardFiles) {
  const std::string path = tempPath("absorb");
  const std::string shard0 = path + ".shard-0";
  const std::string shard1 = path + ".shard-1";
  (void)std::remove(path.c_str());

  ExperienceRecord a = makeRecord("IOR_64K", 0.5, 1.2);
  a.id = "cell-a";
  ExperienceRecord aNewer = a;
  aNewer.bestSeconds = 0.8;
  ExperienceRecord b = makeRecord("IOR_16M", 0.6);
  b.id = "cell-b";
  util::writeFile(shard0, a.toJson().dump() + "\n" + "garbage line\n" +
                              aNewer.toJson().dump() + "\n");
  util::writeFile(shard1, b.toJson().dump() + "\n");

  ExperienceStore store{path, {}};
  EXPECT_EQ(store.absorbShards({shard0, shard1, path + ".shard-missing"}), 3U);
  EXPECT_EQ(store.size(), 2U);
  EXPECT_FALSE(util::fileExists(shard0));
  EXPECT_FALSE(util::fileExists(shard1));
  for (const ExperienceRecord& rec : store.records()) {
    if (rec.id == "cell-a") {
      EXPECT_EQ(rec.bestSeconds, 0.8);  // last shard line wins
    }
  }
  ExperienceStore reloaded{path, {}};
  EXPECT_EQ(reloaded.size(), 2U);
}

TEST(ExperienceStore, MemoryOnlyStoreNeverTouchesDisk) {
  ExperienceStore store{"", {}};
  const std::string id = store.append(makeRecord("IOR_64K", 0.5));
  store.confirm(id);
  store.compact();
  EXPECT_EQ(store.size(), 1U);
  EXPECT_EQ(store.records()[0].confirmations, 2);
}

TEST(ExperienceRecord, JsonRoundTrip) {
  ExperienceRecord rec = makeRecord("IO500", 0.4, 0.9);
  rec.id = "exp-42";
  rec.faults = "degraded-ost";
  rec.confirmations = 2;
  rec.regressions = 1;
  const ExperienceRecord back =
      ExperienceRecord::fromJson(util::Json::parse(rec.toJson().dump()));
  EXPECT_EQ(back.id, "exp-42");
  EXPECT_EQ(back.workload, "IO500");
  EXPECT_EQ(back.faults, "degraded-ost");
  EXPECT_EQ(back.bestSeconds, 0.9);
  EXPECT_EQ(back.confirmations, 2);
  EXPECT_EQ(back.regressions, 1);
  EXPECT_NEAR(similarity(back.fingerprint, rec.fingerprint), 1.0, 1e-6);
  const std::optional<std::int64_t> stripes =
      back.bestConfig.get("lov.stripe_count");
  ASSERT_TRUE(stripes.has_value());
  EXPECT_EQ(*stripes, 4);
}

}  // namespace
}  // namespace stellar::exp

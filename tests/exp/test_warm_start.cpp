// Engine-level warm-start behaviour: recall primes the first attempt,
// dissimilar workloads never recall, and a misleading recalled config is
// penalized (staleness feedback) while the run still recovers.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/experience_store.hpp"
#include "pfs/simulator.hpp"
#include "workloads/workloads.hpp"

namespace stellar::exp {
namespace {

core::TuningRunResult tuneOnce(const std::string& workload, std::uint64_t seed,
                               core::WarmStartProvider* provider) {
  pfs::PfsSimulator simulator;
  core::StellarOptions options;
  options.seed = seed;
  options.agent.seed = seed;
  options.warmStart = provider;
  core::StellarEngine engine{simulator, options};
  return engine.tune(
      workloads::byName(workload, {.ranks = 50, .scale = 0.05, .seed = seed}));
}

TEST(WarmStart, RecallPrimesTheFirstAttempt) {
  ExperienceStore store{"", {}};
  const core::TuningRunResult cold = tuneOnce("IO500", 1, nullptr);
  const std::string id =
      store.append(recordFromRun(cold, 1, "claude-3.7-sonnet", ""));

  const core::TuningRunResult warm = tuneOnce("IO500", 2, &store);
  ASSERT_TRUE(warm.warmStarted);
  EXPECT_GE(warm.warmStartSimilarity, 0.95);
  ASSERT_EQ(warm.warmStartSources, std::vector<std::string>{id});
  ASSERT_FALSE(warm.attempts.empty());
  EXPECT_TRUE(warm.attempts[0].warmStart);
  // The recalled best for a near-identical workload must not regress, so
  // staleness feedback never penalizes it here.
  EXPECT_EQ(store.records()[0].regressions, 0);
  // And the warm run is at least as good as its own default.
  EXPECT_LE(warm.bestSeconds, warm.defaultSeconds);
}

TEST(WarmStart, DissimilarWorkloadRecallsNothingAndLosesNothing) {
  ExperienceStore store{"", {}};
  const core::TuningRunResult donor = tuneOnce("IO500", 1, nullptr);
  (void)store.append(recordFromRun(donor, 1, "claude-3.7-sonnet", ""));

  const core::TuningRunResult cold = tuneOnce("MDWorkbench_8K", 5, nullptr);
  const core::TuningRunResult warm = tuneOnce("MDWorkbench_8K", 5, &store);
  EXPECT_FALSE(warm.warmStarted);
  // No recall means the trajectory is bit-identical to a cold run.
  EXPECT_EQ(warm.bestSeconds, cold.bestSeconds);
  EXPECT_EQ(warm.bestConfig, cold.bestConfig);
  EXPECT_EQ(warm.attempts.size(), cold.attempts.size());
}

/// Provider that recalls a deliberately throttled configuration, to drive
/// the engine's regression feedback path.
class MisleadingProvider final : public core::WarmStartProvider {
 public:
  [[nodiscard]] std::optional<core::WarmStartHint> warmStart(
      const agents::IoReport&) const override {
    core::WarmStartHint hint;
    // Strangle concurrency and read-ahead: clearly worse than the default
    // for a bandwidth-bound workload, but still within valid bounds.
    EXPECT_TRUE(hint.config.set("osc.max_rpcs_in_flight", 1));
    EXPECT_TRUE(hint.config.set("osc.max_pages_per_rpc", 64));
    EXPECT_TRUE(hint.config.set("llite.max_read_ahead_mb", 1));
    EXPECT_TRUE(hint.config.set("llite.max_read_ahead_per_file_mb", 1));
    hint.sourceIds = {"bad-memory"};
    hint.similarity = 0.99;
    hint.provenance = "test";
    return hint;
  }

  void observeWarmStartOutcome(const std::vector<std::string>& sourceIds,
                               bool regressed, bool confirmed) override {
    outcomeSeen = true;
    lastSourceIds = sourceIds;
    lastRegressed = regressed;
    lastConfirmed = confirmed;
  }

  bool outcomeSeen = false;
  std::vector<std::string> lastSourceIds;
  bool lastRegressed = false;
  bool lastConfirmed = false;
};

TEST(WarmStart, MisleadingRecallIsPenalizedAndTheRunRecovers) {
  MisleadingProvider provider;
  const core::TuningRunResult run = tuneOnce("IOR_16M", 3, &provider);
  ASSERT_TRUE(run.warmStarted);
  ASSERT_FALSE(run.attempts.empty());
  EXPECT_TRUE(run.attempts[0].warmStart);
  ASSERT_TRUE(provider.outcomeSeen);
  EXPECT_EQ(provider.lastSourceIds, std::vector<std::string>{"bad-memory"});
  EXPECT_TRUE(provider.lastRegressed);
  EXPECT_FALSE(provider.lastConfirmed);
  // The agent reverts the regression and still ends at/below the default.
  EXPECT_LE(run.bestSeconds, run.defaultSeconds);
}

TEST(WarmStart, IterationsToWithinCountsValidAttemptsOnly) {
  core::TuningRunResult run;
  run.bestSeconds = 1.0;
  agents::Attempt a1;
  a1.seconds = 2.0;
  agents::Attempt a2;
  a2.seconds = 1.2;
  agents::Attempt bad;
  bad.seconds = 0.5;  // would win, but the measurement failed
  bad.measurementFailed = true;
  agents::Attempt a3;
  a3.seconds = 1.0;
  run.attempts = {a1, a2, bad, a3};

  EXPECT_EQ(run.iterationsToWithin(0.05), 4U);        // vs own best (1.0)
  EXPECT_EQ(run.iterationsToWithin(0.25), 2U);        // 1.2 within 25%
  EXPECT_EQ(run.iterationsToWithin(0.05, 1.2), 2U);   // explicit target
  EXPECT_EQ(run.iterationsToWithin(0.05, 0.1), 5U);   // never: attempts+1
}

}  // namespace
}  // namespace stellar::exp

// Tokenizer for the dfquery language — the small SQL-ish analysis language
// the Analysis Agent "writes and executes" over the Darshan dataframes
// (the paper's agent emits Pandas code; this reproduction gives it a real,
// parseable, executable equivalent).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stellar::dfq {

class QueryError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

enum class TokenKind {
  Identifier,  ///< column/table names, keywords (case-insensitive)
  Number,
  String,      ///< 'quoted' or "quoted"
  Symbol,      ///< ( ) , * + - / = == != < <= > >=
  End,
};

struct Token {
  TokenKind kind = TokenKind::End;
  std::string text;     ///< identifiers lower-cased? no: original, keyword
                        ///< matching is case-insensitive separately
  double number = 0.0;
  std::size_t offset = 0;

  [[nodiscard]] bool isKeyword(std::string_view kw) const;
  [[nodiscard]] bool isSymbol(std::string_view s) const {
    return kind == TokenKind::Symbol && text == s;
  }
};

/// Tokenizes the full query; throws QueryError on bad characters or
/// unterminated strings. The final token is always End.
[[nodiscard]] std::vector<Token> tokenize(std::string_view query);

}  // namespace stellar::dfq

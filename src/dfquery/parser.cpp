#include <utility>

#include "dfquery/ast.hpp"
#include "dfquery/lexer.hpp"
#include "util/strings.hpp"

namespace stellar::dfq {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Query run() {
    Query query;
    expectKeyword("select");
    parseSelectList(query);
    expectKeyword("from");
    query.table = expectIdentifier("table name");
    if (peek().isKeyword("where")) {
      ++pos_;
      query.where = parseExpr();
    }
    if (peek().isKeyword("group")) {
      ++pos_;
      expectKeyword("by");
      query.groupBy = expectIdentifier("group-by column");
    }
    if (peek().isKeyword("order")) {
      ++pos_;
      expectKeyword("by");
      query.orderBy = expectIdentifier("order-by column");
      if (peek().isKeyword("asc")) {
        ++pos_;
      } else if (peek().isKeyword("desc")) {
        ++pos_;
        query.orderDescending = true;
      }
    }
    if (peek().isKeyword("limit")) {
      ++pos_;
      const Token& t = peek();
      if (t.kind != TokenKind::Number || t.number < 0) {
        fail("LIMIT expects a non-negative number");
      }
      query.limit = static_cast<std::size_t>(t.number);
      ++pos_;
    }
    if (peek().kind != TokenKind::End) {
      fail("unexpected trailing input: '" + peek().text + "'");
    }
    return query;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw QueryError("query parse error at offset " + std::to_string(peek().offset) +
                     ": " + what);
  }

  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }

  void expectKeyword(std::string_view kw) {
    if (!peek().isKeyword(kw)) {
      fail("expected keyword '" + std::string{kw} + "', got '" + peek().text + "'");
    }
    ++pos_;
  }

  std::string expectIdentifier(const std::string& what) {
    if (peek().kind != TokenKind::Identifier) {
      fail("expected " + what);
    }
    return tokens_[pos_++].text;
  }

  bool consumeSymbol(std::string_view s) {
    if (peek().isSymbol(s)) {
      ++pos_;
      return true;
    }
    return false;
  }

  static std::optional<df::DataFrame::Agg> aggFromName(const std::string& name) {
    const std::string lower = util::toLower(name);
    if (lower == "sum") return df::DataFrame::Agg::Sum;
    if (lower == "mean" || lower == "avg") return df::DataFrame::Agg::Mean;
    if (lower == "min") return df::DataFrame::Agg::Min;
    if (lower == "max") return df::DataFrame::Agg::Max;
    if (lower == "count") return df::DataFrame::Agg::Count;
    return std::nullopt;
  }

  void parseSelectList(Query& query) {
    if (consumeSymbol("*")) {
      return;  // SELECT * => empty select list
    }
    while (true) {
      SelectItem item;
      const std::string first = expectIdentifier("column or aggregate");
      if (peek().isSymbol("(")) {
        const auto agg = aggFromName(first);
        if (!agg) {
          fail("unknown aggregate function: " + first);
        }
        ++pos_;  // '('
        item.agg = agg;
        if (consumeSymbol("*")) {
          if (*agg != df::DataFrame::Agg::Count) {
            fail("only count(*) accepts '*'");
          }
          item.column = "*";
        } else {
          item.column = expectIdentifier("aggregate argument column");
        }
        if (!consumeSymbol(")")) {
          fail("expected ')' after aggregate argument");
        }
      } else {
        item.column = first;
      }
      query.select.push_back(std::move(item));
      if (!consumeSymbol(",")) {
        break;
      }
    }
  }

  ExprPtr makeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
    auto node = std::make_unique<Expr>();
    node->kind = ExprKind::Binary;
    node->text = std::move(op);
    node->args.push_back(std::move(lhs));
    node->args.push_back(std::move(rhs));
    return node;
  }

  ExprPtr parseExpr() { return parseOr(); }

  ExprPtr parseOr() {
    ExprPtr lhs = parseAnd();
    while (peek().isKeyword("or")) {
      ++pos_;
      lhs = makeBinary("or", std::move(lhs), parseAnd());
    }
    return lhs;
  }

  ExprPtr parseAnd() {
    ExprPtr lhs = parseNot();
    while (peek().isKeyword("and")) {
      ++pos_;
      lhs = makeBinary("and", std::move(lhs), parseNot());
    }
    return lhs;
  }

  ExprPtr parseNot() {
    if (peek().isKeyword("not")) {
      ++pos_;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Unary;
      node->text = "not";
      node->args.push_back(parseNot());
      return node;
    }
    return parseComparison();
  }

  ExprPtr parseComparison() {
    ExprPtr lhs = parseAdditive();
    static const std::string_view kOps[] = {"==", "!=", "<=", ">=", "=", "<", ">"};
    for (const auto op : kOps) {
      if (peek().isSymbol(op)) {
        ++pos_;
        // Normalize '=' to '=='.
        return makeBinary(op == "=" ? "==" : std::string{op}, std::move(lhs),
                          parseAdditive());
      }
    }
    return lhs;
  }

  ExprPtr parseAdditive() {
    ExprPtr lhs = parseMultiplicative();
    while (peek().isSymbol("+") || peek().isSymbol("-")) {
      const std::string op = tokens_[pos_++].text;
      lhs = makeBinary(op, std::move(lhs), parseMultiplicative());
    }
    return lhs;
  }

  ExprPtr parseMultiplicative() {
    ExprPtr lhs = parseUnary();
    while (peek().isSymbol("*") || peek().isSymbol("/")) {
      const std::string op = tokens_[pos_++].text;
      lhs = makeBinary(op, std::move(lhs), parseUnary());
    }
    return lhs;
  }

  ExprPtr parseUnary() {
    if (peek().isSymbol("-")) {
      ++pos_;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::Unary;
      node->text = "-";
      node->args.push_back(parseUnary());
      return node;
    }
    return parsePrimary();
  }

  ExprPtr parsePrimary() {
    const Token& t = peek();
    if (t.kind == TokenKind::Number) {
      ++pos_;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::NumberLit;
      node->number = t.number;
      return node;
    }
    if (t.kind == TokenKind::String) {
      ++pos_;
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::StringLit;
      node->text = t.text;
      return node;
    }
    if (t.isSymbol("(")) {
      ++pos_;
      ExprPtr inner = parseExpr();
      if (!consumeSymbol(")")) {
        fail("expected ')'");
      }
      return inner;
    }
    if (t.kind == TokenKind::Identifier) {
      const std::string name = tokens_[pos_++].text;
      if (peek().isSymbol("(")) {
        ++pos_;  // '('
        auto node = std::make_unique<Expr>();
        node->kind = ExprKind::Call;
        node->text = util::toLower(name);
        if (!peek().isSymbol(")")) {
          node->args.push_back(parseExpr());
          while (consumeSymbol(",")) {
            node->args.push_back(parseExpr());
          }
        }
        if (!consumeSymbol(")")) {
          fail("expected ')' after function arguments");
        }
        return node;
      }
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::ColumnRef;
      node->text = name;
      return node;
    }
    fail("expected expression, got '" + t.text + "'");
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Query parseQuery(std::string_view text) {
  Parser parser{tokenize(text)};
  return parser.run();
}

}  // namespace stellar::dfq

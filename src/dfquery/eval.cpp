#include "dfquery/eval.hpp"

#include <algorithm>
#include <cmath>

#include "dfquery/lexer.hpp"

namespace stellar::dfq {

namespace {

double truthiness(const df::Value& v) {
  if (const auto n = df::asNumber(v)) {
    return *n != 0.0 ? 1.0 : 0.0;
  }
  if (const auto* s = std::get_if<std::string>(&v)) {
    return s->empty() ? 0.0 : 1.0;
  }
  return 0.0;
}

double compare(const df::Value& a, const df::Value& b, const std::string& op) {
  // String comparison when both sides are strings; numeric otherwise.
  const auto* sa = std::get_if<std::string>(&a);
  const auto* sb = std::get_if<std::string>(&b);
  int cmp = 0;
  if (sa != nullptr && sb != nullptr) {
    cmp = sa->compare(*sb) < 0 ? -1 : (*sa == *sb ? 0 : 1);
  } else {
    const auto na = df::asNumber(a);
    const auto nb = df::asNumber(b);
    if (!na || !nb) {
      throw QueryError("cannot compare string with number");
    }
    cmp = *na < *nb ? -1 : (*na == *nb ? 0 : 1);
  }
  if (op == "==") return cmp == 0 ? 1.0 : 0.0;
  if (op == "!=") return cmp != 0 ? 1.0 : 0.0;
  if (op == "<") return cmp < 0 ? 1.0 : 0.0;
  if (op == "<=") return cmp <= 0 ? 1.0 : 0.0;
  if (op == ">") return cmp > 0 ? 1.0 : 0.0;
  if (op == ">=") return cmp >= 0 ? 1.0 : 0.0;
  throw QueryError("unknown comparison: " + op);
}

}  // namespace

df::Value evaluateExpr(const Expr& expr, const df::DataFrame& frame, std::size_t row) {
  switch (expr.kind) {
    case ExprKind::NumberLit:
      return expr.number;
    case ExprKind::StringLit:
      return expr.text;
    case ExprKind::ColumnRef:
      return frame.at(expr.text, row);
    case ExprKind::Unary: {
      const df::Value v = evaluateExpr(*expr.args[0], frame, row);
      if (expr.text == "-") {
        const auto n = df::asNumber(v);
        if (!n) {
          throw QueryError("unary '-' on non-numeric value");
        }
        return -*n;
      }
      return truthiness(v) == 0.0 ? 1.0 : 0.0;  // not
    }
    case ExprKind::Binary: {
      const std::string& op = expr.text;
      if (op == "and") {
        if (truthiness(evaluateExpr(*expr.args[0], frame, row)) == 0.0) {
          return 0.0;  // short circuit
        }
        return truthiness(evaluateExpr(*expr.args[1], frame, row));
      }
      if (op == "or") {
        if (truthiness(evaluateExpr(*expr.args[0], frame, row)) != 0.0) {
          return 1.0;
        }
        return truthiness(evaluateExpr(*expr.args[1], frame, row));
      }
      const df::Value a = evaluateExpr(*expr.args[0], frame, row);
      const df::Value b = evaluateExpr(*expr.args[1], frame, row);
      if (op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
          op == ">=") {
        return compare(a, b, op);
      }
      const auto na = df::asNumber(a);
      const auto nb = df::asNumber(b);
      if (!na || !nb) {
        throw QueryError("arithmetic on non-numeric values");
      }
      if (op == "+") return *na + *nb;
      if (op == "-") return *na - *nb;
      if (op == "*") return *na * *nb;
      if (op == "/") {
        if (*nb == 0.0) {
          throw QueryError("division by zero in query expression");
        }
        return *na / *nb;
      }
      throw QueryError("unknown operator: " + op);
    }
    case ExprKind::Call: {
      if (expr.text == "contains") {
        if (expr.args.size() != 2) {
          throw QueryError("contains() expects (column, substring)");
        }
        const df::Value hay = evaluateExpr(*expr.args[0], frame, row);
        const df::Value needle = evaluateExpr(*expr.args[1], frame, row);
        const auto* hs = std::get_if<std::string>(&hay);
        const auto* ns = std::get_if<std::string>(&needle);
        if (hs == nullptr || ns == nullptr) {
          throw QueryError("contains() expects string arguments");
        }
        return hs->find(*ns) != std::string::npos ? 1.0 : 0.0;
      }
      throw QueryError("unknown function in expression: " + expr.text);
    }
  }
  throw QueryError("corrupt expression node");
}

df::DataFrame runQuery(const Query& query, const TableSet& tables) {
  const auto tableIt = tables.find(query.table);
  if (tableIt == tables.end()) {
    throw QueryError("unknown table: " + query.table);
  }
  const df::DataFrame& source = *tableIt->second;

  // WHERE
  df::DataFrame filtered =
      query.where == nullptr
          ? source
          : source.filter([&query](const df::DataFrame& frame, std::size_t row) {
              return df::asNumber(evaluateExpr(*query.where, frame, row))
                         .value_or(0.0) != 0.0;
            });

  const bool hasAggregates =
      std::any_of(query.select.begin(), query.select.end(),
                  [](const SelectItem& item) { return item.agg.has_value(); });

  df::DataFrame result;
  if (hasAggregates && query.groupBy) {
    std::vector<std::pair<df::DataFrame::Agg, std::string>> aggs;
    for (const SelectItem& item : query.select) {
      if (!item.agg) {
        if (item.column != *query.groupBy) {
          throw QueryError("non-aggregated column '" + item.column +
                           "' must be the GROUP BY key");
        }
        continue;  // key column is always included
      }
      // count(*) counts rows; implement via counting the key column.
      aggs.emplace_back(*item.agg,
                        item.column == "*" ? *query.groupBy : item.column);
    }
    result = filtered.groupBy(*query.groupBy, aggs);
  } else if (hasAggregates) {
    // Single-row aggregate result.
    result = df::DataFrame{};
    std::vector<df::Value> row;
    for (const SelectItem& item : query.select) {
      if (!item.agg) {
        throw QueryError("cannot mix aggregates and plain columns without GROUP BY");
      }
      const std::string column = item.column == "*" ? std::string{} : item.column;
      const std::string name =
          std::string{df::aggName(*item.agg)} + "_" +
          (item.column == "*" ? "rows" : item.column);
      result.addColumn(name, df::ColumnType::Double);
      double value = 0.0;
      switch (*item.agg) {
        case df::DataFrame::Agg::Sum: value = filtered.sum(column); break;
        case df::DataFrame::Agg::Mean: value = filtered.mean(column); break;
        case df::DataFrame::Agg::Min: value = filtered.minValue(column); break;
        case df::DataFrame::Agg::Max: value = filtered.maxValue(column); break;
        case df::DataFrame::Agg::Count:
          value = item.column == "*" ? static_cast<double>(filtered.rowCount())
                                     : static_cast<double>(filtered.count(column));
          break;
      }
      row.emplace_back(value);
    }
    result.appendRow(row);
  } else if (query.select.empty()) {
    result = std::move(filtered);  // SELECT *
  } else {
    std::vector<std::string> columns;
    columns.reserve(query.select.size());
    for (const SelectItem& item : query.select) {
      columns.push_back(item.column);
    }
    result = filtered.select(columns);
  }

  if (query.orderBy) {
    result = result.sortBy(*query.orderBy, query.orderDescending);
  }
  if (query.limit) {
    result = result.head(*query.limit);
  }
  return result;
}

df::DataFrame runQuery(std::string_view text, const TableSet& tables) {
  return runQuery(parseQuery(text), tables);
}

}  // namespace stellar::dfq

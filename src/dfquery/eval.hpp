// Query evaluation against a set of named dataframes.
#pragma once

#include <map>
#include <string>

#include "dataframe/dataframe.hpp"
#include "dfquery/ast.hpp"

namespace stellar::dfq {

/// Named tables visible to queries (e.g. {"posix", <darshan table>}).
using TableSet = std::map<std::string, const df::DataFrame*>;

/// Evaluates an expression for one row; numbers are doubles, strings
/// compare lexically, booleans are numbers (0/1). Throws QueryError on
/// unknown columns or type misuse.
[[nodiscard]] df::Value evaluateExpr(const Expr& expr, const df::DataFrame& frame,
                                     std::size_t row);

/// Runs a parsed query. Throws QueryError on unknown tables/columns.
[[nodiscard]] df::DataFrame runQuery(const Query& query, const TableSet& tables);

/// Parses and runs.
[[nodiscard]] df::DataFrame runQuery(std::string_view text, const TableSet& tables);

}  // namespace stellar::dfq

// AST for dfquery.
//
// Grammar:
//   query    := SELECT selList FROM ident [WHERE expr]
//               [GROUP BY ident] [ORDER BY ident [ASC|DESC]] [LIMIT number]
//   selList  := '*' | selItem (',' selItem)*
//   selItem  := agg '(' ident ')' | ident
//   agg      := sum | mean | avg | min | max | count
//   expr     := orE ; orE := andE (OR andE)* ; andE := notE (AND notE)*
//   notE     := NOT notE | cmp
//   cmp      := add (('='|'=='|'!='|'<'|'<='|'>'|'>=') add)?
//   add      := mul (('+'|'-') mul)*
//   mul      := unary (('*'|'/') unary)*
//   unary    := '-' unary | primary
//   primary  := number | string | ident | ident '(' args ')' | '(' expr ')'
// Functions in expressions: contains(column, "substr").
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataframe/dataframe.hpp"

namespace stellar::dfq {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  NumberLit,
  StringLit,
  ColumnRef,
  Unary,   // op: "-", "not"
  Binary,  // op: arithmetic, comparison, "and", "or"
  Call,    // fn: "contains"
};

struct Expr {
  ExprKind kind;
  double number = 0.0;
  std::string text;  ///< string literal / column name / operator / fn name
  std::vector<ExprPtr> args;
};

struct SelectItem {
  std::optional<df::DataFrame::Agg> agg;  ///< nullopt = plain column
  std::string column;                      ///< "*" only valid with Count
};

struct Query {
  std::vector<SelectItem> select;  ///< empty = SELECT *
  std::string table;
  ExprPtr where;                   ///< may be null
  std::optional<std::string> groupBy;
  std::optional<std::string> orderBy;
  bool orderDescending = false;
  std::optional<std::size_t> limit;
};

/// Parses one query; throws QueryError.
[[nodiscard]] Query parseQuery(std::string_view text);

}  // namespace stellar::dfq

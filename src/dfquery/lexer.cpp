#include "dfquery/lexer.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace stellar::dfq {

bool Token::isKeyword(std::string_view kw) const {
  return kind == TokenKind::Identifier &&
         util::toLower(text) == util::toLower(std::string{kw});
}

std::vector<Token> tokenize(std::string_view query) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const auto peek = [&](std::size_t ahead = 0) -> char {
    return i + ahead < query.size() ? query[i + ahead] : '\0';
  };

  while (i < query.size()) {
    const char c = query[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::size_t start = i;
      while (i < query.size() &&
             (std::isalnum(static_cast<unsigned char>(query[i])) != 0 ||
              query[i] == '_' || query[i] == '.')) {
        ++i;
      }
      token.kind = TokenKind::Identifier;
      token.text = std::string{query.substr(start, i - start)};
    } else if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
               (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      std::size_t start = i;
      while (i < query.size() &&
             (std::isdigit(static_cast<unsigned char>(query[i])) != 0 ||
              query[i] == '.' || query[i] == 'e' || query[i] == 'E' ||
              ((query[i] == '+' || query[i] == '-') && i > start &&
               (query[i - 1] == 'e' || query[i - 1] == 'E')))) {
        ++i;
      }
      token.kind = TokenKind::Number;
      token.text = std::string{query.substr(start, i - start)};
      try {
        token.number = std::stod(token.text);
      } catch (const std::exception&) {
        throw QueryError("invalid number '" + token.text + "' at offset " +
                         std::to_string(start));
      }
    } else if (c == '\'' || c == '"') {
      const char quote = c;
      ++i;
      std::string text;
      while (i < query.size() && query[i] != quote) {
        text.push_back(query[i]);
        ++i;
      }
      if (i >= query.size()) {
        throw QueryError("unterminated string literal at offset " +
                         std::to_string(token.offset));
      }
      ++i;  // closing quote
      token.kind = TokenKind::String;
      token.text = std::move(text);
    } else {
      // Multi-char operators first.
      static const std::string_view kTwoChar[] = {"==", "!=", "<=", ">="};
      token.kind = TokenKind::Symbol;
      bool matched = false;
      for (const auto op : kTwoChar) {
        if (query.substr(i, 2) == op) {
          token.text = std::string{op};
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kOneChar = "()*,+-/=<>";
        if (kOneChar.find(c) == std::string::npos) {
          throw QueryError(std::string("unexpected character '") + c +
                           "' at offset " + std::to_string(i));
        }
        token.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(token));
  }
  tokens.push_back(Token{TokenKind::End, "", 0.0, query.size()});
  return tokens;
}

}  // namespace stellar::dfq

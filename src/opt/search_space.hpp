// Normalized search space over the 13 tunables for the traditional
// autotuner baselines (random search, simulated annealing, GP Bayesian
// optimization, heuristic hill climbing). Each parameter maps to [0, 1]
// on a log scale (linear for the small discrete stripe_count domain);
// decoding clamps dependent bounds so every decoded config is valid.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pfs/params.hpp"

namespace stellar::opt {

class SearchSpace {
 public:
  explicit SearchSpace(pfs::BoundsContext bounds);

  [[nodiscard]] std::size_t dims() const noexcept;
  [[nodiscard]] const std::vector<std::string>& names() const noexcept {
    return names_;
  }

  /// x in [0,1]^dims -> valid configuration.
  [[nodiscard]] pfs::PfsConfig decode(std::span<const double> x) const;

  /// Configuration -> normalized point (inverse of decode up to rounding).
  [[nodiscard]] std::vector<double> encode(const pfs::PfsConfig& config) const;

 private:
  pfs::BoundsContext bounds_;
  std::vector<std::string> names_;
};

}  // namespace stellar::opt

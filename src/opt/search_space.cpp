#include "opt/search_space.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stellar::opt {

SearchSpace::SearchSpace(pfs::BoundsContext bounds)
    : bounds_(bounds), names_(pfs::PfsConfig::tunableNames()) {}

std::size_t SearchSpace::dims() const noexcept {
  return names_.size();
}

pfs::PfsConfig SearchSpace::decode(std::span<const double> x) const {
  if (x.size() != names_.size()) {
    throw std::invalid_argument("SearchSpace::decode: dimension mismatch");
  }
  pfs::PfsConfig cfg;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const std::string& name = names_[i];
    const double t = std::clamp(x[i], 0.0, 1.0);
    const auto bounds = pfs::paramBounds(name, cfg, bounds_);
    if (!bounds) {
      continue;
    }
    std::int64_t value = 0;
    if (name == "lov.stripe_count") {
      // Discrete domain {-1, 1..ostCount}: linear bucketing.
      const std::int64_t options = bounds_.ostCount + 1;
      const auto bucket = static_cast<std::int64_t>(t * static_cast<double>(options));
      const std::int64_t idx = std::min(bucket, options - 1);
      value = idx == 0 ? -1 : idx;
    } else {
      const double lo = static_cast<double>(std::max<std::int64_t>(bounds->min, 1));
      const double hi = static_cast<double>(std::max<std::int64_t>(bounds->max, 1));
      if (bounds->min <= 0) {
        // Domains including 0 (readahead, statahead, lru): reserve the
        // bottom 10% of the axis for 0, log-scale the rest.
        if (t < 0.1) {
          value = bounds->min;
        } else {
          const double tt = (t - 0.1) / 0.9;
          value = static_cast<std::int64_t>(
              std::llround(std::exp(std::log(1.0) + tt * (std::log(hi)))));
        }
      } else {
        value = static_cast<std::int64_t>(
            std::llround(std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo)))));
      }
    }
    (void)cfg.set(name, value);
  }
  return pfs::clampConfig(cfg, bounds_);
}

std::vector<double> SearchSpace::encode(const pfs::PfsConfig& config) const {
  std::vector<double> x(names_.size(), 0.0);
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const std::string& name = names_[i];
    const auto value = config.get(name);
    const auto bounds = pfs::paramBounds(name, config, bounds_);
    if (!value || !bounds) {
      continue;
    }
    if (name == "lov.stripe_count") {
      const std::int64_t options = bounds_.ostCount + 1;
      const std::int64_t idx = *value == -1 ? 0 : std::clamp<std::int64_t>(*value, 1, bounds_.ostCount);
      x[i] = (static_cast<double>(idx) + 0.5) / static_cast<double>(options);
      continue;
    }
    const double lo = static_cast<double>(std::max<std::int64_t>(bounds->min, 1));
    const double hi = static_cast<double>(std::max<std::int64_t>(bounds->max, 1));
    const double v = static_cast<double>(std::max<std::int64_t>(*value, 1));
    if (bounds->min <= 0) {
      if (*value <= 0) {
        x[i] = 0.05;
      } else if (hi <= 1.0) {
        x[i] = 1.0;  // degenerate domain {0, 1}
      } else {
        x[i] = 0.1 + 0.9 * (std::log(v) / std::log(hi));
      }
    } else if (hi > lo) {
      x[i] = (std::log(v) - std::log(lo)) / (std::log(hi) - std::log(lo));
    }
    x[i] = std::clamp(x[i], 0.0, 1.0);
  }
  return x;
}

}  // namespace stellar::opt

#include "opt/linalg.hpp"

#include <cmath>

namespace stellar::opt {

Matrix cholesky(const Matrix& a) {
  const std::size_t n = a.rows();
  if (a.cols() != n) {
    throw std::runtime_error("cholesky: matrix not square");
  }
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l.at(i, k) * l.at(j, k);
      }
      if (i == j) {
        if (sum <= 0.0) {
          throw std::runtime_error("cholesky: matrix not positive definite");
        }
        l.at(i, j) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  return l;
}

std::vector<double> forwardSolve(const Matrix& l, const std::vector<double>& b) {
  const std::size_t n = l.rows();
  if (b.size() != n) {
    throw std::runtime_error("forwardSolve: size mismatch");
  }
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= l.at(i, k) * y[k];
    }
    y[i] = sum / l.at(i, i);
  }
  return y;
}

std::vector<double> backwardSolve(const Matrix& l, const std::vector<double>& y) {
  const std::size_t n = l.rows();
  if (y.size() != n) {
    throw std::runtime_error("backwardSolve: size mismatch");
  }
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= l.at(k, i) * x[k];
    }
    x[i] = sum / l.at(i, i);
  }
  return x;
}

std::vector<double> choleskySolve(const Matrix& l, const std::vector<double>& b) {
  return backwardSolve(l, forwardSolve(l, b));
}

}  // namespace stellar::opt

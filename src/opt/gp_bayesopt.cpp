#include <algorithm>
#include <cmath>

#include "opt/linalg.hpp"
#include "opt/optimizers.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace stellar::opt {

namespace {

constexpr double kLengthScale = 0.35;
constexpr double kNoise = 1e-4;
constexpr std::size_t kInitialDesign = 6;
constexpr std::size_t kAcquisitionCandidates = 256;

double rbf(std::span<const double> a, std::span<const double> b) {
  double d2 = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    d2 += d * d;
  }
  return std::exp(-d2 / (2.0 * kLengthScale * kLengthScale));
}

double normalCdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normalPdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * M_PI);
}

struct Gp {
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;       // standardized
  double yMean = 0.0;
  double yStd = 1.0;
  Matrix chol;
  std::vector<double> alpha;    // K^-1 y

  void fit(const std::vector<std::vector<double>>& points,
           const std::vector<double>& raw) {
    xs = points;
    yMean = util::mean(raw);
    yStd = std::max(1e-9, util::stddev(raw));
    ys.resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      ys[i] = (raw[i] - yMean) / yStd;
    }
    const std::size_t n = xs.size();
    Matrix k(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        k.at(i, j) = rbf(xs[i], xs[j]) + (i == j ? kNoise : 0.0);
      }
    }
    chol = cholesky(k);
    alpha = choleskySolve(chol, ys);
  }

  /// Predictive mean (raw units) and standard deviation (standardized).
  std::pair<double, double> predict(std::span<const double> x) const {
    const std::size_t n = xs.size();
    std::vector<double> kstar(n);
    for (std::size_t i = 0; i < n; ++i) {
      kstar[i] = rbf(x, xs[i]);
    }
    double mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      mean += kstar[i] * alpha[i];
    }
    const std::vector<double> v = forwardSolve(chol, kstar);
    double var = 1.0 + kNoise;
    for (const double vi : v) {
      var -= vi * vi;
    }
    var = std::max(var, 1e-12);
    return {mean * yStd + yMean, std::sqrt(var) * yStd};
  }
};

}  // namespace

OptResult bayesianOptimize(const SearchSpace& space, const Objective& objective,
                           const OptOptions& options) {
  OptResult result;
  util::Rng rng{options.seed};

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  const auto evaluate = [&](std::vector<double> x) {
    const pfs::PfsConfig config = space.decode(x);
    const double seconds = objective(config);
    if (result.history.empty() || seconds < result.bestSeconds) {
      result.bestSeconds = seconds;
      result.bestConfig = config;
    }
    result.history.push_back(result.bestSeconds);
    xs.push_back(std::move(x));
    ys.push_back(seconds);
  };

  // Initial space-filling design (random; the default config is included
  // because tuners always know the incumbent).
  evaluate(space.encode(pfs::PfsConfig{}));
  for (std::size_t i = 1; i < std::min(kInitialDesign, options.maxEvaluations); ++i) {
    std::vector<double> x(space.dims());
    for (double& v : x) {
      v = rng.uniform();
    }
    evaluate(std::move(x));
  }

  Gp gp;
  while (result.history.size() < options.maxEvaluations) {
    gp.fit(xs, ys);
    const double best = *std::min_element(ys.begin(), ys.end());

    // Acquisition: expected improvement over random + local candidates.
    std::vector<double> bestCandidate;
    double bestEi = -1.0;
    for (std::size_t c = 0; c < kAcquisitionCandidates; ++c) {
      std::vector<double> x(space.dims());
      if (c % 4 == 0 && !xs.empty()) {
        // Local perturbation of the incumbent.
        const std::vector<double>& incumbent =
            xs[static_cast<std::size_t>(std::min_element(ys.begin(), ys.end()) -
                                        ys.begin())];
        for (std::size_t d = 0; d < x.size(); ++d) {
          x[d] = std::clamp(incumbent[d] + rng.normal(0.0, 0.1), 0.0, 1.0);
        }
      } else {
        for (double& v : x) {
          v = rng.uniform();
        }
      }
      const auto [mean, sd] = gp.predict(x);
      const double z = (best - mean) / std::max(sd, 1e-12);
      const double ei = (best - mean) * normalCdf(z) + sd * normalPdf(z);
      if (ei > bestEi) {
        bestEi = ei;
        bestCandidate = std::move(x);
      }
    }
    if (bestCandidate.empty()) {
      // Acquisition degenerated (all candidates non-finite or non-positive
      // EI): fall back to exploration so the budget is never wasted.
      bestCandidate.resize(space.dims());
      for (double& v : bestCandidate) {
        v = rng.uniform();
      }
    }
    evaluate(std::move(bestCandidate));
  }
  return result;
}

}  // namespace stellar::opt

// Minimal dense linear algebra for the Gaussian-process optimizer:
// symmetric positive-definite solves via Cholesky.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace stellar::opt {

/// Row-major square matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols),
      data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Cholesky factor L (lower) of a symmetric positive-definite matrix;
/// throws std::runtime_error if the matrix is not SPD.
[[nodiscard]] Matrix cholesky(const Matrix& a);

/// Solves L y = b (forward substitution), L lower-triangular.
[[nodiscard]] std::vector<double> forwardSolve(const Matrix& l,
                                               const std::vector<double>& b);

/// Solves L^T x = y (backward substitution).
[[nodiscard]] std::vector<double> backwardSolve(const Matrix& l,
                                                const std::vector<double>& y);

/// Solves A x = b given the Cholesky factor of A.
[[nodiscard]] std::vector<double> choleskySolve(const Matrix& l,
                                                const std::vector<double>& b);

}  // namespace stellar::opt

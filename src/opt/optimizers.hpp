// Traditional black-box autotuners — the iteration-hungry methods the
// paper contrasts STELLAR against (§1, §3.1): random search, simulated
// annealing, GP Bayesian optimization (SAPPHIRE-style), and an
// ASCAR-style heuristic hill climber.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "opt/search_space.hpp"
#include "pfs/params.hpp"

namespace stellar::opt {

/// Wall seconds for a configuration (lower is better). One call = one full
/// application execution — the expensive thing the paper counts.
using Objective = std::function<double(const pfs::PfsConfig&)>;

struct OptResult {
  pfs::PfsConfig bestConfig;
  double bestSeconds = 0.0;
  /// best-so-far after each evaluation (index 0 = first evaluation).
  std::vector<double> history;

  /// First evaluation index (1-based) whose best-so-far is within
  /// `factor` of `target` seconds; 0 when never reached.
  [[nodiscard]] std::size_t evaluationsToReach(double target, double factor) const;
};

struct OptOptions {
  std::size_t maxEvaluations = 200;
  std::uint64_t seed = 5;
};

[[nodiscard]] OptResult randomSearch(const SearchSpace& space, const Objective& objective,
                                     const OptOptions& options = {});

[[nodiscard]] OptResult simulatedAnnealing(const SearchSpace& space,
                                           const Objective& objective,
                                           const OptOptions& options = {});

/// GP surrogate (RBF kernel) with expected-improvement acquisition.
[[nodiscard]] OptResult bayesianOptimize(const SearchSpace& space,
                                         const Objective& objective,
                                         const OptOptions& options = {});

/// ASCAR-style rule controller: fixed step rules per parameter, hill
/// climbing one parameter at a time in reaction to measured throughput.
[[nodiscard]] OptResult heuristicController(const SearchSpace& space,
                                            const Objective& objective,
                                            const OptOptions& options = {});

}  // namespace stellar::opt

#include "opt/optimizers.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace stellar::opt {

std::size_t OptResult::evaluationsToReach(double target, double factor) const {
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (history[i] <= target * factor) {
      return i + 1;
    }
  }
  return 0;
}

namespace {

void recordEvaluation(OptResult& result, const pfs::PfsConfig& config, double seconds) {
  if (result.history.empty() || seconds < result.bestSeconds) {
    result.bestSeconds = seconds;
    result.bestConfig = config;
  }
  result.history.push_back(result.bestSeconds);
}

std::vector<double> randomPoint(util::Rng& rng, std::size_t dims) {
  std::vector<double> x(dims);
  for (double& v : x) {
    v = rng.uniform();
  }
  return x;
}

}  // namespace

OptResult randomSearch(const SearchSpace& space, const Objective& objective,
                       const OptOptions& options) {
  OptResult result;
  util::Rng rng{options.seed};
  for (std::size_t i = 0; i < options.maxEvaluations; ++i) {
    const pfs::PfsConfig config = space.decode(randomPoint(rng, space.dims()));
    recordEvaluation(result, config, objective(config));
  }
  return result;
}

OptResult simulatedAnnealing(const SearchSpace& space, const Objective& objective,
                             const OptOptions& options) {
  OptResult result;
  util::Rng rng{options.seed};

  std::vector<double> current = space.encode(pfs::PfsConfig{});
  pfs::PfsConfig currentConfig = space.decode(current);
  double currentCost = objective(currentConfig);
  recordEvaluation(result, currentConfig, currentCost);

  const double t0 = 0.30;  // relative-cost temperature scale
  for (std::size_t i = 1; i < options.maxEvaluations; ++i) {
    const double progress =
        static_cast<double>(i) / static_cast<double>(options.maxEvaluations);
    const double temperature = t0 * (1.0 - progress) + 1e-3;

    std::vector<double> proposal = current;
    // Perturb 1-3 coordinates with gaussian steps shrinking over time.
    const int k = 1 + static_cast<int>(rng.uniformInt(0, 2));
    for (int j = 0; j < k; ++j) {
      const auto dim = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(space.dims()) - 1));
      proposal[dim] =
          std::clamp(proposal[dim] + rng.normal(0.0, 0.15 + 0.25 * temperature), 0.0, 1.0);
    }
    const pfs::PfsConfig config = space.decode(proposal);
    const double cost = objective(config);
    recordEvaluation(result, config, cost);

    const double delta = (cost - currentCost) / std::max(1e-9, currentCost);
    if (delta <= 0.0 || rng.chance(std::exp(-delta / temperature))) {
      current = std::move(proposal);
      currentConfig = config;
      currentCost = cost;
    }
  }
  return result;
}

OptResult heuristicController(const SearchSpace& space, const Objective& objective,
                              const OptOptions& options) {
  OptResult result;
  util::Rng rng{options.seed};

  // ASCAR-style: a fixed rule table of multiplicative steps per parameter,
  // applied one at a time; a step that helps is kept and retried, a step
  // that hurts is inverted once, then the controller moves on. This is the
  // classic workload-agnostic heuristic whose convergence the ML-based
  // literature criticizes.
  pfs::PfsConfig current;
  double currentCost = objective(current);
  recordEvaluation(result, current, currentCost);

  const auto names = space.names();
  std::size_t evals = 1;
  std::size_t paramIdx = 0;
  double step = 2.0;
  bool inverted = false;
  while (evals < options.maxEvaluations) {
    const std::string& name = names[paramIdx % names.size()];
    pfs::PfsConfig candidate = current;
    const auto value = candidate.get(name).value_or(1);
    const auto next = static_cast<std::int64_t>(
        std::llround(static_cast<double>(std::max<std::int64_t>(value, 1)) *
                     (inverted ? 1.0 / step : step)));
    (void)candidate.set(name, next);
    candidate = pfs::clampConfig(candidate, pfs::BoundsContext{});
    const double cost = objective(candidate);
    recordEvaluation(result, candidate, cost);
    ++evals;

    if (cost < currentCost * 0.995) {
      current = candidate;
      currentCost = cost;
      inverted = false;  // keep pushing the same direction next visit
    } else if (!inverted) {
      inverted = true;  // try the opposite direction once
      continue;
    } else {
      inverted = false;
      ++paramIdx;  // give up on this knob for this round
    }
    if (rng.chance(0.1)) {
      ++paramIdx;  // occasional rotation mimics the controller's scheduling
    }
  }
  return result;
}

}  // namespace stellar::opt

// Document chunker: fixed-size word windows with overlap, mirroring the
// paper's LlamaIndex defaults (1024-token chunks, 20-token overlap, §4.2.2).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace stellar::rag {

struct Chunk {
  std::string text;
  std::size_t index = 0;       ///< position in the document
  std::size_t firstToken = 0;  ///< word offset of the chunk start
};

struct ChunkerOptions {
  std::size_t chunkTokens = 1024;
  std::size_t overlapTokens = 20;
};

/// Splits `text` into overlapping chunks. Word boundaries are preserved;
/// the final chunk may be shorter. Throws std::invalid_argument if the
/// overlap is not smaller than the chunk size.
[[nodiscard]] std::vector<Chunk> chunkDocument(std::string_view text,
                                               const ChunkerOptions& options = {});

}  // namespace stellar::rag

#include "rag/chunker.hpp"

#include <cctype>
#include <stdexcept>

namespace stellar::rag {

namespace {

/// Word spans (begin, end offsets) in the original text, so chunk text
/// preserves original spacing/newlines between the first and last word.
std::vector<std::pair<std::size_t, std::size_t>> wordSpans(std::string_view text) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    const std::size_t begin = i;
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      ++i;
    }
    if (i > begin) {
      spans.emplace_back(begin, i);
    }
  }
  return spans;
}

}  // namespace

std::vector<Chunk> chunkDocument(std::string_view text, const ChunkerOptions& options) {
  if (options.chunkTokens == 0 || options.overlapTokens >= options.chunkTokens) {
    throw std::invalid_argument("chunker: overlap must be smaller than chunk size");
  }
  const auto spans = wordSpans(text);
  std::vector<Chunk> chunks;
  if (spans.empty()) {
    return chunks;
  }
  const std::size_t step = options.chunkTokens - options.overlapTokens;
  for (std::size_t start = 0; start < spans.size(); start += step) {
    const std::size_t end = std::min(start + options.chunkTokens, spans.size());
    Chunk chunk;
    chunk.index = chunks.size();
    chunk.firstToken = start;
    chunk.text = std::string{
        text.substr(spans[start].first, spans[end - 1].second - spans[start].first)};
    chunks.push_back(std::move(chunk));
    if (end == spans.size()) {
      break;
    }
  }
  return chunks;
}

}  // namespace stellar::rag

#include "rag/embedder.hpp"

#include <cmath>

#include "rag/tokenizer.hpp"
#include "util/rng.hpp"

namespace stellar::rag {

HashedTfIdfEmbedder::HashedTfIdfEmbedder(std::size_t dimensions, std::uint64_t seed)
    : dims_(dimensions == 0 ? 1 : dimensions), seed_(seed) {}

void HashedTfIdfEmbedder::fit(const std::vector<std::string>& corpus) {
  documents_ = corpus.size();
  documentFrequency_.clear();
  for (const std::string& doc : corpus) {
    // Count each term once per document.
    std::unordered_map<std::string, bool> seen;
    for (const std::string& term : tokenizeWords(doc)) {
      if (!seen.emplace(term, true).second) {
        continue;
      }
      ++documentFrequency_[term];
    }
  }
}

std::size_t HashedTfIdfEmbedder::slot(std::string_view term) const {
  std::uint64_t h = seed_;
  for (const char c : term) {
    h = util::mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return static_cast<std::size_t>(h % dims_);
}

double HashedTfIdfEmbedder::idf(const std::string& term) const {
  if (documents_ == 0) {
    return 1.0;
  }
  const auto it = documentFrequency_.find(term);
  const double df = it == documentFrequency_.end() ? 0.0 : it->second;
  // Smoothed IDF; unseen terms get the maximum weight.
  return std::log((1.0 + static_cast<double>(documents_)) / (1.0 + df)) + 1.0;
}

std::vector<float> HashedTfIdfEmbedder::embed(std::string_view text) const {
  std::vector<float> vec(dims_, 0.0F);
  // Sublinear TF weighting.
  std::unordered_map<std::string, std::uint32_t> tf;
  for (const std::string& term : tokenizeWords(text)) {
    ++tf[term];
  }
  for (const auto& [term, count] : tf) {
    const double weight = (1.0 + std::log(static_cast<double>(count))) * idf(term);
    // Signed hashing reduces collision bias.
    std::uint64_t h = seed_ ^ 0xABCDEF12ULL;
    for (const char c : term) {
      h = util::mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    const float sign = (h & 1) != 0 ? 1.0F : -1.0F;
    vec[slot(term)] += sign * static_cast<float>(weight);
  }
  // L2 normalize.
  double norm = 0.0;
  for (const float v : vec) {
    norm += static_cast<double>(v) * v;
  }
  if (norm > 0.0) {
    const auto inv = static_cast<float>(1.0 / std::sqrt(norm));
    for (float& v : vec) {
      v *= inv;
    }
  }
  return vec;
}

double HashedTfIdfEmbedder::cosine(const std::vector<float>& a,
                                   const std::vector<float>& b) {
  const std::size_t n = std::min(a.size(), b.size());
  double dot = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    dot += static_cast<double>(a[i]) * b[i];
  }
  return dot;  // inputs are L2-normalized
}

}  // namespace stellar::rag

// In-memory vector index: embed + store chunks, retrieve top-K by cosine.
// Plays LlamaIndex's role in the paper's offline phase.
#pragma once

#include <string>
#include <vector>

#include "rag/chunker.hpp"
#include "rag/embedder.hpp"

namespace stellar::rag {

struct RetrievedChunk {
  const Chunk* chunk = nullptr;
  double score = 0.0;
};

class VectorIndex {
 public:
  explicit VectorIndex(HashedTfIdfEmbedder embedder = HashedTfIdfEmbedder{});

  /// Chunks the document, fits the embedder on the chunks, embeds and
  /// stores them. Replaces any previous content.
  void buildFromDocument(std::string_view document, const ChunkerOptions& options = {});

  [[nodiscard]] std::size_t size() const noexcept { return chunks_.size(); }
  [[nodiscard]] const std::vector<Chunk>& chunks() const noexcept { return chunks_; }

  /// Top-K chunks by cosine similarity, highest first. K is clamped to the
  /// index size. Deterministic tie-break by chunk index.
  [[nodiscard]] std::vector<RetrievedChunk> query(std::string_view text,
                                                  std::size_t topK) const;

 private:
  HashedTfIdfEmbedder embedder_;
  std::vector<Chunk> chunks_;
  std::vector<std::vector<float>> vectors_;
};

}  // namespace stellar::rag

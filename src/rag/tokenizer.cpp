#include "rag/tokenizer.hpp"

#include <cctype>

namespace stellar::rag {

std::vector<std::string> tokenizeWords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  const auto isWordChar = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == '.';
  };
  for (const char c : text) {
    if (isWordChar(c)) {
      current.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      // Trim trailing dots (sentence punctuation) but keep interior dots.
      while (!current.empty() && current.back() == '.') {
        current.pop_back();
      }
      if (!current.empty()) {
        tokens.push_back(std::move(current));
      }
      current.clear();
    }
  }
  if (!current.empty()) {
    while (!current.empty() && current.back() == '.') {
      current.pop_back();
    }
    if (!current.empty()) {
      tokens.push_back(std::move(current));
    }
  }
  return tokens;
}

std::size_t approxTokenCount(std::string_view text) {
  // Rough BPE approximation: 1 token per short word, extra tokens for long
  // words (BPE splits them), computed without allocation.
  std::size_t tokens = 0;
  std::size_t wordLen = 0;
  for (const char c : text) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (wordLen > 0) {
        tokens += 1 + wordLen / 7;
        wordLen = 0;
      }
    } else {
      ++wordLen;
    }
  }
  if (wordLen > 0) {
    tokens += 1 + wordLen / 7;
  }
  return tokens;
}

}  // namespace stellar::rag

// Word-level tokenizer for the RAG pipeline: lower-cased alphanumeric
// terms (dots and underscores kept inside words so parameter names like
// osc.max_rpcs_in_flight stay single tokens).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stellar::rag {

[[nodiscard]] std::vector<std::string> tokenizeWords(std::string_view text);

/// Approximate "LLM token" count used for chunk sizing and the token
/// accounting in src/llm (≈ one token per word piece, punctuation merged).
[[nodiscard]] std::size_t approxTokenCount(std::string_view text);

}  // namespace stellar::rag

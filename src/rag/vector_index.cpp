#include "rag/vector_index.hpp"

#include <algorithm>

namespace stellar::rag {

VectorIndex::VectorIndex(HashedTfIdfEmbedder embedder) : embedder_(std::move(embedder)) {}

void VectorIndex::buildFromDocument(std::string_view document,
                                    const ChunkerOptions& options) {
  chunks_ = chunkDocument(document, options);
  std::vector<std::string> corpus;
  corpus.reserve(chunks_.size());
  for (const Chunk& chunk : chunks_) {
    corpus.push_back(chunk.text);
  }
  embedder_.fit(corpus);
  vectors_.clear();
  vectors_.reserve(chunks_.size());
  for (const Chunk& chunk : chunks_) {
    vectors_.push_back(embedder_.embed(chunk.text));
  }
}

std::vector<RetrievedChunk> VectorIndex::query(std::string_view text,
                                               std::size_t topK) const {
  const std::vector<float> qvec = embedder_.embed(text);
  std::vector<RetrievedChunk> scored;
  scored.reserve(chunks_.size());
  for (std::size_t i = 0; i < chunks_.size(); ++i) {
    scored.push_back(
        RetrievedChunk{&chunks_[i], HashedTfIdfEmbedder::cosine(qvec, vectors_[i])});
  }
  const std::size_t k = std::min(topK, scored.size());
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end(), [](const RetrievedChunk& a, const RetrievedChunk& b) {
                      if (a.score != b.score) {
                        return a.score > b.score;
                      }
                      return a.chunk->index < b.chunk->index;
                    });
  scored.resize(k);
  return scored;
}

}  // namespace stellar::rag

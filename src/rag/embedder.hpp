// Deterministic text embedder: hashed TF-IDF vectors with cosine
// similarity. Stands in for OpenAI's text-embedding-3-large (§4.2.2) — it
// has the property that matters for the reproduction: chunks about a
// parameter score high for queries naming that parameter, and unrelated
// filler scores low.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace stellar::rag {

class HashedTfIdfEmbedder {
 public:
  explicit HashedTfIdfEmbedder(std::size_t dimensions = 512, std::uint64_t seed = 17);

  /// Learns document frequencies from the corpus (one string per chunk).
  void fit(const std::vector<std::string>& corpus);

  [[nodiscard]] std::size_t dimensions() const noexcept { return dims_; }
  [[nodiscard]] bool fitted() const noexcept { return documents_ > 0; }

  /// Embeds text into an L2-normalized vector. Usable before fit() (IDF
  /// defaults to 1), but retrieval quality comes from fitting first.
  [[nodiscard]] std::vector<float> embed(std::string_view text) const;

  /// Cosine similarity of two normalized embeddings.
  [[nodiscard]] static double cosine(const std::vector<float>& a,
                                     const std::vector<float>& b);

 private:
  [[nodiscard]] std::size_t slot(std::string_view term) const;
  [[nodiscard]] double idf(const std::string& term) const;

  std::size_t dims_;
  std::uint64_t seed_;
  std::size_t documents_ = 0;
  std::unordered_map<std::string, std::uint32_t> documentFrequency_;
};

}  // namespace stellar::rag

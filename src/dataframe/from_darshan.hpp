// The preprocessing step of Figure 1: Darshan log -> dataframes plus a
// column-description sidecar, the exact inputs the Analysis Agent receives.
#pragma once

#include <string>

#include "darshan/log.hpp"
#include "dataframe/dataframe.hpp"

namespace stellar::df {

/// The tables extracted from one Darshan log.
struct DarshanTables {
  /// One row per file record; columns: file, rank, shared_ranks, then all
  /// POSIX counters and fcounters.
  DataFrame posix;
  /// Free-text header string variable, as the preprocessing script loads.
  std::string headerText;
  /// Column-description sidecar (one "name: description" line per column).
  std::string columnDescriptions;
};

[[nodiscard]] DarshanTables tablesFromLog(const darshan::DarshanLog& log);

}  // namespace stellar::df

// Columnar in-memory dataframe.
//
// Plays the role of the Pandas DataFrames the paper's preprocessing builds
// from Darshan logs (§4.1): the Analysis Agent operates on these tables
// through the dfquery language instead of raw logs.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace stellar::df {

class DataFrameError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One cell: monostate = null.
using Value = std::variant<std::monostate, std::int64_t, double, std::string>;

[[nodiscard]] std::string toString(const Value& v);
[[nodiscard]] bool isNull(const Value& v) noexcept;
/// Numeric view of a cell; nullopt for nulls/strings.
[[nodiscard]] std::optional<double> asNumber(const Value& v) noexcept;

enum class ColumnType { Int64, Double, String };

/// Typed column storage.
class Column {
 public:
  explicit Column(ColumnType type);

  [[nodiscard]] ColumnType type() const noexcept { return type_; }
  [[nodiscard]] std::size_t size() const noexcept;

  void append(Value v);  ///< must match the column type (int promotes to double)
  [[nodiscard]] Value at(std::size_t row) const;

  [[nodiscard]] const std::vector<std::int64_t>& ints() const;
  [[nodiscard]] const std::vector<double>& doubles() const;
  [[nodiscard]] const std::vector<std::string>& strings() const;

 private:
  ColumnType type_;
  std::vector<std::int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

class DataFrame {
 public:
  DataFrame() = default;

  /// Adds an empty column; throws on duplicate names.
  void addColumn(std::string name, ColumnType type);

  /// Appends a row given as values in column order.
  void appendRow(const std::vector<Value>& row);

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_; }
  [[nodiscard]] std::size_t columnCount() const noexcept { return columns_.size(); }
  [[nodiscard]] const std::vector<std::string>& columnNames() const noexcept {
    return names_;
  }
  [[nodiscard]] bool hasColumn(std::string_view name) const noexcept;
  [[nodiscard]] const Column& column(std::string_view name) const;
  [[nodiscard]] Value at(std::string_view column, std::size_t row) const;

  /// Row subset by predicate.
  [[nodiscard]] DataFrame filter(
      const std::function<bool(const DataFrame&, std::size_t)>& keep) const;

  /// Column subset (order preserved as given).
  [[nodiscard]] DataFrame select(const std::vector<std::string>& columns) const;

  /// Sorts by one column; nulls last.
  [[nodiscard]] DataFrame sortBy(std::string_view column, bool descending = false) const;

  /// First n rows.
  [[nodiscard]] DataFrame head(std::size_t n) const;

  // Aggregations over a column (nulls skipped; strings invalid).
  [[nodiscard]] double sum(std::string_view column) const;
  [[nodiscard]] double mean(std::string_view column) const;
  [[nodiscard]] double minValue(std::string_view column) const;
  [[nodiscard]] double maxValue(std::string_view column) const;
  [[nodiscard]] std::size_t count(std::string_view column) const;  ///< non-null cells

  /// group-by one key column with (aggregate, column) pairs; result has
  /// the key column plus one column per aggregate named "agg_column".
  enum class Agg { Sum, Mean, Min, Max, Count };
  [[nodiscard]] DataFrame groupBy(std::string_view key,
                                  const std::vector<std::pair<Agg, std::string>>& aggs) const;

  /// Fixed-width text rendering (used in agent transcripts); at most
  /// maxRows rows, with a truncation note.
  [[nodiscard]] std::string toText(std::size_t maxRows = 20) const;

 private:
  [[nodiscard]] std::size_t columnIndex(std::string_view name) const;

  std::vector<std::string> names_;
  std::vector<Column> columns_;
  std::size_t rows_ = 0;
};

[[nodiscard]] const char* aggName(DataFrame::Agg agg) noexcept;

}  // namespace stellar::df

#include "dataframe/dataframe.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <numeric>

namespace stellar::df {

std::string toString(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) {
    return "null";
  }
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

bool isNull(const Value& v) noexcept {
  return std::holds_alternative<std::monostate>(v);
}

std::optional<double> asNumber(const Value& v) noexcept {
  if (const auto* i = std::get_if<std::int64_t>(&v)) {
    return static_cast<double>(*i);
  }
  if (const auto* d = std::get_if<double>(&v)) {
    return *d;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------- Column --

Column::Column(ColumnType type) : type_(type) {}

std::size_t Column::size() const noexcept {
  switch (type_) {
    case ColumnType::Int64: return ints_.size();
    case ColumnType::Double: return doubles_.size();
    case ColumnType::String: return strings_.size();
  }
  return 0;
}

void Column::append(Value v) {
  switch (type_) {
    case ColumnType::Int64: {
      if (const auto* i = std::get_if<std::int64_t>(&v)) {
        ints_.push_back(*i);
        return;
      }
      throw DataFrameError("type mismatch appending to int64 column");
    }
    case ColumnType::Double: {
      if (const auto n = asNumber(v)) {
        doubles_.push_back(*n);
        return;
      }
      throw DataFrameError("type mismatch appending to double column");
    }
    case ColumnType::String: {
      if (auto* s = std::get_if<std::string>(&v)) {
        strings_.push_back(std::move(*s));
        return;
      }
      throw DataFrameError("type mismatch appending to string column");
    }
  }
}

Value Column::at(std::size_t row) const {
  if (row >= size()) {
    throw DataFrameError("row index out of range");
  }
  switch (type_) {
    case ColumnType::Int64: return ints_[row];
    case ColumnType::Double: return doubles_[row];
    case ColumnType::String: return strings_[row];
  }
  return std::monostate{};
}

const std::vector<std::int64_t>& Column::ints() const {
  if (type_ != ColumnType::Int64) {
    throw DataFrameError("not an int64 column");
  }
  return ints_;
}

const std::vector<double>& Column::doubles() const {
  if (type_ != ColumnType::Double) {
    throw DataFrameError("not a double column");
  }
  return doubles_;
}

const std::vector<std::string>& Column::strings() const {
  if (type_ != ColumnType::String) {
    throw DataFrameError("not a string column");
  }
  return strings_;
}

// ------------------------------------------------------------- DataFrame --

void DataFrame::addColumn(std::string name, ColumnType type) {
  if (hasColumn(name)) {
    throw DataFrameError("duplicate column: " + name);
  }
  if (rows_ != 0) {
    throw DataFrameError("cannot add a column to a non-empty frame");
  }
  names_.push_back(std::move(name));
  columns_.emplace_back(type);
}

void DataFrame::appendRow(const std::vector<Value>& row) {
  if (row.size() != columns_.size()) {
    throw DataFrameError("row width mismatch");
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].append(row[c]);
  }
  ++rows_;
}

bool DataFrame::hasColumn(std::string_view name) const noexcept {
  for (const auto& n : names_) {
    if (n == name) {
      return true;
    }
  }
  return false;
}

std::size_t DataFrame::columnIndex(std::string_view name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      return i;
    }
  }
  throw DataFrameError("no such column: " + std::string{name});
}

const Column& DataFrame::column(std::string_view name) const {
  return columns_[columnIndex(name)];
}

Value DataFrame::at(std::string_view column, std::size_t row) const {
  return columns_[columnIndex(column)].at(row);
}

DataFrame DataFrame::filter(
    const std::function<bool(const DataFrame&, std::size_t)>& keep) const {
  DataFrame out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out.addColumn(names_[c], columns_[c].type());
  }
  std::vector<Value> row(columns_.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!keep(*this, r)) {
      continue;
    }
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      row[c] = columns_[c].at(r);
    }
    out.appendRow(row);
  }
  return out;
}

DataFrame DataFrame::select(const std::vector<std::string>& columns) const {
  DataFrame out;
  std::vector<std::size_t> idx;
  for (const auto& name : columns) {
    idx.push_back(columnIndex(name));
    out.addColumn(name, columns_[idx.back()].type());
  }
  std::vector<Value> row(idx.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < idx.size(); ++c) {
      row[c] = columns_[idx[c]].at(r);
    }
    out.appendRow(row);
  }
  return out;
}

DataFrame DataFrame::sortBy(std::string_view columnName, bool descending) const {
  const Column& key = column(columnName);
  std::vector<std::size_t> order(rows_);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Value va = key.at(a);
    const Value vb = key.at(b);
    if (key.type() == ColumnType::String) {
      const auto& sa = std::get<std::string>(va);
      const auto& sb = std::get<std::string>(vb);
      return descending ? sb < sa : sa < sb;
    }
    const double na = asNumber(va).value_or(std::numeric_limits<double>::infinity());
    const double nb = asNumber(vb).value_or(std::numeric_limits<double>::infinity());
    return descending ? nb < na : na < nb;
  });

  DataFrame out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out.addColumn(names_[c], columns_[c].type());
  }
  std::vector<Value> row(columns_.size());
  for (const std::size_t r : order) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      row[c] = columns_[c].at(r);
    }
    out.appendRow(row);
  }
  return out;
}

DataFrame DataFrame::head(std::size_t n) const {
  DataFrame out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out.addColumn(names_[c], columns_[c].type());
  }
  std::vector<Value> row(columns_.size());
  for (std::size_t r = 0; r < std::min(n, rows_); ++r) {
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      row[c] = columns_[c].at(r);
    }
    out.appendRow(row);
  }
  return out;
}

namespace {

struct AggState {
  double sum = 0.0;
  double minV = std::numeric_limits<double>::infinity();
  double maxV = -std::numeric_limits<double>::infinity();
  std::size_t n = 0;

  void feed(double v) {
    sum += v;
    minV = std::min(minV, v);
    maxV = std::max(maxV, v);
    ++n;
  }

  [[nodiscard]] double result(DataFrame::Agg agg) const {
    switch (agg) {
      case DataFrame::Agg::Sum: return sum;
      case DataFrame::Agg::Mean: return n == 0 ? 0.0 : sum / static_cast<double>(n);
      case DataFrame::Agg::Min: return n == 0 ? 0.0 : minV;
      case DataFrame::Agg::Max: return n == 0 ? 0.0 : maxV;
      case DataFrame::Agg::Count: return static_cast<double>(n);
    }
    return 0.0;
  }
};

}  // namespace

double DataFrame::sum(std::string_view columnName) const {
  AggState s;
  const Column& col = column(columnName);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (const auto v = asNumber(col.at(r))) {
      s.feed(*v);
    }
  }
  return s.result(Agg::Sum);
}

double DataFrame::mean(std::string_view columnName) const {
  AggState s;
  const Column& col = column(columnName);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (const auto v = asNumber(col.at(r))) {
      s.feed(*v);
    }
  }
  return s.result(Agg::Mean);
}

double DataFrame::minValue(std::string_view columnName) const {
  AggState s;
  const Column& col = column(columnName);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (const auto v = asNumber(col.at(r))) {
      s.feed(*v);
    }
  }
  return s.result(Agg::Min);
}

double DataFrame::maxValue(std::string_view columnName) const {
  AggState s;
  const Column& col = column(columnName);
  for (std::size_t r = 0; r < rows_; ++r) {
    if (const auto v = asNumber(col.at(r))) {
      s.feed(*v);
    }
  }
  return s.result(Agg::Max);
}

std::size_t DataFrame::count(std::string_view columnName) const {
  const Column& col = column(columnName);
  std::size_t n = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (!df::isNull(col.at(r))) {
      ++n;
    }
  }
  return n;
}

const char* aggName(DataFrame::Agg agg) noexcept {
  switch (agg) {
    case DataFrame::Agg::Sum: return "sum";
    case DataFrame::Agg::Mean: return "mean";
    case DataFrame::Agg::Min: return "min";
    case DataFrame::Agg::Max: return "max";
    case DataFrame::Agg::Count: return "count";
  }
  return "?";
}

DataFrame DataFrame::groupBy(std::string_view key,
                             const std::vector<std::pair<Agg, std::string>>& aggs) const {
  const Column& keyCol = column(key);
  // Group keys rendered as strings keep the implementation simple and the
  // output deterministic (std::map ordering).
  std::map<std::string, std::pair<Value, std::vector<AggState>>> groups;
  for (std::size_t r = 0; r < rows_; ++r) {
    const Value kv = keyCol.at(r);
    auto& entry = groups[toString(kv)];
    if (entry.second.empty()) {
      entry.first = kv;
      entry.second.resize(aggs.size());
    }
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      if (const auto v = asNumber(column(aggs[a].second).at(r))) {
        entry.second[a].feed(*v);
      }
    }
  }

  DataFrame out;
  out.addColumn(std::string{key}, keyCol.type());
  for (const auto& [agg, colName] : aggs) {
    out.addColumn(std::string{aggName(agg)} + "_" + colName, ColumnType::Double);
  }
  for (const auto& [keyText, entry] : groups) {
    (void)keyText;
    std::vector<Value> row;
    row.push_back(entry.first);
    for (std::size_t a = 0; a < aggs.size(); ++a) {
      row.emplace_back(entry.second[a].result(aggs[a].first));
    }
    out.appendRow(row);
  }
  return out;
}

std::string DataFrame::toText(std::size_t maxRows) const {
  std::vector<std::size_t> widths(names_.size());
  const std::size_t shown = std::min(maxRows, rows_);
  std::vector<std::vector<std::string>> cells(shown, std::vector<std::string>(names_.size()));
  for (std::size_t c = 0; c < names_.size(); ++c) {
    widths[c] = names_[c].size();
    for (std::size_t r = 0; r < shown; ++r) {
      cells[r][c] = df::toString(columns_[c].at(r));
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::string out;
  for (std::size_t c = 0; c < names_.size(); ++c) {
    out += names_[c] + std::string(widths[c] - names_[c].size() + 2, ' ');
  }
  out += "\n";
  for (std::size_t r = 0; r < shown; ++r) {
    for (std::size_t c = 0; c < names_.size(); ++c) {
      out += cells[r][c] + std::string(widths[c] - cells[r][c].size() + 2, ' ');
    }
    out += "\n";
  }
  if (rows_ > shown) {
    out += "... (" + std::to_string(rows_ - shown) + " more rows)\n";
  }
  return out;
}

}  // namespace stellar::df

#include "dataframe/from_darshan.hpp"

namespace stellar::df {

DarshanTables tablesFromLog(const darshan::DarshanLog& log) {
  DarshanTables tables;

  DataFrame& posix = tables.posix;
  posix.addColumn("file", ColumnType::String);
  posix.addColumn("rank", ColumnType::Int64);
  for (const auto& name : darshan::counterNames()) {
    posix.addColumn(name, ColumnType::Int64);
  }
  for (const auto& name : darshan::fcounterNames()) {
    posix.addColumn(name, ColumnType::Double);
  }

  for (const auto& rec : log.records) {
    std::vector<Value> row;
    row.reserve(2 + darshan::counterNames().size() + darshan::fcounterNames().size());
    row.emplace_back(rec.fileName);
    row.emplace_back(static_cast<std::int64_t>(rec.rank));
    for (const auto& name : darshan::counterNames()) {
      row.emplace_back(rec.counter(name).value_or(0));
    }
    for (const auto& name : darshan::fcounterNames()) {
      row.emplace_back(rec.fcounter(name).value_or(0.0));
    }
    posix.appendRow(row);
  }

  tables.headerText = "exe: " + log.header.exe +
                      "\nnprocs: " + std::to_string(log.header.nprocs) +
                      "\nrun_time_s: " + std::to_string(log.header.runTime);

  std::string& desc = tables.columnDescriptions;
  desc += "file: path of the file the record describes\n";
  desc += "rank: MPI rank that accessed the file, or -1 for shared records\n";
  for (const auto& name : darshan::counterNames()) {
    desc += name + ": " + darshan::counterDescription(name) + "\n";
  }
  for (const auto& name : darshan::fcounterNames()) {
    desc += name + ": " + darshan::counterDescription(name) + "\n";
  }
  return tables;
}

}  // namespace stellar::df

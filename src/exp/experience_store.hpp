// ExperienceStore: durable cross-run memory of tuning outcomes (the layer
// STELLAR's Reflect & Summarize step implies but the paper keeps
// in-process). Every tuning run files an ExperienceRecord — workload
// fingerprint, best configuration, outcome timings, learned rules, fault
// context — and later runs on *similar* workloads recall the closest
// records to warm-start the Tuning Agent.
//
// Durability model (see DESIGN.md §5e):
//   - The store is one JSONL file: `record` lines plus a `penalize` /
//     `confirm` journal that is replayed on load. Appends are single lines
//     flushed immediately, so a crash can at worst tear the final line.
//   - Torn or garbage lines are skipped with a warning (file + line via
//     the util::Json error context) and counted; the store stays usable.
//   - Compaction folds the journal into the records and atomically
//     replaces the file (write temp generation + rename), evicting records
//     whose recalled configs kept regressing. A crash between the temp
//     write and the rename leaves the old generation fully readable.
//   - An empty path makes the store memory-only (tests, benches).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "exp/fingerprint.hpp"
#include "obs/counters.hpp"
#include "pfs/params.hpp"
#include "rules/rules.hpp"
#include "util/json.hpp"
#include "util/thread_annotations.hpp"

namespace stellar::exp {

/// One filed tuning experience.
struct ExperienceRecord {
  std::string id;  ///< unique within a store; assigned on append if empty
  std::string workload;
  Fingerprint fingerprint;
  pfs::PfsConfig bestConfig;
  double defaultSeconds = 0.0;
  double bestSeconds = 0.0;
  std::size_t attempts = 0;
  std::string endReason;
  /// Fault scenario/spec active while the experience was gathered ("" =
  /// clean weather) — recalls can tell tuned-under-fire configs apart.
  std::string faults;
  /// Tenant that filed the experience ("" = untagged single-user runs).
  /// Provenance only: recall is deliberately cross-tenant, so one tenant's
  /// first session warm-starts from the whole fleet's history.
  std::string tenant;
  std::string model;  ///< tuning-agent model profile name
  std::uint64_t seed = 0;
  /// Outcome ledger: recalls that held up / regressed (journal-updated).
  std::int32_t confirmations = 1;
  std::int32_t regressions = 0;
  std::vector<rules::Rule> rules;

  [[nodiscard]] double bestSpeedup() const noexcept {
    return bestSeconds > 0 ? defaultSeconds / bestSeconds : 0.0;
  }

  [[nodiscard]] util::Json toJson() const;
  /// Throws util::JsonError on missing/mistyped required fields.
  [[nodiscard]] static ExperienceRecord fromJson(const util::Json& json);
};

/// Files a completed tuning run (the CLI and CampaignRunner call this).
[[nodiscard]] ExperienceRecord recordFromRun(const core::TuningRunResult& run,
                                             std::uint64_t seed, std::string model,
                                             std::string faults);

struct RecallMatch {
  ExperienceRecord record;  ///< copy: stable under concurrent appends
  double similarity = 0.0;
};

struct StoreOptions {
  /// Minimum fingerprint similarity for a record to be recalled. The
  /// default separates same-family workloads (> 0.99 across seeds/scales)
  /// from different I/O characters (< 0.9, e.g. IOR vs MDWorkbench).
  double minSimilarity = 0.95;
  /// Records merged into one warm-start hint.
  std::size_t topK = 3;
  /// A record is stale (skipped by recall, dropped at compaction) once
  /// regressions >= evictionRegressions + (confirmations - 1): every
  /// confirmation beyond the initial one buys one extra strike.
  std::int32_t evictionRegressions = 2;
  obs::CounterRegistry* counters = nullptr;  ///< nullable, non-owning
};

class ExperienceStore final : public core::WarmStartProvider {
 public:
  /// Opens (and loads) the store at `path`; empty path = memory-only.
  explicit ExperienceStore(std::string path, StoreOptions options = {});

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const StoreOptions& options() const noexcept { return options_; }
  [[nodiscard]] std::size_t size() const;
  /// Corrupt JSONL lines skipped during the last load.
  [[nodiscard]] std::size_t corruptLinesSkipped() const;
  /// Snapshot copy of every live record.
  [[nodiscard]] std::vector<ExperienceRecord> records() const;

  /// Files a record (assigning an id if empty) and appends it durably.
  /// A record with an existing id replaces the previous version in memory
  /// (last-wins, which compaction makes durable). Returns the id.
  std::string append(ExperienceRecord record);

  /// Journal a negative/positive recall outcome for `id`; unknown ids are
  /// ignored (the record may have been evicted by a concurrent compaction).
  void penalize(const std::string& id);
  void confirm(const std::string& id);

  /// Top-K live records by fingerprint similarity (>= minSimilarity),
  /// most similar first; ties broken by id for determinism.
  [[nodiscard]] std::vector<RecallMatch> recall(const Fingerprint& fingerprint,
                                                std::size_t topK,
                                                double minSimilarity) const;

  /// Test-only crash injection for the compaction protocol.
  struct CompactionHooks {
    /// Simulate dying after writing the new generation but before the
    /// atomic rename: the store file must remain the old generation.
    bool crashBeforeRename = false;
  };

  /// Atomically rewrites the file as pure record lines (journal folded
  /// in), dropping stale records. No-op for memory-only stores beyond the
  /// in-memory eviction.
  void compact() { compact(CompactionHooks{}); }
  void compact(const CompactionHooks& hooks);

  /// Single-writer commit of campaign shard files: loads every shard,
  /// dedups by id against the store (last shard wins), deletes the shard
  /// files, and compacts. Returns how many records were absorbed.
  std::size_t absorbShards(const std::vector<std::string>& shardPaths);

  /// Like absorbShards, but the shard set is every regular file in `dir`
  /// whose basename starts with `filePrefix` — and the directory listing
  /// happens *under the store lock*, so a shard journal a concurrent
  /// writer creates right up to the scan is absorbed instead of silently
  /// skipped until the next compaction (the pre-fix behaviour when callers
  /// computed the path list before locking).
  std::size_t absorbShardDir(const std::string& dir, const std::string& filePrefix);

  // --- core::WarmStartProvider ---------------------------------------------
  [[nodiscard]] std::optional<core::WarmStartHint> warmStart(
      const agents::IoReport& report) const override;
  void observeWarmStartOutcome(const std::vector<std::string>& sourceIds,
                               bool regressed, bool confirmed) override;

 private:
  [[nodiscard]] bool stale(const ExperienceRecord& record) const noexcept;
  void loadLocked() STELLAR_REQUIRES(mutex_);
  std::size_t absorbShardLocked(const std::string& shard) STELLAR_REQUIRES(mutex_);
  void appendLineLocked(const util::Json& line) STELLAR_REQUIRES(mutex_);
  [[nodiscard]] ExperienceRecord* findLocked(const std::string& id)
      STELLAR_REQUIRES(mutex_);
  void noteCounter(const char* name, double delta = 1.0) const;

  mutable util::Mutex mutex_;
  std::string path_;
  StoreOptions options_;
  std::vector<ExperienceRecord> records_ STELLAR_GUARDED_BY(mutex_);
  std::size_t corruptSkipped_ STELLAR_GUARDED_BY(mutex_) = 0;
  std::uint64_t nextId_ STELLAR_GUARDED_BY(mutex_) = 1;
};

}  // namespace stellar::exp

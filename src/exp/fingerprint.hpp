// Workload fingerprints: the feature vector a tuning experience is filed
// under in the ExperienceStore, derived from the Darshan-style I/O report
// the Analysis Agent produces. Two runs of the same application family at
// different seeds or volume scales land close in fingerprint space (the
// shares and access-size features are scale-invariant); workloads with a
// different I/O character (metadata storms vs streaming writes) land far
// apart. Similarity is cosine over the normalized vectors, reusing the
// embedding plumbing from src/rag.
#pragma once

#include <cstddef>
#include <vector>

#include "agents/io_report.hpp"
#include "rules/rules.hpp"
#include "util/json.hpp"

namespace stellar::exp {

struct Fingerprint {
  /// Fixed feature order (see fingerprint.cpp): five behaviour shares,
  /// three log-scaled volume features, one bias term.
  static constexpr std::size_t kDims = 9;

  /// L2-normalized feature vector; empty when the source run had no I/O
  /// report (the No-Analysis ablation) — such experiences are stored but
  /// never recalled.
  std::vector<float> features;

  [[nodiscard]] bool valid() const noexcept { return features.size() == kDims; }

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] static Fingerprint fromJson(const util::Json& json);
};

/// Fingerprint of a workload's feature signature (the rule "Tuning
/// Context"); the canonical constructor every other overload delegates to.
[[nodiscard]] Fingerprint fingerprintOf(const rules::WorkloadContext& context);

/// Fingerprint of a full I/O report (what the engine hands the store).
[[nodiscard]] Fingerprint fingerprintOf(const agents::IoReport& report);

/// Cosine similarity in [0, 1]; 0 when either fingerprint is invalid.
[[nodiscard]] double similarity(const Fingerprint& a, const Fingerprint& b);

}  // namespace stellar::exp

#include "exp/experience_store.hpp"

#include <algorithm>
#include <cstdio>

#include "util/file.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace stellar::exp {

namespace {

constexpr const char* kComponent = "exp.store";

util::Json rulesToJson(const std::vector<rules::Rule>& rules) {
  util::Json arr = util::Json::makeArray();
  for (const rules::Rule& rule : rules) {
    arr.push(rule.toJson());
  }
  return arr;
}

std::vector<rules::Rule> rulesFromJson(const util::Json& json) {
  std::vector<rules::Rule> rules;
  for (const util::Json& r : json.asArray()) {
    rules.push_back(rules::Rule::fromJson(r));
  }
  return rules;
}

}  // namespace

util::Json ExperienceRecord::toJson() const {
  util::Json root = util::Json::makeObject();
  root.set("type", "record");
  root.set("id", id);
  root.set("workload", workload);
  root.set("fingerprint", fingerprint.toJson());
  root.set("best_config", bestConfig.toJson());
  root.set("default_seconds", defaultSeconds);
  root.set("best_seconds", bestSeconds);
  root.set("attempts", static_cast<std::int64_t>(attempts));
  root.set("end_reason", endReason);
  root.set("faults", faults);
  root.set("tenant", tenant);
  root.set("model", model);
  root.set("seed", static_cast<std::int64_t>(seed));
  root.set("confirmations", static_cast<std::int64_t>(confirmations));
  root.set("regressions", static_cast<std::int64_t>(regressions));
  root.set("rules", rulesToJson(rules));
  return root;
}

ExperienceRecord ExperienceRecord::fromJson(const util::Json& json) {
  ExperienceRecord rec;
  rec.id = json.at("id").asString();
  rec.workload = json.at("workload").asString();
  rec.fingerprint = Fingerprint::fromJson(json.at("fingerprint"));
  rec.bestConfig = pfs::PfsConfig::fromJson(json.at("best_config"));
  rec.defaultSeconds = json.at("default_seconds").asNumber();
  rec.bestSeconds = json.at("best_seconds").asNumber();
  rec.attempts = static_cast<std::size_t>(json.getNumber("attempts", 0.0));
  rec.endReason = json.getString("end_reason");
  rec.faults = json.getString("faults");
  rec.tenant = json.getString("tenant");
  rec.model = json.getString("model");
  rec.seed = static_cast<std::uint64_t>(json.getNumber("seed", 0.0));
  rec.confirmations = static_cast<std::int32_t>(json.getNumber("confirmations", 1.0));
  rec.regressions = static_cast<std::int32_t>(json.getNumber("regressions", 0.0));
  if (json.contains("rules")) {
    rec.rules = rulesFromJson(json.at("rules"));
  }
  return rec;
}

ExperienceRecord recordFromRun(const core::TuningRunResult& run, std::uint64_t seed,
                               std::string model, std::string faults) {
  ExperienceRecord rec;
  rec.workload = run.workload;
  if (run.hasReport) {
    rec.fingerprint = fingerprintOf(run.report);
  }
  rec.bestConfig = run.bestConfig;
  rec.defaultSeconds = run.defaultSeconds;
  rec.bestSeconds = run.bestSeconds;
  rec.attempts = run.attempts.size();
  rec.endReason = run.endReason;
  rec.faults = std::move(faults);
  rec.model = std::move(model);
  rec.seed = seed;
  rec.rules = run.learnedRules;
  return rec;
}

// ------------------------------------------------------------------ store --

ExperienceStore::ExperienceStore(std::string path, StoreOptions options)
    : path_(std::move(path)), options_(options) {
  const util::MutexLock lock{mutex_};
  loadLocked();
}

bool ExperienceStore::stale(const ExperienceRecord& record) const noexcept {
  // Every confirmation beyond the initial one buys one extra strike before
  // the record is considered misleading.
  return record.regressions >=
         options_.evictionRegressions + std::max(0, record.confirmations - 1);
}

void ExperienceStore::noteCounter(const char* name, double delta) const {
  if (options_.counters != nullptr) {
    options_.counters->counter(name).add(delta);
  }
}

void ExperienceStore::loadLocked() {
  records_.clear();
  corruptSkipped_ = 0;
  if (path_.empty() || !util::fileExists(path_)) {
    return;
  }
  const std::string contents = util::readFile(path_);
  std::size_t lineNo = 0;
  for (const std::string& line : util::split(contents, '\n')) {
    ++lineNo;
    if (util::trim(line).empty()) {
      continue;
    }
    try {
      const util::Json doc = util::Json::parse(line);
      const std::string type = doc.getString("type");
      if (type == "record") {
        ExperienceRecord rec = ExperienceRecord::fromJson(doc);
        if (ExperienceRecord* existing = findLocked(rec.id)) {
          *existing = std::move(rec);  // last write wins (re-appended id)
        } else {
          records_.push_back(std::move(rec));
        }
      } else if (type == "penalize" || type == "confirm") {
        if (ExperienceRecord* rec = findLocked(doc.at("id").asString())) {
          (type == "penalize" ? rec->regressions : rec->confirmations) += 1;
        }
      } else {
        throw util::JsonError("unknown line type '" + type + "'");
      }
    } catch (const util::JsonError& e) {
      // Torn tail line after a crash, or plain corruption: skip it, keep
      // the store usable, and say exactly where the damage is.
      ++corruptSkipped_;
      util::logLine(util::LogLevel::Warn, kComponent,
                    path_ + ":" + std::to_string(lineNo) + ": skipping corrupt line (" +
                        e.what() + ")");
    }
  }
  noteCounter("exp.store.corrupt_lines", static_cast<double>(corruptSkipped_));
  noteCounter("exp.store.records_loaded", static_cast<double>(records_.size()));

  // Seed id assignment past every numeric suffix already in use.
  for (const ExperienceRecord& rec : records_) {
    if (util::startsWith(rec.id, "exp-")) {
      const std::uint64_t n = std::strtoull(rec.id.c_str() + 4, nullptr, 10);
      nextId_ = std::max(nextId_, n + 1);
    }
  }
}

ExperienceRecord* ExperienceStore::findLocked(const std::string& id) {
  for (ExperienceRecord& rec : records_) {
    if (rec.id == id) {
      return &rec;
    }
  }
  return nullptr;
}

void ExperienceStore::appendLineLocked(const util::Json& line) {
  if (path_.empty()) {
    return;  // memory-only store
  }
  util::ensureParentDir(path_);
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("cannot open experience store for append: " + path_);
  }
  const std::string text = line.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("short write appending to experience store: " + path_);
  }
}

std::size_t ExperienceStore::size() const {
  const util::MutexLock lock{mutex_};
  return records_.size();
}

std::size_t ExperienceStore::corruptLinesSkipped() const {
  const util::MutexLock lock{mutex_};
  return corruptSkipped_;
}

std::vector<ExperienceRecord> ExperienceStore::records() const {
  const util::MutexLock lock{mutex_};
  return records_;
}

std::string ExperienceStore::append(ExperienceRecord record) {
  const util::MutexLock lock{mutex_};
  if (record.id.empty()) {
    record.id = "exp-" + std::to_string(nextId_++);
  }
  const std::string id = record.id;
  appendLineLocked(record.toJson());
  if (ExperienceRecord* existing = findLocked(id)) {
    *existing = std::move(record);
  } else {
    records_.push_back(std::move(record));
  }
  noteCounter("exp.store.appends");
  return id;
}

void ExperienceStore::penalize(const std::string& id) {
  const util::MutexLock lock{mutex_};
  ExperienceRecord* rec = findLocked(id);
  if (rec == nullptr) {
    return;
  }
  rec->regressions += 1;
  util::Json line = util::Json::makeObject();
  line.set("type", "penalize");
  line.set("id", id);
  appendLineLocked(line);
  noteCounter("exp.store.penalized");
}

void ExperienceStore::confirm(const std::string& id) {
  const util::MutexLock lock{mutex_};
  ExperienceRecord* rec = findLocked(id);
  if (rec == nullptr) {
    return;
  }
  rec->confirmations += 1;
  util::Json line = util::Json::makeObject();
  line.set("type", "confirm");
  line.set("id", id);
  appendLineLocked(line);
  noteCounter("exp.store.confirmed");
}

std::vector<RecallMatch> ExperienceStore::recall(const Fingerprint& fingerprint,
                                                 std::size_t topK,
                                                 double minSimilarity) const {
  const util::MutexLock lock{mutex_};
  std::vector<RecallMatch> matches;
  for (const ExperienceRecord& rec : records_) {
    if (stale(rec)) {
      continue;
    }
    const double sim = similarity(fingerprint, rec.fingerprint);
    if (sim >= minSimilarity) {
      matches.push_back(RecallMatch{rec, sim});
    }
  }
  std::sort(matches.begin(), matches.end(),
            [](const RecallMatch& a, const RecallMatch& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.record.id < b.record.id;
            });
  if (matches.size() > topK) {
    matches.resize(topK);
  }
  return matches;
}

void ExperienceStore::compact(const CompactionHooks& hooks) {
  const util::MutexLock lock{mutex_};
  // Fold the journal in by dropping stale records from the live set.
  std::vector<ExperienceRecord> live;
  live.reserve(records_.size());
  for (ExperienceRecord& rec : records_) {
    if (stale(rec)) {
      noteCounter("exp.store.evicted");
    } else {
      live.push_back(std::move(rec));
    }
  }
  records_ = std::move(live);
  noteCounter("exp.store.compactions");
  if (path_.empty()) {
    return;
  }

  // Crash-safe generation swap: write the whole new generation to a temp
  // file, then atomically rename over the store. Dying between the two
  // steps leaves the old generation intact; a stale temp file from an
  // earlier crash is simply overwritten here and never read by load.
  const std::string tmp = path_ + ".compact.tmp";
  std::string out;
  for (const ExperienceRecord& rec : records_) {
    out += rec.toJson().dump();
    out += '\n';
  }
  util::ensureParentDir(tmp);
  util::writeFile(tmp, out);
  if (hooks.crashBeforeRename) {
    return;  // test hook: simulated death with both generations on disk
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("compaction rename failed for " + path_);
  }
}

std::size_t ExperienceStore::absorbShardLocked(const std::string& shard) {
  if (!util::fileExists(shard)) {
    return 0;
  }
  std::size_t absorbed = 0;
  const std::string contents = util::readFile(shard);
  std::size_t lineNo = 0;
  for (const std::string& line : util::split(contents, '\n')) {
    ++lineNo;
    if (util::trim(line).empty()) {
      continue;
    }
    try {
      ExperienceRecord rec = ExperienceRecord::fromJson(util::Json::parse(line));
      appendLineLocked(rec.toJson());
      if (ExperienceRecord* existing = findLocked(rec.id)) {
        *existing = std::move(rec);  // re-run of a cell: last wins
      } else {
        records_.push_back(std::move(rec));
      }
      ++absorbed;
    } catch (const util::JsonError& e) {
      util::logLine(util::LogLevel::Warn, kComponent,
                    shard + ":" + std::to_string(lineNo) +
                        ": skipping corrupt shard line (" + e.what() + ")");
    }
  }
  return absorbed;
}

std::size_t ExperienceStore::absorbShards(const std::vector<std::string>& shardPaths) {
  std::size_t absorbed = 0;
  {
    const util::MutexLock lock{mutex_};
    for (const std::string& shard : shardPaths) {
      absorbed += absorbShardLocked(shard);
    }
  }
  // Single writer: dedup + journal fold happen in one atomic compaction,
  // after which the shard files are dead weight.
  compact();
  for (const std::string& shard : shardPaths) {
    if (util::fileExists(shard)) {
      (void)std::remove(shard.c_str());
    }
  }
  noteCounter("exp.store.shards_absorbed", static_cast<double>(absorbed));
  return absorbed;
}

std::size_t ExperienceStore::absorbShardDir(const std::string& dir,
                                            const std::string& filePrefix) {
  std::size_t absorbed = 0;
  std::vector<std::string> scanned;
  {
    const util::MutexLock lock{mutex_};
    // The listing happens here, under the lock, NOT in the caller: a shard
    // journal that a concurrent writer finished creating any time before
    // this point is part of the scan instead of silently missing until the
    // next compaction. listDir returns sorted paths, so absorb order (and
    // therefore last-wins dedup) is deterministic.
    for (const std::string& path : util::listDir(dir)) {
      const std::size_t slash = path.find_last_of('/');
      const std::string base =
          slash == std::string::npos ? path : path.substr(slash + 1);
      if (util::startsWith(base, filePrefix)) {
        absorbed += absorbShardLocked(path);
        scanned.push_back(path);
      }
    }
  }
  compact();
  for (const std::string& shard : scanned) {
    if (util::fileExists(shard)) {
      (void)std::remove(shard.c_str());
    }
  }
  noteCounter("exp.store.shards_absorbed", static_cast<double>(absorbed));
  return absorbed;
}

// ------------------------------------------------- WarmStartProvider glue --

std::optional<core::WarmStartHint> ExperienceStore::warmStart(
    const agents::IoReport& report) const {
  const std::vector<RecallMatch> matches =
      recall(fingerprintOf(report), options_.topK, options_.minSimilarity);
  if (matches.empty()) {
    noteCounter("exp.store.recall_misses");
    return std::nullopt;
  }
  noteCounter("exp.store.recall_hits");

  core::WarmStartHint hint;
  hint.config = matches.front().record.bestConfig;
  hint.similarity = matches.front().similarity;
  std::string provenance = "recalled " + std::to_string(matches.size()) +
                           " experience(s):";
  for (const RecallMatch& match : matches) {
    hint.sourceIds.push_back(match.record.id);
    (void)hint.rules.merge(match.record.rules);
    provenance += " " + match.record.id + " (" + match.record.workload +
                  ", similarity " + util::formatDouble(match.similarity, 3) +
                  ", best " + util::formatDouble(match.record.bestSpeedup(), 2) +
                  "x)";
  }
  hint.provenance = std::move(provenance);
  return hint;
}

void ExperienceStore::observeWarmStartOutcome(
    const std::vector<std::string>& sourceIds, bool regressed, bool confirmed) {
  // Only the top match's config was actually trialed, but a regression
  // indicts the whole neighbourhood that produced the hint; confirmations
  // credit it symmetrically.
  for (const std::string& id : sourceIds) {
    if (regressed) {
      penalize(id);
    } else if (confirmed) {
      confirm(id);
    }
  }
}

}  // namespace stellar::exp

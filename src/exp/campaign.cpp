#include "exp/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>

#include "core/engine.hpp"
#include "faults/fault_plan.hpp"
#include "llm/model_profile.hpp"
#include "util/file.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/thread_pool.hpp"
#include "workloads/workloads.hpp"

namespace stellar::exp {

namespace {

constexpr const char* kComponent = "exp.campaign";
/// Fixed shard fan-out: independent of thread count so shard file names
/// stay stable across resumed invocations on different machines.
constexpr std::size_t kShardCount = 8;

void appendJsonLine(const std::string& path, const util::Json& doc) {
  util::ensureParentDir(path);
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("cannot open for append: " + path);
  }
  const std::string text = doc.dump() + "\n";
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("short write appending to " + path);
  }
}

/// Read-only snapshot of the store at campaign start, with outcome
/// feedback deferred until commit: recall results are independent of the
/// order in which concurrent cells finish.
class SnapshotProvider final : public core::WarmStartProvider {
 public:
  struct Outcome {
    std::vector<std::string> sourceIds;
    bool regressed = false;
    bool confirmed = false;
  };

  /// Records whose id is one of `ownKeys` (this campaign's own cell keys)
  /// are excluded: a cell's execution must not depend on whether a prior
  /// invocation of the same campaign already committed — and cells never
  /// warm-start from each other within one campaign.
  SnapshotProvider(const ExperienceStore& source, StoreOptions options,
                   const std::set<std::string>& ownKeys)
      : snapshot_("", options) {
    for (ExperienceRecord& rec : source.records()) {
      if (ownKeys.count(rec.id) == 0) {
        (void)snapshot_.append(std::move(rec));
      }
    }
  }

  [[nodiscard]] std::optional<core::WarmStartHint> warmStart(
      const agents::IoReport& report) const override {
    return snapshot_.warmStart(report);
  }

  void observeWarmStartOutcome(const std::vector<std::string>& sourceIds,
                               bool regressed, bool confirmed) override {
    if (!regressed && !confirmed) {
      return;
    }
    const std::lock_guard<std::mutex> lock{mutex_};
    deferred_.push_back(Outcome{sourceIds, regressed, confirmed});
  }

  /// Deferred outcomes in a deterministic order (penalize/confirm are
  /// commutative increments, but a sorted journal keeps the store file
  /// reproducible too).
  [[nodiscard]] std::vector<Outcome> drainOutcomes() {
    const std::lock_guard<std::mutex> lock{mutex_};
    std::sort(deferred_.begin(), deferred_.end(),
              [](const Outcome& a, const Outcome& b) {
                if (a.sourceIds != b.sourceIds) {
                  return a.sourceIds < b.sourceIds;
                }
                if (a.regressed != b.regressed) {
                  return a.regressed < b.regressed;
                }
                return a.confirmed < b.confirmed;
              });
    return std::move(deferred_);
  }

 private:
  ExperienceStore snapshot_;
  mutable std::mutex mutex_;
  std::vector<Outcome> deferred_;
};

std::vector<double> sortedSpeedups(const std::vector<CellResult>& cells) {
  std::vector<double> v;
  for (const CellResult& cell : cells) {
    if (!cell.failed) {
      v.push_back(cell.speedup);
    }
  }
  std::sort(v.begin(), v.end());
  return v;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (const double x : v) {
    sum += x;
  }
  return sum / static_cast<double>(v.size());
}

double median(std::vector<double> v) {
  if (v.empty()) {
    return 0.0;
  }
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  return v.size() % 2 == 1 ? v[mid] : 0.5 * (v[mid - 1] + v[mid]);
}

}  // namespace

// ------------------------------------------------------------------- spec --

std::string CampaignCell::key() const {
  return workload + "|" + std::to_string(seed) + "|" + model + "|" +
         (faults.empty() ? "none" : faults);
}

std::vector<CampaignCell> CampaignSpec::cells() const {
  std::vector<CampaignCell> out;
  for (const std::string& workload : workloads) {
    for (const std::uint64_t seed : seeds) {
      for (const std::string& model : models) {
        for (const std::string& fault : faultScenarios) {
          out.push_back(CampaignCell{workload, seed, model, fault});
        }
      }
    }
  }
  return out;
}

util::Json CampaignSpec::toJson() const {
  util::Json root = util::Json::makeObject();
  root.set("name", name);
  util::Json w = util::Json::makeArray();
  for (const std::string& s : workloads) {
    w.push(s);
  }
  root.set("workloads", std::move(w));
  util::Json sd = util::Json::makeArray();
  for (const std::uint64_t s : seeds) {
    sd.push(static_cast<std::int64_t>(s));
  }
  root.set("seeds", std::move(sd));
  util::Json m = util::Json::makeArray();
  for (const std::string& s : models) {
    m.push(s);
  }
  root.set("models", std::move(m));
  util::Json fs = util::Json::makeArray();
  for (const std::string& s : faultScenarios) {
    fs.push(s);
  }
  root.set("fault_scenarios", std::move(fs));
  root.set("scale", scale);
  root.set("ranks", static_cast<std::int64_t>(ranks));
  root.set("warm_start", warmStart);
  return root;
}

CampaignSpec CampaignSpec::fromJson(const util::Json& json) {
  CampaignSpec spec;
  spec.name = json.getString("name", spec.name);
  if (!json.contains("workloads")) {
    throw util::JsonError("campaign spec is missing 'workloads'");
  }
  spec.workloads.clear();
  for (const util::Json& w : json.at("workloads").asArray()) {
    spec.workloads.push_back(w.asString());
  }
  if (!json.contains("seeds")) {
    throw util::JsonError("campaign spec is missing 'seeds'");
  }
  spec.seeds.clear();
  for (const util::Json& s : json.at("seeds").asArray()) {
    spec.seeds.push_back(static_cast<std::uint64_t>(s.asNumber()));
  }
  if (json.contains("models")) {
    spec.models.clear();
    for (const util::Json& m : json.at("models").asArray()) {
      spec.models.push_back(m.asString());
    }
  }
  if (json.contains("fault_scenarios")) {
    spec.faultScenarios.clear();
    for (const util::Json& f : json.at("fault_scenarios").asArray()) {
      spec.faultScenarios.push_back(f.asString());
    }
  }
  spec.scale = json.getNumber("scale", spec.scale);
  spec.ranks = static_cast<std::uint32_t>(json.getNumber("ranks", spec.ranks));
  spec.warmStart = json.getBool("warm_start", spec.warmStart);
  if (spec.workloads.empty() || spec.seeds.empty() || spec.models.empty() ||
      spec.faultScenarios.empty()) {
    throw util::JsonError("campaign spec expands to an empty grid");
  }
  return spec;
}

CampaignSpec CampaignSpec::loadFile(const std::string& path) {
  return fromJson(util::Json::parse(util::readFile(path)));
}

// ---------------------------------------------------------------- results --

util::Json CellResult::toJson() const {
  util::Json root = util::Json::makeObject();
  root.set("key", key);
  root.set("workload", workload);
  root.set("seed", static_cast<std::int64_t>(seed));
  root.set("model", model);
  root.set("faults", faults);
  root.set("default_seconds", defaultSeconds);
  root.set("best_seconds", bestSeconds);
  root.set("speedup", speedup);
  root.set("attempts", static_cast<std::int64_t>(attempts));
  root.set("iterations_to_best", static_cast<std::int64_t>(iterationsToBest));
  root.set("warm_started", warmStarted);
  root.set("end_reason", endReason);
  if (failed) {
    root.set("failed", true);
    root.set("error", error);
  }
  return root;
}

CellResult CellResult::fromJson(const util::Json& json) {
  CellResult cell;
  cell.key = json.at("key").asString();
  cell.workload = json.at("workload").asString();
  cell.seed = static_cast<std::uint64_t>(json.getNumber("seed", 0.0));
  cell.model = json.getString("model");
  cell.faults = json.getString("faults");
  cell.defaultSeconds = json.getNumber("default_seconds", 0.0);
  cell.bestSeconds = json.getNumber("best_seconds", 0.0);
  cell.speedup = json.getNumber("speedup", 0.0);
  cell.attempts = static_cast<std::size_t>(json.getNumber("attempts", 0.0));
  cell.iterationsToBest =
      static_cast<std::size_t>(json.getNumber("iterations_to_best", 0.0));
  cell.warmStarted = json.getBool("warm_started", false);
  cell.endReason = json.getString("end_reason");
  cell.failed = json.getBool("failed", false);
  cell.error = json.getString("error");
  return cell;
}

util::Json CampaignResult::aggregateJson(const CampaignSpec& spec) const {
  util::Json root = util::Json::makeObject();
  root.set("campaign", spec.name);
  root.set("spec", spec.toJson());

  util::Json cellArr = util::Json::makeArray();
  for (const CellResult& cell : cells) {
    cellArr.push(cell.toJson());
  }
  root.set("cells", std::move(cellArr));

  const std::vector<double> speedups = sortedSpeedups(cells);
  std::vector<double> attemptCounts;
  std::vector<double> warmIters;
  std::vector<double> coldIters;
  std::size_t failedCount = 0;
  std::map<std::string, std::vector<double>> byWorkload;
  for (const CellResult& cell : cells) {
    if (cell.failed) {
      ++failedCount;
      continue;
    }
    attemptCounts.push_back(static_cast<double>(cell.attempts));
    (cell.warmStarted ? warmIters : coldIters)
        .push_back(static_cast<double>(cell.iterationsToBest));
    byWorkload[cell.workload].push_back(cell.speedup);
  }

  util::Json agg = util::Json::makeObject();
  agg.set("cell_count", static_cast<std::int64_t>(cells.size()));
  agg.set("failed_cells", static_cast<std::int64_t>(failedCount));
  agg.set("mean_speedup", mean(speedups));
  agg.set("median_speedup", median(speedups));
  agg.set("mean_attempts", mean(attemptCounts));
  agg.set("warm_started_cells", static_cast<std::int64_t>(warmIters.size()));
  agg.set("warm_median_iterations_to_best", median(warmIters));
  agg.set("cold_median_iterations_to_best", median(coldIters));
  util::Json perWorkload = util::Json::makeObject();
  for (const auto& [workload, values] : byWorkload) {  // std::map: sorted keys
    util::Json stats = util::Json::makeObject();
    stats.set("cells", static_cast<std::int64_t>(values.size()));
    stats.set("mean_speedup", mean(values));
    stats.set("median_speedup", median(values));
    perWorkload.set(workload, std::move(stats));
  }
  agg.set("per_workload", std::move(perWorkload));
  root.set("aggregate", std::move(agg));
  root.set("complete", complete);
  return root;
}

// ----------------------------------------------------------------- runner --

CampaignRunner::CampaignRunner(CampaignOptions options)
    : options_(std::move(options)) {
  if (options_.manifestPath.empty() && !options_.storePath.empty()) {
    options_.manifestPath = options_.storePath + ".manifest";
  }
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) {
  auto campaignSpan = obs::beginSpan(options_.tracer, "campaign", spec.name);
  const std::vector<CampaignCell> allCells = spec.cells();
  auto note = [this](const char* name, double delta = 1.0) {
    if (options_.counters != nullptr) {
      options_.counters->counter(name).add(delta);
    }
  };

  // Resume: a manifest line per completed cell. Corrupt lines are skipped
  // (that cell simply re-executes); lines for keys outside this spec are
  // ignored so one manifest cannot poison a different campaign.
  std::set<std::string> specKeys;
  for (const CampaignCell& cell : allCells) {
    specKeys.insert(cell.key());
  }
  std::map<std::string, CellResult> done;
  if (!options_.manifestPath.empty() && util::fileExists(options_.manifestPath)) {
    std::size_t lineNo = 0;
    for (const std::string& line :
         util::split(util::readFile(options_.manifestPath), '\n')) {
      ++lineNo;
      if (util::trim(line).empty()) {
        continue;
      }
      try {
        CellResult cell = CellResult::fromJson(util::Json::parse(line));
        if (specKeys.count(cell.key) != 0) {
          done[cell.key] = std::move(cell);  // last write wins
        }
      } catch (const util::JsonError& e) {
        util::logLine(util::LogLevel::Warn, kComponent,
                      options_.manifestPath + ":" + std::to_string(lineNo) +
                          ": skipping corrupt manifest line (" + e.what() + ")");
      }
    }
  }

  std::vector<CampaignCell> pending;
  for (const CampaignCell& cell : allCells) {
    if (done.count(cell.key()) == 0) {
      pending.push_back(cell);
    }
  }
  const std::size_t skipped = done.size();
  if (options_.maxCells != 0 && pending.size() > options_.maxCells) {
    pending.resize(options_.maxCells);
  }
  util::logLine(util::LogLevel::Info, kComponent,
                spec.name + ": " + std::to_string(allCells.size()) + " cells, " +
                    std::to_string(skipped) + " already complete, " +
                    std::to_string(pending.size()) + " to run");
  note("exp.campaign.cells_skipped", static_cast<double>(skipped));

  // The real store is touched only by this (single-writer) invocation's
  // commit step; cells recall from an immutable snapshot and write shards.
  ExperienceStore store{options_.storePath, options_.store};
  SnapshotProvider snapshot{store, options_.store, specKeys};

  std::vector<std::string> shardPaths;
  std::vector<std::unique_ptr<std::mutex>> shardLocks;
  if (!options_.storePath.empty()) {
    for (std::size_t i = 0; i < kShardCount; ++i) {
      shardPaths.push_back(options_.storePath + ".shard-" + std::to_string(i));
      shardLocks.push_back(std::make_unique<std::mutex>());
    }
  }

  std::mutex manifestMutex;
  std::vector<CellResult> fresh(pending.size());

  util::ThreadPool pool{options_.threads};
  pool.parallelFor(pending.size(), [&](std::size_t i) {
    const CampaignCell& cell = pending[i];
    auto cellSpan = obs::beginSpan(options_.tracer, "campaign", cell.key());
    CellResult result;
    result.key = cell.key();
    result.workload = cell.workload;
    result.seed = cell.seed;
    result.model = cell.model;
    result.faults = cell.faults;
    try {
      faults::FaultPlan plan;
      if (!cell.faults.empty()) {
        plan = faults::parseFaultSpec(cell.faults);
      }
      pfs::SimulatorOptions simOpts;
      simOpts.counters = options_.counters;
      simOpts.tracer = options_.tracer;
      if (!cell.faults.empty()) {
        simOpts.faults = &plan;
      }
      core::StellarOptions engineOpts;
      engineOpts.seed = cell.seed;
      engineOpts.agent.seed = cell.seed;
      engineOpts.agent.model = llm::profileByName(cell.model);
      engineOpts.warmStart = spec.warmStart ? &snapshot : nullptr;
      core::StellarEngine engine{pfs::PfsSimulator{std::move(simOpts)},
                                 std::move(engineOpts)};
      const core::TuningRunResult run = engine.tune(workloads::byName(
          cell.workload,
          {.ranks = spec.ranks, .scale = spec.scale, .seed = cell.seed}));

      result.defaultSeconds = run.defaultSeconds;
      result.bestSeconds = run.bestSeconds;
      result.speedup = run.bestSpeedup();
      result.attempts = run.attempts.size();
      result.iterationsToBest = run.iterationsToWithin(0.05);
      result.warmStarted = run.warmStarted;
      result.endReason = run.endReason;

      if (!shardPaths.empty()) {
        ExperienceRecord rec =
            recordFromRun(run, cell.seed, cell.model, cell.faults);
        rec.id = cell.key();  // cell identity: a re-run dedups, not duplicates
        const std::size_t shard = static_cast<std::size_t>(util::mix64(
                                      util::hash64(rec.id), 0x5e1f)) %
                                  kShardCount;
        const std::lock_guard<std::mutex> lock{*shardLocks[shard]};
        appendJsonLine(shardPaths[shard], rec.toJson());
      }
      note("exp.campaign.cells_executed");
    } catch (const std::exception& e) {
      // Deterministic per-cell failures (unknown workload/model, bad fault
      // spec) are filed as failed cells so the campaign still completes and
      // resumes reproduce the same document.
      result.failed = true;
      result.error = e.what();
      util::logLine(util::LogLevel::Warn, kComponent,
                    cell.key() + ": cell failed: " + e.what());
      note("exp.campaign.cells_failed");
    }

    // Canonicalize through dump+parse so a fresh cell and a resumed cell
    // (parsed from its manifest line) are the same Json, byte for byte.
    const std::string line = result.toJson().dump();
    if (!options_.manifestPath.empty()) {
      const std::lock_guard<std::mutex> lock{manifestMutex};
      appendJsonLine(options_.manifestPath, util::Json::parse(line));
    }
    fresh[i] = CellResult::fromJson(util::Json::parse(line));
  });

  CampaignResult out;
  out.executed = fresh.size();
  out.skipped = skipped;
  for (auto& [key, cell] : done) {
    out.cells.push_back(std::move(cell));
  }
  for (CellResult& cell : fresh) {
    out.cells.push_back(std::move(cell));
  }
  std::sort(out.cells.begin(), out.cells.end(),
            [](const CellResult& a, const CellResult& b) { return a.key < b.key; });
  out.complete = out.cells.size() == allCells.size();

  if (out.complete && !options_.storePath.empty()) {
    // Single-writer commit: absorb shards (dedup by id, compact), then fold
    // in the deferred warm-start outcomes collected during the run. The
    // shard set is re-listed by prefix under the store lock rather than
    // taken from `shardPaths`, so a shard another invocation is still
    // writing next to this store is absorbed, not silently skipped.
    const std::size_t slash = options_.storePath.find_last_of('/');
    const std::string storeDir =
        slash == std::string::npos ? "." : options_.storePath.substr(0, slash);
    const std::string storeName = slash == std::string::npos
                                      ? options_.storePath
                                      : options_.storePath.substr(slash + 1);
    (void)store.absorbShardDir(storeDir, storeName + ".shard-");
    for (const SnapshotProvider::Outcome& outcome : snapshot.drainOutcomes()) {
      store.observeWarmStartOutcome(outcome.sourceIds, outcome.regressed,
                                    outcome.confirmed);
    }
    store.compact();
    note("exp.campaign.committed");
    util::logLine(util::LogLevel::Info, kComponent,
                  spec.name + ": committed " + std::to_string(store.size()) +
                      " experience records to " + options_.storePath);
  } else if (!out.complete) {
    util::logLine(util::LogLevel::Info, kComponent,
                  spec.name + ": partial run (" + std::to_string(out.cells.size()) +
                      "/" + std::to_string(allCells.size()) +
                      " cells complete); store commit deferred to a full run");
  }
  return out;
}

}  // namespace stellar::exp

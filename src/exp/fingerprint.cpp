#include "exp/fingerprint.hpp"

#include <algorithm>
#include <cmath>

#include "rag/embedder.hpp"

namespace stellar::exp {

namespace {

/// Log-compresses a count/byte feature into [0, 1]. The divisor bounds the
/// log2 of realistic values (2^60 bytes ~ an exabyte); workloads of one
/// family at different scales differ only mildly in these coordinates.
double logFeature(std::uint64_t value, double logCap) {
  return std::min(1.0, std::log2(1.0 + static_cast<double>(value)) / logCap);
}

}  // namespace

Fingerprint fingerprintOf(const rules::WorkloadContext& context) {
  // The bias term keeps a featureless context (all shares zero) away from
  // the zero vector so cosine stays defined, and damps spurious similarity
  // between sparse fingerprints.
  const double raw[Fingerprint::kDims] = {
      context.metaOpShare,
      context.readShare,
      context.sequentialShare,
      context.sharedFileShare,
      context.smallFileShare,
      logFeature(context.dominantAccessSize, 40.0),
      logFeature(context.fileCount, 40.0),
      logFeature(context.totalBytes, 60.0),
      0.25,
  };
  double norm = 0.0;
  for (const double x : raw) {
    norm += x * x;
  }
  norm = std::sqrt(norm);

  Fingerprint fp;
  fp.features.reserve(Fingerprint::kDims);
  for (const double x : raw) {
    fp.features.push_back(static_cast<float>(x / norm));
  }
  return fp;
}

Fingerprint fingerprintOf(const agents::IoReport& report) {
  return fingerprintOf(report.context);
}

double similarity(const Fingerprint& a, const Fingerprint& b) {
  if (!a.valid() || !b.valid()) {
    return 0.0;
  }
  // Both vectors are L2-normalized and non-negative, so the cosine (the
  // same kernel rag::VectorIndex retrieves chunks with) lands in [0, 1].
  return std::clamp(rag::HashedTfIdfEmbedder::cosine(a.features, b.features), 0.0, 1.0);
}

util::Json Fingerprint::toJson() const {
  util::Json arr = util::Json::makeArray();
  for (const float x : features) {
    arr.push(static_cast<double>(x));
  }
  return arr;
}

Fingerprint Fingerprint::fromJson(const util::Json& json) {
  Fingerprint fp;
  for (const util::Json& x : json.asArray()) {
    fp.features.push_back(static_cast<float>(x.asNumber()));
  }
  if (fp.features.size() != kDims) {
    fp.features.clear();  // wrong arity: treat as unknown, never recalled
  }
  return fp;
}

}  // namespace stellar::exp

// CampaignRunner: fleet-scale tuning orchestration. A declarative campaign
// spec (workloads x seeds x model profiles x optional fault scenarios)
// expands into independent tuning *cells*, executed concurrently over a
// util::ThreadPool, each filing its experience into the shared store.
//
// Determinism and durability (see DESIGN.md §5e):
//   - Every cell builds its own simulator/engine from the cell's seed; no
//     state is shared between in-flight cells, so the per-cell result is
//     independent of scheduling order and thread count.
//   - Warm-start recall reads an immutable snapshot of the store taken at
//     campaign start; outcome feedback (penalize/confirm) is deferred and
//     applied at commit, so recall results cannot depend on cell ordering.
//   - New records are appended to per-thread shard files next to the store
//     (single-writer rule: only the commit step touches the store file).
//     Commit absorbs the shards (dedup by id = cell key) and compacts.
//   - Each finished cell appends its result to a manifest (JSONL). A re-run
//     of the same spec skips manifest-completed cells, so a killed campaign
//     resumes with only the missing cells — and the final aggregate JSON is
//     byte-identical to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/experience_store.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace stellar::exp {

/// One point of the campaign grid.
struct CampaignCell {
  std::string workload;
  std::uint64_t seed = 1;
  std::string model;
  std::string faults;  ///< fault spec/scenario; "" = clean weather

  /// Stable identity used for manifest resume and record dedup.
  [[nodiscard]] std::string key() const;
};

/// Declarative campaign description (JSON-loadable).
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<std::string> workloads;
  std::vector<std::uint64_t> seeds;
  std::vector<std::string> models = {"claude-3.7-sonnet"};
  /// Fault specs crossed into the grid; the default single "" keeps the
  /// grid fault-free without special-casing.
  std::vector<std::string> faultScenarios = {""};
  double scale = 0.05;     ///< workload volume scale (campaigns favor small)
  std::uint32_t ranks = 50;
  bool warmStart = true;   ///< recall prior experience for each cell

  [[nodiscard]] std::vector<CampaignCell> cells() const;

  [[nodiscard]] util::Json toJson() const;
  /// Throws util::JsonError on malformed specs.
  [[nodiscard]] static CampaignSpec fromJson(const util::Json& json);
  [[nodiscard]] static CampaignSpec loadFile(const std::string& path);
};

/// Outcome of one executed (or manifest-recalled) cell.
struct CellResult {
  std::string key;
  std::string workload;
  std::uint64_t seed = 0;
  std::string model;
  std::string faults;
  double defaultSeconds = 0.0;
  double bestSeconds = 0.0;
  double speedup = 0.0;
  std::size_t attempts = 0;
  std::size_t iterationsToBest = 0;
  bool warmStarted = false;
  std::string endReason;
  bool failed = false;     ///< the cell threw; error carries the message
  std::string error;

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] static CellResult fromJson(const util::Json& json);
};

struct CampaignOptions {
  /// Experience store path ("" = memory-only: no shards, no persistence).
  std::string storePath;
  /// Manifest path; defaults to storePath + ".manifest" (or "" when the
  /// store is memory-only, which disables resume).
  std::string manifestPath;
  std::size_t threads = 0;   ///< 0 = hardware concurrency
  /// Execute at most this many pending cells, then stop (0 = all). Lets
  /// tests and the CI smoke job simulate a killed campaign deterministically.
  std::size_t maxCells = 0;
  StoreOptions store;        ///< store tuning (similarity, topK, counters)
  obs::CounterRegistry* counters = nullptr;  ///< nullable, non-owning
  obs::Tracer* tracer = nullptr;             ///< nullable, non-owning
};

struct CampaignResult {
  /// All completed cells, sorted by key (deterministic across resumes).
  std::vector<CellResult> cells;
  std::size_t executed = 0;  ///< cells run in this invocation
  std::size_t skipped = 0;   ///< cells recalled complete from the manifest
  bool complete = false;     ///< every cell of the spec is accounted for

  /// The campaign's one machine-readable output document. Deliberately
  /// excludes executed/skipped (which differ between an interrupted and an
  /// uninterrupted run) so a resumed campaign's document is byte-identical.
  [[nodiscard]] util::Json aggregateJson(const CampaignSpec& spec) const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options);

  /// Runs (or resumes) `spec`. Cells already present in the manifest are
  /// skipped; everything else executes concurrently. The store commit
  /// (shard absorption + deferred recall outcomes + compaction) happens
  /// only when every cell of the spec has completed.
  [[nodiscard]] CampaignResult run(const CampaignSpec& spec);

 private:
  CampaignOptions options_;
};

}  // namespace stellar::exp

// Shared single-case runner: materialized case -> RunResult, with the
// fault plan and (optionally) a fresh observability registry attached the
// same way every testkit consumer expects.
#pragma once

#include <optional>
#include <string>

#include "obs/counters.hpp"
#include "pfs/simulator.hpp"
#include "testkit/gen.hpp"

namespace stellar::testkit {

/// Runs the materialized case once. The shape's seed is the sim seed, the
/// shape's fault plan is attached when non-empty, and `registry` (if
/// given) receives exactly this run's observability flush.
[[nodiscard]] pfs::RunResult runCase(const GeneratedCase& cse,
                                     obs::CounterRegistry* registry = nullptr);

/// As above with explicit engine construction knobs (scheduler backend,
/// arena sizing, shard fan-out). The ML-SCHED/ML-SHARD laws drive the same
/// case through different engine configurations and demand bit-identity.
[[nodiscard]] pfs::RunResult runCase(const GeneratedCase& cse,
                                     const sim::EngineOptions& engine,
                                     obs::CounterRegistry* registry = nullptr);

/// Bit-identity comparison of two run results; returns a description of
/// the first difference, or nullopt when identical. Floating-point fields
/// are compared exactly — determinism means *exact* replay.
[[nodiscard]] std::optional<std::string> describeDifference(const pfs::RunResult& a,
                                                            const pfs::RunResult& b);

}  // namespace stellar::testkit

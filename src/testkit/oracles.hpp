// Differential oracles: degenerate scenarios whose wall time has a
// closed-form analytic model built from the ClusterSpec constants. The
// simulator must match the model within a tolerance that covers only its
// documented service jitter — a drift beyond that is a physics bug, not
// noise.
//
//   ORA-COMPUTE  compute-only ranks  ⇒ wall == max over ranks of Σ seconds
//   ORA-META     serial create chain ⇒ wall ≈ N·(2·latency + createCost)
//   ORA-WRITE    single rank, single OST, RPC-sized sequential writes with
//                in_flight=1 and a final fsync ⇒ wall ≈ serialized
//                round-trip per RPC (wire + latency + positioning +
//                transfer), first RPC paying the seek penalty
//   ORA-READ     same shape read back from a different node with
//                readahead off ⇒ read phase ≈ serialized round trips
//
// The ORA-READA family pins the sliding-window readahead engine itself.
// Here the modelled quantity is not seconds but the byte accounting of the
// window machine — prefetch hit rate and wasted-prefetch bytes — which is
// exactly computable per access pattern (integer bookkeeping, no jitter):
//
//   ORA-READA-COLD     cold sequential scan of an N-chunk file ⇒ only the
//                      first chunk misses: hit rate == (N-1)/N
//   ORA-READA-WARM     whole-file mode: a file of exactly the whole-file
//                      cutover size, half-read then closed ⇒ discarded
//                      bytes == size/2
//   ORA-READA-STRIDED  strided reads (stride >> window) ⇒ waste is exactly
//                      the first read's RPC-aligned window remainder
//   ORA-READA-RANDOM   descending (never-sequential) reads ⇒ the engine
//                      speculates only on the first read, clamped at EOF:
//                      prefetched bytes == one chunk
#pragma once

#include <string>
#include <vector>

#include "testkit/invariants.hpp"

namespace stellar::testkit {

struct OracleOutcome {
  std::string id;        ///< ORA-*
  double expected = 0.0;  ///< analytic value (seconds; bytes or a hit rate
                          ///< for the ORA-READA byte-accounting family)
  double actual = 0.0;    ///< simulated value in the same unit
  double tolerance = 0.0; ///< relative
  [[nodiscard]] bool pass() const noexcept {
    const double err = expected == 0.0 ? actual : (actual - expected) / expected;
    return err <= tolerance && err >= -tolerance;
  }
};

/// Runs all oracle scenarios with sub-seeds derived from `seed` (the
/// scenarios are fixed; the seed only varies jitter). Returns one outcome
/// per oracle.
[[nodiscard]] std::vector<OracleOutcome> runOracles(std::uint64_t seed);

/// Violation view of runOracles for the explore driver.
[[nodiscard]] std::vector<Violation> checkOracles(std::uint64_t seed);

}  // namespace stellar::testkit

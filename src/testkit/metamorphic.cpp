#include "testkit/metamorphic.hpp"

#include <algorithm>
#include <string>

#include "testkit/run.hpp"
#include "util/units.hpp"

namespace stellar::testkit {

namespace {

double aggregateBytes(const pfs::RunResult& r) {
  double total = 0.0;
  for (const pfs::RankStats& rs : r.ranks) {
    total += static_cast<double>(rs.bytesRead) + static_cast<double>(rs.bytesWritten);
  }
  return total;
}

}  // namespace

std::vector<Violation> checkMetamorphic(const CaseShape& shape,
                                        const MetamorphicPlan& plan) {
  std::vector<Violation> v;
  const GeneratedCase base = materialize(shape);

  // ML-DET: replaying the same case must be bit-identical. This is the
  // repo-wide determinism contract every other law leans on.
  if (plan.determinism) {
    const pfs::RunResult first = runCase(base);
    const pfs::RunResult second = runCase(base);
    if (const auto diff = describeDifference(first, second)) {
      v.push_back(Violation{"ML-DET", "same seed did not replay: " + *diff});
    }
  }

  // ML-SCHED: the scheduler backend is a pure performance choice. Heap and
  // calendar queue must pop the exact same (timestamp, insertion-seq) order,
  // so whole-run results are bit-identical down to the RunAudit.
  if (plan.schedulers) {
    const pfs::RunResult heap =
        runCase(base, sim::EngineOptions{.scheduler = sim::SchedulerKind::Heap});
    const pfs::RunResult calendar =
        runCase(base, sim::EngineOptions{.scheduler = sim::SchedulerKind::Calendar});
    if (const auto diff = describeDifference(heap, calendar)) {
      v.push_back(Violation{"ML-SCHED", "heap vs calendar diverged: " + *diff});
    }
  }

  // ML-SHARD: replicate the case into 4 shared-nothing federation cells
  // and run on 1 / 2 / 4 engine shards. Randomness is keyed by global
  // component ids, so the shard grouping cannot change any number. Bounded
  // to small shapes: the cellified job is 4x the base work, times 3 runs.
  if (plan.shards && shape.ranks <= 8 &&
      std::uint64_t{shape.chunksPerFile} * shape.chunkBytes <= 8 * util::kMiB) {
    const GeneratedCase celled = cellify(base, 4);
    const pfs::RunResult one = runCase(celled, sim::EngineOptions{.shards = 1});
    const pfs::RunResult two = runCase(celled, sim::EngineOptions{.shards = 2});
    const pfs::RunResult four = runCase(celled, sim::EngineOptions{.shards = 4});
    if (const auto diff = describeDifference(one, two)) {
      v.push_back(Violation{"ML-SHARD", "1 vs 2 shards diverged: " + *diff});
    }
    if (const auto diff = describeDifference(one, four)) {
      v.push_back(Violation{"ML-SHARD", "1 vs 4 shards diverged: " + *diff});
    }
  }

  // ML-FAULTFREE: an attached-but-empty plan must not perturb anything
  // (the injector is not armed for empty plans — pin that contract).
  if (plan.faultFree && shape.faults.empty()) {
    const pfs::RunResult bare = runCase(base);

    pfs::SimulatorOptions options;
    options.cluster = base.cluster;
    const faults::FaultPlan empty;
    options.faults = &empty;
    const pfs::PfsSimulator sim{options};
    const pfs::RunResult withEmpty =
        sim.run(base.job, shape.config, shape.seed);
    if (const auto diff = describeDifference(bare, withEmpty)) {
      v.push_back(
          Violation{"ML-FAULTFREE", "empty fault plan perturbed the run: " + *diff});
    }
  }

  // ML-SCALE: doubling the rank count (doubling client nodes so the
  // per-node resources stay fixed) must not reduce aggregate bytes moved —
  // per-rank programs only get added, never removed.
  if (plan.scale && shape.ranks <= 64) {
    CaseShape doubled = shape;
    doubled.clientNodes = shape.clientNodes * 2;
    doubled.ranks = shape.ranks * 2;
    const pfs::RunResult small = runCase(base);
    const pfs::RunResult big = runCase(materialize(doubled));
    if (small.outcome == pfs::RunOutcome::Ok && big.outcome == pfs::RunOutcome::Ok &&
        aggregateBytes(big) + 0.5 < aggregateBytes(small)) {
      v.push_back(Violation{
          "ML-SCALE", "doubling ranks reduced aggregate work: " +
                          std::to_string(aggregateBytes(small)) + " -> " +
                          std::to_string(aggregateBytes(big)) + " bytes"});
    }
  }

  // ML-RELAX: osc.max_rpcs_in_flight is pure capacity. On a single-rank,
  // private-file, sequential, fault-free workload there is nothing to
  // contend with, so relaxing it cannot meaningfully worsen wall time.
  // Epsilon absorbs service-jitter resampling: the two runs consume the
  // engine's random stream in different orders.
  if (plan.relax && shape.ranks == 1 && !shape.sharedFile && !shape.randomOffsets &&
      shape.faults.empty()) {
    CaseShape tight = shape;
    (void)tight.config.set("osc.max_rpcs_in_flight", 1);
    CaseShape relaxed = shape;
    (void)relaxed.config.set("osc.max_rpcs_in_flight", 32);
    const pfs::RunResult slowPath = runCase(materialize(tight));
    const pfs::RunResult fastPath = runCase(materialize(relaxed));
    if (slowPath.outcome == pfs::RunOutcome::Ok &&
        fastPath.outcome == pfs::RunOutcome::Ok) {
      const double eps = 0.10 * slowPath.rawWallSeconds + 2e-3;
      if (fastPath.rawWallSeconds > slowPath.rawWallSeconds + eps) {
        v.push_back(Violation{
            "ML-RELAX",
            "relaxing max_rpcs_in_flight 1->32 worsened a contention-free run: " +
                std::to_string(slowPath.rawWallSeconds) + "s -> " +
                std::to_string(fastPath.rawWallSeconds) + "s"});
      }
    }
  }

  return v;
}

}  // namespace stellar::testkit

// Corpus-driven fuzz harness for every hand-rolled parser in the repo.
//
// The contract under test is narrow and absolute: for ANY input bytes, a
// parser either returns a value or throws a documented exception type —
// it never crashes, never corrupts memory (ASan/UBSan enforce that in the
// sanitizer CI job), and never fails to terminate. The harness replays a
// committed corpus of nasty inputs (tests/testkit/corpus/) and then
// mutates corpus entries with seeded byte-level edits.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace stellar::testkit {

enum class FuzzTarget : std::uint8_t {
  Json,       ///< util::Json::parse
  FaultSpec,  ///< faults::parseFaultSpec
  Rules,      ///< rules::RuleSet::fromJson over parsed JSON
  Campaign,   ///< exp::CampaignSpec / CellResult manifest rows
  Journal,    ///< exp::ExperienceStore JSONL journal loading
};

[[nodiscard]] const char* fuzzTargetName(FuzzTarget target) noexcept;

/// Maps a corpus subdirectory name ("json", "faultspec", "rules",
/// "campaign", "journal") to its target; returns false for unknown names.
[[nodiscard]] bool fuzzTargetByName(std::string_view name, FuzzTarget& out) noexcept;

struct FuzzFinding {
  FuzzTarget target = FuzzTarget::Json;
  std::string input;    ///< the offending bytes (possibly mutated)
  std::string problem;  ///< what escaped (exception type/what, or budget)
};

/// Feeds one input to one parser. Returns true when the parser behaved
/// (accepted, or threw its documented error type); records a finding
/// otherwise. Inputs larger than 4 MiB are truncated — parser complexity
/// must stay linear, and the no-hang budget assumes bounded input.
bool fuzzOne(FuzzTarget target, std::string_view input,
             std::vector<FuzzFinding>* findings);

/// Replays every file under `corpusDir` (subdirectories name their
/// target, e.g. corpusDir/json/deep_nesting.json), then runs `mutations`
/// seeded byte-level mutations of each entry. Returns all findings.
[[nodiscard]] std::vector<FuzzFinding> fuzzCorpus(const std::string& corpusDir,
                                                  std::uint64_t seed,
                                                  int mutationsPerEntry = 32);

/// Number of corpus files visited by the last fuzzCorpus call on this
/// thread (0 when the directory was missing — callers treat that as a
/// configuration error, not a clean pass).
[[nodiscard]] std::size_t lastCorpusFileCount() noexcept;

}  // namespace stellar::testkit

// Seeded case generation for the property-testing kit.
//
// A CaseShape is the *compressed genome* of a test case: a handful of
// integers and flags that materialize deterministically into a full
// (cluster, config, job, fault plan) tuple. Shrinking operates on shapes —
// each shrink step produces a strictly simpler genome, re-materializes it,
// and re-checks the failing property — so a reported counterexample is
// both minimal and reproducible from its seed alone.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "faults/fault_plan.hpp"
#include "pfs/job.hpp"
#include "pfs/params.hpp"
#include "pfs/topology.hpp"
#include "util/rng.hpp"

namespace stellar::testkit {

/// The genome of one generated case. Every field is either sampled from
/// the case seed or produced by a shrink step; materialize() is a pure
/// function of this struct.
struct CaseShape {
  std::uint64_t seed = 0;  ///< drives offsets/orderings AND the sim run

  // Cluster dimensions (the rest of ClusterSpec stays at defaults so the
  // analytic constants in oracles.cpp keep meaning).
  std::uint32_t clientNodes = 1;
  std::uint32_t ranksPerNode = 1;
  std::uint32_t ossNodes = 1;

  std::uint32_t ranks = 1;  ///< <= clientNodes * ranksPerNode

  // Program shape.
  bool sharedFile = false;       ///< one shared file vs private files
  std::uint32_t filesPerRank = 1;  ///< private mode only
  std::uint32_t chunksPerFile = 4;
  std::uint64_t chunkBytes = 64 * 1024;
  bool randomOffsets = false;  ///< shuffle write order within a file
  bool doRead = true;
  bool doStat = false;
  bool doUnlink = false;
  bool doFsync = true;
  double computeSeconds = 0.0;  ///< per-rank compute op before I/O

  pfs::PfsConfig config;      ///< always valid for the materialized cluster
  faults::FaultPlan faults;   ///< empty = fault-free

  [[nodiscard]] std::string describe() const;
};

/// A shape materialized into simulator inputs.
struct GeneratedCase {
  CaseShape shape;
  pfs::ClusterSpec cluster;
  pfs::JobSpec job;
};

/// Knobs for the generator (the explore CLI exposes a subset).
struct GenOptions {
  bool allowFaults = true;
  bool allowSharedFiles = true;
  /// Upper bound on total I/O bytes per case, keeps Release-mode
  /// exploration under the 60 s budget for 500 cases.
  std::uint64_t maxTotalBytes = 256ULL * 1024 * 1024;
};

/// Samples a random-but-valid config: each tunable is independently kept
/// at its default or resampled uniformly inside paramBounds, then the
/// whole config is clamped so dependent bounds hold.
[[nodiscard]] pfs::PfsConfig randomConfig(util::Rng& rng, const pfs::BoundsContext& ctx);

/// Deterministically generates the shape for `caseSeed`.
[[nodiscard]] CaseShape generateShape(std::uint64_t caseSeed, const GenOptions& opts = {});

/// Pure function: shape -> simulator inputs. The job passes
/// JobSpec::validate() by construction.
[[nodiscard]] GeneratedCase materialize(const CaseShape& shape);

/// Replicates a materialized case across `cells` shared-nothing federation
/// cells: the cluster gains `cells` copies of just-enough client nodes (and
/// of its OSS fleet), and every cell gets a clone of the base job with
/// cell-local files. Cells whose rank slots outnumber the base job's ranks
/// pad by repeating base programs (padded rank i runs base rank i % R), so
/// every cell is identical and the partition into cells is exact. The
/// result drives pfs::PfsSimulator's federated path; its results are
/// bit-identical for any scheduler backend or shard count.
[[nodiscard]] GeneratedCase cellify(const GeneratedCase& base, std::uint32_t cells);

/// Greedy shrinking: repeatedly tries simplifying steps (halve sizes, drop
/// phases, drop faults, reset config fields) and keeps any step for which
/// `stillFails` returns true, until no step applies or `maxSteps` attempts
/// were made. Returns the smallest failing shape found.
[[nodiscard]] CaseShape shrink(CaseShape shape,
                               const std::function<bool(const CaseShape&)>& stillFails,
                               int maxSteps = 400);

}  // namespace stellar::testkit

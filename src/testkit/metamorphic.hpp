// Metamorphic laws over the simulator's response surface.
//
// A metamorphic law relates the outputs of *two related runs* without
// knowing either output in advance — exactly the kind of property that
// survives when no closed-form oracle exists:
//
//   ML-DET       same (job, config, seed, plan) ⇒ bit-identical results
//   ML-SCHED     heap and calendar schedulers ⇒ bit-identical results
//   ML-SHARD     a cellified case is bit-identical for 1 / 2 / 4 engine
//                shards (shared-nothing cells + globally keyed randomness)
//   ML-FAULTFREE an *empty* fault plan ⇒ bit-identical to no plan at all
//   ML-SCALE     doubling the client ranks never reduces aggregate work
//   ML-RELAX     raising osc.max_rpcs_in_flight on a contention-free
//                single-rank workload never worsens wall time beyond ε
//                (the knob only adds capacity; ε absorbs jitter resampling)
#pragma once

#include <vector>

#include "testkit/gen.hpp"
#include "testkit/invariants.hpp"

namespace stellar::testkit {

/// Which laws apply to this shape (ML-RELAX needs a contention-free
/// shape; ML-SCALE needs headroom to double the ranks).
struct MetamorphicPlan {
  bool determinism = true;
  bool schedulers = true;
  bool shards = true;
  bool faultFree = true;
  bool scale = true;
  bool relax = true;
};

/// Runs every applicable law for the shape; each failing law yields one
/// Violation with an ML-* id.
[[nodiscard]] std::vector<Violation> checkMetamorphic(const CaseShape& shape,
                                                      const MetamorphicPlan& plan = {});

}  // namespace stellar::testkit

#include "testkit/gen.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <utility>
#include <vector>

namespace stellar::testkit {

using pfs::FileId;
using pfs::IoOp;

pfs::PfsConfig randomConfig(util::Rng& rng, const pfs::BoundsContext& ctx) {
  pfs::PfsConfig cfg;
  for (const std::string& name : pfs::PfsConfig::tunableNames()) {
    if (!rng.chance(0.5)) {
      continue;  // keep the default
    }
    const auto bounds = pfs::paramBounds(name, cfg, ctx);
    if (!bounds) {
      continue;
    }
    // Sample log-uniform-ish by mixing a uniform draw with the bounds so
    // small values (where most behavioural cliffs live) are well covered.
    const std::int64_t lo = bounds->min;
    const std::int64_t hi = bounds->max;
    std::int64_t value;
    if (rng.chance(0.5) && hi > lo) {
      // Geometric walk up from the minimum.
      value = lo;
      while (value < hi && rng.chance(0.6)) {
        value = std::min(hi, std::max(value * 2, value + 1));
      }
    } else {
      value = rng.uniformInt(lo, hi);
    }
    (void)cfg.set(name, value);
  }
  return pfs::clampConfig(cfg, ctx);
}

namespace {

faults::FaultPlan randomFaults(util::Rng& rng) {
  faults::FaultPlan plan;
  plan.seed = rng.next() | 1;
  const int count = static_cast<int>(rng.uniformInt(1, 2));
  for (int i = 0; i < count; ++i) {
    faults::FaultEvent ev;
    ev.begin = rng.uniform(0.0, 2.0);
    ev.end = ev.begin + rng.uniform(0.5, 10.0);
    switch (rng.uniformInt(0, 5)) {
      case 0:
        ev.kind = faults::FaultKind::OstDegrade;
        ev.target = rng.chance(0.5) ? faults::kAllTargets
                                    : static_cast<std::int32_t>(rng.uniformInt(0, 4));
        ev.magnitude = rng.uniform(0.2, 1.0);
        break;
      case 1:
        ev.kind = faults::FaultKind::MdsOverload;
        ev.magnitude = rng.uniform(1.0, 6.0);
        break;
      case 2:
        ev.kind = faults::FaultKind::RpcStall;
        ev.magnitude = rng.uniform(0.0, 0.02);
        break;
      case 3:
        ev.kind = faults::FaultKind::NoiseSpike;
        ev.magnitude = rng.uniform(1.0, 4.0);
        break;
      case 4:
        // Low drop probability: high rates mostly produce Failed runs,
        // which exercise less of the conservation surface.
        ev.kind = faults::FaultKind::RpcDrop;
        ev.magnitude = rng.uniform(0.0, 0.15);
        break;
      default: {
        // Agent-layer kinds must be inert at the simulator: a plan that
        // carries them behaves exactly like one that does not (ISSUE 7).
        static constexpr faults::FaultKind kLlmKinds[] = {
            faults::FaultKind::LlmTimeout,        faults::FaultKind::LlmRateLimit,
            faults::FaultKind::LlmTruncated,      faults::FaultKind::LlmMalformed,
            faults::FaultKind::LlmHallucinatedKnob,
            faults::FaultKind::LlmOutOfRange,     faults::FaultKind::LlmStaleAnalysis,
        };
        ev.kind = kLlmKinds[rng.uniformInt(0, 6)];
        ev.magnitude = rng.uniform(0.0, 1.0);
        break;
      }
    }
    plan.events.push_back(ev);
  }
  plan.validate();
  return plan;
}

}  // namespace

CaseShape generateShape(std::uint64_t caseSeed, const GenOptions& opts) {
  util::Rng rng{util::mix64(caseSeed, 0x7E57CA5EULL)};
  CaseShape s;
  s.seed = caseSeed;

  s.clientNodes = static_cast<std::uint32_t>(rng.uniformInt(1, 3));
  s.ranksPerNode = static_cast<std::uint32_t>(rng.uniformInt(1, 4));
  s.ossNodes = static_cast<std::uint32_t>(rng.uniformInt(1, 5));
  s.ranks = static_cast<std::uint32_t>(
      rng.uniformInt(1, static_cast<std::int64_t>(s.clientNodes) * s.ranksPerNode));

  s.sharedFile = opts.allowSharedFiles && rng.chance(0.35);
  s.filesPerRank = s.sharedFile ? 1 : static_cast<std::uint32_t>(rng.uniformInt(1, 3));
  s.chunksPerFile = static_cast<std::uint32_t>(rng.uniformInt(1, 24));
  const std::uint64_t sizes[] = {4 * 1024,   16 * 1024,  64 * 1024,
                                 256 * 1024, 1024 * 1024, 4 * 1024 * 1024};
  s.chunkBytes = sizes[rng.uniformInt(0, 5)];
  s.randomOffsets = rng.chance(0.3);
  s.doRead = rng.chance(0.7);
  s.doStat = rng.chance(0.4);
  s.doUnlink = rng.chance(0.25);
  s.doFsync = rng.chance(0.6);
  s.computeSeconds = rng.chance(0.3) ? rng.uniform(0.001, 0.05) : 0.0;

  // Cap total bytes so one case cannot blow the exploration budget.
  const auto total = [&s]() {
    const std::uint64_t files =
        s.sharedFile ? 1 : std::uint64_t{s.ranks} * s.filesPerRank;
    const std::uint64_t writers = s.sharedFile ? s.ranks : 1;
    return files * writers * s.chunksPerFile * s.chunkBytes;
  };
  while (total() > opts.maxTotalBytes) {
    if (s.chunkBytes > 4 * 1024) {
      s.chunkBytes /= 2;
    } else if (s.chunksPerFile > 1) {
      s.chunksPerFile /= 2;
    } else {
      break;
    }
  }

  pfs::BoundsContext ctx;
  ctx.clientRamMb = pfs::ClusterSpec{}.clientRamMb();
  ctx.ostCount = s.ossNodes;
  s.config = randomConfig(rng, ctx);

  if (opts.allowFaults && rng.chance(0.3)) {
    s.faults = randomFaults(rng);
  }
  return s;
}

GeneratedCase materialize(const CaseShape& shape) {
  GeneratedCase out;
  out.shape = shape;

  out.cluster = pfs::defaultCluster();
  out.cluster.clientNodes = std::max<std::uint32_t>(1, shape.clientNodes);
  out.cluster.ranksPerNode = std::max<std::uint32_t>(1, shape.ranksPerNode);
  out.cluster.ossNodes = std::max<std::uint32_t>(1, shape.ossNodes);
  out.cluster.ostsPerOss = 1;

  const std::uint32_t ranks =
      std::clamp<std::uint32_t>(shape.ranks, 1, out.cluster.totalRanks());

  pfs::JobSpec job;
  job.name = "testkit_case";
  job.ranks.resize(ranks);
  util::Rng rng{util::mix64(shape.seed, 0x9E0B0DE5ULL)};

  const std::uint64_t chunk = std::max<std::uint64_t>(1, shape.chunkBytes);
  const std::uint32_t chunks = std::max<std::uint32_t>(1, shape.chunksPerFile);

  const auto emitChunkOps = [&](std::uint32_t r, FileId file, std::uint64_t base,
                                bool isWrite) {
    std::vector<std::uint32_t> order(chunks);
    std::iota(order.begin(), order.end(), 0);
    if (shape.randomOffsets) {
      util::Rng perRank{util::mix64(rng.next(), r)};
      perRank.shuffle(order);
    }
    for (const std::uint32_t i : order) {
      const std::uint64_t off = base + std::uint64_t{i} * chunk;
      job.ranks[r].push_back(isWrite ? IoOp::write(file, off, chunk)
                                     : IoOp::read(file, off, chunk));
    }
  };

  if (shape.computeSeconds > 0.0) {
    for (std::uint32_t r = 0; r < ranks; ++r) {
      job.ranks[r].push_back(IoOp::compute(shape.computeSeconds));
    }
  }

  if (shape.sharedFile) {
    const FileId shared = job.addFile("/testkit/shared");
    // Rank 0 creates; everyone opens after a barrier (the IOR idiom).
    for (std::uint32_t r = 0; r < ranks; ++r) {
      if (r == 0) {
        job.ranks[r].push_back(IoOp::create(shared));
      }
      job.ranks[r].push_back(IoOp::barrier());
      if (r != 0) {
        job.ranks[r].push_back(IoOp::open(shared));
      }
    }
    const std::uint64_t block = std::uint64_t{chunks} * chunk;
    for (std::uint32_t r = 0; r < ranks; ++r) {
      emitChunkOps(r, shared, std::uint64_t{r} * block, /*isWrite=*/true);
      if (shape.doFsync) {
        job.ranks[r].push_back(IoOp::fsync(shared));
      }
      job.ranks[r].push_back(IoOp::barrier());
    }
    if (shape.doRead) {
      // Read a neighbour's block so the page cache cannot serve it when
      // nodes differ.
      for (std::uint32_t r = 0; r < ranks; ++r) {
        const std::uint32_t victim = (r + 1) % ranks;
        emitChunkOps(r, shared, std::uint64_t{victim} * block, /*isWrite=*/false);
        job.ranks[r].push_back(IoOp::barrier());
      }
    }
    if (shape.doStat) {
      for (std::uint32_t r = 0; r < ranks; ++r) {
        job.ranks[r].push_back(IoOp::stat(shared));
      }
    }
    for (std::uint32_t r = 0; r < ranks; ++r) {
      job.ranks[r].push_back(IoOp::close(shared));
      job.ranks[r].push_back(IoOp::barrier());
    }
    if (shape.doUnlink) {
      job.ranks[0].push_back(IoOp::unlink(shared));
    }
  } else {
    const std::uint32_t filesPerRank = std::max<std::uint32_t>(1, shape.filesPerRank);
    for (std::uint32_t r = 0; r < ranks; ++r) {
      std::vector<FileId> mine;
      mine.reserve(filesPerRank);
      for (std::uint32_t f = 0; f < filesPerRank; ++f) {
        mine.push_back(job.addFile("/testkit/r" + std::to_string(r) + "_f" +
                                   std::to_string(f)));
      }
      for (const FileId file : mine) {
        job.ranks[r].push_back(IoOp::create(file));
        emitChunkOps(r, file, 0, /*isWrite=*/true);
        if (shape.doFsync) {
          job.ranks[r].push_back(IoOp::fsync(file));
        }
        if (shape.doRead) {
          emitChunkOps(r, file, 0, /*isWrite=*/false);
        }
        if (shape.doStat) {
          job.ranks[r].push_back(IoOp::stat(file));
        }
        job.ranks[r].push_back(IoOp::close(file));
        if (shape.doUnlink) {
          job.ranks[r].push_back(IoOp::unlink(file));
        }
      }
    }
  }

  // Every rank must have a non-empty program (validate() requires it).
  for (auto& program : job.ranks) {
    if (program.empty()) {
      program.push_back(IoOp::barrier());
    }
  }

  out.job = std::move(job);
  return out;
}

std::string CaseShape::describe() const {
  std::ostringstream os;
  os << "seed=0x" << std::hex << seed << std::dec << " cluster=" << clientNodes
     << "x" << ranksPerNode << "ranks/" << ossNodes << "ost"
     << " ranks=" << ranks << (sharedFile ? " shared" : " private")
     << " filesPerRank=" << filesPerRank << " chunks=" << chunksPerFile << "x"
     << chunkBytes << "B" << (randomOffsets ? " random" : " seq")
     << (doRead ? " +read" : "") << (doStat ? " +stat" : "")
     << (doUnlink ? " +unlink" : "") << (doFsync ? " +fsync" : "");
  if (computeSeconds > 0.0) {
    os << " compute=" << computeSeconds << "s";
  }
  if (!faults.empty()) {
    os << " faults=[" << faults.describe() << "]";
  }
  const std::string cfgDiff = config.diffAgainst(pfs::PfsConfig{});
  if (!cfgDiff.empty()) {
    os << " config{" << cfgDiff << "}";
  }
  return os.str();
}

GeneratedCase cellify(const GeneratedCase& base, std::uint32_t cells) {
  cells = std::max<std::uint32_t>(1, cells);
  const std::uint32_t baseRanks = base.job.rankCount();
  const std::uint32_t rpn = std::max<std::uint32_t>(1, base.cluster.ranksPerNode);
  // Just-enough nodes per cell: the cell's rank slots are fully used (after
  // padding), so the federated partitioner maps cell c's slots to exactly
  // the programs cloned for cell c.
  const std::uint32_t nodesPerCell = (baseRanks + rpn - 1) / rpn;
  const std::uint32_t slotsPerCell = nodesPerCell * rpn;

  GeneratedCase out;
  out.shape = base.shape;
  out.cluster = base.cluster;
  out.cluster.clientNodes = nodesPerCell * cells;
  out.cluster.ossNodes = base.cluster.ossNodes * cells;
  out.cluster.cells = cells;
  out.cluster.name = base.cluster.name + "+cellified" + std::to_string(cells);

  pfs::JobSpec job;
  job.name = base.job.name + "_cellified";
  job.dirs = base.job.dirs;
  job.ranks.resize(std::size_t{slotsPerCell} * cells);
  for (std::uint32_t c = 0; c < cells; ++c) {
    std::vector<FileId> localFile(base.job.files.size());
    for (std::size_t f = 0; f < base.job.files.size(); ++f) {
      localFile[f] = job.addFile(
          base.job.files[f].name + "@cell" + std::to_string(c), base.job.files[f].dir);
    }
    for (std::uint32_t s = 0; s < slotsPerCell; ++s) {
      std::vector<pfs::IoOp> program = base.job.ranks[s % baseRanks];
      for (pfs::IoOp& op : program) {
        if (op.file != pfs::kInvalidFile) {
          op.file = localFile[op.file];
        }
      }
      job.ranks[std::size_t{c} * slotsPerCell + s] = std::move(program);
    }
  }
  out.job = std::move(job);
  return out;
}

CaseShape shrink(CaseShape shape,
                 const std::function<bool(const CaseShape&)>& stillFails,
                 int maxSteps) {
  // Each candidate mutates a copy toward "simpler"; returns false when the
  // step does not apply (already minimal along that axis).
  using Step = std::function<bool(CaseShape&)>;
  const std::vector<Step> steps = {
      [](CaseShape& s) {
        if (s.ranks <= 1) return false;
        s.ranks = std::max<std::uint32_t>(1, s.ranks / 2);
        return true;
      },
      // Halving overshoots the boundary by up to 2x; the decrement steps
      // finish the walk to the exact minimum.
      [](CaseShape& s) {
        if (s.ranks <= 1) return false;
        s.ranks -= 1;
        return true;
      },
      [](CaseShape& s) {
        if (s.chunksPerFile <= 1) return false;
        s.chunksPerFile = std::max<std::uint32_t>(1, s.chunksPerFile / 2);
        return true;
      },
      [](CaseShape& s) {
        if (s.chunksPerFile <= 1) return false;
        s.chunksPerFile -= 1;
        return true;
      },
      [](CaseShape& s) {
        if (s.chunkBytes <= 4096) return false;
        s.chunkBytes = std::max<std::uint64_t>(4096, s.chunkBytes / 2);
        return true;
      },
      [](CaseShape& s) {
        if (s.filesPerRank <= 1) return false;
        s.filesPerRank = std::max<std::uint32_t>(1, s.filesPerRank / 2);
        return true;
      },
      [](CaseShape& s) {
        if (s.faults.empty()) return false;
        if (s.faults.events.size() > 1) {
          s.faults.events.pop_back();
        } else {
          s.faults.events.clear();
        }
        return true;
      },
      [](CaseShape& s) { return std::exchange(s.doUnlink, false); },
      [](CaseShape& s) { return std::exchange(s.doStat, false); },
      [](CaseShape& s) { return std::exchange(s.doRead, false); },
      [](CaseShape& s) { return std::exchange(s.doFsync, false); },
      [](CaseShape& s) { return std::exchange(s.randomOffsets, false); },
      [](CaseShape& s) { return std::exchange(s.sharedFile, false); },
      [](CaseShape& s) {
        if (s.computeSeconds == 0.0) return false;
        s.computeSeconds = 0.0;
        return true;
      },
      [](CaseShape& s) {
        if (s.ossNodes <= 1) return false;
        s.ossNodes = std::max<std::uint32_t>(1, s.ossNodes / 2);
        return true;
      },
      [](CaseShape& s) {
        if (s.clientNodes <= 1) return false;
        s.clientNodes = 1;
        s.ranks = std::min<std::uint32_t>(s.ranks, s.ranksPerNode);
        return true;
      },
      [](CaseShape& s) {
        if (s.config == pfs::PfsConfig{}) return false;
        s.config = pfs::PfsConfig{};
        return true;
      },
  };
  // Per-field config resets (after the whole-config reset failed to keep
  // the violation alive, one offending field is usually isolatable).
  auto resetField = [](const std::string& name) {
    return [name](CaseShape& s) {
      const pfs::PfsConfig defaults;
      const auto cur = s.config.get(name);
      const auto def = defaults.get(name);
      if (!cur || !def || *cur == *def) return false;
      return s.config.set(name, *def);
    };
  };
  std::vector<Step> all = steps;
  for (const std::string& name : pfs::PfsConfig::tunableNames()) {
    all.push_back(resetField(name));
  }

  int attempts = 0;
  bool progressed = true;
  while (progressed && attempts < maxSteps) {
    progressed = false;
    for (const Step& step : all) {
      if (attempts >= maxSteps) {
        break;
      }
      CaseShape candidate = shape;
      if (!step(candidate)) {
        continue;
      }
      ++attempts;
      if (stillFails(candidate)) {
        shape = std::move(candidate);
        progressed = true;
      }
    }
  }
  return shape;
}

}  // namespace stellar::testkit

#include "testkit/oracles.hpp"

#include <algorithm>
#include <cmath>

#include "pfs/simulator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace stellar::testkit {

namespace {

using pfs::IoOp;

/// One-node / one-rank / one-OST cluster: the degenerate topology where
/// pipelining, striping, and cross-client contention all vanish.
pfs::ClusterSpec degenerateCluster(std::uint32_t clientNodes, std::uint32_t ranksPerNode) {
  pfs::ClusterSpec cluster = pfs::defaultCluster();
  cluster.clientNodes = clientNodes;
  cluster.ranksPerNode = ranksPerNode;
  cluster.ossNodes = 1;
  cluster.ostsPerOss = 1;
  return cluster;
}

OracleOutcome computeOracle(std::uint64_t seed) {
  const pfs::ClusterSpec cluster = degenerateCluster(1, 3);
  pfs::JobSpec job;
  job.name = "oracle_compute";
  job.ranks.resize(3);
  double expected = 0.0;
  for (std::uint32_t r = 0; r < 3; ++r) {
    double total = 0.0;
    for (int i = 0; i <= static_cast<int>(r); ++i) {
      const double step = 0.010 * (r + 1) + 0.001 * i;
      job.ranks[r].push_back(IoOp::compute(step));
      total += step;
    }
    expected = std::max(expected, total);
  }
  const pfs::PfsSimulator sim{pfs::SimulatorOptions{.cluster = cluster}};
  const pfs::RunResult result = sim.run(job, pfs::PfsConfig{}, seed);
  // Pure local accrual: no service center, no jitter — near-exact match.
  return OracleOutcome{"ORA-COMPUTE", expected, result.rawWallSeconds, 1e-9};
}

OracleOutcome metaOracle(std::uint64_t seed) {
  const pfs::ClusterSpec cluster = degenerateCluster(1, 1);
  constexpr int kFiles = 64;
  pfs::JobSpec job;
  job.name = "oracle_meta";
  job.ranks.resize(1);
  for (int i = 0; i < kFiles; ++i) {
    const pfs::FileId f = job.addFile("/oracle/f" + std::to_string(i));
    job.ranks[0].push_back(IoOp::create(f));
    job.ranks[0].push_back(IoOp::close(f));
  }
  // A serial create chain pays one MDS round trip per file: request
  // latency + create service + reply latency. The MDS jitter is ±10%
  // uniform per op, which averages out over 64 ops.
  const double expected =
      kFiles * (2.0 * cluster.network.messageLatency + cluster.mds.createCost);
  const pfs::PfsSimulator sim{pfs::SimulatorOptions{.cluster = cluster}};
  const pfs::RunResult result = sim.run(job, pfs::PfsConfig{}, seed);
  return OracleOutcome{"ORA-META", expected, result.rawWallSeconds, 0.10};
}

/// Common analytic cost of one serialized RPC-sized bulk round trip.
double bulkRoundTrip(const pfs::ClusterSpec& cluster, double bytes, bool isWrite) {
  const double wire = bytes / cluster.network.nicBandwidth;
  double transfer = bytes / cluster.disk.sequentialBandwidth +
                    cluster.disk.transferOverhead;
  if (isWrite) {
    transfer += 0.02e-3;  // journal commit cost, see pfs/ost.cpp
  }
  return 2.0 * wire + 2.0 * cluster.network.messageLatency +
         cluster.disk.positioningOverhead + transfer;
}

pfs::PfsConfig serializedConfig() {
  pfs::PfsConfig cfg;
  cfg.stripe_count = 1;
  cfg.osc_max_rpcs_in_flight = 1;  // serialize the bulk pipeline
  cfg.osc_max_pages_per_rpc = 256;  // 1 MiB payload per RPC
  cfg.osc_max_dirty_mb = 64;        // whole job fits: no dirty-space waits
  return cfg;
}

OracleOutcome writeOracle(std::uint64_t seed) {
  const pfs::ClusterSpec cluster = degenerateCluster(1, 1);
  const pfs::PfsConfig cfg = serializedConfig();
  constexpr int kChunks = 16;
  const std::uint64_t chunk = 256 * 4096;  // == osc_max_pages_per_rpc pages

  pfs::JobSpec job;
  job.name = "oracle_write";
  job.ranks.resize(1);
  const pfs::FileId f = job.addFile("/oracle/write");
  job.ranks[0].push_back(IoOp::create(f));
  for (int i = 0; i < kChunks; ++i) {
    job.ranks[0].push_back(IoOp::write(f, std::uint64_t(i) * chunk, chunk));
  }
  job.ranks[0].push_back(IoOp::fsync(f));
  job.ranks[0].push_back(IoOp::close(f));

  // create round trip + K serialized bulk round trips; only the first RPC
  // pays the seek penalty (the rest are contiguous on the object).
  const double expected =
      (2.0 * cluster.network.messageLatency + cluster.mds.createCost) +
      kChunks * bulkRoundTrip(cluster, static_cast<double>(chunk), /*isWrite=*/true) +
      cluster.disk.seekPenalty;
  const pfs::PfsSimulator sim{pfs::SimulatorOptions{.cluster = cluster}};
  const pfs::RunResult result = sim.run(job, cfg, seed);
  return OracleOutcome{"ORA-WRITE", expected, result.rawWallSeconds, 0.12};
}

OracleOutcome readOracle(std::uint64_t seed) {
  // Writer on node 0, reader on node 1: the reader's page cache is cold,
  // and with readahead disabled every read is a synchronous fetch.
  const pfs::ClusterSpec cluster = degenerateCluster(2, 1);
  pfs::PfsConfig cfg = serializedConfig();
  cfg.llite_max_read_ahead_mb = 0;
  cfg.llite_max_read_ahead_per_file_mb = 0;
  cfg.llite_max_read_ahead_whole_mb = 0;
  constexpr int kChunks = 16;
  const std::uint64_t chunk = 256 * 4096;

  pfs::JobSpec job;
  job.name = "oracle_read";
  job.ranks.resize(2);
  const pfs::FileId f = job.addFile("/oracle/read");
  // Writer: create, fill, publish via fsync, then release the reader.
  job.ranks[0].push_back(IoOp::create(f));
  for (int i = 0; i < kChunks; ++i) {
    job.ranks[0].push_back(IoOp::write(f, std::uint64_t(i) * chunk, chunk));
  }
  job.ranks[0].push_back(IoOp::fsync(f));
  job.ranks[0].push_back(IoOp::barrier());
  job.ranks[0].push_back(IoOp::close(f));
  // Reader: wait, open, read it all back sequentially.
  job.ranks[1].push_back(IoOp::barrier());
  job.ranks[1].push_back(IoOp::open(f));
  for (int i = 0; i < kChunks; ++i) {
    job.ranks[1].push_back(IoOp::read(f, std::uint64_t(i) * chunk, chunk));
  }
  job.ranks[1].push_back(IoOp::close(f));

  const pfs::PfsSimulator sim{pfs::SimulatorOptions{.cluster = cluster}};
  const pfs::RunResult result = sim.run(job, cfg, seed);

  // The modelled quantity is the *read phase*: reader finish minus the
  // barrier release (the write phase has its own oracle).
  if (result.barrierTimes.empty() || result.ranks.size() != 2) {
    return OracleOutcome{"ORA-READ", 1.0, -1.0, 0.0};  // structurally broken
  }
  const double phase = result.ranks[1].finishTime - result.barrierTimes[0];
  const double expected =
      (2.0 * cluster.network.messageLatency + cluster.mds.openCost) +
      kChunks * bulkRoundTrip(cluster, static_cast<double>(chunk), /*isWrite=*/false) +
      cluster.disk.seekPenalty;
  return OracleOutcome{"ORA-READ", expected, phase, 0.12};
}

// ----------------------------------------------------------- ORA-READA --
//
// The readahead oracles model the window machine's *byte accounting*, not
// wall time: coverage decisions happen synchronously at read-issue time, so
// hit/prefetch/discard totals are exact integers independent of service
// jitter. Every scenario is a writer on node 0 publishing a file and a
// reader on node 1 (cold page cache) applying one access pattern.

struct ReadaScenario {
  pfs::RunResult result;
  std::uint64_t fileBytes = 0;
};

constexpr std::uint64_t kReadaChunk = 256 * 1024;
constexpr std::uint64_t kReadaRpc = 256 * 4096;  // serializedConfig payload

/// Runs writer-then-reader where the reader issues `readOffsets` reads of
/// kReadaChunk bytes each, in order, then closes.
ReadaScenario runReadaScenario(std::uint64_t seed, std::uint64_t fileBytes,
                               const std::vector<std::uint64_t>& readOffsets) {
  const pfs::ClusterSpec cluster = degenerateCluster(2, 1);
  pfs::PfsConfig cfg = serializedConfig();
  cfg.llite_max_read_ahead_mb = 64;
  cfg.llite_max_read_ahead_per_file_mb = 32;
  cfg.llite_max_read_ahead_whole_mb = 2;

  pfs::JobSpec job;
  job.name = "oracle_reada";
  job.ranks.resize(2);
  const pfs::FileId f = job.addFile("/oracle/reada");
  job.ranks[0].push_back(IoOp::create(f));
  for (std::uint64_t off = 0; off < fileBytes; off += kReadaRpc) {
    job.ranks[0].push_back(
        IoOp::write(f, off, std::min(kReadaRpc, fileBytes - off)));
  }
  job.ranks[0].push_back(IoOp::fsync(f));
  job.ranks[0].push_back(IoOp::barrier());
  job.ranks[0].push_back(IoOp::close(f));
  job.ranks[1].push_back(IoOp::barrier());
  job.ranks[1].push_back(IoOp::open(f));
  for (const std::uint64_t off : readOffsets) {
    job.ranks[1].push_back(IoOp::read(f, off, kReadaChunk));
  }
  job.ranks[1].push_back(IoOp::close(f));

  const pfs::PfsSimulator sim{pfs::SimulatorOptions{.cluster = cluster}};
  return ReadaScenario{sim.run(job, cfg, seed), fileBytes};
}

OracleOutcome readaColdOracle(std::uint64_t seed) {
  // Cold sequential scan: the window opens on the first read and the ramp
  // (doubling, RPC-aligned edges) keeps prefetch ahead of consumption from
  // then on, so exactly one chunk misses.
  constexpr std::uint64_t kChunks = 32;
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t i = 0; i < kChunks; ++i) {
    offsets.push_back(i * kReadaChunk);
  }
  const ReadaScenario s =
      runReadaScenario(seed, kChunks * kReadaChunk, offsets);
  const double hitRate =
      static_cast<double>(s.result.counters.readaheadHitBytes) /
      static_cast<double>(s.fileBytes);
  const double expected =
      static_cast<double>(kChunks - 1) / static_cast<double>(kChunks);
  return OracleOutcome{"ORA-READA-COLD", expected, hitRate, 1e-9};
}

OracleOutcome readaWarmOracle(std::uint64_t seed) {
  // Whole-file mode at exactly the llite_max_read_ahead_whole_mb cutover:
  // the first read warms the entire file in one shot; reading only half and
  // closing must discard exactly the other half.
  constexpr std::uint64_t kFileBytes = 2 * 1024 * 1024;  // == whole_mb
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t off = 0; off < kFileBytes / 2; off += kReadaChunk) {
    offsets.push_back(off);
  }
  const ReadaScenario s = runReadaScenario(seed, kFileBytes, offsets);
  const double expected = static_cast<double>(kFileBytes / 2);
  const double actual =
      static_cast<double>(s.result.audit.readaDiscardedBytes);
  return OracleOutcome{"ORA-READA-WARM", expected, actual, 1e-9};
}

OracleOutcome readaStridedOracle(std::uint64_t seed) {
  // Stride far beyond the window: every read after the first resets the
  // window and fetches nothing speculative, so the only waste is the first
  // read's RPC-aligned initial window minus the chunk it served.
  constexpr std::uint64_t kFileBytes = 16 * 1024 * 1024;
  constexpr std::uint64_t kStride = 4 * 1024 * 1024;
  const std::vector<std::uint64_t> offsets = {0, kStride, 2 * kStride,
                                              3 * kStride};
  const ReadaScenario s = runReadaScenario(seed, kFileBytes, offsets);
  const double expected = static_cast<double>(kReadaRpc - kReadaChunk);
  const double actual =
      static_cast<double>(s.result.audit.readaDiscardedBytes);
  return OracleOutcome{"ORA-READA-STRIDED", expected, actual, 1e-9};
}

OracleOutcome readaRandomOracle(std::uint64_t seed) {
  // Descending offsets: no read is ever sequential, and the first read sits
  // at EOF so its speculation clamps to the chunk itself. Total prefetched
  // bytes == one chunk — the engine stays out of a random reader's way.
  constexpr std::uint64_t kChunks = 32;
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t i = kChunks; i-- > 0;) {
    offsets.push_back(i * kReadaChunk);
  }
  const ReadaScenario s =
      runReadaScenario(seed, kChunks * kReadaChunk, offsets);
  const double expected = static_cast<double>(kReadaChunk);
  const double actual =
      static_cast<double>(s.result.audit.readaPrefetchedBytes);
  return OracleOutcome{"ORA-READA-RANDOM", expected, actual, 1e-9};
}

}  // namespace

std::vector<OracleOutcome> runOracles(std::uint64_t seed) {
  return {
      computeOracle(util::mix64(seed, 1)),
      metaOracle(util::mix64(seed, 2)),
      writeOracle(util::mix64(seed, 3)),
      readOracle(util::mix64(seed, 4)),
      readaColdOracle(util::mix64(seed, 5)),
      readaWarmOracle(util::mix64(seed, 6)),
      readaStridedOracle(util::mix64(seed, 7)),
      readaRandomOracle(util::mix64(seed, 8)),
  };
}

std::vector<Violation> checkOracles(std::uint64_t seed) {
  std::vector<Violation> v;
  for (const OracleOutcome& o : runOracles(seed)) {
    if (!o.pass()) {
      v.push_back(Violation{
          o.id, "analytic model predicts " + std::to_string(o.expected) +
                    ", simulator produced " + std::to_string(o.actual) +
                    " (tolerance " + std::to_string(o.tolerance * 100.0) + "%)"});
    }
  }
  return v;
}

}  // namespace stellar::testkit

#include "testkit/invariants.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace stellar::testkit {

namespace {

/// Relative tolerance for comparisons between accumulated doubles.
constexpr double kRelEps = 1e-9;

double relSlack(double scale) { return kRelEps * std::max(1.0, std::abs(scale)); }

void add(std::vector<Violation>& out, const std::string& law, std::string message) {
  out.push_back(Violation{law, std::move(message)});
}

std::string num(double v) {
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

const std::vector<std::string>& mutationNames() {
  static const std::vector<std::string> names = {
      "write-conservation", "read-partition", "rpc-balance",
      "dirty-bound",        "lock-balance",   "disk-bandwidth",
      "reada-conservation",
  };
  return names;
}

void applyMutation(const std::string& name, pfs::RunResult& result) {
  if (name == "write-conservation") {
    result.counters.writeRpcBytes += 4096;
  } else if (name == "read-partition") {
    result.counters.pageCacheHitBytes += 4096;
  } else if (name == "rpc-balance") {
    result.counters.dataRpcs += 1;
  } else if (name == "dirty-bound") {
    result.audit.peakDirtyBytes =
        std::max(result.audit.dirtyBudgetBytes, result.audit.maxDirtyReservationBytes) +
        1;
  } else if (name == "lock-balance") {
    result.audit.lockInserts += 1;
  } else if (name == "disk-bandwidth" && !result.audit.osts.empty()) {
    result.audit.osts[0].bytesWritten += 100ULL * 1024 * 1024;
  } else if (name == "reada-conservation") {
    result.audit.readaPrefetchedBytes += 4096;
  }
}

std::vector<Violation> checkRun(const GeneratedCase& cse, const pfs::RunResult& result) {
  std::vector<Violation> v;
  const pfs::RunCounters& c = result.counters;
  const pfs::RunAudit& a = result.audit;
  const bool drained = result.outcome != pfs::RunOutcome::TimedOut;
  const bool faultFree = cse.shape.faults.empty();

  // --- INV-Q*: time sanity -------------------------------------------------
  if (result.rawWallSeconds < 0.0 || result.wallSeconds < 0.0) {
    add(v, "INV-Q0", "negative wall time: raw=" + num(result.rawWallSeconds) +
                         " noisy=" + num(result.wallSeconds));
  }
  if (result.rawWallSeconds > 0.0 && result.wallSeconds <= 0.0) {
    add(v, "INV-Q0", "noise produced non-positive wall from raw=" +
                         num(result.rawWallSeconds));
  }
  if (result.rawWallSeconds > result.simEndSeconds + relSlack(result.simEndSeconds)) {
    add(v, "INV-Q1", "ranks finished after the event queue drained: rawWall=" +
                         num(result.rawWallSeconds) +
                         " simEnd=" + num(result.simEndSeconds));
  }
  for (std::size_t r = 0; r < result.ranks.size(); ++r) {
    const pfs::RankStats& rs = result.ranks[r];
    if (rs.finishTime < 0.0 || rs.readTime < 0.0 || rs.writeTime < 0.0 ||
        rs.metaTime < 0.0 || rs.computeTime < 0.0) {
      add(v, "INV-Q2", "rank " + std::to_string(r) + " has a negative time component");
      break;
    }
    const double categorized = rs.readTime + rs.writeTime + rs.metaTime + rs.computeTime;
    if (drained && categorized > rs.finishTime + relSlack(rs.finishTime) + 1e-12) {
      add(v, "INV-Q3", "rank " + std::to_string(r) +
                           " categorized time exceeds lifetime: " + num(categorized) +
                           " > finish=" + num(rs.finishTime));
      break;
    }
  }
  for (std::size_t i = 0; i < result.barrierTimes.size(); ++i) {
    const double t = result.barrierTimes[i];
    if (t < 0.0 ||
        (i > 0 && t < result.barrierTimes[i - 1] - relSlack(t)) ||
        t > result.simEndSeconds + relSlack(result.simEndSeconds)) {
      add(v, "INV-Q4", "barrier release times not sane at index " + std::to_string(i) +
                           ": t=" + num(t));
      break;
    }
  }

  // --- INV-R*: read byte conservation -------------------------------------
  std::uint64_t rankReadBytes = 0;
  std::uint64_t rankWriteBytes = 0;
  for (const pfs::RankStats& rs : result.ranks) {
    rankReadBytes += rs.bytesRead;
    rankWriteBytes += rs.bytesWritten;
  }
  if (drained) {
    const std::uint64_t partition =
        c.readaheadHitBytes + c.readaheadMissBytes + c.pageCacheHitBytes;
    if (partition != rankReadBytes) {
      add(v, "INV-R1",
          "read partition broken: readaheadHit+readaheadMiss+pageHit=" +
              std::to_string(partition) + " != bytesRead=" +
              std::to_string(rankReadBytes));
    }
    if (c.readRpcBytes < c.readaheadMissBytes) {
      add(v, "INV-R3", "fetched fewer bytes over RPC than were missing: rpc=" +
                           std::to_string(c.readRpcBytes) + " < miss=" +
                           std::to_string(c.readaheadMissBytes));
    }
  }

  // --- INV-W*: write byte conservation ------------------------------------
  if (drained) {
    const std::uint64_t expectedFlushed =
        rankWriteBytes - std::min(rankWriteBytes, c.dirtyDiscardedBytes);
    if (c.writeRpcBytes != expectedFlushed) {
      add(v, "INV-W1", "write conservation broken: writeRpcBytes=" +
                           std::to_string(c.writeRpcBytes) +
                           " != bytesWritten-discarded=" +
                           std::to_string(expectedFlushed) + " (written=" +
                           std::to_string(rankWriteBytes) + ", discarded=" +
                           std::to_string(c.dirtyDiscardedBytes) + ")");
    }
  }

  // --- server-side byte totals ---------------------------------------------
  std::uint64_t ostWrite = 0;
  std::uint64_t ostRead = 0;
  std::uint64_t ostRpcs = 0;
  for (const pfs::OstAudit& o : a.osts) {
    ostWrite += o.bytesWritten;
    ostRead += o.bytesRead;
    ostRpcs += o.rpcsServed;
  }
  if (drained) {
    const bool exact = faultFree || c.rpcGaveUp == 0;
    if (exact) {
      if (ostWrite != c.writeRpcBytes) {
        add(v, "INV-W2", "OSTs served " + std::to_string(ostWrite) +
                             " write bytes but clients sent " +
                             std::to_string(c.writeRpcBytes));
      }
      if (ostRead != c.readRpcBytes) {
        add(v, "INV-R2", "OSTs served " + std::to_string(ostRead) +
                             " read bytes but clients requested " +
                             std::to_string(c.readRpcBytes));
      }
    } else {
      if (ostWrite > c.writeRpcBytes) {
        add(v, "INV-W2", "OSTs served more write bytes than clients sent: " +
                             std::to_string(ostWrite) + " > " +
                             std::to_string(c.writeRpcBytes));
      }
      if (ostRead > c.readRpcBytes) {
        add(v, "INV-R2", "OSTs served more read bytes than clients requested: " +
                             std::to_string(ostRead) + " > " +
                             std::to_string(c.readRpcBytes));
      }
    }
    // Issued == served + gave-up, exactly, faults or not: lost deliveries
    // retry, and only an exhausted retry budget leaves an RPC unserved.
    const std::uint64_t issued = c.dataRpcs + c.metaRpcs;
    const std::uint64_t served = ostRpcs + a.mdsOps;
    if (issued != served + c.rpcGaveUp) {
      add(v, "INV-M2", "RPC balance broken: issued=" + std::to_string(issued) +
                           " != served=" + std::to_string(served) + " + gaveUp=" +
                           std::to_string(c.rpcGaveUp));
    }
  }

  // --- INV-B*: disk stage physics ------------------------------------------
  const pfs::DiskSpec& disk = cse.cluster.disk;
  for (std::size_t i = 0; i < a.osts.size(); ++i) {
    const pfs::OstAudit& o = a.osts[i];
    const std::uint64_t bytes = o.bytesWritten + o.bytesRead;
    // Every byte needs at least bytes/bandwidth transfer time; 0.95 is the
    // lower edge of the transfer jitter. Equivalently: effective bandwidth
    // never exceeds the disk spec (beyond jitter).
    const double minBusy =
        0.95 * static_cast<double>(bytes) / disk.sequentialBandwidth;
    if (o.transferBusySeconds + relSlack(minBusy) < minBusy) {
      add(v, "INV-B1", "ost " + std::to_string(i) + " served " +
                           std::to_string(bytes) + " bytes in " +
                           num(o.transferBusySeconds) +
                           "s transfer busy time — exceeds spec bandwidth (min busy " +
                           num(minBusy) + "s)");
    }
    if (o.transferBusySeconds >
        result.simEndSeconds + relSlack(result.simEndSeconds)) {
      add(v, "INV-B2", "ost " + std::to_string(i) +
                           " single-server transfer stage busy longer than the run: " +
                           num(o.transferBusySeconds) + "s > " +
                           num(result.simEndSeconds) + "s");
    }
    const double posCap =
        static_cast<double>(disk.queueDepth) * result.simEndSeconds;
    if (o.positioningBusySeconds > posCap + relSlack(posCap)) {
      add(v, "INV-B3", "ost " + std::to_string(i) + " positioning busy " +
                           num(o.positioningBusySeconds) + "s exceeds queueDepth*simEnd=" +
                           num(posCap) + "s");
    }
    if (o.seeks > o.rpcsServed) {
      add(v, "INV-B4", "ost " + std::to_string(i) + " counted more seeks (" +
                           std::to_string(o.seeks) + ") than RPCs served (" +
                           std::to_string(o.rpcsServed) + ")");
    }
  }

  // --- INV-D1: dirty pages bounded by budget -------------------------------
  const std::uint64_t dirtyCap =
      std::max(a.dirtyBudgetBytes, a.maxDirtyReservationBytes);
  if (a.peakDirtyBytes > dirtyCap) {
    add(v, "INV-D1", "peak dirty " + std::to_string(a.peakDirtyBytes) +
                         " bytes exceeds max(budget=" +
                         std::to_string(a.dirtyBudgetBytes) + ", largest reservation=" +
                         std::to_string(a.maxDirtyReservationBytes) + ")");
  }

  // --- INV-READA: prefetched-byte conservation -----------------------------
  // Every prefetched byte is consumed by a read, discarded with its file, or
  // still resident in the cache — exactly, on every run (the cache keeps
  // integer lifetime totals, so timeouts and faults don't excuse drift).
  if (a.readaPrefetchedBytes !=
      a.readaConsumedBytes + a.readaDiscardedBytes + a.readaResidentBytes) {
    add(v, "INV-READA",
        "readahead conservation broken: prefetched=" +
            std::to_string(a.readaPrefetchedBytes) +
            " != consumed=" + std::to_string(a.readaConsumedBytes) +
            " + discarded=" + std::to_string(a.readaDiscardedBytes) +
            " + resident=" + std::to_string(a.readaResidentBytes));
  }

  // --- INV-L1: DLM lock lifecycle balance ----------------------------------
  if (a.lockInserts != a.lockEvictions + a.lockResident) {
    add(v, "INV-L1", "lock balance broken: inserts=" + std::to_string(a.lockInserts) +
                         " != evictions=" + std::to_string(a.lockEvictions) +
                         " + resident=" + std::to_string(a.lockResident));
  }

  // --- fault accounting -----------------------------------------------------
  if (faultFree && (c.rpcTimeouts != 0 || c.rpcRetries != 0 || c.rpcGaveUp != 0)) {
    add(v, "INV-F1", "fault-free run reported RPC loss: timeouts=" +
                         std::to_string(c.rpcTimeouts) + " retries=" +
                         std::to_string(c.rpcRetries) + " gaveUp=" +
                         std::to_string(c.rpcGaveUp));
  }
  if (c.rpcGaveUp > 0 && result.outcome == pfs::RunOutcome::Ok) {
    add(v, "INV-F2", "run reported Ok despite " + std::to_string(c.rpcGaveUp) +
                         " gave-up RPCs");
  }

  return v;
}

std::vector<Violation> checkObsConsistency(const obs::CounterRegistry& registry,
                                           const pfs::RunResult& result) {
  std::vector<Violation> v;
  const pfs::RunCounters& c = result.counters;
  const pfs::RunAudit& a = result.audit;
  // counter() is find-or-create, so a const registry cannot be queried
  // directly; snapshot() is the read-only view.
  const auto samples = registry.snapshot();
  const auto lookup = [&samples](std::string_view name) -> double {
    for (const obs::MetricSample& s : samples) {
      if (s.key.name == name && s.kind == obs::MetricSample::Kind::Counter) {
        return s.value;
      }
    }
    return -1.0;  // absent
  };
  const std::pair<const char*, double> expected[] = {
      {"pfs.rpc.data", static_cast<double>(c.dataRpcs)},
      {"pfs.rpc.meta", static_cast<double>(c.metaRpcs)},
      {"pfs.lock.hits", static_cast<double>(c.lockHits)},
      {"pfs.lock.misses", static_cast<double>(c.lockMisses)},
      {"pfs.cache.readahead_hit_bytes", static_cast<double>(c.readaheadHitBytes)},
      {"pfs.cache.readahead_miss_bytes", static_cast<double>(c.readaheadMissBytes)},
      {"pfs.cache.page_hit_bytes", static_cast<double>(c.pageCacheHitBytes)},
      {"pfs.meta.statahead_served", static_cast<double>(c.stataheadServed)},
      {"pfs.lock.extent_conflicts", static_cast<double>(c.extentConflicts)},
      {"pfs.rpc.timeouts", static_cast<double>(c.rpcTimeouts)},
      {"pfs.rpc.retries", static_cast<double>(c.rpcRetries)},
      {"pfs.rpc.gave_up", static_cast<double>(c.rpcGaveUp)},
      {"pfs.reada.windows_opened", static_cast<double>(a.readaWindowsOpened)},
      {"pfs.reada.windows_grown", static_cast<double>(a.readaWindowsGrown)},
      {"pfs.reada.windows_reset", static_cast<double>(a.readaWindowsReset)},
      {"pfs.reada.prefetched_bytes", static_cast<double>(a.readaPrefetchedBytes)},
      {"pfs.reada.consumed_bytes", static_cast<double>(a.readaConsumedBytes)},
      {"pfs.reada.discarded_bytes", static_cast<double>(a.readaDiscardedBytes)},
      {"pfs.reada.resident_bytes", static_cast<double>(a.readaResidentBytes)},
  };
  for (const auto& [name, want] : expected) {
    const double got = lookup(name);
    if (got < 0.0) {
      add(v, "INV-O1", std::string("obs counter '") + name + "' was never flushed");
      continue;
    }
    if (std::abs(got - want) > relSlack(want)) {
      add(v, "INV-O1", std::string("obs counter '") + name + "'=" + num(got) +
                           " disagrees with RunCounters value " + num(want));
    }
  }
  return v;
}

}  // namespace stellar::testkit

// Physical-law invariant checker, run after every simulated run.
//
// Each law is an algebraic statement about quantities the simulator must
// conserve regardless of configuration, workload, or faults: bytes cannot
// appear or vanish between the client cache, the RPC layer, and the OSTs;
// a single-server disk stage cannot be busy longer than the simulation
// ran; dirty pages cannot exceed their budget except through the one
// documented oversized-write admission; lock lifecycles must balance.
//
// Laws are identified by short stable ids (INV-W1, INV-B2, ...) that the
// explore CLI prints and DESIGN.md §6 documents.
#pragma once

#include <string>
#include <vector>

#include "obs/counters.hpp"
#include "pfs/simulator.hpp"
#include "testkit/gen.hpp"

namespace stellar::testkit {

struct Violation {
  std::string law;      ///< stable id, e.g. "INV-W1"
  std::string message;  ///< human-readable statement with the numbers

  [[nodiscard]] std::string format() const { return law + ": " + message; }
};

/// Mutations deliberately corrupt a RunResult copy before checking, to
/// prove the checker catches a broken law (mutation testing, DESIGN.md §6).
/// Names: "write-conservation", "read-partition", "rpc-balance",
/// "dirty-bound", "lock-balance", "disk-bandwidth".
[[nodiscard]] const std::vector<std::string>& mutationNames();

/// Applies the named mutation to `result` (no-op for unknown names;
/// callers validate against mutationNames first).
void applyMutation(const std::string& name, pfs::RunResult& result);

/// Checks every law that applies to the run's outcome. `hadFaultPlan`
/// relaxes the equality conservation laws to inequalities where loss is
/// legal (gave-up RPCs are never served).
[[nodiscard]] std::vector<Violation> checkRun(const GeneratedCase& cse,
                                              const pfs::RunResult& result);

/// Cross-checks the RunCounters snapshot against the `pfs.*` counters the
/// run flushed into `registry` (INV-O1). The registry must contain exactly
/// one run's worth of flushes.
[[nodiscard]] std::vector<Violation> checkObsConsistency(
    const obs::CounterRegistry& registry, const pfs::RunResult& result);

}  // namespace stellar::testkit

#include "testkit/explore.hpp"

#include <chrono>
#include <exception>
#include <sstream>

#include "testkit/metamorphic.hpp"
#include "testkit/oracles.hpp"
#include "testkit/run.hpp"

namespace stellar::testkit {

namespace {

/// Everything a single case's standard check does, expressed once so the
/// exploration loop, the shrink predicate, and the --case-seed repro path
/// cannot drift apart.
std::vector<Violation> checkShape(const CaseShape& shape, const std::string& mutation,
                                  bool checkObs, bool metamorphic) {
  std::vector<Violation> violations;
  const GeneratedCase cse = materialize(shape);
  try {
    obs::CounterRegistry registry;
    pfs::RunResult result = runCase(cse, checkObs ? &registry : nullptr);
    if (!mutation.empty()) {
      applyMutation(mutation, result);
    }
    violations = checkRun(cse, result);
    if (checkObs && mutation.empty()) {
      // The registry holds the *uncorrupted* flush, so obs consistency is
      // only meaningful without a mutation.
      const auto obsViolations = checkObsConsistency(registry, result);
      violations.insert(violations.end(), obsViolations.begin(), obsViolations.end());
    }
  } catch (const std::exception& e) {
    violations.push_back(
        Violation{"EXC", std::string("simulator threw on a generated case: ") + e.what()});
  }
  if (metamorphic && violations.empty()) {
    const auto ml = checkMetamorphic(shape);
    violations.insert(violations.end(), ml.begin(), ml.end());
  }
  return violations;
}

bool anyLawMatches(const std::vector<Violation>& violations, const std::string& law) {
  for (const Violation& v : violations) {
    if (v.law == law) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<Violation> checkOneCase(std::uint64_t caseSeed, const std::string& mutation,
                                    bool checkObs, bool metamorphic) {
  return checkShape(generateShape(caseSeed), mutation, checkObs, metamorphic);
}

ExploreReport explore(const ExploreOptions& options, std::ostream& log) {
  ExploreReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto elapsed = [&start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
        .count();
  };

  log << "testkit: exploring " << options.cases << " cases, seed=" << options.seed;
  if (!options.mutation.empty()) {
    log << ", mutation=" << options.mutation;
  }
  log << "\n";

  for (int i = 0; i < options.cases; ++i) {
    if (options.budgetSeconds > 0.0 && elapsed() > options.budgetSeconds) {
      report.budgetExhausted = true;
      log << "testkit: budget exhausted after " << report.casesRun << " cases\n";
      break;
    }
    const std::uint64_t caseSeed = util::mix64(options.seed, static_cast<std::uint64_t>(i));
    const bool doMeta = options.metamorphicEvery > 0 &&
                        options.mutation.empty() &&
                        i % options.metamorphicEvery == 0;
    const CaseShape shape = generateShape(caseSeed);
    std::vector<Violation> violations =
        checkShape(shape, options.mutation, options.checkObs, doMeta);
    ++report.casesRun;
    if (violations.empty()) {
      continue;
    }
    ++report.casesFailed;

    CaseFailure failure;
    failure.caseSeed = caseSeed;
    failure.violations = violations;
    failure.shrunk = shape;
    if (options.shrinkFailures) {
      // Shrink against the *first* violated law so the minimal case
      // pinpoints one defect even when several laws fire at once.
      const std::string law = violations.front().law;
      failure.shrunk = shrink(shape, [&](const CaseShape& candidate) {
        return anyLawMatches(
            checkShape(candidate, options.mutation, options.checkObs, doMeta), law);
      });
      failure.violations =
          checkShape(failure.shrunk, options.mutation, options.checkObs, doMeta);
      if (failure.violations.empty()) {
        failure.violations = violations;  // shrinking lost it; keep the original
        failure.shrunk = shape;
      }
    }
    {
      std::ostringstream os;
      os << "testkit_explore --case-seed=0x" << std::hex << caseSeed;
      if (!options.mutation.empty()) {
        os << " --mutate=" << options.mutation;
      }
      failure.repro = os.str();
    }

    log << "FAIL case " << i << " (seed 0x" << std::hex << caseSeed << std::dec << ")\n";
    log << "  shape: " << failure.shrunk.describe() << "\n";
    for (const Violation& v : failure.violations) {
      log << "  " << v.format() << "\n";
    }
    log << "  repro: " << failure.repro << "\n";

    if (report.failures.size() < 10) {
      report.failures.push_back(std::move(failure));
    }
    if (!options.mutation.empty()) {
      break;  // mutation mode only needs the first catch
    }
  }

  if (options.oracles && options.mutation.empty()) {
    report.oracleFailures = checkOracles(options.seed);
    for (const Violation& v : report.oracleFailures) {
      log << "FAIL oracle: " << v.format() << "\n";
    }
  }

  log << "testkit: " << report.casesRun << " cases, " << report.casesFailed
      << " failed";
  if (options.oracles && options.mutation.empty()) {
    log << ", " << report.oracleFailures.size() << " oracle failures";
  }
  log << "\n";
  return report;
}

}  // namespace stellar::testkit

// Exploration driver: generates N random cases, runs every checker, and
// on failure shrinks to a minimal counterexample whose seed reproduces the
// failure in one command:
//
//   testkit_explore --case-seed=0x<seed>
//
// Case i of an exploration draws seed mix64(baseSeed, i), so the whole
// campaign is reproducible from (--seed, --cases) alone.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "testkit/gen.hpp"
#include "testkit/invariants.hpp"

namespace stellar::testkit {

struct ExploreOptions {
  std::uint64_t seed = 42;
  int cases = 100;
  /// Wall-clock budget in seconds; 0 = unlimited. Exploration stops early
  /// (reporting how far it got) when exceeded — used by CI, never by ctest
  /// logic.
  double budgetSeconds = 0.0;
  /// Named mutation (see mutationNames()) deliberately applied to every
  /// run's result before checking: the exploration then MUST fail — this
  /// is the checker's own mutation test.
  std::string mutation;
  /// Run the metamorphic laws every `metamorphicEvery` cases (they cost
  /// several extra runs each). 0 disables.
  int metamorphicEvery = 5;
  /// Check the obs-counter consistency law every case (cheap).
  bool checkObs = true;
  /// Run the differential oracles once per exploration.
  bool oracles = true;
  /// Attempt shrinking when a case fails (disable for raw triage speed).
  bool shrinkFailures = true;
};

struct CaseFailure {
  std::uint64_t caseSeed = 0;
  std::vector<Violation> violations;
  CaseShape shrunk;     ///< minimal failing shape (== original if shrinking off)
  std::string repro;    ///< one-command reproduction line
};

struct ExploreReport {
  int casesRun = 0;
  int casesFailed = 0;
  bool budgetExhausted = false;
  std::vector<CaseFailure> failures;     ///< capped at 10, first failures win
  std::vector<Violation> oracleFailures; ///< ORA-* (not tied to a case)

  [[nodiscard]] bool allPassed() const noexcept {
    return casesFailed == 0 && oracleFailures.empty();
  }
};

/// Runs the exploration, logging progress and failures to `log`.
[[nodiscard]] ExploreReport explore(const ExploreOptions& options, std::ostream& log);

/// Runs exactly one case seed through every per-case checker (the
/// --case-seed reproduction path). Returns the violations found.
[[nodiscard]] std::vector<Violation> checkOneCase(std::uint64_t caseSeed,
                                                  const std::string& mutation = {},
                                                  bool checkObs = true,
                                                  bool metamorphic = true);

}  // namespace stellar::testkit

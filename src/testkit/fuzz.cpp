#include "testkit/fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "exp/campaign.hpp"
#include "exp/experience_store.hpp"
#include "faults/fault_plan.hpp"
#include "rules/rules.hpp"
#include "util/json.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace stellar::testkit {

namespace {

constexpr std::size_t kMaxInputBytes = 4 * 1024 * 1024;

thread_local std::size_t g_lastCorpusFiles = 0;

/// Writes `content` to a unique temp file and returns its path; the
/// Journal target loads through the filesystem because that is the real
/// ExperienceStore entry point (partial trailing lines, etc.).
class TempFile {
 public:
  explicit TempFile(std::string_view content, std::uint64_t tag) {
    path_ = (std::filesystem::temp_directory_path() /
             ("stellar_testkit_fuzz_" + std::to_string(tag) + ".jsonl"))
                .string();
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

}  // namespace

const char* fuzzTargetName(FuzzTarget target) noexcept {
  switch (target) {
    case FuzzTarget::Json: return "json";
    case FuzzTarget::FaultSpec: return "faultspec";
    case FuzzTarget::Rules: return "rules";
    case FuzzTarget::Campaign: return "campaign";
    case FuzzTarget::Journal: return "journal";
  }
  return "?";
}

bool fuzzTargetByName(std::string_view name, FuzzTarget& out) noexcept {
  for (const FuzzTarget t : {FuzzTarget::Json, FuzzTarget::FaultSpec,
                             FuzzTarget::Rules, FuzzTarget::Campaign,
                             FuzzTarget::Journal}) {
    if (name == fuzzTargetName(t)) {
      out = t;
      return true;
    }
  }
  return false;
}

bool fuzzOne(FuzzTarget target, std::string_view input,
             std::vector<FuzzFinding>* findings) {
  const std::string_view bytes = input.substr(0, kMaxInputBytes);
  const auto record = [&](std::string problem) {
    if (findings != nullptr) {
      findings->push_back(FuzzFinding{
          target, std::string(bytes.substr(0, 512)), std::move(problem)});
    }
    return false;
  };

  try {
    switch (target) {
      case FuzzTarget::Json:
        (void)util::Json::parse(bytes);
        return true;
      case FuzzTarget::FaultSpec:
        (void)faults::parseFaultSpec(bytes);
        return true;
      case FuzzTarget::Rules: {
        const util::Json doc = util::Json::parse(bytes);
        (void)rules::RuleSet::fromJson(doc);
        return true;
      }
      case FuzzTarget::Campaign: {
        const util::Json doc = util::Json::parse(bytes);
        (void)exp::CampaignSpec::fromJson(doc);
        (void)exp::CellResult::fromJson(doc);
        return true;
      }
      case FuzzTarget::Journal: {
        // A journal is loaded line-by-line with corrupt lines skipped, so
        // loading must succeed for arbitrary bytes — the store's whole
        // point is surviving torn writes.
        const TempFile file{bytes, util::hash64(bytes)};
        const exp::ExperienceStore store{file.path()};
        (void)store.corruptLinesSkipped();
        return true;
      }
    }
  } catch (const util::JsonError&) {
    return true;  // documented parse failure
  } catch (const faults::FaultSpecError&) {
    return true;  // documented spec failure
  } catch (const std::invalid_argument&) {
    return true;  // documented semantic validation failure
  } catch (const std::runtime_error&) {
    // Parsers report semantic violations as runtime_error subtypes; the
    // file-shaped targets also use it for I/O failures.
    return true;
  } catch (const std::exception& e) {
    return record(std::string("undocumented exception escaped: ") + e.what());
  } catch (...) {
    return record("non-std exception escaped");
  }
  return record("unreachable target");
}

std::vector<FuzzFinding> fuzzCorpus(const std::string& corpusDir, std::uint64_t seed,
                                    int mutationsPerEntry) {
  std::vector<FuzzFinding> findings;
  g_lastCorpusFiles = 0;

  // The Journal target deliberately loads corrupt stores; their per-line
  // "skipping corrupt line" warnings are expected behavior, not signal.
  const util::LogLevel savedLevel = util::logLevel();
  util::setLogLevel(util::LogLevel::Error);
  struct LogRestore {
    util::LogLevel level;
    ~LogRestore() { util::setLogLevel(level); }
  } restore{savedLevel};

  std::error_code ec;
  std::filesystem::directory_iterator top{corpusDir, ec};
  if (ec) {
    return findings;  // caller checks lastCorpusFileCount() == 0
  }

  for (const auto& sub : std::filesystem::directory_iterator{corpusDir}) {
    if (!sub.is_directory()) {
      continue;
    }
    FuzzTarget target;
    if (!fuzzTargetByName(sub.path().filename().string(), target)) {
      continue;
    }
    // Deterministic order: directory iteration order is fs-dependent.
    std::vector<std::filesystem::path> entries;
    for (const auto& entry : std::filesystem::directory_iterator{sub.path()}) {
      if (entry.is_regular_file()) {
        entries.push_back(entry.path());
      }
    }
    std::sort(entries.begin(), entries.end());

    for (const auto& path : entries) {
      std::ifstream in(path, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      const std::string original = buf.str();
      ++g_lastCorpusFiles;

      (void)fuzzOne(target, original, &findings);

      // Seeded mutations: flips, truncations, duplications, splices.
      util::Rng rng{util::mix64(seed, util::hash64(path.filename().string()))};
      for (int m = 0; m < mutationsPerEntry; ++m) {
        std::string mutated = original;
        const int kind = static_cast<int>(rng.uniformInt(0, 3));
        if (mutated.empty() || kind == 0) {
          // Append random bytes (also the only mutation for empty seeds).
          const int extra = static_cast<int>(rng.uniformInt(1, 16));
          for (int i = 0; i < extra; ++i) {
            mutated.push_back(static_cast<char>(rng.uniformInt(0, 255)));
          }
        } else if (kind == 1) {
          // Flip a byte.
          const auto pos = static_cast<std::size_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
          mutated[pos] = static_cast<char>(rng.uniformInt(0, 255));
        } else if (kind == 2) {
          // Truncate (torn write).
          const auto cut = static_cast<std::size_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
          mutated.resize(cut);
        } else {
          // Duplicate a slice somewhere else (repeated keys, nested junk).
          const auto a = static_cast<std::size_t>(
              rng.uniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
          const auto b = static_cast<std::size_t>(
              rng.uniformInt(static_cast<std::int64_t>(a),
                             static_cast<std::int64_t>(mutated.size()) - 1));
          mutated.insert(mutated.size() / 2, mutated.substr(a, b - a + 1));
        }
        (void)fuzzOne(target, mutated, &findings);
      }
    }
  }
  return findings;
}

std::size_t lastCorpusFileCount() noexcept { return g_lastCorpusFiles; }

}  // namespace stellar::testkit

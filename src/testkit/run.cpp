#include "testkit/run.hpp"

namespace stellar::testkit {

pfs::RunResult runCase(const GeneratedCase& cse, obs::CounterRegistry* registry) {
  return runCase(cse, sim::EngineOptions{}, registry);
}

pfs::RunResult runCase(const GeneratedCase& cse, const sim::EngineOptions& engine,
                       obs::CounterRegistry* registry) {
  pfs::SimulatorOptions options;
  options.cluster = cse.cluster;
  options.counters = registry;
  options.engine = engine;
  if (!cse.shape.faults.empty()) {
    options.faults = &cse.shape.faults;
  }
  const pfs::PfsSimulator sim{options};
  return sim.run(cse.job, cse.shape.config, cse.shape.seed);
}

namespace {

template <typename T>
bool eq(const T& a, const T& b) {
  return a == b;
}

}  // namespace

std::optional<std::string> describeDifference(const pfs::RunResult& a,
                                              const pfs::RunResult& b) {
  const auto diff = [](const std::string& what) -> std::optional<std::string> {
    return "results differ in " + what;
  };
  if (a.wallSeconds != b.wallSeconds) return diff("wallSeconds");
  if (a.rawWallSeconds != b.rawWallSeconds) return diff("rawWallSeconds");
  if (a.simEndSeconds != b.simEndSeconds) return diff("simEndSeconds");
  if (a.outcome != b.outcome) return diff("outcome");
  if (a.barrierTimes != b.barrierTimes) return diff("barrierTimes");

  const pfs::RunCounters& ca = a.counters;
  const pfs::RunCounters& cb = b.counters;
  if (ca.dataRpcs != cb.dataRpcs || ca.metaRpcs != cb.metaRpcs ||
      ca.lockHits != cb.lockHits || ca.lockMisses != cb.lockMisses ||
      ca.readaheadHitBytes != cb.readaheadHitBytes ||
      ca.readaheadMissBytes != cb.readaheadMissBytes ||
      ca.pageCacheHitBytes != cb.pageCacheHitBytes ||
      ca.stataheadServed != cb.stataheadServed ||
      ca.extentConflicts != cb.extentConflicts || ca.events != cb.events ||
      ca.rpcTimeouts != cb.rpcTimeouts || ca.rpcRetries != cb.rpcRetries ||
      ca.rpcGaveUp != cb.rpcGaveUp || ca.writeRpcBytes != cb.writeRpcBytes ||
      ca.readRpcBytes != cb.readRpcBytes ||
      ca.dirtyDiscardedBytes != cb.dirtyDiscardedBytes) {
    return diff("counters");
  }

  if (a.ranks.size() != b.ranks.size()) return diff("rank count");
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    const pfs::RankStats& ra = a.ranks[i];
    const pfs::RankStats& rb = b.ranks[i];
    if (ra.finishTime != rb.finishTime || ra.readTime != rb.readTime ||
        ra.writeTime != rb.writeTime || ra.metaTime != rb.metaTime ||
        ra.computeTime != rb.computeTime || ra.bytesRead != rb.bytesRead ||
        ra.bytesWritten != rb.bytesWritten) {
      return diff("rank " + std::to_string(i) + " stats");
    }
  }

  const pfs::RunAudit& aa = a.audit;
  const pfs::RunAudit& ab = b.audit;
  if (aa.osts.size() != ab.osts.size()) return diff("audit OST count");
  for (std::size_t i = 0; i < aa.osts.size(); ++i) {
    const pfs::OstAudit& oa = aa.osts[i];
    const pfs::OstAudit& ob = ab.osts[i];
    if (oa.rpcsServed != ob.rpcsServed || oa.bytesWritten != ob.bytesWritten ||
        oa.bytesRead != ob.bytesRead || oa.seeks != ob.seeks ||
        oa.positioningBusySeconds != ob.positioningBusySeconds ||
        oa.transferBusySeconds != ob.transferBusySeconds ||
        oa.peakQueue != ob.peakQueue) {
      return diff("audit of ost " + std::to_string(i));
    }
  }
  if (aa.peakDirtyBytes != ab.peakDirtyBytes ||
      aa.maxDirtyReservationBytes != ab.maxDirtyReservationBytes ||
      aa.lockInserts != ab.lockInserts || aa.lockEvictions != ab.lockEvictions ||
      aa.lockResident != ab.lockResident || aa.mdsOps != ab.mdsOps ||
      aa.mdsBusySeconds != ab.mdsBusySeconds) {
    return diff("audit totals");
  }
  if (aa.readaWindowsOpened != ab.readaWindowsOpened ||
      aa.readaWindowsGrown != ab.readaWindowsGrown ||
      aa.readaWindowsReset != ab.readaWindowsReset ||
      aa.readaPrefetchedBytes != ab.readaPrefetchedBytes ||
      aa.readaConsumedBytes != ab.readaConsumedBytes ||
      aa.readaDiscardedBytes != ab.readaDiscardedBytes ||
      aa.readaResidentBytes != ab.readaResidentBytes) {
    return diff("readahead audit totals");
  }
  return std::nullopt;
}

}  // namespace stellar::testkit

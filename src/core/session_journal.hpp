// SessionJournal: crash-safe persistence for one tuning session (ISSUE 7).
//
// Everything in the engine's tool loop is deterministic given the seed and
// workload — the only facts a resumed session cannot re-derive for free are
// the measurement results (simulator runs are the expensive part on a real
// system). So the journal records, append-only JSONL, exactly what a
// resumed process needs to fast-forward: a header binding the journal to a
// session identity (workload, seeds, models, fault spec), one line per
// measurement keyed by a monotonic index, the transcript as it grows, and a
// final summary line.
//
// On resume the engine replays journaled measurements instead of re-running
// the simulator, re-executes every (deterministic) decision in between, and
// arrives at a bit-identical final transcript and configuration — the
// KILL-RESUME metamorphic law in tests/core. The file discipline matches
// exp::ExperienceStore: append via fopen("ab") + single fwrite, torn or
// corrupt tail lines skipped (counted) on load, so a SIGKILL mid-write
// never poisons the session.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>

#include "agents/transcript.hpp"
#include "util/json.hpp"

namespace stellar::core {

/// Thrown when the engine's measurement cap interrupts a session mid-loop
/// (the deterministic stand-in for a crash; the CLI maps it to exit 3).
class SessionInterrupted : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One journaled simulator measurement.
struct JournaledMeasurement {
  double wallSeconds = 0.0;
  std::string outcome;  ///< pfs::runOutcomeName of the (possibly failed) run
  std::string failureReason;
};

class SessionJournal {
 public:
  /// Opens (and loads) the journal at `path`; a missing file starts a fresh
  /// session. Corrupt or torn lines are skipped and counted.
  explicit SessionJournal(std::string path);

  /// Binds the journal to a session identity. A fresh journal records the
  /// header; a resumed journal verifies it and throws std::runtime_error on
  /// mismatch (replaying another session's measurements would be silent
  /// corruption).
  void bind(const util::Json& header);

  /// The journaled result of measurement `index`, if this session already
  /// ran it.
  [[nodiscard]] std::optional<JournaledMeasurement> replay(std::size_t index) const;
  void recordMeasurement(std::size_t index, const JournaledMeasurement& measurement);

  /// Appends transcript events not yet journaled. A resumed run regenerates
  /// the journaled prefix verbatim (decisions are deterministic), so only
  /// the tail past what load() saw is written.
  void syncTranscript(const agents::Transcript& transcript);

  /// Appends the final summary line; the session is complete.
  void markComplete(const util::Json& summary);

  [[nodiscard]] bool bound() const noexcept { return header_.has_value(); }
  [[nodiscard]] bool complete() const noexcept { return complete_; }
  [[nodiscard]] std::size_t measurementCount() const noexcept {
    return measurements_.size();
  }
  [[nodiscard]] std::size_t transcriptEventsJournaled() const noexcept {
    return transcriptWritten_;
  }
  [[nodiscard]] std::size_t corruptLinesSkipped() const noexcept {
    return corruptSkipped_;
  }
  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  void load();
  void appendLine(const util::Json& line);

  std::string path_;
  std::optional<util::Json> header_;
  std::map<std::size_t, JournaledMeasurement> measurements_;
  std::size_t transcriptWritten_ = 0;
  bool complete_ = false;
  std::size_t corruptSkipped_ = 0;
  /// The loaded file ended without '\n' (torn tail): the next append must
  /// start on a fresh line.
  bool pendingNewline_ = false;
};

}  // namespace stellar::core

#include "core/harness.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace stellar::core {

RepeatedMeasure measureConfig(const pfs::PfsSimulator& simulator, const pfs::JobSpec& job,
                              const pfs::PfsConfig& config,
                              const MeasureOptions& options) {
  RepeatedMeasure measure;
  measure.samples.assign(options.repeats, 0.0);
  util::ThreadPool pool;
  pool.parallelFor(options.repeats, [&](std::size_t i) {
    obs::Tracer::Span span = obs::beginSpan(simulator.tracer(), "harness",
                                            "repeat:" + std::to_string(i));
    measure.samples[i] =
        simulator.run(job, config, util::mix64(options.seedBase, i)).wallSeconds;
    span.arg("seconds", util::Json(measure.samples[i]));
  });
  measure.summary = util::summarize(measure.samples);
  return measure;
}

util::Summary TuningEvaluation::bestSummary() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const TuningRunResult& run : runs) {
    xs.push_back(run.bestSeconds);
  }
  return util::summarize(xs);
}

util::Summary TuningEvaluation::defaultSummary() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const TuningRunResult& run : runs) {
    xs.push_back(run.defaultSeconds);
  }
  return util::summarize(xs);
}

std::vector<double> TuningEvaluation::meanIterationSpeedups() const {
  std::size_t maxIters = 0;
  for (const TuningRunResult& run : runs) {
    maxIters = std::max(maxIters, run.iterationSeconds.size());
  }
  std::vector<double> speedups;
  for (std::size_t k = 0; k < maxIters; ++k) {
    double total = 0.0;
    for (const TuningRunResult& run : runs) {
      // Runs that ended earlier hold their best-so-far value; speedup of
      // iteration k is default/bestUpToK (the paper's per-iteration plots
      // track the best configuration found so far).
      double bestUpToK = run.iterationSeconds.front();
      for (std::size_t i = 1; i <= k && i < run.iterationSeconds.size(); ++i) {
        bestUpToK = std::min(bestUpToK, run.iterationSeconds[i]);
      }
      if (k >= run.iterationSeconds.size()) {
        bestUpToK = std::min(bestUpToK, run.bestSeconds);
      }
      total += run.defaultSeconds / bestUpToK;
    }
    speedups.push_back(total / static_cast<double>(runs.size()));
  }
  return speedups;
}

double TuningEvaluation::meanAttempts() const {
  if (runs.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const TuningRunResult& run : runs) {
    total += static_cast<double>(run.attempts.size());
  }
  return total / static_cast<double>(runs.size());
}

TuningEvaluation evaluateTuning(const pfs::PfsSimulator& simulator,
                                const StellarOptions& options, const pfs::JobSpec& job,
                                const EvalOptions& evalOptions) {
  TuningEvaluation evaluation;
  evaluation.runs.resize(evalOptions.repeats);
  util::ThreadPool pool;
  pool.parallelFor(evalOptions.repeats, [&](std::size_t i) {
    obs::Tracer::Span span = obs::beginSpan(simulator.tracer(), "harness",
                                            "tuning-repeat:" + std::to_string(i));
    StellarOptions perRun = options;
    perRun.seed = util::mix64(options.seed, 0xE0A1 + i);
    perRun.agent.seed = perRun.seed;
    StellarEngine engine{simulator, perRun};
    if (evalOptions.globalRules != nullptr) {
      // Copy so concurrent runs cannot mutate the shared set; accumulation
      // scenarios thread a single RuleSet through sequential calls instead.
      rules::RuleSet localRules = *evalOptions.globalRules;
      evaluation.runs[i] = engine.tune(job, &localRules);
    } else {
      evaluation.runs[i] = engine.tune(job, nullptr);
    }
    span.arg("best_seconds", util::Json(evaluation.runs[i].bestSeconds));
  });
  return evaluation;
}

}  // namespace stellar::core

#include "core/harness.hpp"

#include <algorithm>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace stellar::core {

RobustAggregate robustAggregate(std::span<const double> samples, double trimFraction,
                                double cvThreshold) {
  RobustAggregate agg;
  agg.summary = util::summarize(samples);
  const std::vector<double> copy{samples.begin(), samples.end()};
  agg.medianSeconds = util::median(copy);
  agg.trimmedMeanSeconds = util::trimmedMean(copy, trimFraction);
  agg.cv = util::coefficientOfVariation(samples);
  agg.unstable = cvThreshold > 0.0 && agg.cv > cvThreshold;
  return agg;
}

RepeatedMeasure measureConfig(const pfs::PfsSimulator& simulator, const pfs::JobSpec& job,
                              const pfs::PfsConfig& config,
                              const MeasureOptions& options) {
  // Repeats land in fixed slots so aggregation order never depends on
  // thread scheduling; failures are marked out-of-band.
  std::vector<double> seconds(options.repeats, 0.0);
  std::vector<std::uint8_t> succeeded(options.repeats, 0);
  const pfs::RunLimits limits{options.simTimeCapSeconds};
  util::ThreadPool pool;
  pool.parallelFor(options.repeats, [&](std::size_t i) {
    obs::Tracer::Span span = obs::beginSpan(simulator.tracer(), "harness",
                                            "repeat:" + std::to_string(i));
    const pfs::RunResult run =
        simulator.run(job, config, util::mix64(options.seedBase, i), limits);
    seconds[i] = run.wallSeconds;
    succeeded[i] = run.ok() ? 1 : 0;
    span.arg("seconds", util::Json(run.wallSeconds));
    span.arg("outcome", util::Json(pfs::runOutcomeName(run.outcome)));
  });

  RepeatedMeasure measure;
  measure.samples.reserve(options.repeats);
  for (std::size_t i = 0; i < options.repeats; ++i) {
    if (succeeded[i] != 0) {
      measure.samples.push_back(seconds[i]);
    } else {
      ++measure.failedRuns;
    }
  }
  const RobustAggregate agg =
      robustAggregate(measure.samples, options.trimFraction, options.unstableCvThreshold);
  measure.summary = agg.summary;
  measure.medianSeconds = agg.medianSeconds;
  measure.trimmedMeanSeconds = agg.trimmedMeanSeconds;
  measure.unstable = agg.unstable;
  if (simulator.counters() != nullptr) {
    simulator.counters()->counter("harness.failed_runs")
        .add(static_cast<double>(measure.failedRuns));
    if (measure.unstable) {
      simulator.counters()->counter("harness.unstable_measures").add();
    }
  }
  return measure;
}

util::Summary TuningEvaluation::bestSummary() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const TuningRunResult& run : runs) {
    xs.push_back(run.bestSeconds);
  }
  return util::summarize(xs);
}

util::Summary TuningEvaluation::defaultSummary() const {
  std::vector<double> xs;
  xs.reserve(runs.size());
  for (const TuningRunResult& run : runs) {
    xs.push_back(run.defaultSeconds);
  }
  return util::summarize(xs);
}

std::vector<double> TuningEvaluation::meanIterationSpeedups() const {
  std::size_t maxIters = 0;
  for (const TuningRunResult& run : runs) {
    maxIters = std::max(maxIters, run.iterationSeconds.size());
  }
  std::vector<double> speedups;
  for (std::size_t k = 0; k < maxIters; ++k) {
    double total = 0.0;
    for (const TuningRunResult& run : runs) {
      // Runs that ended earlier hold their best-so-far value; speedup of
      // iteration k is default/bestUpToK (the paper's per-iteration plots
      // track the best configuration found so far).
      double bestUpToK = run.iterationSeconds.front();
      for (std::size_t i = 1; i <= k && i < run.iterationSeconds.size(); ++i) {
        bestUpToK = std::min(bestUpToK, run.iterationSeconds[i]);
      }
      if (k >= run.iterationSeconds.size()) {
        bestUpToK = std::min(bestUpToK, run.bestSeconds);
      }
      total += run.defaultSeconds / bestUpToK;
    }
    speedups.push_back(total / static_cast<double>(runs.size()));
  }
  return speedups;
}

double TuningEvaluation::meanAttempts() const {
  if (runs.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const TuningRunResult& run : runs) {
    total += static_cast<double>(run.attempts.size());
  }
  return total / static_cast<double>(runs.size());
}

TuningEvaluation evaluateTuning(const pfs::PfsSimulator& simulator,
                                const StellarOptions& options, const pfs::JobSpec& job,
                                const EvalOptions& evalOptions) {
  TuningEvaluation evaluation;
  evaluation.runs.resize(evalOptions.repeats);
  util::ThreadPool pool;
  pool.parallelFor(evalOptions.repeats, [&](std::size_t i) {
    obs::Tracer::Span span = obs::beginSpan(simulator.tracer(), "harness",
                                            "tuning-repeat:" + std::to_string(i));
    StellarOptions perRun = options;
    perRun.seed = util::mix64(options.seed, 0xE0A1 + i);
    perRun.agent.seed = perRun.seed;
    StellarEngine engine{simulator, perRun};
    if (evalOptions.globalRules != nullptr) {
      // Copy so concurrent runs cannot mutate the shared set; accumulation
      // scenarios thread a single RuleSet through sequential calls instead.
      rules::RuleSet localRules = *evalOptions.globalRules;
      evaluation.runs[i] = engine.tune(job, &localRules);
    } else {
      evaluation.runs[i] = engine.tune(job, nullptr);
    }
    span.arg("best_seconds", util::Json(evaluation.runs[i].bestSeconds));
  });
  return evaluation;
}

}  // namespace stellar::core

// Experiment harness: the paper's measurement protocol — every case runs
// eight times (fresh file system each run, implicit in the simulator) and
// figures report means with 90% confidence intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "pfs/simulator.hpp"
#include "util/stats.hpp"

namespace stellar::core {

struct RepeatedMeasure {
  util::Summary summary;
  std::vector<double> samples;
};

/// Runs `job` under `config` `repeats` times with distinct seeds; repeats
/// execute in parallel (each simulation is independent and deterministic).
[[nodiscard]] RepeatedMeasure measureConfig(const pfs::PfsSimulator& simulator,
                                            const pfs::JobSpec& job,
                                            const pfs::PfsConfig& config,
                                            std::size_t repeats = 8,
                                            std::uint64_t seedBase = 1000);

/// A full STELLAR evaluation of one workload: `repeats` independent tuning
/// runs (per the paper's averaging), each with its own seed. Rule-set state
/// is NOT shared across the repeats — pass `globalRules` explicitly for the
/// accumulation scenarios.
struct TuningEvaluation {
  std::vector<TuningRunResult> runs;

  /// Mean/CI of the best-configuration wall time across runs.
  [[nodiscard]] util::Summary bestSummary() const;
  /// Mean/CI of the default wall time across runs.
  [[nodiscard]] util::Summary defaultSummary() const;
  /// Mean speedup of iteration k over the default (Figs. 6/7 series);
  /// runs that ended before iteration k contribute their final value.
  [[nodiscard]] std::vector<double> meanIterationSpeedups() const;
  [[nodiscard]] double meanAttempts() const;
};

[[nodiscard]] TuningEvaluation evaluateTuning(const pfs::PfsSimulator& simulator,
                                              const StellarOptions& options,
                                              const pfs::JobSpec& job,
                                              std::size_t repeats = 8,
                                              const rules::RuleSet* globalRules = nullptr);

}  // namespace stellar::core

// Experiment harness: the paper's measurement protocol — every case runs
// eight times (fresh file system each run, implicit in the simulator) and
// figures report means with 90% confidence intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "pfs/simulator.hpp"
#include "util/stats.hpp"

namespace stellar::core {

/// Outlier-robust aggregation of repeat samples. The mean of eight runs is
/// what the paper plots, but a single pathological repeat (fault window,
/// noise spike) can drag it arbitrarily; the median and trimmed mean stay
/// put, and `unstable` flags spreads too wide to trust either way.
struct RobustAggregate {
  util::Summary summary;             ///< plain mean/CI over the samples
  double medianSeconds = 0.0;
  double trimmedMeanSeconds = 0.0;
  double cv = 0.0;                   ///< coefficient of variation
  bool unstable = false;             ///< cv exceeded the caller's threshold
};

[[nodiscard]] RobustAggregate robustAggregate(std::span<const double> samples,
                                              double trimFraction,
                                              double cvThreshold);

struct RepeatedMeasure {
  util::Summary summary;             ///< over successful repeats only
  std::vector<double> samples;       ///< wall seconds of successful repeats
  double medianSeconds = 0.0;
  double trimmedMeanSeconds = 0.0;
  /// Repeats that ended with outcome != Ok (retry budget exhausted or
  /// watchdog cap); their wall times are excluded from every aggregate.
  std::size_t failedRuns = 0;
  /// True when the successful samples' coefficient of variation exceeds
  /// MeasureOptions::unstableCvThreshold — the measurement should not be
  /// trusted as a point estimate.
  bool unstable = false;

  /// At least one usable sample and no failed repeats.
  [[nodiscard]] bool clean() const noexcept {
    return failedRuns == 0 && !samples.empty();
  }
};

/// Named-field options for measureConfig, built for designated
/// initializers: measureConfig(sim, job, cfg, {.repeats = 4, .seedBase = 77}).
struct MeasureOptions {
  /// Independent runs (the paper's protocol repeats every case 8x).
  std::size_t repeats = 8;
  std::uint64_t seedBase = 1000;
  /// Watchdog: simulated-seconds cap per repeat (0 = unlimited). A repeat
  /// that hits the cap counts toward failedRuns instead of the samples.
  double simTimeCapSeconds = 0.0;
  /// Fraction trimmed from each end for trimmedMeanSeconds.
  double trimFraction = 0.125;
  /// Coefficient-of-variation level above which the measure is `unstable`.
  double unstableCvThreshold = 0.25;
};

/// Runs `job` under `config` options.repeats times with distinct seeds;
/// repeats execute in parallel (each simulation is independent and
/// deterministic). Each repeat is traced as a "harness" span when the
/// simulator carries a tracer. Failed or timed-out repeats are counted,
/// not mixed into the statistics.
[[nodiscard]] RepeatedMeasure measureConfig(const pfs::PfsSimulator& simulator,
                                            const pfs::JobSpec& job,
                                            const pfs::PfsConfig& config,
                                            const MeasureOptions& options = {});

/// A full STELLAR evaluation of one workload: `repeats` independent tuning
/// runs (per the paper's averaging), each with its own seed. Rule-set state
/// is NOT shared across the repeats — pass `globalRules` explicitly for the
/// accumulation scenarios.
struct TuningEvaluation {
  std::vector<TuningRunResult> runs;

  /// Mean/CI of the best-configuration wall time across runs.
  [[nodiscard]] util::Summary bestSummary() const;
  /// Mean/CI of the default wall time across runs.
  [[nodiscard]] util::Summary defaultSummary() const;
  /// Mean speedup of iteration k over the default (Figs. 6/7 series);
  /// runs that ended before iteration k contribute their final value.
  [[nodiscard]] std::vector<double> meanIterationSpeedups() const;
  [[nodiscard]] double meanAttempts() const;
};

/// Named-field options for evaluateTuning:
/// evaluateTuning(sim, opts, job, {.repeats = 3, .globalRules = &set}).
struct EvalOptions {
  /// Independent tuning runs to average over.
  std::size_t repeats = 8;
  /// Seed rule set; copied per run (accumulation scenarios thread one
  /// RuleSet through sequential calls instead). Not owned.
  const rules::RuleSet* globalRules = nullptr;
};

[[nodiscard]] TuningEvaluation evaluateTuning(const pfs::PfsSimulator& simulator,
                                              const StellarOptions& options,
                                              const pfs::JobSpec& job,
                                              const EvalOptions& evalOptions = {});

}  // namespace stellar::core

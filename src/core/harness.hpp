// Experiment harness: the paper's measurement protocol — every case runs
// eight times (fresh file system each run, implicit in the simulator) and
// figures report means with 90% confidence intervals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "pfs/simulator.hpp"
#include "util/stats.hpp"

namespace stellar::core {

struct RepeatedMeasure {
  util::Summary summary;
  std::vector<double> samples;
};

/// Named-field options for measureConfig, built for designated
/// initializers: measureConfig(sim, job, cfg, {.repeats = 4, .seedBase = 77}).
struct MeasureOptions {
  /// Independent runs (the paper's protocol repeats every case 8x).
  std::size_t repeats = 8;
  std::uint64_t seedBase = 1000;
};

/// Runs `job` under `config` options.repeats times with distinct seeds;
/// repeats execute in parallel (each simulation is independent and
/// deterministic). Each repeat is traced as a "harness" span when the
/// simulator carries a tracer.
[[nodiscard]] RepeatedMeasure measureConfig(const pfs::PfsSimulator& simulator,
                                            const pfs::JobSpec& job,
                                            const pfs::PfsConfig& config,
                                            const MeasureOptions& options = {});

/// A full STELLAR evaluation of one workload: `repeats` independent tuning
/// runs (per the paper's averaging), each with its own seed. Rule-set state
/// is NOT shared across the repeats — pass `globalRules` explicitly for the
/// accumulation scenarios.
struct TuningEvaluation {
  std::vector<TuningRunResult> runs;

  /// Mean/CI of the best-configuration wall time across runs.
  [[nodiscard]] util::Summary bestSummary() const;
  /// Mean/CI of the default wall time across runs.
  [[nodiscard]] util::Summary defaultSummary() const;
  /// Mean speedup of iteration k over the default (Figs. 6/7 series);
  /// runs that ended before iteration k contribute their final value.
  [[nodiscard]] std::vector<double> meanIterationSpeedups() const;
  [[nodiscard]] double meanAttempts() const;
};

/// Named-field options for evaluateTuning:
/// evaluateTuning(sim, opts, job, {.repeats = 3, .globalRules = &set}).
struct EvalOptions {
  /// Independent tuning runs to average over.
  std::size_t repeats = 8;
  /// Seed rule set; copied per run (accumulation scenarios thread one
  /// RuleSet through sequential calls instead). Not owned.
  const rules::RuleSet* globalRules = nullptr;
};

[[nodiscard]] TuningEvaluation evaluateTuning(const pfs::PfsSimulator& simulator,
                                              const StellarOptions& options,
                                              const pfs::JobSpec& job,
                                              const EvalOptions& evalOptions = {});

}  // namespace stellar::core

#include "core/session_journal.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "util/file.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace stellar::core {

namespace {
constexpr const char* kComponent = "session-journal";

// JSON numbers round-trip through %.12g, which is lossy for doubles — and a
// replayed measurement that differs in its last bits could flip a
// comparison downstream, breaking the bit-identical-resume guarantee. The
// journal therefore carries the exact IEEE-754 bit pattern next to the
// human-readable value and prefers it on load.
std::string doubleBits(double value) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(value)));
  return buf;
}

double doubleFromBits(const std::string& hex) {
  return std::bit_cast<double>(
      static_cast<std::uint64_t>(std::strtoull(hex.c_str(), nullptr, 16)));
}

}  // namespace

SessionJournal::SessionJournal(std::string path) : path_(std::move(path)) {
  load();
}

void SessionJournal::load() {
  if (path_.empty() || !util::fileExists(path_)) {
    return;
  }
  const std::string contents = util::readFile(path_);
  // A SIGKILL mid-write can leave a torn line with no trailing newline; the
  // next append must not glue itself onto that fragment (it would corrupt a
  // second line and lose its own record too).
  pendingNewline_ = !contents.empty() && contents.back() != '\n';
  std::size_t lineNo = 0;
  for (const std::string& line : util::split(contents, '\n')) {
    ++lineNo;
    if (util::trim(line).empty()) {
      continue;
    }
    try {
      const util::Json doc = util::Json::parse(line);
      const std::string type = doc.getString("type");
      if (type == "header") {
        header_ = doc;
      } else if (type == "measurement") {
        JournaledMeasurement m;
        m.wallSeconds = doc.contains("wall_bits")
                            ? doubleFromBits(doc.at("wall_bits").asString())
                            : doc.getNumber("wall_seconds");
        m.outcome = doc.getString("outcome");
        m.failureReason = doc.getString("failure_reason");
        // Last write wins: a re-appended index (should not happen, but a
        // crash between decide and record can duplicate) stays consistent.
        measurements_[static_cast<std::size_t>(doc.at("index").asInt())] = std::move(m);
      } else if (type == "transcript") {
        ++transcriptWritten_;
      } else if (type == "final") {
        complete_ = true;
      } else {
        throw util::JsonError("unknown line type '" + type + "'");
      }
    } catch (const util::JsonError& e) {
      // Torn tail line after a SIGKILL, or plain corruption: skip it and
      // keep the journal usable — the resumed run re-measures that index.
      ++corruptSkipped_;
      util::logLine(util::LogLevel::Warn, kComponent,
                    path_ + ":" + std::to_string(lineNo) + ": skipping corrupt line (" +
                        e.what() + ")");
    }
  }
}

void SessionJournal::appendLine(const util::Json& line) {
  if (path_.empty()) {
    return;  // memory-only journal (tests)
  }
  util::ensureParentDir(path_);
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (f == nullptr) {
    throw std::runtime_error("cannot open session journal for append: " + path_);
  }
  std::string text = line.dump() + "\n";
  if (pendingNewline_) {
    text.insert(text.begin(), '\n');  // terminate the torn tail line first
    pendingNewline_ = false;
  }
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  if (!ok) {
    throw std::runtime_error("short write appending to session journal: " + path_);
  }
}

void SessionJournal::bind(const util::Json& header) {
  if (header_) {
    if (header_->dump() != header.dump()) {
      throw std::runtime_error(
          "session journal " + path_ +
          " belongs to a different session:\n  journaled: " + header_->dump() +
          "\n  requested: " + header.dump());
    }
    return;  // resuming the same session
  }
  header_ = header;
  appendLine(header);
}

std::optional<JournaledMeasurement> SessionJournal::replay(std::size_t index) const {
  const auto it = measurements_.find(index);
  if (it == measurements_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void SessionJournal::recordMeasurement(std::size_t index,
                                       const JournaledMeasurement& measurement) {
  util::Json line = util::Json::makeObject();
  line.set("type", "measurement");
  line.set("index", static_cast<std::int64_t>(index));
  line.set("wall_seconds", measurement.wallSeconds);
  line.set("wall_bits", doubleBits(measurement.wallSeconds));
  line.set("outcome", measurement.outcome);
  if (!measurement.failureReason.empty()) {
    line.set("failure_reason", measurement.failureReason);
  }
  appendLine(line);
  measurements_[index] = measurement;
}

void SessionJournal::syncTranscript(const agents::Transcript& transcript) {
  const auto& events = transcript.events();
  for (std::size_t i = transcriptWritten_; i < events.size(); ++i) {
    util::Json line = util::Json::makeObject();
    line.set("type", "transcript");
    line.set("actor", events[i].actor);
    line.set("title", events[i].title);
    line.set("body", events[i].body);
    appendLine(line);
  }
  transcriptWritten_ = std::max(transcriptWritten_, events.size());
}

void SessionJournal::markComplete(const util::Json& summary) {
  if (complete_) {
    return;
  }
  util::Json line = util::Json::makeObject();
  line.set("type", "final");
  line.set("summary", summary);
  appendLine(line);
  complete_ = true;
}

}  // namespace stellar::core

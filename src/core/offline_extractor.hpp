// The offline RAG-based parameter extraction pipeline (§4.2, left half of
// Fig. 1): manual -> vector index -> per-candidate retrieval -> sufficiency
// judgment -> accurate descriptions with (possibly dependent) ranges ->
// binary exclusion -> impact selection.
//
// The pipeline is literal: candidates come from the /proc exposure list, a
// rough filter keeps writable ones, each is queried against the index with
// the paper's question template, and a parameter survives only if its
// authoritative manual section was actually retrieved — so extraction
// quality is a real function of the retrieval stack, measurable against
// the ground truth (bench/tab_extraction).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "llm/knowledge.hpp"
#include "llm/model_profile.hpp"
#include "llm/token_meter.hpp"
#include "manual/param_facts.hpp"
#include "rag/vector_index.hpp"

namespace stellar::core {

struct ExtractedParam {
  std::string name;
  /// Grounded knowledge assembled from the retrieved section.
  llm::ParamKnowledge knowledge;
  /// Range expressions exactly as extracted (evaluated online §4.2.2).
  std::string minExpr;
  std::string maxExpr;
  double retrievalScore = 0.0;
};

struct ExtractionResult {
  /// The final PFS Tunable Parameters handed to the Tuning Agent.
  std::vector<ExtractedParam> tunables;
  /// Filter provenance (each candidate lands in exactly one bucket).
  std::vector<std::string> filteredNotWritable;
  std::vector<std::string> filteredInsufficientDocs;
  std::vector<std::string> filteredBinary;
  std::vector<std::string> filteredLowImpact;
  std::size_t chunksIndexed = 0;

  [[nodiscard]] const ExtractedParam* find(std::string_view name) const;

  /// Precision/recall against manual::groundTruthTunables().
  [[nodiscard]] double precision() const;
  [[nodiscard]] double recall() const;
};

struct ExtractorOptions {
  llm::ModelProfile model = llm::gpt4o();  ///< the paper uses GPT-4o here
  std::size_t topK = 20;                   ///< retrieved chunks per query
  std::size_t chunkTokens = 1024;
  std::size_t overlapTokens = 20;
};

class OfflineExtractor {
 public:
  explicit OfflineExtractor(ExtractorOptions options = {});

  /// Runs the full pipeline over the bundled manual. `meter`, when given,
  /// records the extraction LLM calls.
  [[nodiscard]] ExtractionResult run(const manual::SystemFacts& facts,
                                     llm::TokenMeter* meter = nullptr) const;

 private:
  ExtractorOptions opts_;
};

}  // namespace stellar::core

// StellarEngine: the complete online tuning loop of Fig. 1 — initial run,
// Darshan characterization, Analysis Agent report, Tuning Agent tool loop
// (Analysis? / Configuration Runner / End Tuning?), and Reflect & Summarize
// into the global Rule Set.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "agents/action_sanitizer.hpp"
#include "agents/analysis_agent.hpp"
#include "agents/transcript.hpp"
#include "agents/tuning_agent.hpp"
#include "core/offline_extractor.hpp"
#include "core/session_journal.hpp"
#include "llm/llm_client.hpp"
#include "llm/token_meter.hpp"
#include "pfs/simulator.hpp"
#include "rules/rules.hpp"
#include "util/json.hpp"

namespace stellar::core {

/// Deployment scope (§5.6): production HPC users usually lack root, so the
/// engine can restrict itself to parameters an unprivileged user can set
/// (per-file layout via lfs setstripe).
enum class TuningScope {
  SystemWide,      ///< all 13 tunables (the paper's CloudLab setting)
  UserAccessible,  ///< only user-settable parameters (future-work mode)
};

/// What a cross-run memory recalls for a new workload: the best known
/// configuration for a similar I/O behaviour plus the rules learned
/// alongside it. Produced by exp::ExperienceStore; consumed by the engine
/// to warm-start the Tuning Agent.
struct WarmStartHint {
  pfs::PfsConfig config;               ///< best config of the closest experience
  rules::RuleSet rules;                ///< merged rules of the recalled experiences
  std::vector<std::string> sourceIds;  ///< store record ids behind the hint
  double similarity = 0.0;             ///< fingerprint similarity of the top match
  std::string provenance;              ///< human-readable recall summary
};

/// Cross-run memory interface. The engine only ever *consumes* hints and
/// reports how a recalled configuration fared; persistence, similarity
/// retrieval, and eviction live in src/exp (which depends on core, not the
/// other way around).
class WarmStartProvider {
 public:
  virtual ~WarmStartProvider() = default;

  /// Recalls prior experience for a workload with this I/O report; nullopt
  /// when nothing sufficiently similar is stored.
  [[nodiscard]] virtual std::optional<WarmStartHint> warmStart(
      const agents::IoReport& report) const = 0;

  /// Staleness feedback after the tuning run judged the recalled config.
  /// `regressed`: the recalled configuration measured *worse* than the
  /// default (or failed validation) — the memory is misleading for this
  /// context. `confirmed`: it landed within 5% of the run's final best.
  virtual void observeWarmStartOutcome(const std::vector<std::string>& sourceIds,
                                       bool regressed, bool confirmed) = 0;
};

struct StellarOptions {
  agents::TuningAgentOptions agent;            ///< tuning-agent model + ablations
  llm::ModelProfile analysisModel = llm::gpt4o();
  /// When false, parameter knowledge comes from model memory instead of
  /// the RAG extraction (the hallucination-prone path of Fig. 2/Fig. 8).
  bool useRagExtraction = true;
  TuningScope scope = TuningScope::SystemWide;
  std::uint64_t seed = 1;
  /// Measurement watchdog: simulated-seconds cap per run (0 = unlimited).
  /// A capped run comes back RunOutcome::TimedOut and is treated like any
  /// other failed measurement (re-measured once, then skipped).
  double maxSimSecondsPerRun = 0.0;
  /// Cross-run memory (nullable, non-owning; must outlive the engine).
  /// When set and the run has an I/O report, a sufficiently similar prior
  /// experience warm-starts the Tuning Agent: its best config becomes the
  /// first attempt and its rules join the matched rule set. The provider
  /// is told afterwards whether the recalled config regressed (staleness
  /// eviction) or held up (confirmation).
  WarmStartProvider* warmStart = nullptr;

  // --- agent-layer resilience (ISSUE 7) ------------------------------------
  /// Tool-call payload validation at the Tuning Agent boundary. Observe
  /// (default) records issues without touching the config — byte-for-byte
  /// the pre-sanitizer behavior; Enforce repairs it (drop / revert / clamp).
  agents::SanitizerMode sanitizer = agents::SanitizerMode::Observe;
  /// Retry / backoff / circuit-breaker policy at the inference boundary.
  llm::LlmClientOptions llmClient{};
  /// Cheaper model the resilience ladder falls back to when the primary
  /// model's circuit breaker opens (or decisions keep failing).
  llm::ModelProfile fallbackModel = llm::llama31_70b();
  /// Crash-safe session journal (nullable, non-owning; must outlive the
  /// engine). Measurements are recorded as they complete and replayed on
  /// resume, so a killed session re-converges bit-identically.
  SessionJournal* journal = nullptr;
  /// Deterministic interrupt: once this many *fresh* journaled simulator
  /// measurements have run in this process, tune() throws
  /// SessionInterrupted (0 = unlimited). The CI kill/resume smoke uses it
  /// as a reproducible stand-in for SIGKILL; replayed measurements do not
  /// count, so every resume makes progress.
  std::size_t maxMeasurements = 0;
};

/// One complete Tuning Run (the paper's unit of evaluation).
struct TuningRunResult {
  std::string workload;
  double defaultSeconds = 0.0;
  /// wall time per iteration: index 0 = initial default run, then each
  /// configuration attempt in order (the x-axes of Figs. 6/7).
  std::vector<double> iterationSeconds;
  std::vector<agents::Attempt> attempts;
  pfs::PfsConfig bestConfig;
  double bestSeconds = 0.0;
  std::string endReason;
  std::vector<rules::Rule> learnedRules;
  bool hasReport = false;
  agents::IoReport report;
  agents::Transcript transcript;
  llm::TokenMeter meter;
  /// Cross-run memory provenance: set when a WarmStartProvider recalled a
  /// prior experience for this run.
  bool warmStarted = false;
  double warmStartSimilarity = 0.0;
  std::vector<std::string> warmStartSources;

  /// Resilience ladder rung the session ended on: "primary" (the configured
  /// agent model carried the run), "fallback-model" (the cheaper model took
  /// over), "rule-baseline" (both models unusable; a rule/heuristic-derived
  /// config was measured and won), or "safe-default" (nothing beat the
  /// default configuration).
  std::string resilienceRung = "primary";
  struct ResilienceStats {
    std::uint64_t llmCalls = 0;           ///< logical calls issued
    std::uint64_t llmWastedAttempts = 0;  ///< failed attempts (billed wasted)
    std::uint64_t llmFailedCalls = 0;     ///< logical calls that never delivered
    std::uint64_t breakerTrips = 0;
    double backoffSeconds = 0.0;  ///< simulated retry backoff waited
    std::uint64_t undeliveredDecisions = 0;
    std::uint64_t sanitizerIssues = 0;
    std::uint64_t clampedValues = 0;
    std::uint64_t rejectedMoves = 0;
    std::uint64_t staleAnalyses = 0;
    std::uint64_t journalReplayedMeasurements = 0;
  };
  ResilienceStats resilience;

  [[nodiscard]] double bestSpeedup() const noexcept {
    return bestSeconds > 0 ? defaultSeconds / bestSeconds : 0.0;
  }

  /// Convergence metric: the 1-based index of the first valid attempt whose
  /// wall time is within `tolerance` of `targetSeconds` (default: this
  /// run's own best). attempts.size() + 1 when never reached — callers
  /// compare medians, so the penalty value only needs to sort last.
  [[nodiscard]] std::size_t iterationsToWithin(double tolerance,
                                               double targetSeconds = 0.0) const;

  /// Canonical serialization of a tuning run — workload, timings,
  /// attempts (config + outcome), learned rules, transcript, and token
  /// totals. The CLI's --json flag and the benches emit this instead of
  /// hand-formatting fields.
  [[nodiscard]] util::Json toJson() const;
};

class StellarEngine {
 public:
  StellarEngine(pfs::PfsSimulator simulator, StellarOptions options);

  /// Runs one complete tuning run on `job`. When `globalRules` is given,
  /// matched rules steer the first configuration and the learned rules are
  /// merged back (with §4.4.2 conflict resolution + outcome pruning).
  [[nodiscard]] TuningRunResult tune(const pfs::JobSpec& job,
                                     rules::RuleSet* globalRules = nullptr);

  /// The (cached) offline extraction shared by all runs of this engine.
  [[nodiscard]] const ExtractionResult& extraction() const;

  [[nodiscard]] const pfs::PfsSimulator& simulator() const noexcept {
    return simulator_;
  }
  [[nodiscard]] const StellarOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] std::map<std::string, llm::ParamKnowledge> buildKnowledge() const;

  pfs::PfsSimulator simulator_;
  StellarOptions options_;
  mutable std::optional<ExtractionResult> extraction_;
};

}  // namespace stellar::core

#include "core/offline_extractor.hpp"

#include <algorithm>

#include "manual/manual_text.hpp"
#include "util/expr.hpp"
#include "util/strings.hpp"

namespace stellar::core {

namespace {

/// The text of one parameter's section as found inside a retrieved chunk,
/// or empty if the chunk does not contain (enough of) it.
std::string sectionFromChunk(const std::string& chunkText, const std::string& marker) {
  const auto begin = chunkText.find(marker);
  if (begin == std::string::npos) {
    return {};
  }
  // The section ends at the next parameter marker or the chunk end.
  auto end = chunkText.find("Parameter: ", begin + marker.size());
  if (end == std::string::npos) {
    end = chunkText.size();
  }
  return chunkText.substr(begin, end - begin);
}

/// Pulls "Label: value" out of the section; empty if absent.
std::string fieldLine(const std::string& section, const std::string& label) {
  const auto pos = section.find(label + ": ");
  if (pos == std::string::npos) {
    return {};
  }
  const auto start = pos + label.size() + 2;
  const auto eol = section.find('\n', start);
  return std::string{util::trim(
      section.substr(start, eol == std::string::npos ? std::string::npos : eol - start))};
}

/// The prose between the Exposure line and the Default line — the
/// parameter's definition + I/O impact statement.
std::string proseOf(const std::string& section) {
  const auto exposure = section.find("Exposure: ");
  const auto defaults = section.find("Default: ");
  if (exposure == std::string::npos || defaults == std::string::npos ||
      defaults <= exposure) {
    return {};
  }
  const auto bodyStart = section.find('\n', exposure);
  if (bodyStart == std::string::npos) {
    return {};
  }
  return std::string{util::trim(section.substr(bodyStart, defaults - bodyStart))};
}

/// Strips a trailing unit from "8 RPCs" / "32 MiB" and parses the number.
std::int64_t leadingInt(const std::string& text, std::int64_t fallback) {
  const auto words = util::splitWhitespace(text);
  if (words.empty()) {
    return fallback;
  }
  try {
    return std::stoll(words[0]);
  } catch (const std::exception&) {
    return fallback;
  }
}

/// The impact judgment the extraction model makes from the retrieved prose
/// (§4.2.2 "selecting important parameters"): the manual's authors state
/// performance relevance explicitly, and the model keys on that.
bool highImpactFromProse(const std::string& prose) {
  if (util::containsIgnoreCase(prose, "directly affects")) {
    return true;
  }
  if (util::containsIgnoreCase(prose, "diagnostic") ||
      util::containsIgnoreCase(prose, "does not improve") ||
      util::containsIgnoreCase(prose, "format time") ||
      util::containsIgnoreCase(prose, "housekeeping") ||
      util::containsIgnoreCase(prose, "failover detection")) {
    return false;
  }
  // Ambiguous prose defaults to keeping the parameter (cheaper to tune one
  // extra knob than to miss an important one).
  return true;
}

bool binaryFromSection(const std::string& defaultLine, const std::string& minExpr,
                       const std::string& maxExpr) {
  if (util::containsIgnoreCase(defaultLine, "boolean")) {
    return true;
  }
  return minExpr == "0" && maxExpr == "1";
}

}  // namespace

const ExtractedParam* ExtractionResult::find(std::string_view name) const {
  for (const ExtractedParam& p : tunables) {
    if (p.name == name) {
      return &p;
    }
  }
  return nullptr;
}

double ExtractionResult::precision() const {
  if (tunables.empty()) {
    return 0.0;
  }
  const auto truth = manual::groundTruthTunables();
  std::size_t hits = 0;
  for (const ExtractedParam& p : tunables) {
    if (std::find(truth.begin(), truth.end(), p.name) != truth.end()) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(tunables.size());
}

double ExtractionResult::recall() const {
  const auto truth = manual::groundTruthTunables();
  if (truth.empty()) {
    return 0.0;
  }
  std::size_t hits = 0;
  for (const std::string& name : truth) {
    if (find(name) != nullptr) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

OfflineExtractor::OfflineExtractor(ExtractorOptions options) : opts_(std::move(options)) {}

ExtractionResult OfflineExtractor::run(const manual::SystemFacts& facts,
                                       llm::TokenMeter* meter) const {
  ExtractionResult result;

  // 1. Build the vector index over the manual.
  rag::VectorIndex index;
  rag::ChunkerOptions chunkOpts;
  chunkOpts.chunkTokens = opts_.chunkTokens;
  chunkOpts.overlapTokens = opts_.overlapTokens;
  index.buildFromDocument(manual::fullManualText(), chunkOpts);
  result.chunksIndexed = index.size();

  // 2. Candidates from the /proc exposure list; rough writability filter.
  for (const manual::ParamFact& fact : manual::allParamFacts()) {
    if (!fact.writable) {
      result.filteredNotWritable.push_back(fact.name);
      continue;
    }

    // 3. Retrieval with the paper's question template.
    const std::string question = "How do I use the parameter " + fact.name + "?";
    const auto retrieved = index.query(question, opts_.topK);

    // The extraction model reads all retrieved chunks together, so chunks
    // that are adjacent in the document are stitched back into continuous
    // text before looking for the authoritative section — a section split
    // by a chunk boundary is still extractable as long as both halves were
    // retrieved.
    std::vector<const rag::RetrievedChunk*> ordered;
    ordered.reserve(retrieved.size());
    for (const rag::RetrievedChunk& hit : retrieved) {
      ordered.push_back(&hit);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const rag::RetrievedChunk* a, const rag::RetrievedChunk* b) {
                return a->chunk->index < b->chunk->index;
              });

    std::string section;
    double score = 0.0;
    const std::string marker = manual::parameterSectionMarker(fact.name);
    std::string stitched;
    double runScore = 0.0;
    std::size_t lastIndex = ~std::size_t{0};
    const auto tryRun = [&] {
      if (stitched.empty()) {
        return;
      }
      std::string candidate = sectionFromChunk(stitched, marker);
      // The authoritative section must carry the range lines to count as
      // sufficient documentation.
      if (section.empty() && !candidate.empty() &&
          candidate.find("Default: ") != std::string::npos &&
          candidate.find("Maximum: ") != std::string::npos) {
        section = std::move(candidate);
        score = runScore;
      }
      stitched.clear();
      runScore = 0.0;
    };
    for (const rag::RetrievedChunk* hit : ordered) {
      if (lastIndex != ~std::size_t{0} && hit->chunk->index != lastIndex + 1) {
        tryRun();
      }
      stitched += hit->chunk->text;
      stitched += "\n";
      runScore = std::max(runScore, hit->score);
      lastIndex = hit->chunk->index;
    }
    tryRun();

    if (meter != nullptr) {
      std::string prompt = question + "\n";
      for (const rag::RetrievedChunk& hit : retrieved) {
        prompt += hit.chunk->text;
      }
      meter->recordCall("extraction", prompt,
                        section.empty() ? "insufficient documentation" : section);
    }

    // 4. Sufficiency judgment: undocumented / unretrieved parameters are
    //    dropped (§4.2.2: absence from the manual implies lesser import).
    if (section.empty()) {
      result.filteredInsufficientDocs.push_back(fact.name);
      continue;
    }

    const std::string defaultLine = fieldLine(section, "Default");
    const std::string minExpr = fieldLine(section, "Minimum");
    const std::string maxExpr = fieldLine(section, "Maximum");
    const std::string prose = proseOf(section);

    // 5. Binary exclusion: on/off functional switches are user trade-offs.
    if (binaryFromSection(defaultLine, minExpr, maxExpr)) {
      result.filteredBinary.push_back(fact.name);
      continue;
    }

    // 6. Impact selection from the documented behaviour.
    if (!highImpactFromProse(prose)) {
      result.filteredLowImpact.push_back(fact.name);
      continue;
    }

    ExtractedParam param;
    param.name = fact.name;
    param.minExpr = minExpr;
    param.maxExpr = maxExpr;
    param.retrievalScore = score;

    llm::ParamKnowledge knowledge;
    knowledge.param = fact.name;
    knowledge.source = llm::KnowledgeSource::RagExtraction;
    knowledge.corruption = llm::CorruptionKind::None;
    knowledge.description = prose;
    knowledge.ioImpact = "";  // the prose already carries the impact statement
    knowledge.defaultValue = leadingInt(defaultLine, fact.defaultValue);
    // Resolve the extracted expressions against system facts + defaults of
    // referenced parameters (the online tuner re-resolves dependents).
    const auto resolver = [&facts](std::string_view name) -> std::optional<double> {
      if (const auto v = facts.resolve(name)) {
        return v;
      }
      if (const manual::ParamFact* other = manual::findParamFact(name)) {
        return static_cast<double>(other->defaultValue);
      }
      return std::nullopt;
    };
    knowledge.minValue = minExpr.empty()
                             ? 0
                             : static_cast<std::int64_t>(
                                   util::evaluateExpression(minExpr, resolver));
    knowledge.maxValue = maxExpr.empty()
                             ? knowledge.minValue
                             : static_cast<std::int64_t>(
                                   util::evaluateExpression(maxExpr, resolver));
    param.knowledge = std::move(knowledge);
    result.tunables.push_back(std::move(param));
  }

  return result;
}

}  // namespace stellar::core

#include "core/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "darshan/recorder.hpp"
#include "dataframe/from_darshan.hpp"
#include "llm/llm_fault_model.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace stellar::core {

namespace {

pfs::RunOutcome runOutcomeByName(const std::string& name) {
  if (name == "failed") {
    return pfs::RunOutcome::Failed;
  }
  if (name == "timed-out") {
    return pfs::RunOutcome::TimedOut;
  }
  return pfs::RunOutcome::Ok;
}

/// The resilience ladder's model-free rung: a configuration derived from
/// matched rules (applied at their documented bounds) or, failing that, a
/// modest heuristic preset keyed on the I/O report. Returns the default
/// configuration when there is no evidence to act on.
pfs::PfsConfig ruleBaselineConfig(const agents::IoReport* report,
                                  const rules::RuleSet* rules,
                                  const pfs::BoundsContext& ctx) {
  pfs::PfsConfig cfg;
  bool any = false;
  if (report != nullptr && rules != nullptr && !rules->empty()) {
    for (const rules::Rule* rule : rules->match(report->context, 0.7)) {
      const auto bounds = pfs::paramBounds(rule->parameter, cfg, ctx);
      if (!bounds) {
        continue;
      }
      std::int64_t value = cfg.get(rule->parameter).value_or(bounds->min);
      switch (rule->direction) {
        case rules::Direction::SetMax: value = bounds->max; break;
        case rules::Direction::SetMin: value = bounds->min; break;
        case rules::Direction::SetValue: value = rule->value; break;
        case rules::Direction::Increase: value = value * 8; break;
        case rules::Direction::Decrease: value = value / 8; break;
      }
      value = std::clamp(value, bounds->min, bounds->max);
      any = cfg.set(rule->parameter, value) || any;
    }
  }
  if (!any && report != nullptr) {
    // No matched rules: a conservative preset per workload family (far less
    // ambitious than the agent's playbooks — this rung only needs to beat
    // the default, not the tuned optimum).
    const rules::WorkloadContext& c = report->context;
    if (c.metaOpShare > 0.6) {
      (void)cfg.set("llite.statahead_max", 1024);
      (void)cfg.set("mdc.max_rpcs_in_flight", 64);
      (void)cfg.set("mdc.max_mod_rpcs_in_flight", 63);
      (void)cfg.set("ldlm.lru_size", 65536);
    } else if (c.sequentialShare > 0.6) {
      (void)cfg.set("lov.stripe_count", -1);
      (void)cfg.set("lov.stripe_size", static_cast<std::int64_t>(4 * util::kMiB));
      (void)cfg.set("osc.max_pages_per_rpc", 1024);
      (void)cfg.set("osc.max_dirty_mb", 256);
    } else {
      (void)cfg.set("lov.stripe_count", -1);
      (void)cfg.set("osc.max_rpcs_in_flight", 32);
    }
  }
  return pfs::clampConfig(cfg, ctx);
}

}  // namespace

StellarEngine::StellarEngine(pfs::PfsSimulator simulator, StellarOptions options)
    : simulator_(std::move(simulator)), options_(std::move(options)) {}

const ExtractionResult& StellarEngine::extraction() const {
  obs::CounterRegistry* counters = simulator_.counters();
  if (!extraction_) {
    if (counters != nullptr) {
      counters->counter("core.extraction.cache_miss").add();
    }
    obs::Tracer::Span span =
        obs::beginSpan(simulator_.tracer(), "tuning", "offline-extraction");
    manual::SystemFacts facts;
    facts.clientRamMb = simulator_.cluster().clientRamMb();
    facts.ostCount = simulator_.cluster().totalOsts();
    extraction_ = OfflineExtractor{}.run(facts);
  } else if (counters != nullptr) {
    counters->counter("core.extraction.cache_hit").add();
  }
  return *extraction_;
}

std::map<std::string, llm::ParamKnowledge> StellarEngine::buildKnowledge() const {
  std::map<std::string, llm::ParamKnowledge> knowledge;
  manual::SystemFacts facts;
  facts.clientRamMb = simulator_.cluster().clientRamMb();
  facts.ostCount = simulator_.cluster().totalOsts();

  // In user scope the agent only knows about (and can only set) the
  // parameters an unprivileged user controls.
  const auto inScope = [this](const std::string& name) {
    if (options_.scope == TuningScope::SystemWide) {
      return true;
    }
    const manual::ParamFact* fact = manual::findParamFact(name);
    return fact != nullptr && fact->userAccessible;
  };

  if (options_.useRagExtraction) {
    for (const ExtractedParam& param : extraction().tunables) {
      if (!inScope(param.name)) {
        continue;
      }
      llm::ParamKnowledge k = param.knowledge;
      if (!options_.agent.useDescriptions) {
        // No-Descriptions ablation (§5.4): the grounded value ranges are
        // kept, but the semantic understanding falls back to model memory
        // — hallucination-prone.
        const manual::ParamFact* fact = manual::findParamFact(param.name);
        if (fact != nullptr) {
          // Without any description the model has nothing to anchor its
          // semantics on, so recall is substantially more hallucination
          // prone than an ordinary memory lookup.
          llm::ModelProfile blinded = options_.agent.model;
          blinded.hallucinationRate =
              std::max(0.25, blinded.hallucinationRate * 4.0);
          llm::ParamKnowledge recalled = llm::recallFromMemory(
              *fact, blinded, facts, options_.seed ^ 0xD15AB1EDULL);
          recalled.minValue = k.minValue;  // ranges stay grounded
          recalled.maxValue = k.maxValue;
          if (recalled.corruption == llm::CorruptionKind::WrongRange) {
            // A range corruption is moot when ranges are grounded; what is
            // lost is the description.
            recalled.corruption = llm::CorruptionKind::WrongDefinition;
          }
          k = recalled;
        }
      }
      knowledge.emplace(param.name, std::move(k));
    }
    return knowledge;
  }

  // No-RAG path: everything, descriptions and ranges, comes from memory.
  for (const std::string& name : manual::groundTruthTunables()) {
    const manual::ParamFact* fact = manual::findParamFact(name);
    if (fact == nullptr || !inScope(name)) {
      continue;
    }
    knowledge.emplace(
        name, llm::recallFromMemory(*fact, options_.agent.model, facts, options_.seed));
  }
  return knowledge;
}

TuningRunResult StellarEngine::tune(const pfs::JobSpec& job,
                                    rules::RuleSet* globalRules) {
  TuningRunResult result;
  result.workload = job.name;

  obs::Tracer* tracer = simulator_.tracer();
  obs::Tracer::Span tuneSpan = obs::beginSpan(tracer, "tuning", "tune:" + job.name);

  const pfs::PfsConfig defaultConfig{};
  const std::uint64_t seedBase = util::mix64(options_.seed, 0x7E57);

  const pfs::RunLimits limits{options_.maxSimSecondsPerRun};
  obs::CounterRegistry* registry = simulator_.counters();
  const auto noteRetriedMeasurement = [registry](const pfs::RunResult& failed) {
    if (registry != nullptr) {
      registry->counter("core.tuning.measurements_retried",
                        {{"outcome", pfs::runOutcomeName(failed.outcome)}})
          .add();
    }
  };

  // --- crash-safe session journal (ISSUE 7) ---------------------------------
  // The header binds the journal file to this exact session; resuming with a
  // different workload / seed / model is refused. The initial run is never
  // journaled (darshan::characterize needs the full RunResult, which the
  // journal does not carry) — it is simply re-executed on resume, which is
  // deterministic and therefore harmless.
  if (options_.journal != nullptr) {
    util::Json header = util::Json::makeObject();
    header.set("type", "header");
    header.set("workload", job.name);
    header.set("seed", static_cast<std::int64_t>(options_.seed));
    header.set("agent_model", options_.agent.model.name);
    header.set("agent_seed", static_cast<std::int64_t>(options_.agent.seed));
    header.set("max_attempts", static_cast<std::int64_t>(options_.agent.maxAttempts));
    header.set("analysis_model", options_.analysisModel.name);
    header.set("fallback_model", options_.fallbackModel.name);
    header.set("sanitizer", agents::sanitizerModeName(options_.sanitizer));
    const faults::FaultPlan* plan = simulator_.options().faults;
    header.set("faults", plan == nullptr ? std::string{} : plan->describe());
    options_.journal->bind(header);
  }

  // Journal-aware measurement: every tool-loop simulator run gets a
  // monotonic index. A journaled index replays instead of re-running; a
  // fresh run is recorded before its result is acted on, so a crash at any
  // point resumes bit-identically. The measurement cap is the deterministic
  // stand-in for that crash.
  std::size_t measIndex = 0;
  std::size_t freshRuns = 0;
  const auto measure = [&](const pfs::PfsConfig& cfg,
                           std::uint64_t seed) -> pfs::RunResult {
    const std::size_t index = measIndex++;
    if (options_.journal != nullptr) {
      if (const auto replayed = options_.journal->replay(index)) {
        ++result.resilience.journalReplayedMeasurements;
        pfs::RunResult run;
        run.wallSeconds = replayed->wallSeconds;
        run.rawWallSeconds = replayed->wallSeconds;
        run.outcome = runOutcomeByName(replayed->outcome);
        run.failureReason = replayed->failureReason;
        return run;
      }
    }
    if (options_.maxMeasurements != 0 && freshRuns >= options_.maxMeasurements) {
      if (options_.journal != nullptr) {
        options_.journal->syncTranscript(result.transcript);
      }
      throw SessionInterrupted("measurement cap (" +
                               std::to_string(options_.maxMeasurements) +
                               ") reached at measurement " + std::to_string(index));
    }
    pfs::RunResult run = simulator_.run(job, cfg, seed, limits);
    ++freshRuns;
    if (options_.journal != nullptr) {
      options_.journal->recordMeasurement(
          index, JournaledMeasurement{run.wallSeconds,
                                      pfs::runOutcomeName(run.outcome),
                                      run.failureReason});
      options_.journal->syncTranscript(result.transcript);
    }
    return run;
  };

  // --- initial run with the default configuration --------------------------
  obs::Tracer::Span initialSpan = obs::beginSpan(tracer, "tuning", "iteration:0");
  pfs::RunResult initial = simulator_.run(job, defaultConfig, seedBase, limits);
  if (!initial.ok()) {
    // One re-measure with a perturbed seed: transient fault windows often
    // miss the retried run; a systemic fault will fail it again.
    noteRetriedMeasurement(initial);
    result.transcript.add("system", "initial run failed",
                          initial.failureReason + " — re-measuring once.");
    initial = simulator_.run(job, defaultConfig, util::mix64(seedBase, 0xF000), limits);
  }
  if (initialSpan.active()) {
    initialSpan.arg("kind", util::Json("default-run"));
    initialSpan.arg("seconds", util::Json(initial.wallSeconds));
    initialSpan.arg("outcome", util::Json(pfs::runOutcomeName(initial.outcome)));
    initialSpan.end();
  }
  if (!initial.ok()) {
    // Without a trustworthy baseline no attempt can be judged; end the run
    // cleanly instead of tuning against a corrupted reference.
    result.endReason = "initial measurement failed: " + initial.failureReason;
    result.transcript.add("system", "tuning aborted", result.endReason);
    if (registry != nullptr) {
      registry->counter("core.tuning.aborted_runs").add();
    }
    return result;
  }
  result.defaultSeconds = initial.wallSeconds;
  result.iterationSeconds.push_back(initial.wallSeconds);
  result.transcript.add("system", "initial run",
                        "default configuration: " +
                            util::formatSeconds(initial.wallSeconds));

  // --- Darshan -> dataframes -> Analysis Agent ------------------------------
  std::optional<df::DarshanTables> tables;
  std::optional<agents::AnalysisAgent> analysis;
  const agents::IoReport* reportPtr = nullptr;
  if (options_.agent.useAnalysis) {
    const darshan::DarshanLog log = darshan::characterize(job, initial, seedBase);
    tables = df::tablesFromLog(log);
    analysis.emplace(*tables, options_.analysisModel, result.meter, result.transcript);
    result.report = analysis->initialReport();
    result.hasReport = true;
    reportPtr = &result.report;
  } else {
    result.transcript.add("system", "ablation",
                          "Analysis Agent removed: no I/O report available.");
  }

  // --- cross-run memory recall (warm start) --------------------------------
  // The recalled rules join the caller's rule set for *matching only* (a
  // local copy): learned rules still merge into the caller's set below, so
  // memory never mutates the global rule asset behind the caller's back.
  std::optional<WarmStartHint> hint;
  rules::RuleSet combinedRules;
  const rules::RuleSet* agentRules = globalRules;
  if (options_.warmStart != nullptr && reportPtr != nullptr) {
    hint = options_.warmStart->warmStart(*reportPtr);
    if (hint) {
      result.warmStarted = true;
      result.warmStartSimilarity = hint->similarity;
      result.warmStartSources = hint->sourceIds;
      if (globalRules != nullptr) {
        combinedRules = *globalRules;
      }
      (void)combinedRules.merge(hint->rules.rules());
      agentRules = &combinedRules;
      result.transcript.add("system", "warm start", hint->provenance);
      if (registry != nullptr) {
        registry->counter("core.warm_start.recalled").add();
      }
    } else if (registry != nullptr) {
      registry->counter("core.warm_start.miss").add();
    }
  }

  // --- Tuning Agent tool loop -----------------------------------------------
  // The inference boundary: one fault model derived from the same plan that
  // drives the simulator's injector (simulator-side kinds are ignored here,
  // LLM kinds there), behind a retrying, circuit-breaking client. With no
  // LLM faults in the plan the client is pass-through and clean runs stay
  // bit-identical.
  const faults::FaultPlan* faultPlan = simulator_.options().faults;
  const llm::LlmFaultModel llmFaults =
      faultPlan != nullptr ? llm::LlmFaultModel{*faultPlan} : llm::LlmFaultModel{};
  llm::LlmClient llmClient{&llmFaults, result.meter, registry, options_.llmClient};

  std::map<std::string, llm::ParamKnowledge> knowledge = buildKnowledge();
  std::vector<std::string> knownKnobs;
  knownKnobs.reserve(knowledge.size());
  for (const auto& [name, k] : knowledge) {
    knownKnobs.push_back(name);
  }
  const agents::ActionSanitizer sanitizer{std::move(knownKnobs),
                                          simulator_.boundsContext(),
                                          options_.sanitizer, registry};

  agents::TuningAgent agent{options_.agent, std::move(knowledge),
                            simulator_.boundsContext(), agentRules, result.meter,
                            result.transcript};
  agent.attachLlm(&llmClient);
  if (hint) {
    agent.primeWarmStart(hint->config,
                         "Begin from the best configuration recorded for a "
                         "similar workload in the experience store (" +
                             hint->provenance + ").");
  }
  agent.observeInitialRun(reportPtr, initial.wallSeconds, defaultConfig);

  // Guard: tool loop is bounded by attempts + questions + repairs, with
  // extra headroom for failed / escalated decisions when LLM chaos is on.
  const int maxToolCalls =
      options_.agent.maxAttempts * 2 + 8 + (llmFaults.empty() ? 0 : 12);
  int failedDecisions = 0;
  bool agentAbandoned = false;
  for (int call = 0; call < maxToolCalls; ++call) {
    // One span per agent iteration: the tool decision plus whatever it
    // triggered (analysis follow-up or configuration attempt).
    obs::Tracer::Span iterSpan = obs::beginSpan(
        tracer, "tuning", "iteration:" + std::to_string(result.iterationSeconds.size()));
    const agents::TuningAgent::Action action = agent.decide();
    if (!action.delivered) {
      // The model call behind the decision failed; the agent rolled its
      // state back, so the decision will be reproduced on the next call.
      // This is where the resilience ladder climbs: bounded in-call retries
      // already happened inside LlmClient, so repeated failures here mean
      // the model (or the provider) is down — escalate.
      const llm::CallOutcome& outcome = agent.lastOutcome();
      ++result.resilience.undeliveredDecisions;
      ++failedDecisions;
      iterSpan.arg("kind", util::Json("undelivered"));
      result.transcript.add(
          "system", "llm call failed",
          outcome.breakerOpen
              ? "circuit breaker open for " + agent.model().name +
                    " — call short-circuited"
              : std::string{"model call failed ("} +
                    llm::callFaultName(outcome.lastFault) + ") after " +
                    std::to_string(outcome.retries) + " retries");
      if (outcome.breakerOpen || failedDecisions >= 4) {
        if (result.resilienceRung == "primary") {
          result.resilienceRung = "fallback-model";
          agent.switchModel(options_.fallbackModel);
          failedDecisions = 0;
          result.transcript.add("system", "resilience ladder",
                                "escalating to fallback model " +
                                    options_.fallbackModel.name);
          if (registry != nullptr) {
            registry->counter("core.resilience.escalations",
                              {{"rung", "fallback-model"}})
                .add();
          }
          continue;
        }
        agentAbandoned = true;
        result.endReason = "agent abandoned: LLM unavailable";
        result.transcript.add("system", "resilience ladder",
                              "fallback model unusable too — abandoning the "
                              "agent loop for the rule-derived baseline");
        if (registry != nullptr) {
          registry->counter("core.resilience.escalations",
                            {{"rung", "rule-baseline"}})
              .add();
        }
        break;
      }
      continue;
    }
    failedDecisions = 0;
    if (action.kind == agents::TuningAgent::ActionKind::EndTuning) {
      iterSpan.arg("kind", util::Json("end-tuning"));
      result.endReason = action.rationale;
      break;
    }
    if (action.kind == agents::TuningAgent::ActionKind::AskAnalysis) {
      iterSpan.arg("kind", util::Json("ask-analysis"));
      std::string answer = analysis ? analysis->answerFollowUp(action.question)
                                    : "(no analysis agent available)";
      if (action.staleAnalysis) {
        // Content-level fault: the answer arrives from a stale cache. The
        // marker degrades the agent's working context instead of failing
        // the call — exactly the quiet corruption a sanitizer cannot catch.
        ++result.resilience.staleAnalyses;
        answer = "[cached from an earlier session; may not reflect this run] " +
                 answer;
        result.transcript.add("system", "stale analysis",
                              "the analysis answer was served from a stale cache");
        if (registry != nullptr) {
          registry->counter("agent.llm.stale_analyses").add();
        }
      }
      agent.observeAnalysisAnswer(action.question, answer);
      continue;
    }
    // Configuration Runner tool: sanitize the raw payload, validate, then
    // execute on the system.
    const agents::SanitizeVerdict verdict = sanitizer.sanitize(action, agent.bestConfig());
    if (!verdict.clean()) {
      result.resilience.sanitizerIssues += verdict.issues.size();
      for (const agents::SanitizeIssue& issue : verdict.issues) {
        switch (issue.kind) {
          case agents::SanitizeIssueKind::OutOfRange:
            ++result.resilience.clampedValues;
            break;
          case agents::SanitizeIssueKind::UnknownKnob:
          case agents::SanitizeIssueKind::Contradictory:
            ++result.resilience.rejectedMoves;
            break;
          case agents::SanitizeIssueKind::DuplicateMove:
            break;
        }
      }
      result.transcript.add("sanitizer",
                            std::string{"payload issues ("} +
                                agents::sanitizerModeName(sanitizer.mode()) + ")",
                            verdict.describe());
    }
    const pfs::PfsConfig& execConfig = verdict.config;
    if (iterSpan.active()) {
      iterSpan.arg("kind", util::Json("attempt"));
      iterSpan.arg("config", util::Json(execConfig.diffAgainst(defaultConfig)));
    }
    const auto problems = pfs::validateConfig(execConfig, simulator_.boundsContext());
    if (!problems.empty()) {
      iterSpan.arg("invalid", util::Json(util::join(problems, "; ")));
      agent.observeRunResult(0.0, false, util::join(problems, "; "));
      result.iterationSeconds.push_back(result.iterationSeconds.back());
      continue;
    }
    pfs::RunResult run =
        measure(execConfig, util::mix64(seedBase, result.iterationSeconds.size()));
    if (!run.ok()) {
      noteRetriedMeasurement(run);
      result.transcript.add("system", "run failed",
                            run.failureReason + " — re-measuring once.");
      run = measure(execConfig,
                    util::mix64(seedBase, 0xF001 + result.iterationSeconds.size()));
    }
    iterSpan.arg("seconds", util::Json(run.wallSeconds));
    iterSpan.arg("outcome", util::Json(pfs::runOutcomeName(run.outcome)));
    if (!run.ok()) {
      // Both measurements failed: skip this configuration entirely. The
      // attempt is recorded as unmeasured and the best-so-far is untouched.
      if (registry != nullptr) {
        registry->counter("core.tuning.measurements_skipped").add();
      }
      agent.observeMeasurementFailure(run.failureReason);
      result.iterationSeconds.push_back(result.iterationSeconds.back());
      continue;
    }
    agent.observeRunResult(run.wallSeconds, true, {});
    result.iterationSeconds.push_back(run.wallSeconds);
  }
  if (result.endReason.empty()) {
    result.endReason = "attempt budget exhausted";
  }

  result.attempts = agent.attempts();
  result.bestConfig = agent.bestConfig();
  result.bestSeconds = agent.bestSeconds();

  // --- ladder rungs 3/4: rule-derived baseline, then the safe default -------
  if (agentAbandoned) {
    const pfs::PfsConfig baseline =
        ruleBaselineConfig(reportPtr, agentRules, simulator_.boundsContext());
    if (baseline == defaultConfig) {
      result.resilienceRung = "safe-default";
      result.transcript.add("system", "resilience ladder",
                            "no rule evidence to act on — staying on the safe "
                            "default configuration");
    } else {
      pfs::RunResult run = measure(baseline, util::mix64(seedBase, 0xBA5E));
      if (!run.ok()) {
        noteRetriedMeasurement(run);
        run = measure(baseline, util::mix64(seedBase, 0xBA5F));
      }
      agents::Attempt attempt;
      attempt.config = baseline;
      attempt.rationale =
          "Rule-derived baseline applied by the resilience ladder (no model "
          "available).";
      if (run.ok()) {
        attempt.seconds = run.wallSeconds;
        result.iterationSeconds.push_back(run.wallSeconds);
      } else {
        attempt.valid = false;
        attempt.measurementFailed = true;
        attempt.error = run.failureReason;
        result.iterationSeconds.push_back(result.iterationSeconds.back());
      }
      const bool adopted = run.ok() && run.wallSeconds < result.bestSeconds;
      if (adopted) {
        result.bestConfig = baseline;
        result.bestSeconds = run.wallSeconds;
      }
      result.resilienceRung = adopted ? "rule-baseline" : "safe-default";
      result.transcript.add(
          "system", "resilience ladder",
          adopted ? "rule-derived baseline measured " +
                        util::formatSeconds(run.wallSeconds) + " — adopted"
                  : "rule-derived baseline did not beat the incumbent — "
                    "keeping the safe default");
      result.attempts.push_back(std::move(attempt));
    }
  }

  result.resilience.llmCalls = llmClient.callsIssued();
  result.resilience.llmWastedAttempts = llmClient.wastedAttempts();
  result.resilience.llmFailedCalls = llmClient.failedCalls();
  result.resilience.breakerTrips = llmClient.breakerTrips();
  result.resilience.backoffSeconds = llmClient.backoffSeconds();

  // --- staleness feedback to the experience store ---------------------------
  if (hint && options_.warmStart != nullptr) {
    bool judged = false;
    bool regressed = false;
    bool confirmed = false;
    for (const agents::Attempt& attempt : result.attempts) {
      if (!attempt.warmStart) {
        continue;
      }
      if (attempt.measurementFailed) {
        break;  // never judged: a fault ate the run, not the memory's fault
      }
      judged = true;
      if (!attempt.valid) {
        // The recalled config no longer validates on this system.
        regressed = true;
      } else {
        regressed = attempt.seconds > result.defaultSeconds;
        confirmed = !regressed && result.bestSeconds > 0 &&
                    attempt.seconds <= result.bestSeconds * 1.05;
      }
      break;
    }
    if (judged) {
      options_.warmStart->observeWarmStartOutcome(result.warmStartSources,
                                                  regressed, confirmed);
      if (registry != nullptr) {
        registry->counter("core.warm_start.outcomes",
                          {{"kind", regressed   ? "regressed"
                            : confirmed ? "confirmed"
                                        : "neutral"}})
            .add();
      }
    }
  }

  // --- Reflect & Summarize ---------------------------------------------------
  result.learnedRules = agent.reflectAndSummarize();
  if (!result.learnedRules.empty()) {
    rules::RuleSet learnedSet;
    for (const rules::Rule& rule : result.learnedRules) {
      learnedSet.add(rule);
    }
    result.transcript.add("tuning-agent", "Reflect & Summarize",
                          learnedSet.toJson().dump(2));
  }
  if (globalRules != nullptr) {
    // Outcome pruning first (§4.4.2: alternatives that failed are dropped),
    // then merge the new rules.
    if (result.hasReport) {
      for (const agents::NegativeFinding& finding : agent.negativeFindings()) {
        (void)globalRules->dropNegative(finding.parameter, result.report.context,
                                        finding.direction);
      }
    }
    const std::string mergeReport = globalRules->merge(result.learnedRules);
    if (!mergeReport.empty()) {
      result.transcript.add("tuning-agent", "rule set merge", mergeReport);
    }
  }

  if (options_.journal != nullptr) {
    options_.journal->syncTranscript(result.transcript);
    util::Json summary = util::Json::makeObject();
    summary.set("default_seconds", result.defaultSeconds);
    summary.set("best_seconds", result.bestSeconds);
    summary.set("end_reason", result.endReason);
    summary.set("resilience_rung", result.resilienceRung);
    summary.set("best_config", result.bestConfig.toJson());
    options_.journal->markComplete(summary);
  }

  if (tuneSpan.active()) {
    tuneSpan.arg("default_seconds", util::Json(result.defaultSeconds));
    tuneSpan.arg("best_seconds", util::Json(result.bestSeconds));
    tuneSpan.arg("attempts", util::Json(static_cast<std::int64_t>(result.attempts.size())));
    tuneSpan.arg("end_reason", util::Json(result.endReason));
  }
  if (obs::CounterRegistry* counters = simulator_.counters()) {
    counters->counter("core.tuning.runs").add();
    counters->counter("core.tuning.attempts").add(static_cast<double>(result.attempts.size()));
    counters->histogram("core.tuning.best_speedup").observe(result.bestSpeedup());
  }
  return result;
}

std::size_t TuningRunResult::iterationsToWithin(double tolerance,
                                                double targetSeconds) const {
  const double target = targetSeconds > 0.0 ? targetSeconds : bestSeconds;
  if (target <= 0.0) {
    return attempts.size() + 1;
  }
  std::size_t iteration = 0;
  for (const agents::Attempt& attempt : attempts) {
    ++iteration;
    if (attempt.valid && !attempt.measurementFailed &&
        attempt.seconds <= target * (1.0 + tolerance)) {
      return iteration;
    }
  }
  return attempts.size() + 1;
}

util::Json TuningRunResult::toJson() const {
  util::Json root = util::Json::makeObject();
  root.set("workload", workload);
  root.set("default_seconds", defaultSeconds);
  root.set("best_seconds", bestSeconds);
  root.set("best_speedup", bestSpeedup());
  root.set("end_reason", endReason);
  root.set("best_config", bestConfig.toJson());
  root.set("warm_started", warmStarted);
  if (warmStarted) {
    root.set("warm_start_similarity", warmStartSimilarity);
    util::Json sources = util::Json::makeArray();
    for (const std::string& id : warmStartSources) {
      sources.push(id);
    }
    root.set("warm_start_sources", std::move(sources));
  }

  util::Json iterations = util::Json::makeArray();
  for (double s : iterationSeconds) {
    iterations.push(s);
  }
  root.set("iteration_seconds", std::move(iterations));

  util::Json attemptArr = util::Json::makeArray();
  for (const agents::Attempt& attempt : attempts) {
    util::Json a = util::Json::makeObject();
    a.set("config", attempt.config.toJson());
    a.set("seconds", attempt.seconds);
    a.set("valid", attempt.valid);
    if (attempt.warmStart) {
      a.set("warm_start", true);
    }
    if (!attempt.rationale.empty()) {
      a.set("rationale", attempt.rationale);
    }
    if (!attempt.error.empty()) {
      a.set("error", attempt.error);
    }
    attemptArr.push(std::move(a));
  }
  root.set("attempts", std::move(attemptArr));

  util::Json ruleArr = util::Json::makeArray();
  for (const rules::Rule& rule : learnedRules) {
    ruleArr.push(rule.toJson());
  }
  root.set("learned_rules", std::move(ruleArr));

  util::Json transcriptArr = util::Json::makeArray();
  for (const agents::TranscriptEvent& event : transcript.events()) {
    util::Json e = util::Json::makeObject();
    e.set("actor", event.actor);
    e.set("title", event.title);
    e.set("body", event.body);
    transcriptArr.push(std::move(e));
  }
  root.set("transcript", std::move(transcriptArr));

  const llm::UsageTotals totals = meter.totals();
  util::Json usage = util::Json::makeObject();
  usage.set("calls", static_cast<std::int64_t>(totals.calls));
  usage.set("input_tokens", static_cast<std::int64_t>(totals.inputTokens));
  usage.set("cached_tokens", static_cast<std::int64_t>(totals.cachedTokens));
  usage.set("output_tokens", static_cast<std::int64_t>(totals.outputTokens));
  usage.set("cache_hit_rate", totals.cacheHitRate());
  usage.set("wasted_calls", static_cast<std::int64_t>(totals.wastedCalls));
  usage.set("wasted_input_tokens",
            static_cast<std::int64_t>(totals.wastedInputTokens));
  usage.set("wasted_cached_tokens",
            static_cast<std::int64_t>(totals.wastedCachedTokens));
  usage.set("wasted_output_tokens",
            static_cast<std::int64_t>(totals.wastedOutputTokens));
  root.set("llm_usage", std::move(usage));

  root.set("resilience_rung", resilienceRung);
  util::Json res = util::Json::makeObject();
  res.set("llm_calls", static_cast<std::int64_t>(resilience.llmCalls));
  res.set("llm_wasted_attempts",
          static_cast<std::int64_t>(resilience.llmWastedAttempts));
  res.set("llm_failed_calls", static_cast<std::int64_t>(resilience.llmFailedCalls));
  res.set("breaker_trips", static_cast<std::int64_t>(resilience.breakerTrips));
  res.set("backoff_seconds", resilience.backoffSeconds);
  res.set("undelivered_decisions",
          static_cast<std::int64_t>(resilience.undeliveredDecisions));
  res.set("sanitizer_issues", static_cast<std::int64_t>(resilience.sanitizerIssues));
  res.set("clamped_values", static_cast<std::int64_t>(resilience.clampedValues));
  res.set("rejected_moves", static_cast<std::int64_t>(resilience.rejectedMoves));
  res.set("stale_analyses", static_cast<std::int64_t>(resilience.staleAnalyses));
  // journalReplayedMeasurements is deliberately NOT serialized: it is the
  // one stat that distinguishes a resumed session from an uninterrupted one,
  // and the KILL-RESUME law byte-compares this JSON across both.
  root.set("resilience", std::move(res));
  return root;
}

}  // namespace stellar::core

#include "core/engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "darshan/recorder.hpp"
#include "dataframe/from_darshan.hpp"
#include "util/strings.hpp"

namespace stellar::core {

StellarEngine::StellarEngine(pfs::PfsSimulator simulator, StellarOptions options)
    : simulator_(std::move(simulator)), options_(std::move(options)) {}

const ExtractionResult& StellarEngine::extraction() const {
  obs::CounterRegistry* counters = simulator_.counters();
  if (!extraction_) {
    if (counters != nullptr) {
      counters->counter("core.extraction.cache_miss").add();
    }
    obs::Tracer::Span span =
        obs::beginSpan(simulator_.tracer(), "tuning", "offline-extraction");
    manual::SystemFacts facts;
    facts.clientRamMb = simulator_.cluster().clientRamMb();
    facts.ostCount = simulator_.cluster().totalOsts();
    extraction_ = OfflineExtractor{}.run(facts);
  } else if (counters != nullptr) {
    counters->counter("core.extraction.cache_hit").add();
  }
  return *extraction_;
}

std::map<std::string, llm::ParamKnowledge> StellarEngine::buildKnowledge() const {
  std::map<std::string, llm::ParamKnowledge> knowledge;
  manual::SystemFacts facts;
  facts.clientRamMb = simulator_.cluster().clientRamMb();
  facts.ostCount = simulator_.cluster().totalOsts();

  // In user scope the agent only knows about (and can only set) the
  // parameters an unprivileged user controls.
  const auto inScope = [this](const std::string& name) {
    if (options_.scope == TuningScope::SystemWide) {
      return true;
    }
    const manual::ParamFact* fact = manual::findParamFact(name);
    return fact != nullptr && fact->userAccessible;
  };

  if (options_.useRagExtraction) {
    for (const ExtractedParam& param : extraction().tunables) {
      if (!inScope(param.name)) {
        continue;
      }
      llm::ParamKnowledge k = param.knowledge;
      if (!options_.agent.useDescriptions) {
        // No-Descriptions ablation (§5.4): the grounded value ranges are
        // kept, but the semantic understanding falls back to model memory
        // — hallucination-prone.
        const manual::ParamFact* fact = manual::findParamFact(param.name);
        if (fact != nullptr) {
          // Without any description the model has nothing to anchor its
          // semantics on, so recall is substantially more hallucination
          // prone than an ordinary memory lookup.
          llm::ModelProfile blinded = options_.agent.model;
          blinded.hallucinationRate =
              std::max(0.25, blinded.hallucinationRate * 4.0);
          llm::ParamKnowledge recalled = llm::recallFromMemory(
              *fact, blinded, facts, options_.seed ^ 0xD15AB1EDULL);
          recalled.minValue = k.minValue;  // ranges stay grounded
          recalled.maxValue = k.maxValue;
          if (recalled.corruption == llm::CorruptionKind::WrongRange) {
            // A range corruption is moot when ranges are grounded; what is
            // lost is the description.
            recalled.corruption = llm::CorruptionKind::WrongDefinition;
          }
          k = recalled;
        }
      }
      knowledge.emplace(param.name, std::move(k));
    }
    return knowledge;
  }

  // No-RAG path: everything, descriptions and ranges, comes from memory.
  for (const std::string& name : manual::groundTruthTunables()) {
    const manual::ParamFact* fact = manual::findParamFact(name);
    if (fact == nullptr || !inScope(name)) {
      continue;
    }
    knowledge.emplace(
        name, llm::recallFromMemory(*fact, options_.agent.model, facts, options_.seed));
  }
  return knowledge;
}

TuningRunResult StellarEngine::tune(const pfs::JobSpec& job,
                                    rules::RuleSet* globalRules) {
  TuningRunResult result;
  result.workload = job.name;

  obs::Tracer* tracer = simulator_.tracer();
  obs::Tracer::Span tuneSpan = obs::beginSpan(tracer, "tuning", "tune:" + job.name);

  const pfs::PfsConfig defaultConfig{};
  const std::uint64_t seedBase = util::mix64(options_.seed, 0x7E57);

  const pfs::RunLimits limits{options_.maxSimSecondsPerRun};
  obs::CounterRegistry* registry = simulator_.counters();
  const auto noteRetriedMeasurement = [registry](const pfs::RunResult& failed) {
    if (registry != nullptr) {
      registry->counter("core.tuning.measurements_retried",
                        {{"outcome", pfs::runOutcomeName(failed.outcome)}})
          .add();
    }
  };

  // --- initial run with the default configuration --------------------------
  obs::Tracer::Span initialSpan = obs::beginSpan(tracer, "tuning", "iteration:0");
  pfs::RunResult initial = simulator_.run(job, defaultConfig, seedBase, limits);
  if (!initial.ok()) {
    // One re-measure with a perturbed seed: transient fault windows often
    // miss the retried run; a systemic fault will fail it again.
    noteRetriedMeasurement(initial);
    result.transcript.add("system", "initial run failed",
                          initial.failureReason + " — re-measuring once.");
    initial = simulator_.run(job, defaultConfig, util::mix64(seedBase, 0xF000), limits);
  }
  if (initialSpan.active()) {
    initialSpan.arg("kind", util::Json("default-run"));
    initialSpan.arg("seconds", util::Json(initial.wallSeconds));
    initialSpan.arg("outcome", util::Json(pfs::runOutcomeName(initial.outcome)));
    initialSpan.end();
  }
  if (!initial.ok()) {
    // Without a trustworthy baseline no attempt can be judged; end the run
    // cleanly instead of tuning against a corrupted reference.
    result.endReason = "initial measurement failed: " + initial.failureReason;
    result.transcript.add("system", "tuning aborted", result.endReason);
    if (registry != nullptr) {
      registry->counter("core.tuning.aborted_runs").add();
    }
    return result;
  }
  result.defaultSeconds = initial.wallSeconds;
  result.iterationSeconds.push_back(initial.wallSeconds);
  result.transcript.add("system", "initial run",
                        "default configuration: " +
                            util::formatSeconds(initial.wallSeconds));

  // --- Darshan -> dataframes -> Analysis Agent ------------------------------
  std::optional<df::DarshanTables> tables;
  std::optional<agents::AnalysisAgent> analysis;
  const agents::IoReport* reportPtr = nullptr;
  if (options_.agent.useAnalysis) {
    const darshan::DarshanLog log = darshan::characterize(job, initial, seedBase);
    tables = df::tablesFromLog(log);
    analysis.emplace(*tables, options_.analysisModel, result.meter, result.transcript);
    result.report = analysis->initialReport();
    result.hasReport = true;
    reportPtr = &result.report;
  } else {
    result.transcript.add("system", "ablation",
                          "Analysis Agent removed: no I/O report available.");
  }

  // --- cross-run memory recall (warm start) --------------------------------
  // The recalled rules join the caller's rule set for *matching only* (a
  // local copy): learned rules still merge into the caller's set below, so
  // memory never mutates the global rule asset behind the caller's back.
  std::optional<WarmStartHint> hint;
  rules::RuleSet combinedRules;
  const rules::RuleSet* agentRules = globalRules;
  if (options_.warmStart != nullptr && reportPtr != nullptr) {
    hint = options_.warmStart->warmStart(*reportPtr);
    if (hint) {
      result.warmStarted = true;
      result.warmStartSimilarity = hint->similarity;
      result.warmStartSources = hint->sourceIds;
      if (globalRules != nullptr) {
        combinedRules = *globalRules;
      }
      (void)combinedRules.merge(hint->rules.rules());
      agentRules = &combinedRules;
      result.transcript.add("system", "warm start", hint->provenance);
      if (registry != nullptr) {
        registry->counter("core.warm_start.recalled").add();
      }
    } else if (registry != nullptr) {
      registry->counter("core.warm_start.miss").add();
    }
  }

  // --- Tuning Agent tool loop -----------------------------------------------
  agents::TuningAgent agent{options_.agent, buildKnowledge(),
                            simulator_.boundsContext(), agentRules, result.meter,
                            result.transcript};
  if (hint) {
    agent.primeWarmStart(hint->config,
                         "Begin from the best configuration recorded for a "
                         "similar workload in the experience store (" +
                             hint->provenance + ").");
  }
  agent.observeInitialRun(reportPtr, initial.wallSeconds, defaultConfig);

  // Guard: tool loop is bounded by attempts + questions + repairs.
  const int maxToolCalls = options_.agent.maxAttempts * 2 + 8;
  for (int call = 0; call < maxToolCalls; ++call) {
    // One span per agent iteration: the tool decision plus whatever it
    // triggered (analysis follow-up or configuration attempt).
    obs::Tracer::Span iterSpan = obs::beginSpan(
        tracer, "tuning", "iteration:" + std::to_string(result.iterationSeconds.size()));
    const agents::TuningAgent::Action action = agent.decide();
    if (action.kind == agents::TuningAgent::ActionKind::EndTuning) {
      iterSpan.arg("kind", util::Json("end-tuning"));
      result.endReason = action.rationale;
      break;
    }
    if (action.kind == agents::TuningAgent::ActionKind::AskAnalysis) {
      iterSpan.arg("kind", util::Json("ask-analysis"));
      if (analysis) {
        const std::string answer = analysis->answerFollowUp(action.question);
        agent.observeAnalysisAnswer(action.question, answer);
      } else {
        agent.observeAnalysisAnswer(action.question, "(no analysis agent available)");
      }
      continue;
    }
    // Configuration Runner tool: validate, then execute on the system.
    if (iterSpan.active()) {
      iterSpan.arg("kind", util::Json("attempt"));
      iterSpan.arg("config", util::Json(action.config.diffAgainst(defaultConfig)));
    }
    const auto problems = pfs::validateConfig(action.config, simulator_.boundsContext());
    if (!problems.empty()) {
      iterSpan.arg("invalid", util::Json(util::join(problems, "; ")));
      agent.observeRunResult(0.0, false, util::join(problems, "; "));
      result.iterationSeconds.push_back(result.iterationSeconds.back());
      continue;
    }
    pfs::RunResult run = simulator_.run(
        job, action.config, util::mix64(seedBase, result.iterationSeconds.size()), limits);
    if (!run.ok()) {
      noteRetriedMeasurement(run);
      result.transcript.add("system", "run failed",
                            run.failureReason + " — re-measuring once.");
      run = simulator_.run(
          job, action.config,
          util::mix64(seedBase, 0xF001 + result.iterationSeconds.size()), limits);
    }
    iterSpan.arg("seconds", util::Json(run.wallSeconds));
    iterSpan.arg("outcome", util::Json(pfs::runOutcomeName(run.outcome)));
    if (!run.ok()) {
      // Both measurements failed: skip this configuration entirely. The
      // attempt is recorded as unmeasured and the best-so-far is untouched.
      if (registry != nullptr) {
        registry->counter("core.tuning.measurements_skipped").add();
      }
      agent.observeMeasurementFailure(run.failureReason);
      result.iterationSeconds.push_back(result.iterationSeconds.back());
      continue;
    }
    agent.observeRunResult(run.wallSeconds, true, {});
    result.iterationSeconds.push_back(run.wallSeconds);
  }
  if (result.endReason.empty()) {
    result.endReason = "attempt budget exhausted";
  }

  result.attempts = agent.attempts();
  result.bestConfig = agent.bestConfig();
  result.bestSeconds = agent.bestSeconds();

  // --- staleness feedback to the experience store ---------------------------
  if (hint && options_.warmStart != nullptr) {
    bool judged = false;
    bool regressed = false;
    bool confirmed = false;
    for (const agents::Attempt& attempt : result.attempts) {
      if (!attempt.warmStart) {
        continue;
      }
      if (attempt.measurementFailed) {
        break;  // never judged: a fault ate the run, not the memory's fault
      }
      judged = true;
      if (!attempt.valid) {
        // The recalled config no longer validates on this system.
        regressed = true;
      } else {
        regressed = attempt.seconds > result.defaultSeconds;
        confirmed = !regressed && result.bestSeconds > 0 &&
                    attempt.seconds <= result.bestSeconds * 1.05;
      }
      break;
    }
    if (judged) {
      options_.warmStart->observeWarmStartOutcome(result.warmStartSources,
                                                  regressed, confirmed);
      if (registry != nullptr) {
        registry->counter("core.warm_start.outcomes",
                          {{"kind", regressed   ? "regressed"
                            : confirmed ? "confirmed"
                                        : "neutral"}})
            .add();
      }
    }
  }

  // --- Reflect & Summarize ---------------------------------------------------
  result.learnedRules = agent.reflectAndSummarize();
  if (!result.learnedRules.empty()) {
    rules::RuleSet learnedSet;
    for (const rules::Rule& rule : result.learnedRules) {
      learnedSet.add(rule);
    }
    result.transcript.add("tuning-agent", "Reflect & Summarize",
                          learnedSet.toJson().dump(2));
  }
  if (globalRules != nullptr) {
    // Outcome pruning first (§4.4.2: alternatives that failed are dropped),
    // then merge the new rules.
    if (result.hasReport) {
      for (const agents::NegativeFinding& finding : agent.negativeFindings()) {
        (void)globalRules->dropNegative(finding.parameter, result.report.context,
                                        finding.direction);
      }
    }
    const std::string mergeReport = globalRules->merge(result.learnedRules);
    if (!mergeReport.empty()) {
      result.transcript.add("tuning-agent", "rule set merge", mergeReport);
    }
  }

  if (tuneSpan.active()) {
    tuneSpan.arg("default_seconds", util::Json(result.defaultSeconds));
    tuneSpan.arg("best_seconds", util::Json(result.bestSeconds));
    tuneSpan.arg("attempts", util::Json(static_cast<std::int64_t>(result.attempts.size())));
    tuneSpan.arg("end_reason", util::Json(result.endReason));
  }
  if (obs::CounterRegistry* counters = simulator_.counters()) {
    counters->counter("core.tuning.runs").add();
    counters->counter("core.tuning.attempts").add(static_cast<double>(result.attempts.size()));
    counters->histogram("core.tuning.best_speedup").observe(result.bestSpeedup());
  }
  return result;
}

std::size_t TuningRunResult::iterationsToWithin(double tolerance,
                                                double targetSeconds) const {
  const double target = targetSeconds > 0.0 ? targetSeconds : bestSeconds;
  if (target <= 0.0) {
    return attempts.size() + 1;
  }
  std::size_t iteration = 0;
  for (const agents::Attempt& attempt : attempts) {
    ++iteration;
    if (attempt.valid && !attempt.measurementFailed &&
        attempt.seconds <= target * (1.0 + tolerance)) {
      return iteration;
    }
  }
  return attempts.size() + 1;
}

util::Json TuningRunResult::toJson() const {
  util::Json root = util::Json::makeObject();
  root.set("workload", workload);
  root.set("default_seconds", defaultSeconds);
  root.set("best_seconds", bestSeconds);
  root.set("best_speedup", bestSpeedup());
  root.set("end_reason", endReason);
  root.set("best_config", bestConfig.toJson());
  root.set("warm_started", warmStarted);
  if (warmStarted) {
    root.set("warm_start_similarity", warmStartSimilarity);
    util::Json sources = util::Json::makeArray();
    for (const std::string& id : warmStartSources) {
      sources.push(id);
    }
    root.set("warm_start_sources", std::move(sources));
  }

  util::Json iterations = util::Json::makeArray();
  for (double s : iterationSeconds) {
    iterations.push(s);
  }
  root.set("iteration_seconds", std::move(iterations));

  util::Json attemptArr = util::Json::makeArray();
  for (const agents::Attempt& attempt : attempts) {
    util::Json a = util::Json::makeObject();
    a.set("config", attempt.config.toJson());
    a.set("seconds", attempt.seconds);
    a.set("valid", attempt.valid);
    if (attempt.warmStart) {
      a.set("warm_start", true);
    }
    if (!attempt.rationale.empty()) {
      a.set("rationale", attempt.rationale);
    }
    if (!attempt.error.empty()) {
      a.set("error", attempt.error);
    }
    attemptArr.push(std::move(a));
  }
  root.set("attempts", std::move(attemptArr));

  util::Json ruleArr = util::Json::makeArray();
  for (const rules::Rule& rule : learnedRules) {
    ruleArr.push(rule.toJson());
  }
  root.set("learned_rules", std::move(ruleArr));

  util::Json transcriptArr = util::Json::makeArray();
  for (const agents::TranscriptEvent& event : transcript.events()) {
    util::Json e = util::Json::makeObject();
    e.set("actor", event.actor);
    e.set("title", event.title);
    e.set("body", event.body);
    transcriptArr.push(std::move(e));
  }
  root.set("transcript", std::move(transcriptArr));

  const llm::UsageTotals totals = meter.totals();
  util::Json usage = util::Json::makeObject();
  usage.set("calls", static_cast<std::int64_t>(totals.calls));
  usage.set("input_tokens", static_cast<std::int64_t>(totals.inputTokens));
  usage.set("cached_tokens", static_cast<std::int64_t>(totals.cachedTokens));
  usage.set("output_tokens", static_cast<std::int64_t>(totals.outputTokens));
  usage.set("cache_hit_rate", totals.cacheHitRate());
  root.set("llm_usage", std::move(usage));
  return root;
}

}  // namespace stellar::core

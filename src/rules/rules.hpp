// Tuning Rule Sets (§4.4 of the paper).
//
// A rule couples a parameter with guidance and the I/O-behaviour context it
// was learned in. Rules are serialized as the JSON structure the paper
// enforces ({Parameter, Rule Description, Tuning Context} objects) plus
// machine-actionable fields this reproduction's Tuning Agent consumes.
// Merging resolves conflicts exactly as §4.4.2 specifies: direct
// contradictions remove both rules; near-duplicates with slightly different
// guidance are kept as alternatives; alternatives that produce a negative
// outcome in a later run are dropped.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace stellar::rules {

/// Workload feature signature: the "Tuning Context" of a rule, and what new
/// workloads are matched against. All shares are in [0, 1].
struct WorkloadContext {
  double metaOpShare = 0.0;      ///< metadata ops / all ops
  double readShare = 0.0;        ///< bytes read / bytes moved
  double sequentialShare = 0.0;  ///< sequential accesses / accesses
  double sharedFileShare = 0.0;  ///< bytes to multi-rank files / bytes
  double smallFileShare = 0.0;   ///< files under 1 MiB / files
  std::uint64_t dominantAccessSize = 0;  ///< bytes
  std::uint64_t fileCount = 0;
  std::uint64_t totalBytes = 0;

  /// Similarity in [0, 1]; 1 = same I/O character. Shares compare
  /// linearly; access size, file count, and volume compare on log scales.
  [[nodiscard]] double similarity(const WorkloadContext& other) const;

  /// Human-readable rendering used inside rule JSON and transcripts.
  [[nodiscard]] std::string describe() const;

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] static WorkloadContext fromJson(const util::Json& json);
};

/// Machine-actionable recommendation the guidance text encodes.
enum class Direction {
  Increase,  ///< raise substantially from the current value
  Decrease,  ///< lower substantially from the current value
  SetValue,  ///< set a specific value
  SetMax,    ///< push to the parameter's valid maximum
  SetMin,    ///< push to the parameter's valid minimum
};

[[nodiscard]] const char* directionName(Direction d) noexcept;
[[nodiscard]] std::optional<Direction> directionFromName(std::string_view name) noexcept;

struct Rule {
  std::string parameter;
  std::string description;  ///< general guidance, no application names (§4.4.1)
  WorkloadContext context;
  Direction direction = Direction::Increase;
  std::int64_t value = 0;  ///< only meaningful for SetValue
  /// Positive outcomes observed (confidence); starts at 1 when learned.
  std::int32_t confirmations = 1;
  /// Marked when a merge found a near-duplicate: alternatives are tried
  /// and pruned by outcome (§4.4.2).
  bool alternative = false;

  /// True when both rules recommend incompatible adjustments for the same
  /// parameter (the §4.4.2 "direct contradiction" case).
  [[nodiscard]] bool contradicts(const Rule& other) const;

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] static Rule fromJson(const util::Json& json);
};

class RuleSet {
 public:
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }

  void add(Rule rule) { rules_.push_back(std::move(rule)); }

  /// Rules applicable to `context` (similarity >= threshold), most similar
  /// first; optionally restricted to one parameter.
  [[nodiscard]] std::vector<const Rule*> match(const WorkloadContext& context,
                                               double threshold = 0.7,
                                               std::string_view parameter = {}) const;

  /// Merges newly learned rules into this set with the paper's conflict
  /// resolution. Returns a human-readable merge report (for transcripts).
  std::string merge(const std::vector<Rule>& newRules, double contextThreshold = 0.8);

  /// Outcome pruning: drops rules for `parameter` matching `context` whose
  /// direction equals `direction` (a tried-and-failed alternative).
  /// Returns how many rules were dropped.
  std::size_t dropNegative(std::string_view parameter, const WorkloadContext& context,
                           Direction direction, double contextThreshold = 0.8);

  [[nodiscard]] util::Json toJson() const;
  [[nodiscard]] static RuleSet fromJson(const util::Json& json);

  /// Persistence across sessions: the global Rule Set is the asset the
  /// paper accumulates over a platform's lifetime, so it round-trips to a
  /// JSON file. `loadFile` throws on unreadable/malformed input.
  void saveFile(const std::string& path) const;
  [[nodiscard]] static RuleSet loadFile(const std::string& path);

 private:
  std::vector<Rule> rules_;
};

}  // namespace stellar::rules

#include "rules/rules.hpp"

#include <algorithm>
#include <cmath>

#include "util/file.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace stellar::rules {

namespace {

double logCloseness(double a, double b, double decadesToZero) {
  // 1 when equal, decaying linearly with log10 distance.
  const double la = std::log10(std::max(1.0, a));
  const double lb = std::log10(std::max(1.0, b));
  return std::max(0.0, 1.0 - std::fabs(la - lb) / decadesToZero);
}

}  // namespace

double WorkloadContext::similarity(const WorkloadContext& other) const {
  // Weighted mix: the access pattern (sequentiality, dominant transfer
  // size) carries the most weight because it decides which knob guidance
  // transfers — stripe/RPC/readahead advice learned on a sequential
  // large-transfer workload actively hurts a random small-transfer one,
  // so those two must land below the 0.7 match threshold. The remaining
  // shares define the workload's character; the scale features refine it.
  // Weights sum to 1.
  double score = 0.0;
  score += 0.18 * (1.0 - std::fabs(metaOpShare - other.metaOpShare));
  score += 0.10 * (1.0 - std::fabs(readShare - other.readShare));
  score += 0.28 * (1.0 - std::fabs(sequentialShare - other.sequentialShare));
  score += 0.10 * (1.0 - std::fabs(sharedFileShare - other.sharedFileShare));
  score += 0.10 * (1.0 - std::fabs(smallFileShare - other.smallFileShare));
  score += 0.18 * logCloseness(static_cast<double>(dominantAccessSize),
                               static_cast<double>(other.dominantAccessSize), 4.0);
  score += 0.03 * logCloseness(static_cast<double>(fileCount),
                               static_cast<double>(other.fileCount), 5.0);
  score += 0.03 * logCloseness(static_cast<double>(totalBytes),
                               static_cast<double>(other.totalBytes), 6.0);
  return std::clamp(score, 0.0, 1.0);
}

std::string WorkloadContext::describe() const {
  std::string out;
  out += metaOpShare > 0.5 ? "metadata-dominated workload" : "data-dominated workload";
  out += "; " + util::formatDouble(readShare * 100, 0) + "% of bytes read";
  out += "; " + util::formatDouble(sequentialShare * 100, 0) + "% sequential accesses";
  out += "; " + util::formatDouble(sharedFileShare * 100, 0) + "% of bytes to shared files";
  out += "; " + util::formatDouble(smallFileShare * 100, 0) + "% small files";
  out += "; dominant access size " + util::formatBytes(dominantAccessSize);
  out += "; " + std::to_string(fileCount) + " files";
  out += "; " + util::formatBytes(totalBytes) + " moved";
  return out;
}

util::Json WorkloadContext::toJson() const {
  util::Json obj = util::Json::makeObject();
  obj.set("meta_op_share", util::Json{metaOpShare});
  obj.set("read_share", util::Json{readShare});
  obj.set("sequential_share", util::Json{sequentialShare});
  obj.set("shared_file_share", util::Json{sharedFileShare});
  obj.set("small_file_share", util::Json{smallFileShare});
  obj.set("dominant_access_size", util::Json{static_cast<std::int64_t>(dominantAccessSize)});
  obj.set("file_count", util::Json{static_cast<std::int64_t>(fileCount)});
  obj.set("total_bytes", util::Json{static_cast<std::int64_t>(totalBytes)});
  return obj;
}

WorkloadContext WorkloadContext::fromJson(const util::Json& json) {
  WorkloadContext ctx;
  ctx.metaOpShare = json.getNumber("meta_op_share");
  ctx.readShare = json.getNumber("read_share");
  ctx.sequentialShare = json.getNumber("sequential_share");
  ctx.sharedFileShare = json.getNumber("shared_file_share");
  ctx.smallFileShare = json.getNumber("small_file_share");
  ctx.dominantAccessSize =
      static_cast<std::uint64_t>(json.getNumber("dominant_access_size"));
  ctx.fileCount = static_cast<std::uint64_t>(json.getNumber("file_count"));
  ctx.totalBytes = static_cast<std::uint64_t>(json.getNumber("total_bytes"));
  return ctx;
}

const char* directionName(Direction d) noexcept {
  switch (d) {
    case Direction::Increase: return "increase";
    case Direction::Decrease: return "decrease";
    case Direction::SetValue: return "set-value";
    case Direction::SetMax: return "set-max";
    case Direction::SetMin: return "set-min";
  }
  return "?";
}

std::optional<Direction> directionFromName(std::string_view name) noexcept {
  if (name == "increase") return Direction::Increase;
  if (name == "decrease") return Direction::Decrease;
  if (name == "set-value") return Direction::SetValue;
  if (name == "set-max") return Direction::SetMax;
  if (name == "set-min") return Direction::SetMin;
  return std::nullopt;
}

namespace {

bool opposite(Direction a, Direction b) {
  const auto upward = [](Direction d) {
    return d == Direction::Increase || d == Direction::SetMax;
  };
  const auto downward = [](Direction d) {
    return d == Direction::Decrease || d == Direction::SetMin;
  };
  return (upward(a) && downward(b)) || (downward(a) && upward(b));
}

}  // namespace

bool Rule::contradicts(const Rule& other) const {
  if (parameter != other.parameter) {
    return false;
  }
  if (opposite(direction, other.direction)) {
    return true;
  }
  // Specific values more than 4x apart count as contradictory guidance.
  if (direction == Direction::SetValue && other.direction == Direction::SetValue) {
    const double a = static_cast<double>(std::max<std::int64_t>(1, value));
    const double b = static_cast<double>(std::max<std::int64_t>(1, other.value));
    return a / b > 4.0 || b / a > 4.0;
  }
  return false;
}

util::Json Rule::toJson() const {
  // The paper's enforced structure (§4.4.1) plus actionable fields.
  util::Json obj = util::Json::makeObject();
  obj.set("Parameter", util::Json{parameter});
  obj.set("Rule Description", util::Json{description});
  obj.set("Tuning Context", context.toJson());
  obj.set("direction", util::Json{directionName(direction)});
  obj.set("value", util::Json{value});
  obj.set("confirmations", util::Json{static_cast<std::int64_t>(confirmations)});
  obj.set("alternative", util::Json{alternative});
  return obj;
}

Rule Rule::fromJson(const util::Json& json) {
  Rule rule;
  rule.parameter = json.at("Parameter").asString();
  rule.description = json.at("Rule Description").asString();
  rule.context = WorkloadContext::fromJson(json.at("Tuning Context"));
  const auto dir = directionFromName(json.getString("direction", "increase"));
  if (!dir) {
    throw util::JsonError("unknown rule direction");
  }
  rule.direction = *dir;
  rule.value = static_cast<std::int64_t>(json.getNumber("value"));
  rule.confirmations = static_cast<std::int32_t>(json.getNumber("confirmations", 1));
  rule.alternative = json.getBool("alternative", false);
  return rule;
}

std::vector<const Rule*> RuleSet::match(const WorkloadContext& context, double threshold,
                                        std::string_view parameter) const {
  std::vector<std::pair<double, const Rule*>> scored;
  for (const Rule& rule : rules_) {
    if (!parameter.empty() && rule.parameter != parameter) {
      continue;
    }
    const double sim = rule.context.similarity(context);
    if (sim >= threshold) {
      scored.emplace_back(sim, &rule);
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<const Rule*> out;
  out.reserve(scored.size());
  for (const auto& [sim, rule] : scored) {
    (void)sim;
    out.push_back(rule);
  }
  return out;
}

std::string RuleSet::merge(const std::vector<Rule>& newRules, double contextThreshold) {
  std::string report;
  for (const Rule& incoming : newRules) {
    bool dropIncoming = false;
    for (auto it = rules_.begin(); it != rules_.end();) {
      Rule& existing = *it;
      const bool sameParam = existing.parameter == incoming.parameter;
      const bool sameContext =
          existing.context.similarity(incoming.context) >= contextThreshold;
      if (sameParam && sameContext) {
        if (existing.contradicts(incoming)) {
          // §4.4.2: equal context, opposite guidance — cannot tell which is
          // correct, remove both.
          report += "contradiction on " + incoming.parameter + ": removed both\n";
          it = rules_.erase(it);
          dropIncoming = true;
          continue;
        }
        if (existing.direction == incoming.direction &&
            existing.value == incoming.value) {
          // Same guidance re-learned: reinforce instead of duplicating.
          ++existing.confirmations;
          report += "reinforced " + incoming.parameter + " (confirmations " +
                    std::to_string(existing.confirmations) + ")\n";
          dropIncoming = true;
          ++it;
          continue;
        }
        // Slightly different guidance: keep both as alternatives to be
        // tried and outcome-pruned later.
        existing.alternative = true;
        report += "alternative guidance recorded for " + incoming.parameter + "\n";
        ++it;
        continue;
      }
      ++it;
    }
    if (!dropIncoming) {
      Rule copy = incoming;
      // Mark as alternative if a same-param same-context sibling remains.
      for (const Rule& existing : rules_) {
        if (existing.parameter == copy.parameter &&
            existing.context.similarity(copy.context) >= contextThreshold) {
          copy.alternative = true;
        }
      }
      rules_.push_back(std::move(copy));
    }
  }
  return report;
}

std::size_t RuleSet::dropNegative(std::string_view parameter,
                                  const WorkloadContext& context, Direction direction,
                                  double contextThreshold) {
  const std::size_t before = rules_.size();
  std::erase_if(rules_, [&](const Rule& rule) {
    return rule.parameter == parameter && rule.direction == direction &&
           rule.context.similarity(context) >= contextThreshold;
  });
  return before - rules_.size();
}

util::Json RuleSet::toJson() const {
  util::Json arr = util::Json::makeArray();
  for (const Rule& rule : rules_) {
    arr.push(rule.toJson());
  }
  return arr;
}

RuleSet RuleSet::fromJson(const util::Json& json) {
  RuleSet set;
  for (const util::Json& item : json.asArray()) {
    set.add(Rule::fromJson(item));
  }
  return set;
}

void RuleSet::saveFile(const std::string& path) const {
  util::writeFile(path, toJson().dump(2) + "\n");
}

RuleSet RuleSet::loadFile(const std::string& path) {
  try {
    return fromJson(util::Json::parse(util::readFile(path)));
  } catch (const util::JsonError& e) {
    throw util::JsonError("rules file '" + path + "': " + e.what());
  }
}

}  // namespace stellar::rules

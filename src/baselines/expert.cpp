#include "baselines/expert.hpp"

#include <stdexcept>

#include "util/units.hpp"

namespace stellar::baselines {

namespace {

pfs::PfsConfig iorLargeSequential() {
  pfs::PfsConfig cfg;
  cfg.stripe_count = -1;
  cfg.stripe_size = 16 * util::kMiB;
  cfg.osc_max_pages_per_rpc = 4096;
  cfg.osc_max_rpcs_in_flight = 32;
  cfg.osc_max_dirty_mb = 512;
  cfg.llite_max_read_ahead_mb = 1024;
  cfg.llite_max_read_ahead_per_file_mb = 512;
  return cfg;
}

pfs::PfsConfig iorSmallRandom() {
  pfs::PfsConfig cfg;
  cfg.stripe_count = -1;
  cfg.stripe_size = 1 * util::kMiB;
  cfg.osc_max_rpcs_in_flight = 64;
  cfg.osc_max_dirty_mb = 256;
  return cfg;
}

pfs::PfsConfig mdworkbench() {
  pfs::PfsConfig cfg;
  cfg.ldlm_lru_size = 400000;
  cfg.llite_statahead_max = 2048;
  cfg.mdc_max_rpcs_in_flight = 64;
  cfg.mdc_max_mod_rpcs_in_flight = 63;
  cfg.osc_max_rpcs_in_flight = 32;
  return cfg;
}

pfs::PfsConfig io500() {
  // A static compromise across the IOR-Easy/Hard and MDTest phases.
  pfs::PfsConfig cfg;
  cfg.stripe_count = -1;
  cfg.stripe_size = 4 * util::kMiB;
  cfg.osc_max_pages_per_rpc = 2048;
  cfg.osc_max_rpcs_in_flight = 32;
  cfg.osc_max_dirty_mb = 256;
  cfg.llite_max_read_ahead_mb = 512;
  cfg.llite_max_read_ahead_per_file_mb = 256;
  cfg.llite_statahead_max = 1024;
  cfg.mdc_max_rpcs_in_flight = 64;
  cfg.mdc_max_mod_rpcs_in_flight = 63;
  cfg.ldlm_lru_size = 200000;
  return cfg;
}

pfs::PfsConfig amrex() {
  pfs::PfsConfig cfg;
  cfg.stripe_count = -1;
  cfg.stripe_size = 8 * util::kMiB;
  cfg.osc_max_pages_per_rpc = 4096;
  cfg.osc_max_rpcs_in_flight = 32;
  cfg.osc_max_dirty_mb = 1024;  // compute phases overlap the flush
  return cfg;
}

pfs::PfsConfig macsio(bool large) {
  pfs::PfsConfig cfg;
  // File-per-process: one OST per file is fine; concurrency and dirty
  // budget carry the load.
  cfg.stripe_count = 1;
  cfg.stripe_size = large ? 16 * util::kMiB : 1 * util::kMiB;
  cfg.osc_max_pages_per_rpc = large ? 4096 : 1024;
  cfg.osc_max_rpcs_in_flight = 32;
  cfg.osc_max_dirty_mb = 512;
  return cfg;
}

}  // namespace

pfs::PfsConfig expertConfig(const std::string& workload) {
  if (workload == "IOR_16M") {
    return iorLargeSequential();
  }
  if (workload == "IOR_64K") {
    return iorSmallRandom();
  }
  if (workload == "MDWorkbench_2K" || workload == "MDWorkbench_8K") {
    return mdworkbench();
  }
  if (workload == "IO500") {
    return io500();
  }
  if (workload == "AMReX") {
    return amrex();
  }
  if (workload == "MACSio_512K") {
    return macsio(false);
  }
  if (workload == "MACSio_16M") {
    return macsio(true);
  }
  throw std::invalid_argument("no expert configuration for workload: " + workload);
}

std::string expertRationale(const std::string& workload) {
  if (workload == "IOR_16M") {
    return "Large sequential shared-file I/O: stripe across all OSTs, 16 MiB "
           "stripes aligned to the transfer size, maximal RPCs, deep "
           "write-back, and generous readahead for the read phase.";
  }
  if (workload == "IOR_64K") {
    return "Random 64 KiB records to a shared file: spread the file across "
           "all OSTs and raise in-flight RPCs; large RPCs and readahead do "
           "not apply to random small records.";
  }
  if (workload == "MDWorkbench_2K" || workload == "MDWorkbench_8K") {
    return "Metadata benchmark over many small files: size the lock LRU over "
           "the working set, pipeline stat scans with stat-ahead, and raise "
           "metadata RPC concurrency.";
  }
  if (workload == "IO500") {
    return "Multi-phase mix: compromise stripe size, high data and metadata "
           "concurrency, working-set-sized lock cache.";
  }
  if (workload == "AMReX") {
    return "Bursty checkpoint writes into few shared level files with "
           "compute between dumps: wide striping, big RPCs, and a deep dirty "
           "budget so the flush overlaps computation.";
  }
  if (workload == "MACSio_512K" || workload == "MACSio_16M") {
    return "File-per-process dumps: single-stripe files spread by layout "
           "round-robin, large RPCs for the object sizes, deep write-back.";
  }
  throw std::invalid_argument("no expert rationale for workload: " + workload);
}

}  // namespace stellar::baselines

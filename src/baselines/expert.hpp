// The human-expert baseline of Fig. 5: per-workload configurations an
// experienced Lustre administrator would write given the benchmark
// description and full Darshan traces (the paper gave its expert exactly
// that, with unbounded time).
#pragma once

#include <string>

#include "pfs/params.hpp"

namespace stellar::baselines {

/// Expert configuration for a workload by canonical name (IOR_64K,
/// IOR_16M, MDWorkbench_2K, MDWorkbench_8K, IO500, AMReX, MACSio_512K,
/// MACSio_16M). Throws std::invalid_argument for unknown names.
[[nodiscard]] pfs::PfsConfig expertConfig(const std::string& workload);

/// The expert's written rationale (used in reports/examples).
[[nodiscard]] std::string expertRationale(const std::string& workload);

}  // namespace stellar::baselines

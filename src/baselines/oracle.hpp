// Oracle search: coordinate descent over the 13-knob space on the
// simulator, giving the near-optimal reference EXPERIMENTS.md compares
// against. It is *not* something the paper's authors could run on real
// hardware — each evaluation is a full application execution — which is
// precisely the cost argument that motivates STELLAR.
#pragma once

#include <cstdint>
#include <vector>

#include "pfs/job.hpp"
#include "pfs/simulator.hpp"

namespace stellar::baselines {

struct OracleResult {
  pfs::PfsConfig config;
  double seconds = 0.0;
  std::size_t evaluations = 0;
};

struct OracleOptions {
  std::size_t maxSweeps = 2;        ///< passes of coordinate descent
  std::size_t candidatesPerParam = 5;
  std::uint64_t seed = 7;
  /// Starting point. Coordinate descent cannot discover improvements that
  /// need two knobs to move jointly (e.g. mdc.max_rpcs_in_flight with its
  /// dependent max_mod_rpcs_in_flight), so seeding from a strong config
  /// (the expert's) yields a proper near-optimal reference.
  pfs::PfsConfig start{};
};

/// Coordinate-descent search minimizing simulated wall time, starting from
/// the default configuration. Deterministic for a given seed.
[[nodiscard]] OracleResult oracleSearch(const pfs::PfsSimulator& simulator,
                                        const pfs::JobSpec& job,
                                        const OracleOptions& options = {});

/// The log-spaced candidate values coordinate descent sweeps for `param`.
[[nodiscard]] std::vector<std::int64_t> candidateValues(const pfs::PfsSimulator& simulator,
                                                        const pfs::PfsConfig& current,
                                                        const std::string& param,
                                                        std::size_t count);

}  // namespace stellar::baselines

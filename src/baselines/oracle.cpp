#include "baselines/oracle.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace stellar::baselines {

std::vector<std::int64_t> candidateValues(const pfs::PfsSimulator& simulator,
                                          const pfs::PfsConfig& current,
                                          const std::string& param, std::size_t count) {
  const auto bounds = pfs::paramBounds(param, current, simulator.boundsContext());
  std::vector<std::int64_t> values;
  if (!bounds) {
    return values;
  }
  if (param == "lov.stripe_count") {
    // Small discrete domain: enumerate.
    for (std::int64_t v = bounds->min; v <= bounds->max; ++v) {
      if (v != 0) {
        values.push_back(v);
      }
    }
    return values;
  }
  // Log-spaced grid from min..max (positive domains), always including the
  // endpoints and the current value.
  const double lo = static_cast<double>(std::max<std::int64_t>(bounds->min, 1));
  const double hi = static_cast<double>(std::max<std::int64_t>(bounds->max, 1));
  values.push_back(bounds->min);
  if (hi > lo && count > 2) {
    for (std::size_t i = 1; i + 1 < count; ++i) {
      const double t = static_cast<double>(i) / static_cast<double>(count - 1);
      values.push_back(static_cast<std::int64_t>(
          std::llround(std::exp(std::log(lo) + t * (std::log(hi) - std::log(lo))))));
    }
  }
  values.push_back(bounds->max);
  if (const auto cur = current.get(param)) {
    values.push_back(std::clamp(*cur, bounds->min, bounds->max));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

OracleResult oracleSearch(const pfs::PfsSimulator& simulator, const pfs::JobSpec& job,
                          const OracleOptions& options) {
  // The oracle compares candidates on the *noise-free* simulated time with
  // one fixed seed: an oracle corrupted by run-to-run noise accepts lucky
  // draws and rejects real single-knob gains, making it a beatable "floor".
  const auto evaluate = [&](const pfs::PfsConfig& cfg) {
    return simulator.run(job, cfg, options.seed).rawWallSeconds;
  };

  OracleResult best;
  best.config = pfs::clampConfig(options.start, simulator.boundsContext());
  best.seconds = evaluate(best.config);
  best.evaluations = 1;

  for (std::size_t sweep = 0; sweep < options.maxSweeps; ++sweep) {
    bool improved = false;
    for (const std::string& param : pfs::PfsConfig::tunableNames()) {
      for (const std::int64_t value :
           candidateValues(simulator, best.config, param, options.candidatesPerParam)) {
        pfs::PfsConfig candidate = best.config;
        if (!candidate.set(param, value)) {
          continue;
        }
        candidate = pfs::clampConfig(candidate, simulator.boundsContext());
        if (candidate == best.config) {
          continue;
        }
        const double seconds = evaluate(candidate);
        ++best.evaluations;
        if (seconds < best.seconds) {
          best.seconds = seconds;
          best.config = candidate;
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  return best;
}

}  // namespace stellar::baselines

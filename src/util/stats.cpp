#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace stellar::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const double x : xs) {
    total += x;
  }
  return total / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) {
    return 0.0;
  }
  const double m = mean(xs);
  double accum = 0.0;
  for (const double x : xs) {
    const double d = x - m;
    accum += d * d;
  }
  return accum / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) {
  return std::sqrt(variance(xs));
}

double median(std::vector<double> xs) {
  if (xs.empty()) {
    return 0.0;
  }
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  if (n % 2 == 1) {
    return xs[n / 2];
  }
  return 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) {
    return 0.0;
  }
  if (p <= 0.0) {
    return *std::min_element(xs.begin(), xs.end());
  }
  if (p >= 100.0) {
    return *std::max_element(xs.begin(), xs.end());
  }
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

double trimmedMean(std::vector<double> xs, double trimFraction) {
  // NaN breaks std::sort's strict weak ordering (undefined behavior) and
  // would poison the mean anyway; a failed measurement must not corrupt
  // the aggregate of its siblings.
  xs.erase(std::remove_if(xs.begin(), xs.end(),
                          [](double x) { return std::isnan(x); }),
           xs.end());
  if (xs.empty()) {
    return 0.0;
  }
  if (trimFraction < 0.0) {
    trimFraction = 0.0;
  }
  // Trimming everything is meaningless; clamp below the midpoint so at
  // least one sample (the median neighborhood) always survives.
  const double capped = std::min(trimFraction, 0.5 - 1e-9);
  std::sort(xs.begin(), xs.end());
  const auto drop =
      static_cast<std::size_t>(std::floor(static_cast<double>(xs.size()) * capped));
  const std::size_t kept = xs.size() - 2 * drop;
  double total = 0.0;
  for (std::size_t i = drop; i < drop + kept; ++i) {
    total += xs[i];
  }
  return total / static_cast<double>(kept);
}

double coefficientOfVariation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0 || xs.size() < 2) {
    return 0.0;
  }
  return stddev(xs) / std::abs(m);
}

namespace {
// Two-sided 90% Student-t critical values by degrees of freedom (1..30).
constexpr double kT90[] = {
    6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
    1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
    1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697};

double t90(std::size_t dof) {
  if (dof == 0) {
    return 0.0;
  }
  if (dof <= 30) {
    return kT90[dof - 1];
  }
  return 1.645;  // normal approximation
}
}  // namespace

double confidenceInterval90(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) {
    return 0.0;
  }
  const double se = stddev(xs) / std::sqrt(static_cast<double>(n));
  return t90(n - 1) * se;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.n = xs.size();
  if (xs.empty()) {
    return s;
  }
  s.mean = mean(xs);
  s.ci90 = confidenceInterval90(xs);
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("pearson: size mismatch");
  }
  if (xs.size() < 2) {
    return 0.0;
  }
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace stellar::util

#include "util/table.hpp"

#include <algorithm>

namespace stellar::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::addRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::string out;
  const auto emitRow = [&](const std::vector<std::string>& row) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : headers_[c];
      out += " " + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    out += "\n";
  };

  emitRow(headers_);
  out += "|";
  for (const std::size_t w : widths) {
    out += std::string(w + 2, '-') + "|";
  }
  out += "\n";
  for (const auto& row : rows_) {
    emitRow(row);
  }
  return out;
}

std::string Table::renderCsv() const {
  std::string out;
  const auto emitRow = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) {
        out += ",";
      }
      const std::string& cell = row[c];
      if (cell.find(',') != std::string::npos || cell.find('"') != std::string::npos) {
        out += '"';
        for (const char ch : cell) {
          if (ch == '"') {
            out += "\"\"";
          } else {
            out += ch;
          }
        }
        out += '"';
      } else {
        out += cell;
      }
    }
    out += "\n";
  };
  emitRow(headers_);
  for (const auto& row : rows_) {
    emitRow(row);
  }
  return out;
}

}  // namespace stellar::util

// Arithmetic expression evaluator for *dependent* parameter ranges.
//
// §4.2.2 of the paper: some parameter bounds depend on other parameters or
// on hardware facts (e.g. the maximum of llite.max_read_ahead_per_file_mb
// is half of llite.max_read_ahead_mb, whose maximum is half of client RAM).
// The offline extractor emits such bounds as expression strings; the online
// tuner evaluates them against live system values through this module.
//
// Grammar (classic recursive descent):
//   expr    := term (('+' | '-') term)*
//   term    := factor (('*' | '/') factor)*
//   factor  := NUMBER | IDENT | IDENT '(' args ')' | '(' expr ')' | '-' factor
//   args    := expr (',' expr)*
// Identifiers are resolved through a caller-supplied symbol table; the
// functions min, max, floor, ceil, log2 are built in.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace stellar::util {

class ExprError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Resolves a free identifier to its numeric value; return nullopt to make
/// evaluation fail with a named-variable error.
using SymbolResolver = std::function<std::optional<double>(std::string_view)>;

/// Parsed expression; parse once, evaluate against many symbol tables.
class Expr {
 public:
  /// Parses the expression text; throws ExprError on syntax errors.
  [[nodiscard]] static Expr parse(std::string_view text);

  /// Evaluates; throws ExprError on unresolved identifiers or division by 0.
  [[nodiscard]] double evaluate(const SymbolResolver& resolver) const;

  /// Convenience: evaluate an expression with no free variables.
  [[nodiscard]] double evaluateConstant() const;

  /// Free identifiers referenced by the expression (deduplicated).
  [[nodiscard]] const std::vector<std::string>& variables() const noexcept {
    return variables_;
  }

  [[nodiscard]] const std::string& text() const noexcept { return text_; }

 private:
  // Compact postfix program; each step is either push-constant,
  // push-variable, or apply-operation.
  enum class Op : std::uint8_t {
    PushConst,
    PushVar,
    Add,
    Sub,
    Mul,
    Div,
    Neg,
    Min,
    Max,
    Floor,
    Ceil,
    Log2,
  };
  struct Step {
    Op op;
    double constant = 0.0;
    std::uint32_t varIndex = 0;
  };

  std::string text_;
  std::vector<Step> program_;
  std::vector<std::string> variables_;

  friend class ExprParser;
};

/// One-shot helper: parse and evaluate.
[[nodiscard]] double evaluateExpression(std::string_view text, const SymbolResolver& resolver);

}  // namespace stellar::util

// Summary statistics used by the experiment harness.
//
// The paper reports the mean of eight repeats with a 90% confidence
// interval; confidenceInterval90 reproduces that (Student-t based).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace stellar::util {

[[nodiscard]] double mean(std::span<const double> xs);
[[nodiscard]] double variance(std::span<const double> xs);  // sample (n-1)
[[nodiscard]] double stddev(std::span<const double> xs);
[[nodiscard]] double median(std::vector<double> xs);  // by value: sorts a copy

/// Linear-interpolation percentile, p in [0, 100].
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Mean after dropping floor(n * trimFraction) samples from EACH end of
/// the sorted data (trimFraction in [0, 0.5)). With small n the trim can
/// round to zero dropped samples, degenerating to the plain mean; a
/// single planted outlier among >= 4 samples is always discarded at
/// trimFraction >= 0.25. Returns 0 for empty input.
[[nodiscard]] double trimmedMean(std::vector<double> xs, double trimFraction);

/// Coefficient of variation (stddev / mean); 0 when mean is 0 or n < 2.
[[nodiscard]] double coefficientOfVariation(std::span<const double> xs);

/// Half-width of the two-sided 90% confidence interval of the mean,
/// using Student-t critical values (exact table for small n, normal
/// approximation beyond). Returns 0 for n < 2.
[[nodiscard]] double confidenceInterval90(std::span<const double> xs);

/// Mean and CI bundled; what every figure harness reports per bar/point.
struct Summary {
  double mean = 0.0;
  double ci90 = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::size_t n = 0;
};

[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Pearson correlation; used in tests to validate monotone responses.
[[nodiscard]] double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace stellar::util

// Minimal whole-file I/O helpers (rule-set persistence, trace archiving).
#pragma once

#include <string>
#include <vector>

namespace stellar::util {

/// Reads an entire file; throws std::runtime_error if unreadable.
[[nodiscard]] std::string readFile(const std::string& path);

/// Writes (truncating) an entire file; throws std::runtime_error on error.
void writeFile(const std::string& path, const std::string& contents);

[[nodiscard]] bool fileExists(const std::string& path);

/// Creates the parent directory of `path` (and any missing ancestors).
/// No-op when the parent already exists or the path has no directory part.
void ensureParentDir(const std::string& path);

/// Full paths of the regular files directly inside `dir`, sorted by name
/// for deterministic iteration. A missing directory yields an empty list
/// (callers treat "no shards yet" and "no directory yet" the same).
[[nodiscard]] std::vector<std::string> listDir(const std::string& dir);

}  // namespace stellar::util

// Minimal whole-file I/O helpers (rule-set persistence, trace archiving).
#pragma once

#include <string>

namespace stellar::util {

/// Reads an entire file; throws std::runtime_error if unreadable.
[[nodiscard]] std::string readFile(const std::string& path);

/// Writes (truncating) an entire file; throws std::runtime_error on error.
void writeFile(const std::string& path, const std::string& contents);

[[nodiscard]] bool fileExists(const std::string& path);

/// Creates the parent directory of `path` (and any missing ancestors).
/// No-op when the parent already exists or the path has no directory part.
void ensureParentDir(const std::string& path);

}  // namespace stellar::util

// ASCII table renderer used by the figure/table harnesses in bench/ to
// print the rows the paper's plots report.
#pragma once

#include <string>
#include <vector>

namespace stellar::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> cells);

  /// Renders with column-aligned pipes and a header separator.
  [[nodiscard]] std::string render() const;

  /// Renders as comma-separated values (quotes cells containing commas).
  [[nodiscard]] std::string renderCsv() const;

  [[nodiscard]] std::size_t rowCount() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stellar::util

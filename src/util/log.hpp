// Leveled logger. Agent transcripts (Fig 10) are emitted through a separate
// transcript facility in src/agents; this logger covers diagnostics only.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace stellar::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-global minimum level; defaults to Warn so tests/benches stay quiet.
void setLogLevel(LogLevel level) noexcept;
[[nodiscard]] LogLevel logLevel() noexcept;

/// Writes one formatted line to stderr if `level` passes the filter.
void logLine(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style helper: LogStream{LogLevel::Info, "pfs"} << "x=" << x;
class LogStream {
 public:
  LogStream(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  ~LogStream() { logLine(level_, component_, buffer_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    buffer_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream buffer_;
};

}  // namespace stellar::util

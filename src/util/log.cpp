#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace stellar::util {

namespace {
std::atomic<LogLevel> gLevel{LogLevel::Warn};
std::mutex gWriteMutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) noexcept {
  gLevel.store(level, std::memory_order_relaxed);
}

LogLevel logLevel() noexcept {
  return gLevel.load(std::memory_order_relaxed);
}

void logLine(LogLevel level, std::string_view component, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(logLevel())) {
    return;
  }
  const std::lock_guard<std::mutex> lock{gWriteMutex};
  std::fprintf(stderr, "[%s] %.*s: %.*s\n", levelName(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

}  // namespace stellar::util

#include "util/units.hpp"

#include <cstdio>

namespace stellar::util {

std::string formatBytes(std::uint64_t bytes) {
  const char* suffix = "B";
  double value = static_cast<double>(bytes);
  if (bytes >= kTiB) {
    value /= static_cast<double>(kTiB);
    suffix = "TiB";
  } else if (bytes >= kGiB) {
    value /= static_cast<double>(kGiB);
    suffix = "GiB";
  } else if (bytes >= kMiB) {
    value /= static_cast<double>(kMiB);
    suffix = "MiB";
  } else if (bytes >= kKiB) {
    value /= static_cast<double>(kKiB);
    suffix = "KiB";
  }
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.1f %s", value, suffix);
  return buf;
}

std::string formatSeconds(double seconds) {
  char buf[48];
  if (seconds >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.1f us", seconds * 1e6);
  }
  return buf;
}

}  // namespace stellar::util

// Clang thread-safety annotations plus annotated mutex wrappers.
//
// The repo's shared mutable state (ThreadPool queue, experience store
// records, counter registry cells, LLM circuit breakers) is guarded by
// mutexes whose locking discipline was, until stellar-lint (DESIGN.md §7),
// enforced only by convention and TSan's luck. These macros let clang's
// -Wthread-safety analysis prove the discipline at compile time; on GCC
// (which has no such analysis) they expand to nothing, so the annotations
// are free documentation.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// members GUARDED_BY(std::mutex) would make every std::lock_guard use
// appear unlocked to the analysis. util::Mutex / util::MutexLock are thin
// annotated wrappers (the Abseil pattern) that the analysis understands;
// they cost nothing over the raw types.
#pragma once

#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define STELLAR_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define STELLAR_THREAD_ANNOTATION(x)  // no-op on GCC/MSVC
#endif

#define STELLAR_CAPABILITY(x) STELLAR_THREAD_ANNOTATION(capability(x))
#define STELLAR_SCOPED_CAPABILITY STELLAR_THREAD_ANNOTATION(scoped_lockable)
#define STELLAR_GUARDED_BY(x) STELLAR_THREAD_ANNOTATION(guarded_by(x))
#define STELLAR_PT_GUARDED_BY(x) STELLAR_THREAD_ANNOTATION(pt_guarded_by(x))
#define STELLAR_REQUIRES(...) \
  STELLAR_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define STELLAR_EXCLUDES(...) \
  STELLAR_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define STELLAR_ACQUIRE(...) \
  STELLAR_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define STELLAR_RELEASE(...) \
  STELLAR_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define STELLAR_TRY_ACQUIRE(...) \
  STELLAR_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define STELLAR_RETURN_CAPABILITY(x) STELLAR_THREAD_ANNOTATION(lock_returned(x))
#define STELLAR_NO_THREAD_SAFETY_ANALYSIS \
  STELLAR_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace stellar::util {

/// std::mutex with capability annotations the analysis can track.
class STELLAR_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() STELLAR_ACQUIRE() { m_.lock(); }
  void unlock() STELLAR_RELEASE() { m_.unlock(); }
  bool try_lock() STELLAR_TRY_ACQUIRE(true) { return m_.try_lock(); }

  /// Escape hatch for condition-variable waits (std::condition_variable_any
  /// needs a BasicLockable; the waiting function opts out of analysis).
  [[nodiscard]] std::mutex& native() noexcept { return m_; }

 private:
  std::mutex m_;
};

/// RAII lock the analysis tracks like std::lock_guard.
class STELLAR_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) STELLAR_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() STELLAR_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace stellar::util

#include "util/file.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stellar::util {

std::string readFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("cannot read file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("error while reading file: " + path);
  }
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << contents;
  if (!out) {
    throw std::runtime_error("error while writing file: " + path);
  }
}

bool fileExists(const std::string& path) {
  return std::ifstream{path}.good();
}

std::vector<std::string> listDir(const std::string& dir) {
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::directory_iterator it{dir, ec};
  if (ec) {
    return out;  // missing/unreadable directory: nothing to list
  }
  for (const std::filesystem::directory_entry& entry : it) {
    if (entry.is_regular_file(ec) && !ec) {
      out.push_back(entry.path().string());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ensureParentDir(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path{path}.parent_path();
  if (parent.empty()) {
    return;
  }
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);
  if (ec) {
    throw std::runtime_error("cannot create directory " + parent.string() +
                             ": " + ec.message());
  }
}

}  // namespace stellar::util

#include "util/file.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace stellar::util {

std::string readFile(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) {
    throw std::runtime_error("cannot read file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw std::runtime_error("error while reading file: " + path);
  }
  return buffer.str();
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) {
    throw std::runtime_error("cannot open file for writing: " + path);
  }
  out << contents;
  if (!out) {
    throw std::runtime_error("error while writing file: " + path);
  }
}

bool fileExists(const std::string& path) {
  return std::ifstream{path}.good();
}

}  // namespace stellar::util

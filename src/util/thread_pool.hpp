// Fixed-size worker pool used by the experiment harness to run the
// independent repeats of a configuration (the paper averages 8 runs per
// case) in parallel. Simulations themselves are single-threaded and
// deterministic; parallelism lives only at the repeat/sweep level, so
// results are identical regardless of worker count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "util/thread_annotations.hpp"

namespace stellar::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules a task; the returned future rethrows task exceptions.
  template <typename F>
  [[nodiscard]] auto submit(F&& task) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto packaged = std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> result = packaged->get_future();
    {
      const MutexLock lock{mutex_};
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    available_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, count) across the pool and waits for all.
  void parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] std::size_t threadCount() const noexcept { return workers_.size(); }

 private:
  /// Opted out of the thread-safety analysis: the condition-variable wait
  /// needs the raw std::mutex (mutex_.native()), which the analysis cannot
  /// see through. The lock discipline here is the textbook wait loop.
  void workerLoop() STELLAR_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_ STELLAR_GUARDED_BY(mutex_);
  Mutex mutex_;
  std::condition_variable available_;
  bool stopping_ STELLAR_GUARDED_BY(mutex_) = false;
};

}  // namespace stellar::util

#include "util/expr.hpp"

#include <cctype>
#include <cmath>

namespace stellar::util {

class ExprParser {
 public:
  explicit ExprParser(std::string_view text, Expr& out) : text_(text), out_(out) {}

  void run() {
    parseExpr();
    skipWhitespace();
    if (pos_ != text_.size()) {
      throw ExprError("unexpected trailing characters in expression: " +
                      std::string{text_});
    }
  }

 private:
  void skipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skipWhitespace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  void parseExpr() {
    parseTerm();
    while (true) {
      if (consume('+')) {
        parseTerm();
        emit(Expr::Op::Add);
      } else if (consume('-')) {
        parseTerm();
        emit(Expr::Op::Sub);
      } else {
        return;
      }
    }
  }

  void parseTerm() {
    parseFactor();
    while (true) {
      if (consume('*')) {
        parseFactor();
        emit(Expr::Op::Mul);
      } else if (consume('/')) {
        parseFactor();
        emit(Expr::Op::Div);
      } else {
        return;
      }
    }
  }

  void parseFactor() {
    skipWhitespace();
    if (pos_ >= text_.size()) {
      throw ExprError("unexpected end of expression: " + std::string{text_});
    }
    const char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      parseExpr();
      if (!consume(')')) {
        throw ExprError("missing ')' in expression: " + std::string{text_});
      }
      return;
    }
    if (c == '-') {
      ++pos_;
      parseFactor();
      emit(Expr::Op::Neg);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      parseNumber();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      parseIdentOrCall();
      return;
    }
    throw ExprError(std::string("unexpected character '") + c + "' in expression: " +
                    std::string{text_});
  }

  void parseNumber() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      // Permit exponent sign directly after e/E.
      if ((text_[pos_] == 'e' || text_[pos_] == 'E') && pos_ + 1 < text_.size() &&
          (text_[pos_ + 1] == '+' || text_[pos_ + 1] == '-')) {
        ++pos_;
      }
      ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    try {
      out_.program_.push_back({Expr::Op::PushConst, std::stod(token), 0});
    } catch (const std::exception&) {
      throw ExprError("invalid number '" + token + "' in expression");
    }
  }

  void parseIdentOrCall() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '_' || text_[pos_] == '.')) {
      ++pos_;
    }
    const std::string name{text_.substr(start, pos_ - start)};
    if (consume('(')) {
      int argc = 0;
      if (!consume(')')) {
        do {
          parseExpr();
          ++argc;
        } while (consume(','));
        if (!consume(')')) {
          throw ExprError("missing ')' after arguments of " + name);
        }
      }
      emitCall(name, argc);
      return;
    }
    // Plain variable reference.
    std::uint32_t index = 0;
    for (; index < out_.variables_.size(); ++index) {
      if (out_.variables_[index] == name) {
        break;
      }
    }
    if (index == out_.variables_.size()) {
      out_.variables_.push_back(name);
    }
    out_.program_.push_back({Expr::Op::PushVar, 0.0, index});
  }

  void emitCall(const std::string& name, int argc) {
    const auto requireArgs = [&](int n) {
      if (argc != n) {
        throw ExprError(name + " expects " + std::to_string(n) + " argument(s)");
      }
    };
    if (name == "min") {
      requireArgs(2);
      emit(Expr::Op::Min);
    } else if (name == "max") {
      requireArgs(2);
      emit(Expr::Op::Max);
    } else if (name == "floor") {
      requireArgs(1);
      emit(Expr::Op::Floor);
    } else if (name == "ceil") {
      requireArgs(1);
      emit(Expr::Op::Ceil);
    } else if (name == "log2") {
      requireArgs(1);
      emit(Expr::Op::Log2);
    } else {
      throw ExprError("unknown function: " + name);
    }
  }

  void emit(Expr::Op op) { out_.program_.push_back({op, 0.0, 0}); }

  std::string_view text_;
  std::size_t pos_ = 0;
  Expr& out_;
};

Expr Expr::parse(std::string_view text) {
  Expr expr;
  expr.text_ = std::string{text};
  ExprParser parser{text, expr};
  parser.run();
  return expr;
}

double Expr::evaluate(const SymbolResolver& resolver) const {
  std::vector<double> stack;
  stack.reserve(8);
  const auto pop = [&stack]() {
    const double v = stack.back();
    stack.pop_back();
    return v;
  };
  for (const Step& step : program_) {
    switch (step.op) {
      case Op::PushConst:
        stack.push_back(step.constant);
        break;
      case Op::PushVar: {
        const std::string& name = variables_[step.varIndex];
        const auto value = resolver ? resolver(name) : std::nullopt;
        if (!value) {
          throw ExprError("unresolved variable: " + name);
        }
        stack.push_back(*value);
        break;
      }
      case Op::Add: {
        const double b = pop();
        stack.back() += b;
        break;
      }
      case Op::Sub: {
        const double b = pop();
        stack.back() -= b;
        break;
      }
      case Op::Mul: {
        const double b = pop();
        stack.back() *= b;
        break;
      }
      case Op::Div: {
        const double b = pop();
        if (b == 0.0) {
          throw ExprError("division by zero in: " + text_);
        }
        stack.back() /= b;
        break;
      }
      case Op::Neg:
        stack.back() = -stack.back();
        break;
      case Op::Min: {
        const double b = pop();
        stack.back() = std::min(stack.back(), b);
        break;
      }
      case Op::Max: {
        const double b = pop();
        stack.back() = std::max(stack.back(), b);
        break;
      }
      case Op::Floor:
        stack.back() = std::floor(stack.back());
        break;
      case Op::Ceil:
        stack.back() = std::ceil(stack.back());
        break;
      case Op::Log2:
        if (stack.back() <= 0.0) {
          throw ExprError("log2 of non-positive value in: " + text_);
        }
        stack.back() = std::log2(stack.back());
        break;
    }
  }
  if (stack.size() != 1) {
    throw ExprError("malformed expression program: " + text_);
  }
  return stack.back();
}

double Expr::evaluateConstant() const {
  return evaluate([](std::string_view) -> std::optional<double> { return std::nullopt; });
}

double evaluateExpression(std::string_view text, const SymbolResolver& resolver) {
  return Expr::parse(text).evaluate(resolver);
}

}  // namespace stellar::util

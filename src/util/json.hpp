// Minimal JSON value model, parser, and writer.
//
// STELLAR's Rule Sets are JSON-structured by design (§4.4.1: the LLM must
// emit a list of {Parameter, Rule Description, Tuning Context} objects), so
// the reproduction needs a real JSON layer; no external dependency is used.
//
// The object type preserves insertion order (rules keep their authored
// order through merge cycles), which std::map would not.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace stellar::util {

class Json;

/// Error thrown on malformed documents or wrong-type access.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;  // insertion-ordered

  Json() = default;  // null
  Json(std::nullptr_t) {}
  Json(bool b) : type_(Type::Bool), bool_(b) {}
  Json(double d) : type_(Type::Number), number_(d) {}
  Json(int i) : type_(Type::Number), number_(i) {}
  Json(std::int64_t i) : type_(Type::Number), number_(static_cast<double>(i)) {}
  Json(const char* s) : type_(Type::String), string_(s) {}
  Json(std::string s) : type_(Type::String), string_(std::move(s)) {}
  Json(Array a) : type_(Type::Array), array_(std::move(a)) {}
  Json(Object o) : type_(Type::Object), object_(std::move(o)) {}

  [[nodiscard]] static Json makeArray() { return Json{Array{}}; }
  [[nodiscard]] static Json makeObject() { return Json{Object{}}; }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool isNull() const noexcept { return type_ == Type::Null; }
  [[nodiscard]] bool isBool() const noexcept { return type_ == Type::Bool; }
  [[nodiscard]] bool isNumber() const noexcept { return type_ == Type::Number; }
  [[nodiscard]] bool isString() const noexcept { return type_ == Type::String; }
  [[nodiscard]] bool isArray() const noexcept { return type_ == Type::Array; }
  [[nodiscard]] bool isObject() const noexcept { return type_ == Type::Object; }

  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  [[nodiscard]] std::int64_t asInt() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const Array& asArray() const;
  [[nodiscard]] Array& asArray();
  [[nodiscard]] const Object& asObject() const;
  [[nodiscard]] Object& asObject();

  /// Object member lookup; throws JsonError if missing or not an object.
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// True if this is an object containing `key`.
  [[nodiscard]] bool contains(std::string_view key) const noexcept;

  /// Object member lookup with a fallback default.
  [[nodiscard]] std::string getString(std::string_view key, std::string fallback = {}) const;
  [[nodiscard]] double getNumber(std::string_view key, double fallback = 0.0) const;
  [[nodiscard]] bool getBool(std::string_view key, bool fallback = false) const;

  /// Sets (or replaces) an object member. Throws if not an object.
  void set(std::string key, Json value);

  /// Appends to an array. Throws if not an array.
  void push(Json value);

  /// Serializes; indent < 0 yields compact output.
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Parses a complete document; throws JsonError carrying 1-based
  /// line/column (plus byte offset) of the first syntax error.
  [[nodiscard]] static Json parse(std::string_view text);

  [[nodiscard]] bool operator==(const Json& other) const;

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Type type_ = Type::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace stellar::util

#include "util/json.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace stellar::util {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  /// 1-based line/column diagnostics: "JSON error at line 3, column 14
  /// (offset 41): expected ':'" — callers surface this to users whose
  /// input came from hand-edited files.
  [[noreturn]] void fail(std::string_view what, std::size_t pos) const {
    std::size_t line = 1;
    std::size_t column = 1;
    const std::size_t clamped = std::min(pos, text_.size());
    for (std::size_t i = 0; i < clamped; ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw JsonError("JSON error at line " + std::to_string(line) + ", column " +
                    std::to_string(column) + " (offset " + std::to_string(pos) +
                    "): " + std::string{what});
  }

  Json parseDocument() {
    Json value = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters", pos_);
    }
    return value;
  }

 private:
  void skipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input", pos_);
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'", pos_ - 1);
    }
  }

  bool consumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  /// Nesting cap for the recursive-descent parser. Without it a
  /// deep-nesting bomb ("[[[[...") overflows the stack instead of
  /// reporting a JsonError; 256 is far beyond any legitimate document in
  /// this repo while keeping worst-case stack use trivially safe.
  static constexpr int kMaxDepth = 256;

  Json parseValue() {
    skipWhitespace();
    if (depth_ >= kMaxDepth) {
      fail("nesting too deep", pos_);
    }
    const char c = peek();
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return Json{parseString()};
      case 't':
        if (consumeLiteral("true")) return Json{true};
        fail("invalid literal", pos_);
      case 'f':
        if (consumeLiteral("false")) return Json{false};
        fail("invalid literal", pos_);
      case 'n':
        if (consumeLiteral("null")) return Json{};
        fail("invalid literal", pos_);
      default:
        return parseNumber();
    }
  }

  Json parseObject() {
    ++depth_;
    expect('{');
    Json::Object members;
    skipWhitespace();
    if (peek() == '}') {
      ++pos_;
      return Json{std::move(members)};
    }
    while (true) {
      skipWhitespace();
      std::string key = parseString();
      skipWhitespace();
      expect(':');
      members.emplace_back(std::move(key), parseValue());
      skipWhitespace();
      const char c = take();
      if (c == '}') {
        break;
      }
      if (c != ',') {
        fail("expected ',' or '}' in object", pos_ - 1);
      }
    }
    --depth_;
    return Json{std::move(members)};
  }

  Json parseArray() {
    ++depth_;
    expect('[');
    Json::Array items;
    skipWhitespace();
    if (peek() == ']') {
      ++pos_;
      return Json{std::move(items)};
    }
    while (true) {
      items.push_back(parseValue());
      skipWhitespace();
      const char c = take();
      if (c == ']') {
        break;
      }
      if (c != ',') {
        fail("expected ',' or ']' in array", pos_ - 1);
      }
    }
    --depth_;
    return Json{std::move(items)};
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        break;
      }
      if (c == '\\') {
        const char e = take();
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = take();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("invalid \\u escape", pos_ - 1);
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are rare in
            // rule text; lone surrogates are encoded as-is).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            fail("invalid escape", pos_ - 1);
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  Json parseNumber() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token{text_.substr(start, pos_ - start)};
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      fail("invalid number", start);
    }
    return Json{v};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

void escapeInto(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

bool Json::asBool() const {
  if (type_ != Type::Bool) {
    throw JsonError("not a bool");
  }
  return bool_;
}

double Json::asNumber() const {
  if (type_ != Type::Number) {
    throw JsonError("not a number");
  }
  return number_;
}

std::int64_t Json::asInt() const {
  return static_cast<std::int64_t>(std::llround(asNumber()));
}

const std::string& Json::asString() const {
  if (type_ != Type::String) {
    throw JsonError("not a string");
  }
  return string_;
}

const Json::Array& Json::asArray() const {
  if (type_ != Type::Array) {
    throw JsonError("not an array");
  }
  return array_;
}

Json::Array& Json::asArray() {
  if (type_ != Type::Array) {
    throw JsonError("not an array");
  }
  return array_;
}

const Json::Object& Json::asObject() const {
  if (type_ != Type::Object) {
    throw JsonError("not an object");
  }
  return object_;
}

Json::Object& Json::asObject() {
  if (type_ != Type::Object) {
    throw JsonError("not an object");
  }
  return object_;
}

const Json& Json::at(std::string_view key) const {
  for (const auto& [k, v] : asObject()) {
    if (k == key) {
      return v;
    }
  }
  throw JsonError("missing key: " + std::string{key});
}

bool Json::contains(std::string_view key) const noexcept {
  if (type_ != Type::Object) {
    return false;
  }
  for (const auto& [k, v] : object_) {
    (void)v;
    if (k == key) {
      return true;
    }
  }
  return false;
}

std::string Json::getString(std::string_view key, std::string fallback) const {
  if (contains(key) && at(key).isString()) {
    return at(key).asString();
  }
  return fallback;
}

double Json::getNumber(std::string_view key, double fallback) const {
  if (contains(key) && at(key).isNumber()) {
    return at(key).asNumber();
  }
  return fallback;
}

bool Json::getBool(std::string_view key, bool fallback) const {
  if (contains(key) && at(key).isBool()) {
    return at(key).asBool();
  }
  return fallback;
}

void Json::set(std::string key, Json value) {
  for (auto& [k, v] : asObject()) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  object_.emplace_back(std::move(key), std::move(value));
}

void Json::push(Json value) {
  asArray().push_back(std::move(value));
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent >= 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
    }
  };
  switch (type_) {
    case Type::Null:
      out += "null";
      break;
    case Type::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Type::Number: {
      if (std::isfinite(number_) && number_ == std::floor(number_) &&
          std::fabs(number_) < 9.0e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(number_));
        out += buf;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.12g", number_);
        out += buf;
      }
      break;
    }
    case Type::String:
      escapeInto(out, string_);
      break;
    case Type::Array: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        array_[i].dumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      out.push_back(']');
      break;
    }
    case Type::Object: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) {
          out.push_back(',');
        }
        newline(depth + 1);
        escapeInto(out, object_[i].first);
        out += indent >= 0 ? ": " : ":";
        object_[i].second.dumpTo(out, indent, depth + 1);
      }
      if (!object_.empty()) {
        newline(depth);
      }
      out.push_back('}');
      break;
    }
  }
}

Json Json::parse(std::string_view text) {
  Parser parser{text};
  return parser.parseDocument();
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) {
    return false;
  }
  switch (type_) {
    case Type::Null: return true;
    case Type::Bool: return bool_ == other.bool_;
    case Type::Number: return number_ == other.number_;
    case Type::String: return string_ == other.string_;
    case Type::Array: return array_ == other.array_;
    case Type::Object: return object_ == other.object_;
  }
  return false;
}

}  // namespace stellar::util

#include "util/rng.hpp"

#include <cmath>

namespace stellar::util {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // SplitMix64 expansion of the seed into the full 256-bit state, per the
  // xoshiro reference implementation guidance.
  std::uint64_t sm = seed;
  for (auto& word : s_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
  std::uint64_t draw = next();
  while (draw >= limit) {
    draw = next();
  }
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() noexcept {
  if (hasCachedNormal_) {
    hasCachedNormal_ = false;
    return cachedNormal_;
  }
  // Box-Muller; u1 nudged away from zero to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cachedNormal_ = r * std::sin(theta);
  hasCachedNormal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormalNoise(double sigma) noexcept {
  // exp(N(-sigma^2/2, sigma)) has expectation exactly 1.
  return std::exp(normal(-0.5 * sigma * sigma, sigma));
}

bool Rng::chance(double probability) noexcept {
  if (probability <= 0.0) {
    return false;
  }
  if (probability >= 1.0) {
    return true;
  }
  return uniform() < probability;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform();
  if (u < 1e-300) {
    u = 1e-300;
  }
  return -mean * std::log(u);
}

Rng Rng::fork() noexcept {
  return Rng{next()};
}

}  // namespace stellar::util

// Byte-size and time units used throughout the STELLAR reproduction.
//
// All byte quantities in the codebase are IEC (powers of two) because that
// is what Lustre's tunables use (e.g. max_dirty_mb is in MiB).
#pragma once

#include <cstdint>
#include <string>

namespace stellar::util {

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;
inline constexpr std::uint64_t kTiB = 1024ULL * kGiB;

/// Lustre client page size; RPC sizes are expressed in pages of this size.
inline constexpr std::uint64_t kPageSize = 4 * kKiB;

/// Renders a byte count as a short human-readable string ("64.0 KiB").
[[nodiscard]] std::string formatBytes(std::uint64_t bytes);

/// Renders a duration in seconds as "123.4 s" / "56.7 ms" as appropriate.
[[nodiscard]] std::string formatSeconds(double seconds);

}  // namespace stellar::util

#include "util/strings.hpp"

#include <cctype>
#include <cstdio>

namespace stellar::util {

std::string toLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1])) != 0) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool containsIgnoreCase(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) {
    return true;
  }
  if (haystack.size() < needle.size()) {
    return false;
  }
  const auto lowerEq = [](char a, char b) {
    return std::tolower(static_cast<unsigned char>(a)) ==
           std::tolower(static_cast<unsigned char>(b));
  };
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t j = 0; j < needle.size(); ++j) {
      if (!lowerEq(haystack[i + j], needle[j])) {
        match = false;
        break;
      }
    }
    if (match) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
      ++i;
    }
    const std::size_t start = i;
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) == 0) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(s.substr(start, i - start));
    }
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string replaceAll(std::string_view s, std::string_view from, std::string_view to) {
  if (from.empty()) {
    return std::string{s};
  }
  std::string out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    const std::size_t hit = s.find(from, pos);
    if (hit == std::string_view::npos) {
      out += s.substr(pos);
      break;
    }
    out += s.substr(pos, hit - pos);
    out += to;
    pos = hit + from.size();
  }
  return out;
}

std::string formatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace stellar::util

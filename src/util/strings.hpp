// Small string helpers shared across modules (parsers, the RAG tokenizer,
// the report writers). Kept allocation-conscious: views in, strings out
// only where ownership is needed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stellar::util {

[[nodiscard]] std::string toLower(std::string_view s);
[[nodiscard]] std::string_view trim(std::string_view s);
[[nodiscard]] bool startsWith(std::string_view s, std::string_view prefix);
[[nodiscard]] bool endsWith(std::string_view s, std::string_view suffix);
[[nodiscard]] bool containsIgnoreCase(std::string_view haystack, std::string_view needle);

/// Splits on a single delimiter character; empty fields preserved.
[[nodiscard]] std::vector<std::string> split(std::string_view s, char delim);

/// Splits on any whitespace run; no empty fields.
[[nodiscard]] std::vector<std::string> splitWhitespace(std::string_view s);

[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Replaces every occurrence of `from` with `to`.
[[nodiscard]] std::string replaceAll(std::string_view s, std::string_view from,
                                     std::string_view to);

/// printf-style double formatting with fixed decimals.
[[nodiscard]] std::string formatDouble(double v, int decimals);

}  // namespace stellar::util

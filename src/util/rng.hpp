// Deterministic random number generation.
//
// Every stochastic element of the reproduction (simulator noise, agent
// decision jitter, hallucination sampling, workload randomization) draws
// from an Rng seeded explicitly, so whole experiments replay bit-for-bit.
//
// The generator is xoshiro256** seeded through SplitMix64, the standard
// recipe recommended by the xoshiro authors; we avoid std::mt19937 because
// its state is large and its seeding via a single word is weak.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace stellar::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless 64-bit mix of two words; handy for deriving sub-seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b * 0x9E3779B97F4A7C15ULL);
  return splitmix64(s);
}

/// Deterministic FNV-1a string hash. Unlike std::hash<std::string>, the
/// value is fixed across standard libraries and process runs, so it is
/// safe to derive reproducible seeds from names (tests, sharding).
[[nodiscard]] constexpr std::uint64_t hash64(std::string_view text) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : text) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// xoshiro256** pseudo-random generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x57E11A12ULL) noexcept;

  /// Uniform 64-bit word.
  [[nodiscard]] std::uint64_t next() noexcept;

  // UniformRandomBitGenerator interface (usable with <random> adapters).
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box-Muller (cached second deviate).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Lognormal multiplicative noise factor with E[x] == 1.
  /// sigma is the standard deviation of the underlying normal.
  [[nodiscard]] double lognormalNoise(double sigma) noexcept;

  /// Bernoulli draw.
  [[nodiscard]] bool chance(double probability) noexcept;

  /// Exponential deviate with the given mean.
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// rank / agent its own stream without correlating sequences.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double cachedNormal_ = 0.0;
  bool hasCachedNormal_ = false;
};

}  // namespace stellar::util

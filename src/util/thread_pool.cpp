#include "util/thread_pool.hpp"

#include <algorithm>

namespace stellar::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock{mutex_};
    stopping_ = true;
  }
  available_.notify_all();
  for (auto& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock{mutex_.native()};
      available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallelFor(std::size_t count, const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> pending;
  pending.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pending.push_back(submit([&fn, i] { fn(i); }));
  }
  // Every task captures `&fn` (and callers capture locals by reference),
  // so rethrowing before ALL tasks finish would let still-running tasks
  // touch a dead stack frame. Drain everything, then surface the first
  // failure.
  std::exception_ptr first;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first) {
        first = std::current_exception();
      }
    }
  }
  if (first) {
    std::rethrow_exception(first);
  }
}

}  // namespace stellar::util

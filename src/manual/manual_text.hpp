// Synthetic administrator manual generator.
//
// Stands in for the 600-page Lustre Operations Manual (§4.2.1): a large
// prose document in which each *documented* parameter has one authoritative
// section, surrounded by chapters of architecture, recovery, quota, and
// networking material that act as retrieval distractors. The RAG pipeline
// must locate the right section to produce accurate parameter facts; the
// no-RAG baselines answer from (possibly hallucinated) model memory.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stellar::manual {

struct ManualSection {
  std::string title;
  std::string text;
};

/// All sections of the manual, in document order.
[[nodiscard]] const std::vector<ManualSection>& manualSections();

/// The entire manual as one string (what gets chunked and embedded).
[[nodiscard]] const std::string& fullManualText();

/// The marker line that opens a parameter's authoritative section
/// ("Parameter: <name>"); the extraction step keys on it.
[[nodiscard]] std::string parameterSectionMarker(std::string_view name);

}  // namespace stellar::manual

#include "manual/manual_text.hpp"

#include <array>

#include "manual/param_facts.hpp"
#include "util/rng.hpp"

namespace stellar::manual {

namespace {

// Deterministic pseudo-prose: enough plausible administrator-manual text to
// make retrieval non-trivial. Every paragraph is assembled from rotating
// sentence fragments so the corpus has variety without shipping megabytes
// of literal strings.
std::string fillerParagraph(std::uint64_t seed, std::string_view topic) {
  static const std::array<const char*, 10> openers = {
      "In production deployments, ",
      "Administrators should note that ",
      "During recovery, ",
      "When the cluster is under heavy load, ",
      "For historical reasons, ",
      "On clusters with mixed hardware generations, ",
      "Before upgrading, ",
      "In the default configuration, ",
      "When diagnosing slow jobs, ",
      "After a failover event, ",
  };
  static const std::array<const char*, 10> middles = {
      "the %T subsystem coordinates with the management server to exchange "
      "configuration updates, and each client applies them lazily on its next "
      "reconnection cycle",
      "the %T layer records per-target statistics that can be sampled from the "
      "proc interface without interrupting service",
      "requests traverse the %T stack in submission order unless a scheduling "
      "policy reorders them for fairness across clients",
      "the %T component negotiates feature bits at connect time, so mixed "
      "version clusters degrade gracefully to the common subset",
      "memory registered by the %T layer for bulk transfers is pinned for the "
      "lifetime of the RPC and returned to the allocator on completion",
      "the %T module batches small state changes into a single transaction to "
      "bound journal pressure on the backing filesystem",
      "timeouts in the %T path are adaptive: the client tracks observed service "
      "latencies and widens its estimates under congestion",
      "the %T service threads are partitioned across CPU partitions so cache "
      "locality is preserved for request processing",
      "log records emitted by the %T layer are rate limited to protect the "
      "console during error storms",
      "the %T connection state machine distinguishes transient network faults "
      "from server restarts and only replays transactions for the latter",
  };
  static const std::array<const char*, 6> closers = {
      " This behaviour is intentional and requires no administrator action.",
      " Sites with unusual workloads may wish to monitor this closely.",
      " See the troubleshooting chapter for the relevant diagnostic counters.",
      " The defaults are appropriate for the vast majority of installations.",
      " Changing unrelated parameters does not influence this mechanism.",
      " This subsystem was substantially reworked in the current release.",
  };

  std::uint64_t s = seed;
  std::string out;
  const int sentences = 3 + static_cast<int>(util::splitmix64(s) % 3);
  for (int i = 0; i < sentences; ++i) {
    const auto o = util::splitmix64(s) % openers.size();
    const auto m = util::splitmix64(s) % middles.size();
    const auto c = util::splitmix64(s) % closers.size();
    std::string sentence = std::string{openers[o]} + middles[m] + ".";
    // Substitute the topic into the %T placeholder.
    const auto pos = sentence.find("%T");
    if (pos != std::string::npos) {
      sentence.replace(pos, 2, topic);
    }
    out += sentence;
    if (i + 1 == sentences) {
      out += closers[c];
    }
    out += " ";
  }
  out += "\n\n";
  return out;
}

std::string parameterSection(const ParamFact& fact) {
  std::string text;
  text += parameterSectionMarker(fact.name) + "\n";
  text += "Exposure: " + fact.procPath + (fact.writable ? " (writable)" : " (read-only)") +
          "\n\n";
  text += fact.description + "\n\n";
  text += fact.ioImpact + "\n\n";
  text += "Default: " + std::to_string(fact.defaultValue) +
          (fact.unit.empty() ? "" : " " + fact.unit) + "\n";
  if (!fact.minExpr.empty()) {
    text += "Minimum: " + fact.minExpr + "\n";
  }
  if (!fact.maxExpr.empty()) {
    text += "Maximum: " + fact.maxExpr + "\n";
  }
  text += "\nTo change the value at runtime, write the desired setting to the "
          "proc file shown above, or use the administration utility with the "
          "parameter's canonical name " + fact.name + ". The change takes "
          "effect for subsequently issued operations.\n\n";
  return text;
}

std::vector<ManualSection> buildSections() {
  std::vector<ManualSection> sections;

  const auto addChapter = [&sections](std::string title, std::string body) {
    sections.push_back(ManualSection{std::move(title), std::move(body)});
  };

  // --- front matter and distractor chapters --------------------------------
  std::string intro = "StellarFS Operations Manual\n\n";
  intro += "StellarFS is a parallel file system composed of a management "
           "server (MGS), a metadata server (MDS) hosting one metadata target "
           "(MDT), and a set of object storage servers (OSS), each hosting "
           "object storage targets (OSTs). Clients mount the file system and "
           "perform data I/O directly against the OSTs while metadata "
           "operations are served by the MDS.\n\n";
  for (int i = 0; i < 6; ++i) {
    intro += fillerParagraph(1000 + i, "connection");
  }
  addChapter("Introduction", std::move(intro));

  std::string arch = "Architecture Overview\n\n";
  arch += "Files are divided into stripes distributed across OSTs according "
          "to the file layout. The client-side object storage client (OSC) "
          "manages bulk data RPCs per OST, the metadata client (MDC) manages "
          "metadata RPCs, the llite layer implements the VFS interface "
          "including readahead and stat-ahead, and the lock manager (LDLM) "
          "caches distributed locks on the client.\n\n";
  for (int i = 0; i < 8; ++i) {
    arch += fillerParagraph(2000 + i, "layout");
  }
  addChapter("Architecture", std::move(arch));

  std::string recovery = "Recovery and Failover\n\n";
  for (int i = 0; i < 10; ++i) {
    recovery += fillerParagraph(3000 + i, "recovery");
  }
  recovery += "Note that recovery behaviour is unrelated to tuning parameters "
              "such as stripe_count or max_dirty_mb; those settings are "
              "preserved across failover.\n\n";
  addChapter("Recovery", std::move(recovery));

  std::string quota = "Quotas and Space Management\n\n";
  for (int i = 0; i < 8; ++i) {
    quota += fillerParagraph(4000 + i, "quota");
  }
  addChapter("Quotas", std::move(quota));

  std::string network = "Networking\n\n";
  for (int i = 0; i < 8; ++i) {
    network += fillerParagraph(5000 + i, "network");
  }
  addChapter("Networking", std::move(network));

  // --- parameter reference chapters, grouped by subsystem ------------------
  const auto subsystemOf = [](const std::string& name) {
    return name.substr(0, name.find('.'));
  };
  const std::vector<std::pair<std::string, std::string>> subsystems = {
      {"lov", "File Layout and Striping (lov)"},
      {"osc", "Object Storage Client Tuning (osc)"},
      {"llite", "Client VFS Layer Tuning (llite)"},
      {"mdc", "Metadata Client Tuning (mdc)"},
      {"ldlm", "Lock Manager Tuning (ldlm)"},
      {"ost", "Object Storage Target Settings (ost)"},
      {"mds", "Metadata Server Settings (mds)"},
      {"mgs", "Management Server Settings (mgs)"},
  };
  std::uint64_t fillerSeed = 9000;
  for (const auto& [prefix, title] : subsystems) {
    std::string body = title + "\n\n";
    body += fillerParagraph(fillerSeed++, prefix);
    for (const ParamFact& fact : allParamFacts()) {
      if (subsystemOf(fact.name) != prefix) {
        continue;
      }
      if (fact.category == ParamCategory::Undocumented) {
        continue;  // the manual is silent about these, by design
      }
      body += parameterSection(fact);
      body += fillerParagraph(fillerSeed++, prefix);
    }
    addChapter(title, std::move(body));
  }

  // --- troubleshooting: mentions parameters casually (distractors) ---------
  std::string trouble = "Troubleshooting\n\n";
  trouble += "Slow sequential reads are most often caused by disabled or "
             "undersized readahead; confirm llite.max_read_ahead_mb before "
             "investigating the network. Slow creates in file-per-process "
             "workloads usually trace back to wide default striping or an "
             "overloaded MDS rather than to osc settings. If clients stall "
             "writing, inspect dirty-cache occupancy against osc.max_dirty_mb. "
             "Lock cancel storms often indicate an undersized ldlm.lru_size "
             "for the job's working set.\n\n";
  for (int i = 0; i < 10; ++i) {
    trouble += fillerParagraph(6000 + i, "diagnostic");
  }
  addChapter("Troubleshooting", std::move(trouble));

  std::string glossary = "Glossary\n\n";
  glossary += "OST: object storage target, the unit of data storage. OSS: the "
              "server hosting OSTs. MDT: metadata target. MDS: metadata "
              "server. OSC: per-OST client component. MDC: metadata client "
              "component. LDLM: the distributed lock manager. RPC: remote "
              "procedure call. Stripe: the unit of file layout across "
              "OSTs.\n\n";
  for (int i = 0; i < 4; ++i) {
    glossary += fillerParagraph(7000 + i, "glossary");
  }
  addChapter("Glossary", std::move(glossary));

  return sections;
}

}  // namespace

const std::vector<ManualSection>& manualSections() {
  static const std::vector<ManualSection> sections = buildSections();
  return sections;
}

const std::string& fullManualText() {
  static const std::string text = [] {
    std::string out;
    for (const ManualSection& section : manualSections()) {
      out += "CHAPTER: " + section.title + "\n\n";
      out += section.text;
      out += "\n";
    }
    return out;
  }();
  return text;
}

std::string parameterSectionMarker(std::string_view name) {
  return "Parameter: " + std::string{name};
}

}  // namespace stellar::manual

// Ground-truth parameter database for the simulated file system.
//
// This plays the role reality plays for Lustre: the *actual* semantics of
// every parameter the file system exposes under /proc. The offline
// RAG extraction (§4.2) must rediscover the 13 high-impact tunables from
// this larger universe using only the generated manual text; comparing its
// output against these facts gives the extraction-quality table, and
// corrupting these facts per model profile gives the hallucination
// experiments (Fig. 2, Fig. 8).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace stellar::manual {

enum class ParamCategory {
  PerformanceTunable,  ///< the 13 targets: runtime-tunable, high impact
  BinaryTradeoff,      ///< on/off functional switches (e.g. checksums)
  NotRuntime,          ///< fixed at format/mount time
  NotPerformance,      ///< runtime-writable but not performance-relevant
  Undocumented,        ///< writable but absent from the manual
};

[[nodiscard]] const char* categoryName(ParamCategory cat) noexcept;

struct ParamFact {
  std::string name;       ///< canonical dotted name ("osc.max_rpcs_in_flight")
  std::string procPath;   ///< /proc or /sys exposure
  bool writable = true;
  /// True when an unprivileged user can set the parameter (per-file layout
  /// via `lfs setstripe`); client /proc knobs require root — the §5.6
  /// deployment constraint this reproduction's user-scope mode models.
  bool userAccessible = false;
  ParamCategory category = ParamCategory::PerformanceTunable;
  /// Ground-truth definition (what the parameter actually does).
  std::string description;
  /// Ground-truth I/O impact statement (direction + which workloads).
  std::string ioImpact;
  /// Valid range as expressions over system facts / other parameters
  /// (the dependent-range mechanism of §4.2.2). Empty = no bound.
  std::string minExpr;
  std::string maxExpr;
  std::int64_t defaultValue = 0;
  std::string unit;
};

/// The complete parameter universe (13 tunables + decoy categories).
[[nodiscard]] const std::vector<ParamFact>& allParamFacts();

/// Lookup by canonical name.
[[nodiscard]] const ParamFact* findParamFact(std::string_view name);

/// Names of the 13 ground-truth performance tunables (= the ideal
/// extraction output).
[[nodiscard]] std::vector<std::string> groundTruthTunables();

/// System facts used to resolve dependent range expressions.
struct SystemFacts {
  std::int64_t clientRamMb = 200704;
  std::int64_t ostCount = 5;
  std::int64_t cpuCores = 10;

  /// Resolver usable with util::Expr (names: client_ram_mb, ost_count,
  /// cpu_cores, plus any parameter's current value via the config hook).
  [[nodiscard]] std::optional<double> resolve(std::string_view name) const;
};

}  // namespace stellar::manual

#include "manual/param_facts.hpp"

namespace stellar::manual {

const char* categoryName(ParamCategory cat) noexcept {
  switch (cat) {
    case ParamCategory::PerformanceTunable: return "performance-tunable";
    case ParamCategory::BinaryTradeoff: return "binary-tradeoff";
    case ParamCategory::NotRuntime: return "not-runtime";
    case ParamCategory::NotPerformance: return "not-performance";
    case ParamCategory::Undocumented: return "undocumented";
  }
  return "?";
}

namespace {

std::vector<ParamFact> buildFacts() {
  std::vector<ParamFact> facts;
  const auto add = [&facts](ParamFact f) { facts.push_back(std::move(f)); };

  // ------------------------------------------------ the 13 tunables -----
  add({.name = "lov.stripe_count",
       .procPath = "/proc/fs/stellarfs/lov/stripe_count",
       .writable = true,
       .userAccessible = true,  // lfs setstripe needs no privileges
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The number of Object Storage Targets (OSTs) across which a new file "
           "will be striped. A value of -1 stripes across every available OST.",
       .ioImpact =
           "Directly affects I/O throughput: striping a large shared file across "
           "more OSTs aggregates their bandwidth, while small files should keep a "
           "stripe count of 1 because every additional stripe adds object "
           "allocation and destruction work on create and unlink.",
       .minExpr = "-1",
       .maxExpr = "ost_count",
       .defaultValue = 1,
       .unit = "OSTs"});

  add({.name = "lov.stripe_size",
       .procPath = "/proc/fs/stellarfs/lov/stripe_size",
       .writable = true,
       .userAccessible = true,  // lfs setstripe needs no privileges
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The number of bytes stored on each OST before the file layout moves "
           "to the next OST. Must be a multiple of 64 KiB.",
       .ioImpact =
           "Directly affects I/O throughput for striped files: matching the "
           "stripe size to the application transfer size keeps large sequential "
           "transfers contiguous on each OST; undersized stripes fragment bulk "
           "transfers across servers.",
       .minExpr = "65536",
       .maxExpr = "4294967296",
       .defaultValue = 1 << 20,
       .unit = "bytes"});

  add({.name = "osc.max_rpcs_in_flight",
       .procPath = "/proc/fs/stellarfs/osc/max_rpcs_in_flight",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The maximum number of concurrent bulk RPCs a client keeps in flight "
           "to a single OST.",
       .ioImpact =
           "Directly affects I/O throughput for concurrent and small-record "
           "workloads: higher values keep the server pipeline full and hide "
           "network latency, with diminishing returns once the OST saturates.",
       .minExpr = "1",
       .maxExpr = "256",
       .defaultValue = 8,
       .unit = "RPCs"});

  add({.name = "osc.max_pages_per_rpc",
       .procPath = "/proc/fs/stellarfs/osc/max_pages_per_rpc",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The maximum number of 4 KiB pages carried by one bulk RPC, bounding "
           "the RPC payload (256 pages = 1 MiB).",
       .ioImpact =
           "Directly affects I/O throughput for large transfers: bigger RPCs "
           "amortize per-RPC processing, so streaming workloads benefit from the "
           "maximum of 4096 pages (16 MiB); small random records see no benefit.",
       .minExpr = "16",
       .maxExpr = "4096",
       .defaultValue = 256,
       .unit = "pages"});

  add({.name = "osc.max_dirty_mb",
       .procPath = "/proc/fs/stellarfs/osc/max_dirty_mb",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The amount of dirty write-back cache, in MiB, a client may "
           "accumulate per OST before writers are throttled.",
       .ioImpact =
           "Directly affects write throughput: a larger budget lets writers run "
           "ahead of the storage targets and absorbs bursts, which matters most "
           "when computation can overlap the background flush.",
       .minExpr = "1",
       .maxExpr = "client_ram_mb / 8",
       .defaultValue = 32,
       .unit = "MiB"});

  add({.name = "llite.max_read_ahead_mb",
       .procPath = "/proc/fs/stellarfs/llite/max_read_ahead_mb",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The client-wide budget, in MiB, of readahead data that may be "
           "prefetched and not yet consumed.",
       .ioImpact =
           "Directly affects sequential read throughput: prefetching hides "
           "server latency for streaming readers. Random readers gain nothing "
           "and wasted prefetch consumes disk time.",
       .minExpr = "0",
       .maxExpr = "client_ram_mb / 2",
       .defaultValue = 64,
       .unit = "MiB"});

  add({.name = "llite.max_read_ahead_per_file_mb",
       .procPath = "/proc/fs/stellarfs/llite/max_read_ahead_per_file_mb",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The per-file cap, in MiB, on the readahead window. The window "
           "doubles while a stream stays sequential until it reaches this cap.",
       .ioImpact =
           "Directly affects sequential read throughput on a per-stream basis; "
           "its maximum is half of llite.max_read_ahead_mb so one file cannot "
           "monopolize the client budget.",
       .minExpr = "0",
       .maxExpr = "llite.max_read_ahead_mb / 2",
       .defaultValue = 32,
       .unit = "MiB"});

  add({.name = "llite.max_read_ahead_whole_mb",
       .procPath = "/proc/fs/stellarfs/llite/max_read_ahead_whole_mb",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "Files at most this many MiB are read in their entirety on the first "
           "read access, regardless of the requested range.",
       .ioImpact =
           "Directly affects small-file read latency: whole-file prefetch turns "
           "many small reads into one round trip. Bounded by the per-file "
           "readahead cap.",
       .minExpr = "0",
       .maxExpr = "llite.max_read_ahead_per_file_mb",
       .defaultValue = 2,
       .unit = "MiB"});

  add({.name = "llite.statahead_max",
       .procPath = "/proc/fs/stellarfs/llite/statahead_max",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The maximum number of asynchronous stat-ahead requests the client "
           "issues when it detects a directory traversal pattern (such as ls -l "
           "or a per-file stat scan). Zero disables stat-ahead.",
       .ioImpact =
           "Directly affects metadata scan throughput: pipelining attribute "
           "fetches hides metadata server latency during stat-heavy phases. The "
           "in-flight requests still count against mdc.max_rpcs_in_flight, so "
           "both must be raised together.",
       .minExpr = "0",
       .maxExpr = "8192",
       .defaultValue = 32,
       .unit = "requests"});

  add({.name = "mdc.max_rpcs_in_flight",
       .procPath = "/proc/fs/stellarfs/mdc/max_rpcs_in_flight",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The maximum number of concurrent metadata RPCs a client keeps in "
           "flight to the metadata server.",
       .ioImpact =
           "Directly affects metadata throughput when many processes per node "
           "issue metadata operations concurrently, or when stat-ahead pipelines "
           "attribute fetches.",
       .minExpr = "1",
       .maxExpr = "256",
       .defaultValue = 8,
       .unit = "RPCs"});

  add({.name = "mdc.max_mod_rpcs_in_flight",
       .procPath = "/proc/fs/stellarfs/mdc/max_mod_rpcs_in_flight",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The maximum number of concurrent *modifying* metadata RPCs (create, "
           "unlink, rename, setattr). Must be strictly less than "
           "mdc.max_rpcs_in_flight.",
       .ioImpact =
           "Directly affects create/delete throughput in file-per-process and "
           "many-small-files workloads.",
       .minExpr = "1",
       .maxExpr = "mdc.max_rpcs_in_flight - 1",
       .defaultValue = 7,
       .unit = "RPCs"});

  add({.name = "ldlm.lru_size",
       .procPath = "/proc/fs/stellarfs/ldlm/lru_size",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The capacity of the client's cached-lock LRU. Zero selects dynamic "
           "sizing, which shrinks the cache aggressively under server load.",
       .ioImpact =
           "Directly affects workloads that revisit many files: a cached lock "
           "makes re-open, re-stat, and cached-page reads local, while an "
           "evicted lock also drops the pages it protected. Working sets larger "
           "than the LRU thrash lock acquisition.",
       .minExpr = "0",
       .maxExpr = "10000000",
       .defaultValue = 0,
       .unit = "locks"});

  add({.name = "ldlm.lru_max_age",
       .procPath = "/proc/fs/stellarfs/ldlm/lru_max_age",
       .writable = true,
       .category = ParamCategory::PerformanceTunable,
       .description =
           "The time, in seconds, an unused lock may stay in the client LRU "
           "before it is cancelled.",
       .ioImpact =
           "Directly affects long-running jobs that revisit files after idle "
           "periods: an age shorter than the revisit interval forces lock "
           "re-acquisition and drops cached pages.",
       .minExpr = "1",
       .maxExpr = "86400",
       .defaultValue = 3900,
       .unit = "seconds"});

  // ------------------------------------------- binary trade-offs --------
  add({.name = "osc.checksums",
       .procPath = "/proc/fs/stellarfs/osc/checksums",
       .writable = true,
       .category = ParamCategory::BinaryTradeoff,
       .description =
           "Enables or disables checksumming of bulk data between client and "
           "OST. This is a data-integrity feature, not a tuning knob.",
       .ioImpact =
           "Boolean switch. Disabling checksums measurably increases throughput "
           "but removes protection against network corruption; the setting "
           "should follow site integrity policy rather than performance goals.",
       .minExpr = "0",
       .maxExpr = "1",
       .defaultValue = 0,
       .unit = "boolean"});

  add({.name = "llite.checksum_pages",
       .procPath = "/proc/fs/stellarfs/llite/checksum_pages",
       .writable = true,
       .category = ParamCategory::BinaryTradeoff,
       .description =
           "Enables or disables in-memory checksumming of cached pages on the "
           "client, guarding against RAM corruption.",
       .ioImpact =
           "Boolean switch guarding data integrity; it costs CPU time per page "
           "and must be chosen by policy, not tuned for speed.",
       .minExpr = "0",
       .maxExpr = "1",
       .defaultValue = 0,
       .unit = "boolean"});

  add({.name = "llite.statahead_agl",
       .procPath = "/proc/fs/stellarfs/llite/statahead_agl",
       .writable = true,
       .category = ParamCategory::BinaryTradeoff,
       .description =
           "Enables asynchronous glimpse locking during stat-ahead so file "
           "sizes are fetched along with attributes.",
       .ioImpact =
           "Boolean switch; keep enabled unless glimpse storms overload the "
           "OSTs.",
       .minExpr = "0",
       .maxExpr = "1",
       .defaultValue = 1,
       .unit = "boolean"});

  add({.name = "osc.grant_shrink",
       .procPath = "/proc/fs/stellarfs/osc/grant_shrink",
       .writable = true,
       .category = ParamCategory::BinaryTradeoff,
       .description =
           "Enables returning unused space grants to the OSTs when the client "
           "is idle.",
       .ioImpact =
           "Boolean switch affecting space accounting behaviour rather than "
           "I/O performance.",
       .minExpr = "0",
       .maxExpr = "1",
       .defaultValue = 1,
       .unit = "boolean"});

  // ------------------------------------------- not runtime-tunable ------
  add({.name = "mgs.mount_block_size",
       .procPath = "/proc/fs/stellarfs/mgs/mount_block_size",
       .writable = false,
       .category = ParamCategory::NotRuntime,
       .description =
           "The backing filesystem block size chosen when a target is "
           "formatted. Fixed for the life of the target.",
       .ioImpact = "Set at format time; it cannot be changed at runtime.",
       .minExpr = "1024",
       .maxExpr = "65536",
       .defaultValue = 4096,
       .unit = "bytes"});

  add({.name = "mds.mdt_inode_size",
       .procPath = "/proc/fs/stellarfs/mds/mdt_inode_size",
       .writable = false,
       .category = ParamCategory::NotRuntime,
       .description =
           "The on-disk inode size of the metadata target, fixed at format "
           "time.",
       .ioImpact = "Set at format time; it cannot be changed at runtime.",
       .minExpr = "512",
       .maxExpr = "4096",
       .defaultValue = 1024,
       .unit = "bytes"});

  add({.name = "ost.backfs_journal_mb",
       .procPath = "/proc/fs/stellarfs/ost/backfs_journal_mb",
       .writable = false,
       .category = ParamCategory::NotRuntime,
       .description = "The journal size of the OST backing filesystem.",
       .ioImpact = "Set at format time; it cannot be changed at runtime.",
       .minExpr = "64",
       .maxExpr = "16384",
       .defaultValue = 1024,
       .unit = "MiB"});

  // -------------------------------- runtime but not performance ---------
  add({.name = "ost.nrs_delay_min",
       .procPath = "/proc/fs/stellarfs/ost/nrs_delay_min",
       .writable = true,
       .category = ParamCategory::NotPerformance,
       .description =
           "The minimum artificial delay, in milliseconds, the NRS delay "
           "policy injects into selected requests. Used to simulate a loaded "
           "server for testing.",
       .ioImpact =
           "Diagnostic parameter for fault-injection experiments; it does not "
           "improve production I/O performance.",
       .minExpr = "0",
       .maxExpr = "100000",
       .defaultValue = 0,
       .unit = "ms"});

  add({.name = "ost.nrs_delay_max",
       .procPath = "/proc/fs/stellarfs/ost/nrs_delay_max",
       .writable = true,
       .category = ParamCategory::NotPerformance,
       .description =
           "The maximum artificial delay of the NRS delay policy; see "
           "ost.nrs_delay_min.",
       .ioImpact =
           "Diagnostic parameter for fault-injection experiments; it does not "
           "improve production I/O performance.",
       .minExpr = "0",
       .maxExpr = "100000",
       .defaultValue = 0,
       .unit = "ms"});

  add({.name = "ost.nrs_delay_pct",
       .procPath = "/proc/fs/stellarfs/ost/nrs_delay_pct",
       .writable = true,
       .category = ParamCategory::NotPerformance,
       .description =
           "The percentage of requests the NRS delay policy applies its "
           "artificial delay to.",
       .ioImpact =
           "Diagnostic parameter for fault-injection experiments; it does not "
           "improve production I/O performance.",
       .minExpr = "0",
       .maxExpr = "100",
       .defaultValue = 0,
       .unit = "percent"});

  add({.name = "llite.debug_level",
       .procPath = "/proc/fs/stellarfs/llite/debug_level",
       .writable = true,
       .category = ParamCategory::NotPerformance,
       .description =
           "The verbosity mask of the client debug log. Higher levels trace "
           "more subsystems.",
       .ioImpact =
           "Diagnostic parameter; verbose levels slow the client down and it "
           "should stay at the default outside debugging sessions.",
       .minExpr = "0",
       .maxExpr = "65535",
       .defaultValue = 0,
       .unit = "mask"});

  add({.name = "mdc.ping_interval",
       .procPath = "/proc/fs/stellarfs/mdc/ping_interval",
       .writable = true,
       .category = ParamCategory::NotPerformance,
       .description =
           "Seconds between keep-alive pings from the client to the metadata "
           "server, used for failure detection.",
       .ioImpact =
           "Affects failover detection latency, not I/O performance; lowering "
           "it increases idle network chatter.",
       .minExpr = "1",
       .maxExpr = "600",
       .defaultValue = 25,
       .unit = "seconds"});

  add({.name = "ldlm.lru_cancel_batch",
       .procPath = "/proc/fs/stellarfs/ldlm/lru_cancel_batch",
       .writable = true,
       .category = ParamCategory::NotPerformance,
       .description =
           "How many locks the client cancels per batch when trimming its "
           "LRU.",
       .ioImpact =
           "Internal housekeeping granularity; it primarily affects memory "
           "reclaim smoothness rather than I/O performance.",
       .minExpr = "1",
       .maxExpr = "1024",
       .defaultValue = 64,
       .unit = "locks"});

  // --------------------------------------------- undocumented -----------
  add({.name = "osc.experimental_prefetch_mode",
       .procPath = "/proc/fs/stellarfs/osc/experimental_prefetch_mode",
       .writable = true,
       .category = ParamCategory::Undocumented,
       .description = "(not covered by the administrator manual)",
       .ioImpact = "(not covered by the administrator manual)",
       .minExpr = "0",
       .maxExpr = "3",
       .defaultValue = 0,
       .unit = ""});

  add({.name = "llite.scratch_reserve_mb",
       .procPath = "/proc/fs/stellarfs/llite/scratch_reserve_mb",
       .writable = true,
       .category = ParamCategory::Undocumented,
       .description = "(not covered by the administrator manual)",
       .ioImpact = "(not covered by the administrator manual)",
       .minExpr = "0",
       .maxExpr = "1024",
       .defaultValue = 0,
       .unit = "MiB"});

  add({.name = "mdc.batch_rpc_gap_us",
       .procPath = "/proc/fs/stellarfs/mdc/batch_rpc_gap_us",
       .writable = true,
       .category = ParamCategory::Undocumented,
       .description = "(not covered by the administrator manual)",
       .ioImpact = "(not covered by the administrator manual)",
       .minExpr = "0",
       .maxExpr = "100000",
       .defaultValue = 0,
       .unit = "us"});

  return facts;
}

}  // namespace

const std::vector<ParamFact>& allParamFacts() {
  static const std::vector<ParamFact> facts = buildFacts();
  return facts;
}

const ParamFact* findParamFact(std::string_view name) {
  for (const ParamFact& fact : allParamFacts()) {
    if (fact.name == name) {
      return &fact;
    }
  }
  return nullptr;
}

std::vector<std::string> groundTruthTunables() {
  std::vector<std::string> names;
  for (const ParamFact& fact : allParamFacts()) {
    if (fact.category == ParamCategory::PerformanceTunable) {
      names.push_back(fact.name);
    }
  }
  return names;
}

std::optional<double> SystemFacts::resolve(std::string_view name) const {
  if (name == "client_ram_mb") {
    return static_cast<double>(clientRamMb);
  }
  if (name == "ost_count") {
    return static_cast<double>(ostCount);
  }
  if (name == "cpu_cores") {
    return static_cast<double>(cpuCores);
  }
  return std::nullopt;
}

}  // namespace stellar::manual

#include "agents/tuning_agent.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"
#include "util/units.hpp"

namespace stellar::agents {

namespace {

std::uint64_t hashText(std::string_view s, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char c : s) {
    h = util::mix64(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  }
  return h;
}

/// Geometric midpoint (the "cautious half step" of a weaker model).
std::int64_t geometricMid(std::int64_t from, std::int64_t to) {
  const double a = static_cast<double>(std::max<std::int64_t>(1, from));
  const double b = static_cast<double>(std::max<std::int64_t>(1, to));
  return static_cast<std::int64_t>(std::llround(std::sqrt(a * b)));
}

}  // namespace

TuningAgent::TuningAgent(TuningAgentOptions options,
                         std::map<std::string, llm::ParamKnowledge> knowledge,
                         pfs::BoundsContext bounds, const rules::RuleSet* globalRules,
                         llm::TokenMeter& meter, Transcript& transcript)
    : opts_(std::move(options)),
      knowledge_(std::move(knowledge)),
      bounds_(bounds),
      globalRules_(globalRules),
      meter_(meter),
      transcript_(transcript),
      rng_(hashText(opts_.model.name, opts_.seed)) {
  // Static prompt prefix: the parameter sheet + global rules. This is what
  // keeps re-appearing verbatim across calls and therefore resolves from
  // the provider's prompt cache (§5.7).
  knowledgeDump_ = "You are a parallel file system tuning agent.\n"
                   "Tunable parameters:\n";
  for (const auto& [name, k] : knowledge_) {
    knowledgeDump_ += name + " in [" + std::to_string(k.minValue) + ", " +
                      std::to_string(k.maxValue) + "], default " +
                      std::to_string(k.defaultValue) + ": " +
                      (opts_.useDescriptions || k.source == llm::KnowledgeSource::ModelMemory
                           ? k.description + " " + k.ioImpact
                           : "(no description available)") +
                      "\n";
  }
  if (globalRules_ != nullptr && !globalRules_->empty()) {
    knowledgeDump_ += "\nAccumulated tuning rules:\n" + globalRules_->toJson().dump(2) +
                      "\n";
  }
}

std::int64_t TuningAgent::believedMax(const std::string& param) const {
  const auto it = knowledge_.find(param);
  return it == knowledge_.end() ? 0 : it->second.maxValue;
}

std::int64_t TuningAgent::believedMin(const std::string& param) const {
  const auto it = knowledge_.find(param);
  return it == knowledge_.end() ? 0 : it->second.minValue;
}

void TuningAgent::primeWarmStart(const pfs::PfsConfig& config, std::string note) {
  warmStartConfig_ = config;
  warmStartNote_ = std::move(note);
}

void TuningAgent::observeInitialRun(const IoReport* report, double defaultSeconds,
                                    const pfs::PfsConfig& defaultConfig) {
  if (report != nullptr) {
    report_ = *report;
  }
  defaultSeconds_ = defaultSeconds;
  bestSeconds_ = defaultSeconds;
  defaultConfig_ = defaultConfig;
  bestConfig_ = defaultConfig;

  // Decide which follow-ups are worth the Analysis? tool (the Fig. 10 case
  // study asks for file-size detail and meta/data ratios on MDWorkbench).
  if (report_) {
    const rules::WorkloadContext& ctx = report_->context;
    if (ctx.metaOpShare > 0.3) {
      pendingQuestions_.push_back(FollowUpQuestion::MetaToDataRatio);
    }
    if (ctx.smallFileShare > 0.3 || ctx.metaOpShare > 0.5) {
      pendingQuestions_.push_back(FollowUpQuestion::FileSizeDistribution);
    }
    if (pendingQuestions_.empty() && ctx.sharedFileShare > 0.0 &&
        ctx.sharedFileShare < 1.0) {
      pendingQuestions_.push_back(FollowUpQuestion::SharingStructure);
    }
    if (pendingQuestions_.size() > 2) {
      pendingQuestions_.resize(2);
    }
  }

  buildPlan();

  // §4.4.2 outcome safety: when matched rules seeded the first hypothesis,
  // the first playbook group re-tests its moves from the *default*
  // configuration instead of stacking on the rule-derived best. A rule
  // bundle that wins by a hair (learned on a merely similar workload) no
  // longer drags every later attempt through its knob choices: the run
  // keeps one cold-style exploration path, and the best-of comparison
  // decides which base deserved to win.
  bool ruleLed = false;
  for (MoveGroup& group : plan_) {
    if (group.warmStart) {
      continue;
    }
    const bool ruleGroup = std::any_of(
        group.moves.begin(), group.moves.end(),
        [](const Move& move) { return move.fromRule; });
    if (ruleGroup) {
      ruleLed = true;
    } else if (ruleLed) {
      group.fromDefaults = true;
      break;
    }
  }
}

// ------------------------------------------------------------- planning --

void TuningAgent::planFromRules(std::vector<std::string>& covered) {
  if (globalRules_ == nullptr || globalRules_->empty() || !report_) {
    return;
  }
  const auto matched = globalRules_->match(report_->context, 0.7);
  if (matched.empty()) {
    return;
  }
  MoveGroup primary;
  primary.hypothesis =
      "Apply the accumulated rules whose tuning context matches this "
      "workload's I/O behaviour.";
  std::vector<const rules::Rule*> deferredAlternatives;
  for (const rules::Rule* rule : matched) {
    if (std::find(covered.begin(), covered.end(), rule->parameter) != covered.end()) {
      deferredAlternatives.push_back(rule);
      continue;
    }
    Move move;
    move.param = rule->parameter;
    move.direction = rule->direction;
    move.fromRule = true;
    switch (rule->direction) {
      case rules::Direction::SetMax:
        move.value = believedMax(rule->parameter);
        break;
      case rules::Direction::SetMin:
        move.value = believedMin(rule->parameter);
        break;
      case rules::Direction::SetValue:
        move.value = rule->value;
        break;
      case rules::Direction::Increase: {
        const auto current = defaultConfig_.get(rule->parameter).value_or(1);
        move.value = std::min(believedMax(rule->parameter), current * 8);
        break;
      }
      case rules::Direction::Decrease: {
        const auto current = defaultConfig_.get(rule->parameter).value_or(1);
        move.value = std::max(believedMin(rule->parameter), current / 8);
        break;
      }
    }
    move.rationale = "rule: " + rule->description;
    primary.moves.push_back(std::move(move));
    covered.push_back(rule->parameter);
  }
  if (!primary.moves.empty()) {
    plan_.push_back(std::move(primary));
  }
  // Alternatives for already-covered parameters become their own later
  // hypothesis, so negative outcomes can prune them (§4.4.2).
  for (const rules::Rule* rule : deferredAlternatives) {
    MoveGroup alt;
    alt.hypothesis = "Try the alternative guidance recorded for " + rule->parameter + ".";
    Move move;
    move.param = rule->parameter;
    move.direction = rule->direction;
    move.value = rule->direction == rules::Direction::SetValue
                     ? rule->value
                     : believedMax(rule->parameter);
    move.rationale = "alternative rule: " + rule->description;
    move.fromRule = true;
    alt.moves.push_back(std::move(move));
    plan_.push_back(std::move(alt));
  }
}

std::optional<TuningAgent::Move> TuningAgent::shapeMove(Move move) {
  const auto it = knowledge_.find(move.param);
  if (it == knowledge_.end()) {
    return std::nullopt;  // the agent does not know this parameter exists
  }
  const llm::ParamKnowledge& k = it->second;

  // Rule-derived moves carry validated guidance; semantics gating applies
  // only to playbook moves reasoned from parameter descriptions.
  if (!move.fromRule && !k.semanticallyAccurate()) {
    return misguidedMove(move.param);
  }

  // A hallucinated range clamps the proposal into the *believed* bounds: a
  // wrong-high maximum yields invalid values that fail validation (the
  // paper's missing-ranges failure mode); a wrong-low maximum cripples the
  // tuning step. Accurate ranges are applied dependent-aware at synthesis.
  if (!k.rangeAccurate()) {
    move.value = std::clamp(move.value, k.minValue, k.maxValue);
  }

  // Reasoning-quality softening: weaker models take cautious half steps.
  if (!move.fromRule && rng_.chance(1.0 - opts_.model.reasoningQuality)) {
    const auto current = defaultConfig_.get(move.param).value_or(move.value);
    if (move.value > current) {
      move.value = std::max<std::int64_t>(1, geometricMid(current, move.value));
      move.rationale += " (proceeding cautiously with a partial step)";
    }
  }
  return move;
}

TuningAgent::Move TuningAgent::misguidedMove(const std::string& param) {
  // The flawed interpretations the paper reports when descriptions are
  // missing (§5.4): plausible-sounding but mechanically wrong adjustments.
  Move move;
  move.param = param;
  move.misguided = true;
  const bool metaDominated = report_ && report_->context.metaOpShare > 0.5;
  if (param == "lov.stripe_count") {
    move.direction = rules::Direction::SetMax;
    move.value = believedMax(param);
    move.rationale =
        metaDominated
            ? "setting the parent directory's stripe count to the maximum "
              "should distribute the files more evenly across all OSTs"
            : "maximum striping should always engage every storage target";
  } else if (param == "ldlm.lru_size") {
    move.direction = rules::Direction::Decrease;
    move.value = std::max<std::int64_t>(believedMin(param), 64);
    move.rationale =
        "a smaller lock cache should reduce client memory pressure and speed "
        "up lock processing";
  } else if (param == "llite.statahead_max") {
    move.direction = rules::Direction::SetMin;
    move.value = believedMin(param);
    move.rationale =
        "disabling speculative stat requests should remove wasted metadata "
        "traffic";
  } else {
    // Generic misconception: crank it up regardless of workload.
    move.direction = rules::Direction::Increase;
    const auto current = defaultConfig_.get(param).value_or(1);
    move.value = std::min(believedMax(param), std::max<std::int64_t>(current * 16, 16));
    move.rationale = "increasing " + param + " should improve performance";
  }
  return move;
}

void TuningAgent::planMetadataPlaybook(const std::vector<std::string>& covered,
                                       bool aggressive) {
  const auto isCovered = [&covered](const std::string& p) {
    return std::find(covered.begin(), covered.end(), p) != covered.end();
  };
  const std::uint64_t files = report_ ? std::max<std::uint64_t>(report_->fileCount, 1000)
                                      : 100000;

  MoveGroup primary;
  primary.hypothesis =
      "The workload is metadata-intensive over many small files: make lock "
      "caching cover the working set and pipeline metadata RPCs.";
  const auto add = [&](Move m) {
    if (isCovered(m.param)) {
      return;
    }
    if (auto shaped = shapeMove(std::move(m))) {
      primary.moves.push_back(std::move(*shaped));
    }
  };
  add(Move{"ldlm.lru_size", rules::Direction::SetValue,
           static_cast<std::int64_t>(files * 2),
           "size the lock LRU above the per-client working set so re-stat, "
           "re-open and cached reads stay local",
           false, false});
  add(Move{"llite.statahead_max", rules::Direction::SetValue, 1024,
           "pipeline the per-file stat scans via stat-ahead", false, false});
  add(Move{"mdc.max_rpcs_in_flight", rules::Direction::SetValue, 64,
           "raise metadata RPC concurrency so stat-ahead and the many "
           "processes per node are not serialized",
           false, false});
  add(Move{"mdc.max_mod_rpcs_in_flight", rules::Direction::SetValue, 63,
           "raise modifying-RPC concurrency for the create/unlink phases "
           "(must stay below mdc.max_rpcs_in_flight)",
           false, false});
  if (!primary.moves.empty()) {
    plan_.push_back(std::move(primary));
  }

  if (aggressive) {
    MoveGroup more;
    more.hypothesis =
        "The first adjustment helped; push the same levers further to probe "
        "for additional gains.";
    const auto addMore = [&](Move m) {
      if (auto shaped = shapeMove(std::move(m))) {
        more.moves.push_back(std::move(*shaped));
      }
    };
    addMore(Move{"llite.statahead_max", rules::Direction::SetValue, 4096,
                 "deepen the stat-ahead pipeline", false, false});
    addMore(Move{"mdc.max_rpcs_in_flight", rules::Direction::SetValue, 128,
                 "probe higher metadata concurrency", false, false});
    addMore(Move{"mdc.max_mod_rpcs_in_flight", rules::Direction::SetValue, 127,
                 "keep the modifying cap one below the total cap", false, false});
    if (!more.moves.empty()) {
      plan_.push_back(std::move(more));
    }
  }
}

void TuningAgent::planLargeSequentialPlaybook(const std::vector<std::string>& covered,
                                              bool aggressive) {
  const auto isCovered = [&covered](const std::string& p) {
    return std::find(covered.begin(), covered.end(), p) != covered.end();
  };
  const std::uint64_t dominant =
      report_ ? std::max<std::uint64_t>(report_->context.dominantAccessSize, util::kMiB)
              : 16 * util::kMiB;
  const bool readsMatter = !report_ || report_->context.readShare > 0.2;

  MoveGroup primary;
  primary.hypothesis =
      "The workload streams large records: stripe wide for aggregate "
      "bandwidth, enlarge RPCs, and let write-back absorb bursts.";
  const auto add = [&](Move m) {
    if (isCovered(m.param)) {
      return;
    }
    if (auto shaped = shapeMove(std::move(m))) {
      primary.moves.push_back(std::move(*shaped));
    }
  };
  add(Move{"lov.stripe_count", rules::Direction::SetMax, believedMax("lov.stripe_count"),
           "stripe shared large files across every OST to aggregate bandwidth",
           false, false});
  add(Move{"lov.stripe_size", rules::Direction::SetValue,
           static_cast<std::int64_t>(std::clamp<std::uint64_t>(
               dominant, util::kMiB, 64 * util::kMiB)),
           "match the stripe size to the application's transfer size so each "
           "bulk lands contiguously on one OST",
           false, false});
  add(Move{"osc.max_pages_per_rpc", rules::Direction::SetMax,
           believedMax("osc.max_pages_per_rpc"),
           "carry the large transfers in maximal RPCs to amortize per-RPC "
           "costs",
           false, false});
  add(Move{"osc.max_dirty_mb", rules::Direction::SetValue, 512,
           "give write-back enough budget that writers run ahead of the OSTs",
           false, false});
  if (readsMatter) {
    add(Move{"llite.max_read_ahead_mb", rules::Direction::SetValue, 1024,
             "raise the client readahead budget for the streaming read phase",
             false, false});
    add(Move{"llite.max_read_ahead_per_file_mb", rules::Direction::SetValue, 512,
             "let each sequential stream grow a deep readahead window (half "
             "the client budget)",
             false, false});
  }
  if (!primary.moves.empty()) {
    plan_.push_back(std::move(primary));
  }

  if (aggressive) {
    MoveGroup more;
    more.hypothesis =
        "Bandwidth improved; probe concurrency and deeper write-back for the "
        "remaining headroom.";
    const auto addMore = [&](Move m) {
      if (auto shaped = shapeMove(std::move(m))) {
        more.moves.push_back(std::move(*shaped));
      }
    };
    addMore(Move{"osc.max_rpcs_in_flight", rules::Direction::SetValue, 32,
                 "more RPCs in flight keep the transfer pipeline full", false,
                 false});
    addMore(Move{"osc.max_dirty_mb", rules::Direction::SetValue, 1024,
                 "deepen the write-back budget further", false, false});
    addMore(Move{"lov.stripe_size", rules::Direction::SetValue,
                 static_cast<std::int64_t>(std::clamp<std::uint64_t>(
                     dominant * 4, 4 * util::kMiB, 256 * util::kMiB)),
                 "probe a stripe larger than the transfer size: fewer stripe "
                 "boundaries keep each OST's object contiguous under "
                 "many-writer interleaving",
                 false, false});
    if (!more.moves.empty()) {
      plan_.push_back(std::move(more));
    }
  }
}

void TuningAgent::planSmallRandomPlaybook(const std::vector<std::string>& covered) {
  const auto isCovered = [&covered](const std::string& p) {
    return std::find(covered.begin(), covered.end(), p) != covered.end();
  };
  MoveGroup primary;
  primary.hypothesis =
      "The workload issues many small or random records to shared files: "
      "spread the load across OSTs and raise request concurrency.";
  const auto add = [&](Move m) {
    if (isCovered(m.param)) {
      return;
    }
    if (auto shaped = shapeMove(std::move(m))) {
      primary.moves.push_back(std::move(*shaped));
    }
  };
  add(Move{"lov.stripe_count", rules::Direction::SetMax, believedMax("lov.stripe_count"),
           "striping the shared file across all OSTs spreads the random "
           "records over every server",
           false, false});
  add(Move{"osc.max_rpcs_in_flight", rules::Direction::SetValue, 64,
           "small records need deep request concurrency to fill the servers",
           false, false});
  add(Move{"osc.max_dirty_mb", rules::Direction::SetValue, 256,
           "absorb write bursts in the client cache", false, false});
  if (!primary.moves.empty()) {
    plan_.push_back(std::move(primary));
  }
}

void TuningAgent::buildPlan() {
  plan_.clear();
  nextGroup_ = 0;

  // Cross-run memory leads: the recalled best configuration is trialed
  // before any planned hypothesis, so a faithful memory converges in one
  // Configuration Runner call and a stale one is found out immediately.
  // The values are prior *measured outcomes*, so they bypass the
  // hallucination gating that applies to description-reasoned moves
  // (fromRule = true), exactly like matched rules do.
  if (warmStartConfig_) {
    MoveGroup warm;
    warm.hypothesis = warmStartNote_;
    warm.warmStart = true;
    for (const std::string& name : pfs::PfsConfig::tunableNames()) {
      const auto target = warmStartConfig_->get(name);
      const auto def = defaultConfig_.get(name);
      if (target && def && *target != *def) {
        warm.moves.push_back(Move{name, rules::Direction::SetValue, *target,
                                  "recalled best value from prior experience on a "
                                  "similar workload",
                                  true, false});
      }
    }
    if (!warm.moves.empty()) {
      plan_.push_back(std::move(warm));
    }
  }

  std::vector<std::string> ruleCovered;

  planFromRules(ruleCovered);
  const bool rulesLed = !ruleCovered.empty();
  // Matched rules steer the *first* configuration, but they do not
  // suppress the playbook's own hypotheses: a learned value that is
  // suboptimal for this workload must remain refinable by later attempts
  // (duplicate configurations are skipped at decision time).
  std::vector<std::string> covered;

  if (!report_) {
    // No-Analysis ablation: without behavioural evidence the agent falls
    // back to generic large-file assumptions — the failure §5.4 describes.
    planLargeSequentialPlaybook(covered, /*aggressive=*/true);
    return;
  }

  const rules::WorkloadContext& ctx = report_->context;
  // Metadata-intensity means many metadata operations per byte moved: a
  // checkpoint writer that opens/closes around multi-MiB chunks has a high
  // op share but is still bandwidth-bound, so the payload size gates the
  // classification.
  const bool metaDominated =
      ctx.metaOpShare > 0.6 && ctx.dominantAccessSize < util::kMiB;
  const bool largeSeq =
      ctx.sequentialShare > 0.6 && ctx.dominantAccessSize >= util::kMiB;
  const bool mixed =
      !metaDominated && !largeSeq && ctx.metaOpShare > 0.25;

  if (metaDominated) {
    planMetadataPlaybook(covered, /*aggressive=*/!rulesLed);
    // Small-file data phases still move bytes; a mild data-side refinement
    // is the last hypothesis.
    if (ctx.totalBytes > 0) {
      MoveGroup refine;
      refine.hypothesis = "Refine the data path for the small-file payloads.";
      if (auto m = shapeMove(Move{"osc.max_rpcs_in_flight", rules::Direction::SetValue,
                                  32, "modest bulk-RPC concurrency for the small "
                                       "payload writes",
                                  false, false})) {
        refine.moves.push_back(std::move(*m));
      }
      if (!refine.moves.empty()) {
        plan_.push_back(std::move(refine));
      }
    }
    return;
  }
  if (largeSeq) {
    planLargeSequentialPlaybook(covered, /*aggressive=*/!rulesLed);
    return;
  }
  if (!mixed) {
    planSmallRandomPlaybook(covered);
    // Aggressive follow-up on concurrency.
    MoveGroup more;
    more.hypothesis = "Probe deeper concurrency for the random records.";
    if (auto m = shapeMove(Move{"osc.max_rpcs_in_flight", rules::Direction::SetValue,
                                128, "push in-flight RPCs further", false, false})) {
      more.moves.push_back(std::move(*m));
    }
    if (!more.moves.empty()) {
      plan_.push_back(std::move(more));
    }
    return;
  }
  // Mixed, multi-phase workload (the IO500 shape): combine both playbooks
  // with a compromise stripe size, then probe the data-side compromise —
  // this is where the agent can out-tune a static expert config by testing
  // both sides of the trade-off (§5.2's IO500 observation).
  planMetadataPlaybook(covered, /*aggressive=*/false);
  planLargeSequentialPlaybook(covered, /*aggressive=*/false);
  for (MoveGroup& group : plan_) {
    for (Move& move : group.moves) {
      if (move.param == "lov.stripe_size" && !move.fromRule) {
        move.value = 4 * util::kMiB;
        move.rationale =
            "compromise stripe size: large enough for the streaming phase, "
            "small enough for the strided small-record phase";
      }
    }
  }
  MoveGroup probe;
  probe.hypothesis =
      "Probe the other side of the phase trade-off: deeper data concurrency "
      "with a larger stripe for the streaming phase.";
  if (auto m = shapeMove(Move{"osc.max_rpcs_in_flight", rules::Direction::SetValue, 64,
                              "deep in-flight RPCs serve both the strided "
                              "small-record and streaming phases",
                              false, false})) {
    probe.moves.push_back(std::move(*m));
  }
  if (auto m = shapeMove(Move{"lov.stripe_size", rules::Direction::SetValue,
                              static_cast<std::int64_t>(8 * util::kMiB),
                              "test whether the streaming phase dominates enough "
                              "to justify a larger stripe",
                              false, false})) {
    probe.moves.push_back(std::move(*m));
  }
  if (!probe.moves.empty()) {
    plan_.push_back(std::move(probe));
  }
}

// ------------------------------------------------------------- decisions --

pfs::PfsConfig TuningAgent::synthesize(const MoveGroup& group,
                                       std::string& rationaleOut) const {
  pfs::PfsConfig cfg = group.fromDefaults ? defaultConfig_ : bestConfig_;
  rationaleOut = group.hypothesis + "\n";
  for (const Move& move : group.moves) {
    std::int64_t value = move.value;
    if (move.param == "lov.stripe_count" &&
        move.direction == rules::Direction::SetMax) {
      value = -1;  // the documented "all OSTs" spelling
    }
    (void)cfg.set(move.param, value);
    rationaleOut += "  - " + move.param + " := " + std::to_string(value) + " — " +
                    move.rationale + "\n";
  }
  // A knowledgeable agent keeps every parameter inside its documented
  // range, resolving dependent bounds against the configuration being
  // proposed (per-file readahead at half the budget, mod RPCs below the
  // cap). Parameters with hallucinated ranges keep their believed values —
  // possibly invalid.
  for (const std::string& name : pfs::PfsConfig::tunableNames()) {
    const auto itKnow = knowledge_.find(name);
    if (itKnow == knowledge_.end() || !itKnow->second.rangeAccurate()) {
      continue;
    }
    const auto boundsNow = pfs::paramBounds(name, cfg, bounds_);
    const auto value = cfg.get(name);
    if (boundsNow && value) {
      (void)cfg.set(name, std::clamp(*value, boundsNow->min, boundsNow->max));
    }
  }
  return cfg;
}

bool TuningAgent::recordPromptedCall(const std::string& output) {
  std::string prompt = knowledgeDump_;
  if (report_) {
    prompt += "\nI/O Report:\n" + report_->text;
  }
  if (!analysisNotes_.empty()) {
    prompt += "\nAdditional analysis:\n" + analysisNotes_;
  }
  prompt += "\nHistory:\n";
  for (const Attempt& attempt : attempts_) {
    prompt += attempt.rationale + " -> " +
              (attempt.valid ? util::formatSeconds(attempt.seconds) : "INVALID") + "\n";
  }
  if (llm_ == nullptr) {
    meter_.recordCall("tuning-agent", prompt, output);
    lastOutcome_ = llm::CallOutcome{};
    return true;
  }
  lastOutcome_ = llm_->call(opts_.model, "tuning-agent", prompt, output);
  return lastOutcome_.ok;
}

void TuningAgent::fillEmitted(Action& action, const MoveGroup& group) const {
  for (const Move& move : group.moves) {
    // The payload carries the values as finally written (post-synthesis
    // clamping and the stripe_count=-1 spelling included).
    action.emitted.push_back(
        RawMove{move.param, action.config.get(move.param).value_or(move.value)});
  }
}

void TuningAgent::applyContentFaults(Action& action) {
  const llm::CallDirectives& d = lastOutcome_.directives;
  if (action.kind != ActionKind::RunConfig || !d.corrupted()) {
    return;
  }
  // Seeded independently of the planning RNG so chaos never perturbs the
  // decision sequence itself.
  const std::uint64_t h = util::mix64(
      hashText(opts_.model.name, opts_.seed),
      util::mix64(0xC022, static_cast<std::uint64_t>(attempts_.size())));
  if (d.outOfRange && !action.emitted.empty()) {
    // A believed-maximum overshoot: plausible in form, invalid in value.
    RawMove& mv = action.emitted[h % action.emitted.size()];
    if (mv.value >= 0) {  // leave the stripe_count=-1 spelling alone
      mv.value = std::max<std::int64_t>(mv.value, believedMax(mv.param)) * 8 + 7;
      (void)action.config.set(mv.param, mv.value);
    }
  }
  if (d.hallucinatedKnob) {
    // Plausible-but-nonexistent knob names (typos and invented tunables).
    static const char* kPhantoms[] = {
        "osc.max_rpcs_in_flght",
        "llite.readahead_turbo_mb",
        "lov.stripe_width",
        "mdc.batch_rpcs_in_flight",
    };
    const std::size_t pick = (h >> 17) % (sizeof kPhantoms / sizeof kPhantoms[0]);
    action.emitted.push_back(
        RawMove{kPhantoms[pick], static_cast<std::int64_t>(64 + (h >> 23) % 448)});
    // PfsConfig cannot hold an unknown knob, so only the raw payload sees
    // it — which is exactly where the sanitizer looks.
  }
}

TuningAgent::Action TuningAgent::decide() {
  // Minor loop: clarify the report before committing to a hypothesis.
  if (!pendingQuestions_.empty()) {
    Action action;
    action.kind = ActionKind::AskAnalysis;
    action.question = pendingQuestions_.front();
    pendingQuestions_.erase(pendingQuestions_.begin());
    action.rationale = "Requesting additional analysis before selecting "
                       "parameters to tune.";
    if (!recordPromptedCall(std::string{"Analysis? "} +
                            followUpQuestionText(action.question))) {
      pendingQuestions_.insert(pendingQuestions_.begin(), action.question);
      action.delivered = false;
      return action;
    }
    action.staleAnalysis = lastOutcome_.directives.staleAnalysis;
    return action;
  }

  const double bestGain =
      defaultSeconds_ > 0 ? 1.0 - bestSeconds_ / defaultSeconds_ : 0.0;

  // Stop early once gains are real and the last attempt added little
  // (§4.3.2: stop at diminishing returns after clear improvement). While
  // unexplored hypotheses remain, the agent keeps probing for at least
  // three attempts — a short plan (e.g. fully covered by matched rules)
  // is what legitimately ends a run after one or two.
  const bool planExhausted = nextGroup_ >= plan_.size() && !repairGroup_;
  if (!attempts_.empty() && bestGain > 0.15 &&
      (planExhausted || attempts_.size() >= 3)) {
    const Attempt& last = attempts_.back();
    const double lastGain =
        last.valid ? 1.0 - last.seconds / defaultSeconds_ : 0.0;
    if (lastGain < bestGain + opts_.minGain) {
      Action action;
      action.kind = ActionKind::EndTuning;
      action.rationale =
          "Performance improved " + util::formatDouble(bestGain * 100, 1) +
          "% over the default configuration and the last attempt added no "
          "further gain; the remaining hypotheses target parameters with "
          "minor expected impact, so further tuning would yield diminishing "
          "returns.";
      if (!recordPromptedCall(action.rationale)) {
        action.delivered = false;
        return action;
      }
      transcript_.add("tuning-agent", "End Tuning?", action.rationale);
      return action;
    }
  }

  const bool budgetLeft = static_cast<int>(attempts_.size()) < opts_.maxAttempts;
  if (budgetLeft && repairGroup_) {
    MoveGroup group = std::move(*repairGroup_);
    repairGroup_.reset();
    Action action;
    action.kind = ActionKind::RunConfig;
    action.config = synthesize(group, action.rationale);
    if (!recordPromptedCall(action.rationale)) {
      repairGroup_ = std::move(group);  // retry reproduces this decision
      action.delivered = false;
      return action;
    }
    fillEmitted(action, group);
    applyContentFaults(action);
    inFlight_ = std::move(group);
    transcript_.add("tuning-agent", "attempt " + std::to_string(attempts_.size() + 1),
                    action.rationale);
    return action;
  }
  while (budgetLeft && nextGroup_ < plan_.size()) {
    const std::size_t groupIndex = nextGroup_++;
    MoveGroup group = plan_[groupIndex];
    Action action;
    action.kind = ActionKind::RunConfig;
    action.config = synthesize(group, action.rationale);
    if (action.config == bestConfig_) {
      // This hypothesis proposes nothing new over the incumbent (e.g. a
      // playbook group whose values a matched rule already applied).
      continue;
    }
    if (!recordPromptedCall(action.rationale)) {
      nextGroup_ = groupIndex;  // retry reproduces this decision
      action.delivered = false;
      return action;
    }
    fillEmitted(action, group);
    applyContentFaults(action);
    inFlight_ = std::move(group);
    transcript_.add("tuning-agent", "attempt " + std::to_string(attempts_.size() + 1),
                    action.rationale);
    return action;
  }

  Action action;
  action.kind = ActionKind::EndTuning;
  action.rationale =
      attempts_.empty()
          ? "No applicable hypotheses were generated for this workload."
          : (bestGain > 0 ? "All hypotheses have been evaluated; best "
                            "configuration improves the default by " +
                                util::formatDouble(bestGain * 100, 1) + "%."
                          : "No configuration outperformed the default; ending "
                            "to avoid unproductive exploration.");
  if (!recordPromptedCall(action.rationale)) {
    action.delivered = false;
    return action;
  }
  transcript_.add("tuning-agent", "End Tuning?", action.rationale);
  return action;
}

void TuningAgent::observeAnalysisAnswer(FollowUpQuestion question,
                                        const std::string& answer) {
  // The answer joins the agent's working context (it re-appears verbatim
  // in every subsequent prompt, which is exactly what makes the provider's
  // prompt cache so effective in §5.7). The plan itself keys on the
  // report's structured features.
  analysisNotes_ += std::string{followUpQuestionText(question)} + "\n" + answer + "\n";
}

void TuningAgent::observeMeasurementFailure(const std::string& reason) {
  Attempt attempt;
  if (inFlight_) {
    std::string rationale;
    attempt.config = synthesize(*inFlight_, rationale);
    attempt.rationale = rationale;
    attempt.warmStart = inFlight_->warmStart;
  }
  attempt.valid = false;
  attempt.measurementFailed = true;
  attempt.error = reason;
  attempts_.push_back(std::move(attempt));
  transcript_.add("system", "measurement failed",
                  reason + " — result discarded, configuration not judged.");
  // Drop the group outright: no repair (the values were not rejected) and
  // no negative finding (the direction was not shown to regress).
  inFlight_.reset();
}

void TuningAgent::observeRunResult(double seconds, bool valid, const std::string& error) {
  Attempt attempt;
  if (inFlight_) {
    std::string rationale;
    attempt.config = synthesize(*inFlight_, rationale);
    attempt.rationale = rationale;
    attempt.warmStart = inFlight_->warmStart;
  }
  attempt.seconds = seconds;
  attempt.valid = valid;
  attempt.error = error;
  attempts_.push_back(attempt);

  if (!inFlight_) {
    return;
  }
  MoveGroup group = std::move(*inFlight_);
  inFlight_.reset();

  if (!valid) {
    transcript_.add("system", "run failed", error);
    // Repair: pull every move toward the default by a geometric half-step
    // (the agent cannot see the true bound; it backs off).
    MoveGroup repair;
    repair.hypothesis =
        "The previous configuration was rejected (" + error +
        "); retry with values backed off toward the defaults.";
    for (Move move : group.moves) {
      const auto def = defaultConfig_.get(move.param).value_or(1);
      move.value = geometricMid(def, move.value);
      move.rationale += " (backed off after rejection)";
      repair.moves.push_back(std::move(move));
    }
    repairGroup_ = std::move(repair);
    return;
  }

  transcript_.add("system", "run result",
                  util::formatSeconds(seconds) + " vs best " +
                      util::formatSeconds(bestSeconds_) + " (default " +
                      util::formatSeconds(defaultSeconds_) + ")");

  if (seconds < bestSeconds_) {
    std::string rationale;
    bestConfig_ = synthesize(group, rationale);
    bestSeconds_ = seconds;
    succeededGroups_.push_back(group);
  } else {
    // Regression: revert (bestConfig_ unchanged) and remember what failed.
    for (const Move& move : group.moves) {
      negativeFindings_.push_back(NegativeFinding{move.param, move.direction});
    }
  }
}

std::vector<rules::Rule> TuningAgent::reflectAndSummarize() const {
  std::vector<rules::Rule> learned;
  if (bestSeconds_ >= defaultSeconds_ * (1.0 - opts_.minGain)) {
    return learned;  // nothing worth generalizing
  }
  const rules::WorkloadContext context =
      report_ ? report_->context : rules::WorkloadContext{};

  for (const MoveGroup& group : succeededGroups_) {
    for (const Move& move : group.moves) {
      rules::Rule rule;
      rule.parameter = move.param;
      rule.context = context;
      rule.direction = move.direction;
      rule.value = move.value;
      // General guidance, explicitly free of application names (§4.4.1).
      rule.description =
          "For workloads with this I/O behaviour (" + context.describe() + "), " +
          move.rationale + ".";
      // Dedup within the learned set (later groups refine earlier ones).
      bool replaced = false;
      for (rules::Rule& existing : learned) {
        if (existing.parameter == rule.parameter) {
          existing = rule;
          replaced = true;
          break;
        }
      }
      if (!replaced) {
        learned.push_back(std::move(rule));
      }
    }
  }
  return learned;
}

}  // namespace stellar::agents

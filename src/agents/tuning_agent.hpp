// The Tuning Agent (§4.3.2): primary controller of the iterative tuning
// loop. Each turn it selects one of the paper's three tools — ask the
// Analysis Agent a follow-up (Analysis?), generate and run a new
// configuration (Configuration Runner), or stop (End Tuning?) — and
// documents the rationale for every parameter it changes.
//
// Decision mechanics. The agent compiles a plan of *move groups*
// (hypotheses) from, in priority order: matched rules from the global Rule
// Set, then a workload-conditioned playbook derived from the I/O Report and
// its per-parameter knowledge. Knowledge governs correctness exactly as in
// the paper's ablations: grounded (RAG) knowledge yields the documented
// semantics; memory-recalled knowledge may be hallucinated, producing
// misguided moves (e.g. widening stripes "to distribute small files") or
// out-of-range values that fail validation. The model's reasoning quality
// softens or defers moves stochastically (seeded), which is what separates
// the Fig. 9 model profiles.
//
// Feedback policy mirrors §4.3.2: improvements are kept and pursued more
// aggressively; regressions are reverted and the next hypothesis is tried;
// the agent ends when expected marginal gain is low after a clear win.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "agents/io_report.hpp"
#include "agents/transcript.hpp"
#include "llm/knowledge.hpp"
#include "llm/llm_client.hpp"
#include "llm/model_profile.hpp"
#include "llm/token_meter.hpp"
#include "pfs/params.hpp"
#include "rules/rules.hpp"
#include "util/rng.hpp"

namespace stellar::agents {

struct TuningAgentOptions {
  llm::ModelProfile model = llm::claude37Sonnet();
  /// Ablation flags (Fig. 8): without analysis there is no I/O report;
  /// without descriptions the agent reasons from memory-recalled (possibly
  /// hallucinated) semantics even when ranges are grounded.
  bool useAnalysis = true;
  bool useDescriptions = true;
  int maxAttempts = 5;       ///< the paper's 5-configuration cap
  double minGain = 0.03;     ///< relative improvement considered real
  std::uint64_t seed = 1;
};

/// One configuration trial.
struct Attempt {
  pfs::PfsConfig config;
  double seconds = 0.0;
  bool valid = true;
  /// True when the run itself failed or timed out (fault injection, retry
  /// exhaustion, watchdog) — the configuration was never actually judged.
  bool measurementFailed = false;
  /// True when this attempt trialed a configuration recalled from the
  /// experience store (warm start); the engine keys staleness feedback on it.
  bool warmStart = false;
  std::string rationale;
  std::string error;
};

/// A tried move whose outcome was negative (used for rule pruning §4.4.2).
struct NegativeFinding {
  std::string parameter;
  rules::Direction direction;
};

class TuningAgent {
 public:
  enum class ActionKind { AskAnalysis, RunConfig, EndTuning };

  /// One raw parameter move as emitted in the tool-call payload. Unlike
  /// `config` (which can only hold real knobs), the raw list can carry a
  /// hallucinated knob name — exactly what the ActionSanitizer validates.
  struct RawMove {
    std::string param;
    std::int64_t value = 0;
  };

  struct Action {
    ActionKind kind = ActionKind::EndTuning;
    FollowUpQuestion question = FollowUpQuestion::FileSizeDistribution;
    pfs::PfsConfig config;
    std::string rationale;
    /// Raw tool-call payload for RunConfig actions (sanitizer input).
    std::vector<RawMove> emitted;
    /// False when the model call behind this decision failed (timeout /
    /// rate limit / truncation / breaker): the action was *attempted* but
    /// never delivered — the caller must not execute it. Internal agent
    /// state is rolled back so a retried decide() reproduces the choice.
    bool delivered = true;
    /// The analysis answer this question receives will be stale (fault
    /// injection); only meaningful for AskAnalysis actions.
    bool staleAnalysis = false;
  };

  TuningAgent(TuningAgentOptions options,
              std::map<std::string, llm::ParamKnowledge> knowledge,
              pfs::BoundsContext bounds, const rules::RuleSet* globalRules,
              llm::TokenMeter& meter, Transcript& transcript);

  /// Routes every model call through `client` (nullable, non-owning): the
  /// fault-injection / retry / circuit-breaker boundary of ISSUE 7. Without
  /// a client, calls are metered directly and always succeed — byte-for-
  /// byte the pre-client behavior.
  void attachLlm(llm::LlmClient* client) noexcept { llm_ = client; }

  /// Resilience-ladder model swap: subsequent calls bill and sample faults
  /// as `model`. The decision plan (already built, seeded by the original
  /// model) is kept — the cheaper model inherits the session, it does not
  /// restart it.
  void switchModel(const llm::ModelProfile& model) { opts_.model = model; }

  [[nodiscard]] const llm::ModelProfile& model() const noexcept { return opts_.model; }

  /// Outcome of the model call behind the most recent decide().
  [[nodiscard]] const llm::CallOutcome& lastOutcome() const noexcept {
    return lastOutcome_;
  }

  /// Warm start from cross-run memory: `config` (a prior run's best for a
  /// similar workload) becomes the first Configuration Runner attempt,
  /// ahead of every planned hypothesis. Must be called before
  /// observeInitialRun. The recalled values are treated as grounded
  /// knowledge (no hallucination gating or cautious softening), but they
  /// still flow through normal validation, repair, and best/revert
  /// bookkeeping — a stale memory is judged, not trusted.
  void primeWarmStart(const pfs::PfsConfig& config, std::string note);

  /// Feeds the initial (default-config) execution. `report` is null in the
  /// No-Analysis ablation.
  void observeInitialRun(const IoReport* report, double defaultSeconds,
                         const pfs::PfsConfig& defaultConfig);

  /// The agent's next tool call.
  [[nodiscard]] Action decide();

  /// Result channels for the tools.
  void observeAnalysisAnswer(FollowUpQuestion question, const std::string& answer);
  void observeRunResult(double seconds, bool valid, const std::string& error);

  /// The run could not be measured (RPC retry budget exhausted, watchdog
  /// timeout). Unlike an invalid config there is nothing to repair and no
  /// negative finding — the configuration was never judged — so the group
  /// is simply dropped and bestConfig_/bestSeconds_ stay untouched.
  void observeMeasurementFailure(const std::string& reason);

  [[nodiscard]] const std::vector<Attempt>& attempts() const noexcept {
    return attempts_;
  }
  [[nodiscard]] const pfs::PfsConfig& bestConfig() const noexcept { return bestConfig_; }
  [[nodiscard]] double bestSeconds() const noexcept { return bestSeconds_; }
  [[nodiscard]] double defaultSeconds() const noexcept { return defaultSeconds_; }

  /// Reflect & Summarize (§4.4): distills the run into general rules.
  [[nodiscard]] std::vector<rules::Rule> reflectAndSummarize() const;

  /// Tried-and-regressed directions, for pruning rule alternatives.
  [[nodiscard]] const std::vector<NegativeFinding>& negativeFindings() const noexcept {
    return negativeFindings_;
  }

 private:
  struct Move {
    std::string param;
    rules::Direction direction = rules::Direction::SetValue;
    std::int64_t value = 0;  ///< resolved target (what gets written)
    std::string rationale;
    bool fromRule = false;
    bool misguided = false;  ///< generated from hallucinated semantics
  };
  struct MoveGroup {
    std::vector<Move> moves;
    std::string hypothesis;
    bool warmStart = false;     ///< trials a config recalled from experience
    bool fromDefaults = false;  ///< synthesize from the default config, not best
  };

  void buildPlan();
  void planFromRules(std::vector<std::string>& covered);
  void planMetadataPlaybook(const std::vector<std::string>& covered, bool aggressive);
  void planLargeSequentialPlaybook(const std::vector<std::string>& covered,
                                   bool aggressive);
  void planSmallRandomPlaybook(const std::vector<std::string>& covered);

  /// Applies knowledge gating + reasoning-quality softening to a raw move.
  [[nodiscard]] std::optional<Move> shapeMove(Move move);
  /// The misguided variant produced by hallucinated semantics.
  [[nodiscard]] Move misguidedMove(const std::string& param);

  [[nodiscard]] std::int64_t believedMax(const std::string& param) const;
  [[nodiscard]] std::int64_t believedMin(const std::string& param) const;
  [[nodiscard]] pfs::PfsConfig synthesize(const MoveGroup& group,
                                          std::string& rationaleOut) const;
  /// Issues the model call behind a decision. Returns false when the call
  /// failed (fault injection); the caller rolls its state back and returns
  /// an undelivered Action.
  [[nodiscard]] bool recordPromptedCall(const std::string& output);
  /// Fills the raw tool-call payload from the group's moves.
  void fillEmitted(Action& action, const MoveGroup& group) const;
  /// Applies the delivered call's content corruptions (hallucinated knob,
  /// out-of-range value) to a RunConfig action.
  void applyContentFaults(Action& action);

  TuningAgentOptions opts_;
  std::map<std::string, llm::ParamKnowledge> knowledge_;
  pfs::BoundsContext bounds_;
  const rules::RuleSet* globalRules_;
  llm::TokenMeter& meter_;
  Transcript& transcript_;
  llm::LlmClient* llm_ = nullptr;
  llm::CallOutcome lastOutcome_;
  util::Rng rng_;

  std::optional<IoReport> report_;
  pfs::PfsConfig defaultConfig_;
  double defaultSeconds_ = 0.0;
  std::optional<pfs::PfsConfig> warmStartConfig_;
  std::string warmStartNote_;

  std::vector<MoveGroup> plan_;
  std::size_t nextGroup_ = 0;
  std::vector<FollowUpQuestion> pendingQuestions_;

  std::vector<Attempt> attempts_;
  pfs::PfsConfig bestConfig_;
  double bestSeconds_ = 0.0;
  std::optional<MoveGroup> inFlight_;  ///< the group being trialed
  std::optional<MoveGroup> repairGroup_;

  std::vector<NegativeFinding> negativeFindings_;
  std::vector<MoveGroup> succeededGroups_;
  std::string knowledgeDump_;  ///< static prompt section (token accounting)
  std::string analysisNotes_;  ///< accumulated follow-up answers (context)
};

}  // namespace stellar::agents

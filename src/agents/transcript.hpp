// Ordered event log of a tuning run — the material behind the paper's
// Fig. 10 case study. Every agent decision, tool call, analysis answer,
// and run outcome lands here with its actor tag.
#pragma once

#include <string>
#include <vector>

namespace stellar::agents {

struct TranscriptEvent {
  std::string actor;  ///< "analysis-agent", "tuning-agent", "system"
  std::string title;  ///< short event name ("I/O report", "attempt 2", ...)
  std::string body;
};

class Transcript {
 public:
  void add(std::string actor, std::string title, std::string body);

  [[nodiscard]] const std::vector<TranscriptEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// Fig. 10-style rendering: timeline of actor-tagged blocks.
  [[nodiscard]] std::string render() const;

 private:
  std::vector<TranscriptEvent> events_;
};

}  // namespace stellar::agents

#include "agents/action_sanitizer.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace stellar::agents {

const char* sanitizerModeName(SanitizerMode mode) noexcept {
  switch (mode) {
    case SanitizerMode::Observe: return "observe";
    case SanitizerMode::Enforce: return "enforce";
  }
  return "?";
}

SanitizerMode sanitizerModeByName(const std::string& name) {
  if (name == "observe") {
    return SanitizerMode::Observe;
  }
  if (name == "enforce") {
    return SanitizerMode::Enforce;
  }
  throw std::invalid_argument("unknown sanitizer mode '" + name +
                              "' (expected observe|enforce)");
}

const char* sanitizeIssueKindName(SanitizeIssueKind kind) noexcept {
  switch (kind) {
    case SanitizeIssueKind::UnknownKnob: return "unknown-knob";
    case SanitizeIssueKind::OutOfRange: return "out-of-range";
    case SanitizeIssueKind::DuplicateMove: return "duplicate-move";
    case SanitizeIssueKind::Contradictory: return "contradictory";
  }
  return "?";
}

std::string SanitizeVerdict::describe() const {
  std::string out;
  for (const SanitizeIssue& issue : issues) {
    out += std::string{sanitizeIssueKindName(issue.kind)} + " " + issue.param + "=" +
           std::to_string(issue.value) + ": " + issue.detail + "\n";
  }
  return out;
}

ActionSanitizer::ActionSanitizer(std::vector<std::string> knownKnobs,
                                 pfs::BoundsContext bounds, SanitizerMode mode,
                                 obs::CounterRegistry* counters)
    : knownKnobs_(std::move(knownKnobs)),
      bounds_(bounds),
      mode_(mode),
      counters_(counters) {}

SanitizeVerdict ActionSanitizer::sanitize(const TuningAgent::Action& action,
                                          const pfs::PfsConfig& incumbent) const {
  SanitizeVerdict verdict;
  verdict.config = action.config;
  if (action.kind != TuningAgent::ActionKind::RunConfig) {
    return verdict;
  }
  const auto count = [this](const char* name) {
    if (counters_ != nullptr) {
      counters_->counter(name).add();
    }
  };
  const bool enforce = mode_ == SanitizerMode::Enforce;

  std::map<std::string, std::int64_t> seen;
  for (const TuningAgent::RawMove& move : action.emitted) {
    // 1. The knob must exist in the extracted parameter spec.
    if (std::find(knownKnobs_.begin(), knownKnobs_.end(), move.param) ==
        knownKnobs_.end()) {
      verdict.issues.push_back(
          SanitizeIssue{SanitizeIssueKind::UnknownKnob, move.param, move.value, 0,
                        "no such parameter in the extracted spec; move rejected"});
      count("agent.llm.rejected_actions");
      continue;  // nothing to write in either mode: PfsConfig can't hold it
    }

    // 2. No duplicate or contradictory moves of the same knob.
    const auto prior = seen.find(move.param);
    if (prior != seen.end()) {
      if (prior->second == move.value) {
        verdict.issues.push_back(
            SanitizeIssue{SanitizeIssueKind::DuplicateMove, move.param, move.value,
                          move.value, "knob already moved to this value"});
      } else {
        const std::int64_t resolved =
            incumbent.get(move.param).value_or(prior->second);
        verdict.issues.push_back(SanitizeIssue{
            SanitizeIssueKind::Contradictory, move.param, move.value, resolved,
            "knob moved to " + std::to_string(prior->second) + " and " +
                std::to_string(move.value) +
                " in one payload; reverting to the incumbent value"});
        count("agent.llm.rejected_actions");
        if (enforce) {
          (void)verdict.config.set(move.param, resolved);
        }
      }
      continue;
    }
    seen.emplace(move.param, move.value);

    // 3. The value must sit inside its documented (dependent-aware) range.
    const auto bounds = pfs::paramBounds(move.param, verdict.config, bounds_);
    if (bounds && (move.value < bounds->min || move.value > bounds->max)) {
      const std::int64_t clamped = std::clamp(move.value, bounds->min, bounds->max);
      verdict.issues.push_back(SanitizeIssue{
          SanitizeIssueKind::OutOfRange, move.param, move.value, clamped,
          "outside [" + std::to_string(bounds->min) + ", " +
              std::to_string(bounds->max) + "]; clamped"});
      count("agent.llm.clamped_values");
      if (enforce) {
        (void)verdict.config.set(move.param, clamped);
      }
    }
  }

  if (enforce && !verdict.issues.empty()) {
    // Re-resolve dependent bounds in dependency order after repairs.
    verdict.config = pfs::clampConfig(verdict.config, bounds_);
  }
  if (!enforce) {
    verdict.config = action.config;  // Observe never mutates
  }
  return verdict;
}

}  // namespace stellar::agents

// The I/O Report the Analysis Agent produces and the follow-up question
// taxonomy the Tuning Agent draws from (§4.3's minor loop).
#pragma once

#include <cstdint>
#include <string>

#include "rules/rules.hpp"

namespace stellar::agents {

struct IoReport {
  /// Feature signature (doubles as the Tuning Context for learned rules).
  rules::WorkloadContext context;
  /// The prose report handed to the Tuning Agent.
  std::string text;
  /// Convenience aggregates the heuristics key on.
  std::uint64_t fileCount = 0;
  std::uint64_t totalBytes = 0;
  std::uint64_t largestFileBytes = 0;
  double medianFileBytes = 0.0;
  std::uint64_t metaOps = 0;
  std::uint64_t dataOps = 0;
};

/// What the Tuning Agent can ask the Analysis Agent (the Analysis? tool).
enum class FollowUpQuestion {
  FileSizeDistribution,
  MetaToDataRatio,
  AccessPattern,
  RankBalance,
  SharingStructure,
};

[[nodiscard]] const char* followUpQuestionText(FollowUpQuestion q) noexcept;

}  // namespace stellar::agents

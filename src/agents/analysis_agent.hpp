// The Analysis Agent (§4.3.1): a code-executing agent that inspects the
// Darshan dataframes, characterizes the application's I/O behaviour, and
// answers targeted follow-ups from the Tuning Agent.
//
// Where the paper's agent plans and executes Python through
// OpenInterpreter, this agent plans and executes dfquery programs: every
// analysis it performs is a real query against the real tables, recorded
// verbatim in the transcript, so the "what did the agent look at" trail is
// exactly as inspectable as the paper's.
#pragma once

#include "agents/io_report.hpp"
#include "agents/transcript.hpp"
#include "dataframe/from_darshan.hpp"
#include "llm/model_profile.hpp"
#include "llm/token_meter.hpp"

namespace stellar::agents {

class AnalysisAgent {
 public:
  AnalysisAgent(const df::DarshanTables& tables, llm::ModelProfile profile,
                llm::TokenMeter& meter, Transcript& transcript);

  /// The high-level characterization task: runs its query program and
  /// synthesizes the I/O Report.
  [[nodiscard]] IoReport initialReport();

  /// Runs the extra analysis for one follow-up and returns the answer
  /// text (also logged to the transcript).
  [[nodiscard]] std::string answerFollowUp(FollowUpQuestion question);

  /// Every query executed so far (the agent's "code").
  [[nodiscard]] const std::vector<std::string>& queriesRun() const noexcept {
    return queries_;
  }

 private:
  /// Executes one dfquery, logging it and its result.
  [[nodiscard]] df::DataFrame run(const std::string& query);

  const df::DarshanTables& tables_;
  llm::ModelProfile profile_;
  llm::TokenMeter& meter_;
  Transcript& transcript_;
  std::vector<std::string> queries_;
  std::string history_;  ///< growing conversation context (token accounting)
};

}  // namespace stellar::agents

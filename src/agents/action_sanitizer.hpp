// ActionSanitizer: the schema-validation boundary between the Tuning
// Agent's tool-call payloads and the file system (ISSUE 7).
//
// A real deployment cannot trust model output: a knob name may be
// hallucinated, a value may be out of its documented range, and one payload
// may move the same knob twice (to the same value — noise — or to two
// different values — a contradiction). The sanitizer walks the raw emitted
// payload of every RunConfig action and produces a typed SanitizeVerdict.
//
// Two modes: Observe records issues (counters + verdict) but leaves the
// action's config untouched — validation still happens downstream at the
// simulator, byte-for-byte the pre-sanitizer behavior. Enforce repairs the
// config: unknown knobs are dropped, contradictions resolve to the
// incumbent value, out-of-range values are clamped into their documented
// (dependent-aware) bounds — so nothing invalid ever reaches PfsSimulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agents/tuning_agent.hpp"
#include "obs/counters.hpp"
#include "pfs/params.hpp"

namespace stellar::agents {

enum class SanitizerMode : std::uint8_t {
  Observe,  ///< record issues only; never mutate the action's config
  Enforce,  ///< repair the config (drop / revert / clamp)
};

[[nodiscard]] const char* sanitizerModeName(SanitizerMode mode) noexcept;
/// Parses "observe" / "enforce" (case-sensitive); throws std::invalid_argument.
[[nodiscard]] SanitizerMode sanitizerModeByName(const std::string& name);

enum class SanitizeIssueKind : std::uint8_t {
  UnknownKnob,    ///< knob name absent from the extracted parameter spec
  OutOfRange,     ///< value outside documented (dependent-aware) bounds
  DuplicateMove,  ///< same knob moved twice to the same value
  Contradictory,  ///< same knob moved twice to different values
};

[[nodiscard]] const char* sanitizeIssueKindName(SanitizeIssueKind kind) noexcept;

struct SanitizeIssue {
  SanitizeIssueKind kind = SanitizeIssueKind::UnknownKnob;
  std::string param;
  std::int64_t value = 0;     ///< the offending emitted value
  std::int64_t resolved = 0;  ///< what Enforce wrote instead (0 for drops)
  std::string detail;
};

struct SanitizeVerdict {
  std::vector<SanitizeIssue> issues;
  /// The config to execute: repaired under Enforce, the action's own config
  /// under Observe.
  pfs::PfsConfig config;
  [[nodiscard]] bool clean() const noexcept { return issues.empty(); }
  /// One line per issue, for transcripts.
  [[nodiscard]] std::string describe() const;
};

class ActionSanitizer {
 public:
  /// `knownKnobs`: the extracted parameter spec (knob names the deployment
  /// actually documents). `counters` nullable.
  ActionSanitizer(std::vector<std::string> knownKnobs, pfs::BoundsContext bounds,
                  SanitizerMode mode, obs::CounterRegistry* counters);

  /// Validates a RunConfig action's raw payload against the spec. The
  /// incumbent config resolves contradictions (revert to what is already
  /// deployed). Non-RunConfig actions are vacuously clean.
  [[nodiscard]] SanitizeVerdict sanitize(const TuningAgent::Action& action,
                                         const pfs::PfsConfig& incumbent) const;

  [[nodiscard]] SanitizerMode mode() const noexcept { return mode_; }

 private:
  std::vector<std::string> knownKnobs_;
  pfs::BoundsContext bounds_;
  SanitizerMode mode_;
  obs::CounterRegistry* counters_;
};

}  // namespace stellar::agents

#include "agents/transcript.hpp"

namespace stellar::agents {

void Transcript::add(std::string actor, std::string title, std::string body) {
  events_.push_back(TranscriptEvent{std::move(actor), std::move(title), std::move(body)});
}

std::string Transcript::render() const {
  std::string out;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TranscriptEvent& e = events_[i];
    out += "[" + std::to_string(i + 1) + "] " + e.actor + " — " + e.title + "\n";
    // Indent the body for readability.
    std::string body = e.body;
    std::string indented = "    ";
    for (const char c : body) {
      indented.push_back(c);
      if (c == '\n') {
        indented += "    ";
      }
    }
    out += indented + "\n\n";
  }
  return out;
}

}  // namespace stellar::agents

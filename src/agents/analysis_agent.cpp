#include "agents/analysis_agent.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "dfquery/eval.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace stellar::agents {

namespace {
constexpr std::uint64_t kSmallFileThreshold = 1 * util::kMiB;
}

const char* followUpQuestionText(FollowUpQuestion q) noexcept {
  switch (q) {
    case FollowUpQuestion::FileSizeDistribution:
      return "What is the distribution of file sizes (min/median/max), and how "
             "many files are involved?";
    case FollowUpQuestion::MetaToDataRatio:
      return "What is the ratio of metadata operations to data operations?";
    case FollowUpQuestion::AccessPattern:
      return "What are the dominant access sizes and how sequential are the "
             "accesses?";
    case FollowUpQuestion::RankBalance:
      return "Is the I/O balanced across ranks, or do few ranks dominate?";
    case FollowUpQuestion::SharingStructure:
      return "Are files shared across ranks or private to single ranks?";
  }
  return "?";
}

AnalysisAgent::AnalysisAgent(const df::DarshanTables& tables, llm::ModelProfile profile,
                             llm::TokenMeter& meter, Transcript& transcript)
    : tables_(tables), profile_(std::move(profile)), meter_(meter),
      transcript_(transcript) {}

df::DataFrame AnalysisAgent::run(const std::string& query) {
  const dfq::TableSet tableSet{{"posix", &tables_.posix}};
  df::DataFrame result = dfq::runQuery(query, tableSet);
  queries_.push_back(query);
  transcript_.add("analysis-agent", "executed query",
                  query + "\n" + result.toText(8));
  // One inference call per code-execution round, OpenInterpreter-style:
  // the prompt re-sends the fixed context plus the growing query/result
  // history, so most input tokens resolve from the prompt cache (§5.7).
  if (history_.empty()) {
    history_ = "You are an I/O analysis agent.\n" + tables_.headerText + "\n" +
               tables_.columnDescriptions + tables_.posix.toText(30);
  }
  meter_.recordCall("analysis-agent", history_, query + "\n" + result.toText(8));
  history_ += query + "\n" + result.toText(8);
  return result;
}

IoReport AnalysisAgent::initialReport() {
  IoReport report;

  // --- the agent's query program ------------------------------------------
  const df::DataFrame volume = run(
      "select sum(POSIX_BYTES_READ), sum(POSIX_BYTES_WRITTEN), count(*) from posix");
  const double bytesRead = *df::asNumber(volume.at("sum_POSIX_BYTES_READ", 0));
  const double bytesWritten = *df::asNumber(volume.at("sum_POSIX_BYTES_WRITTEN", 0));
  const double files = *df::asNumber(volume.at("count_rows", 0));

  const df::DataFrame ops = run(
      "select sum(POSIX_READS), sum(POSIX_WRITES), sum(POSIX_OPENS), "
      "sum(POSIX_STATS), sum(POSIX_UNLINKS), sum(POSIX_OPENS_CREATE), "
      "sum(POSIX_MODE_CLOSE) from posix");
  const double reads = *df::asNumber(ops.at("sum_POSIX_READS", 0));
  const double writes = *df::asNumber(ops.at("sum_POSIX_WRITES", 0));
  const double opens = *df::asNumber(ops.at("sum_POSIX_OPENS", 0));
  const double stats = *df::asNumber(ops.at("sum_POSIX_STATS", 0));
  const double unlinks = *df::asNumber(ops.at("sum_POSIX_UNLINKS", 0));
  const double closes = *df::asNumber(ops.at("sum_POSIX_MODE_CLOSE", 0));

  const df::DataFrame seq = run(
      "select sum(POSIX_SEQ_READS), sum(POSIX_SEQ_WRITES) from posix");
  const double seqOps = *df::asNumber(seq.at("sum_POSIX_SEQ_READS", 0)) +
                        *df::asNumber(seq.at("sum_POSIX_SEQ_WRITES", 0));

  const df::DataFrame shared = run(
      "select sum(POSIX_BYTES_READ), sum(POSIX_BYTES_WRITTEN) from posix "
      "where POSIX_FILE_SHARED_RANKS > 1");
  const double sharedBytes = *df::asNumber(shared.at("sum_POSIX_BYTES_READ", 0)) +
                             *df::asNumber(shared.at("sum_POSIX_BYTES_WRITTEN", 0));

  const df::DataFrame small = run(
      "select count(*) from posix where POSIX_MAX_BYTE_WRITTEN < " +
      std::to_string(kSmallFileThreshold) + " and POSIX_MAX_BYTE_WRITTEN > 0");
  const double smallFiles = *df::asNumber(small.at("count_rows", 0));

  const df::DataFrame sizes = run(
      "select POSIX_ACCESS1_ACCESS, POSIX_ACCESS1_COUNT from posix "
      "where POSIX_ACCESS1_COUNT > 0 order by POSIX_ACCESS1_COUNT desc limit 200");
  // Byte-weighted mode of the common access sizes across records: the
  // access size that moves the most data is what the data-path tuning
  // should target (a count-weighted mode would let tiny header writes
  // outvote the bulk transfers).
  std::map<std::int64_t, double> sizeWeight;
  for (std::size_t r = 0; r < sizes.rowCount(); ++r) {
    const auto size = *df::asNumber(sizes.at("POSIX_ACCESS1_ACCESS", r));
    const auto count = *df::asNumber(sizes.at("POSIX_ACCESS1_COUNT", r));
    sizeWeight[static_cast<std::int64_t>(size)] += count * size;
  }
  std::int64_t dominant = 0;
  double dominantWeight = -1;
  for (const auto& [size, weight] : sizeWeight) {
    if (weight > dominantWeight) {
      dominant = size;
      dominantWeight = weight;
    }
  }

  const df::DataFrame largest = run(
      "select max(POSIX_MAX_BYTE_WRITTEN) from posix");
  const double largestFile = *df::asNumber(largest.at("max_POSIX_MAX_BYTE_WRITTEN", 0));

  // --- synthesize the report ------------------------------------------------
  const double dataOps = reads + writes;
  const double metaOps = opens + stats + unlinks + closes;
  const double totalBytes = bytesRead + bytesWritten;

  rules::WorkloadContext& ctx = report.context;
  ctx.metaOpShare = metaOps + dataOps > 0 ? metaOps / (metaOps + dataOps) : 0.0;
  ctx.readShare = totalBytes > 0 ? bytesRead / totalBytes : 0.0;
  ctx.sequentialShare = dataOps > 0 ? std::min(1.0, seqOps / dataOps) : 0.0;
  ctx.sharedFileShare = totalBytes > 0 ? sharedBytes / totalBytes : 0.0;
  ctx.smallFileShare = files > 0 ? smallFiles / files : 0.0;
  ctx.dominantAccessSize = static_cast<std::uint64_t>(std::max<std::int64_t>(0, dominant));
  ctx.fileCount = static_cast<std::uint64_t>(files);
  ctx.totalBytes = static_cast<std::uint64_t>(totalBytes);

  report.fileCount = ctx.fileCount;
  report.totalBytes = ctx.totalBytes;
  report.largestFileBytes = static_cast<std::uint64_t>(largestFile);
  report.metaOps = static_cast<std::uint64_t>(metaOps);
  report.dataOps = static_cast<std::uint64_t>(dataOps);

  std::string& text = report.text;
  text += "I/O Report (from " + std::to_string(queries_.size()) + " analyses of the "
          "Darshan dataframes)\n";
  text += "- Files accessed: " + std::to_string(ctx.fileCount) + ", largest " +
          util::formatBytes(report.largestFileBytes) + ".\n";
  text += "- Data moved: " + util::formatBytes(ctx.totalBytes) + " (" +
          util::formatDouble(ctx.readShare * 100, 0) + "% read).\n";
  text += "- Operation mix: " + std::to_string(report.metaOps) + " metadata ops vs " +
          std::to_string(report.dataOps) + " data ops (" +
          util::formatDouble(ctx.metaOpShare * 100, 0) + "% metadata).\n";
  text += "- Access pattern: dominant access size " +
          util::formatBytes(ctx.dominantAccessSize) + ", " +
          util::formatDouble(ctx.sequentialShare * 100, 0) + "% sequential.\n";
  text += "- Sharing: " + util::formatDouble(ctx.sharedFileShare * 100, 0) +
          "% of bytes go to files shared by multiple ranks; " +
          util::formatDouble(ctx.smallFileShare * 100, 0) + "% of files are under " +
          util::formatBytes(kSmallFileThreshold) + ".\n";
  if (ctx.metaOpShare > 0.5) {
    text += "- Assessment: this application is metadata-intensive; per-file "
            "costs (creates, stats, opens, unlinks, lock traffic) dominate.\n";
  } else if (ctx.sequentialShare > 0.6 && ctx.dominantAccessSize >= util::kMiB) {
    text += "- Assessment: this application streams large sequential records; "
            "aggregate bandwidth to the OSTs is the limiting factor.\n";
  } else if (ctx.dominantAccessSize > 0 && ctx.dominantAccessSize < util::kMiB) {
    text += "- Assessment: this application issues many small or random "
            "records; per-RPC efficiency and request concurrency dominate.\n";
  } else {
    text += "- Assessment: mixed I/O behaviour; expect phase-dependent "
            "bottlenecks.\n";
  }

  // Final synthesis call: the whole analysis history plus the report.
  meter_.recordCall("analysis-agent", history_, report.text);
  history_ += report.text;

  transcript_.add("analysis-agent", "I/O report", report.text);
  return report;
}

std::string AnalysisAgent::answerFollowUp(FollowUpQuestion question) {
  transcript_.add("tuning-agent", "follow-up question", followUpQuestionText(question));
  std::string answer;
  switch (question) {
    case FollowUpQuestion::FileSizeDistribution: {
      const df::DataFrame dist = run(
          "select min(POSIX_MAX_BYTE_WRITTEN), mean(POSIX_MAX_BYTE_WRITTEN), "
          "max(POSIX_MAX_BYTE_WRITTEN), count(*) from posix "
          "where POSIX_MAX_BYTE_WRITTEN > 0");
      answer = "File sizes: min " +
               util::formatBytes(static_cast<std::uint64_t>(
                   *df::asNumber(dist.at("min_POSIX_MAX_BYTE_WRITTEN", 0)))) +
               ", mean " +
               util::formatBytes(static_cast<std::uint64_t>(
                   *df::asNumber(dist.at("mean_POSIX_MAX_BYTE_WRITTEN", 0)))) +
               ", max " +
               util::formatBytes(static_cast<std::uint64_t>(
                   *df::asNumber(dist.at("max_POSIX_MAX_BYTE_WRITTEN", 0)))) +
               " across " +
               std::to_string(static_cast<std::int64_t>(
                   *df::asNumber(dist.at("count_rows", 0)))) +
               " written files.";
      break;
    }
    case FollowUpQuestion::MetaToDataRatio: {
      const df::DataFrame r = run(
          "select sum(POSIX_OPENS), sum(POSIX_STATS), sum(POSIX_UNLINKS), "
          "sum(POSIX_READS), sum(POSIX_WRITES) from posix");
      const double meta = *df::asNumber(r.at("sum_POSIX_OPENS", 0)) +
                          *df::asNumber(r.at("sum_POSIX_STATS", 0)) +
                          *df::asNumber(r.at("sum_POSIX_UNLINKS", 0));
      const double data = *df::asNumber(r.at("sum_POSIX_READS", 0)) +
                          *df::asNumber(r.at("sum_POSIX_WRITES", 0));
      answer = "Metadata-to-data operation ratio: " +
               util::formatDouble(data > 0 ? meta / data : meta, 2) + " (" +
               util::formatDouble(meta, 0) + " metadata ops, " +
               util::formatDouble(data, 0) + " data ops).";
      break;
    }
    case FollowUpQuestion::AccessPattern: {
      const df::DataFrame r = run(
          "select POSIX_ACCESS1_ACCESS, sum(POSIX_ACCESS1_COUNT) from posix "
          "group by POSIX_ACCESS1_ACCESS order by sum_POSIX_ACCESS1_COUNT desc "
          "limit 5");
      answer = "Top access sizes by frequency:\n" + r.toText(5);
      break;
    }
    case FollowUpQuestion::RankBalance: {
      const df::DataFrame r = run(
          "select rank, sum(POSIX_BYTES_READ), sum(POSIX_BYTES_WRITTEN) from posix "
          "where rank >= 0 group by rank order by sum_POSIX_BYTES_WRITTEN desc "
          "limit 5");
      answer = r.rowCount() == 0
                   ? "All I/O goes to shared records; per-rank byte counts are "
                     "balanced by construction of the collective pattern."
                   : "Heaviest per-rank private-file I/O:\n" + r.toText(5);
      break;
    }
    case FollowUpQuestion::SharingStructure: {
      const df::DataFrame r = run(
          "select count(*), max(POSIX_FILE_SHARED_RANKS) from posix "
          "where POSIX_FILE_SHARED_RANKS > 1");
      const auto sharedFiles =
          static_cast<std::int64_t>(*df::asNumber(r.at("count_rows", 0)));
      answer = sharedFiles == 0
                   ? "No files are shared: every file is accessed by exactly one "
                     "rank (file-per-process)."
                   : std::to_string(sharedFiles) + " files are accessed by multiple "
                     "ranks (up to " +
                     util::formatDouble(
                         *df::asNumber(r.at("max_POSIX_FILE_SHARED_RANKS", 0)), 0) +
                     " ranks on one file).";
      break;
    }
  }
  meter_.recordCall("analysis-agent", history_ + followUpQuestionText(question), answer);
  history_ += std::string{followUpQuestionText(question)} + "\n" + answer + "\n";
  transcript_.add("analysis-agent", "follow-up answer", answer);
  return answer;
}

}  // namespace stellar::agents

#include "pfs/ost.hpp"

#include <algorithm>
#include <utility>

#include "faults/fault_injector.hpp"

namespace stellar::pfs {

OstModel::OstModel(sim::SimEngine& engine, const ClusterSpec& cluster, std::uint32_t index)
    : engine_(engine),
      cluster_(cluster),
      index_(index),
      nic_(engine, "ost" + std::to_string(index) + ".nic", 1),
      positioning_(engine, "ost" + std::to_string(index) + ".pos",
                   cluster.disk.queueDepth),
      transfer_(engine, "ost" + std::to_string(index) + ".xfer", 1) {}

void OstModel::submitBulk(std::uint64_t objectKey, std::uint64_t objectOffset,
                          std::uint64_t bytes, bool isWrite, std::function<void()> onDone) {
  ++rpcsServed_;
  bytesServed_ += bytes;
  if (isWrite) {
    bytesWritten_ += bytes;
  }

  // Wire time across the server NIC (shared by every client talking to
  // this OSS), then positioning, then the serialized media transfer.
  const double wireTime = static_cast<double>(bytes) / cluster_.network.nicBandwidth;
  nic_.submit(wireTime, [this, objectKey, objectOffset, bytes, isWrite,
                         onDone = std::move(onDone)]() mutable {
    const DiskSpec& disk = cluster_.disk;

    // Seek detection per object: contiguous with the previous access?
    bool contiguous = false;
    const auto it = lastEnd_.find(objectKey);
    if (it != lastEnd_.end() && it->second == objectOffset) {
      contiguous = true;
    }
    lastEnd_[objectKey] = objectOffset + bytes;
    if (!contiguous) {
      ++seeks_;
    }

    double positioning = disk.positioningOverhead + (contiguous ? 0.0 : disk.seekPenalty);
    // Congestion: a deep backlog adds latency (bounded, so throughput
    // saturates rather than collapsing).
    positioning += disk.congestionPenalty *
                   static_cast<double>(std::min<std::size_t>(positioning_.queuedRequests(), 64));
    positioning *= engine_.rng().uniform(0.9, 1.1);

    double transferTime = static_cast<double>(bytes) / disk.sequentialBandwidth +
                          disk.transferOverhead;
    // Writes commit through the journal with a small extra cost.
    if (isWrite) {
      transferTime += 0.02e-3;
    }
    transferTime *= engine_.rng().uniform(0.95, 1.05);

    // Degradation windows (src/faults) scale both disk stages: a target at
    // 30% capacity serves every request 1/0.3x slower.
    if (faults_ != nullptr) {
      const double slowdown = faults_->ostSlowdown(index_);
      positioning *= slowdown;
      transferTime *= slowdown;
    }

    positioning_.submit(positioning, [this, transferTime, onDone = std::move(onDone)]() mutable {
      transfer_.submit(transferTime, std::move(onDone));
    });
  });
}

void OstModel::reset() {
  lastEnd_.clear();
  rpcsServed_ = 0;
  bytesServed_ = 0;
  bytesWritten_ = 0;
  seeks_ = 0;
}

}  // namespace stellar::pfs

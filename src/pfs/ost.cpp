#include "pfs/ost.hpp"

#include <algorithm>
#include <utility>

#include "faults/fault_injector.hpp"

namespace stellar::pfs {

void OstBank::Stage::init(std::uint32_t count, std::uint32_t serverCount) {
  servers = std::max<std::uint32_t>(serverCount, 1);
  busy.assign(count, 0);
  busyTime.assign(count, 0.0);
  peakQueue.assign(count, 0);
  waiting.clear();
  waiting.resize(count);
}

OstBank::OstBank(sim::SimEngine& engine, const ClusterSpec& cluster,
                 std::uint32_t count, std::uint32_t globalOffset,
                 std::uint64_t runSeed)
    : engine_(engine), cluster_(cluster), globalOffset_(globalOffset) {
  nic_.init(count, 1);
  positioning_.init(count, cluster.disk.queueDepth);
  transfer_.init(count, 1);
  rpcsServed_.assign(count, 0);
  bytesServed_.assign(count, 0);
  bytesWritten_.assign(count, 0);
  seeks_.assign(count, 0);
  lastEnd_.resize(count);
  rng_.reserve(count);
  const std::uint64_t bankSeed = util::mix64(runSeed, 0x057EA17ULL);
  for (std::uint32_t i = 0; i < count; ++i) {
    rng_.emplace_back(util::mix64(bankSeed, globalOffset + i));
  }
}

void OstBank::stageSubmit(Stage& stage, std::uint32_t ost, StageRequest request) {
  if (request.serviceTime < 0.0) {
    request.serviceTime = 0.0;
  }
  if (stage.busy[ost] < stage.servers) {
    stageStart(stage, ost, std::move(request));
  } else {
    stage.waiting[ost].push(std::move(request));
    stage.peakQueue[ost] = std::max(stage.peakQueue[ost], stage.waiting[ost].size());
  }
}

void OstBank::stageStart(Stage& stage, std::uint32_t ost, StageRequest request) {
  ++stage.busy[ost];
  stage.busyTime[ost] += request.serviceTime;
  engine_.scheduleAfter(
      request.serviceTime,
      [this, &stage, ost, onDone = std::move(request.onDone)]() mutable {
        --stage.busy[ost];
        if (!stage.waiting[ost].empty()) {
          stageStart(stage, ost, stage.waiting[ost].pop());
        }
        if (onDone) {
          onDone();
        }
      });
}

void OstBank::submitBulk(std::uint32_t ost, std::uint64_t objectKey,
                         std::uint64_t objectOffset, std::uint64_t bytes,
                         bool isWrite, sim::Callback onDone) {
  ++rpcsServed_[ost];
  bytesServed_[ost] += bytes;
  if (isWrite) {
    bytesWritten_[ost] += bytes;
  }

  // Wire time across the server NIC (shared by every client talking to
  // this OSS), then positioning, then the serialized media transfer.
  const double wireTime = static_cast<double>(bytes) / cluster_.network.nicBandwidth;
  stageSubmit(nic_, ost,
              StageRequest{wireTime,
                           sim::Callback{engine_.arena(),
                                         [this, ost, objectKey, objectOffset, bytes,
                                          isWrite, onDone = std::move(onDone)]() mutable {
    const DiskSpec& disk = cluster_.disk;

    // Seek detection per object: contiguous with the previous access?
    auto& lastEnd = lastEnd_[ost];
    bool contiguous = false;
    const auto it = lastEnd.find(objectKey);
    if (it != lastEnd.end() && it->second == objectOffset) {
      contiguous = true;
    }
    lastEnd[objectKey] = objectOffset + bytes;
    if (!contiguous) {
      ++seeks_[ost];
    }

    double positioning = disk.positioningOverhead + (contiguous ? 0.0 : disk.seekPenalty);
    // Congestion: a deep backlog adds latency (bounded, so throughput
    // saturates rather than collapsing).
    positioning += disk.congestionPenalty *
                   static_cast<double>(
                       std::min<std::size_t>(positioning_.waiting[ost].size(), 64));
    positioning *= rng_[ost].uniform(0.9, 1.1);

    double transferTime = static_cast<double>(bytes) / disk.sequentialBandwidth +
                          disk.transferOverhead;
    // Writes commit through the journal with a small extra cost.
    if (isWrite) {
      transferTime += 0.02e-3;
    }
    transferTime *= rng_[ost].uniform(0.95, 1.05);

    // Degradation windows (src/faults) scale both disk stages: a target at
    // 30% capacity serves every request 1/0.3x slower.
    if (faults_ != nullptr) {
      const double slowdown = faults_->ostSlowdown(globalOffset_ + ost);
      positioning *= slowdown;
      transferTime *= slowdown;
    }

    stageSubmit(positioning_, ost,
                StageRequest{positioning,
                             sim::Callback{engine_.arena(),
                                           [this, ost, transferTime,
                                            onDone = std::move(onDone)]() mutable {
      stageSubmit(transfer_, ost, StageRequest{transferTime, std::move(onDone)});
    }}});
  }}});
}

void OstBank::reset() {
  const std::uint32_t n = count();
  for (std::uint32_t i = 0; i < n; ++i) {
    lastEnd_[i].clear();
  }
  rpcsServed_.assign(n, 0);
  bytesServed_.assign(n, 0);
  bytesWritten_.assign(n, 0);
  seeks_.assign(n, 0);
}

}  // namespace stellar::pfs

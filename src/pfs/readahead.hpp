// Per-file sliding-window readahead state machine, modeled on production
// readahead designs (reada-style): sequential detection grows the window,
// a miss shrinks it back to the initial ramp, small files get one-shot
// whole-file prefetch, and window edges round up to RPC-payload multiples so
// steady-state prefetch RPCs are full-sized.
//
// The machine is deliberately pure: `advanceWindow` maps (window state, read,
// knobs) -> (new window state, prefetch range, event) with no allocation and
// no loops, so the event hot path pays O(1) per read and unit tests can pin
// every transition without a simulator.
#pragma once

#include <cstdint>

namespace stellar::pfs {

/// Knob snapshot the window machine decides against. Resolved once per run
/// from PfsConfig (all byte-denominated).
struct ReadaheadKnobs {
  std::uint64_t clientBudgetBytes = 0;  ///< llite.max_read_ahead_mb
  std::uint64_t perFileBytes = 0;       ///< llite.max_read_ahead_per_file_mb
  std::uint64_t wholeFileBytes = 0;     ///< llite.max_read_ahead_whole_mb
  std::uint64_t alignBytes = 0;         ///< RPC payload size; 0 = no rounding

  [[nodiscard]] bool enabled() const noexcept {
    return clientBudgetBytes > 0 && perFileBytes > 0;
  }
};

/// What a single advance did to the window, for the RunAudit tallies.
enum class ReadaEvent : std::uint8_t {
  None,    ///< readahead disabled, or window parked in whole-file mode
  Opened,  ///< first read of the fd activated a window (or whole-file shot)
  Grown,   ///< sequential hit doubled the window (saturates at per-file cap)
  Reset,   ///< non-sequential read shrank the window back to the initial ramp
};

/// Sliding window for one open file descriptor. Two words of state; embeds
/// directly in FdState so advancing it never allocates.
struct ReadaWindow {
  static constexpr std::uint64_t kInitialBytes = 256 * 1024;

  std::uint64_t length = 0;  ///< current window length in bytes; 0 = closed
  bool wholeMode = false;    ///< whole-file shot issued; window stays parked

  void close() noexcept {
    length = 0;
    wholeMode = false;
  }
};

/// The prefetch range a window advance asks for. Empty (`end <= begin`) when
/// the read should not speculate: disabled knobs, a miss, or a parked
/// whole-file window.
struct ReadaDecision {
  std::uint64_t prefetchBegin = 0;
  std::uint64_t prefetchEnd = 0;  ///< exclusive
  ReadaEvent event = ReadaEvent::None;

  [[nodiscard]] bool wantsPrefetch() const noexcept {
    return prefetchEnd > prefetchBegin;
  }
};

/// Advances `window` for a read of [offset, readEnd) and returns the range to
/// prefetch. `firstRead` marks the fd's first read; `sequential` means the
/// read starts exactly at the previous read's end. `sizeKnownLocally` gates
/// whole-file mode on the client actually holding the file size (a cached
/// DLM lock — which is what a statahead scan primes), and `knownSize` caps
/// speculation at EOF when it is non-zero.
[[nodiscard]] ReadaDecision advanceWindow(ReadaWindow& window,
                                          const ReadaheadKnobs& knobs,
                                          bool sequential, bool firstRead,
                                          bool sizeKnownLocally,
                                          std::uint64_t offset,
                                          std::uint64_t readEnd,
                                          std::uint64_t knownSize) noexcept;

}  // namespace stellar::pfs

#include "pfs/client_cache.hpp"

#include <algorithm>
#include <cassert>

namespace stellar::pfs {

// ---------------------------------------------------------------- Dirty --

bool DirtyTracker::tryReserve(std::uint64_t bytes) {
  if (bytes > budget_) {
    // Oversized single write: admit only when nothing else is dirty so it
    // can make progress (mirrors Lustre forcing sync writeout).
    if (dirty_ == 0 && waiters_.empty()) {
      dirty_ = bytes;
      noteReserve(bytes);
      return true;
    }
    return false;
  }
  if (dirty_ + bytes <= budget_ && waiters_.empty()) {
    dirty_ += bytes;
    noteReserve(bytes);
    return true;
  }
  return false;
}

void DirtyTracker::waitForSpace(std::uint64_t bytes, std::function<void()> onSpace) {
  waiters_.push_back(Waiter{bytes, std::move(onSpace)});
}

void DirtyTracker::release(std::uint64_t bytes) {
  dirty_ = bytes >= dirty_ ? 0 : dirty_ - bytes;
  admitWaiters();
}

void DirtyTracker::admitWaiters() {
  while (!waiters_.empty()) {
    Waiter& head = waiters_.front();
    const bool oversized = head.bytes > budget_;
    if (oversized ? dirty_ != 0 : dirty_ + head.bytes > budget_) {
      return;
    }
    dirty_ += head.bytes;
    noteReserve(head.bytes);
    auto onSpace = std::move(head.onSpace);
    waiters_.pop_front();
    onSpace();
  }
}

// ------------------------------------------------------------ DirtyBank --

void DirtyBank::configure(std::size_t lanes, std::uint64_t budgetBytes) {
  budget_ = budgetBytes;
  dirty_.assign(lanes, 0);
  peak_.assign(lanes, 0);
  maxReservation_.assign(lanes, 0);
  waiters_.clear();
}

std::size_t DirtyBank::waiterCount(std::size_t lane) const {
  const auto it = waiters_.find(lane);
  return it == waiters_.end() ? 0 : it->second.size();
}

bool DirtyBank::tryReserve(std::size_t lane, std::uint64_t bytes) {
  const auto waitIt = waiters_.find(lane);
  const bool hasWaiters = waitIt != waiters_.end() && !waitIt->second.empty();
  if (bytes > budget_) {
    // Oversized single write: admit only when nothing else is dirty so it
    // can make progress (mirrors Lustre forcing sync writeout).
    if (dirty_[lane] == 0 && !hasWaiters) {
      dirty_[lane] = bytes;
      noteReserve(lane, bytes);
      return true;
    }
    return false;
  }
  if (dirty_[lane] + bytes <= budget_ && !hasWaiters) {
    dirty_[lane] += bytes;
    noteReserve(lane, bytes);
    return true;
  }
  return false;
}

void DirtyBank::waitForSpace(std::size_t lane, std::uint64_t bytes,
                             std::function<void()> onSpace) {
  waiters_[lane].push_back(Waiter{bytes, std::move(onSpace)});
}

void DirtyBank::release(std::size_t lane, std::uint64_t bytes) {
  dirty_[lane] = bytes >= dirty_[lane] ? 0 : dirty_[lane] - bytes;
  admitWaiters(lane);
}

void DirtyBank::admitWaiters(std::size_t lane) {
  const auto it = waiters_.find(lane);
  if (it == waiters_.end()) {
    return;
  }
  // Mapped deques stay put under map growth, but `it` may not: onSpace()
  // can re-enter and add waiters on other lanes. Hold the reference, erase
  // by key.
  std::deque<Waiter>& queue = it->second;
  while (!queue.empty()) {
    Waiter& head = queue.front();
    const bool oversized = head.bytes > budget_;
    if (oversized ? dirty_[lane] != 0 : dirty_[lane] + head.bytes > budget_) {
      return;
    }
    dirty_[lane] += head.bytes;
    noteReserve(lane, head.bytes);
    auto onSpace = std::move(head.onSpace);
    queue.pop_front();
    onSpace();
  }
  waiters_.erase(lane);
}

// ------------------------------------------------------------ Readahead --

Coverage ReadAheadCache::query(FileId file, std::uint64_t begin, std::uint64_t end) {
  Coverage cov;
  auto fileIt = files_.find(file);
  std::uint64_t cursor = begin;
  if (fileIt != files_.end()) {
    ChunkMap& chunks = fileIt->second;
    // First chunk whose begin > cursor, then step back to check overlap.
    auto it = chunks.upper_bound(cursor);
    if (it != chunks.begin()) {
      --it;
      if (it->second.end <= cursor) {
        ++it;
      }
    }
    for (; it != chunks.end() && it->second.begin < end; ++it) {
      CacheChunk& chunk = it->second;
      if (chunk.begin > cursor) {
        cov.missing.emplace_back(cursor, chunk.begin);
      }
      if (!chunk.ready) {
        cov.pending.push_back(&chunk);
      }
      cursor = std::max(cursor, chunk.end);
    }
  }
  if (cursor < end) {
    cov.missing.emplace_back(cursor, end);
  }
  return cov;
}

CacheChunk* ReadAheadCache::insertPending(FileId file, std::uint64_t begin,
                                          std::uint64_t end) {
  assert(end > begin);
  CacheChunk chunk;
  chunk.begin = begin;
  chunk.end = end;
  outstanding_ += end - begin;
  auto [it, inserted] = files_[file].emplace(begin, std::move(chunk));
  assert(inserted);
  (void)inserted;
  return &it->second;
}

void ReadAheadCache::markReady(CacheChunk* chunk) {
  chunk->ready = true;
  // Waiters are fired by the owner after markReady (it needs to reschedule
  // them as simulation events); nothing else to do here.
}

void ReadAheadCache::consume(FileId file, std::uint64_t begin, std::uint64_t end) {
  auto fileIt = files_.find(file);
  if (fileIt == files_.end()) {
    return;
  }
  ChunkMap& chunks = fileIt->second;
  auto it = chunks.upper_bound(begin);
  if (it != chunks.begin()) {
    --it;
    if (it->second.end <= begin) {
      ++it;
    }
  }
  while (it != chunks.end() && it->second.begin < end) {
    CacheChunk& chunk = it->second;
    const std::uint64_t lo = std::max(begin, chunk.begin);
    const std::uint64_t hi = std::min(end, chunk.end);
    if (hi > lo) {
      const std::uint64_t newConsumed =
          std::max(chunk.consumed, hi - chunk.begin);  // streaming: high-water mark
      const std::uint64_t delta = newConsumed - chunk.consumed;
      chunk.consumed = newConsumed;
      outstanding_ = delta >= outstanding_ ? 0 : outstanding_ - delta;
    }
    if (chunk.ready && chunk.consumed >= chunk.end - chunk.begin) {
      it = chunks.erase(it);
    } else {
      ++it;
    }
  }
  if (chunks.empty()) {
    files_.erase(fileIt);
  }
}

std::vector<std::function<void()>> ReadAheadCache::dropFile(FileId file) {
  std::vector<std::function<void()>> orphans;
  auto fileIt = files_.find(file);
  if (fileIt == files_.end()) {
    return orphans;
  }
  for (auto& [begin, chunk] : fileIt->second) {
    (void)begin;
    const std::uint64_t span = chunk.end - chunk.begin;
    const std::uint64_t unconsumed = span - std::min(span, chunk.consumed);
    outstanding_ = unconsumed >= outstanding_ ? 0 : outstanding_ - unconsumed;
    for (auto& waiter : chunk.waiters) {
      orphans.push_back(std::move(waiter));
    }
  }
  files_.erase(fileIt);
  return orphans;
}

CacheChunk* ReadAheadCache::find(FileId file, std::uint64_t begin) {
  auto fileIt = files_.find(file);
  if (fileIt == files_.end()) {
    return nullptr;
  }
  auto it = fileIt->second.find(begin);
  return it == fileIt->second.end() ? nullptr : &it->second;
}

std::size_t ReadAheadCache::chunkCount(FileId file) const {
  const auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.size();
}

// ----------------------------------------------------------------- Lock --

LockLru::LockLru(std::size_t capacity, double maxAge) {
  configure(capacity, maxAge);
}

void LockLru::configure(std::size_t capacity, double maxAge) {
  capacity_ = capacity == 0 ? kDynamicCapacity : capacity;
  maxAge_ = maxAge;
  while (order_.size() > capacity_) {
    evict(order_.back().file);
  }
}

void LockLru::evict(FileId file) {
  const auto it = index_.find(file);
  if (it == index_.end()) {
    return;
  }
  order_.erase(it->second);
  index_.erase(it);
  ++evictions_;
  if (onEvict_) {
    onEvict_(file);
  }
}

bool LockLru::touch(FileId file, double now) {
  const auto it = index_.find(file);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  if (now - it->second->acquiredAt > maxAge_) {
    // Expired: behaves as a miss and the stale entry (plus the pages it
    // protected) is dropped.
    evict(file);
    ++misses_;
    return false;
  }
  // Refresh recency; lock use extends residency.
  order_.splice(order_.begin(), order_, it->second);
  it->second->acquiredAt = now;
  ++hits_;
  return true;
}

void LockLru::insert(FileId file, double now) {
  const auto it = index_.find(file);
  if (it != index_.end()) {
    it->second->acquiredAt = now;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{file, now});
  index_[file] = order_.begin();
  ++inserts_;
  while (order_.size() > capacity_) {
    evict(order_.back().file);
  }
}

void LockLru::erase(FileId file) {
  evict(file);
}

}  // namespace stellar::pfs

#include "pfs/client_cache.hpp"

#include <algorithm>
#include <cassert>

namespace stellar::pfs {

// ---------------------------------------------------------------- Dirty --

bool DirtyTracker::tryReserve(std::uint64_t bytes) {
  if (bytes > budget_) {
    // Oversized single write: admit only when nothing else is dirty so it
    // can make progress (mirrors Lustre forcing sync writeout).
    if (dirty_ == 0 && waiters_.empty()) {
      dirty_ = bytes;
      noteReserve(bytes);
      return true;
    }
    return false;
  }
  if (dirty_ + bytes <= budget_ && waiters_.empty()) {
    dirty_ += bytes;
    noteReserve(bytes);
    return true;
  }
  return false;
}

void DirtyTracker::waitForSpace(std::uint64_t bytes, std::function<void()> onSpace) {
  waiters_.push_back(Waiter{bytes, std::move(onSpace)});
}

void DirtyTracker::release(std::uint64_t bytes) {
  dirty_ = bytes >= dirty_ ? 0 : dirty_ - bytes;
  admitWaiters();
}

void DirtyTracker::admitWaiters() {
  while (!waiters_.empty()) {
    Waiter& head = waiters_.front();
    const bool oversized = head.bytes > budget_;
    if (oversized ? dirty_ != 0 : dirty_ + head.bytes > budget_) {
      return;
    }
    dirty_ += head.bytes;
    noteReserve(head.bytes);
    auto onSpace = std::move(head.onSpace);
    waiters_.pop_front();
    onSpace();
  }
}

// ------------------------------------------------------------ DirtyBank --

void DirtyBank::configure(std::size_t lanes, std::uint64_t budgetBytes) {
  budget_ = budgetBytes;
  dirty_.assign(lanes, 0);
  peak_.assign(lanes, 0);
  maxReservation_.assign(lanes, 0);
  waiters_.clear();
}

std::size_t DirtyBank::waiterCount(std::size_t lane) const {
  const auto it = waiters_.find(lane);
  return it == waiters_.end() ? 0 : it->second.size();
}

bool DirtyBank::tryReserve(std::size_t lane, std::uint64_t bytes) {
  const auto waitIt = waiters_.find(lane);
  const bool hasWaiters = waitIt != waiters_.end() && !waitIt->second.empty();
  if (bytes > budget_) {
    // Oversized single write: admit only when nothing else is dirty so it
    // can make progress (mirrors Lustre forcing sync writeout).
    if (dirty_[lane] == 0 && !hasWaiters) {
      dirty_[lane] = bytes;
      noteReserve(lane, bytes);
      return true;
    }
    return false;
  }
  if (dirty_[lane] + bytes <= budget_ && !hasWaiters) {
    dirty_[lane] += bytes;
    noteReserve(lane, bytes);
    return true;
  }
  return false;
}

void DirtyBank::waitForSpace(std::size_t lane, std::uint64_t bytes,
                             std::function<void()> onSpace) {
  waiters_[lane].push_back(Waiter{bytes, std::move(onSpace)});
}

void DirtyBank::release(std::size_t lane, std::uint64_t bytes) {
  dirty_[lane] = bytes >= dirty_[lane] ? 0 : dirty_[lane] - bytes;
  admitWaiters(lane);
}

void DirtyBank::admitWaiters(std::size_t lane) {
  const auto it = waiters_.find(lane);
  if (it == waiters_.end()) {
    return;
  }
  // Mapped deques stay put under map growth, but `it` may not: onSpace()
  // can re-enter and add waiters on other lanes. Hold the reference, erase
  // by key.
  std::deque<Waiter>& queue = it->second;
  while (!queue.empty()) {
    Waiter& head = queue.front();
    const bool oversized = head.bytes > budget_;
    if (oversized ? dirty_[lane] != 0 : dirty_[lane] + head.bytes > budget_) {
      return;
    }
    dirty_[lane] += head.bytes;
    noteReserve(lane, head.bytes);
    auto onSpace = std::move(head.onSpace);
    queue.pop_front();
    onSpace();
  }
  waiters_.erase(lane);
}

// ------------------------------------------------------------ Readahead --

Coverage ReadAheadCache::query(FileId file, std::uint64_t begin, std::uint64_t end) {
  Coverage cov;
  auto fileIt = files_.find(file);
  std::uint64_t cursor = begin;
  if (fileIt != files_.end()) {
    ChunkMap& chunks = fileIt->second;
    // First chunk whose begin > cursor, then step back to check overlap.
    auto it = chunks.upper_bound(cursor);
    if (it != chunks.begin()) {
      --it;
      if (it->second.end <= cursor) {
        ++it;
      }
    }
    for (; it != chunks.end() && it->second.begin < end; ++it) {
      CacheChunk& chunk = it->second;
      if (chunk.begin > cursor) {
        cov.missing.emplace_back(cursor, chunk.begin);
      }
      if (!chunk.ready) {
        cov.pending.push_back(&chunk);
      }
      cursor = std::max(cursor, chunk.end);
    }
  }
  if (cursor < end) {
    cov.missing.emplace_back(cursor, end);
  }
  return cov;
}

CacheChunk* ReadAheadCache::insertPending(FileId file, std::uint64_t begin,
                                          std::uint64_t end) {
  assert(end > begin);
  CacheChunk chunk;
  chunk.begin = begin;
  chunk.end = end;
  outstanding_ += end - begin;
  prefetchedTotal_ += end - begin;
  auto [it, inserted] = files_[file].emplace(begin, std::move(chunk));
  assert(inserted);
  (void)inserted;
  return &it->second;
}

void ReadAheadCache::markReady(CacheChunk* chunk) {
  chunk->ready = true;
  // Waiters are fired by the owner after markReady (it needs to reschedule
  // them as simulation events); nothing else to do here.
}

void ReadAheadCache::consume(FileId file, std::uint64_t begin, std::uint64_t end) {
  auto fileIt = files_.find(file);
  if (fileIt == files_.end()) {
    return;
  }
  ChunkMap& chunks = fileIt->second;
  auto it = chunks.upper_bound(begin);
  if (it != chunks.begin()) {
    --it;
    if (it->second.end <= begin) {
      ++it;
    }
  }
  while (it != chunks.end() && it->second.begin < end) {
    CacheChunk& chunk = it->second;
    const std::uint64_t lo = std::max(begin, chunk.begin);
    const std::uint64_t hi = std::min(end, chunk.end);
    if (hi > lo) {
      const std::uint64_t newConsumed =
          std::max(chunk.consumed, hi - chunk.begin);  // streaming: high-water mark
      const std::uint64_t delta = newConsumed - chunk.consumed;
      chunk.consumed = newConsumed;
      outstanding_ = delta >= outstanding_ ? 0 : outstanding_ - delta;
      consumedTotal_ += delta;
    }
    if (chunk.ready && chunk.consumed >= chunk.end - chunk.begin) {
      it = chunks.erase(it);
    } else {
      ++it;
    }
  }
  if (chunks.empty()) {
    files_.erase(fileIt);
  }
}

std::vector<std::function<void()>> ReadAheadCache::dropFile(FileId file) {
  std::vector<std::function<void()>> orphans;
  auto fileIt = files_.find(file);
  if (fileIt == files_.end()) {
    return orphans;
  }
  for (auto& [begin, chunk] : fileIt->second) {
    (void)begin;
    const std::uint64_t span = chunk.end - chunk.begin;
    const std::uint64_t unconsumed = span - std::min(span, chunk.consumed);
    outstanding_ = unconsumed >= outstanding_ ? 0 : outstanding_ - unconsumed;
    discardedTotal_ += unconsumed;
    for (auto& waiter : chunk.waiters) {
      orphans.push_back(std::move(waiter));
    }
  }
  files_.erase(fileIt);
  return orphans;
}

CacheChunk* ReadAheadCache::find(FileId file, std::uint64_t begin) {
  auto fileIt = files_.find(file);
  if (fileIt == files_.end()) {
    return nullptr;
  }
  auto it = fileIt->second.find(begin);
  return it == fileIt->second.end() ? nullptr : &it->second;
}

std::size_t ReadAheadCache::chunkCount(FileId file) const {
  const auto it = files_.find(file);
  return it == files_.end() ? 0 : it->second.size();
}

// ------------------------------------------------------------ Writeback --

void WritebackBank::configure(std::size_t lanes) {
  pending_.assign(lanes, {});
  bytes_.assign(lanes, 0);
  scratch_.clear();
}

void WritebackBank::append(std::size_t lane, FileId file,
                           std::uint64_t objectOffset, std::uint64_t length) {
  pending_[lane].push_back(Segment{file, objectOffset, length});
  bytes_[lane] += length;
}

std::uint64_t WritebackBank::drain(
    std::size_t lane, bool fileOnly, FileId onlyFile, std::uint64_t maxRpcBytes,
    const std::function<void(FileId, std::uint64_t, std::uint64_t)>& emit) {
  std::vector<Segment>& queue = pending_[lane];
  scratch_.clear();
  if (fileOnly) {
    // Fsync of one file: pull its segments out, leave the rest queued.
    std::size_t keep = 0;
    for (Segment& seg : queue) {
      if (seg.file == onlyFile) {
        scratch_.push_back(seg);
      } else {
        queue[keep++] = seg;
      }
    }
    queue.resize(keep);
  } else {
    scratch_.swap(queue);
    queue.clear();
  }
  if (scratch_.empty()) {
    return 0;
  }

  // Elevator order per file, then merge contiguous runs so neighbouring
  // dirty segments share one bulk RPC.
  std::sort(scratch_.begin(), scratch_.end(),
            [](const Segment& a, const Segment& b) {
              if (a.file != b.file) {
                return a.file < b.file;
              }
              return a.objectOffset < b.objectOffset;
            });

  std::uint64_t drained = 0;
  std::size_t i = 0;
  while (i < scratch_.size()) {
    const FileId file = scratch_[i].file;
    const std::uint64_t runBegin = scratch_[i].objectOffset;
    std::uint64_t runEnd = runBegin + scratch_[i].length;
    ++i;
    while (i < scratch_.size() && scratch_[i].file == file &&
           scratch_[i].objectOffset == runEnd) {
      runEnd += scratch_[i].length;
      ++i;
    }
    std::uint64_t cursor = runBegin;
    while (cursor < runEnd) {
      const std::uint64_t len = std::min(maxRpcBytes, runEnd - cursor);
      emit(file, cursor, len);
      cursor += len;
      drained += len;
    }
  }
  bytes_[lane] -= std::min(bytes_[lane], drained);
  return drained;
}

std::uint64_t WritebackBank::discardFile(std::size_t lane, FileId file) {
  std::vector<Segment>& queue = pending_[lane];
  std::uint64_t dropped = 0;
  std::size_t keep = 0;
  for (Segment& seg : queue) {
    if (seg.file == file) {
      dropped += seg.length;
    } else {
      queue[keep++] = seg;
    }
  }
  queue.resize(keep);
  bytes_[lane] -= std::min(bytes_[lane], dropped);
  return dropped;
}

// ----------------------------------------------------------------- Lock --

LockLru::LockLru(std::size_t capacity, double maxAge) {
  configure(capacity, maxAge);
}

void LockLru::configure(std::size_t capacity, double maxAge) {
  capacity_ = capacity == 0 ? kDynamicCapacity : capacity;
  maxAge_ = maxAge;
  while (order_.size() > capacity_) {
    evict(order_.back().file);
  }
}

void LockLru::evict(FileId file) {
  const auto it = index_.find(file);
  if (it == index_.end()) {
    return;
  }
  order_.erase(it->second);
  index_.erase(it);
  ++evictions_;
  if (onEvict_) {
    onEvict_(file);
  }
}

bool LockLru::touch(FileId file, double now) {
  const auto it = index_.find(file);
  if (it == index_.end()) {
    ++misses_;
    return false;
  }
  if (now - it->second->acquiredAt > maxAge_) {
    // Expired: behaves as a miss and the stale entry (plus the pages it
    // protected) is dropped.
    evict(file);
    ++misses_;
    return false;
  }
  // Refresh recency; lock use extends residency.
  order_.splice(order_.begin(), order_, it->second);
  it->second->acquiredAt = now;
  ++hits_;
  return true;
}

bool LockLru::contains(FileId file, double now) const {
  const auto it = index_.find(file);
  return it != index_.end() && now - it->second->acquiredAt <= maxAge_;
}

void LockLru::insert(FileId file, double now) {
  const auto it = index_.find(file);
  if (it != index_.end()) {
    it->second->acquiredAt = now;
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(Entry{file, now});
  index_[file] = order_.begin();
  ++inserts_;
  while (order_.size() > capacity_) {
    evict(order_.back().file);
  }
}

void LockLru::erase(FileId file) {
  evict(file);
}

}  // namespace stellar::pfs

// Object storage target bank.
//
// Models every OST owned by one engine shard as struct-of-arrays indexed
// by dense OST id: a server NIC in front of a disk with bounded efficient
// concurrency, per-object contiguity tracking (seek penalties), and
// congestion latency past the efficient queue depth. Each OST runs the
// same three FIFO stages the old per-object OstModel had —
// nic (1 server) -> positioning (queueDepth servers) -> transfer (1) —
// but hot counters live in flat vectors so datacenter-scale sweeps stay
// cache-resident instead of chasing one heap object per OST.
//
// Service jitter draws from a per-OST random stream keyed by the OST's
// *global* id and the run seed, never from the engine's stream: results
// are therefore invariant under how cells are grouped onto engine shards.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pfs/topology.hpp"
#include "sim/callback.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace stellar::faults {
class FaultInjector;
}

namespace stellar::pfs {

class OstBank {
 public:
  /// `count` OSTs with local ids [0, count); `globalOffset` maps local to
  /// global ids (fault targeting and jitter streams use global ids).
  OstBank(sim::SimEngine& engine, const ClusterSpec& cluster, std::uint32_t count,
          std::uint32_t globalOffset = 0, std::uint64_t runSeed = 0);

  OstBank(const OstBank&) = delete;
  OstBank& operator=(const OstBank&) = delete;

  /// Submits a bulk data RPC that has *arrived at the server*. `objectKey`
  /// identifies the backing object (file id works: one object per file per
  /// OST); `objectOffset` is object-local. Calls onDone when the server
  /// has completed the transfer + disk work.
  void submitBulk(std::uint32_t ost, std::uint64_t objectKey,
                  std::uint64_t objectOffset, std::uint64_t bytes, bool isWrite,
                  sim::Callback onDone);

  template <sim::EventCallable F>
  void submitBulk(std::uint32_t ost, std::uint64_t objectKey,
                  std::uint64_t objectOffset, std::uint64_t bytes, bool isWrite,
                  F&& onDone) {
    submitBulk(ost, objectKey, objectOffset, bytes, isWrite,
               sim::Callback{engine_.arena(), std::forward<F>(onDone)});
  }

  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(rpcsServed_.size());
  }
  [[nodiscard]] std::uint32_t globalIndex(std::uint32_t ost) const noexcept {
    return globalOffset_ + ost;
  }

  [[nodiscard]] std::uint64_t rpcsServed(std::uint32_t ost) const { return rpcsServed_[ost]; }
  [[nodiscard]] std::uint64_t bytesServed(std::uint32_t ost) const { return bytesServed_[ost]; }
  /// Read/write split of bytesServed(); the invariant checker's byte
  /// conservation laws compare these against the client-side RPC totals.
  [[nodiscard]] std::uint64_t bytesWritten(std::uint32_t ost) const { return bytesWritten_[ost]; }
  [[nodiscard]] std::uint64_t bytesRead(std::uint32_t ost) const {
    return bytesServed_[ost] - bytesWritten_[ost];
  }
  [[nodiscard]] std::uint64_t seeks(std::uint32_t ost) const { return seeks_[ost]; }
  [[nodiscard]] double diskBusyTime(std::uint32_t ost) const {
    return transfer_.busyTime[ost];
  }

  /// Simulated-time split of where an OST's disk spent its busy time:
  /// positioning (seek/setup) vs serialized media transfer (bandwidth).
  /// The difference is what distinguishes a seek-bound from a
  /// bandwidth-bound configuration in the observability layer.
  [[nodiscard]] double positioningBusyTime(std::uint32_t ost) const {
    return positioning_.busyTime[ost];
  }
  [[nodiscard]] double transferBusyTime(std::uint32_t ost) const {
    return transfer_.busyTime[ost];
  }
  /// Peak backlog seen by the seek/setup stage (congestion indicator).
  [[nodiscard]] std::size_t peakQueue(std::uint32_t ost) const {
    return positioning_.peakQueue[ost];
  }

  /// Resets per-run statistics and contiguity state (remount semantics).
  void reset();

  /// Attaches (nullable, non-owning) live fault state: degradation windows
  /// scale this bank's service times (queried by global OST id). Costs one
  /// null check per RPC when detached.
  void attachFaults(const faults::FaultInjector* faults) noexcept { faults_ = faults; }

 private:
  struct StageRequest {
    double serviceTime;
    sim::Callback onDone;
  };

  /// Allocation-free FIFO: a vector with a consumed-prefix cursor. Empty
  /// queues hold no heap storage, so 3 stages x 5000 OSTs cost vectors of
  /// a few machine words each.
  struct Fifo {
    std::vector<StageRequest> items;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const noexcept { return head == items.size(); }
    [[nodiscard]] std::size_t size() const noexcept { return items.size() - head; }
    void push(StageRequest request) { items.push_back(std::move(request)); }
    StageRequest pop() {
      StageRequest request = std::move(items[head]);
      if (++head == items.size()) {
        items.clear();
        head = 0;
      }
      return request;
    }
  };

  /// One FIFO multi-server stage replicated across every OST,
  /// struct-of-arrays. Semantics per OST match sim::ServiceCenter.
  struct Stage {
    std::uint32_t servers = 1;
    std::vector<std::uint32_t> busy;
    std::vector<double> busyTime;
    std::vector<std::size_t> peakQueue;
    std::vector<Fifo> waiting;

    void init(std::uint32_t count, std::uint32_t serverCount);
  };

  void stageSubmit(Stage& stage, std::uint32_t ost, StageRequest request);
  void stageStart(Stage& stage, std::uint32_t ost, StageRequest request);

  sim::SimEngine& engine_;
  const ClusterSpec& cluster_;
  std::uint32_t globalOffset_;
  const faults::FaultInjector* faults_ = nullptr;

  Stage nic_;          ///< server-side link, FIFO store-and-forward
  Stage positioning_;  ///< queueDepth-way seek/setup stage
  Stage transfer_;     ///< serialized media bandwidth stage

  std::vector<std::uint64_t> rpcsServed_;
  std::vector<std::uint64_t> bytesServed_;
  std::vector<std::uint64_t> bytesWritten_;
  std::vector<std::uint64_t> seeks_;
  /// Last accessed end offset per object, for seek detection.
  std::vector<std::unordered_map<std::uint64_t, std::uint64_t>> lastEnd_;
  /// Per-OST jitter streams keyed by (runSeed, global id).
  std::vector<util::Rng> rng_;
};

}  // namespace stellar::pfs

// Object storage target model: a server NIC in front of a disk with
// bounded efficient concurrency, per-object contiguity tracking (seek
// penalties), and congestion latency past the efficient queue depth.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "pfs/topology.hpp"
#include "sim/engine.hpp"
#include "sim/service_center.hpp"

namespace stellar::faults {
class FaultInjector;
}

namespace stellar::pfs {

class OstModel {
 public:
  OstModel(sim::SimEngine& engine, const ClusterSpec& cluster, std::uint32_t index);

  OstModel(const OstModel&) = delete;
  OstModel& operator=(const OstModel&) = delete;

  /// Submits a bulk data RPC that has *arrived at the server*. `objectKey`
  /// identifies the backing object (file id works: one object per file per
  /// OST); `objectOffset` is object-local. Calls onDone when the server
  /// has completed the transfer + disk work.
  void submitBulk(std::uint64_t objectKey, std::uint64_t objectOffset,
                  std::uint64_t bytes, bool isWrite, std::function<void()> onDone);

  [[nodiscard]] std::uint32_t index() const noexcept { return index_; }
  [[nodiscard]] std::uint64_t rpcsServed() const noexcept { return rpcsServed_; }
  [[nodiscard]] std::uint64_t bytesServed() const noexcept { return bytesServed_; }
  /// Read/write split of bytesServed(); the invariant checker's byte
  /// conservation laws compare these against the client-side RPC totals.
  [[nodiscard]] std::uint64_t bytesWritten() const noexcept { return bytesWritten_; }
  [[nodiscard]] std::uint64_t bytesRead() const noexcept {
    return bytesServed_ - bytesWritten_;
  }
  [[nodiscard]] std::uint64_t seeks() const noexcept { return seeks_; }
  [[nodiscard]] double diskBusyTime() const noexcept { return transfer_.busyTime(); }

  /// Simulated-time split of where this OST's disk spent its busy time:
  /// positioning (seek/setup) vs serialized media transfer (bandwidth).
  /// The difference is what distinguishes a seek-bound from a
  /// bandwidth-bound configuration in the observability layer.
  [[nodiscard]] double positioningBusyTime() const noexcept {
    return positioning_.busyTime();
  }
  [[nodiscard]] double transferBusyTime() const noexcept { return transfer_.busyTime(); }
  /// Peak backlog seen by the seek/setup stage (congestion indicator).
  [[nodiscard]] std::size_t peakQueue() const noexcept {
    return positioning_.peakQueue();
  }

  /// Resets per-run statistics and contiguity state (remount semantics).
  void reset();

  /// Attaches (nullable, non-owning) live fault state: degradation windows
  /// scale this OST's service times. Costs one null check per RPC when
  /// detached.
  void attachFaults(const faults::FaultInjector* faults) noexcept { faults_ = faults; }

 private:
  sim::SimEngine& engine_;
  const ClusterSpec& cluster_;
  std::uint32_t index_;
  const faults::FaultInjector* faults_ = nullptr;
  sim::ServiceCenter nic_;          ///< server-side link, FIFO store-and-forward
  sim::ServiceCenter positioning_;  ///< queueDepth-way seek/setup stage
  sim::ServiceCenter transfer_;     ///< serialized media bandwidth stage
  /// Last accessed end offset per object, for seek detection.
  std::unordered_map<std::uint64_t, std::uint64_t> lastEnd_;
  std::uint64_t rpcsServed_ = 0;
  std::uint64_t bytesServed_ = 0;
  std::uint64_t bytesWritten_ = 0;
  std::uint64_t seeks_ = 0;
};

}  // namespace stellar::pfs

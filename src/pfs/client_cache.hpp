// Client-side cache state machines, factored out of the client model so
// they can be unit-tested in isolation:
//
//  - DirtyTracker  : per client-OST write-back budget (osc.max_dirty_mb)
//  - ReadAheadCache: per-client prefetch store with a global budget
//                    (llite.max_read_ahead_mb) and chunk readiness/waiters
//  - LockLru       : per-client DLM lock cache (ldlm.lru_size/lru_max_age)
//
// These run in *simulated* time; waiter callbacks are invoked by the owner
// (pfs/client.cpp) when simulated events complete.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <unordered_map>
#include <vector>

#include "pfs/job.hpp"

namespace stellar::pfs {

/// Write-back budget for one (client node, OST) pair. Writers consume
/// budget synchronously; completed flush RPCs return it and wake waiters.
class DirtyTracker {
 public:
  explicit DirtyTracker(std::uint64_t budgetBytes = 0) : budget_(budgetBytes) {}

  void setBudget(std::uint64_t bytes) noexcept { budget_ = bytes; }
  [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t dirtyBytes() const noexcept { return dirty_; }
  [[nodiscard]] std::uint64_t freeBytes() const noexcept {
    return dirty_ >= budget_ ? 0 : budget_ - dirty_;
  }

  /// Tries to reserve `bytes`; on success dirties them immediately.
  /// Oversized requests (> budget) are admitted when the tracker is empty,
  /// so a single write larger than the whole budget cannot deadlock.
  [[nodiscard]] bool tryReserve(std::uint64_t bytes);

  /// Queues a waiter needing `bytes`; owner must call `admitWaiters` after
  /// every `release` (done internally) — the callback fires at most once.
  void waitForSpace(std::uint64_t bytes, std::function<void()> onSpace);

  /// Returns `bytes` of budget (flush RPC completed) and admits waiters
  /// FIFO while their reservations fit.
  void release(std::uint64_t bytes);

  [[nodiscard]] std::size_t waiterCount() const noexcept { return waiters_.size(); }

  /// High-water mark of dirty bytes over the tracker's lifetime. The
  /// invariant checker (src/testkit) asserts peak <= max(budget, largest
  /// single reservation) — the oversized-write admission is the only legal
  /// budget excursion.
  [[nodiscard]] std::uint64_t peakDirtyBytes() const noexcept { return peakDirty_; }
  /// Largest single reservation ever charged (oversized admissions show up
  /// here).
  [[nodiscard]] std::uint64_t maxReservationBytes() const noexcept {
    return maxReservation_;
  }

 private:
  struct Waiter {
    std::uint64_t bytes;
    std::function<void()> onSpace;
  };

  void admitWaiters();
  void noteReserve(std::uint64_t bytes) noexcept {
    if (bytes > maxReservation_) {
      maxReservation_ = bytes;
    }
    if (dirty_ > peakDirty_) {
      peakDirty_ = dirty_;
    }
  }

  std::uint64_t budget_ = 0;
  std::uint64_t dirty_ = 0;
  std::uint64_t peakDirty_ = 0;
  std::uint64_t maxReservation_ = 0;
  std::deque<Waiter> waiters_;
};

/// Write-back budgets for every (client node, OST) pair of a runtime,
/// struct-of-arrays over dense lane ids (lane = node * totalOsts + ost).
/// Per-lane semantics are exactly DirtyTracker's — including the
/// oversized-admission-when-empty rule — but the hot counters are flat
/// vectors and waiter queues only materialize for backlogged lanes, so a
/// 1000-node x 5000-OST runtime costs bytes per lane, not a heap object.
/// DirtyTracker remains the single-lane reference implementation (the
/// differential unit test pins the two together).
class DirtyBank {
 public:
  DirtyBank() = default;

  /// Sizes the bank to `lanes` lanes sharing one per-lane budget.
  void configure(std::size_t lanes, std::uint64_t budgetBytes);

  [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t laneCount() const noexcept { return dirty_.size(); }
  [[nodiscard]] std::uint64_t dirtyBytes(std::size_t lane) const { return dirty_[lane]; }
  [[nodiscard]] std::uint64_t peakDirtyBytes(std::size_t lane) const { return peak_[lane]; }
  [[nodiscard]] std::uint64_t maxReservationBytes(std::size_t lane) const {
    return maxReservation_[lane];
  }
  [[nodiscard]] std::size_t waiterCount(std::size_t lane) const;

  [[nodiscard]] bool tryReserve(std::size_t lane, std::uint64_t bytes);
  void waitForSpace(std::size_t lane, std::uint64_t bytes, std::function<void()> onSpace);
  void release(std::size_t lane, std::uint64_t bytes);

 private:
  struct Waiter {
    std::uint64_t bytes;
    std::function<void()> onSpace;
  };

  void admitWaiters(std::size_t lane);
  void noteReserve(std::size_t lane, std::uint64_t bytes) noexcept {
    if (bytes > maxReservation_[lane]) {
      maxReservation_[lane] = bytes;
    }
    if (dirty_[lane] > peak_[lane]) {
      peak_[lane] = dirty_[lane];
    }
  }

  std::uint64_t budget_ = 0;
  std::vector<std::uint64_t> dirty_;
  std::vector<std::uint64_t> peak_;
  std::vector<std::uint64_t> maxReservation_;
  /// Waiter queues exist only for backlogged lanes.
  std::unordered_map<std::size_t, std::deque<Waiter>> waiters_;
};

/// One prefetched (or in-flight) contiguous range of a file.
struct CacheChunk {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;        ///< exclusive
  std::uint64_t consumed = 0;   ///< bytes of [begin,end) already read back
  bool ready = false;           ///< RPC completed, data present
  std::vector<std::function<void()>> waiters;
};

/// Result of a coverage query for a wanted range.
struct Coverage {
  /// Sub-ranges with no chunk at all (must be fetched).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> missing;
  /// Chunks overlapping the range that are still in flight.
  std::vector<CacheChunk*> pending;
  [[nodiscard]] bool fullyReady() const noexcept {
    return missing.empty() && pending.empty();
  }
};

/// Per-client readahead store. `outstanding` counts prefetched bytes not
/// yet consumed; prefetch admission is bounded by the budget.
///
/// Besides the live budget accounting the cache keeps lifetime totals of
/// every prefetched byte's fate — consumed by a read, discarded with its
/// file, or still resident. The testkit INV-READA law holds the four to an
/// exact conservation equation (prefetched == consumed + discarded +
/// resident), so any drift in the high-water-mark consume math or the drop
/// refunds shows up as a violation instead of a silent budget leak.
class ReadAheadCache {
 public:
  explicit ReadAheadCache(std::uint64_t budgetBytes = 0) : budget_(budgetBytes) {}

  void setBudget(std::uint64_t bytes) noexcept { budget_ = bytes; }
  [[nodiscard]] std::uint64_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::uint64_t outstanding() const noexcept { return outstanding_; }
  [[nodiscard]] std::uint64_t freeBudget() const noexcept {
    return outstanding_ >= budget_ ? 0 : budget_ - outstanding_;
  }

  /// Lifetime totals for the INV-READA conservation law and pfs.reada.*.
  [[nodiscard]] std::uint64_t prefetchedBytes() const noexcept { return prefetchedTotal_; }
  [[nodiscard]] std::uint64_t consumedBytes() const noexcept { return consumedTotal_; }
  [[nodiscard]] std::uint64_t discardedBytes() const noexcept { return discardedTotal_; }
  /// Bytes still held (ready or in flight) — `outstanding` by another name,
  /// exposed so the conservation law reads naturally at the call site.
  [[nodiscard]] std::uint64_t residentBytes() const noexcept { return outstanding_; }

  /// Coverage of [begin,end) for `file`.
  [[nodiscard]] Coverage query(FileId file, std::uint64_t begin, std::uint64_t end);

  /// Registers an in-flight prefetch chunk; consumes budget. The chunk
  /// must not overlap existing chunks (callers fetch only missing ranges).
  CacheChunk* insertPending(FileId file, std::uint64_t begin, std::uint64_t end);

  /// Marks a chunk ready and fires its waiters (callers drain via owner).
  void markReady(CacheChunk* chunk);

  /// Consumes [begin,end): erases fully-consumed chunks, refunds budget.
  void consume(FileId file, std::uint64_t begin, std::uint64_t end);

  /// Drops all chunks of a file (close/unlink); refunds their unconsumed
  /// bytes. Returns any waiters that were attached to dropped in-flight
  /// chunks so the owner can fire them (treating the data as unavailable
  /// but the waiter as unblocked).
  [[nodiscard]] std::vector<std::function<void()>> dropFile(FileId file);

  /// Looks up the chunk starting exactly at `begin`, or nullptr. RPC
  /// completions resolve their chunk through this instead of holding a
  /// pointer, so a drop between issue and completion is benign.
  [[nodiscard]] CacheChunk* find(FileId file, std::uint64_t begin);

  [[nodiscard]] std::size_t chunkCount(FileId file) const;

 private:
  using ChunkMap = std::map<std::uint64_t, CacheChunk>;  // key: begin
  std::unordered_map<FileId, ChunkMap> files_;
  std::uint64_t budget_ = 0;
  std::uint64_t outstanding_ = 0;
  std::uint64_t prefetchedTotal_ = 0;
  std::uint64_t consumedTotal_ = 0;
  std::uint64_t discardedTotal_ = 0;
};

/// Pending write-back segments for every (client node, OST) lane, factored
/// out of the client model so the coalescing policy is unit-testable and the
/// flush path reuses one scratch buffer instead of allocating per flush.
/// Append is O(1) push_back on a flat per-lane vector; drain sorts the
/// selected segments by (file, object offset), merges contiguous same-file
/// runs, and cuts the merged extents into RPC-sized bulks.
class WritebackBank {
 public:
  struct Segment {
    FileId file = 0;
    std::uint64_t objectOffset = 0;
    std::uint64_t length = 0;
  };

  void configure(std::size_t lanes);

  [[nodiscard]] std::size_t laneCount() const noexcept { return pending_.size(); }
  [[nodiscard]] std::uint64_t pendingBytes(std::size_t lane) const {
    return bytes_[lane];
  }

  void append(std::size_t lane, FileId file, std::uint64_t objectOffset,
              std::uint64_t length);

  /// Removes the lane's pending segments — all of them, or only `onlyFile`'s
  /// when `fileOnly` is set — coalesces, cuts at `maxRpcBytes`, and invokes
  /// `emit(file, objectOffset, bytes)` once per write RPC, in (file, offset)
  /// order. Returns the total bytes drained.
  std::uint64_t drain(std::size_t lane, bool fileOnly, FileId onlyFile,
                      std::uint64_t maxRpcBytes,
                      const std::function<void(FileId, std::uint64_t,
                                               std::uint64_t)>& emit);

  /// Discards a file's pending segments without writing them (unlink).
  /// Returns the bytes dropped.
  std::uint64_t discardFile(std::size_t lane, FileId file);

 private:
  std::vector<std::vector<Segment>> pending_;
  std::vector<std::uint64_t> bytes_;
  std::vector<Segment> scratch_;  ///< drain working set, reused across flushes
};

/// DLM lock LRU with capacity and TTL semantics. Losing a lock (capacity
/// eviction, TTL expiry, or explicit erase) drops the pages it protected;
/// owners observe that through the eviction handler.
class LockLru {
 public:
  using EvictionHandler = std::function<void(FileId)>;
  /// capacity 0 selects "dynamic" sizing, modeled as kDynamicCapacity
  /// (the server's lock volume shrinks client caches under load; see the
  /// manual module's ldlm chapter).
  static constexpr std::size_t kDynamicCapacity = 2000;

  explicit LockLru(std::size_t capacity = 0, double maxAge = 3900.0);

  void configure(std::size_t capacity, double maxAge);

  /// Invoked with the file id whenever a lock leaves the cache.
  void setEvictionHandler(EvictionHandler handler) { onEvict_ = std::move(handler); }

  /// True if a valid (unexpired) lock for `file` is cached; refreshes its
  /// recency and timestamp on hit. On miss the caller pays the lock RPC
  /// and then calls `insert`.
  [[nodiscard]] bool touch(FileId file, double now);

  /// Non-mutating probe: a valid, unexpired lock is cached. No recency
  /// refresh, no hit/miss accounting, no expiry eviction — the readahead
  /// window machine uses this to ask "does this client know the file size"
  /// (statahead-primed locks make it true) without perturbing lock state.
  [[nodiscard]] bool contains(FileId file, double now) const;

  /// Caches a lock acquired at `now`, evicting LRU entries over capacity.
  void insert(FileId file, double now);

  /// Drops the lock (unlink / revoke).
  void erase(FileId file);

  [[nodiscard]] std::size_t size() const noexcept { return order_.size(); }
  [[nodiscard]] std::size_t effectiveCapacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  /// Lock lifecycle balance: inserts() == evictions() + size() always (the
  /// invariant checker's DLM acquire/release law). Refreshing an already
  /// cached lock is not an insert.
  [[nodiscard]] std::uint64_t inserts() const noexcept { return inserts_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }

 private:
  struct Entry {
    FileId file;
    double acquiredAt;
  };

  void evict(FileId file);

  std::size_t capacity_;
  double maxAge_;
  EvictionHandler onEvict_;
  std::list<Entry> order_;  // front = most recent
  std::unordered_map<FileId, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t inserts_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace stellar::pfs

// Job description consumed by the simulator: a set of files/directories and
// one I/O program (op stream) per MPI rank. Workload generators in
// src/workloads emit JobSpecs; the simulator executes them and the Darshan
// recorder characterizes them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stellar::pfs {

using FileId = std::uint32_t;
using DirId = std::uint32_t;
using RankId = std::uint32_t;

inline constexpr FileId kInvalidFile = ~FileId{0};

enum class OpKind : std::uint8_t {
  Mkdir,     ///< create directory `dir`
  Create,    ///< create + open file `file`
  Open,      ///< open existing file `file`
  Close,     ///< close file `file`
  Write,     ///< write [offset, offset+size) of `file`
  Read,      ///< read [offset, offset+size) of `file`
  Stat,      ///< stat file `file`
  Unlink,    ///< remove file `file`
  Fsync,     ///< flush this rank's dirty data for `file`
  Barrier,   ///< synchronize all ranks (MPI_Barrier)
  Compute,   ///< spend `seconds` of local compute time
};

struct IoOp {
  OpKind kind = OpKind::Barrier;
  FileId file = kInvalidFile;
  DirId dir = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  double seconds = 0.0;  ///< Compute only

  [[nodiscard]] static IoOp mkdir(DirId dir) { return {OpKind::Mkdir, kInvalidFile, dir, 0, 0, 0}; }
  [[nodiscard]] static IoOp create(FileId f) { return {OpKind::Create, f, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp open(FileId f) { return {OpKind::Open, f, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp close(FileId f) { return {OpKind::Close, f, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp write(FileId f, std::uint64_t off, std::uint64_t size) {
    return {OpKind::Write, f, 0, off, size, 0};
  }
  [[nodiscard]] static IoOp read(FileId f, std::uint64_t off, std::uint64_t size) {
    return {OpKind::Read, f, 0, off, size, 0};
  }
  [[nodiscard]] static IoOp stat(FileId f) { return {OpKind::Stat, f, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp unlink(FileId f) { return {OpKind::Unlink, f, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp fsync(FileId f) { return {OpKind::Fsync, f, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp barrier() { return {OpKind::Barrier, kInvalidFile, 0, 0, 0, 0}; }
  [[nodiscard]] static IoOp compute(double seconds) {
    return {OpKind::Compute, kInvalidFile, 0, 0, 0, seconds};
  }
};

struct FileDecl {
  std::string name;   ///< path-like name, for the Darshan record
  DirId dir = 0;      ///< containing directory
};

struct DirDecl {
  std::string name;
};

/// A complete job: file/dir declarations plus one op program per rank.
struct JobSpec {
  std::string name;                     ///< e.g. "IOR_16M"
  std::vector<DirDecl> dirs{DirDecl{"/"}};  ///< index = DirId; dir 0 is the root
  std::vector<FileDecl> files;          ///< index = FileId
  std::vector<std::vector<IoOp>> ranks; ///< index = RankId

  /// Registers a directory, returning its id. Dir 0 (root) pre-exists.
  DirId addDir(std::string name);
  /// Registers a file in `dir`, returning its id.
  FileId addFile(std::string name, DirId dir = 0);

  [[nodiscard]] std::uint32_t rankCount() const noexcept {
    return static_cast<std::uint32_t>(ranks.size());
  }

  /// Total ops across ranks; used for sanity checks and progress stats.
  [[nodiscard]] std::uint64_t totalOps() const noexcept;

  /// Structural validation: op file/dir ids in range, reads/writes have
  /// nonzero size, every rank program is non-empty. Returns violations.
  [[nodiscard]] std::vector<std::string> validate() const;
};

}  // namespace stellar::pfs
